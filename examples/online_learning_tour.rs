//! A tour of the CLS prefetcher's §5 design space on one workload:
//! training-instance samplers (§5.1), prefetch geometry (§5.2), input
//! encoders (§5.3), and hippocampal replay policies (§5.4).
//!
//! ```sh
//! cargo run --release --example online_learning_tour
//! ```

use hnp::core::encoder::EncoderKind;
use hnp::core::{
    CapacityPolicy, ClsConfig, ClsPrefetcher, EpisodicBackend, ReplayConfig, ReplayForm,
    TrainingSampler,
};
use hnp::memsim::{NoPrefetcher, SimConfig, SimReport, Simulator};
use hnp::traces::apps::AppWorkload;
use hnp::traces::Trace;

fn run(trace: &Trace, sim: &Simulator, base: &SimReport, label: &str, cfg: ClsConfig) {
    let mut p = ClsPrefetcher::new(cfg);
    let rep = sim.run(trace, &mut p);
    println!(
        "  {:<28} removed {:5.1}%  trained {:>6}  replayed {:>6}",
        label,
        rep.pct_misses_removed(base),
        p.sampler_stats().0,
        p.replayed()
    );
}

fn main() {
    let trace = AppWorkload::McfLike.generate(80_000, 9);
    let sim = Simulator::new(SimConfig::default().sized_to(&trace, 0.5));
    let base = sim.run(&trace, &mut NoPrefetcher);
    println!(
        "mcf-like workload: {} accesses, baseline miss rate {:.1}%",
        trace.len(),
        100.0 * base.miss_rate()
    );

    println!("\n§5.1 — when to train:");
    run(&trace, &sim, &base, "every miss", ClsConfig::default());
    run(
        &trace,
        &sim,
        &base,
        "every 4th miss",
        ClsConfig {
            sampler: TrainingSampler::EveryNth { n: 4 },
            ..ClsConfig::default()
        },
    );
    run(
        &trace,
        &sim,
        &base,
        "confidence-gated (<0.5)",
        ClsConfig {
            sampler: TrainingSampler::ConfidenceGated { threshold: 0.5 },
            ..ClsConfig::default()
        },
    );

    println!("\n§5.2 — output geometry:");
    run(
        &trace,
        &sim,
        &base,
        "lookahead 1, width 1",
        ClsConfig {
            lookahead: 1,
            width: 1,
            ..ClsConfig::default()
        },
    );
    run(
        &trace,
        &sim,
        &base,
        "lookahead 4, width 2",
        ClsConfig {
            lookahead: 4,
            width: 2,
            ..ClsConfig::default()
        },
    );

    println!("\n§5.3 — input encodings:");
    run(
        &trace,
        &sim,
        &base,
        "one-hot delta",
        ClsConfig {
            encoder: EncoderKind::OneHot,
            ..ClsConfig::default()
        },
    );
    run(
        &trace,
        &sim,
        &base,
        "history window (3)",
        ClsConfig {
            encoder: EncoderKind::HistoryWindow { window: 3 },
            ..ClsConfig::default()
        },
    );

    println!("\n§5.4 — hippocampus & replay:");
    run(
        &trace,
        &sim,
        &base,
        "no replay",
        ClsConfig {
            replay: ReplayConfig::off(),
            episodic: EpisodicBackend::Exact(CapacityPolicy::Ring { capacity: 1 }),
            ..ClsConfig::default()
        },
    );
    run(
        &trace,
        &sim,
        &base,
        "interleaved replay",
        ClsConfig::default(),
    );
    run(
        &trace,
        &sim,
        &base,
        "generative replay",
        ClsConfig {
            replay: ReplayConfig {
                form: ReplayForm::Generative { rollout_len: 3 },
                ..ReplayConfig::default()
            },
            ..ClsConfig::default()
        },
    );
}
