//! Prefetching in a disaggregated-memory cluster (§4 of the paper):
//! four compute nodes running different applications fault pages over
//! the network from a remote pool, one at a time. Each node gets its
//! own CLS prefetcher — the decentralized placement the paper argues
//! for — and the run is compared against no prefetching.
//!
//! ```sh
//! cargo run --release --example disaggregated_cluster
//! ```

use hnp::core::{ClsConfig, ClsPrefetcher};
use hnp::memsim::{NoPrefetcher, Prefetcher};
use hnp::systems::{DisaggConfig, DisaggregatedCluster};
use hnp::traces::apps::AppWorkload;

fn main() {
    let traces = vec![
        AppWorkload::TensorFlowLike.generate(40_000, 1),
        AppWorkload::PageRankLike.generate(40_000, 2),
        AppWorkload::McfLike.generate(40_000, 3),
        AppWorkload::Graph500Like.generate(40_000, 4),
    ];
    let cluster = DisaggregatedCluster::new(DisaggConfig {
        link_latency: 100,
        ..DisaggConfig::default()
    });

    let mut none: Vec<Box<dyn Prefetcher>> = (0..4)
        .map(|_| Box::new(NoPrefetcher) as Box<dyn Prefetcher>)
        .collect();
    let base = cluster.run_decentralized(&traces, &mut none);

    let mut per_node: Vec<Box<dyn Prefetcher>> = (0..4)
        .map(|i| {
            Box::new(ClsPrefetcher::new(ClsConfig {
                seed: 0xd00d + i as u64,
                ..ClsConfig::default()
            })) as Box<dyn Prefetcher>
        })
        .collect();
    let rep = cluster.run_decentralized(&traces, &mut per_node);

    println!("disaggregated cluster, 4 nodes, link latency 100 ticks");
    println!(
        "{:<10} {:>12} {:>14} {:>12}",
        "node", "misses", "misses (cls)", "stall saved"
    );
    for (b, r) in base.nodes.iter().zip(rep.nodes.iter()) {
        println!(
            "{:<10} {:>12} {:>14} {:>11.1}%",
            format!("node-{}", b.node),
            b.misses,
            r.misses,
            100.0 * (b.stall_ticks - r.stall_ticks) as f64 / b.stall_ticks as f64
        );
    }
    println!();
    println!(
        "cluster: {:.1}% of misses removed, wall-clock {} -> {} ticks ({:.2}x speedup)",
        rep.pct_misses_removed(&base),
        base.total_ticks,
        rep.total_ticks,
        base.total_ticks as f64 / rep.total_ticks as f64
    );
}
