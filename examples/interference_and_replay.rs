//! Catastrophic interference, live: train an LSTM on one access
//! pattern, switch to another, and watch confidence on the first
//! collapse — then fix it with interleaved replay at a 0.1x learning
//! rate, exactly as in §3.2 of the paper.
//!
//! ```sh
//! cargo run --release --example interference_and_replay
//! ```

use hnp::memsim::DeltaVocab;
use hnp::nn::{LstmConfig, LstmNetwork};
use hnp::traces::Pattern;

/// Tokenizes a pattern's page-delta stream.
fn tokens(p: Pattern, vocab: &DeltaVocab, seed: u64) -> Vec<usize> {
    let pages: Vec<u64> = p.generate(1000, seed).pages().collect();
    pages
        .windows(2)
        .map(|w| vocab.token_of(w[1] as i64 - w[0] as i64))
        .collect()
}

/// Mean confidence over (4-token window -> next) examples.
fn confidence(net: &LstmNetwork, toks: &[usize]) -> f32 {
    let mut total = 0.0;
    let mut n = 0;
    for s in (0..toks.len() - 5).step_by(7) {
        total += net.eval_window(&toks[s..s + 4], toks[s + 4]).confidence;
        n += 1;
    }
    total / n as f32
}

fn run(replay: bool) {
    let vocab = DeltaVocab::new(64);
    let a = tokens(Pattern::Stride, &vocab, 1);
    let b = tokens(Pattern::PointerChase, &vocab, 2);
    let lr = 0.2;
    let mut net = LstmNetwork::new(LstmConfig {
        vocab: vocab.len(),
        embed_dim: 32,
        hidden: 64,
        learning_rate: lr,
        ..LstmConfig::default()
    });
    // Phase 1: learn pattern A (stride).
    for _ in 0..10 {
        for s in 0..a.len() - 4 {
            net.train_window(&a[s..s + 4], a[s + 4], lr);
        }
    }
    println!(
        "  after phase 1: confidence on A = {:.2}",
        confidence(&net, &a)
    );
    // Phase 2: learn pattern B (pointer chase), optionally replaying A.
    let mut step = 0;
    for _ in 0..4 {
        for s in 0..b.len() - 4 {
            net.train_window(&b[s..s + 4], b[s + 4], lr);
            if replay {
                // The paper's replay: retrain on the first pattern at a
                // 0.1x learning rate after each step on the second.
                let r = (step * 13) % (a.len() - 4);
                net.train_window(&a[r..r + 4], a[r + 4], lr * 0.1);
            }
            step += 1;
        }
    }
    println!(
        "  after phase 2: confidence on A = {:.2}, on B = {:.2}",
        confidence(&net, &a),
        confidence(&net, &b)
    );
}

fn main() {
    println!("WITHOUT replay (Fig. 3a-c): learning B overwrites A");
    run(false);
    println!();
    println!("WITH interleaved replay at 0.1x lr (Fig. 3d-f): both survive");
    run(true);
}
