//! Quickstart: run the CLS prefetcher against a workload and compare
//! it with the no-prefetch baseline and a classical stride prefetcher.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use hnp::baselines::{StrideConfig, StridePrefetcher};
use hnp::core::{ClsConfig, ClsPrefetcher};
use hnp::memsim::{NoPrefetcher, SimConfig, Simulator};
use hnp::traces::apps::AppWorkload;

fn main() {
    // 1. A synthetic PageRank-like workload: sequential edge-shard
    //    streaming interleaved with skewed vertex reads.
    let trace = AppWorkload::PageRankLike.generate(100_000, 42);
    println!(
        "trace: {} accesses over {} pages",
        trace.len(),
        trace.footprint_pages()
    );

    // 2. Memory sized at 50 % of the footprint, as in the paper.
    let sim = Simulator::new(SimConfig::default().sized_to(&trace, 0.5));

    // 3. Baseline: no prefetching.
    let base = sim.run(&trace, &mut NoPrefetcher);
    println!(
        "baseline: {} misses ({:.1}% miss rate)",
        base.misses(),
        100.0 * base.miss_rate()
    );

    // 4. A classical stride prefetcher...
    let mut stride = StridePrefetcher::with_config(StrideConfig::default());
    let s = sim.run(&trace, &mut stride);
    println!(
        "stride:      removed {:5.1}% of misses (accuracy {:.2})",
        s.pct_misses_removed(&base),
        s.accuracy()
    );

    // 5. ...versus the CLS prefetcher: sparse Hebbian neocortex, online
    //    learning on every miss, hippocampal episodic store, and
    //    interleaved replay at a 0.1x rate.
    let mut cls = ClsPrefetcher::new(ClsConfig::default());
    let c = sim.run(&trace, &mut cls);
    println!(
        "cls-hebbian: removed {:5.1}% of misses (accuracy {:.2})",
        c.pct_misses_removed(&base),
        c.accuracy()
    );
    println!(
        "             trained on {} misses, replayed {} episodes, {} stored",
        cls.sampler_stats().0,
        cls.replayed(),
        cls.episodic().stored()
    );
}
