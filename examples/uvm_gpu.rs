//! Prefetching for CPU-GPU unified virtual memory (§4 of the paper):
//! eight SIMT warps run in lockstep; any step with a fault stalls the
//! whole GPU while the batch migrates. A centralized driver-side CLS
//! prefetcher sees all fault streams interleaved; sweeping its
//! prediction *width* shows why throughput-bound systems want wide
//! prefetchers (§5.2).
//!
//! ```sh
//! cargo run --release --example uvm_gpu
//! ```

use hnp::core::{ClsConfig, ClsPrefetcher};
use hnp::memsim::NoPrefetcher;
use hnp::systems::{UvmConfig, UvmSim};
use hnp::traces::apps::AppWorkload;
use hnp::traces::Trace;

fn main() {
    // Eight warps, two per application.
    let warps: Vec<Trace> = (0..8u64)
        .map(|i| {
            AppWorkload::FIG5[(i % 4) as usize]
                .generate(20_000, 100 + i)
                .with_stream(i as u16)
        })
        .collect();
    let sim = UvmSim::new(UvmConfig::default());

    let base = sim.run(&warps, &mut NoPrefetcher);
    println!(
        "baseline: throughput {:.1} accesses/ktick, {} fault batches (max batch {})",
        base.throughput(),
        base.fault_batches,
        base.max_batch
    );

    for (isolation, width) in [(true, 1usize), (true, 4), (false, 1), (false, 4)] {
        let mut p = ClsPrefetcher::new(ClsConfig {
            width,
            lookahead: 2,
            stream_isolation: isolation,
            ..ClsConfig::default()
        });
        let rep = sim.run(&warps, &mut p);
        println!(
            "isolation={isolation:<5} width={width}: throughput {:.1} accesses/ktick (+{:.1}%), faults removed {:.1}%",
            rep.throughput(),
            100.0 * (rep.throughput() / base.throughput() - 1.0),
            rep.pct_faults_removed(&base)
        );
    }
    println!();
    println!("per-warp stream isolation is the big lever; prediction width trades");
    println!("accuracy for coverage (it pays when accuracy is low, as §5.2 predicts).");
}
