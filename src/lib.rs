//! # HNP — Hippocampal-Neocortical Prefetching
//!
//! A from-scratch Rust reproduction of *"Prefetching Using Principles
//! of Hippocampal-Neocortical Interaction"* (HotOS 2023): online
//! memory prefetchers built on Complementary Learning Systems theory —
//! a fast hippocampal episodic store feeding interleaved replay into a
//! slow, sparse Hebbian structure learner — evaluated against the
//! deep-learning (LSTM) baseline the paper compares to.
//!
//! This umbrella crate re-exports the workspace:
//!
//! * [`nn`] — the neural substrate (matrices, LSTM, quantization);
//! * [`hebbian`] — sparse Hebbian networks and associative memories;
//! * [`traces`] — Table-1 patterns and application-like workloads;
//! * [`memsim`] — the page-memory simulator and prefetcher interface;
//! * [`baselines`] — stride/Markov/next-N and the LSTM prefetcher;
//! * [`core`] — the CLS prefetcher (the paper's contribution);
//! * [`systems`] — disaggregated-memory and CPU-GPU UVM simulators.
//!
//! ## Quickstart
//!
//! ```
//! use hnp::core::{ClsConfig, ClsPrefetcher};
//! use hnp::memsim::{NoPrefetcher, SimConfig, Simulator};
//! use hnp::traces::Pattern;
//!
//! // A pointer-chasing workload, memory at 50 % of its footprint.
//! let trace = Pattern::PointerChase.generate(4_000, 7);
//! let sim = Simulator::new(SimConfig::default().sized_to(&trace, 0.5));
//!
//! let baseline = sim.run(&trace, &mut NoPrefetcher);
//! let mut cls = ClsPrefetcher::new(ClsConfig::default());
//! let report = sim.run(&trace, &mut cls);
//!
//! let removed = report.pct_misses_removed(&baseline);
//! assert!(removed > 10.0, "the CLS prefetcher learns the chase: {removed:.1}%");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use hnp_baselines as baselines;
pub use hnp_core as core;
pub use hnp_hebbian as hebbian;
pub use hnp_memsim as memsim;
pub use hnp_nn as nn;
pub use hnp_systems as systems;
pub use hnp_trace as traces;
