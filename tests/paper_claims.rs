//! The paper's headline claims, asserted as integration tests.
//!
//! Each test names the section of the paper it pins down. These are
//! scaled-down versions of the `hnp-bench` harnesses so they run in CI
//! time; EXPERIMENTS.md records the full-scale numbers.

use hnp::hebbian::{HebbianConfig, HebbianNetwork};
use hnp::memsim::DeltaVocab;
use hnp::nn::quant::QuantizedLstm;
use hnp::nn::{LstmConfig, LstmNetwork, OpCounts};
use hnp::traces::Pattern;

/// §3.1 / Table 2: the Hebbian network is ~3x smaller than the LSTM
/// with roughly an order of magnitude fewer operations.
#[test]
fn table2_resource_claims() {
    let lstm = LstmNetwork::new(LstmConfig::paper_table2());
    let heb = HebbianNetwork::new(HebbianConfig::paper_table2());
    assert!(
        lstm.param_count() as f64 / heb.param_count() as f64 >= 3.0,
        "3x parameter claim: {} vs {}",
        lstm.param_count(),
        heb.param_count()
    );
    let lstm_ops = OpCounts::lstm(500, 50, 128);
    let mut probe = HebbianNetwork::new(HebbianConfig::paper_table2());
    let heb_inf = probe.infer_advance(&[1], 2);
    assert!(
        lstm_ops.inference_ops as f64 / heb_inf.ops as f64 >= 10.0,
        "order-of-magnitude ops claim: {} vs {}",
        lstm_ops.inference_ops,
        heb_inf.ops
    );
}

/// §2.1: INT8 quantization compresses the LSTM ~4x but inference work
/// remains far above the Hebbian network's.
#[test]
fn quantization_helps_but_is_not_enough() {
    let net = LstmNetwork::new(LstmConfig::paper_table2());
    let q = QuantizedLstm::from_network(&net);
    let fp32_bytes = net.param_count() * 4;
    assert!(q.storage_bytes() * 3 < fp32_bytes, "compression");
    // Op counts don't change under quantization — only the per-op
    // cost. The Hebbian advantage is structural (sparsity), not a
    // datatype trick.
    let heb = HebbianNetwork::new(HebbianConfig::paper_table2());
    assert!(heb.param_count() * 2 < q.storage_bytes());
}

/// §2.2: online learning of a second pattern makes the LSTM forget
/// the first (catastrophic interference), at unit scale.
#[test]
fn lstm_catastrophic_interference() {
    let vocab = DeltaVocab::new(64);
    let toks = |p: Pattern, seed| -> Vec<usize> {
        let pages: Vec<u64> = p.generate(400, seed).pages().collect();
        pages
            .windows(2)
            .map(|w| vocab.token_of(w[1] as i64 - w[0] as i64))
            .collect()
    };
    let a = toks(Pattern::Stride, 1);
    let b = toks(Pattern::PointerChase, 2);
    let mut net = LstmNetwork::new(LstmConfig {
        vocab: vocab.len(),
        embed_dim: 32,
        hidden: 64,
        learning_rate: 0.2,
        ..LstmConfig::default()
    });
    let conf = |net: &LstmNetwork, t: &[usize]| -> f32 {
        let mut s = 0.0;
        let mut n = 0;
        for i in (0..t.len() - 5).step_by(9) {
            s += net.eval_window(&t[i..i + 4], t[i + 4]).confidence;
            n += 1;
        }
        s / n as f32
    };
    for _ in 0..12 {
        for i in 0..a.len() - 4 {
            net.train_window(&a[i..i + 4], a[i + 4], 0.2);
        }
    }
    let before = conf(&net, &a);
    assert!(before > 0.85, "phase 1 learned: {before}");
    for _ in 0..6 {
        for i in 0..b.len() - 4 {
            net.train_window(&b[i..i + 4], b[i + 4], 0.2);
        }
    }
    let after = conf(&net, &a);
    assert!(
        after < before - 0.5,
        "interference must collapse confidence: {before} -> {after}"
    );
}

/// §3.2: interleaved replay at a 0.1x learning rate prevents the
/// collapse.
#[test]
fn replay_prevents_interference() {
    let vocab = DeltaVocab::new(64);
    let toks = |p: Pattern, seed| -> Vec<usize> {
        let pages: Vec<u64> = p.generate(400, seed).pages().collect();
        pages
            .windows(2)
            .map(|w| vocab.token_of(w[1] as i64 - w[0] as i64))
            .collect()
    };
    let a = toks(Pattern::Stride, 1);
    let b = toks(Pattern::PointerChase, 2);
    let mut net = LstmNetwork::new(LstmConfig {
        vocab: vocab.len(),
        embed_dim: 32,
        hidden: 64,
        learning_rate: 0.2,
        ..LstmConfig::default()
    });
    for _ in 0..12 {
        for i in 0..a.len() - 4 {
            net.train_window(&a[i..i + 4], a[i + 4], 0.2);
        }
    }
    let mut k = 0usize;
    for _ in 0..6 {
        for i in 0..b.len() - 4 {
            net.train_window(&b[i..i + 4], b[i + 4], 0.2);
            let r = (k * 13) % (a.len() - 4);
            net.train_window(&a[r..r + 4], a[r + 4], 0.2 * 0.1);
            k += 1;
        }
    }
    let conf = |t: &[usize]| -> f32 {
        let mut s = 0.0;
        let mut n = 0;
        for i in (0..t.len() - 5).step_by(9) {
            s += net.eval_window(&t[i..i + 4], t[i + 4]).confidence;
            n += 1;
        }
        s / n as f32
    };
    assert!(conf(&a) > 0.7, "old pattern preserved: {}", conf(&a));
    assert!(conf(&b) > 0.6, "new pattern learned: {}", conf(&b));
}

/// §3.1: the Hebbian network's training path uses integer updates and
/// reports integer op counts strictly greater for training than
/// inference, both bounded far below the LSTM.
#[test]
fn hebbian_online_costs_are_bounded() {
    let mut net = HebbianNetwork::new(HebbianConfig::paper_table2());
    let mut max_train = 0usize;
    for i in 0..200usize {
        let o = net.train_step(&[(i % 100) as u32], (i * 7 + 1) % 136);
        max_train = max_train.max(o.ops);
    }
    // Even worst-case online steps stay under the LSTM's inference
    // floor (Table 2: >170k FP ops).
    assert!(
        max_train < 50_000,
        "hebbian worst-case training ops {max_train}"
    );
}
