//! Property-based tests over the core data structures and the
//! simulator's accounting invariants.

use proptest::prelude::*;

use hnp::core::{CapacityPolicy, Hippocampus};
use hnp::hebbian::bitset::BitSet;
use hnp::hebbian::kwta::k_winners;
use hnp::memsim::evict::EvictionPolicy;
use hnp::memsim::memory::LocalMemory;
use hnp::memsim::{DeltaVocab, MissHistory, NoPrefetcher, SimConfig, Simulator};
use hnp::traces::Trace;

proptest! {
    /// Delta <-> token mapping is a bijection on the in-range domain.
    #[test]
    fn delta_vocab_roundtrip(range in 1i64..200, delta in -500i64..500) {
        let v = DeltaVocab::new(range);
        let t = v.token_of(delta);
        prop_assert!(t < v.len());
        match v.delta_of(t) {
            Some(d) => {
                prop_assert_eq!(d, delta);
                prop_assert!(delta != 0 && delta.abs() <= range);
            }
            None => prop_assert!(delta == 0 || delta.abs() > range),
        }
    }

    /// The bitset agrees with a HashSet model under arbitrary
    /// insert/remove sequences.
    #[test]
    fn bitset_matches_model(ops in proptest::collection::vec((0usize..256, any::<bool>()), 1..200)) {
        let mut s = BitSet::new(256);
        let mut model = std::collections::HashSet::new();
        for (bit, insert) in ops {
            if insert {
                s.insert(bit);
                model.insert(bit);
            } else {
                s.remove(bit);
                model.remove(&bit);
            }
        }
        prop_assert_eq!(s.count(), model.len());
        for b in 0..256 {
            prop_assert_eq!(s.contains(b), model.contains(&b));
        }
        let from_iter: Vec<usize> = s.iter().collect();
        let mut sorted: Vec<usize> = model.into_iter().collect();
        sorted.sort_unstable();
        prop_assert_eq!(from_iter, sorted);
    }

    /// k-WTA returns exactly min(k, n) distinct indices whose scores
    /// dominate every non-winner.
    #[test]
    fn kwta_winners_dominate(scores in proptest::collection::vec(-1000i32..1000, 1..300), k in 0usize..310) {
        let winners = k_winners(&scores, k);
        prop_assert_eq!(winners.len(), k.min(scores.len()));
        let wset: std::collections::HashSet<u32> = winners.iter().copied().collect();
        prop_assert_eq!(wset.len(), winners.len(), "distinct winners");
        if let Some(&min_w) = winners.iter().map(|&w| &scores[w as usize]).min() {
            for (i, &s) in scores.iter().enumerate() {
                if !wset.contains(&(i as u32)) {
                    prop_assert!(s <= min_w, "non-winner {} beats winner floor {}", s, min_w);
                }
            }
        }
    }

    /// The page memory never exceeds capacity and always contains the
    /// most recent insert.
    #[test]
    fn memory_capacity_invariant(
        capacity in 1usize..64,
        pages in proptest::collection::vec(0u64..128, 1..300),
    ) {
        let mut m = LocalMemory::new(capacity, EvictionPolicy::Lru);
        for (i, &p) in pages.iter().enumerate() {
            if !m.contains(p) {
                m.insert(p, false, i as u64);
            }
            m.touch(p);
            prop_assert!(m.len() <= capacity);
            prop_assert!(m.contains(p), "just-inserted page resident");
        }
    }

    /// Simulator accounting: hits + late + full = accesses; metrics are
    /// finite and sane for arbitrary traces.
    #[test]
    fn simulator_conservation(
        addrs in proptest::collection::vec(0u64..0x100_0000, 1..400),
        capacity in 1usize..64,
        miss_latency in 1u64..200,
    ) {
        let trace = Trace::from_addrs(addrs);
        let sim = Simulator::new(SimConfig {
            capacity_pages: capacity,
            miss_latency,
            ..SimConfig::default()
        });
        let rep = sim.run(&trace, &mut NoPrefetcher);
        prop_assert_eq!(rep.hits + rep.late_prefetch_hits + rep.full_misses, rep.accesses);
        prop_assert!(rep.miss_rate() >= 0.0 && rep.miss_rate() <= 1.0);
        prop_assert!(rep.total_ticks >= rep.accesses as u64);
    }

    /// Hippocampus capacity policies never exceed their configured
    /// capacity.
    #[test]
    fn hippocampus_capacity_bound(
        capacity in 1usize..64,
        n in 1usize..300,
        policy_pick in 0u8..4,
    ) {
        let policy = match policy_pick {
            0 => CapacityPolicy::Ring { capacity },
            1 => CapacityPolicy::ConfidenceFiltered { capacity, skip_above: 0.8 },
            2 => CapacityPolicy::Consolidating { capacity, max_replays: 4 },
            _ => CapacityPolicy::Averaging { capacity, merge_overlap: 0.9 },
        };
        let mut h = Hippocampus::new(policy);
        for i in 0..n {
            h.store(
                vec![i % 16],
                vec![(i % 50) as u32],
                vec![],
                i % 10,
                (i % 100) as f32 / 100.0,
                i as u64,
                0,
            );
            prop_assert!(h.len() <= capacity, "policy {:?}", policy);
        }
    }

    /// Miss-history windows always produce exactly len-1 deltas capped
    /// by the window.
    #[test]
    fn miss_history_window_bound(window in 1usize..16, pages in proptest::collection::vec(0u64..1000, 0..64)) {
        let mut h = MissHistory::new(window);
        for &p in &pages {
            h.push(p);
        }
        let deltas = h.deltas();
        prop_assert!(deltas.len() <= window);
        if pages.len() >= 2 {
            let expect = pages[pages.len() - 1] as i64 - pages[pages.len() - 2] as i64;
            prop_assert_eq!(h.last_delta(), Some(expect));
        }
    }
}
