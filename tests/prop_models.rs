//! Property-based tests over the learned models and adversarial
//! failure injection against the simulator.

use proptest::prelude::*;

use hnp::core::vsa::HyperVector;
use hnp::core::{ClsConfig, ClsPrefetcher};
use hnp::hebbian::{HebbianConfig, HebbianNetwork};
use hnp::memsim::prefetcher::{MissEvent, Prefetcher};
use hnp::memsim::{SimConfig, Simulator};
use hnp::nn::transformer::{TransformerConfig, TransformerNetwork};
use hnp::nn::{LstmConfig, LstmNetwork};
use hnp::traces::Trace;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A hostile prefetcher: returns arbitrary (possibly absurd) pages.
struct Chaos {
    pages: Vec<u64>,
    i: usize,
}

impl Prefetcher for Chaos {
    fn name(&self) -> &str {
        "chaos"
    }
    fn on_miss(&mut self, _miss: &MissEvent) -> Vec<u64> {
        let mut out = Vec::new();
        for _ in 0..3 {
            if self.pages.is_empty() {
                break;
            }
            out.push(self.pages[self.i % self.pages.len()]);
            self.i += 1;
        }
        out
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The simulator's accounting invariants hold under an adversarial
    /// prefetcher emitting arbitrary pages (including u64::MAX).
    #[test]
    fn simulator_survives_chaos_prefetcher(
        addrs in proptest::collection::vec(0u64..0x10_0000, 20..200),
        garbage in proptest::collection::vec(any::<u64>(), 1..32),
        capacity in 2usize..64,
    ) {
        let trace = Trace::from_addrs(addrs);
        let sim = Simulator::new(SimConfig {
            capacity_pages: capacity,
            ..SimConfig::default()
        });
        let mut chaos = Chaos { pages: garbage, i: 0 };
        let rep = sim.run(&trace, &mut chaos);
        prop_assert_eq!(rep.hits + rep.late_prefetch_hits + rep.full_misses, rep.accesses);
        prop_assert!(rep.prefetches_useful <= rep.prefetches_issued);
        prop_assert!(rep.prefetches_unused <= rep.prefetches_issued);
    }

    /// The Hebbian network accepts arbitrary valid token streams
    /// without panicking, keeps confidence in [0, 1], and reports
    /// nonzero op counts.
    #[test]
    fn hebbian_handles_arbitrary_streams(
        tokens in proptest::collection::vec(0usize..16, 2..80),
        seed in 0u64..32,
    ) {
        let mut net = HebbianNetwork::new(HebbianConfig {
            seed,
            ..HebbianConfig::tiny()
        });
        for w in tokens.windows(2) {
            let o = net.train_step(&[w[0] as u32], w[1]);
            prop_assert!((0.0..=1.0).contains(&o.confidence));
            prop_assert!(o.predicted < 16);
            prop_assert!(o.ops > 0);
        }
    }

    /// LSTM and transformer training never produces NaNs in their
    /// predictions, whatever the (valid) stream.
    #[test]
    fn dl_models_stay_finite(
        tokens in proptest::collection::vec(0usize..12, 6..60),
    ) {
        let mut lstm = LstmNetwork::new(LstmConfig::tiny());
        let mut tf = TransformerNetwork::new(TransformerConfig::tiny());
        for w in tokens.windows(5) {
            let l = lstm.train_window(&w[..4], w[4], 0.1);
            prop_assert!(l.loss.is_finite());
            prop_assert!(l.probs.iter().all(|p| p.is_finite()));
            let t = tf.train_window(&w[..4], w[4], 0.1);
            prop_assert!(t.loss.is_finite());
            prop_assert!(t.probs.iter().all(|p| p.is_finite()));
        }
    }

    /// VSA algebra: binding is self-inverse and permutation is
    /// invertible by completing the rotation, for arbitrary seeds.
    #[test]
    fn vsa_algebra_laws(seed in any::<u64>(), k in 1usize..1000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = HyperVector::random(8, &mut rng);
        let b = HyperVector::random(8, &mut rng);
        prop_assert_eq!(a.bind(&b).bind(&b), a.clone());
        let d = a.dim();
        prop_assert_eq!(a.permute(k % d).permute(d - (k % d)), a.clone());
        prop_assert!((a.similarity(&b) - b.similarity(&a)).abs() < 1e-12);
    }

    /// The CLS prefetcher emits only non-negative, bounded candidate
    /// lists and never panics on arbitrary page streams (including
    /// stream tags).
    #[test]
    fn cls_prefetcher_is_total(
        misses in proptest::collection::vec((0u64..0x1000, 0u16..4), 2..120),
    ) {
        let mut p = ClsPrefetcher::new(ClsConfig::small());
        for (i, &(page, stream)) in misses.iter().enumerate() {
            let out = p.on_miss(&MissEvent {
                page,
                tick: i as u64,
                stream,
            });
            // Width 2 x lookahead 2 -> at most 4 candidates.
            prop_assert!(out.len() <= 4, "candidates {}", out.len());
        }
    }
}
