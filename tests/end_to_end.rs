//! Cross-crate integration tests: the full trace -> simulator ->
//! prefetcher pipeline, exercised through the umbrella crate's public
//! API exactly as a downstream user would.

use hnp::baselines::{
    LstmPrefetcher, LstmPrefetcherConfig, MarkovConfig, MarkovPrefetcher, StrideConfig,
    StridePrefetcher,
};
use hnp::core::{ClsConfig, ClsPrefetcher};
use hnp::memsim::{NoPrefetcher, SimConfig, Simulator};
use hnp::traces::apps::AppWorkload;
use hnp::traces::{phased, Pattern};

fn sim_for(trace: &hnp::traces::Trace) -> Simulator {
    Simulator::new(SimConfig::default().sized_to(trace, 0.5))
}

#[test]
fn cls_prefetcher_beats_baseline_on_single_region_patterns() {
    // Stride, pointer-chase and pointer-offset keep their deltas
    // inside the vocabulary; the CLS prefetcher must learn all three.
    for pattern in [
        Pattern::Stride,
        Pattern::PointerChase,
        Pattern::PointerOffset,
    ] {
        let trace = pattern.generate(6_000, 3);
        let sim = sim_for(&trace);
        let base = sim.run(&trace, &mut NoPrefetcher);
        if base.misses() < 100 {
            // Pattern fits in memory; nothing to remove.
            continue;
        }
        let mut cls = ClsPrefetcher::new(ClsConfig::default());
        let rep = sim.run(&trace, &mut cls);
        assert!(
            rep.pct_misses_removed(&base) > 10.0,
            "{}: removed only {:.1}%",
            pattern.name(),
            rep.pct_misses_removed(&base)
        );
    }
}

#[test]
fn region_alternating_patterns_are_the_53_limitation_but_gating_prevents_harm() {
    // Indirect-stride alternates between two far-apart regions, so
    // every page delta falls outside any bounded vocabulary — the
    // encoding limitation §5.3 names. A delta model cannot profit
    // here; confidence-gated issuing must at least keep it from
    // *hurting* (pollution would otherwise make it worse than no
    // prefetching at all).
    let trace = Pattern::IndirectStride.generate(6_000, 3);
    let sim = sim_for(&trace);
    let base = sim.run(&trace, &mut NoPrefetcher);
    let mut cls = ClsPrefetcher::new(ClsConfig::default());
    let rep = sim.run(&trace, &mut cls);
    let removed = rep.pct_misses_removed(&base);
    assert!(
        removed > -5.0,
        "gated model must not pollute: {removed:.1}%"
    );
    // A page-correlation model (Markov) is immune to the encoding
    // limit and must do clearly better.
    let markov = sim.run(
        &trace,
        &mut MarkovPrefetcher::with_config(MarkovConfig::default()),
    );
    assert!(
        markov.pct_misses_removed(&base) > removed + 20.0,
        "markov {:.1}% vs delta-model {removed:.1}%",
        markov.pct_misses_removed(&base)
    );
}

#[test]
fn learned_prefetchers_handle_pattern_mixes_that_defeat_stride() {
    // Half the trace is pointer chasing, which defeats stride
    // detection outright; the learned model handles both halves.
    let trace = phased::phases(
        &[(Pattern::PointerChase, 5_000), (Pattern::Stride, 5_000)],
        11,
    );
    let sim = sim_for(&trace);
    let base = sim.run(&trace, &mut NoPrefetcher);
    let stride = sim.run(
        &trace,
        &mut StridePrefetcher::with_config(StrideConfig::default()),
    );
    let mut cls = ClsPrefetcher::new(ClsConfig::default());
    let cls_rep = sim.run(&trace, &mut cls);
    assert!(
        cls_rep.pct_misses_removed(&base) > stride.pct_misses_removed(&base),
        "cls {:.1}% must beat stride {:.1}% on the mix",
        cls_rep.pct_misses_removed(&base),
        stride.pct_misses_removed(&base)
    );
}

#[test]
fn hebbian_is_comparable_to_lstm_on_an_app_workload() {
    // The paper's Fig.-5 headline at integration-test scale.
    let trace = AppWorkload::PageRankLike.generate(40_000, 5);
    let sim = sim_for(&trace);
    let base = sim.run(&trace, &mut NoPrefetcher);
    let mut heb = ClsPrefetcher::new(ClsConfig::hebbian_only());
    let heb_rep = sim.run(&trace, &mut heb);
    let mut lstm = LstmPrefetcher::new(LstmPrefetcherConfig::default());
    let lstm_rep = sim.run(&trace, &mut lstm);
    let h = heb_rep.pct_misses_removed(&base);
    let l = lstm_rep.pct_misses_removed(&base);
    assert!(h > 15.0, "hebbian {h:.1}%");
    assert!(l > 15.0, "lstm {l:.1}%");
    assert!(
        (0.5..2.0).contains(&(h / l)),
        "comparable accuracy claim: hebbian {h:.1}% vs lstm {l:.1}%"
    );
}

#[test]
fn full_pipeline_is_deterministic() {
    let trace = AppWorkload::Graph500Like.generate(20_000, 9);
    let sim = sim_for(&trace);
    let runs: Vec<_> = (0..2)
        .map(|_| {
            let mut cls = ClsPrefetcher::new(ClsConfig::default());
            sim.run(&trace, &mut cls)
        })
        .collect();
    assert_eq!(runs[0].full_misses, runs[1].full_misses);
    assert_eq!(runs[0].prefetches_issued, runs[1].prefetches_issued);
    assert_eq!(runs[0].prefetches_useful, runs[1].prefetches_useful);
    assert_eq!(runs[0].total_ticks, runs[1].total_ticks);
}

#[test]
fn markov_and_cls_agree_on_access_conservation() {
    // hits + late + full misses == accesses, for any prefetcher.
    let trace = AppWorkload::McfLike.generate(15_000, 1);
    let sim = sim_for(&trace);
    for rep in [
        sim.run(&trace, &mut NoPrefetcher),
        sim.run(
            &trace,
            &mut MarkovPrefetcher::with_config(MarkovConfig::default().with_capacity(1024)),
        ),
        sim.run(&trace, &mut ClsPrefetcher::new(ClsConfig::default())),
    ] {
        assert_eq!(
            rep.hits + rep.late_prefetch_hits + rep.full_misses,
            rep.accesses,
            "{}: access conservation",
            rep.prefetcher
        );
        assert!(rep.prefetches_useful <= rep.prefetches_issued);
    }
}

#[test]
fn trace_io_roundtrip_preserves_simulation_results() {
    let trace = AppWorkload::TensorFlowLike.generate(10_000, 2);
    let path = std::env::temp_dir().join(format!("hnp-e2e-{}.hnpt", std::process::id()));
    hnp::traces::io::write_binary(&trace, &path).expect("write");
    let back = hnp::traces::io::read_binary(&path).expect("read");
    std::fs::remove_file(&path).ok();
    let sim = sim_for(&trace);
    let a = sim.run(&trace, &mut NoPrefetcher);
    let b = sim.run(&back, &mut NoPrefetcher);
    assert_eq!(a.full_misses, b.full_misses);
    assert_eq!(a.total_ticks, b.total_ticks);
}
