//! The CPU-GPU unified-virtual-memory simulator.
//!
//! Models the paper's second target (§4, Fig. 6 right): warps execute
//! in lockstep against a shared GPU memory; a step in which any warp
//! faults stalls the whole machine while the batch of faulting pages
//! migrates over the interconnect ("the SIMT execution can produce
//! many concurrent faults, and the lockstep execution model means that
//! a single fault can stall many threads"). Prefetch decisions are
//! made centrally in the CPU-side driver, which sees all warps' fault
//! streams interleaved — hence the paper's suggestion that UVM wants a
//! *throughput*-optimized, wide prefetcher.

use serde::Serialize;

use hnp_memsim::memory::LocalMemory;
use hnp_memsim::prefetcher::{MissEvent, Prefetcher};
use hnp_memsim::EvictionPolicy;
use hnp_obs::{Event, FaultKind as ObsFaultKind, FeedbackKind, Registry};
use hnp_trace::Trace;

use crate::fault::FaultInjector;

/// The single prefetcher notification point (see `disagg::notify`):
/// prefetcher-visible occurrences are dispatched as typed events and
/// mirrored into the observer registry.
fn notify(obs: &Registry, prefetcher: &mut dyn Prefetcher, ev: Event) {
    prefetcher.on_event(&ev);
    obs.emit(&ev);
}

/// UVM simulator parameters.
#[derive(Debug, Clone)]
pub struct UvmConfig {
    /// GPU-memory capacity as a fraction of the combined footprint.
    pub capacity_frac: f64,
    /// Ticks to service a fault batch (one migration round trip; the
    /// batch migrates together).
    pub fault_latency: u64,
    /// Extra ticks per page in a batch beyond the first (PCIe
    /// serialization).
    pub per_page_latency: u64,
    /// Outstanding prefetched pages.
    pub max_inflight: usize,
    /// Prefetches accepted per fault.
    pub max_issue_per_fault: usize,
    /// Base backoff in ticks before retrying a fault-batch migration
    /// dropped by a lossy interconnect (doubles per attempt, capped at
    /// `retry_backoff_cap`).
    pub retry_backoff: u64,
    /// Ceiling for the exponential retry backoff.
    pub retry_backoff_cap: u64,
    /// Dropped-migration retries before declaring a timeout.
    pub max_retries: u32,
    /// Extra stall charged when migration retries are exhausted (the
    /// recovery path — the batch then completes out-of-band).
    pub timeout_penalty: u64,
    /// Observer registry; every decision point in the run emits a
    /// typed event into it. An empty registry keeps the run
    /// bit-identical to an unobserved one.
    pub obs: Registry,
}

impl Default for UvmConfig {
    fn default() -> Self {
        Self {
            capacity_frac: 0.5,
            fault_latency: 200,
            per_page_latency: 5,
            max_inflight: 64,
            max_issue_per_fault: 4,
            retry_backoff: 50,
            retry_backoff_cap: 800,
            max_retries: 4,
            timeout_penalty: 1000,
            obs: Registry::new(),
        }
    }
}

impl UvmConfig {
    /// Sets GPU-memory capacity as a fraction of the footprint.
    pub fn with_capacity_frac(mut self, frac: f64) -> Self {
        self.capacity_frac = frac;
        self
    }

    /// Sets the base fault-batch migration latency in ticks.
    pub fn with_fault_latency(mut self, ticks: u64) -> Self {
        self.fault_latency = ticks;
        self
    }

    /// Sets the per-page PCIe serialization cost.
    pub fn with_per_page_latency(mut self, ticks: u64) -> Self {
        self.per_page_latency = ticks;
        self
    }

    /// Sets the in-flight prefetched-page cap.
    pub fn with_max_inflight(mut self, n: usize) -> Self {
        self.max_inflight = n;
        self
    }

    /// Sets the per-fault prefetch issue cap.
    pub fn with_max_issue_per_fault(mut self, n: usize) -> Self {
        self.max_issue_per_fault = n;
        self
    }

    /// Attaches an observer registry to the run.
    pub fn with_observer(mut self, obs: Registry) -> Self {
        self.obs = obs;
        self
    }
}

/// Counters from one UVM run.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct UvmReport {
    /// Prefetcher name.
    pub prefetcher: String,
    /// Lockstep steps executed.
    pub steps: u64,
    /// Total accesses across warps.
    pub accesses: usize,
    /// Fault batches serviced.
    pub fault_batches: usize,
    /// Total faulting pages.
    pub faults: usize,
    /// Largest fault batch.
    pub max_batch: usize,
    /// Prefetches issued.
    pub prefetches_issued: usize,
    /// Useful prefetches.
    pub prefetches_useful: usize,
    /// In-flight prefetches cancelled by faults (lossy link, device
    /// reset).
    pub prefetches_cancelled: usize,
    /// Fault-batch migration retries after dropped transfers.
    pub retries: usize,
    /// Migrations that exhausted their retries.
    pub timeouts: usize,
    /// Device resets (crash events) survived.
    pub restarts: usize,
    /// Total ticks (the throughput metric: lower = higher throughput).
    pub total_ticks: u64,
}

impl UvmReport {
    /// Faults per kilo-access.
    pub fn faults_per_kaccess(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            1000.0 * self.faults as f64 / self.accesses as f64
        }
    }

    /// Throughput in accesses per kilo-tick.
    pub fn throughput(&self) -> f64 {
        if self.total_ticks == 0 {
            0.0
        } else {
            1000.0 * self.accesses as f64 / self.total_ticks as f64
        }
    }

    /// Percentage of `baseline`'s faults removed.
    pub fn pct_faults_removed(&self, baseline: &UvmReport) -> f64 {
        if baseline.faults == 0 {
            0.0
        } else {
            100.0 * (baseline.faults as f64 - self.faults as f64) / baseline.faults as f64
        }
    }
}

/// The UVM simulator.
pub struct UvmSim {
    cfg: UvmConfig,
}

impl UvmSim {
    /// Creates a simulator.
    pub fn new(cfg: UvmConfig) -> Self {
        Self { cfg }
    }

    /// Runs `warps` (one trace per warp) against the centralized
    /// `prefetcher`.
    ///
    /// # Panics
    ///
    /// Panics if `warps` is empty.
    pub fn run(&self, warps: &[Trace], prefetcher: &mut dyn Prefetcher) -> UvmReport {
        self.run_with_faults(warps, prefetcher, &mut FaultInjector::disabled())
    }

    /// [`Self::run`] under a fault injector. The GPU is one failure
    /// domain: any crash event resets the whole device (memory
    /// flushed, in-flight prefetches cancelled, prefetcher transient
    /// state dropped). With an empty schedule the report is
    /// bit-identical to the fault-free run.
    ///
    /// # Panics
    ///
    /// Panics if `warps` is empty.
    pub fn run_with_faults(
        &self,
        warps: &[Trace],
        prefetcher: &mut dyn Prefetcher,
        injector: &mut FaultInjector,
    ) -> UvmReport {
        assert!(!warps.is_empty(), "no warps");
        let combined_footprint: usize = {
            let mut pages = std::collections::BTreeSet::new();
            for w in warps {
                pages.extend(w.pages());
            }
            pages.len()
        };
        let capacity = ((combined_footprint as f64 * self.cfg.capacity_frac) as usize).max(1);
        let mut memory = LocalMemory::new(capacity, EvictionPolicy::Lru);
        let mut inflight: Vec<(u64, u64)> = Vec::new();
        let mut cursors = vec![0usize; warps.len()];
        let mut now: u64 = 0;
        let mut report = UvmReport {
            prefetcher: prefetcher.name().to_string(),
            steps: 0,
            accesses: 0,
            fault_batches: 0,
            faults: 0,
            max_batch: 0,
            prefetches_issued: 0,
            prefetches_useful: 0,
            prefetches_cancelled: 0,
            retries: 0,
            timeouts: 0,
            restarts: 0,
            total_ticks: 0,
        };
        let obs = &self.cfg.obs;
        let mut demand_misses: u64 = 0;
        loop {
            // Device reset: the GPU is a single failure domain, so any
            // crash event flushes memory, cancels all in-flight
            // prefetches, and drops the driver model's transient
            // state; the device stays down until the event ends.
            if let Some(restart) = injector.take_crash_any(now) {
                report.restarts += 1;
                report.prefetches_cancelled += inflight.len();
                for (page, _) in inflight.drain(..) {
                    notify(
                        obs,
                        prefetcher,
                        Event::Feedback {
                            tick: now,
                            page,
                            kind: FeedbackKind::Cancelled,
                            remaining: 0,
                        },
                    );
                }
                memory.flush();
                notify(
                    obs,
                    prefetcher,
                    Event::Fault {
                        tick: now,
                        domain: 0,
                        kind: ObsFaultKind::Crash,
                    },
                );
                now = now.max(restart);
            }
            // Land arrived prefetches.
            inflight.sort_unstable();
            let mut rest = Vec::new();
            for &(page, arrival) in &inflight {
                if arrival <= now {
                    let _ = memory.insert(page, true, now);
                } else {
                    rest.push((page, arrival));
                }
            }
            inflight = rest;
            // One lockstep step: every unfinished warp issues its next
            // access.
            let mut faults: Vec<(usize, u64)> = Vec::new();
            let mut any_active = false;
            for (w, trace) in warps.iter().enumerate() {
                if cursors[w] >= trace.len() {
                    continue;
                }
                any_active = true;
                let access = trace.accesses()[cursors[w]];
                let page = access.page(trace.page_shift());
                report.accesses += 1;
                if memory.contains(page) {
                    let fresh = memory
                        .meta(page)
                        .map(|m| m.prefetched && !m.touched)
                        .unwrap_or(false);
                    memory.touch(page);
                    if fresh {
                        report.prefetches_useful += 1;
                        notify(
                            obs,
                            prefetcher,
                            Event::Feedback {
                                tick: now,
                                page,
                                kind: FeedbackKind::Useful,
                                remaining: 0,
                            },
                        );
                    }
                    obs.emit(&Event::Hit { tick: now, page });
                    cursors[w] += 1;
                } else {
                    faults.push((w, page));
                    // The warp retries this access after the batch.
                }
            }
            if !any_active {
                break;
            }
            report.steps += 1;
            now += 1;
            if faults.is_empty() {
                continue;
            }
            // Service the fault batch: the whole GPU stalls while the
            // batch migrates together.
            let mut batch_pages: Vec<u64> = faults.iter().map(|&(_, p)| p).collect();
            batch_pages.sort_unstable();
            batch_pages.dedup();
            report.fault_batches += 1;
            report.faults += batch_pages.len();
            report.max_batch = report.max_batch.max(batch_pages.len());
            let base_service =
                self.cfg.fault_latency + self.cfg.per_page_latency * (batch_pages.len() as u64 - 1);
            // A lossy interconnect can drop the whole batch migration:
            // each drop costs the wasted (shaped) round trip plus a
            // capped exponential backoff; exhausted retries time out
            // and the recovery path completes the batch with a flat
            // penalty so warps always make progress.
            let mut service = 0u64;
            let mut attempt = 0u32;
            loop {
                if !injector.transfer_dropped(now + service) {
                    service += injector.transfer_latency(now + service, base_service);
                    break;
                }
                service += injector.transfer_latency(now + service, base_service);
                if attempt >= self.cfg.max_retries {
                    report.timeouts += 1;
                    service += self.cfg.timeout_penalty;
                    obs.emit(&Event::Fault {
                        tick: now,
                        domain: 0,
                        kind: ObsFaultKind::Timeout,
                    });
                    // The recovery path tears down and re-establishes
                    // the interconnect: every outstanding prefetch
                    // migration dies with it. The cancellations are
                    // the model's only signal — a transport-level
                    // reset stays below its horizon.
                    report.prefetches_cancelled += inflight.len();
                    for (pg, _) in inflight.drain(..) {
                        notify(
                            obs,
                            prefetcher,
                            Event::Feedback {
                                tick: now,
                                page: pg,
                                kind: FeedbackKind::Cancelled,
                                remaining: 0,
                            },
                        );
                    }
                    break;
                }
                report.retries += 1;
                obs.emit(&Event::Fault {
                    tick: now,
                    domain: 0,
                    kind: ObsFaultKind::Retry,
                });
                service +=
                    (self.cfg.retry_backoff << attempt.min(16)).min(self.cfg.retry_backoff_cap);
                attempt += 1;
            }
            // Driver-side prefetching: consult the model per faulting
            // page (interleaved streams), issue concurrently with the
            // migration.
            let arrival = now + service;
            for &(w, page) in &faults {
                demand_misses += 1;
                obs.emit(&Event::Miss {
                    tick: now,
                    page,
                    late: false,
                    stall: service,
                });
                // Deduplicate: only the first warp faulting a page
                // reports it (the driver coalesces duplicate faults).
                if !batch_pages.contains(&page) {
                    continue;
                }
                batch_pages.retain(|&p| p != page);
                let miss = MissEvent {
                    page,
                    tick: now,
                    stream: w as u16,
                };
                let candidates = prefetcher.on_miss(&miss);
                let mut accepted = 0;
                for cand in candidates {
                    if accepted >= self.cfg.max_issue_per_fault {
                        break;
                    }
                    if memory.contains(cand) || inflight.iter().any(|&(p, _)| p == cand) {
                        continue;
                    }
                    if inflight.len() >= self.cfg.max_inflight {
                        break;
                    }
                    // Lossy interconnects silently eat prefetches; the
                    // model learns of the cancellation so it can back
                    // off (hnp_memsim::resilient reacts to these).
                    if injector.transfer_dropped(now) {
                        report.prefetches_cancelled += 1;
                        obs.emit(&Event::Fault {
                            tick: now,
                            domain: 0,
                            kind: ObsFaultKind::Drop,
                        });
                        notify(
                            obs,
                            prefetcher,
                            Event::Feedback {
                                tick: now,
                                page: cand,
                                kind: FeedbackKind::Cancelled,
                                remaining: 0,
                            },
                        );
                        continue;
                    }
                    inflight.push((cand, arrival));
                    report.prefetches_issued += 1;
                    obs.emit(&Event::PrefetchIssued {
                        tick: now,
                        page: cand,
                        arrival,
                    });
                    accepted += 1;
                }
                memory.insert(page, false, arrival);
                memory.touch(page);
            }
            now += service;
        }
        report.total_ticks = now;
        obs.emit(&Event::RunEnd {
            ticks: now,
            accesses: report.accesses as u64,
            hits: report.accesses as u64 - demand_misses,
            misses: demand_misses,
        });
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hnp_memsim::NoPrefetcher;
    use hnp_trace::Pattern;

    fn warps(n: usize) -> Vec<Trace> {
        (0..n)
            .map(|i| {
                Pattern::Stride
                    .generate(800, i as u64)
                    .with_stream(i as u16)
            })
            .collect()
    }

    struct NextLine;
    impl Prefetcher for NextLine {
        fn name(&self) -> &str {
            "next-line"
        }
        fn on_miss(&mut self, miss: &MissEvent) -> Vec<u64> {
            vec![miss.page + 1, miss.page + 2]
        }
    }

    #[test]
    fn all_warps_complete() {
        let ws = warps(4);
        let sim = UvmSim::new(UvmConfig::default());
        let rep = sim.run(&ws, &mut NoPrefetcher);
        assert!(rep.accesses >= 4 * 800, "retries recount accesses");
        assert!(rep.steps >= 800);
        assert!(rep.fault_batches > 0);
    }

    #[test]
    fn concurrent_faults_batch_together() {
        // Four warps over disjoint regions: lockstep misses coincide.
        let ws: Vec<Trace> = (0..4)
            .map(|i| {
                let base = 0x1000_0000u64 * (i + 1) as u64;
                Trace::from_addrs((0..500).map(|k| base + k * 4096).collect())
            })
            .collect();
        let sim = UvmSim::new(UvmConfig::default());
        let rep = sim.run(&ws, &mut NoPrefetcher);
        assert!(rep.max_batch >= 2, "batches form: max {}", rep.max_batch);
    }

    #[test]
    fn prefetching_improves_throughput() {
        let ws = warps(4);
        let sim = UvmSim::new(UvmConfig::default());
        let base = sim.run(&ws, &mut NoPrefetcher);
        let rep = sim.run(&ws, &mut NextLine);
        assert!(
            rep.throughput() > base.throughput(),
            "prefetch {} vs base {}",
            rep.throughput(),
            base.throughput()
        );
        assert!(rep.pct_faults_removed(&base) > 30.0);
    }

    #[test]
    fn per_page_latency_penalizes_big_batches() {
        let ws: Vec<Trace> = (0..8)
            .map(|i| {
                let base = 0x1000_0000u64 * (i + 1) as u64;
                Trace::from_addrs((0..300).map(|k| base + k * 4096).collect())
            })
            .collect();
        let cheap = UvmSim::new(UvmConfig {
            per_page_latency: 0,
            ..UvmConfig::default()
        })
        .run(&ws, &mut NoPrefetcher);
        let costly = UvmSim::new(UvmConfig {
            per_page_latency: 50,
            ..UvmConfig::default()
        })
        .run(&ws, &mut NoPrefetcher);
        assert!(costly.total_ticks > cheap.total_ticks);
    }

    #[test]
    fn report_metrics_are_consistent() {
        let ws = warps(2);
        let sim = UvmSim::new(UvmConfig::default());
        let rep = sim.run(&ws, &mut NextLine);
        assert!(rep.faults_per_kaccess() > 0.0);
        assert!(rep.prefetches_useful <= rep.prefetches_issued);
    }
}
