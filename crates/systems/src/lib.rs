//! Target-system simulators for §4 of the paper.
//!
//! Two deployment contexts with opposite constraints:
//!
//! * [`disagg`] — a disaggregated-memory cluster (after MIND/LegoOS):
//!   compute nodes fault one page at a time against a remote pool, so
//!   prefetching is *latency*-oriented, and scarce switch resources
//!   argue for one small prefetcher per node;
//! * [`uvm`] — a CPU-GPU unified-virtual-memory system: lockstep SIMT
//!   execution produces *batches* of concurrent faults handled by a
//!   centralized driver-side prefetcher that sees all streams
//!   interleaved, so prefetching is *throughput*-oriented.
//!
//! Both reuse the page-memory substrate of `hnp-memsim` and accept any
//! [`hnp_memsim::Prefetcher`].
//!
//! The [`fault`] module adds scripted, seeded fault injection (link
//! spikes, lossy links, brownouts, slowdowns, node crashes) to both
//! simulators; an empty schedule leaves runs bit-identical to the
//! fault-free path.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod disagg;
pub mod fault;
pub mod uvm;

pub use disagg::{DisaggConfig, DisaggReport, DisaggregatedCluster};
pub use fault::{FaultEvent, FaultInjector, FaultKind, FaultSchedule, FaultStats};
pub use uvm::{UvmConfig, UvmReport, UvmSim};
