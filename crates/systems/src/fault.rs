//! Fault injection for the system-level simulators.
//!
//! Real disaggregated clusters and CPU-GPU interconnects degrade:
//! links spike and jitter, switches brown out, remote pools slow down,
//! transfers get dropped, nodes crash and restart with cold caches.
//! A prefetcher trained on the fair-weather access stream can turn
//! from an accelerant into a liability under these conditions (every
//! wasted prefetch now competes with demand traffic for a degraded
//! link), so the simulators accept a scripted, seeded
//! [`FaultInjector`] and the prefetcher stack gets explicit
//! degradation hooks (see `hnp_memsim::resilient`).
//!
//! Determinism contract: the injector's RNG is consulted **only while
//! a fault event is active**, so an empty [`FaultSchedule`] leaves the
//! simulation bit-identical to a run without any injector at all.

use std::collections::BTreeSet;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;

/// One kind of injected fault.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// The link adds `extra` ticks to every transfer, plus a uniform
    /// random jitter in `0..=jitter` ticks.
    LatencySpike {
        /// Deterministic extra latency per transfer.
        extra: u64,
        /// Upper bound of the per-transfer uniform jitter (0 = none).
        jitter: u64,
    },
    /// Each transfer is independently dropped with probability
    /// `drop_prob`. Dropped demand fetches are retried with backoff;
    /// dropped prefetches are cancelled.
    LossyLink {
        /// Per-transfer drop probability in `[0, 1]`.
        drop_prob: f64,
    },
    /// The shared switch browns out to `slots` concurrent transfers
    /// (overrides the configured `shared_link_slots`, even an
    /// uncontended `0`).
    Brownout {
        /// Transfer slots available while the event is active.
        slots: usize,
    },
    /// The remote pool serves transfers `factor`× slower.
    RemoteSlowdown {
        /// Latency multiplier (≥ 1.0 slows the pool down).
        factor: f64,
    },
    /// Node `node` crashes at the event start and restarts when the
    /// event ends: its local memory is flushed, in-flight prefetches
    /// are cancelled, and its prefetcher's transient state is reset.
    NodeCrash {
        /// Index of the crashing node (ignored by the UVM simulator,
        /// where any crash resets the whole device).
        node: usize,
    },
}

/// A fault active during `[start, start + duration)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultEvent {
    /// First tick at which the fault is active.
    pub start: u64,
    /// Number of ticks the fault stays active.
    pub duration: u64,
    /// What breaks.
    pub kind: FaultKind,
}

impl FaultEvent {
    /// Whether the event is active at `tick`.
    pub fn active(&self, tick: u64) -> bool {
        tick >= self.start && tick < self.end()
    }

    /// First tick at which the event is over.
    pub fn end(&self) -> u64 {
        self.start.saturating_add(self.duration)
    }
}

/// A scripted list of fault events.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultSchedule {
    events: Vec<FaultEvent>,
}

impl FaultSchedule {
    /// The empty schedule: injects nothing, perturbs nothing.
    pub fn none() -> Self {
        Self::default()
    }

    /// A schedule from explicit events.
    pub fn new(events: Vec<FaultEvent>) -> Self {
        Self { events }
    }

    /// Whether the schedule has no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The scripted events.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Appends an event (builder style).
    pub fn with(mut self, event: FaultEvent) -> Self {
        self.events.push(event);
        self
    }

    /// Appends a latency spike.
    pub fn with_latency_spike(self, start: u64, duration: u64, extra: u64, jitter: u64) -> Self {
        self.with(FaultEvent {
            start,
            duration,
            kind: FaultKind::LatencySpike { extra, jitter },
        })
    }

    /// Appends a lossy-link window.
    pub fn with_lossy_link(self, start: u64, duration: u64, drop_prob: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&drop_prob),
            "drop_prob must be in [0,1]"
        );
        self.with(FaultEvent {
            start,
            duration,
            kind: FaultKind::LossyLink { drop_prob },
        })
    }

    /// Appends a switch brownout.
    pub fn with_brownout(self, start: u64, duration: u64, slots: usize) -> Self {
        self.with(FaultEvent {
            start,
            duration,
            kind: FaultKind::Brownout { slots },
        })
    }

    /// Appends a remote-pool slowdown.
    pub fn with_slowdown(self, start: u64, duration: u64, factor: f64) -> Self {
        assert!(factor >= 0.0, "slowdown factor must be non-negative");
        self.with(FaultEvent {
            start,
            duration,
            kind: FaultKind::RemoteSlowdown { factor },
        })
    }

    /// Appends a node crash/restart.
    pub fn with_crash(self, start: u64, duration: u64, node: usize) -> Self {
        self.with(FaultEvent {
            start,
            duration,
            kind: FaultKind::NodeCrash { node },
        })
    }

    /// Parses the CLI/bench schedule DSL: a comma-separated list of
    /// colon-separated events —
    ///
    /// * `spike:START:DUR:EXTRA[:JITTER]`
    /// * `lossy:START:DUR:PROB`
    /// * `brownout:START:DUR:SLOTS`
    /// * `slow:START:DUR:FACTOR`
    /// * `crash:START:DUR:NODE`
    ///
    /// e.g. `lossy:1000:500:0.3,crash:3000:200:1`. An empty string
    /// parses to the empty schedule.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let mut schedule = Self::none();
        for item in spec.split(',').map(str::trim).filter(|s| !s.is_empty()) {
            let parts: Vec<&str> = item.split(':').collect();
            let bad = |what: &str| format!("bad {what} in fault event `{item}`");
            if parts.len() < 4 {
                return Err(format!(
                    "fault event `{item}` needs KIND:START:DUR:ARG (got {} fields)",
                    parts.len()
                ));
            }
            let start: u64 = parts[1].parse().map_err(|_| bad("start"))?;
            let duration: u64 = parts[2].parse().map_err(|_| bad("duration"))?;
            let kind = match parts[0] {
                "spike" => FaultKind::LatencySpike {
                    extra: parts[3].parse().map_err(|_| bad("extra"))?,
                    jitter: match parts.get(4) {
                        Some(j) => j.parse().map_err(|_| bad("jitter"))?,
                        None => 0,
                    },
                },
                "lossy" => {
                    let p: f64 = parts[3].parse().map_err(|_| bad("drop_prob"))?;
                    if !(0.0..=1.0).contains(&p) {
                        return Err(bad("drop_prob (must be in [0,1])"));
                    }
                    FaultKind::LossyLink { drop_prob: p }
                }
                "brownout" => FaultKind::Brownout {
                    slots: parts[3].parse().map_err(|_| bad("slots"))?,
                },
                "slow" => FaultKind::RemoteSlowdown {
                    factor: parts[3].parse().map_err(|_| bad("factor"))?,
                },
                "crash" => FaultKind::NodeCrash {
                    node: parts[3].parse().map_err(|_| bad("node"))?,
                },
                other => return Err(format!("unknown fault kind `{other}` in `{item}`")),
            };
            schedule.events.push(FaultEvent {
                start,
                duration,
                kind,
            });
        }
        Ok(schedule)
    }
}

/// Counters of what the injector actually did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct FaultStats {
    /// Transfers dropped by lossy-link events.
    pub transfers_dropped: u64,
    /// Extra latency ticks added by spikes and slowdowns.
    pub extra_latency: u64,
    /// Crash events delivered.
    pub crashes_fired: u64,
}

/// The seeded, deterministic fault injector.
///
/// The simulators consult it on every transfer and at every round
/// boundary. All randomness (jitter, drop decisions) comes from one
/// seeded RNG that is touched only while a relevant event is active,
/// so a given `(schedule, seed)` pair replays identically — and the
/// empty schedule never perturbs the simulation at all.
#[derive(Debug)]
pub struct FaultInjector {
    schedule: FaultSchedule,
    rng: StdRng,
    /// Crash events already delivered, by index into the schedule.
    crashes_taken: BTreeSet<usize>,
    /// What-happened counters.
    pub stats: FaultStats,
}

impl FaultInjector {
    /// Builds an injector for `schedule` with the RNG `seed`.
    pub fn new(schedule: FaultSchedule, seed: u64) -> Self {
        Self {
            schedule,
            rng: StdRng::seed_from_u64(seed),
            crashes_taken: BTreeSet::new(),
            stats: FaultStats::default(),
        }
    }

    /// An injector that never fires (the empty schedule).
    pub fn disabled() -> Self {
        Self::new(FaultSchedule::none(), 0)
    }

    /// Whether the schedule is empty (fast path for the simulators).
    pub fn is_idle(&self) -> bool {
        self.schedule.is_empty()
    }

    /// The latency of a transfer started at `tick` whose fault-free
    /// latency is `base`, after active spikes/slowdowns.
    pub fn transfer_latency(&mut self, tick: u64, base: u64) -> u64 {
        if self.schedule.is_empty() {
            return base;
        }
        let mut latency = base;
        for ev in &self.schedule.events {
            if !ev.active(tick) {
                continue;
            }
            match ev.kind {
                FaultKind::LatencySpike { extra, jitter } => {
                    latency += extra;
                    if jitter > 0 {
                        latency += self.rng.gen_range(0..=jitter);
                    }
                }
                FaultKind::RemoteSlowdown { factor } => {
                    latency = (latency as f64 * factor).round() as u64;
                }
                _ => {}
            }
        }
        self.stats.extra_latency += latency.saturating_sub(base);
        latency
    }

    /// Whether a transfer started at `tick` is dropped by an active
    /// lossy-link event.
    pub fn transfer_dropped(&mut self, tick: u64) -> bool {
        for ev in &self.schedule.events {
            if let FaultKind::LossyLink { drop_prob } = ev.kind {
                if ev.active(tick) && self.rng.gen_bool(drop_prob) {
                    self.stats.transfers_dropped += 1;
                    return true;
                }
            }
        }
        false
    }

    /// Whether any brownout is active at `tick`. A browned-out switch
    /// has lost its admission-control (QoS) path: consumers use this
    /// to switch from "drop excess prefetches" to "queue them behind
    /// demand traffic".
    pub fn in_brownout(&self, tick: u64) -> bool {
        self.schedule
            .events
            .iter()
            .any(|ev| matches!(ev.kind, FaultKind::Brownout { .. }) && ev.active(tick))
    }

    /// The switch's transfer-slot budget at `tick`: the tightest
    /// active brownout, else the configured `base` (0 = uncontended).
    pub fn effective_slots(&self, tick: u64, base: usize) -> usize {
        let mut slots = base;
        for ev in &self.schedule.events {
            if let FaultKind::Brownout { slots: s } = ev.kind {
                if ev.active(tick) {
                    slots = if slots == 0 { s } else { slots.min(s) };
                }
            }
        }
        slots
    }

    /// Delivers a crash for `node` if one is active at `tick` and not
    /// yet delivered; returns the restart tick. Each crash event fires
    /// at most once.
    pub fn take_crash(&mut self, node: usize, tick: u64) -> Option<u64> {
        self.take_crash_where(tick, |n| n == node)
    }

    /// Delivers any pending crash at `tick` regardless of node index
    /// (the UVM device has a single failure domain); returns the
    /// restart tick.
    pub fn take_crash_any(&mut self, tick: u64) -> Option<u64> {
        self.take_crash_where(tick, |_| true)
    }

    fn take_crash_where(&mut self, tick: u64, matches: impl Fn(usize) -> bool) -> Option<u64> {
        for (idx, ev) in self.schedule.events.iter().enumerate() {
            if let FaultKind::NodeCrash { node } = ev.kind {
                if matches(node) && ev.active(tick) && !self.crashes_taken.contains(&idx) {
                    self.crashes_taken.insert(idx);
                    self.stats.crashes_fired += 1;
                    return Some(ev.end());
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_schedule_is_transparent() {
        let mut inj = FaultInjector::disabled();
        assert!(inj.is_idle());
        for t in 0..1000 {
            assert_eq!(inj.transfer_latency(t, 100), 100);
            assert!(!inj.transfer_dropped(t));
            assert_eq!(inj.effective_slots(t, 0), 0);
            assert_eq!(inj.effective_slots(t, 7), 7);
            assert!(inj.take_crash(0, t).is_none());
        }
        assert_eq!(inj.stats, FaultStats::default());
    }

    #[test]
    fn spike_and_slowdown_shape_latency() {
        let sched = FaultSchedule::none()
            .with_latency_spike(100, 50, 30, 0)
            .with_slowdown(200, 50, 2.0);
        let mut inj = FaultInjector::new(sched, 1);
        assert_eq!(inj.transfer_latency(0, 100), 100);
        assert_eq!(inj.transfer_latency(120, 100), 130);
        assert_eq!(inj.transfer_latency(149, 100), 130);
        assert_eq!(
            inj.transfer_latency(150, 100),
            100,
            "event windows are half-open"
        );
        assert_eq!(inj.transfer_latency(210, 100), 200);
        assert!(inj.stats.extra_latency >= 30 + 30 + 100);
    }

    #[test]
    fn lossy_link_drops_only_inside_window() {
        let sched = FaultSchedule::none().with_lossy_link(50, 100, 1.0);
        let mut inj = FaultInjector::new(sched, 2);
        assert!(!inj.transfer_dropped(0));
        assert!(inj.transfer_dropped(50));
        assert!(inj.transfer_dropped(149));
        assert!(!inj.transfer_dropped(150));
        assert_eq!(inj.stats.transfers_dropped, 2);
    }

    #[test]
    fn brownout_overrides_even_uncontended_switch() {
        let sched = FaultSchedule::none().with_brownout(10, 10, 2);
        let inj = FaultInjector::new(sched, 3);
        assert_eq!(inj.effective_slots(5, 0), 0);
        assert_eq!(
            inj.effective_slots(15, 0),
            2,
            "brownout caps an unlimited switch"
        );
        assert_eq!(inj.effective_slots(15, 1), 1, "tightest limit wins");
        assert_eq!(inj.effective_slots(15, 8), 2);
    }

    #[test]
    fn crash_fires_once_per_event_and_only_for_its_node() {
        let sched = FaultSchedule::none().with_crash(100, 40, 1);
        let mut inj = FaultInjector::new(sched, 4);
        assert!(inj.take_crash(0, 110).is_none(), "other nodes unaffected");
        assert_eq!(inj.take_crash(1, 110), Some(140));
        assert!(inj.take_crash(1, 120).is_none(), "each event fires once");
        assert_eq!(inj.stats.crashes_fired, 1);
    }

    #[test]
    fn take_crash_any_matches_any_node() {
        let sched = FaultSchedule::none().with_crash(10, 5, 3);
        let mut inj = FaultInjector::new(sched, 5);
        assert_eq!(inj.take_crash_any(12), Some(15));
        assert!(inj.take_crash_any(13).is_none());
    }

    #[test]
    fn deterministic_under_fixed_seed() {
        let mk = || {
            FaultInjector::new(
                FaultSchedule::none()
                    .with_lossy_link(0, 500, 0.5)
                    .with_latency_spike(100, 300, 50, 20),
                0xfa17,
            )
        };
        let (mut a, mut b) = (mk(), mk());
        for t in 0..600 {
            assert_eq!(a.transfer_dropped(t), b.transfer_dropped(t));
            assert_eq!(a.transfer_latency(t, 100), b.transfer_latency(t, 100));
        }
        assert_eq!(a.stats, b.stats);
    }

    #[test]
    fn parse_round_trips_the_dsl() {
        let s = FaultSchedule::parse(
            "spike:100:50:30:10, lossy:200:100:0.25,brownout:0:10:3,slow:5:5:1.5,crash:9:1:2",
        )
        .unwrap();
        assert_eq!(s.events().len(), 5);
        assert_eq!(
            s.events()[0],
            FaultEvent {
                start: 100,
                duration: 50,
                kind: FaultKind::LatencySpike {
                    extra: 30,
                    jitter: 10
                }
            }
        );
        assert_eq!(s.events()[1].kind, FaultKind::LossyLink { drop_prob: 0.25 });
        assert_eq!(s.events()[4].kind, FaultKind::NodeCrash { node: 2 });
        assert!(FaultSchedule::parse("").unwrap().is_empty());
        assert!(FaultSchedule::parse("spike:1:2").is_err());
        assert!(FaultSchedule::parse("meteor:1:2:3").is_err());
        assert!(FaultSchedule::parse("lossy:1:2:1.5").is_err());
    }
}
