//! The disaggregated-memory cluster simulator.
//!
//! Modeled after the paper's first target (§4, Fig. 6 left): compute
//! nodes hold a small local memory and fault pages over the network
//! from a remote memory pool. "CPU cores fault only on one page at a
//! time, indicating that the prefetcher should be optimized to hide
//! latency", and "scarce resources on the switch necessitate a
//! decentralized approach with a separate prefetcher per node".
//!
//! Two placements are simulated:
//!
//! * **decentralized** — one private prefetcher per node, each seeing
//!   only its node's miss stream;
//! * **centralized** — a single prefetcher at the switch, seeing all
//!   nodes' miss streams interleaved (stream-tagged), as a resource-
//!   constrained alternative.

use serde::Serialize;

use hnp_memsim::memory::LocalMemory;
use hnp_memsim::prefetcher::{MissEvent, Prefetcher};
use hnp_memsim::EvictionPolicy;
use hnp_obs::{Event, FaultKind as ObsFaultKind, FeedbackKind, Registry};
use hnp_trace::Trace;

use crate::fault::FaultInjector;

/// The single prefetcher notification point: every occurrence the
/// prefetcher is entitled to see goes through here as a typed event,
/// mirrored into the observer registry. Observer-only events (misses,
/// issue decisions, non-crash faults) are emitted straight into the
/// registry and never reach the prefetcher, preserving the legacy
/// callback surface exactly.
fn notify(obs: &Registry, prefetcher: &mut dyn Prefetcher, ev: Event) {
    prefetcher.on_event(&ev);
    obs.emit(&ev);
}

/// Cluster parameters.
#[derive(Debug, Clone)]
pub struct DisaggConfig {
    /// Local-memory capacity per node, as a fraction of that node's
    /// trace footprint.
    pub local_capacity_frac: f64,
    /// One-way network latency in ticks (remote fetch = stall).
    pub link_latency: u64,
    /// Outstanding prefetches per node.
    pub max_inflight: usize,
    /// Prefetches accepted per miss.
    pub max_issue_per_miss: usize,
    /// Cluster-wide cap on concurrent transfers through the shared
    /// switch (demand fetches + prefetches); `0` = uncontended. When
    /// the switch is saturated, new prefetches are dropped and demand
    /// fetches queue (§5.2: "systems where the network is the
    /// bottleneck require a prefetcher that is highly selective").
    pub shared_link_slots: usize,
    /// Extra stall ticks per queued transfer ahead of a demand fetch
    /// on a saturated switch.
    pub contention_penalty: u64,
    /// Base backoff in ticks before retrying a demand fetch dropped by
    /// a lossy link (doubles per attempt, capped at
    /// `retry_backoff_cap`).
    pub retry_backoff: u64,
    /// Ceiling for the exponential retry backoff.
    pub retry_backoff_cap: u64,
    /// Dropped-demand-fetch retries before declaring a timeout.
    pub max_retries: u32,
    /// Extra stall charged when demand-fetch retries are exhausted
    /// (the recovery path — the fetch then completes out-of-band).
    pub timeout_penalty: u64,
    /// Observer registry; every decision point in the run emits a
    /// typed event into it. An empty registry keeps the run
    /// bit-identical to an unobserved one.
    pub obs: Registry,
}

impl Default for DisaggConfig {
    fn default() -> Self {
        Self {
            local_capacity_frac: 0.5,
            link_latency: 100,
            max_inflight: 16,
            max_issue_per_miss: 4,
            shared_link_slots: 0,
            contention_penalty: 10,
            retry_backoff: 25,
            retry_backoff_cap: 400,
            max_retries: 4,
            timeout_penalty: 500,
            obs: Registry::new(),
        }
    }
}

impl DisaggConfig {
    /// Sets the per-node local-memory capacity fraction.
    pub fn with_local_capacity_frac(mut self, frac: f64) -> Self {
        self.local_capacity_frac = frac;
        self
    }

    /// Sets the one-way network latency in ticks.
    pub fn with_link_latency(mut self, ticks: u64) -> Self {
        self.link_latency = ticks;
        self
    }

    /// Sets the per-node in-flight prefetch cap.
    pub fn with_max_inflight(mut self, n: usize) -> Self {
        self.max_inflight = n;
        self
    }

    /// Sets the per-miss prefetch issue cap.
    pub fn with_max_issue_per_miss(mut self, n: usize) -> Self {
        self.max_issue_per_miss = n;
        self
    }

    /// Sets the shared-switch slot budget (`0` = uncontended).
    pub fn with_shared_link_slots(mut self, slots: usize) -> Self {
        self.shared_link_slots = slots;
        self
    }

    /// Sets the per-queued-transfer contention penalty.
    pub fn with_contention_penalty(mut self, ticks: u64) -> Self {
        self.contention_penalty = ticks;
        self
    }

    /// Attaches an observer registry to the cluster run.
    pub fn with_observer(mut self, obs: Registry) -> Self {
        self.obs = obs;
        self
    }
}

/// Per-node counters from one cluster run.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct NodeReport {
    /// Node index.
    pub node: usize,
    /// Accesses replayed.
    pub accesses: usize,
    /// Misses (page absent at access, late prefetches included).
    pub misses: usize,
    /// Prefetches issued for this node.
    pub prefetches_issued: usize,
    /// Useful prefetches.
    pub prefetches_useful: usize,
    /// Prefetches dropped at the saturated shared switch.
    pub prefetches_dropped: usize,
    /// In-flight prefetches cancelled by faults (lossy link, crash).
    pub prefetches_cancelled: usize,
    /// Demand-fetch retries after fault-dropped transfers.
    pub retries: usize,
    /// Demand fetches that exhausted their retries.
    pub timeouts: usize,
    /// Crash/restart cycles this node went through.
    pub restarts: usize,
    /// Ticks this node spent stalled on the link.
    pub stall_ticks: u64,
}

/// Aggregate cluster report.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct DisaggReport {
    /// Placement label ("decentralized" / "centralized").
    pub placement: String,
    /// Per-node details.
    pub nodes: Vec<NodeReport>,
    /// Wall-clock ticks for the whole run (nodes progress in
    /// lockstep rounds).
    pub total_ticks: u64,
}

impl DisaggReport {
    /// Total misses across nodes.
    pub fn total_misses(&self) -> usize {
        self.nodes.iter().map(|n| n.misses).sum()
    }

    /// Total stall ticks across nodes.
    pub fn total_stall(&self) -> u64 {
        self.nodes.iter().map(|n| n.stall_ticks).sum()
    }

    /// Mean stall ticks per access across the cluster (the latency
    /// metric §4 cares about).
    pub fn avg_stall_per_access(&self) -> f64 {
        let acc: usize = self.nodes.iter().map(|n| n.accesses).sum();
        if acc == 0 {
            0.0
        } else {
            self.total_stall() as f64 / acc as f64
        }
    }

    /// Percentage of `baseline`'s misses removed.
    pub fn pct_misses_removed(&self, baseline: &DisaggReport) -> f64 {
        let b = baseline.total_misses();
        if b == 0 {
            0.0
        } else {
            100.0 * (b as f64 - self.total_misses() as f64) / b as f64
        }
    }
}

/// Per-node simulation state.
struct NodeState {
    memory: LocalMemory,
    /// In-flight prefetches: (page, arrival tick).
    inflight: Vec<(u64, u64)>,
    /// Prefetch transfers a lossy link already killed: (page, tick at
    /// which the loss is discovered). The dead transfer crossed the
    /// switch, so it holds its occupancy slot — and counts against
    /// `max_inflight` — until its scheduled arrival.
    doomed: Vec<(u64, u64)>,
    cursor: usize,
    /// Tick at which this node finishes its current stall.
    busy_until: u64,
    report: NodeReport,
}

/// The cluster simulator.
pub struct DisaggregatedCluster {
    cfg: DisaggConfig,
}

impl DisaggregatedCluster {
    /// Creates a cluster simulator.
    pub fn new(cfg: DisaggConfig) -> Self {
        Self { cfg }
    }

    /// Runs with one private prefetcher per node (the paper's
    /// recommended placement). `prefetchers` must have one entry per
    /// trace.
    ///
    /// # Panics
    ///
    /// Panics if `traces.len() != prefetchers.len()` or either is
    /// empty.
    pub fn run_decentralized(
        &self,
        traces: &[Trace],
        prefetchers: &mut [Box<dyn Prefetcher>],
    ) -> DisaggReport {
        self.run_decentralized_with_faults(traces, prefetchers, &mut FaultInjector::disabled())
    }

    /// [`Self::run_decentralized`] under a fault injector. With an
    /// empty schedule the report is bit-identical to the fault-free
    /// run.
    ///
    /// # Panics
    ///
    /// Panics if `traces.len() != prefetchers.len()` or either is
    /// empty.
    pub fn run_decentralized_with_faults(
        &self,
        traces: &[Trace],
        prefetchers: &mut [Box<dyn Prefetcher>],
        injector: &mut FaultInjector,
    ) -> DisaggReport {
        assert!(!traces.is_empty(), "no nodes");
        assert_eq!(traces.len(), prefetchers.len(), "one prefetcher per node");
        let mut refs: Vec<&mut (dyn Prefetcher + '_)> =
            prefetchers.iter_mut().map(|p| p.as_mut() as _).collect();
        self.run_inner(traces, &mut refs, false, "decentralized", injector)
    }

    /// Runs with a single shared prefetcher observing the interleaved
    /// miss stream of all nodes (stream-tagged).
    ///
    /// # Panics
    ///
    /// Panics if `traces` is empty.
    pub fn run_centralized(
        &self,
        traces: &[Trace],
        prefetcher: &mut dyn Prefetcher,
    ) -> DisaggReport {
        self.run_centralized_with_faults(traces, prefetcher, &mut FaultInjector::disabled())
    }

    /// [`Self::run_centralized`] under a fault injector.
    ///
    /// # Panics
    ///
    /// Panics if `traces` is empty.
    pub fn run_centralized_with_faults(
        &self,
        traces: &[Trace],
        prefetcher: &mut dyn Prefetcher,
        injector: &mut FaultInjector,
    ) -> DisaggReport {
        assert!(!traces.is_empty(), "no nodes");
        let mut single: Vec<&mut dyn Prefetcher> = vec![prefetcher];
        self.run_inner(traces, &mut single, true, "centralized", injector)
    }

    /// The lockstep-round driver. Nodes advance one access per round
    /// unless stalled; stalls last `link_latency` ticks. With
    /// `shared == true` all misses go to `prefetchers[0]`. The
    /// injector shapes every transfer; when its schedule is empty it
    /// returns base latencies and never touches its RNG, keeping the
    /// run arithmetically identical to a fault-free one.
    fn run_inner(
        &self,
        traces: &[Trace],
        prefetchers: &mut [&mut dyn Prefetcher],
        shared: bool,
        label: &str,
        injector: &mut FaultInjector,
    ) -> DisaggReport {
        let mut nodes: Vec<NodeState> = traces
            .iter()
            .enumerate()
            .map(|(i, t)| {
                let cap =
                    ((t.footprint_pages() as f64 * self.cfg.local_capacity_frac) as usize).max(1);
                NodeState {
                    memory: LocalMemory::new(cap, EvictionPolicy::Lru),
                    inflight: Vec::new(),
                    doomed: Vec::new(),
                    cursor: 0,
                    busy_until: 0,
                    report: NodeReport {
                        node: i,
                        accesses: 0,
                        misses: 0,
                        prefetches_issued: 0,
                        prefetches_useful: 0,
                        prefetches_dropped: 0,
                        prefetches_cancelled: 0,
                        retries: 0,
                        timeouts: 0,
                        restarts: 0,
                        stall_ticks: 0,
                    },
                }
            })
            .collect();
        let obs = &self.cfg.obs;
        let mut now: u64 = 0;
        loop {
            let mut all_done = true;
            // Brownouts can tighten (or impose) the slot budget.
            let slots = injector.effective_slots(now, self.cfg.shared_link_slots);
            // Shared-switch occupancy snapshot for this round: nodes
            // mid-demand-fetch plus all in-flight prefetches.
            let mut occupancy = nodes.iter().filter(|n| n.busy_until > now).count()
                + nodes
                    .iter()
                    .map(|n| n.inflight.len() + n.doomed.len())
                    .sum::<usize>();
            for (i, node) in nodes.iter_mut().enumerate() {
                let trace = &traces[i];
                if node.cursor >= trace.len() {
                    continue;
                }
                all_done = false;
                let pf_idx = if shared { 0 } else { i };
                let pf: &mut dyn Prefetcher = &mut *prefetchers[pf_idx];
                // Crash/restart: flush local memory, cancel in-flight
                // prefetches, reset the prefetcher's transient state,
                // and hold the node down until the event ends.
                if let Some(restart) = injector.take_crash(i, now) {
                    node.report.restarts += 1;
                    node.report.prefetches_cancelled += node.inflight.len() + node.doomed.len();
                    for (page, _) in node.inflight.drain(..).chain(node.doomed.drain(..)) {
                        notify(
                            obs,
                            pf,
                            Event::Feedback {
                                tick: now,
                                page,
                                kind: FeedbackKind::Cancelled,
                                remaining: 0,
                            },
                        );
                    }
                    node.memory.flush();
                    notify(
                        obs,
                        pf,
                        Event::Fault {
                            tick: now,
                            domain: i as u64,
                            kind: ObsFaultKind::Crash,
                        },
                    );
                    node.busy_until = node.busy_until.max(restart);
                }
                if node.busy_until > now {
                    continue; // Still stalled on the link.
                }
                // Land arrived prefetches (sorted for determinism).
                node.inflight.sort_unstable();
                let mut rest = Vec::new();
                for &(page, arrival) in &node.inflight {
                    if arrival <= now {
                        if let Some((_, meta)) = node.memory.insert(page, true, now) {
                            if meta.prefetched && !meta.touched {
                                notify(
                                    obs,
                                    pf,
                                    Event::Feedback {
                                        tick: now,
                                        page,
                                        kind: FeedbackKind::Unused,
                                        remaining: 0,
                                    },
                                );
                            }
                        }
                    } else {
                        rest.push((page, arrival));
                    }
                }
                node.inflight = rest;
                // Lossy-killed transfers reach their arrival deadline:
                // the node discovers the loss and releases the slot.
                node.doomed.sort_unstable();
                let mut rest = Vec::new();
                for &(page, arrival) in &node.doomed {
                    if arrival <= now {
                        node.report.prefetches_cancelled += 1;
                        notify(
                            obs,
                            pf,
                            Event::Feedback {
                                tick: now,
                                page,
                                kind: FeedbackKind::Cancelled,
                                remaining: 0,
                            },
                        );
                    } else {
                        rest.push((page, arrival));
                    }
                }
                node.doomed = rest;
                // One access this round.
                let access = trace.accesses()[node.cursor];
                let page = access.page(trace.page_shift());
                node.cursor += 1;
                node.report.accesses += 1;
                if node.memory.contains(page) {
                    let fresh = node
                        .memory
                        .meta(page)
                        .map(|m| m.prefetched && !m.touched)
                        .unwrap_or(false);
                    node.memory.touch(page);
                    if fresh {
                        node.report.prefetches_useful += 1;
                        notify(
                            obs,
                            pf,
                            Event::Feedback {
                                tick: now,
                                page,
                                kind: FeedbackKind::Useful,
                                remaining: 0,
                            },
                        );
                    }
                    obs.emit(&Event::Hit { tick: now, page });
                    continue;
                }
                // Fault: one page at a time, node stalls for the link.
                node.report.misses += 1;
                let in_flight_hit = node.inflight.iter().position(|&(p, _)| p == page);
                let mut timed_out = false;
                let mut stall = match in_flight_hit {
                    Some(idx) => {
                        let (_, arrival) = node.inflight.swap_remove(idx);
                        let remaining = arrival.saturating_sub(now);
                        // Lateness is the resilience layer's signal
                        // that transfers are queueing; fault-free runs
                        // keep the legacy accounting (no feedback) so
                        // they stay bit-identical to pre-fault output.
                        if !injector.is_idle() && remaining > 0 {
                            notify(
                                obs,
                                pf,
                                Event::Feedback {
                                    tick: now,
                                    page,
                                    kind: FeedbackKind::Late,
                                    remaining,
                                },
                            );
                        }
                        remaining
                    }
                    None => {
                        // A demand hit on a transfer the lossy link
                        // already killed: the node waits out the
                        // promised arrival, discovers the loss, and
                        // only then falls back to a fresh fetch.
                        let mut total = 0u64;
                        if let Some(idx) = node.doomed.iter().position(|&(p, _)| p == page) {
                            let (pg, arrival) = node.doomed.swap_remove(idx);
                            node.report.prefetches_cancelled += 1;
                            notify(
                                obs,
                                pf,
                                Event::Feedback {
                                    tick: now,
                                    page: pg,
                                    kind: FeedbackKind::Cancelled,
                                    remaining: 0,
                                },
                            );
                            total += arrival.saturating_sub(now);
                        }
                        // A fresh remote fetch. Lossy links drop it;
                        // each drop costs the wasted round trip plus a
                        // capped exponential backoff before the retry.
                        // After `max_retries` the fetch times out: the
                        // recovery path completes it with a flat
                        // penalty so the node always makes progress.
                        let mut attempt = 0u32;
                        loop {
                            if !injector.transfer_dropped(now + total) {
                                total +=
                                    injector.transfer_latency(now + total, self.cfg.link_latency);
                                break;
                            }
                            total += injector.transfer_latency(now + total, self.cfg.link_latency);
                            if attempt >= self.cfg.max_retries {
                                node.report.timeouts += 1;
                                timed_out = true;
                                total += self.cfg.timeout_penalty;
                                obs.emit(&Event::Fault {
                                    tick: now,
                                    domain: i as u64,
                                    kind: ObsFaultKind::Timeout,
                                });
                                break;
                            }
                            node.report.retries += 1;
                            obs.emit(&Event::Fault {
                                tick: now,
                                domain: i as u64,
                                kind: ObsFaultKind::Retry,
                            });
                            total += (self.cfg.retry_backoff << attempt.min(16))
                                .min(self.cfg.retry_backoff_cap);
                            attempt += 1;
                        }
                        total
                    }
                };
                // Retry exhaustion means the node tears down and
                // re-establishes its fabric connection (the recovery
                // path behind `timeout_penalty`). Every outstanding
                // prefetch transfer dies with the connection; the
                // cancellations are the model's only signal — a
                // transport-level reset stays below its horizon.
                // Local memory survives the reset.
                if timed_out {
                    node.report.prefetches_cancelled += node.inflight.len() + node.doomed.len();
                    for (pg, _) in node.inflight.drain(..).chain(node.doomed.drain(..)) {
                        notify(
                            obs,
                            pf,
                            Event::Feedback {
                                tick: now,
                                page: pg,
                                kind: FeedbackKind::Cancelled,
                                remaining: 0,
                            },
                        );
                    }
                }
                // Demand fetches queue behind a saturated switch.
                if slots > 0 && occupancy > slots {
                    stall += self.cfg.contention_penalty * (occupancy - slots) as u64;
                }
                occupancy += 1;
                node.report.stall_ticks += stall;
                obs.emit(&Event::Miss {
                    tick: now,
                    page,
                    late: in_flight_hit.is_some(),
                    stall,
                });
                node.busy_until = now + stall;
                node.memory
                    .insert(page, in_flight_hit.is_some(), now + stall);
                node.memory.touch(page);
                // Consult the prefetcher at fault time.
                let miss = MissEvent {
                    page,
                    tick: now,
                    stream: i as u16,
                };
                let candidates = pf.on_miss(&miss);
                let mut accepted = 0;
                for cand in candidates {
                    if accepted >= self.cfg.max_issue_per_miss {
                        break;
                    }
                    if node.memory.contains(cand) || node.inflight.iter().any(|&(p, _)| p == cand) {
                        continue;
                    }
                    if node.inflight.len() + node.doomed.len() >= self.cfg.max_inflight {
                        break;
                    }
                    // Prefetches never queue at a healthy switch: its
                    // admission control drops them (they are not
                    // correctness-critical). A browned-out switch has
                    // lost that QoS path, so prefetch packets queue
                    // behind demand traffic instead — and arrive late.
                    let mut arrival = now + injector.transfer_latency(now, self.cfg.link_latency);
                    if slots > 0 && occupancy >= slots {
                        if injector.in_brownout(now) {
                            arrival += self.cfg.contention_penalty * (occupancy + 1 - slots) as u64;
                        } else {
                            node.report.prefetches_dropped += 1;
                            obs.emit(&Event::PrefetchDropped {
                                tick: now,
                                page: cand,
                            });
                            continue;
                        }
                    }
                    // A lossy link eats prefetches mid-flight: the
                    // dead transfer still crosses the switch, so it
                    // holds its slot and issue budget until its
                    // scheduled arrival, where the node discovers the
                    // loss and tells the model so it can back off
                    // (hnp_memsim::resilient reacts to these).
                    if injector.transfer_dropped(now) {
                        node.doomed.push((cand, arrival));
                        obs.emit(&Event::Fault {
                            tick: now,
                            domain: i as u64,
                            kind: ObsFaultKind::Drop,
                        });
                        occupancy += 1;
                        accepted += 1;
                        continue;
                    }
                    node.inflight.push((cand, arrival));
                    node.report.prefetches_issued += 1;
                    obs.emit(&Event::PrefetchIssued {
                        tick: now,
                        page: cand,
                        arrival,
                    });
                    occupancy += 1;
                    accepted += 1;
                }
            }
            if all_done {
                break;
            }
            now += 1;
        }
        let accesses: u64 = nodes.iter().map(|n| n.report.accesses as u64).sum();
        let misses: u64 = nodes.iter().map(|n| n.report.misses as u64).sum();
        obs.emit(&Event::RunEnd {
            ticks: now,
            accesses,
            hits: accesses - misses,
            misses,
        });
        DisaggReport {
            placement: label.to_string(),
            nodes: nodes.into_iter().map(|n| n.report).collect(),
            total_ticks: now,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hnp_memsim::NoPrefetcher;
    use hnp_trace::Pattern;

    fn traces(n: usize) -> Vec<Trace> {
        (0..n)
            .map(|i| Pattern::Stride.generate(1500, i as u64))
            .collect()
    }

    struct NextLine;
    impl Prefetcher for NextLine {
        fn name(&self) -> &str {
            "next-line"
        }
        fn on_miss(&mut self, miss: &MissEvent) -> Vec<u64> {
            vec![miss.page + 1, miss.page + 2]
        }
    }

    #[test]
    fn baseline_cluster_thrashes() {
        let ts = traces(3);
        let sim = DisaggregatedCluster::new(DisaggConfig::default());
        let mut pfs: Vec<Box<dyn Prefetcher>> = (0..3)
            .map(|_| Box::new(NoPrefetcher) as Box<dyn Prefetcher>)
            .collect();
        let rep = sim.run_decentralized(&ts, &mut pfs);
        assert_eq!(rep.nodes.len(), 3);
        let total_acc: usize = rep.nodes.iter().map(|n| n.accesses).sum();
        assert_eq!(total_acc, 4500);
        assert!(
            rep.avg_stall_per_access() > 40.0,
            "thrash under 50% capacity"
        );
    }

    #[test]
    fn prefetching_reduces_stall_and_misses() {
        let ts = traces(3);
        let sim = DisaggregatedCluster::new(DisaggConfig::default());
        let mut none: Vec<Box<dyn Prefetcher>> = (0..3)
            .map(|_| Box::new(NoPrefetcher) as Box<dyn Prefetcher>)
            .collect();
        let base = sim.run_decentralized(&ts, &mut none);
        let mut nl: Vec<Box<dyn Prefetcher>> = (0..3)
            .map(|_| Box::new(NextLine) as Box<dyn Prefetcher>)
            .collect();
        let rep = sim.run_decentralized(&ts, &mut nl);
        assert!(rep.pct_misses_removed(&base) > 40.0);
        assert!(rep.total_stall() < base.total_stall());
        assert!(
            rep.total_ticks < base.total_ticks,
            "latency hiding speeds the run"
        );
    }

    #[test]
    fn centralized_sees_interleaved_streams() {
        /// Records the stream tags it sees.
        struct TagRecorder(std::collections::HashSet<u16>);
        impl Prefetcher for TagRecorder {
            fn name(&self) -> &str {
                "recorder"
            }
            fn on_miss(&mut self, miss: &MissEvent) -> Vec<u64> {
                self.0.insert(miss.stream);
                Vec::new()
            }
        }
        let ts = traces(3);
        let sim = DisaggregatedCluster::new(DisaggConfig::default());
        let mut rec = TagRecorder(Default::default());
        let rep = sim.run_centralized(&ts, &mut rec);
        assert_eq!(rec.0.len(), 3, "all three streams reach the prefetcher");
        assert_eq!(rep.placement, "centralized");
    }

    #[test]
    fn higher_link_latency_amplifies_prefetch_benefit() {
        let ts = traces(2);
        let benefit = |latency: u64| {
            let sim = DisaggregatedCluster::new(DisaggConfig {
                link_latency: latency,
                ..DisaggConfig::default()
            });
            let mut none: Vec<Box<dyn Prefetcher>> = (0..2)
                .map(|_| Box::new(NoPrefetcher) as Box<dyn Prefetcher>)
                .collect();
            let base = sim.run_decentralized(&ts, &mut none);
            let mut nl: Vec<Box<dyn Prefetcher>> = (0..2)
                .map(|_| Box::new(NextLine) as Box<dyn Prefetcher>)
                .collect();
            let rep = sim.run_decentralized(&ts, &mut nl);
            base.total_stall() as i64 - rep.total_stall() as i64
        };
        assert!(
            benefit(400) > benefit(50),
            "absolute stall savings grow with link latency"
        );
    }

    #[test]
    fn switch_contention_queues_demand_and_drops_prefetches() {
        let ts = traces(4);
        let free = DisaggregatedCluster::new(DisaggConfig::default());
        let tight = DisaggregatedCluster::new(DisaggConfig {
            shared_link_slots: 3,
            contention_penalty: 20,
            ..DisaggConfig::default()
        });
        let mk = || -> Vec<Box<dyn Prefetcher>> {
            (0..4)
                .map(|_| Box::new(NextLine) as Box<dyn Prefetcher>)
                .collect()
        };
        let mut a = mk();
        let rep_free = free.run_decentralized(&ts, &mut a);
        let mut b = mk();
        let rep_tight = tight.run_decentralized(&ts, &mut b);
        let dropped: usize = rep_tight.nodes.iter().map(|n| n.prefetches_dropped).sum();
        assert!(dropped > 0, "saturated switch must drop prefetches");
        assert!(
            rep_tight.total_stall() > rep_free.total_stall(),
            "contention must add stall: {} vs {}",
            rep_tight.total_stall(),
            rep_free.total_stall()
        );
        let dropped_free: usize = rep_free.nodes.iter().map(|n| n.prefetches_dropped).sum();
        assert_eq!(dropped_free, 0, "uncontended switch drops nothing");
    }

    #[test]
    #[should_panic(expected = "one prefetcher per node")]
    fn mismatched_prefetcher_count_panics() {
        let ts = traces(2);
        let sim = DisaggregatedCluster::new(DisaggConfig::default());
        let mut pfs: Vec<Box<dyn Prefetcher>> = vec![Box::new(NoPrefetcher)];
        let _ = sim.run_decentralized(&ts, &mut pfs);
    }
}
