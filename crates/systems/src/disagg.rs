//! The disaggregated-memory cluster simulator.
//!
//! Modeled after the paper's first target (§4, Fig. 6 left): compute
//! nodes hold a small local memory and fault pages over the network
//! from a remote memory pool. "CPU cores fault only on one page at a
//! time, indicating that the prefetcher should be optimized to hide
//! latency", and "scarce resources on the switch necessitate a
//! decentralized approach with a separate prefetcher per node".
//!
//! Two placements are simulated:
//!
//! * **decentralized** — one private prefetcher per node, each seeing
//!   only its node's miss stream;
//! * **centralized** — a single prefetcher at the switch, seeing all
//!   nodes' miss streams interleaved (stream-tagged), as a resource-
//!   constrained alternative.

use serde::Serialize;

use hnp_memsim::memory::LocalMemory;
use hnp_memsim::prefetcher::{MissEvent, Prefetcher, PrefetchFeedback};
use hnp_memsim::EvictionPolicy;
use hnp_trace::Trace;

/// Cluster parameters.
#[derive(Debug, Clone)]
pub struct DisaggConfig {
    /// Local-memory capacity per node, as a fraction of that node's
    /// trace footprint.
    pub local_capacity_frac: f64,
    /// One-way network latency in ticks (remote fetch = stall).
    pub link_latency: u64,
    /// Outstanding prefetches per node.
    pub max_inflight: usize,
    /// Prefetches accepted per miss.
    pub max_issue_per_miss: usize,
    /// Cluster-wide cap on concurrent transfers through the shared
    /// switch (demand fetches + prefetches); `0` = uncontended. When
    /// the switch is saturated, new prefetches are dropped and demand
    /// fetches queue (§5.2: "systems where the network is the
    /// bottleneck require a prefetcher that is highly selective").
    pub shared_link_slots: usize,
    /// Extra stall ticks per queued transfer ahead of a demand fetch
    /// on a saturated switch.
    pub contention_penalty: u64,
}

impl Default for DisaggConfig {
    fn default() -> Self {
        Self {
            local_capacity_frac: 0.5,
            link_latency: 100,
            max_inflight: 16,
            max_issue_per_miss: 4,
            shared_link_slots: 0,
            contention_penalty: 10,
        }
    }
}

/// Per-node counters from one cluster run.
#[derive(Debug, Clone, Serialize)]
pub struct NodeReport {
    /// Node index.
    pub node: usize,
    /// Accesses replayed.
    pub accesses: usize,
    /// Misses (page absent at access, late prefetches included).
    pub misses: usize,
    /// Prefetches issued for this node.
    pub prefetches_issued: usize,
    /// Useful prefetches.
    pub prefetches_useful: usize,
    /// Prefetches dropped at the saturated shared switch.
    pub prefetches_dropped: usize,
    /// Ticks this node spent stalled on the link.
    pub stall_ticks: u64,
}

/// Aggregate cluster report.
#[derive(Debug, Clone, Serialize)]
pub struct DisaggReport {
    /// Placement label ("decentralized" / "centralized").
    pub placement: String,
    /// Per-node details.
    pub nodes: Vec<NodeReport>,
    /// Wall-clock ticks for the whole run (nodes progress in
    /// lockstep rounds).
    pub total_ticks: u64,
}

impl DisaggReport {
    /// Total misses across nodes.
    pub fn total_misses(&self) -> usize {
        self.nodes.iter().map(|n| n.misses).sum()
    }

    /// Total stall ticks across nodes.
    pub fn total_stall(&self) -> u64 {
        self.nodes.iter().map(|n| n.stall_ticks).sum()
    }

    /// Mean stall ticks per access across the cluster (the latency
    /// metric §4 cares about).
    pub fn avg_stall_per_access(&self) -> f64 {
        let acc: usize = self.nodes.iter().map(|n| n.accesses).sum();
        if acc == 0 {
            0.0
        } else {
            self.total_stall() as f64 / acc as f64
        }
    }

    /// Percentage of `baseline`'s misses removed.
    pub fn pct_misses_removed(&self, baseline: &DisaggReport) -> f64 {
        let b = baseline.total_misses();
        if b == 0 {
            0.0
        } else {
            100.0 * (b as f64 - self.total_misses() as f64) / b as f64
        }
    }
}

/// Per-node simulation state.
struct NodeState {
    memory: LocalMemory,
    /// In-flight prefetches: (page, arrival tick).
    inflight: Vec<(u64, u64)>,
    cursor: usize,
    /// Tick at which this node finishes its current stall.
    busy_until: u64,
    report: NodeReport,
}

/// The cluster simulator.
pub struct DisaggregatedCluster {
    cfg: DisaggConfig,
}

impl DisaggregatedCluster {
    /// Creates a cluster simulator.
    pub fn new(cfg: DisaggConfig) -> Self {
        Self { cfg }
    }

    /// Runs with one private prefetcher per node (the paper's
    /// recommended placement). `prefetchers` must have one entry per
    /// trace.
    ///
    /// # Panics
    ///
    /// Panics if `traces.len() != prefetchers.len()` or either is
    /// empty.
    pub fn run_decentralized(
        &self,
        traces: &[Trace],
        prefetchers: &mut [Box<dyn Prefetcher>],
    ) -> DisaggReport {
        assert!(!traces.is_empty(), "no nodes");
        assert_eq!(traces.len(), prefetchers.len(), "one prefetcher per node");
        self.run(traces, prefetchers, "decentralized")
    }

    /// Runs with a single shared prefetcher observing the interleaved
    /// miss stream of all nodes (stream-tagged).
    ///
    /// # Panics
    ///
    /// Panics if `traces` is empty.
    pub fn run_centralized(
        &self,
        traces: &[Trace],
        prefetcher: &mut dyn Prefetcher,
    ) -> DisaggReport {
        assert!(!traces.is_empty(), "no nodes");
        let mut single: Vec<&mut dyn Prefetcher> = vec![prefetcher];
        self.run_inner(traces, &mut single, true, "centralized")
    }

    fn run(
        &self,
        traces: &[Trace],
        prefetchers: &mut [Box<dyn Prefetcher>],
        label: &str,
    ) -> DisaggReport {
        let mut refs: Vec<&mut (dyn Prefetcher + '_)> =
            prefetchers.iter_mut().map(|p| p.as_mut() as _).collect();
        self.run_inner(traces, &mut refs, false, label)
    }

    /// The lockstep-round driver. Nodes advance one access per round
    /// unless stalled; stalls last `link_latency` ticks. With
    /// `shared == true` all misses go to `prefetchers[0]`.
    fn run_inner(
        &self,
        traces: &[Trace],
        prefetchers: &mut [&mut dyn Prefetcher],
        shared: bool,
        label: &str,
    ) -> DisaggReport {
        let mut nodes: Vec<NodeState> = traces
            .iter()
            .enumerate()
            .map(|(i, t)| {
                let cap = ((t.footprint_pages() as f64 * self.cfg.local_capacity_frac) as usize)
                    .max(1);
                NodeState {
                    memory: LocalMemory::new(cap, EvictionPolicy::Lru),
                    inflight: Vec::new(),
                    cursor: 0,
                    busy_until: 0,
                    report: NodeReport {
                        node: i,
                        accesses: 0,
                        misses: 0,
                        prefetches_issued: 0,
                        prefetches_useful: 0,
                        prefetches_dropped: 0,
                        stall_ticks: 0,
                    },
                }
            })
            .collect();
        let mut now: u64 = 0;
        let slots = self.cfg.shared_link_slots;
        loop {
            let mut all_done = true;
            // Shared-switch occupancy snapshot for this round: nodes
            // mid-demand-fetch plus all in-flight prefetches.
            let mut occupancy = nodes.iter().filter(|n| n.busy_until > now).count()
                + nodes.iter().map(|n| n.inflight.len()).sum::<usize>();
            for (i, node) in nodes.iter_mut().enumerate() {
                let trace = &traces[i];
                if node.cursor >= trace.len() {
                    continue;
                }
                all_done = false;
                if node.busy_until > now {
                    continue; // Still stalled on the link.
                }
                // Land arrived prefetches (sorted for determinism).
                node.inflight.sort_unstable();
                let pf = if shared { 0 } else { i };
                let mut rest = Vec::new();
                for &(page, arrival) in &node.inflight {
                    if arrival <= now {
                        if let Some((_, meta)) = node.memory.insert(page, true, now) {
                            if meta.prefetched && !meta.touched {
                                prefetchers[pf]
                                    .on_feedback(&PrefetchFeedback::Unused { page });
                            }
                        }
                    } else {
                        rest.push((page, arrival));
                    }
                }
                node.inflight = rest;
                // One access this round.
                let access = trace.accesses()[node.cursor];
                let page = access.page(trace.page_shift());
                node.cursor += 1;
                node.report.accesses += 1;
                if node.memory.contains(page) {
                    let fresh = node
                        .memory
                        .meta(page)
                        .map(|m| m.prefetched && !m.touched)
                        .unwrap_or(false);
                    node.memory.touch(page);
                    if fresh {
                        node.report.prefetches_useful += 1;
                        prefetchers[pf].on_feedback(&PrefetchFeedback::Useful { page });
                    }
                    continue;
                }
                // Fault: one page at a time, node stalls for the link.
                node.report.misses += 1;
                let in_flight_hit = node.inflight.iter().position(|&(p, _)| p == page);
                let mut stall = match in_flight_hit {
                    Some(idx) => {
                        let (_, arrival) = node.inflight.swap_remove(idx);
                        arrival.saturating_sub(now)
                    }
                    None => self.cfg.link_latency,
                };
                // Demand fetches queue behind a saturated switch.
                if slots > 0 && occupancy > slots {
                    stall += self.cfg.contention_penalty * (occupancy - slots) as u64;
                }
                occupancy += 1;
                node.report.stall_ticks += stall;
                node.busy_until = now + stall;
                node.memory.insert(page, in_flight_hit.is_some(), now + stall);
                node.memory.touch(page);
                // Consult the prefetcher at fault time.
                let miss = MissEvent {
                    page,
                    tick: now,
                    stream: i as u16,
                };
                let candidates = prefetchers[pf].on_miss(&miss);
                let arrival = now + self.cfg.link_latency;
                let mut accepted = 0;
                for cand in candidates {
                    if accepted >= self.cfg.max_issue_per_miss {
                        break;
                    }
                    if node.memory.contains(cand)
                        || node.inflight.iter().any(|&(p, _)| p == cand)
                    {
                        continue;
                    }
                    if node.inflight.len() >= self.cfg.max_inflight {
                        break;
                    }
                    // Prefetches never queue: a saturated switch drops
                    // them (they are not correctness-critical).
                    if slots > 0 && occupancy >= slots {
                        node.report.prefetches_dropped += 1;
                        continue;
                    }
                    node.inflight.push((cand, arrival));
                    node.report.prefetches_issued += 1;
                    occupancy += 1;
                    accepted += 1;
                }
            }
            if all_done {
                break;
            }
            now += 1;
        }
        DisaggReport {
            placement: label.to_string(),
            nodes: nodes.into_iter().map(|n| n.report).collect(),
            total_ticks: now,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hnp_memsim::NoPrefetcher;
    use hnp_trace::Pattern;

    fn traces(n: usize) -> Vec<Trace> {
        (0..n)
            .map(|i| Pattern::Stride.generate(1500, i as u64))
            .collect()
    }

    struct NextLine;
    impl Prefetcher for NextLine {
        fn name(&self) -> &str {
            "next-line"
        }
        fn on_miss(&mut self, miss: &MissEvent) -> Vec<u64> {
            vec![miss.page + 1, miss.page + 2]
        }
    }

    #[test]
    fn baseline_cluster_thrashes() {
        let ts = traces(3);
        let sim = DisaggregatedCluster::new(DisaggConfig::default());
        let mut pfs: Vec<Box<dyn Prefetcher>> = (0..3)
            .map(|_| Box::new(NoPrefetcher) as Box<dyn Prefetcher>)
            .collect();
        let rep = sim.run_decentralized(&ts, &mut pfs);
        assert_eq!(rep.nodes.len(), 3);
        let total_acc: usize = rep.nodes.iter().map(|n| n.accesses).sum();
        assert_eq!(total_acc, 4500);
        assert!(rep.avg_stall_per_access() > 40.0, "thrash under 50% capacity");
    }

    #[test]
    fn prefetching_reduces_stall_and_misses() {
        let ts = traces(3);
        let sim = DisaggregatedCluster::new(DisaggConfig::default());
        let mut none: Vec<Box<dyn Prefetcher>> = (0..3)
            .map(|_| Box::new(NoPrefetcher) as Box<dyn Prefetcher>)
            .collect();
        let base = sim.run_decentralized(&ts, &mut none);
        let mut nl: Vec<Box<dyn Prefetcher>> = (0..3)
            .map(|_| Box::new(NextLine) as Box<dyn Prefetcher>)
            .collect();
        let rep = sim.run_decentralized(&ts, &mut nl);
        assert!(rep.pct_misses_removed(&base) > 40.0);
        assert!(rep.total_stall() < base.total_stall());
        assert!(rep.total_ticks < base.total_ticks, "latency hiding speeds the run");
    }

    #[test]
    fn centralized_sees_interleaved_streams() {
        /// Records the stream tags it sees.
        struct TagRecorder(std::collections::HashSet<u16>);
        impl Prefetcher for TagRecorder {
            fn name(&self) -> &str {
                "recorder"
            }
            fn on_miss(&mut self, miss: &MissEvent) -> Vec<u64> {
                self.0.insert(miss.stream);
                Vec::new()
            }
        }
        let ts = traces(3);
        let sim = DisaggregatedCluster::new(DisaggConfig::default());
        let mut rec = TagRecorder(Default::default());
        let rep = sim.run_centralized(&ts, &mut rec);
        assert_eq!(rec.0.len(), 3, "all three streams reach the prefetcher");
        assert_eq!(rep.placement, "centralized");
    }

    #[test]
    fn higher_link_latency_amplifies_prefetch_benefit() {
        let ts = traces(2);
        let benefit = |latency: u64| {
            let sim = DisaggregatedCluster::new(DisaggConfig {
                link_latency: latency,
                ..DisaggConfig::default()
            });
            let mut none: Vec<Box<dyn Prefetcher>> = (0..2)
                .map(|_| Box::new(NoPrefetcher) as Box<dyn Prefetcher>)
                .collect();
            let base = sim.run_decentralized(&ts, &mut none);
            let mut nl: Vec<Box<dyn Prefetcher>> = (0..2)
                .map(|_| Box::new(NextLine) as Box<dyn Prefetcher>)
                .collect();
            let rep = sim.run_decentralized(&ts, &mut nl);
            base.total_stall() as i64 - rep.total_stall() as i64
        };
        assert!(
            benefit(400) > benefit(50),
            "absolute stall savings grow with link latency"
        );
    }

    #[test]
    fn switch_contention_queues_demand_and_drops_prefetches() {
        let ts = traces(4);
        let free = DisaggregatedCluster::new(DisaggConfig::default());
        let tight = DisaggregatedCluster::new(DisaggConfig {
            shared_link_slots: 3,
            contention_penalty: 20,
            ..DisaggConfig::default()
        });
        let mk = || -> Vec<Box<dyn Prefetcher>> {
            (0..4).map(|_| Box::new(NextLine) as Box<dyn Prefetcher>).collect()
        };
        let mut a = mk();
        let rep_free = free.run_decentralized(&ts, &mut a);
        let mut b = mk();
        let rep_tight = tight.run_decentralized(&ts, &mut b);
        let dropped: usize = rep_tight.nodes.iter().map(|n| n.prefetches_dropped).sum();
        assert!(dropped > 0, "saturated switch must drop prefetches");
        assert!(
            rep_tight.total_stall() > rep_free.total_stall(),
            "contention must add stall: {} vs {}",
            rep_tight.total_stall(),
            rep_free.total_stall()
        );
        let dropped_free: usize = rep_free.nodes.iter().map(|n| n.prefetches_dropped).sum();
        assert_eq!(dropped_free, 0, "uncontended switch drops nothing");
    }

    #[test]
    #[should_panic(expected = "one prefetcher per node")]
    fn mismatched_prefetcher_count_panics() {
        let ts = traces(2);
        let sim = DisaggregatedCluster::new(DisaggConfig::default());
        let mut pfs: Vec<Box<dyn Prefetcher>> = vec![Box::new(NoPrefetcher)];
        let _ = sim.run_decentralized(&ts, &mut pfs);
    }
}
