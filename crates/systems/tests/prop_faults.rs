//! Property tests for the fault-injection layer.
//!
//! Two invariants anchor the whole design:
//!
//! 1. **Determinism** — a `FaultInjector` is a pure function of
//!    (schedule, seed, query sequence). Two injectors built the same
//!    way answer every query identically, so any faulted run can be
//!    replayed bit-for-bit.
//! 2. **No-fault regression** — with an empty `FaultSchedule` the
//!    `*_with_faults` entry points are bit-identical to the plain
//!    runs, regardless of the injector's seed. Fault support must be
//!    free when faults are off.

use proptest::prelude::*;

use hnp_baselines::{StrideConfig, StridePrefetcher};
use hnp_core::{ClsConfig, ClsPrefetcher};
use hnp_memsim::{Prefetcher, ResilientPrefetcher};
use hnp_systems::{
    DisaggConfig, DisaggregatedCluster, FaultInjector, FaultSchedule, UvmConfig, UvmSim,
};
use hnp_trace::apps::AppWorkload;
use hnp_trace::Trace;

/// A schedule exercising every fault kind, parameterised so cases
/// cover disjoint, nested, and overlapping windows.
fn schedule(
    spike: (u64, u64, u64, u64),
    lossy: (u64, u64, f64),
    brownout: (u64, u64, usize),
    slow: (u64, u64, f64),
) -> FaultSchedule {
    FaultSchedule::none()
        .with_latency_spike(spike.0, spike.1, spike.2, spike.3)
        .with_lossy_link(lossy.0, lossy.1, lossy.2)
        .with_brownout(brownout.0, brownout.1, brownout.2)
        .with_slowdown(slow.0, slow.1, slow.2)
}

fn traces(accesses: usize) -> Vec<Trace> {
    vec![
        AppWorkload::PageRankLike.generate(accesses, 31),
        AppWorkload::McfLike.generate(accesses, 32),
    ]
}

fn prefetchers(n: usize, resilient: bool) -> Vec<Box<dyn Prefetcher>> {
    (0..n)
        .map(|i| {
            let inner: Box<dyn Prefetcher> = Box::new(ClsPrefetcher::new(ClsConfig {
                seed: 0xd15a + i as u64,
                ..ClsConfig::default()
            }));
            if resilient {
                Box::new(ResilientPrefetcher::new(inner)) as Box<dyn Prefetcher>
            } else {
                inner
            }
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Same schedule + same seed => every query answers identically,
    /// across an interleaved mix of all query kinds.
    #[test]
    fn injector_is_deterministic(
        seed in 0u64..1_000_000,
        spike in (0u64..500, 1u64..500, 0u64..200, 0u64..50),
        lossy in (0u64..500, 1u64..500, 0.0f64..1.0),
        brownout in (0u64..500, 1u64..500, 1usize..8),
        slow in (0u64..500, 1u64..500, 1.0f64..3.0),
        queries in proptest::collection::vec((0u64..1200, 1u64..300), 1..200),
    ) {
        let sched = schedule(spike, lossy, brownout, slow);
        let mut a = FaultInjector::new(sched.clone(), seed);
        let mut b = FaultInjector::new(sched, seed);
        for (tick, base) in &queries {
            prop_assert_eq!(
                a.transfer_latency(*tick, *base),
                b.transfer_latency(*tick, *base)
            );
            prop_assert_eq!(a.transfer_dropped(*tick), b.transfer_dropped(*tick));
            prop_assert_eq!(a.in_brownout(*tick), b.in_brownout(*tick));
            prop_assert_eq!(
                a.effective_slots(*tick, *base as usize),
                b.effective_slots(*tick, *base as usize)
            );
        }
        prop_assert_eq!(a.stats.transfers_dropped, b.stats.transfers_dropped);
    }

    /// An empty schedule is inert: base latency passes through
    /// untouched, nothing drops, no brownout, whatever the seed.
    #[test]
    fn empty_schedule_is_inert(
        seed in 0u64..1_000_000,
        queries in proptest::collection::vec((0u64..5000, 1u64..300), 1..100),
    ) {
        let mut inj = FaultInjector::new(FaultSchedule::none(), seed);
        prop_assert!(inj.is_idle());
        for (tick, base) in &queries {
            prop_assert_eq!(inj.transfer_latency(*tick, *base), *base);
            prop_assert!(!inj.transfer_dropped(*tick));
            prop_assert!(!inj.in_brownout(*tick));
            prop_assert_eq!(inj.effective_slots(*tick, 4), 4);
        }
        prop_assert_eq!(inj.stats.transfers_dropped, 0);
    }

    /// With an empty schedule `run_decentralized_with_faults` is
    /// bit-identical to `run_decentralized`, for any injector seed and
    /// with or without the resilient wrapper.
    #[test]
    fn no_fault_regression_disagg(
        inj_seed in 0u64..1_000_000,
        accesses in 200usize..500,
        resilient in any::<bool>(),
    ) {
        let traces = traces(accesses);
        let cluster = DisaggregatedCluster::new(DisaggConfig {
            local_capacity_frac: 0.4,
            ..DisaggConfig::default()
        });
        let mut plain_pfs = prefetchers(traces.len(), resilient);
        let plain = cluster.run_decentralized(&traces, &mut plain_pfs);
        let mut faulted_pfs = prefetchers(traces.len(), resilient);
        let mut inj = FaultInjector::new(FaultSchedule::none(), inj_seed);
        let faulted =
            cluster.run_decentralized_with_faults(&traces, &mut faulted_pfs, &mut inj);
        prop_assert_eq!(plain, faulted);
    }

    /// Same invariant for the UVM target (centralized prefetcher).
    #[test]
    fn no_fault_regression_uvm(
        inj_seed in 0u64..1_000_000,
        accesses in 200usize..500,
        resilient in any::<bool>(),
    ) {
        let warps: Vec<Trace> = (0..2u64)
            .map(|i| AppWorkload::FIG5[i as usize].generate(accesses, 60 + i).with_stream(i as u16))
            .collect();
        let sim = UvmSim::new(UvmConfig::default());
        let mut a: Box<dyn Prefetcher> = Box::new(StridePrefetcher::with_config(StrideConfig::default().with_degree(2)));
        let mut b: Box<dyn Prefetcher> = Box::new(StridePrefetcher::with_config(StrideConfig::default().with_degree(2)));
        if resilient {
            a = Box::new(ResilientPrefetcher::new(a));
            b = Box::new(ResilientPrefetcher::new(b));
        }
        let plain = sim.run(&warps, a.as_mut());
        let mut inj = FaultInjector::new(FaultSchedule::none(), inj_seed);
        let faulted = sim.run_with_faults(&warps, b.as_mut(), &mut inj);
        prop_assert_eq!(plain, faulted);
    }

    /// End-to-end determinism: the same faulted run twice yields the
    /// same report (the injector is the only randomness source beyond
    /// the seeded prefetchers).
    #[test]
    fn faulted_run_is_reproducible(
        inj_seed in 0u64..1_000_000,
        accesses in 200usize..400,
        drop_prob in 0.1f64..0.9,
    ) {
        let traces = traces(accesses);
        let cluster = DisaggregatedCluster::new(DisaggConfig::default());
        let sched = FaultSchedule::none()
            .with_lossy_link(10, 4000, drop_prob)
            .with_brownout(500, 2000, 2)
            .with_crash(1000, 200, 1);
        let run = |sched: &FaultSchedule| {
            let mut pfs = prefetchers(traces.len(), true);
            let mut inj = FaultInjector::new(sched.clone(), inj_seed);
            cluster.run_decentralized_with_faults(&traces, &mut pfs, &mut inj)
        };
        prop_assert_eq!(run(&sched), run(&sched));
    }
}
