//! The system simulators' event streams, cross-checked against their
//! reports, and the observer inertness contract under fault injection.

use hnp_memsim::{MissEvent, NoPrefetcher, Prefetcher};
use hnp_obs::{Counters, Registry};
use hnp_systems::{
    DisaggConfig, DisaggregatedCluster, FaultInjector, FaultSchedule, UvmConfig, UvmSim,
};
use hnp_trace::{Pattern, Trace};

struct NextLine;
impl Prefetcher for NextLine {
    fn name(&self) -> &str {
        "next-line"
    }
    fn on_miss(&mut self, miss: &MissEvent) -> Vec<u64> {
        vec![miss.page + 1, miss.page + 2, miss.page + 3]
    }
}

fn traces(n: usize) -> Vec<Trace> {
    (0..n)
        .map(|i| Pattern::Stride.generate(1200, i as u64))
        .collect()
}

fn boxed(n: usize) -> Vec<Box<dyn Prefetcher>> {
    (0..n)
        .map(|_| Box::new(NextLine) as Box<dyn Prefetcher>)
        .collect()
}

#[test]
fn disagg_event_counts_reproduce_report() {
    let ts = traces(3);
    let reg = Registry::new();
    let counters = Counters::new();
    reg.attach(counters.clone());
    // A tight switch so the drop path fires too.
    let sim = DisaggregatedCluster::new(
        DisaggConfig::default()
            .with_shared_link_slots(3)
            .with_observer(reg),
    );
    let mut pfs = boxed(3);
    let rep = sim.run_decentralized(&ts, &mut pfs);

    let accesses: u64 = rep.nodes.iter().map(|n| n.accesses as u64).sum();
    let issued: u64 = rep.nodes.iter().map(|n| n.prefetches_issued as u64).sum();
    let dropped: u64 = rep.nodes.iter().map(|n| n.prefetches_dropped as u64).sum();
    let useful: u64 = rep.nodes.iter().map(|n| n.prefetches_useful as u64).sum();
    assert_eq!(counters.get("hit") + counters.get("miss"), accesses);
    assert_eq!(counters.get("miss"), rep.total_misses() as u64);
    assert_eq!(counters.get("stall_ticks"), rep.total_stall());
    assert_eq!(counters.get("prefetch_issued"), issued);
    assert_eq!(counters.get("prefetch_dropped"), dropped);
    assert_eq!(counters.get("feedback_useful"), useful);
    assert_eq!(counters.get("ticks"), rep.total_ticks);
    assert!(dropped > 0, "tight switch should drop prefetches");
}

#[test]
fn disagg_observers_are_inert_under_faults() {
    let ts = traces(2);
    let schedule = FaultSchedule::none()
        .with_lossy_link(100, 4000, 0.3)
        .with_crash(2000, 500, 0);
    let sim = DisaggregatedCluster::new(DisaggConfig::default());
    let mut pfs = boxed(2);
    let mut inj = FaultInjector::new(schedule.clone(), 7);
    let plain = sim.run_decentralized_with_faults(&ts, &mut pfs, &mut inj);

    let reg = Registry::new();
    let counters = Counters::new();
    reg.attach(counters.clone());
    let observed_sim = DisaggregatedCluster::new(DisaggConfig::default().with_observer(reg));
    let mut pfs2 = boxed(2);
    let mut inj2 = FaultInjector::new(schedule, 7);
    let observed = observed_sim.run_decentralized_with_faults(&ts, &mut pfs2, &mut inj2);

    assert_eq!(plain, observed, "observers must not perturb the run");
    let restarts: u64 = observed.nodes.iter().map(|n| n.restarts as u64).sum();
    let retries: u64 = observed.nodes.iter().map(|n| n.retries as u64).sum();
    let timeouts: u64 = observed.nodes.iter().map(|n| n.timeouts as u64).sum();
    assert_eq!(counters.get("fault_crash"), restarts);
    assert_eq!(counters.get("fault_retry"), retries);
    assert_eq!(counters.get("fault_timeout"), timeouts);
    assert!(restarts > 0, "the scheduled crash must land");
}

#[test]
fn uvm_event_counts_reproduce_report() {
    let ws: Vec<Trace> = (0..4)
        .map(|i| {
            Pattern::Stride
                .generate(800, i as u64)
                .with_stream(i as u16)
        })
        .collect();
    let reg = Registry::new();
    let counters = Counters::new();
    reg.attach(counters.clone());
    let sim = UvmSim::new(UvmConfig::default().with_observer(reg));
    let mut pf = NextLine;
    let rep = sim.run(&ws, &mut pf);

    assert_eq!(
        counters.get("hit") + counters.get("miss"),
        rep.accesses as u64
    );
    assert_eq!(
        counters.get("prefetch_issued"),
        rep.prefetches_issued as u64
    );
    assert_eq!(
        counters.get("feedback_useful"),
        rep.prefetches_useful as u64
    );
    assert_eq!(counters.get("ticks"), rep.total_ticks);
    assert!(counters.get("miss") > 0);
}

#[test]
fn uvm_observers_are_inert() {
    let ws: Vec<Trace> = (0..3)
        .map(|i| {
            Pattern::Stride
                .generate(600, i as u64)
                .with_stream(i as u16)
        })
        .collect();
    let plain = UvmSim::new(UvmConfig::default()).run(&ws, &mut NoPrefetcher);
    let reg = Registry::new();
    reg.attach(Counters::new());
    let observed = UvmSim::new(UvmConfig::default().with_observer(reg)).run(&ws, &mut NoPrefetcher);
    assert_eq!(plain, observed);
}
