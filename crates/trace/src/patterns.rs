//! The five primitive access patterns of Table 1.
//!
//! Each pattern is a deterministic address generator; the paper uses
//! 1000-access traces of these patterns for the interference/replay
//! study (Fig. 3) and describes them at the data-structure level:
//!
//! | Pattern         | Code           | Behaviour                        |
//! |-----------------|----------------|----------------------------------|
//! | Stride          | `a[i]`         | regular delta (array traversal)  |
//! | Pointer chase   | `*ptr`         | pseudorandom list traversal      |
//! | Indirect stride | `*(a[i])`      | pointer array at regular delta   |
//! | Indirect index  | `b[a[i]]`      | indices at regular delta         |
//! | Pointer offset  | `*ptr, *(ptr+i)` | chase plus adjacent data       |
//!
//! All generators are seeded and reproducible; "pseudorandom" targets
//! are fixed permutations so that the sequence repeats exactly and is
//! learnable, as in the paper's setup (each pattern is learnable to
//! perfect accuracy in isolation).

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::access::{Trace, PAGE_SHIFT};

/// Identifies one of the Table-1 patterns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Pattern {
    /// `a[i]`: regular stride.
    Stride,
    /// `*ptr`: pointer chasing over a fixed permutation cycle.
    PointerChase,
    /// `*(a[i])`: strided pointer array, pseudorandom targets.
    IndirectStride,
    /// `b[a[i]]`: strided indices into a second array.
    IndirectIndex,
    /// `*ptr` then `*(ptr+i)`: chase with adjacent-data bursts.
    PointerOffset,
}

impl Pattern {
    /// All five patterns, in Table-1 order.
    pub const ALL: [Pattern; 5] = [
        Pattern::Stride,
        Pattern::PointerChase,
        Pattern::IndirectStride,
        Pattern::IndirectIndex,
        Pattern::PointerOffset,
    ];

    /// Short display name.
    pub fn name(&self) -> &'static str {
        match self {
            Pattern::Stride => "stride",
            Pattern::PointerChase => "pointer-chase",
            Pattern::IndirectStride => "indirect-stride",
            Pattern::IndirectIndex => "indirect-index",
            Pattern::PointerOffset => "pointer-offset",
        }
    }

    /// Generates `n` accesses of this pattern with default parameters
    /// and the given seed, as in the paper's 1000-access pattern
    /// traces.
    pub fn generate(&self, n: usize, seed: u64) -> Trace {
        let params = PatternParams::default();
        self.generate_with(n, seed, &params)
    }

    /// Generates `n` accesses with explicit parameters.
    pub fn generate_with(&self, n: usize, seed: u64, p: &PatternParams) -> Trace {
        let addrs = match self {
            Pattern::Stride => stride(n, p),
            Pattern::PointerChase => pointer_chase(n, seed, p),
            Pattern::IndirectStride => indirect_stride(n, seed, p),
            Pattern::IndirectIndex => indirect_index(n, p),
            Pattern::PointerOffset => pointer_offset(n, seed, p),
        };
        Trace::from_addrs(addrs)
    }
}

/// Parameters shared by the pattern generators.
#[derive(Debug, Clone)]
pub struct PatternParams {
    /// Base address of the primary region.
    pub base: u64,
    /// Stride in bytes (page-granular by default so that page-level
    /// deltas are visible).
    pub stride: u64,
    /// Number of elements before the traversal wraps (bounds the
    /// footprint and makes the sequence periodic).
    pub elements: usize,
    /// Base address of the secondary region (pointer targets / the `b`
    /// array).
    pub second_base: u64,
    /// Burst length for `PointerOffset`.
    pub burst: usize,
}

impl Default for PatternParams {
    fn default() -> Self {
        Self {
            base: 0x1_0000_0000,
            stride: 1 << PAGE_SHIFT,
            elements: 64,
            second_base: 0x8_0000_0000,
            burst: 4,
        }
    }
}

/// `a[i]`: wrap-around strided traversal.
fn stride(n: usize, p: &PatternParams) -> Vec<u64> {
    (0..n)
        .map(|i| p.base + ((i % p.elements) as u64) * p.stride)
        .collect()
}

/// `*ptr`: a fixed random permutation cycle over `elements` pages.
fn pointer_chase(n: usize, seed: u64, p: &PatternParams) -> Vec<u64> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut order: Vec<u64> = (0..p.elements as u64).collect();
    order.shuffle(&mut rng);
    (0..n)
        .map(|i| p.base + order[i % p.elements] * p.stride)
        .collect()
}

/// `*(a[i])`: the pointer array is walked at a regular stride and every
/// access to `a[i]` is followed by the dereference of the pseudorandom
/// (but fixed) target it holds.
fn indirect_stride(n: usize, seed: u64, p: &PatternParams) -> Vec<u64> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9e3779b9);
    let mut targets: Vec<u64> = (0..p.elements as u64).collect();
    targets.shuffle(&mut rng);
    let mut out = Vec::with_capacity(n);
    let mut i = 0usize;
    while out.len() < n {
        let idx = i % p.elements;
        out.push(p.base + (idx as u64) * p.stride); // Read a[i].
        if out.len() < n {
            out.push(p.second_base + targets[idx] * p.stride); // Read *a[i].
        }
        i += 1;
    }
    out
}

/// `b[a[i]]`: `a` holds indices at a regular delta, so both streams are
/// strided but with different bases/strides.
fn indirect_index(n: usize, p: &PatternParams) -> Vec<u64> {
    let mut out = Vec::with_capacity(n);
    let mut i = 0usize;
    while out.len() < n {
        let idx = i % p.elements;
        out.push(p.base + (idx as u64) * p.stride); // Read a[i].
        if out.len() < n {
            // a[i] = 3*i: indices at a regular delta of 3.
            let index_value = (3 * idx) as u64 % (p.elements as u64 * 3);
            out.push(p.second_base + index_value * p.stride); // Read b[a[i]].
        }
        i += 1;
    }
    out
}

/// `*ptr` then `*(ptr+i)`: pointer chase with a strided burst over
/// adjacent data after each hop.
fn pointer_offset(n: usize, seed: u64, p: &PatternParams) -> Vec<u64> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5bf0_3635);
    let mut order: Vec<u64> = (0..p.elements as u64).collect();
    order.shuffle(&mut rng);
    let mut out = Vec::with_capacity(n);
    let mut hop = 0usize;
    while out.len() < n {
        let node = p.base + order[hop % p.elements] * p.stride * (p.burst as u64 + 1);
        out.push(node); // *ptr.
        for i in 1..=p.burst {
            if out.len() >= n {
                break;
            }
            out.push(node + (i as u64) * p.stride); // *(ptr + i).
        }
        hop += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stride_has_constant_page_delta() {
        let t = Pattern::Stride.generate(100, 0);
        let pages: Vec<u64> = t.pages().collect();
        for w in pages.windows(2) {
            let delta = w[1] as i64 - w[0] as i64;
            assert!(delta == 1 || delta == -(63), "unexpected delta {delta}");
        }
    }

    #[test]
    fn pointer_chase_is_periodic_and_learnable() {
        let t = Pattern::PointerChase.generate(256, 7);
        let pages: Vec<u64> = t.pages().collect();
        // The cycle repeats every `elements` accesses.
        for i in 0..(256 - 64) {
            assert_eq!(pages[i], pages[i + 64]);
        }
        // And within a cycle the pages are a permutation (all distinct).
        let first: std::collections::HashSet<u64> = pages[..64].iter().copied().collect();
        assert_eq!(first.len(), 64);
    }

    #[test]
    fn same_seed_reproduces_same_trace() {
        for p in Pattern::ALL {
            assert_eq!(p.generate(500, 3), p.generate(500, 3), "{}", p.name());
        }
        // Different seeds change the random patterns.
        assert_ne!(
            Pattern::PointerChase.generate(500, 3),
            Pattern::PointerChase.generate(500, 4)
        );
    }

    #[test]
    fn indirect_patterns_alternate_regions() {
        let p = PatternParams::default();
        let t = Pattern::IndirectStride.generate(100, 1);
        let a: Vec<u64> = t.accesses().iter().map(|a| a.addr).collect();
        for (i, &addr) in a.iter().enumerate() {
            if i % 2 == 0 {
                assert!(addr < p.second_base, "even accesses read the array");
            } else {
                assert!(addr >= p.second_base, "odd accesses dereference");
            }
        }
    }

    #[test]
    fn pointer_offset_bursts_are_adjacent() {
        let t = Pattern::PointerOffset.generate(50, 2);
        let a: Vec<u64> = t.accesses().iter().map(|x| x.addr).collect();
        // Within each group of burst+1 accesses, deltas are one stride.
        let stride = PatternParams::default().stride;
        for g in a.chunks(5) {
            for w in g.windows(2) {
                if w[1] > w[0] {
                    assert_eq!(w[1] - w[0], stride);
                }
            }
        }
    }

    #[test]
    fn requested_length_is_exact() {
        for p in Pattern::ALL {
            assert_eq!(p.generate(1000, 0).len(), 1000, "{}", p.name());
            assert_eq!(p.generate(0, 0).len(), 0);
            assert_eq!(p.generate(1, 0).len(), 1);
        }
    }

    #[test]
    fn footprints_are_bounded_by_elements() {
        let p = PatternParams::default();
        for pat in Pattern::ALL {
            let t = pat.generate(5000, 0);
            // At most two regions of `elements` entries, plus burst
            // neighbours for PointerOffset.
            let bound = 2 * p.elements * (p.burst + 1);
            assert!(
                t.footprint_pages() <= bound,
                "{} footprint {} > {}",
                pat.name(),
                t.footprint_pages(),
                bound
            );
        }
    }
}
