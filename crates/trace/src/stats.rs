//! Trace diagnostics: footprints, delta structure, reuse distances.
//!
//! These statistics quantify "learnability from deltas" — the property
//! §5.3 of the paper identifies as the limit of address/stride
//! encodings — and size memories for the Fig.-5 setup (capacity = 50 %
//! of footprint).

use std::collections::HashMap;

use crate::access::Trace;

/// Summary statistics of a trace at page granularity.
#[derive(Debug, Clone)]
pub struct TraceStats {
    /// Total accesses.
    pub len: usize,
    /// Distinct pages.
    pub footprint_pages: usize,
    /// Distinct page deltas between consecutive accesses.
    pub unique_deltas: usize,
    /// Delta histogram, descending by count.
    pub delta_counts: Vec<(i64, usize)>,
    /// Shannon entropy of the delta distribution, in bits.
    pub delta_entropy_bits: f64,
}

impl TraceStats {
    /// Computes statistics for `trace`.
    pub fn compute(trace: &Trace) -> Self {
        let pages: Vec<u64> = trace.pages().collect();
        let mut counts: HashMap<i64, usize> = HashMap::new();
        for w in pages.windows(2) {
            let delta = w[1] as i64 - w[0] as i64;
            *counts.entry(delta).or_insert(0) += 1;
        }
        let total: usize = counts.values().sum();
        let mut delta_counts: Vec<(i64, usize)> = counts.into_iter().collect();
        delta_counts.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        let entropy = if total == 0 {
            0.0
        } else {
            delta_counts
                .iter()
                .map(|&(_, c)| {
                    let p = c as f64 / total as f64;
                    -p * p.log2()
                })
                .sum()
        };
        Self {
            len: trace.len(),
            footprint_pages: trace.footprint_pages(),
            unique_deltas: delta_counts.len(),
            delta_entropy_bits: entropy,
            delta_counts,
        }
    }

    /// Fraction of transitions covered by the `k` most frequent deltas.
    /// High coverage at small `k` means a small delta vocabulary can
    /// express the trace.
    pub fn top_delta_coverage(&self, k: usize) -> f64 {
        let total: usize = self.delta_counts.iter().map(|&(_, c)| c).sum();
        if total == 0 {
            return 0.0;
        }
        let top: usize = self.delta_counts.iter().take(k).map(|&(_, c)| c).sum();
        top as f64 / total as f64
    }

    /// The `k` most frequent deltas, descending.
    pub fn top_deltas(&self, k: usize) -> Vec<i64> {
        self.delta_counts.iter().take(k).map(|&(d, _)| d).collect()
    }

    /// Column names matching [`csv_row`](Self::csv_row), for
    /// machine-readable summaries (`hnpctl trace-stats --csv true`,
    /// experiment manifests).
    pub fn csv_header() -> &'static str {
        "accesses,footprint_pages,unique_deltas,delta_entropy_milli_bits,\
         top1_coverage_milli,top16_coverage_milli,top64_coverage_milli"
    }

    /// One CSV row of the summary. Fractional quantities are scaled to
    /// integer thousandths, matching the fixed-point convention of the
    /// observability event stream (`hnp-obs`).
    pub fn csv_row(&self) -> String {
        format!(
            "{},{},{},{},{},{},{}",
            self.len,
            self.footprint_pages,
            self.unique_deltas,
            (self.delta_entropy_bits * 1000.0) as u64,
            (self.top_delta_coverage(1) * 1000.0) as u64,
            (self.top_delta_coverage(16) * 1000.0) as u64,
            (self.top_delta_coverage(64) * 1000.0) as u64,
        )
    }

    /// Mean reuse distance (distinct pages between consecutive uses of
    /// the same page), sampled over the whole trace. `None` when no
    /// page repeats.
    pub fn mean_reuse_distance(trace: &Trace) -> Option<f64> {
        let pages: Vec<u64> = trace.pages().collect();
        let mut last_seen: HashMap<u64, usize> = HashMap::new();
        let mut sum = 0.0f64;
        let mut n = 0usize;
        for (i, &p) in pages.iter().enumerate() {
            if let Some(&j) = last_seen.get(&p) {
                // Distinct pages in the window (exact but O(w)); traces
                // in tests are small, experiment harnesses sample.
                let window: std::collections::HashSet<u64> =
                    pages[j + 1..i].iter().copied().collect();
                sum += window.len() as f64;
                n += 1;
            }
            last_seen.insert(p, i);
        }
        (n > 0).then(|| sum / n as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::patterns::Pattern;

    #[test]
    fn stride_trace_has_one_dominant_delta() {
        let t = Pattern::Stride.generate(1000, 0);
        let s = TraceStats::compute(&t);
        assert!(s.top_delta_coverage(1) > 0.97);
        assert_eq!(s.top_deltas(1), vec![1]);
        assert!(s.delta_entropy_bits < 0.2);
    }

    #[test]
    fn pointer_chase_has_bounded_delta_vocabulary() {
        let t = Pattern::PointerChase.generate(1000, 0);
        let s = TraceStats::compute(&t);
        // A 64-element cycle produces at most 64 distinct deltas, each
        // recurring every period: fully covered by a small vocabulary.
        assert!(s.unique_deltas <= 64);
        assert!(s.top_delta_coverage(64) > 0.99);
    }

    #[test]
    fn entropy_orders_patterns_by_randomness() {
        let stride = TraceStats::compute(&Pattern::Stride.generate(2000, 0));
        let chase = TraceStats::compute(&Pattern::PointerChase.generate(2000, 0));
        assert!(stride.delta_entropy_bits < chase.delta_entropy_bits);
    }

    #[test]
    fn empty_and_single_access_traces_are_safe() {
        let s = TraceStats::compute(&Trace::empty());
        assert_eq!(s.unique_deltas, 0);
        assert_eq!(s.top_delta_coverage(5), 0.0);
        let s1 = TraceStats::compute(&Trace::from_addrs(vec![0x1000]));
        assert_eq!(s1.unique_deltas, 0);
    }

    #[test]
    fn reuse_distance_of_tight_loop_is_small() {
        // [A B A B ...] has reuse distance 1 everywhere.
        let addrs: Vec<u64> = (0..100)
            .map(|i| if i % 2 == 0 { 0x1000 } else { 0x2000 })
            .collect();
        let d = TraceStats::mean_reuse_distance(&Trace::from_addrs(addrs)).unwrap();
        assert!((d - 1.0).abs() < 1e-9);
    }

    #[test]
    fn csv_row_matches_header_arity_and_fixed_point() {
        let t = Pattern::Stride.generate(1000, 0);
        let s = TraceStats::compute(&t);
        let header_cols = TraceStats::csv_header().split(',').count();
        let row = s.csv_row();
        assert_eq!(row.split(',').count(), header_cols);
        let fields: Vec<u64> = row.split(',').map(|f| f.parse().unwrap()).collect();
        assert_eq!(fields[0], 1000, "accesses column");
        assert!(fields[4] > 970, "top-1 coverage in thousandths");
    }

    #[test]
    fn reuse_distance_none_when_no_repeats() {
        let t = Trace::from_addrs(vec![0x1000, 0x2000, 0x3000]);
        assert!(TraceStats::mean_reuse_distance(&t).is_none());
    }
}
