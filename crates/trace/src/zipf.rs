//! A Zipf-distributed sampler.
//!
//! Application generators use this for the skewed reuse seen in graph
//! vertices and key-value keys. Implemented with an inverse-CDF table
//! so sampling is O(log n) and exactly reproducible.

use rand::Rng;

/// A Zipf distribution over ranks `0..n` with exponent `s`.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds the distribution. `s = 0` is uniform; typical workload
    /// skews are `s` in 0.7..1.1.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `s` is negative or non-finite.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "empty support");
        assert!(s.is_finite() && s >= 0.0, "bad exponent");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        Self { cdf }
    }

    /// Support size.
    pub fn n(&self) -> usize {
        self.cdf.len()
    }

    /// Samples a rank in `0..n` (0 is the most popular).
    pub fn sample(&self, rng: &mut impl Rng) -> usize {
        let u: f64 = rng.gen();
        match self.cdf.binary_search_by(|c| c.total_cmp(&u)) {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn skewed_sampling_prefers_low_ranks() {
        let z = Zipf::new(1000, 1.0);
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = vec![0usize; 1000];
        for _ in 0..100_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[10] && counts[10] > counts[500]);
        // Rank 0 of Zipf(1.0, 1000) carries ~13 % of the mass.
        assert!(counts[0] > 8_000, "rank-0 count {}", counts[0]);
    }

    #[test]
    fn zero_exponent_is_roughly_uniform() {
        let z = Zipf::new(10, 0.0);
        let mut rng = StdRng::seed_from_u64(2);
        let mut counts = vec![0usize; 10];
        for _ in 0..100_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "count {c}");
        }
    }

    #[test]
    fn samples_stay_in_range() {
        let z = Zipf::new(3, 2.0);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            assert!(z.sample(&mut rng) < 3);
        }
    }
}
