//! The trace container: a sequence of byte addresses with page
//! geometry.

use std::collections::HashSet;

/// Default page shift: 4 KiB pages, matching the page-granular systems
/// in §4 of the paper.
pub const PAGE_SHIFT: u32 = 12;

/// One memory access. Kept minimal: our traces are data accesses
/// without instruction context, like the miss streams the paper's
/// prefetchers consume.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Access {
    /// Byte address.
    pub addr: u64,
    /// Originating stream (0 for single-stream traces; used by the UVM
    /// interleaving experiments).
    pub stream: u16,
}

impl Access {
    /// A single-stream access.
    pub fn new(addr: u64) -> Self {
        Self { addr, stream: 0 }
    }

    /// The page number under `shift`.
    pub fn page(&self, shift: u32) -> u64 {
        self.addr >> shift
    }
}

/// An in-memory access trace.
#[derive(Debug, Clone, PartialEq)]
pub struct Trace {
    /// The accesses, in program order.
    accesses: Vec<Access>,
    /// Page shift used when interpreting the trace.
    page_shift: u32,
}

impl Trace {
    /// Creates a trace over raw byte addresses with the default page
    /// size.
    pub fn from_addrs(addrs: Vec<u64>) -> Self {
        Self {
            accesses: addrs.into_iter().map(Access::new).collect(),
            page_shift: PAGE_SHIFT,
        }
    }

    /// Creates a trace from full accesses with an explicit page shift.
    pub fn from_accesses(accesses: Vec<Access>, page_shift: u32) -> Self {
        Self {
            accesses,
            page_shift,
        }
    }

    /// An empty trace with the default page size.
    pub fn empty() -> Self {
        Self {
            accesses: Vec::new(),
            page_shift: PAGE_SHIFT,
        }
    }

    /// Page shift.
    pub fn page_shift(&self) -> u32 {
        self.page_shift
    }

    /// Number of accesses.
    pub fn len(&self) -> usize {
        self.accesses.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.accesses.is_empty()
    }

    /// The accesses, in order.
    pub fn accesses(&self) -> &[Access] {
        &self.accesses
    }

    /// Iterator over page numbers, in order.
    pub fn pages(&self) -> impl Iterator<Item = u64> + '_ {
        self.accesses.iter().map(move |a| a.page(self.page_shift))
    }

    /// Number of distinct pages touched (the footprint, in pages).
    pub fn footprint_pages(&self) -> usize {
        let set: HashSet<u64> = self.pages().collect();
        set.len()
    }

    /// Appends another trace (streams preserved).
    ///
    /// # Panics
    ///
    /// Panics if page shifts differ.
    pub fn extend(&mut self, other: &Trace) {
        assert_eq!(
            self.page_shift, other.page_shift,
            "cannot concatenate traces with different page shifts"
        );
        self.accesses.extend_from_slice(&other.accesses);
    }

    /// Repeats the trace `times` times (epochs of the same phase).
    pub fn repeat(&self, times: usize) -> Trace {
        let mut accesses = Vec::with_capacity(self.accesses.len() * times);
        for _ in 0..times {
            accesses.extend_from_slice(&self.accesses);
        }
        Trace {
            accesses,
            page_shift: self.page_shift,
        }
    }

    /// Keeps only the first `n` accesses.
    pub fn truncate(&mut self, n: usize) {
        self.accesses.truncate(n);
    }

    /// Relabels every access with `stream`.
    pub fn with_stream(mut self, stream: u16) -> Trace {
        for a in &mut self.accesses {
            a.stream = stream;
        }
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_extraction_uses_shift() {
        let a = Access::new(0x12345);
        assert_eq!(a.page(12), 0x12);
        assert_eq!(a.page(0), 0x12345);
    }

    #[test]
    fn footprint_counts_distinct_pages() {
        let t = Trace::from_addrs(vec![0x1000, 0x1008, 0x2000, 0x2f00, 0x3000]);
        assert_eq!(t.footprint_pages(), 3);
        assert_eq!(t.len(), 5);
    }

    #[test]
    fn repeat_multiplies_length_not_footprint() {
        let t = Trace::from_addrs(vec![0x1000, 0x2000]);
        let r = t.repeat(3);
        assert_eq!(r.len(), 6);
        assert_eq!(r.footprint_pages(), 2);
    }

    #[test]
    fn extend_concatenates_in_order() {
        let mut a = Trace::from_addrs(vec![0x1000]);
        let b = Trace::from_addrs(vec![0x2000]);
        a.extend(&b);
        let pages: Vec<u64> = a.pages().collect();
        assert_eq!(pages, vec![1, 2]);
    }

    #[test]
    #[should_panic(expected = "different page shifts")]
    fn extend_rejects_mixed_page_shifts() {
        let mut a = Trace::from_addrs(vec![0x1000]);
        let b = Trace::from_accesses(vec![Access::new(0x2000)], 16);
        a.extend(&b);
    }

    #[test]
    fn with_stream_relabels() {
        let t = Trace::from_addrs(vec![1, 2]).with_stream(7);
        assert!(t.accesses().iter().all(|a| a.stream == 7));
    }
}
