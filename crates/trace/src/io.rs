//! Trace serialization.
//!
//! Two formats:
//!
//! * a compact binary format (`.hnpt`): a one-line JSON header with
//!   the page shift and length, then little-endian `(u64 addr, u16
//!   stream)` records — suitable for multi-million-access traces;
//! * plain JSON for small traces and interchange.
//!
//! All fallible operations return [`TraceError`] rather than
//! panicking.

use std::fs::File;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

use serde::{Deserialize, Serialize};

use crate::access::{Access, Trace};
use crate::error::TraceError;

/// Header of the binary format.
#[derive(Debug, Serialize, Deserialize)]
struct Header {
    magic: String,
    version: u32,
    page_shift: u32,
    len: usize,
}

const MAGIC: &str = "hnp-trace";

/// Writes `trace` to `path` in the binary format.
///
/// # Errors
///
/// Returns any underlying I/O or header-encoding error.
pub fn write_binary(trace: &Trace, path: &Path) -> Result<(), TraceError> {
    let file = File::create(path)?;
    let mut w = BufWriter::new(file);
    let header = Header {
        magic: MAGIC.to_string(),
        version: 1,
        page_shift: trace.page_shift(),
        len: trace.len(),
    };
    serde_json::to_writer(&mut w, &header).map_err(TraceError::Json)?;
    w.write_all(b"\n")?;
    for a in trace.accesses() {
        w.write_all(&a.addr.to_le_bytes())?;
        w.write_all(&a.stream.to_le_bytes())?;
    }
    w.flush()?;
    Ok(())
}

/// Reads a binary-format trace from `path`.
///
/// # Errors
///
/// Returns [`TraceError::Io`] on I/O failure, [`TraceError::BadMagic`]
/// / [`TraceError::BadHeader`] on header problems, and
/// [`TraceError::Truncated`] when the record stream ends early.
pub fn read_binary(path: &Path) -> Result<Trace, TraceError> {
    let file = File::open(path)?;
    let mut r = BufReader::new(file);
    let mut header_line = String::new();
    r.read_line(&mut header_line)?;
    let header: Header =
        serde_json::from_str(header_line.trim_end()).map_err(TraceError::BadHeader)?;
    if header.magic != MAGIC {
        return Err(TraceError::BadMagic(header.magic));
    }
    let mut accesses = Vec::with_capacity(header.len);
    let mut addr_bytes = [0u8; 8];
    let mut stream_bytes = [0u8; 2];
    for i in 0..header.len {
        let read = r
            .read_exact(&mut addr_bytes)
            .and_then(|()| r.read_exact(&mut stream_bytes));
        read.map_err(|_| TraceError::Truncated {
            record: i,
            expected: header.len,
        })?;
        accesses.push(Access {
            addr: u64::from_le_bytes(addr_bytes),
            stream: u16::from_le_bytes(stream_bytes),
        });
    }
    Ok(Trace::from_accesses(accesses, header.page_shift))
}

/// JSON-serializable view of a trace.
#[derive(Debug, Serialize, Deserialize)]
pub struct TraceJson {
    /// Page shift.
    pub page_shift: u32,
    /// `(addr, stream)` pairs.
    pub accesses: Vec<(u64, u16)>,
}

/// Serializes a trace as JSON text.
///
/// # Errors
///
/// Returns serialization errors (shouldn't happen for valid traces).
pub fn to_json(trace: &Trace) -> Result<String, TraceError> {
    serde_json::to_string(&TraceJson {
        page_shift: trace.page_shift(),
        accesses: trace
            .accesses()
            .iter()
            .map(|a| (a.addr, a.stream))
            .collect(),
    })
    .map_err(TraceError::Json)
}

/// Parses a JSON trace.
///
/// # Errors
///
/// Returns parse errors on malformed input.
pub fn from_json(s: &str) -> Result<Trace, TraceError> {
    let j: TraceJson = serde_json::from_str(s).map_err(TraceError::Json)?;
    Ok(Trace::from_accesses(
        j.accesses
            .into_iter()
            .map(|(addr, stream)| Access { addr, stream })
            .collect(),
        j.page_shift,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::patterns::Pattern;

    fn temp_path(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("hnp-io-test-{}-{}", std::process::id(), name));
        p
    }

    #[test]
    fn binary_roundtrip_preserves_trace() {
        let t = Pattern::PointerOffset.generate(1234, 5).with_stream(3);
        let path = temp_path("roundtrip.hnpt");
        write_binary(&t, &path).unwrap();
        let back = read_binary(&path).unwrap();
        assert_eq!(t, back);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn json_roundtrip_preserves_trace() {
        let t = Pattern::Stride.generate(50, 0);
        let s = to_json(&t).unwrap();
        let back = from_json(&s).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn truncated_file_is_a_typed_error() {
        let t = Pattern::Stride.generate(100, 0);
        let path = temp_path("truncated.hnpt");
        write_binary(&t, &path).unwrap();
        let data = std::fs::read(&path).unwrap();
        std::fs::write(&path, &data[..data.len() - 5]).unwrap();
        let err = read_binary(&path).unwrap_err();
        match err {
            TraceError::Truncated { expected, .. } => assert_eq!(expected, 100),
            other => panic!("expected Truncated, got {other:?}"),
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bad_magic_is_a_typed_error() {
        let path = temp_path("badmagic.hnpt");
        std::fs::write(
            &path,
            b"{\"magic\":\"nope\",\"version\":1,\"page_shift\":12,\"len\":0}\n",
        )
        .unwrap();
        let err = read_binary(&path).unwrap_err();
        assert!(matches!(err, TraceError::BadMagic(m) if m == "nope"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_maps_to_io() {
        let err = read_binary(Path::new("/nonexistent/hnp-nope.hnpt")).unwrap_err();
        assert!(matches!(err, TraceError::Io(_)));
        assert!(err.to_string().contains("I/O"));
    }

    #[test]
    fn empty_trace_roundtrips() {
        let t = Trace::empty();
        let path = temp_path("empty.hnpt");
        write_binary(&t, &path).unwrap();
        assert_eq!(read_binary(&path).unwrap(), t);
        std::fs::remove_file(&path).ok();
    }
}
