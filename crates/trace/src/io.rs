//! Trace serialization.
//!
//! Two formats:
//!
//! * a compact binary format (`.hnpt`): a one-line JSON header with
//!   the page shift and length, then little-endian `(u64 addr, u16
//!   stream)` records — suitable for multi-million-access traces;
//! * plain JSON for small traces and interchange.

use std::fs::File;
use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

use serde::{Deserialize, Serialize};

use crate::access::{Access, Trace};

/// Header of the binary format.
#[derive(Debug, Serialize, Deserialize)]
struct Header {
    magic: String,
    version: u32,
    page_shift: u32,
    len: usize,
}

const MAGIC: &str = "hnp-trace";

/// Writes `trace` to `path` in the binary format.
///
/// # Errors
///
/// Returns any underlying I/O error.
pub fn write_binary(trace: &Trace, path: &Path) -> io::Result<()> {
    let file = File::create(path)?;
    let mut w = BufWriter::new(file);
    let header = Header {
        magic: MAGIC.to_string(),
        version: 1,
        page_shift: trace.page_shift(),
        len: trace.len(),
    };
    serde_json::to_writer(&mut w, &header)?;
    w.write_all(b"\n")?;
    for a in trace.accesses() {
        w.write_all(&a.addr.to_le_bytes())?;
        w.write_all(&a.stream.to_le_bytes())?;
    }
    w.flush()
}

/// Reads a binary-format trace from `path`.
///
/// # Errors
///
/// Returns an error on I/O failure, bad magic, or truncated data.
pub fn read_binary(path: &Path) -> io::Result<Trace> {
    let file = File::open(path)?;
    let mut r = BufReader::new(file);
    let mut header_line = String::new();
    r.read_line(&mut header_line)?;
    let header: Header = serde_json::from_str(header_line.trim_end())
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
    if header.magic != MAGIC {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("bad magic {:?}", header.magic),
        ));
    }
    let mut accesses = Vec::with_capacity(header.len);
    let mut rec = [0u8; 10];
    for i in 0..header.len {
        r.read_exact(&mut rec).map_err(|_| {
            io::Error::new(
                io::ErrorKind::UnexpectedEof,
                format!("truncated at record {i} of {}", header.len),
            )
        })?;
        let addr = u64::from_le_bytes(rec[..8].try_into().expect("8 bytes"));
        let stream = u16::from_le_bytes(rec[8..].try_into().expect("2 bytes"));
        accesses.push(Access { addr, stream });
    }
    Ok(Trace::from_accesses(accesses, header.page_shift))
}

/// JSON-serializable view of a trace.
#[derive(Debug, Serialize, Deserialize)]
pub struct TraceJson {
    /// Page shift.
    pub page_shift: u32,
    /// `(addr, stream)` pairs.
    pub accesses: Vec<(u64, u16)>,
}

/// Serializes a trace as JSON text.
///
/// # Errors
///
/// Returns serialization errors (shouldn't happen for valid traces).
pub fn to_json(trace: &Trace) -> serde_json::Result<String> {
    serde_json::to_string(&TraceJson {
        page_shift: trace.page_shift(),
        accesses: trace
            .accesses()
            .iter()
            .map(|a| (a.addr, a.stream))
            .collect(),
    })
}

/// Parses a JSON trace.
///
/// # Errors
///
/// Returns parse errors on malformed input.
pub fn from_json(s: &str) -> serde_json::Result<Trace> {
    let j: TraceJson = serde_json::from_str(s)?;
    Ok(Trace::from_accesses(
        j.accesses
            .into_iter()
            .map(|(addr, stream)| Access { addr, stream })
            .collect(),
        j.page_shift,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::patterns::Pattern;

    fn temp_path(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("hnp-io-test-{}-{}", std::process::id(), name));
        p
    }

    #[test]
    fn binary_roundtrip_preserves_trace() {
        let t = Pattern::PointerOffset.generate(1234, 5).with_stream(3);
        let path = temp_path("roundtrip.hnpt");
        write_binary(&t, &path).unwrap();
        let back = read_binary(&path).unwrap();
        assert_eq!(t, back);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn json_roundtrip_preserves_trace() {
        let t = Pattern::Stride.generate(50, 0);
        let s = to_json(&t).unwrap();
        let back = from_json(&s).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn truncated_file_is_an_error() {
        let t = Pattern::Stride.generate(100, 0);
        let path = temp_path("truncated.hnpt");
        write_binary(&t, &path).unwrap();
        let data = std::fs::read(&path).unwrap();
        std::fs::write(&path, &data[..data.len() - 5]).unwrap();
        let err = read_binary(&path).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bad_magic_is_an_error() {
        let path = temp_path("badmagic.hnpt");
        std::fs::write(
            &path,
            b"{\"magic\":\"nope\",\"version\":1,\"page_shift\":12,\"len\":0}\n",
        )
        .unwrap();
        assert!(read_binary(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_trace_roundtrips() {
        let t = Trace::empty();
        let path = temp_path("empty.hnpt");
        write_binary(&t, &path).unwrap();
        assert_eq!(read_binary(&path).unwrap(), t);
        std::fs::remove_file(&path).ok();
    }
}
