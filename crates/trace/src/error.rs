//! Typed errors for trace serialization.

use std::fmt;

/// Everything that can go wrong reading or writing a trace.
#[derive(Debug)]
pub enum TraceError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The binary header's magic string did not match.
    BadMagic(String),
    /// The binary header line failed to parse.
    BadHeader(serde_json::Error),
    /// The record stream ended before `expected` records were read.
    Truncated {
        /// Index of the record that could not be read.
        record: usize,
        /// Record count promised by the header.
        expected: usize,
    },
    /// JSON (de)serialization failure.
    Json(serde_json::Error),
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Io(e) => write!(f, "trace I/O error: {e}"),
            TraceError::BadMagic(m) => write!(f, "bad trace magic {m:?}"),
            TraceError::BadHeader(e) => write!(f, "bad trace header: {e}"),
            TraceError::Truncated { record, expected } => {
                write!(f, "trace truncated at record {record} of {expected}")
            }
            TraceError::Json(e) => write!(f, "trace JSON error: {e}"),
        }
    }
}

impl std::error::Error for TraceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceError::Io(e) => Some(e),
            TraceError::BadHeader(e) | TraceError::Json(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for TraceError {
    fn from(e: std::io::Error) -> Self {
        TraceError::Io(e)
    }
}
