//! Application-like synthetic workloads.
//!
//! The paper's Fig. 5 uses 2-billion-access traces from TensorFlow
//! (ResNet-50 training), GraphChi PageRank, SPEC mcf, and graph500,
//! plus memcached/cachebench for the §5.3 negative result. We cannot
//! ship those traces; these generators reproduce each application's
//! *access-pattern composition* — the property Fig. 5 actually
//! exercises — at configurable scale (see DESIGN.md, "Substitutions").
//!
//! Every generator takes a target access count and a seed, and
//! documents which Table-1 primitives it composes.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::access::{Trace, PAGE_SHIFT};
use crate::zipf::Zipf;

/// Identifies an application-like workload (the Fig. 5 x-axis, plus
/// the §5.3 key-value workload).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AppWorkload {
    /// TensorFlow training ResNet-50: epoch-structured strided sweeps.
    TensorFlowLike,
    /// GraphChi PageRank: sequential edge shards + skewed vertex reads.
    PageRankLike,
    /// SPEC mcf: pointer-heavy network simplex with periodic sweeps.
    McfLike,
    /// graph500 BFS: frontier scans + bursty neighbour expansion.
    Graph500Like,
    /// memcached/cachebench stand-in: hash-random keyed accesses; the
    /// deliberately unlearnable §5.3 case.
    KvStoreLike,
    /// Serverless-platform stand-in (after the paper's Shahrad et al.
    /// citation): short, bursty function invocations, each function
    /// with its own access pattern, arriving in a skewed mix — a
    /// phase-churn stress test for phase detection and replay.
    ServerlessLike,
}

impl AppWorkload {
    /// The four Fig.-5 applications.
    pub const FIG5: [AppWorkload; 4] = [
        AppWorkload::TensorFlowLike,
        AppWorkload::PageRankLike,
        AppWorkload::McfLike,
        AppWorkload::Graph500Like,
    ];

    /// Short display name.
    pub fn name(&self) -> &'static str {
        match self {
            AppWorkload::TensorFlowLike => "tensorflow",
            AppWorkload::PageRankLike => "pagerank",
            AppWorkload::McfLike => "mcf",
            AppWorkload::Graph500Like => "graph500",
            AppWorkload::KvStoreLike => "kv-store",
            AppWorkload::ServerlessLike => "serverless",
        }
    }

    /// Generates approximately `n` accesses (exact length `n`).
    pub fn generate(&self, n: usize, seed: u64) -> Trace {
        let mut t = match self {
            AppWorkload::TensorFlowLike => tensorflow_like(n, seed),
            AppWorkload::PageRankLike => pagerank_like(n, seed),
            AppWorkload::McfLike => mcf_like(n, seed),
            AppWorkload::Graph500Like => graph500_like(n, seed),
            AppWorkload::KvStoreLike => kv_store_like(n, seed),
            AppWorkload::ServerlessLike => serverless_like(n, seed),
        };
        t.truncate(n);
        t
    }
}

const PAGE: u64 = 1 << PAGE_SHIFT;

/// TensorFlow/ResNet-50 training: repeated epochs of (a) a sequential
/// sweep over the weight/activation region (stride), (b) strided
/// mini-batch input reads, (c) a short shuffle burst (pseudorandom but
/// seeded per epoch). Dominated by learnable strides with periodic
/// phase changes.
fn tensorflow_like(n: usize, seed: u64) -> Trace {
    let mut rng = StdRng::seed_from_u64(seed);
    let weights_base = 0x10_0000_0000u64;
    let weight_pages = 384u64;
    let input_base = 0x20_0000_0000u64;
    let input_pages = 512u64;
    let mut out = Vec::with_capacity(n);
    while out.len() < n {
        // Forward+backward sweep over weights (sequential, both ways).
        for p in 0..weight_pages {
            out.push(weights_base + p * PAGE);
        }
        for p in (0..weight_pages).rev() {
            out.push(weights_base + p * PAGE);
        }
        // Mini-batch reads: stride 4 pages over the input region.
        let batch_start = rng.gen_range(0..input_pages / 2);
        for i in 0..64u64 {
            out.push(input_base + ((batch_start + i * 4) % input_pages) * PAGE);
        }
        // Shuffle burst: a handful of random input pages.
        for _ in 0..16 {
            out.push(input_base + rng.gen_range(0..input_pages) * PAGE);
        }
    }
    Trace::from_addrs(out)
}

/// GraphChi PageRank: per-iteration sequential sweeps over edge shards
/// interleaved with Zipf-skewed vertex-value reads (power-law degree
/// distribution).
fn pagerank_like(n: usize, seed: u64) -> Trace {
    let mut rng = StdRng::seed_from_u64(seed);
    let edges_base = 0x30_0000_0000u64;
    let edge_pages = 1024u64;
    let verts_base = 0x40_0000_0000u64;
    let vert_pages = 256usize;
    let zipf = Zipf::new(vert_pages, 0.9);
    let mut out = Vec::with_capacity(n);
    let mut edge_cursor = 0u64;
    while out.len() < n {
        // GraphChi streams edge shards sequentially; vertex-value reads
        // are interleaved and degree-skewed.
        for _ in 0..3 {
            out.push(edges_base + (edge_cursor % edge_pages) * PAGE);
            edge_cursor += 1;
        }
        for _ in 0..2 {
            out.push(verts_base + zipf.sample(&mut rng) as u64 * PAGE);
        }
    }
    Trace::from_addrs(out)
}

/// SPEC mcf: network-simplex pointer chasing over arc/node structures
/// (fixed permutation cycles, re-shuffled occasionally) with periodic
/// strided price-update sweeps.
fn mcf_like(n: usize, seed: u64) -> Trace {
    let mut rng = StdRng::seed_from_u64(seed);
    let nodes_base = 0x50_0000_0000u64;
    let node_pages = 512usize;
    let arcs_base = 0x60_0000_0000u64;
    let arc_pages = 512u64;
    let mut order: Vec<u64> = (0..node_pages as u64).collect();
    rand::seq::SliceRandom::shuffle(&mut order[..], &mut rng);
    let mut out = Vec::with_capacity(n);
    let mut pos = 0usize;
    while out.len() < n {
        // Chase ~200 pointers.
        for _ in 0..200 {
            out.push(nodes_base + order[pos % node_pages] * PAGE);
            pos += 1;
        }
        // Price-update sweep over arcs (stride).
        for p in 0..arc_pages / 4 {
            out.push(arcs_base + p * 4 * PAGE);
        }
        // Occasionally the spanning tree changes: reshuffle a small
        // window of the chase order.
        let a = rng.gen_range(0..node_pages - 16);
        order[a..a + 16].rotate_left(rng.gen_range(1..8));
    }
    Trace::from_addrs(out)
}

/// graph500 BFS on a skewed graph: sequential frontier scans plus
/// bursty, Zipf-skewed neighbour expansions that grow then shrink with
/// BFS level.
fn graph500_like(n: usize, seed: u64) -> Trace {
    let mut rng = StdRng::seed_from_u64(seed);
    let frontier_base = 0x70_0000_0000u64;
    let adj_base = 0x80_0000_0000u64;
    let adj_pages = 2048usize;
    let zipf = Zipf::new(adj_pages, 0.8);
    let mut out = Vec::with_capacity(n);
    while out.len() < n {
        // One BFS: level sizes ramp up then down.
        for level in 0..8u64 {
            let frontier_pages = 4u64 << level.min(4); // 4..64.
            for p in 0..frontier_pages {
                out.push(frontier_base + (level * 64 + p) * PAGE);
                // Neighbour expansion: a vertex's CSR adjacency run is
                // contiguous, so each expansion reads a short
                // sequential run starting at a skew-sampled vertex.
                let start = zipf.sample(&mut rng) as u64;
                for o in 0..3u64 {
                    out.push(adj_base + ((start + o) % adj_pages as u64) * PAGE);
                }
            }
            if out.len() >= n {
                break;
            }
        }
    }
    Trace::from_addrs(out)
}

/// memcached/cachebench stand-in: keyed accesses whose page sequence is
/// a hash of a Zipf-sampled key — pointer-based with no delta
/// structure, the §5.3 "neither the LSTM nor the Hebbian network
/// perform well" case.
fn kv_store_like(n: usize, seed: u64) -> Trace {
    let mut rng = StdRng::seed_from_u64(seed);
    let heap_base = 0x90_0000_0000u64;
    let heap_pages = 8192u64;
    let keys = 100_000usize;
    // Mild key skew: enough reuse to be cache-relevant, but page
    // deltas remain hash-random — the property §5.3 turns on.
    let zipf = Zipf::new(keys, 0.5);
    let mut out = Vec::with_capacity(n);
    while out.len() < n {
        let key = zipf.sample(&mut rng) as u64;
        // Hash the key to a page (splitmix64 finalizer).
        let mut h = key.wrapping_add(0x9e37_79b9_7f4a_7c15);
        h = (h ^ (h >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        h = (h ^ (h >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        h ^= h >> 31;
        out.push(heap_base + (h % heap_pages) * PAGE);
        // Occasionally a value spans two pages.
        if rng.gen_bool(0.15) {
            out.push(heap_base + ((h % heap_pages) + 1) * PAGE);
        }
    }
    Trace::from_addrs(out)
}

/// Serverless platform: a skewed mix of short function invocations.
/// Each of 8 "functions" owns a region and a characteristic pattern
/// (alternating strided scans and small pointer cycles); invocations
/// run 64-512 accesses and then yield — so the stream is a rapid churn
/// of phases, each individually learnable but short-lived.
fn serverless_like(n: usize, seed: u64) -> Trace {
    let mut rng = StdRng::seed_from_u64(seed);
    let functions = 8usize;
    let popularity = Zipf::new(functions, 1.0);
    // Per-function fixed pointer cycles.
    let mut cycles: Vec<Vec<u64>> = Vec::new();
    for f in 0..functions {
        let mut order: Vec<u64> = (0..48).collect();
        rand::seq::SliceRandom::shuffle(&mut order[..], &mut rng);
        let _ = f;
        cycles.push(order);
    }
    let mut out = Vec::with_capacity(n);
    while out.len() < n {
        let f = popularity.sample(&mut rng);
        let base = 0xA0_0000_0000u64 + (f as u64) * 0x1000_0000;
        let burst = 64 + rng.gen_range(0..448usize);
        if f.is_multiple_of(2) {
            // Strided scan function.
            for i in 0..burst {
                out.push(base + ((i % 96) as u64) * PAGE);
            }
        } else {
            // Pointer-cycle function.
            let cycle = &cycles[f];
            for i in 0..burst {
                out.push(base + cycle[i % cycle.len()] * PAGE);
            }
        }
    }
    Trace::from_addrs(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::TraceStats;

    #[test]
    fn all_workloads_hit_requested_length() {
        for w in [
            AppWorkload::TensorFlowLike,
            AppWorkload::PageRankLike,
            AppWorkload::McfLike,
            AppWorkload::Graph500Like,
            AppWorkload::KvStoreLike,
            AppWorkload::ServerlessLike,
        ] {
            let t = w.generate(10_000, 1);
            assert_eq!(t.len(), 10_000, "{}", w.name());
            assert!(t.footprint_pages() > 16, "{} trivial footprint", w.name());
        }
    }

    #[test]
    fn workloads_are_deterministic_per_seed() {
        for w in AppWorkload::FIG5 {
            assert_eq!(w.generate(5_000, 9), w.generate(5_000, 9));
            assert_ne!(w.generate(5_000, 9), w.generate(5_000, 10));
        }
    }

    #[test]
    fn tensorflow_is_mostly_strided() {
        let t = AppWorkload::TensorFlowLike.generate(50_000, 1);
        let s = TraceStats::compute(&t);
        // Sweeps dominate: the top few deltas cover most transitions.
        assert!(
            s.top_delta_coverage(4) > 0.7,
            "coverage {}",
            s.top_delta_coverage(4)
        );
    }

    #[test]
    fn kv_store_has_no_delta_structure() {
        let t = AppWorkload::KvStoreLike.generate(50_000, 1);
        let s = TraceStats::compute(&t);
        assert!(
            s.top_delta_coverage(16) < 0.35,
            "kv-store should be unlearnable from deltas, coverage {}",
            s.top_delta_coverage(16)
        );
    }

    #[test]
    fn learnable_apps_have_more_delta_structure_than_kv() {
        let kv = TraceStats::compute(&AppWorkload::KvStoreLike.generate(30_000, 1));
        for w in AppWorkload::FIG5 {
            let s = TraceStats::compute(&w.generate(30_000, 1));
            assert!(
                s.top_delta_coverage(64) > kv.top_delta_coverage(64),
                "{} vs kv",
                w.name()
            );
        }
    }
}
