//! Memory-access workloads for the HNP experiments.
//!
//! * [`access`] — the [`access::Trace`] container (raw addresses
//!   plus page geometry);
//! * [`patterns`] — the five Table-1 primitive access patterns;
//! * [`phased`] — phase composition and multi-stream interleaving;
//! * [`apps`] — application-like synthetic workloads standing in for
//!   the paper's TensorFlow / PageRank / mcf / graph500 / key-value
//!   traces (see DESIGN.md for the substitution argument);
//! * [`zipf`] — a Zipf sampler used by the app generators;
//! * [`stats`] — footprints, delta histograms and learnability
//!   diagnostics;
//! * [`io`] — binary and JSON trace serialization;
//! * [`error`] — the [`error::TraceError`] type those paths return.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod access;
pub mod apps;
pub mod error;
pub mod io;
pub mod patterns;
pub mod phased;
pub mod stats;
pub mod zipf;

pub use access::{Access, Trace, PAGE_SHIFT};
pub use error::TraceError;
pub use patterns::Pattern;
