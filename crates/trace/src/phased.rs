//! Phase composition and multi-stream interleaving.
//!
//! The interference study (Fig. 3) presents patterns back to back —
//! phases. The UVM target (§4) sees several applications' access
//! streams interleaved through one centralized prefetcher; the paper
//! conjectures "such interleaving of access streams may naturally
//! offer more resistance to catastrophic interference". Both trace
//! shapes are built here.

use crate::access::{Access, Trace};
use crate::patterns::Pattern;

/// Concatenates traces in order.
///
/// # Panics
///
/// Panics if page shifts differ or `traces` is empty.
pub fn concat(traces: &[Trace]) -> Trace {
    assert!(!traces.is_empty(), "no traces to concatenate");
    let mut out = traces[0].clone();
    for t in &traces[1..] {
        out.extend(t);
    }
    out
}

/// Builds a phased trace: each `(pattern, len)` spec becomes one phase,
/// with per-phase seeds derived from `seed`.
pub fn phases(specs: &[(Pattern, usize)], seed: u64) -> Trace {
    let traces: Vec<Trace> = specs
        .iter()
        .enumerate()
        .map(|(i, (p, n))| p.generate(*n, seed.wrapping_add(i as u64)))
        .collect();
    concat(&traces)
}

/// Interleaves traces round-robin in chunks of `chunk` accesses,
/// labelling each access with its source stream index. Shorter traces
/// drop out as they are exhausted.
///
/// # Panics
///
/// Panics if `chunk == 0`, `traces` is empty, or page shifts differ.
pub fn interleave(traces: &[Trace], chunk: usize) -> Trace {
    assert!(chunk > 0, "chunk must be positive");
    assert!(!traces.is_empty(), "no traces to interleave");
    let shift = traces[0].page_shift();
    assert!(
        traces.iter().all(|t| t.page_shift() == shift),
        "page shift mismatch"
    );
    let mut cursors = vec![0usize; traces.len()];
    let total: usize = traces.iter().map(|t| t.len()).sum();
    let mut out: Vec<Access> = Vec::with_capacity(total);
    while out.len() < total {
        for (s, t) in traces.iter().enumerate() {
            let start = cursors[s];
            let end = (start + chunk).min(t.len());
            for a in &t.accesses()[start..end] {
                out.push(Access {
                    addr: a.addr,
                    stream: s as u16,
                });
            }
            cursors[s] = end;
        }
    }
    Trace::from_accesses(out, shift)
}

/// Splits an interleaved trace back into per-stream traces, in stream
/// order (the de-interleaving a centralized prefetcher must perform,
/// §4).
pub fn split_streams(trace: &Trace) -> Vec<Trace> {
    let max_stream = trace
        .accesses()
        .iter()
        .map(|a| a.stream)
        .max()
        .map(|m| m as usize + 1)
        .unwrap_or(0);
    let mut buckets: Vec<Vec<Access>> = vec![Vec::new(); max_stream];
    for a in trace.accesses() {
        buckets[a.stream as usize].push(*a);
    }
    buckets
        .into_iter()
        .map(|b| Trace::from_accesses(b, trace.page_shift()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phases_concatenate_lengths() {
        let t = phases(&[(Pattern::Stride, 100), (Pattern::PointerChase, 50)], 1);
        assert_eq!(t.len(), 150);
    }

    #[test]
    fn interleave_preserves_every_access() {
        let a = Pattern::Stride.generate(100, 1);
        let b = Pattern::PointerChase.generate(70, 2);
        let i = interleave(&[a.clone(), b.clone()], 8);
        assert_eq!(i.len(), 170);
        let parts = split_streams(&i);
        assert_eq!(parts.len(), 2);
        let a_addrs: Vec<u64> = a.accesses().iter().map(|x| x.addr).collect();
        let got: Vec<u64> = parts[0].accesses().iter().map(|x| x.addr).collect();
        assert_eq!(a_addrs, got, "stream 0 must round-trip in order");
        assert_eq!(parts[1].len(), b.len());
    }

    #[test]
    fn interleave_chunk_one_alternates() {
        let a = Trace::from_addrs(vec![0x1000, 0x2000]);
        let b = Trace::from_addrs(vec![0x3000, 0x4000]);
        let i = interleave(&[a, b], 1);
        let streams: Vec<u16> = i.accesses().iter().map(|x| x.stream).collect();
        assert_eq!(streams, vec![0, 1, 0, 1]);
    }

    #[test]
    fn split_streams_of_single_stream_trace() {
        let t = Trace::from_addrs(vec![1, 2, 3]);
        let parts = split_streams(&t);
        assert_eq!(parts.len(), 1);
        assert_eq!(parts[0].len(), 3);
    }

    #[test]
    #[should_panic(expected = "chunk must be positive")]
    fn zero_chunk_rejected() {
        let t = Trace::from_addrs(vec![1]);
        let _ = interleave(&[t], 0);
    }
}
