//! Double-run determinism regression: the full simulator stack must
//! produce byte-identical serialized reports across two runs in the
//! same process. This is the behavioral counterpart of hnp-lint's
//! HNP01 rule — with hash-ordered maps in simulator state, these runs
//! diverge whenever iteration order leaks into eviction or prefetch
//! order (the per-process SipHash keys differ only *across*
//! processes, but the CI matrix plus this in-process check together
//! pin both directions).

use hnp_baselines::{StrideConfig, StridePrefetcher};
use hnp_core::{ClsConfig, ClsPrefetcher};
use hnp_memsim::{Prefetcher, ResilientPrefetcher, SimConfig, Simulator};
use hnp_trace::apps::AppWorkload;
use hnp_trace::Trace;

fn run_once(trace: &Trace, mut prefetcher: Box<dyn Prefetcher>) -> String {
    let sim = Simulator::new(SimConfig {
        capacity_pages: 64,
        ..SimConfig::default()
    });
    let report = sim.run(trace, prefetcher.as_mut());
    serde_json::to_string(&report).expect("report serializes")
}

fn assert_double_run_identical(make: impl Fn() -> Box<dyn Prefetcher>) {
    let trace = AppWorkload::PageRankLike.generate(20_000, 7);
    let first = run_once(&trace, make());
    let second = run_once(&trace, make());
    assert_eq!(
        first, second,
        "two identically-configured runs must serialize identically"
    );
}

#[test]
fn cls_hebbian_double_run_is_bit_identical() {
    assert_double_run_identical(|| Box::new(ClsPrefetcher::new(ClsConfig::default())));
}

#[test]
fn resilient_stride_double_run_is_bit_identical() {
    assert_double_run_identical(|| {
        Box::new(ResilientPrefetcher::new(StridePrefetcher::with_config(
            StrideConfig::default(),
        )))
    });
}
