//! End-to-end check of `hnpctl serve-bench` through the binary: the
//! command must succeed, verify the determinism contract across the
//! requested thread counts, write a parseable serve-event JSONL
//! stream, and persist decodable tenant snapshots.

use std::process::Command;

use hnp_obs::{jsonl_kind, jsonl_u64};

#[test]
fn serve_bench_writes_stream_and_snapshots() {
    let dir = std::env::temp_dir().join("hnpctl-serve-bench-test");
    let snaps = dir.join("snapshots");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let events = dir.join("serve-events.jsonl");

    let bin = env!("CARGO_BIN_EXE_hnpctl");
    let out = Command::new(bin)
        .args([
            "serve-bench",
            "--tenants",
            "10",
            "--accesses",
            "120",
            "--threads",
            "1,2",
            "--snapshot-interval",
            "4",
            "--crashes",
            "6:0",
            "--obs",
        ])
        .arg(&events)
        .arg("--snapshot-dir")
        .arg(&snaps)
        .output()
        .expect("serve-bench spawns");
    assert!(
        out.status.success(),
        "serve-bench failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("outcome identical across thread counts"),
        "determinism check missing from output: {stdout}"
    );

    // Every event line parses; enqueue/shed totals match the offered
    // request count, and the crash shows up as a fault + a restore.
    let text = std::fs::read_to_string(&events).expect("events written");
    let (mut enqueued, mut shed, mut faults, mut restores) = (0u64, 0u64, 0u64, 0u64);
    for line in text.lines() {
        let kind = jsonl_kind(line).unwrap_or_else(|| panic!("unparseable event line: {line}"));
        match kind {
            "serve_enqueue" => enqueued += 1,
            "serve_shed" => shed += 1,
            "fault" => faults += 1,
            "snapshot" => {
                if line.contains("\"restored\":true") {
                    restores += 1;
                }
                assert!(jsonl_u64(line, "bytes").expect("snapshot carries bytes") > 0);
            }
            _ => {}
        }
    }
    assert_eq!(enqueued + shed, 10 * 120, "every offered request accounted");
    assert_eq!(faults, 1, "one scheduled crash");
    assert_eq!(restores, 1, "tenant 0 (Hebbian) warm-starts");

    // Snapshots decode back to the tenants they were written for.
    let mut decoded = 0u64;
    for entry in std::fs::read_dir(&snaps).expect("snapshot dir written") {
        let path = entry.expect("dir entry").path();
        let name = path
            .file_name()
            .and_then(|n| n.to_str())
            .expect("utf-8 name");
        let id: u64 = name
            .strip_prefix("tenant-")
            .and_then(|s| s.strip_suffix(".hnpsnap"))
            .and_then(|s| s.parse().ok())
            .unwrap_or_else(|| panic!("unexpected snapshot file name {name}"));
        let blob = std::fs::read(&path).expect("snapshot readable");
        let snap = hnp_serve::decode(&blob).expect("snapshot decodes");
        assert_eq!(snap.tenant, id, "{name} holds its own tenant's state");
        decoded += 1;
    }
    assert!(decoded > 0, "at least one tenant snapshot persisted");

    let _ = std::fs::remove_dir_all(&dir);
}
