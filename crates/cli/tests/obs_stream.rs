//! End-to-end check of the observability plumbing through the binary:
//! `hnpctl run --obs FILE` must write a JSONL stream in which every
//! line parses, and whose aggregated counts reproduce the run report
//! exactly (the report and the stream are two independent folds of
//! the same events).

use std::process::Command;

use hnp_obs::{jsonl_kind, jsonl_u64};

/// Extracts an integer field from the report's pretty-printed JSON
/// (which, unlike the JSONL stream, has whitespace after the colon).
fn report_u64(json: &str, key: &str) -> u64 {
    let needle = format!("\"{key}\":");
    let rest = json
        .split_once(needle.as_str())
        .unwrap_or_else(|| panic!("report is missing {key}: {json}"))
        .1
        .trim_start();
    rest.split(|c: char| !c.is_ascii_digit())
        .next()
        .unwrap_or("")
        .parse()
        .unwrap_or_else(|_| panic!("report field {key} is not an integer"))
}

#[test]
fn run_obs_stream_reproduces_report() {
    let dir = std::env::temp_dir().join("hnpctl-obs-stream-test");
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let trace = dir.join("t.hnpt");
    let events = dir.join("events.jsonl");

    let bin = env!("CARGO_BIN_EXE_hnpctl");
    let gen = Command::new(bin)
        .args([
            "trace-gen",
            "--workload",
            "pagerank",
            "--accesses",
            "20000",
            "--seed",
            "1",
            "--out",
        ])
        .arg(&trace)
        .output()
        .expect("trace-gen spawns");
    assert!(
        gen.status.success(),
        "trace-gen failed: {}",
        String::from_utf8_lossy(&gen.stderr)
    );

    let run = Command::new(bin)
        .arg("run")
        .arg("--trace")
        .arg(&trace)
        .args(["--prefetcher", "stride", "--json", "true", "--obs"])
        .arg(&events)
        .output()
        .expect("run spawns");
    assert!(
        run.status.success(),
        "run failed: {}",
        String::from_utf8_lossy(&run.stderr)
    );
    let report = String::from_utf8_lossy(&run.stdout).into_owned();

    // Every line of the stream parses, and the aggregation reproduces
    // the report's counters exactly.
    let text = std::fs::read_to_string(&events).expect("events written");
    let (mut hits, mut misses, mut issued, mut stall) = (0u64, 0u64, 0u64, 0u64);
    let mut end_misses = None;
    for line in text.lines() {
        let kind = jsonl_kind(line).unwrap_or_else(|| panic!("unparseable event line: {line}"));
        match kind {
            "hit" => hits += 1,
            "miss" => {
                misses += 1;
                stall += jsonl_u64(line, "stall").expect("miss carries stall");
            }
            "prefetch_issued" => issued += 1,
            "run_end" => end_misses = jsonl_u64(line, "misses"),
            _ => {}
        }
    }
    assert_eq!(hits + misses, report_u64(&report, "accesses"));
    assert_eq!(hits, report_u64(&report, "hits"));
    assert_eq!(
        misses,
        report_u64(&report, "full_misses") + report_u64(&report, "late_prefetch_hits")
    );
    assert_eq!(issued, report_u64(&report, "prefetches_issued"));
    assert_eq!(
        end_misses,
        Some(misses),
        "run_end totals must close the stream"
    );
    assert!(stall > 0, "misses must account stall ticks");

    // The stats subcommand aggregates the same file without error.
    let stats_out = Command::new(bin)
        .args(["stats", "--events"])
        .arg(&events)
        .output()
        .expect("stats spawns");
    assert!(stats_out.status.success());
    let stats_text = String::from_utf8_lossy(&stats_out.stdout);
    assert!(stats_text.contains(&format!("{misses} misses")));

    let _ = std::fs::remove_dir_all(&dir);
}
