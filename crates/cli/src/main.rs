//! `hnpctl` — the HNP command line.
//!
//! ```text
//! hnpctl trace-gen  --workload pagerank --accesses 100000 --seed 1 --out t.hnpt
//! hnpctl trace-stats --trace t.hnpt
//! hnpctl run        --trace t.hnpt --prefetcher cls-hebbian [--capacity-frac 0.5]
//!                   [--obs events.jsonl]   (alias: sim)
//! hnpctl stats      --events events.jsonl
//! hnpctl stats      --trace t.hnpt [--prefetcher NAME]
//! hnpctl compare    --trace t.hnpt [--capacity-frac 0.5]
//! hnpctl patterns   [--accesses 1000]
//! hnpctl faults     --workload pagerank --schedule lossy:5000:40000:0.5 \
//!                   [--target disagg|uvm] [--resilient true]
//! hnpctl lint       [--root DIR] [--json FILE] [--quiet true]
//! hnpctl serve-bench [--tenants 32] [--accesses 200] [--threads 1,2,4]
//!                   [--shards 8] [--obs events.jsonl] [--snapshot-dir DIR]
//! hnpctl bench      [--iters-small true] [--out BENCH_kernels.json]
//! ```
//!
//! Workloads: `tensorflow`, `pagerank`, `mcf`, `graph500`, `kv-store`,
//! or any Table-1 pattern (`stride`, `pointer-chase`, `indirect-stride`,
//! `indirect-index`, `pointer-offset`).
//! Prefetchers: `none`, `stride`, `markov`, `next-n`, `lstm`,
//! `transformer`, `hebbian`, `cls-hebbian`.

mod args;

use std::path::Path;
use std::process::ExitCode;

use args::Args;
use hnp_baselines::{
    LstmPrefetcher, LstmPrefetcherConfig, MarkovConfig, MarkovPrefetcher, NextNConfig,
    NextNPrefetcher, StrideConfig, StridePrefetcher, TransformerPrefetcher,
    TransformerPrefetcherConfig,
};
use hnp_core::{ClsConfig, ClsPrefetcher};
use hnp_lint as lint;
use hnp_memsim::{NoPrefetcher, Prefetcher, ResilientPrefetcher, SimConfig, Simulator};
use hnp_obs::{jsonl_kind, jsonl_u64, Counters, Histogram, JsonlExporter, Metric, Registry};
use hnp_serve::{
    synthesize, ModelKind, PrefetcherFactory, ServeConfig, ServeEngine, TenantRegistry, TenantSpec,
};
use hnp_systems::{
    DisaggConfig, DisaggregatedCluster, FaultInjector, FaultSchedule, UvmConfig, UvmSim,
};
use hnp_trace::apps::AppWorkload;
use hnp_trace::stats::TraceStats;
use hnp_trace::{io, Pattern, Trace};

const USAGE: &str =
    "usage: hnpctl <trace-gen|trace-stats|run|stats|compare|patterns|faults|lint|serve-bench|bench> [--key value ...]
  trace-gen   --workload NAME --accesses N [--seed S] --out FILE
  trace-stats --trace FILE [--csv true]
  run         --trace FILE --prefetcher NAME [--capacity-frac F] [--seed S] [--json true]
              [--obs FILE]  (writes the event stream as JSON Lines; alias: sim)
  stats       --events FILE  (aggregate a --obs JSONL stream)
              | --trace FILE [--prefetcher NAME] [--capacity-frac F] [--seed S]
  compare     --trace FILE [--capacity-frac F] [--seed S]
  patterns    [--accesses N]
  faults      --workload NAME [--target disagg|uvm] [--nodes K] [--accesses N]
              [--prefetcher NAME] [--resilient true] [--schedule DSL]
              [--seed S] [--fault-seed S] [--json true]
              (DSL: comma-separated spike:S:D:EXTRA[:JIT] lossy:S:D:P
               brownout:S:D:SLOTS slow:S:D:F crash:S:D:NODE)
  lint        [--root DIR] [--json FILE] [--quiet true]
  serve-bench [--tenants N] [--accesses N] [--threads LIST] [--shards N]
              [--queue-depth N] [--batch N] [--snapshot-interval N]
              [--model mix|NAME] [--crashes E:T,E:T] [--seed S]
              [--obs FILE] [--snapshot-dir DIR]
              (multi-tenant serving engine: scaling table + determinism
               check across thread counts)
  bench       [--iters-small true] [--out FILE]
              (kernel perf point at paper scale -> BENCH_kernels.json,
               validated after writing; see DESIGN.md §12)";

fn main() -> ExitCode {
    let args = match Args::parse(std::env::args().skip(1)) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let result = match args.command.as_str() {
        "trace-gen" => cmd_trace_gen(&args),
        "trace-stats" => cmd_trace_stats(&args),
        "sim" | "run" => cmd_sim(&args),
        "stats" => cmd_stats(&args),
        "compare" => cmd_compare(&args),
        "patterns" => cmd_patterns(&args),
        "faults" => cmd_faults(&args),
        "lint" => cmd_lint(&args),
        "serve-bench" => cmd_serve_bench(&args),
        "bench" => cmd_bench(&args),
        other => Err(format!("unknown subcommand {other:?}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}\n{USAGE}");
            ExitCode::FAILURE
        }
    }
}

/// Builds a workload by name.
fn workload(name: &str, accesses: usize, seed: u64) -> Result<Trace, String> {
    let app = match name {
        "tensorflow" => Some(AppWorkload::TensorFlowLike),
        "pagerank" => Some(AppWorkload::PageRankLike),
        "mcf" => Some(AppWorkload::McfLike),
        "graph500" => Some(AppWorkload::Graph500Like),
        "kv-store" => Some(AppWorkload::KvStoreLike),
        _ => None,
    };
    if let Some(app) = app {
        return Ok(app.generate(accesses, seed));
    }
    let pattern = Pattern::ALL
        .into_iter()
        .find(|p| p.name() == name)
        .ok_or_else(|| format!("unknown workload {name:?}"))?;
    Ok(pattern.generate(accesses, seed))
}

/// Builds a prefetcher by name.
fn prefetcher(name: &str, seed: u64) -> Result<Box<dyn Prefetcher>, String> {
    Ok(match name {
        "none" => Box::new(NoPrefetcher),
        "stride" => Box::new(StridePrefetcher::with_config(StrideConfig::default())),
        "markov" => Box::new(MarkovPrefetcher::with_config(MarkovConfig::default())),
        "next-n" => Box::new(NextNPrefetcher::with_config(NextNConfig::default())),
        "lstm" => Box::new(LstmPrefetcher::new(LstmPrefetcherConfig {
            seed,
            ..LstmPrefetcherConfig::default()
        })),
        "transformer" => Box::new(TransformerPrefetcher::new(TransformerPrefetcherConfig {
            seed,
            ..TransformerPrefetcherConfig::default()
        })),
        "hebbian" => Box::new(ClsPrefetcher::new(ClsConfig {
            seed,
            ..ClsConfig::hebbian_only()
        })),
        "cls-hebbian" => Box::new(ClsPrefetcher::new(ClsConfig {
            seed,
            ..ClsConfig::default()
        })),
        other => return Err(format!("unknown prefetcher {other:?}")),
    })
}

fn load_trace(args: &Args) -> Result<Trace, String> {
    // `--trace FILE`, or the first positional argument.
    let path = match args.options.get("trace") {
        Some(p) => p.as_str(),
        None => args
            .positional
            .first()
            .map(String::as_str)
            .ok_or("--trace FILE (or a positional path) is required")?,
    };
    io::read_binary(Path::new(path)).map_err(|e| format!("cannot read {path}: {e}"))
}

fn sim_cfg_for(trace: &Trace, args: &Args) -> Result<SimConfig, String> {
    let frac: f64 = args.get_num("capacity-frac", 0.5)?;
    if !(0.0..=1.0).contains(&frac) || frac == 0.0 {
        return Err("--capacity-frac must be in (0, 1]".into());
    }
    Ok(SimConfig::default().sized_to(trace, frac))
}

fn cmd_trace_gen(args: &Args) -> Result<(), String> {
    let name = args.require("workload")?;
    let accesses: usize = args.get_num("accesses", 100_000)?;
    let seed: u64 = args.get_num("seed", 1)?;
    let out = args.require("out")?;
    let trace = workload(name, accesses, seed)?;
    io::write_binary(&trace, Path::new(out)).map_err(|e| format!("cannot write {out}: {e}"))?;
    println!(
        "wrote {out}: {} accesses, {} pages footprint",
        trace.len(),
        trace.footprint_pages()
    );
    Ok(())
}

fn cmd_trace_stats(args: &Args) -> Result<(), String> {
    let trace = load_trace(args)?;
    let s = TraceStats::compute(&trace);
    if args.get("csv", "false") == "true" {
        println!("{}", TraceStats::csv_header());
        println!("{}", s.csv_row());
        return Ok(());
    }
    println!("accesses:        {}", s.len);
    println!("footprint pages: {}", s.footprint_pages);
    println!("unique deltas:   {}", s.unique_deltas);
    println!("delta entropy:   {:.2} bits", s.delta_entropy_bits);
    for k in [1usize, 4, 16, 64] {
        println!("top-{k:<3} coverage: {:.3}", s.top_delta_coverage(k));
    }
    println!("top deltas:      {:?}", s.top_deltas(8));
    Ok(())
}

fn cmd_sim(args: &Args) -> Result<(), String> {
    let trace = load_trace(args)?;
    let seed: u64 = args.get_num("seed", 1)?;
    let name = args.get("prefetcher", "cls-hebbian");
    let cfg = sim_cfg_for(&trace, args)?;
    // Only the prefetcher run is observed; the baseline would double
    // every event in the stream.
    let base = Simulator::new(cfg.clone()).run(&trace, &mut NoPrefetcher);
    let obs_path = args.get("obs", "");
    let exporter = JsonlExporter::new();
    let reg = Registry::new();
    if !obs_path.is_empty() {
        reg.attach(exporter.clone());
    }
    let sim = Simulator::new(cfg.with_observer(reg));
    let mut p = prefetcher(name, seed)?;
    let rep = sim.run(&trace, p.as_mut());
    if !obs_path.is_empty() {
        std::fs::write(obs_path, exporter.render())
            .map_err(|e| format!("cannot write {obs_path}: {e}"))?;
        println!("wrote {obs_path}: {} events", exporter.len());
    }
    if args.get("json", "false") == "true" {
        println!(
            "{}",
            serde_json::to_string_pretty(&rep).map_err(|e| e.to_string())?
        );
        return Ok(());
    }
    println!("prefetcher:      {}", rep.prefetcher);
    println!("capacity:        {} pages", sim.config().capacity_pages);
    println!(
        "baseline misses: {} ({:.1}% miss rate)",
        base.misses(),
        100.0 * base.miss_rate()
    );
    println!(
        "misses:          {} ({:.1}% miss rate)",
        rep.misses(),
        100.0 * rep.miss_rate()
    );
    println!("misses removed:  {:.1}%", rep.pct_misses_removed(&base));
    println!(
        "prefetches:      {} issued, {} useful (accuracy {:.2}), {} unused",
        rep.prefetches_issued,
        rep.prefetches_useful,
        rep.accuracy(),
        rep.prefetches_unused
    );
    println!(
        "latency:         {:.1} -> {:.1} avg ticks/access",
        base.avg_access_ticks(),
        rep.avg_access_ticks()
    );
    Ok(())
}

/// Aggregates an observability event stream: either a `--obs` JSONL
/// file written by `hnpctl run`, or a fresh observed run over
/// `--trace` with counter and histogram sinks attached.
fn cmd_stats(args: &Args) -> Result<(), String> {
    let events_path = args.get("events", "");
    if !events_path.is_empty() {
        return stats_from_file(events_path);
    }
    let trace = load_trace(args)?;
    let seed: u64 = args.get_num("seed", 1)?;
    let name = args.get("prefetcher", "cls-hebbian");
    let counters = Counters::new();
    let stalls = Histogram::exponential(Metric::MissStall, 16);
    let leads = Histogram::exponential(Metric::PrefetchLead, 16);
    let reg = Registry::new();
    reg.attach(counters.clone());
    reg.attach(stalls.clone());
    reg.attach(leads.clone());
    let sim = Simulator::new(sim_cfg_for(&trace, args)?.with_observer(reg));
    let mut p = prefetcher(name, seed)?;
    let rep = sim.run(&trace, p.as_mut());
    println!("prefetcher:      {}", rep.prefetcher);
    println!("event counters:");
    for (key, v) in counters.snapshot() {
        println!("  {key:<22} {v}");
    }
    print_hist("miss stall ticks", &stalls);
    print_hist("prefetch lead ticks", &leads);
    Ok(())
}

fn print_hist(label: &str, h: &Histogram) {
    if h.total() == 0 {
        println!("{label}: no samples");
        return;
    }
    println!(
        "{label}: {} samples, mean {:.3}",
        h.total(),
        h.mean_milli() as f64 / 1000.0
    );
    for (bound, count) in h.buckets() {
        if count == 0 {
            continue;
        }
        if bound == u64::MAX {
            println!("  >  rest       {count}");
        } else {
            println!("  <  {bound:<10} {count}");
        }
    }
}

/// Offline aggregation of a JSONL event stream (the `--obs` artifact).
fn stats_from_file(path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let mut kinds: std::collections::BTreeMap<String, u64> = std::collections::BTreeMap::new();
    let mut stall_sum = 0u64;
    let mut late = 0u64;
    let mut run_end: Option<(u64, u64, u64, u64)> = None;
    let mut malformed = 0u64;
    for line in text.lines().filter(|l| !l.trim().is_empty()) {
        let Some(kind) = jsonl_kind(line) else {
            malformed += 1;
            continue;
        };
        *kinds.entry(kind.to_string()).or_insert(0) += 1;
        match kind {
            "miss" => {
                stall_sum += jsonl_u64(line, "stall").unwrap_or(0);
                if line.contains("\"late\":true") {
                    late += 1;
                }
            }
            "run_end" => {
                run_end = Some((
                    jsonl_u64(line, "ticks").unwrap_or(0),
                    jsonl_u64(line, "accesses").unwrap_or(0),
                    jsonl_u64(line, "hits").unwrap_or(0),
                    jsonl_u64(line, "misses").unwrap_or(0),
                ));
            }
            _ => {}
        }
    }
    println!("events by kind:");
    for (k, v) in &kinds {
        println!("  {k:<22} {v}");
    }
    println!("late misses:     {late}");
    println!("stall ticks:     {stall_sum}");
    if let Some((ticks, accesses, hits, misses)) = run_end {
        println!(
            "run totals:      {ticks} ticks, {accesses} accesses, {hits} hits, {misses} misses"
        );
    }
    if malformed > 0 {
        return Err(format!("{malformed} malformed line(s) in {path}"));
    }
    Ok(())
}

fn cmd_compare(args: &Args) -> Result<(), String> {
    let trace = load_trace(args)?;
    let seed: u64 = args.get_num("seed", 1)?;
    let sim = Simulator::new(sim_cfg_for(&trace, args)?);
    let base = sim.run(&trace, &mut NoPrefetcher);
    println!(
        "{:<14} {:>10} {:>10} {:>9}",
        "prefetcher", "removed%", "issued", "accuracy"
    );
    for name in [
        "stride",
        "markov",
        "next-n",
        "lstm",
        "transformer",
        "hebbian",
        "cls-hebbian",
    ] {
        let mut p = prefetcher(name, seed)?;
        let rep = sim.run(&trace, p.as_mut());
        println!(
            "{:<14} {:>9.1}% {:>10} {:>9.2}",
            name,
            rep.pct_misses_removed(&base),
            rep.prefetches_issued,
            rep.accuracy()
        );
    }
    Ok(())
}

fn cmd_faults(args: &Args) -> Result<(), String> {
    let name = args.get("workload", "pagerank");
    let accesses: usize = args.get_num("accesses", 20_000)?;
    let nodes: usize = args.get_num("nodes", 4)?;
    if nodes == 0 {
        return Err("--nodes must be positive".into());
    }
    let seed: u64 = args.get_num("seed", 1)?;
    let fault_seed: u64 = args.get_num("fault-seed", 0xfa017)?;
    let pname = args.get("prefetcher", "cls-hebbian");
    let resilient = args.get("resilient", "false") == "true";
    let spec = args.get("schedule", "");
    let schedule = if spec.is_empty() {
        FaultSchedule::none()
    } else {
        FaultSchedule::parse(spec)?
    };
    let make = |seed: u64| -> Result<Box<dyn Prefetcher>, String> {
        let inner = prefetcher(pname, seed)?;
        Ok(if resilient {
            Box::new(ResilientPrefetcher::new(inner))
        } else {
            inner
        })
    };
    let mut inj = FaultInjector::new(schedule, fault_seed);
    let json = args.get("json", "false") == "true";
    match args.get("target", "disagg") {
        "disagg" => {
            let traces: Vec<Trace> = (0..nodes)
                .map(|i| workload(name, accesses, seed + i as u64))
                .collect::<Result<_, _>>()?;
            let mut pfs: Vec<Box<dyn Prefetcher>> = (0..nodes)
                .map(|i| make(seed + i as u64))
                .collect::<Result<_, _>>()?;
            let cluster = DisaggregatedCluster::new(DisaggConfig::default());
            let rep = cluster.run_decentralized_with_faults(&traces, &mut pfs, &mut inj);
            if json {
                println!(
                    "{}",
                    serde_json::to_string_pretty(&rep).map_err(|e| e.to_string())?
                );
                return Ok(());
            }
            println!("target:          disagg ({nodes} nodes)");
            println!("total ticks:     {}", rep.total_ticks);
            println!("stall ticks:     {}", rep.total_stall());
            println!("misses:          {}", rep.total_misses());
            let sum = |f: fn(&hnp_systems::disagg::NodeReport) -> usize| -> usize {
                rep.nodes.iter().map(f).sum()
            };
            println!(
                "prefetches:      {} issued, {} useful, {} cancelled",
                sum(|n| n.prefetches_issued),
                sum(|n| n.prefetches_useful),
                sum(|n| n.prefetches_cancelled),
            );
            println!(
                "faults:          {} retries, {} timeouts, {} restarts",
                sum(|n| n.retries),
                sum(|n| n.timeouts),
                sum(|n| n.restarts),
            );
        }
        "uvm" => {
            let warps: Vec<Trace> = (0..nodes)
                .map(|i| workload(name, accesses, seed + i as u64).map(|t| t.with_stream(i as u16)))
                .collect::<Result<_, _>>()?;
            let mut p = make(seed)?;
            let sim = UvmSim::new(UvmConfig::default());
            let rep = sim.run_with_faults(&warps, p.as_mut(), &mut inj);
            if json {
                println!(
                    "{}",
                    serde_json::to_string_pretty(&rep).map_err(|e| e.to_string())?
                );
                return Ok(());
            }
            println!("target:          uvm ({nodes} warps)");
            println!("total ticks:     {}", rep.total_ticks);
            println!(
                "faults:          {} in {} batches",
                rep.faults, rep.fault_batches
            );
            println!(
                "prefetches:      {} issued, {} useful, {} cancelled",
                rep.prefetches_issued, rep.prefetches_useful, rep.prefetches_cancelled,
            );
            println!(
                "recovery:        {} retries, {} timeouts, {} restarts",
                rep.retries, rep.timeouts, rep.restarts,
            );
        }
        other => return Err(format!("unknown target {other:?}")),
    }
    Ok(())
}

/// Parses a `--crashes epoch:tenant,epoch:tenant` schedule.
fn parse_crashes(spec: &str) -> Result<Vec<(u64, u64)>, String> {
    if spec.is_empty() {
        return Ok(Vec::new());
    }
    spec.split(',')
        .map(|part| {
            let (e, t) = part
                .split_once(':')
                .ok_or_else(|| format!("--crashes: {part:?} is not epoch:tenant"))?;
            let epoch = e
                .trim()
                .parse()
                .map_err(|_| format!("--crashes: bad epoch {e:?}"))?;
            let tenant = t
                .trim()
                .parse()
                .map_err(|_| format!("--crashes: bad tenant {t:?}"))?;
            Ok((epoch, tenant))
        })
        .collect()
}

/// Benchmarks the multi-tenant serving engine across thread counts,
/// checking the determinism contract (identical report and snapshot
/// archive at every count) while measuring wall-clock throughput.
fn cmd_serve_bench(args: &Args) -> Result<(), String> {
    let tenants: u64 = args.get_num("tenants", 32)?;
    if tenants == 0 {
        return Err("--tenants must be positive".into());
    }
    let accesses: usize = args.get_num("accesses", 200)?;
    let shards: usize = args.get_num("shards", 8)?;
    let queue_depth: usize = args.get_num("queue-depth", 64)?;
    let batch: usize = args.get_num("batch", 32)?;
    let snapshot_interval: u64 = args.get_num("snapshot-interval", 8)?;
    let seed: u64 = args.get_num("seed", 1)?;
    let model = args.get("model", "mix");
    let threads: Vec<usize> = args
        .get("threads", "1,2,4")
        .split(',')
        .map(|s| {
            s.trim()
                .parse::<usize>()
                .map_err(|_| format!("--threads: cannot parse {s:?}"))
        })
        .collect::<Result<_, _>>()?;
    if threads.is_empty() {
        return Err("--threads needs at least one count".into());
    }
    let crashes = parse_crashes(args.get("crashes", ""))?;

    const MIX: [ModelKind; 5] = [
        ModelKind::Hebbian,
        ModelKind::Cls,
        ModelKind::Stride,
        ModelKind::Markov,
        ModelKind::NextN,
    ];
    const LOADS: [AppWorkload; 5] = [
        AppWorkload::McfLike,
        AppWorkload::TensorFlowLike,
        AppWorkload::PageRankLike,
        AppWorkload::Graph500Like,
        AppWorkload::KvStoreLike,
    ];
    let mut registry = TenantRegistry::new();
    for id in 0..tenants {
        let kind = if model == "mix" {
            MIX[(id % MIX.len() as u64) as usize]
        } else {
            ModelKind::parse(model).ok_or_else(|| format!("unknown model {model:?}"))?
        };
        registry.register(TenantSpec {
            id,
            model: kind,
            workload: LOADS[(id % LOADS.len() as u64) as usize],
            seed: seed.wrapping_add(id),
        });
    }
    let requests = synthesize(&registry, accesses, seed);
    println!(
        "serving {} requests from {tenants} tenants over {shards} shards (model: {model})",
        requests.len()
    );
    println!(
        "{:<8} {:>8} {:>10} {:>10} {:>10} {:>8}",
        "threads", "epochs", "wall ms", "epochs/s", "reqs/s", "speedup"
    );

    let obs_path = args.get("obs", "");
    let snap_dir = args.get("snapshot-dir", "");
    let mut reference: Option<hnp_serve::ServeOutcome> = None;
    let mut base_secs = 0.0f64;
    for (i, &workers) in threads.iter().enumerate() {
        let obs = Registry::new();
        let exporter = JsonlExporter::new();
        if i == 0 && !obs_path.is_empty() {
            obs.attach(exporter.clone());
        }
        let cfg = ServeConfig {
            shards,
            workers,
            queue_depth,
            flush_per_shard: batch,
            ingest_per_epoch: 0,
            snapshot_interval,
            hash_seed: seed ^ 0x5e44e,
            crashes: crashes.clone(),
            pred_window: 64,
            pred_horizon: 256,
            obs,
        };
        let engine = ServeEngine::new(cfg, registry.clone(), PrefetcherFactory::new());
        let t0 = std::time::Instant::now();
        let out = engine.run(&requests);
        let secs = t0.elapsed().as_secs_f64().max(1e-9);
        if i == 0 {
            base_secs = secs;
        }
        println!(
            "{:<8} {:>8} {:>10.1} {:>10.1} {:>10.0} {:>7.2}x",
            workers,
            out.report.epochs,
            secs * 1e3,
            out.report.epochs as f64 / secs,
            out.report.processed as f64 / secs,
            base_secs / secs
        );
        match &reference {
            None => {
                if !obs_path.is_empty() {
                    std::fs::write(obs_path, exporter.render())
                        .map_err(|e| format!("cannot write {obs_path}: {e}"))?;
                    println!("wrote {obs_path}: {} events", exporter.len());
                }
                if !snap_dir.is_empty() {
                    std::fs::create_dir_all(snap_dir)
                        .map_err(|e| format!("cannot create {snap_dir}: {e}"))?;
                    for (id, blob) in &out.archive {
                        let path = format!("{snap_dir}/tenant-{id}.hnpsnap");
                        std::fs::write(&path, blob)
                            .map_err(|e| format!("cannot write {path}: {e}"))?;
                    }
                    println!("wrote {} snapshot(s) to {snap_dir}/", out.archive.len());
                }
                reference = Some(out);
            }
            Some(first) => {
                if out.report != first.report || out.archive != first.archive {
                    return Err(format!(
                        "determinism violation: outcome at {workers} threads differs from {} threads",
                        threads[0]
                    ));
                }
            }
        }
    }
    if let Some(first) = reference {
        let r = &first.report;
        println!(
            "admitted {} / shed {} of {} offered; {} crashes, {} restores, {} snapshots",
            r.admitted, r.shed, r.offered, r.crashes, r.restores, r.snapshots
        );
        println!(
            "coverage: {:.1}% of processed requests hit the prediction window",
            r.coverage_milli() as f64 / 10.0
        );
        println!("outcome identical across thread counts {threads:?}");
    }
    Ok(())
}

/// Runs the kernel perf harness (`hnp_bench::kernels`) and writes the
/// `BENCH_kernels.json` artifact, then re-reads it and validates every
/// integer field with the `hnp_obs::jsonl_u64` helpers — CI fails on a
/// malformed artifact at write time, not when a consumer parses it.
fn cmd_bench(args: &Args) -> Result<(), String> {
    let opts = if args.get("iters-small", "false") == "true" {
        hnp_bench::kernels::KernelBenchOpts::small()
    } else {
        hnp_bench::kernels::KernelBenchOpts::full()
    };
    let out = args.get("out", "BENCH_kernels.json");
    let rep = hnp_bench::kernels::run(opts);
    println!(
        "kernel perf at {} scale ({} params, {} iters):",
        rep.scale, rep.param_count, rep.iters
    );
    println!("  forward  (infer_advance)  {:>8} ns", rep.forward_ns);
    println!("  train    (train_step)     {:>8} ns", rep.train_ns);
    println!(
        "  rollout  ({} steps)        {:>8} ns",
        hnp_bench::kernels::ROLLOUT_STEPS,
        rep.rollout8_ns
    );
    std::fs::write(out, format!("{}\n", rep.to_json()))
        .map_err(|e| format!("cannot write {out}: {e}"))?;
    let text = std::fs::read_to_string(out).map_err(|e| format!("cannot re-read {out}: {e}"))?;
    let line = text
        .lines()
        .next()
        .ok_or_else(|| format!("{out} is empty"))?;
    for field in hnp_bench::kernels::KernelsBenchReport::integer_fields() {
        if jsonl_u64(line, field).is_none() {
            return Err(format!(
                "malformed artifact {out}: integer field {field:?} does not parse"
            ));
        }
    }
    println!("wrote {out} (validated {} integer fields)", {
        hnp_bench::kernels::KernelsBenchReport::integer_fields().len()
    });
    Ok(())
}

/// Runs the hnp-lint workspace invariant checker (HNP01-HNP04) and
/// fails if any unsuppressed finding remains.
fn cmd_lint(args: &Args) -> Result<(), String> {
    let root = match args.get("root", "") {
        "" => {
            lint::find_root(&std::env::current_dir().map_err(|e| format!("cannot read cwd: {e}"))?)
                .ok_or("no workspace root found; pass --root")?
        }
        dir => std::path::PathBuf::from(dir),
    };
    let report = lint::check_workspace(&root).map_err(|e| format!("lint failed: {e}"))?;
    let json_out = args.get("json", "");
    if !json_out.is_empty() {
        std::fs::write(json_out, lint::report::json(&report))
            .map_err(|e| format!("cannot write {json_out}: {e}"))?;
    }
    if args.get("quiet", "false") != "true" {
        print!("{}", lint::report::human(&report));
    }
    if report.unsuppressed_count() > 0 {
        return Err(format!(
            "{} unsuppressed finding(s)",
            report.unsuppressed_count()
        ));
    }
    Ok(())
}

fn cmd_patterns(args: &Args) -> Result<(), String> {
    let accesses: usize = args.get_num("accesses", 1000)?;
    println!(
        "{:<16} {:>8} {:>9} {:>10}",
        "pattern", "deltas", "entropy", "footprint"
    );
    for p in Pattern::ALL {
        let t = p.generate(accesses, 42);
        let s = TraceStats::compute(&t);
        println!(
            "{:<16} {:>8} {:>9.2} {:>10}",
            p.name(),
            s.unique_deltas,
            s.delta_entropy_bits,
            s.footprint_pages
        );
    }
    Ok(())
}
