//! A minimal `--key value` argument parser (no external dependency).

use std::collections::HashMap;

/// Parsed command line: a subcommand, positional arguments, and
/// `--key value` options.
#[derive(Debug, Clone)]
pub struct Args {
    /// The subcommand (first non-flag argument).
    pub command: String,
    /// Remaining positional arguments.
    pub positional: Vec<String>,
    /// `--key value` pairs (keys without the dashes).
    pub options: HashMap<String, String>,
}

impl Args {
    /// Parses an argument iterator (excluding the program name).
    ///
    /// # Errors
    ///
    /// Returns a message when a `--key` is missing its value or no
    /// subcommand is present.
    pub fn parse(argv: impl Iterator<Item = String>) -> Result<Args, String> {
        let mut command = None;
        let mut positional = Vec::new();
        let mut options = HashMap::new();
        let mut iter = argv.peekable();
        while let Some(a) = iter.next() {
            if let Some(key) = a.strip_prefix("--") {
                let value = iter
                    .next()
                    .ok_or_else(|| format!("--{key} requires a value"))?;
                options.insert(key.to_string(), value);
            } else if command.is_none() {
                command = Some(a);
            } else {
                positional.push(a);
            }
        }
        Ok(Args {
            command: command.ok_or("no subcommand given")?,
            positional,
            options,
        })
    }

    /// An option as a string, with a default.
    pub fn get<'a>(&'a self, key: &str, default: &'a str) -> &'a str {
        self.options.get(key).map(String::as_str).unwrap_or(default)
    }

    /// A numeric option.
    ///
    /// # Errors
    ///
    /// Returns a message when the value does not parse.
    pub fn get_num<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.options.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{key}: cannot parse {v:?}")),
        }
    }

    /// A required option.
    ///
    /// # Errors
    ///
    /// Returns a message when missing.
    pub fn require(&self, key: &str) -> Result<&str, String> {
        self.options
            .get(key)
            .map(String::as_str)
            .ok_or_else(|| format!("--{key} is required"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Result<Args, String> {
        Args::parse(s.split_whitespace().map(String::from))
    }

    #[test]
    fn parses_command_options_and_positionals() {
        let a = parse("sim trace.hnpt --prefetcher cls --seed 7").unwrap();
        assert_eq!(a.command, "sim");
        assert_eq!(a.positional, vec!["trace.hnpt"]);
        assert_eq!(a.get("prefetcher", "x"), "cls");
        assert_eq!(a.get_num::<u64>("seed", 0).unwrap(), 7);
        assert_eq!(a.get_num::<u64>("missing", 42).unwrap(), 42);
    }

    #[test]
    fn missing_value_is_an_error() {
        assert!(parse("sim --prefetcher").is_err());
    }

    #[test]
    fn missing_subcommand_is_an_error() {
        assert!(parse("").is_err());
    }

    #[test]
    fn bad_number_is_an_error() {
        let a = parse("sim --seed banana").unwrap();
        assert!(a.get_num::<u64>("seed", 0).is_err());
    }

    #[test]
    fn require_reports_the_key() {
        let a = parse("sim").unwrap();
        assert!(a.require("trace").unwrap_err().contains("--trace"));
    }
}
