//! Criterion benches behind Fig. 2: model inference and training
//! latency across future-prediction counts, batch sizes, thread
//! counts, and quantization — LSTM vs. Hebbian.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use hnp_hebbian::{HebbianConfig, HebbianNetwork};
use hnp_nn::quant::QuantizedLstm;
use hnp_nn::{LstmConfig, LstmNetwork};

fn bench_inference(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig2a_inference");
    for steps in [1usize, 2, 4, 8] {
        let mut lstm = LstmNetwork::new(LstmConfig::paper_table2());
        lstm.train_step(1, 2);
        group.bench_with_input(BenchmarkId::new("lstm-fp32", steps), &steps, |b, &s| {
            b.iter(|| std::hint::black_box(lstm.rollout(1, s)))
        });
        let q = QuantizedLstm::from_network(&lstm);
        group.bench_with_input(BenchmarkId::new("lstm-int8", steps), &steps, |b, &s| {
            b.iter(|| std::hint::black_box(q.rollout(1, s)))
        });
        let mut heb = HebbianNetwork::new(HebbianConfig::paper_table2());
        for i in 0..64u32 {
            heb.train_step(&[i % 64], ((i + 1) % 64) as usize);
        }
        group.bench_with_input(BenchmarkId::new("hebbian-int", steps), &steps, |b, &s| {
            b.iter(|| std::hint::black_box(heb.rollout(&[1], s, |t| vec![(t % 128) as u32])))
        });
    }
    group.finish();
}

fn bench_threads(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig2a_threads");
    for threads in [1usize, 2] {
        let mut net = LstmNetwork::new(LstmConfig {
            threads,
            ..LstmConfig::paper_table2()
        });
        net.train_step(1, 2);
        group.bench_with_input(
            BenchmarkId::new("lstm-fp32-rollout1", threads),
            &threads,
            |b, _| b.iter(|| std::hint::black_box(net.rollout(1, 1))),
        );
    }
    group.finish();
}

fn bench_training(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig2b_training");
    group.sample_size(20);
    for batch in [1usize, 8, 32] {
        let mut lstm = LstmNetwork::new(LstmConfig::paper_table2());
        let examples: Vec<(Vec<usize>, usize)> = (0..batch)
            .map(|i| (vec![i % 50, (i + 1) % 50], (i + 2) % 50))
            .collect();
        group.bench_with_input(BenchmarkId::new("lstm-fp32", batch), &batch, |b, _| {
            b.iter(|| std::hint::black_box(lstm.train_batch(&examples, 0.05)))
        });
    }
    let mut heb = HebbianNetwork::new(HebbianConfig::paper_table2());
    let mut k = 0u32;
    group.bench_function("hebbian-int/1", |b| {
        b.iter(|| {
            k = (k + 1) % 64;
            std::hint::black_box(heb.train_step(&[k], ((k + 1) % 64) as usize))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_inference, bench_threads, bench_training);
criterion_main!(benches);
