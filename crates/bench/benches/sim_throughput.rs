//! Criterion benches of the simulation substrate itself: simulator
//! throughput under different prefetchers, trace generation, and the
//! hot inner structures (eviction, delta history).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use hnp_baselines::{MarkovConfig, MarkovPrefetcher, StrideConfig, StridePrefetcher};
use hnp_core::{ClsConfig, ClsPrefetcher};
use hnp_memsim::evict::EvictionPolicy;
use hnp_memsim::memory::LocalMemory;
use hnp_memsim::{NoPrefetcher, Prefetcher, SimConfig, Simulator};
use hnp_trace::apps::AppWorkload;
use hnp_trace::Pattern;

fn bench_simulator(c: &mut Criterion) {
    let trace = AppWorkload::PageRankLike.generate(20_000, 3);
    let sim = Simulator::new(SimConfig::default().sized_to(&trace, 0.5));
    let mut group = c.benchmark_group("sim_20k_accesses");
    group.sample_size(10);
    type Factory = Box<dyn Fn() -> Box<dyn Prefetcher>>;
    let cases: Vec<(&str, Factory)> = vec![
        ("none", Box::new(|| Box::new(NoPrefetcher))),
        (
            "stride",
            Box::new(|| Box::new(StridePrefetcher::with_config(StrideConfig::default()))),
        ),
        (
            "markov",
            Box::new(|| Box::new(MarkovPrefetcher::with_config(MarkovConfig::default()))),
        ),
        (
            "cls-hebbian",
            Box::new(|| Box::new(ClsPrefetcher::new(ClsConfig::default()))),
        ),
    ];
    for (name, make) in cases {
        group.bench_function(BenchmarkId::new("prefetcher", name), |b| {
            b.iter(|| {
                let mut p = make();
                std::hint::black_box(sim.run(&trace, p.as_mut()))
            })
        });
    }
    group.finish();
}

fn bench_substrate(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrate");
    group.bench_function("trace_gen_pagerank_20k", |b| {
        b.iter(|| std::hint::black_box(AppWorkload::PageRankLike.generate(20_000, 3)))
    });
    group.bench_function("trace_gen_pattern_20k", |b| {
        b.iter(|| std::hint::black_box(Pattern::PointerChase.generate(20_000, 3)))
    });
    group.bench_function("lru_churn_10k", |b| {
        b.iter(|| {
            let mut m = LocalMemory::new(512, EvictionPolicy::Lru);
            for i in 0..10_000u64 {
                let page = (i * 7) % 1024;
                if !m.contains(page) {
                    m.insert(page, false, i);
                }
                m.touch(page);
            }
            std::hint::black_box(m.len())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_simulator, bench_substrate);
criterion_main!(benches);
