//! Table 1: the memory-access pattern taxonomy.
//!
//! Prints, for each of the five patterns, a sample of the generated
//! access stream and its delta statistics, demonstrating that every
//! pattern is periodic and therefore learnable — the property the
//! Fig.-3 experiments rely on.
//!
//! Usage: `cargo run -p hnp-bench --bin table1_patterns [accesses]`

use serde::Serialize;

use hnp_bench::output;
use hnp_trace::stats::TraceStats;
use hnp_trace::Pattern;

#[derive(Serialize)]
struct Row {
    pattern: String,
    behavior: String,
    sample_pages: Vec<u64>,
    unique_deltas: usize,
    top4_delta_coverage: f64,
    delta_entropy_bits: f64,
    footprint_pages: usize,
}

fn behavior(p: Pattern) -> &'static str {
    match p {
        Pattern::Stride => "a[i]: regular delta (array traversal)",
        Pattern::PointerChase => "*ptr: pseudorandom list traversal",
        Pattern::IndirectStride => "*(a[i]): pointer array at regular delta",
        Pattern::IndirectIndex => "b[a[i]]: indices at regular delta",
        Pattern::PointerOffset => "*ptr, *(ptr+i): chase plus adjacent data",
    }
}

fn main() {
    let n = output::arg_or(1, "HNP_ACCESSES", 1000);
    output::header("Table 1: memory access patterns");
    println!(
        "{:<16} {:<44} {:>8} {:>8} {:>9} {:>10}",
        "pattern", "behavior", "deltas", "top4cov", "entropy", "footprint"
    );
    let mut rows = Vec::new();
    for p in Pattern::ALL {
        let t = p.generate(n, 42);
        let s = TraceStats::compute(&t);
        let sample: Vec<u64> = t.pages().take(8).collect();
        println!(
            "{:<16} {:<44} {:>8} {:>8.3} {:>9.2} {:>10}",
            p.name(),
            behavior(p),
            s.unique_deltas,
            s.top_delta_coverage(4),
            s.delta_entropy_bits,
            s.footprint_pages
        );
        println!("    first pages: {:?}", sample);
        rows.push(Row {
            pattern: p.name().to_string(),
            behavior: behavior(p).to_string(),
            sample_pages: sample,
            unique_deltas: s.unique_deltas,
            top4_delta_coverage: s.top_delta_coverage(4),
            delta_entropy_bits: s.delta_entropy_bits,
            footprint_pages: s.footprint_pages,
        });
    }
    output::write_json("table1_patterns", &rows);
}
