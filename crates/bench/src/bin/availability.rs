//! §5.5 study: availability under concurrent training and inference.
//!
//! Two questions from the paper:
//!
//! 1. Does the shadow-model protocol (train a copy, redeploy when the
//!    live model's accuracy drops) track a changing workload?
//! 2. Is the counter-hypothesis right that Hebbian networks are noise-
//!    robust enough to train in place — i.e., do small concurrent
//!    weight perturbations leave inference output mostly unchanged?
//!
//! Usage: `cargo run --release -p hnp-bench --bin availability [steps]`

use serde::Serialize;

use hnp_bench::output;
use hnp_core::availability::{AvailabilityConfig, ShadowDeployment};
use hnp_hebbian::{HebbianConfig, HebbianNetwork, LrScale};
use hnp_memsim::DeltaVocab;
use hnp_trace::Pattern;

#[derive(Serialize)]
struct Summary {
    shadow_redeployments: u64,
    shadow_final_accuracy: f32,
    in_place_final_accuracy: f32,
    perturbation_agreement: Vec<(i16, f64)>,
}

fn tokens(pattern: Pattern, n: usize, seed: u64) -> Vec<usize> {
    let vocab = DeltaVocab::new(64);
    hnp_bench::fig3::pattern_tokens(pattern, n, seed, &vocab)
}

fn main() {
    let steps = output::arg_or(1, "HNP_STEPS", 20_000);
    let phase_a = tokens(Pattern::Stride, 1000, 1);
    let phase_b = tokens(Pattern::PointerChase, 1000, 2);

    // --- Shadow protocol on a workload that changes phase midway. ---
    output::header("§5.5: shadow-model protocol on a phase-changing workload");
    let cfg = HebbianConfig::paper_table2();
    let mut shadow = ShadowDeployment::new(
        HebbianNetwork::new(cfg.clone()),
        AvailabilityConfig::default(),
    );
    let mut in_place = HebbianNetwork::new(cfg.clone());
    let mut in_place_correct = 0u64;
    let mut in_place_total = 0u64;
    let half = steps / 2;
    for i in 0..steps {
        let toks = if i < half { &phase_a } else { &phase_b };
        let w = i % (toks.len() - 1);
        let (x, y) = (toks[w], toks[w + 1]);
        shadow.step(&[x as u32], y);
        let o = in_place.train_step(&[x as u32], y);
        // Score the in-place model over the same tail window the
        // shadow tracker uses.
        if i + 128 >= steps || (i + 128 >= half && i < half) {
            in_place_total += 1;
            if o.correct {
                in_place_correct += 1;
            }
        }
    }
    let in_place_acc = if in_place_total == 0 {
        0.0
    } else {
        in_place_correct as f32 / in_place_total as f32
    };
    println!(
        "shadow: {} redeployments, final live accuracy {:.2}",
        shadow.redeployments,
        shadow.live_accuracy()
    );
    println!("train-in-place: final accuracy {:.2}", in_place_acc);

    // --- Noise robustness: perturb weights, measure output agreement. ---
    output::header("§5.5: output agreement under weight perturbation (noise robustness)");
    println!("{:>12} {:>12}", "perturb +/-", "agreement");
    let mut agreements = Vec::new();
    for mag in [0i16, 1, 2, 4, 8] {
        let mut reference = HebbianNetwork::new(cfg.clone());
        for _ in 0..4 {
            for w in 0..phase_a.len() - 1 {
                reference.train_step(&[phase_a[w] as u32], phase_a[w + 1]);
            }
        }
        // "Perturbation" via a differently-seeded twin trained the same
        // way plus magnitude-scaled extra noise steps: a deterministic
        // stand-in for concurrent-writer jitter.
        let mut noisy = reference.clone();
        for k in 0..(mag as usize * 20) {
            let x = phase_b[k % (phase_b.len() - 1)];
            let y = phase_b[(k + 1) % phase_b.len()];
            noisy.train_step_opts(&[x as u32], y, LrScale::ONE, false);
        }
        let mut agree = 0usize;
        let mut total = 0usize;
        reference.reset_state();
        noisy.reset_state();
        for w in 0..phase_a.len() - 1 {
            let a = reference.infer_advance(&[phase_a[w] as u32], phase_a[w + 1]);
            let b = noisy.infer_advance(&[phase_a[w] as u32], phase_a[w + 1]);
            total += 1;
            if a.predicted == b.predicted {
                agree += 1;
            }
        }
        let frac = agree as f64 / total as f64;
        println!("{:>12} {:>11.1}%", mag, 100.0 * frac);
        agreements.push((mag, frac));
    }
    println!();
    println!("high agreement at small perturbations supports concurrent train/infer;");
    println!("the shadow protocol remains the safe default for large drifts.");
    output::write_json(
        "availability",
        &Summary {
            shadow_redeployments: shadow.redeployments,
            shadow_final_accuracy: shadow.live_accuracy(),
            in_place_final_accuracy: in_place_acc,
            perturbation_agreement: agreements,
        },
    );
}
