//! §5.4 ablation: replay buffers and replay forms.
//!
//! Sweeps the hippocampal capacity policies (unbounded, ring,
//! confidence-filtered, consolidating, averaging) and the replay forms
//! (interleaved, other-phases, generative, self-reinforcing) on a
//! phase-switching A-B-A workload where old-pattern retention matters,
//! reporting prefetch quality, storage actually used, and replay
//! volume.
//!
//! Usage: `cargo run --release -p hnp-bench --bin ablate_replay [accesses_per_phase]`

use serde::Serialize;

use hnp_bench::output;
use hnp_core::{
    CapacityPolicy, ClsConfig, ClsPrefetcher, EpisodicBackend, ReplayConfig, ReplayForm,
};
use hnp_memsim::{NoPrefetcher, SimConfig, Simulator};
use hnp_trace::{phased, Pattern, Trace};

#[derive(Serialize)]
struct Row {
    condition: String,
    pct_misses_removed: f64,
    /// Misses removed within the third phase only — the A-return
    /// segment where retention of the first phase's pattern pays off.
    pct_return_phase_removed: f64,
    episodes_stored: usize,
    episodes_offered: u64,
    replayed: u64,
    /// Approximate episodic-store footprint.
    storage_bytes: usize,
}

fn aba_trace(per_phase: usize) -> Trace {
    phased::phases(
        &[
            (Pattern::PointerChase, per_phase),
            (Pattern::Stride, per_phase),
            (Pattern::PointerChase, per_phase),
        ],
        17,
    )
}

fn run_condition(
    name: &str,
    cfg: ClsConfig,
    trace: &Trace,
    sim: &Simulator,
    base: &(hnp_memsim::SimReport, Vec<usize>),
    per_phase: usize,
    rows: &mut Vec<Row>,
) {
    let mut p = ClsPrefetcher::new(cfg);
    let checkpoints = [2 * per_phase];
    let (rep, marks) = sim.run_with_checkpoints(trace, &mut p, &checkpoints);
    // Misses inside the A-return (third) phase.
    let phase3 = rep.misses() - marks[0];
    let base_phase3 = base.0.misses() - base.1[0];
    let return_removed = if base_phase3 == 0 {
        0.0
    } else {
        100.0 * (base_phase3 as f64 - phase3 as f64) / base_phase3 as f64
    };
    println!(
        "{:<26} {:>9.1}% {:>9.1}% {:>9} {:>9} {:>9} {:>10}",
        name,
        rep.pct_misses_removed(&base.0),
        return_removed,
        p.episodic().stored(),
        p.episodic().offered(),
        p.replayed(),
        p.episodic().storage_bytes()
    );
    rows.push(Row {
        condition: name.to_string(),
        pct_misses_removed: rep.pct_misses_removed(&base.0),
        pct_return_phase_removed: return_removed,
        episodes_stored: p.episodic().stored(),
        episodes_offered: p.episodic().offered(),
        replayed: p.replayed(),
        storage_bytes: p.episodic().storage_bytes(),
    });
}

fn main() {
    let per_phase = output::arg_or(1, "HNP_ACCESSES", 40_000);
    let trace = aba_trace(per_phase);
    let cfg0 = SimConfig::default().sized_to(&trace, 0.5);
    let sim = Simulator::new(cfg0);
    let base = sim.run_with_checkpoints(&trace, &mut NoPrefetcher, &[2 * per_phase]);
    let mut rows = Vec::new();

    output::header("§5.4 ablation: replay OFF vs forms (A-B-A phase trace)");
    println!(
        "{:<26} {:>10} {:>10} {:>9} {:>9} {:>9} {:>10}",
        "condition", "removed%", "return%", "stored", "offered", "replayed", "bytes"
    );
    run_condition(
        "no-replay",
        ClsConfig {
            replay: ReplayConfig::off(),
            episodic: EpisodicBackend::Exact(CapacityPolicy::Ring { capacity: 1 }),
            ..ClsConfig::default()
        },
        &trace,
        &sim,
        &base,
        per_phase,
        &mut rows,
    );
    for (name, form) in [
        ("interleaved", ReplayForm::Interleaved),
        ("other-phases", ReplayForm::OtherPhases),
        ("generative-3", ReplayForm::Generative { rollout_len: 3 }),
        ("self-reinforce", ReplayForm::SelfReinforce),
    ] {
        run_condition(
            &format!("replay/{name}"),
            ClsConfig {
                replay: ReplayConfig {
                    form,
                    per_step: 2,
                    ..ReplayConfig::default()
                },
                ..ClsConfig::default()
            },
            &trace,
            &sim,
            &base,
            per_phase,
            &mut rows,
        );
    }

    output::header("§5.4 ablation: hippocampal capacity policies (interleaved replay)");
    println!(
        "{:<26} {:>10} {:>10} {:>9} {:>9} {:>9} {:>10}",
        "condition", "removed%", "return%", "stored", "offered", "replayed", "bytes"
    );
    // The compressed associative backend (§3: "compressed format ...
    // associative memory"): fixed-size Willshaw matrix + cue reservoir.
    run_condition(
        "capacity/assoc-willshaw",
        ClsConfig {
            episodic: EpisodicBackend::Associative {
                key_bits: 1024,
                key_active: 24,
                reservoir: 256,
            },
            replay: ReplayConfig {
                per_step: 2,
                ..ReplayConfig::default()
            },
            ..ClsConfig::default()
        },
        &trace,
        &sim,
        &base,
        per_phase,
        &mut rows,
    );
    for (name, capacity) in [
        ("unbounded", CapacityPolicy::Unbounded),
        ("ring-4096", CapacityPolicy::Ring { capacity: 4096 }),
        ("ring-256", CapacityPolicy::Ring { capacity: 256 }),
        (
            "conf-filtered-4096",
            CapacityPolicy::ConfidenceFiltered {
                capacity: 4096,
                skip_above: 0.9,
            },
        ),
        (
            "consolidating-4096",
            CapacityPolicy::Consolidating {
                capacity: 4096,
                max_replays: 8,
            },
        ),
        (
            "averaging-1024",
            CapacityPolicy::Averaging {
                capacity: 1024,
                merge_overlap: 0.8,
            },
        ),
    ] {
        run_condition(
            &format!("capacity/{name}"),
            ClsConfig {
                episodic: EpisodicBackend::Exact(capacity),
                replay: ReplayConfig {
                    per_step: 2,
                    ..ReplayConfig::default()
                },
                ..ClsConfig::default()
            },
            &trace,
            &sim,
            &base,
            per_phase,
            &mut rows,
        );
    }
    output::write_json("ablate_replay", &rows);
}
