//! Fig. 3: catastrophic interference (a-c) and the effect of replay
//! (d-f) during online prefetch learning.
//!
//! Runs three Table-1 pattern pairs through the paper's protocol on
//! the LSTM (the paper's subject) and the Hebbian network (extension),
//! printing the old-pattern (red) and new-pattern (blue) confidence
//! series and a final summary.
//!
//! Usage: `cargo run --release -p hnp-bench --bin fig3_interference [steps_b]`

use hnp_bench::fig3::{run_hebbian, run_lstm, run_transformer, Fig3Options, Fig3Series};
use hnp_bench::output;
use hnp_trace::Pattern;

/// Renders a 0..1 series as a sparkline row.
fn spark(values: &[f32]) -> String {
    const LEVELS: [char; 8] = ['.', ':', '-', '=', '+', '*', '#', '@'];
    values
        .iter()
        .map(|&v| {
            let i = ((v.clamp(0.0, 1.0)) * (LEVELS.len() as f32 - 1.0)).round() as usize;
            LEVELS[i]
        })
        .collect()
}

fn print_series(s: &Fig3Series) {
    let old: Vec<f32> = s.points.iter().map(|p| p.conf_old).collect();
    let new: Vec<f32> = s.points.iter().map(|p| p.conf_new).collect();
    println!(
        "  [{}] {} -> {}  replay={}  phase1-conf={:.2}",
        s.model, s.pattern_old, s.pattern_new, s.replay, s.conf_old_after_phase1
    );
    println!(
        "    old (red):  {}  final {:.2}",
        spark(&old),
        s.final_conf_old()
    );
    println!(
        "    new (blue): {}  final {:.2}",
        spark(&new),
        s.final_conf_new()
    );
}

fn main() {
    let steps_b = output::arg_or(1, "HNP_STEPS_B", 4000);
    let opts = Fig3Options {
        steps_b,
        ..Fig3Options::default()
    };
    // Three pairs, as in Fig. 3a-c.
    let pairs = [
        (Pattern::Stride, Pattern::PointerChase),
        (Pattern::PointerChase, Pattern::IndirectIndex),
        (Pattern::IndirectStride, Pattern::Stride),
    ];
    let mut all: Vec<Fig3Series> = Vec::new();
    output::header("Fig. 3a-c: catastrophic interference (no replay), LSTM");
    for &(a, b) in &pairs {
        let s = run_lstm(a, b, false, &opts);
        print_series(&s);
        all.push(s);
    }
    output::header("Fig. 3d-f: with interleaved replay at 0.1x lr, LSTM");
    for &(a, b) in &pairs {
        let s = run_lstm(a, b, true, &opts);
        print_series(&s);
        all.push(s);
    }
    output::header("Extension: Hebbian network, same protocol");
    for &(a, b) in &pairs {
        for replay in [false, true] {
            let s = run_hebbian(a, b, replay, &opts);
            print_series(&s);
            all.push(s);
        }
    }
    output::header("Extension: transformer baseline, same protocol");
    for &(a, b) in &pairs {
        for replay in [false, true] {
            let s = run_transformer(a, b, replay, &opts);
            print_series(&s);
            all.push(s);
        }
    }
    output::header("Summary: final old-pattern confidence");
    println!(
        "{:<10} {:<18} {:<18} {:>10} {:>10}",
        "model", "old", "new", "no-replay", "replay"
    );
    for &(a, b) in &pairs {
        for model in ["lstm", "hebbian", "transformer"] {
            let find = |replay: bool| {
                all.iter()
                    .find(|s| {
                        s.model == model
                            && s.pattern_old == a.name()
                            && s.pattern_new == b.name()
                            && s.replay == replay
                    })
                    .map(|s| s.final_conf_old())
                    .unwrap_or(f32::NAN)
            };
            println!(
                "{:<10} {:<18} {:<18} {:>10.2} {:>10.2}",
                model,
                a.name(),
                b.name(),
                find(false),
                find(true)
            );
        }
    }
    output::write_json("fig3_interference", &all);
}
