//! Robustness study: degradation curves under injected faults.
//!
//! Runs the Hebbian (CLS), LSTM, and stride prefetchers on both
//! system targets (disaggregated cluster, UVM) under escalating fault
//! schedules — link latency spikes, lossy links with switch
//! brownouts, and a full storm with node crashes — each with and
//! without the `ResilientPrefetcher` graceful-degradation wrapper.
//!
//! The question the JSON answers: how much of a prefetcher's
//! fair-weather benefit survives a degraded system, and how much of
//! the loss the watchdog wrapper claws back. `stall_ticks` is the
//! cluster's total link stall for the disaggregated target and the
//! run's total ticks for UVM (whose stall is embedded in wall-clock).
//!
//! Schedules are sized relative to each target's fault-free horizon so
//! the fault window always covers the middle half of the run.
//!
//! Usage: `cargo run --release -p hnp-bench --bin sys_faults [accesses]`
//! `HNP_FAULTS=<dsl>` replaces the built-in schedules with a custom
//! one (see `FaultSchedule::parse`); `HNP_FAULT_SEED` reseeds the
//! injector.

use serde::Serialize;

use hnp_baselines::{LstmPrefetcher, LstmPrefetcherConfig, StrideConfig, StridePrefetcher};
use hnp_bench::output;
use hnp_core::{ClsConfig, ClsPrefetcher};
use hnp_memsim::{NoPrefetcher, Prefetcher, ResilientPrefetcher};
use hnp_systems::{
    DisaggConfig, DisaggregatedCluster, FaultInjector, FaultSchedule, UvmConfig, UvmSim,
};
use hnp_trace::apps::AppWorkload;
use hnp_trace::Trace;

#[derive(Serialize)]
struct Row {
    target: String,
    schedule: String,
    prefetcher: String,
    resilient: bool,
    stall_ticks: u64,
    total_ticks: u64,
    misses: usize,
    prefetches_issued: usize,
    prefetches_useful: usize,
    prefetches_cancelled: usize,
    retries: usize,
    timeouts: usize,
    restarts: usize,
}

const MODELS: [&str; 3] = ["cls-hebbian", "lstm", "stride"];

fn make_model(name: &str, seed: u64) -> Box<dyn Prefetcher> {
    match name {
        // Fair-weather tuning: wide, unfiltered issue maximises
        // coverage on a healthy link, and is exactly the geometry a
        // degraded link punishes (wasted transfers + pollution). The
        // wrapper, not the model, is the safety mechanism under test.
        "cls-hebbian" => Box::new(ClsPrefetcher::new(ClsConfig {
            seed,
            lookahead: 4,
            width: 4,
            min_confidence: 0.0,
            ..ClsConfig::default()
        })),
        "lstm" => Box::new(LstmPrefetcher::new(LstmPrefetcherConfig {
            seed,
            ..LstmPrefetcherConfig::default()
        })),
        "stride" => Box::new(StridePrefetcher::with_config(
            StrideConfig::default().with_degree(2),
        )),
        other => panic!("unknown model {other}"),
    }
}

fn make(name: &str, seed: u64, resilient: bool) -> Box<dyn Prefetcher> {
    let inner = make_model(name, seed);
    if resilient {
        Box::new(ResilientPrefetcher::new(inner))
    } else {
        inner
    }
}

/// Escalating schedules sized to a fault-free horizon of `h` ticks.
/// `brownout_slots` couples the lossy episode with a switch brownout
/// (loss degrades the switch itself, which also loses its QoS path) —
/// meaningful for the disaggregated cluster's shared switch; pass 0
/// for the UVM target, whose interconnect has no admission stage.
fn schedules(h: u64, brownout_slots: usize) -> Vec<(&'static str, FaultSchedule)> {
    if let Ok(spec) = std::env::var("HNP_FAULTS") {
        let custom = FaultSchedule::parse(&spec).unwrap_or_else(|e| panic!("HNP_FAULTS: {e}"));
        return vec![("custom", custom)];
    }
    let start = h / 6;
    let dur = h / 2;
    let mut lossy = FaultSchedule::none().with_lossy_link(start, dur, 0.5);
    if brownout_slots > 0 {
        lossy = lossy.with_brownout(start, dur, brownout_slots);
    }
    vec![
        ("none", FaultSchedule::none()),
        (
            "spike",
            FaultSchedule::none()
                .with_latency_spike(start, dur, 150, 50)
                .with_slowdown(start, dur, 1.5),
        ),
        ("lossy", lossy),
        (
            "storm",
            FaultSchedule::none()
                .with_lossy_link(start, dur, 0.5)
                .with_latency_spike(start, dur, 200, 100)
                .with_brownout(start, dur, 2)
                .with_crash(h / 3, h / 20, 1)
                .with_crash(2 * h / 3, h / 20, 2),
        ),
    ]
}

fn fault_seed() -> u64 {
    std::env::var("HNP_FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xfa017)
}

fn node_traces(accesses: usize) -> Vec<Trace> {
    vec![
        AppWorkload::TensorFlowLike.generate(accesses, 11),
        AppWorkload::PageRankLike.generate(accesses, 12),
        AppWorkload::McfLike.generate(accesses, 13),
        AppWorkload::Graph500Like.generate(accesses, 14),
    ]
}

fn warp_traces(accesses: usize) -> Vec<Trace> {
    (0..4u64)
        .map(|i| {
            let app = AppWorkload::FIG5[(i % 4) as usize];
            app.generate(accesses, 200 + i).with_stream(i as u16)
        })
        .collect()
}

fn main() {
    let accesses = output::arg_or(1, "HNP_ACCESSES", 15_000);
    let seed = fault_seed();
    let mut rows = Vec::new();

    // ---- Disaggregated cluster -------------------------------------
    // A moderately constrained switch: brownouts and wasted
    // prefetches translate into demand-fetch contention stall.
    let traces = node_traces(accesses);
    let cfg = DisaggConfig {
        local_capacity_frac: 0.3,
        max_inflight: 4,
        shared_link_slots: 8,
        contention_penalty: 45,
        ..DisaggConfig::default()
    };
    let cluster = DisaggregatedCluster::new(cfg);
    let horizon = {
        let mut none: Vec<Box<dyn Prefetcher>> = (0..traces.len())
            .map(|_| Box::new(NoPrefetcher) as Box<dyn Prefetcher>)
            .collect();
        cluster.run_decentralized(&traces, &mut none).total_ticks
    };
    output::header("Disaggregated cluster: degradation curves (per-node prefetchers)");
    println!(
        "{:<8} {:<14} {:>9} {:>12} {:>10} {:>9} {:>8} {:>8}",
        "schedule", "prefetcher", "resilient", "stall", "misses", "cancel", "retries", "restarts"
    );
    for (sched_name, schedule) in schedules(horizon, 3) {
        let mut none: Vec<Box<dyn Prefetcher>> = (0..traces.len())
            .map(|_| Box::new(NoPrefetcher) as Box<dyn Prefetcher>)
            .collect();
        let mut inj = FaultInjector::new(schedule.clone(), seed);
        let base = cluster.run_decentralized_with_faults(&traces, &mut none, &mut inj);
        let mut emit = |label: &str, resilient: bool, rep: &hnp_systems::DisaggReport| {
            let sum = |f: fn(&hnp_systems::disagg::NodeReport) -> usize| -> usize {
                rep.nodes.iter().map(f).sum()
            };
            println!(
                "{:<8} {:<14} {:>9} {:>12} {:>10} {:>9} {:>8} {:>8}",
                sched_name,
                label,
                resilient,
                rep.total_stall(),
                rep.total_misses(),
                sum(|n| n.prefetches_cancelled),
                sum(|n| n.retries),
                sum(|n| n.restarts),
            );
            rows.push(Row {
                target: "disagg".into(),
                schedule: sched_name.into(),
                prefetcher: label.into(),
                resilient,
                stall_ticks: rep.total_stall(),
                total_ticks: rep.total_ticks,
                misses: rep.total_misses(),
                prefetches_issued: sum(|n| n.prefetches_issued),
                prefetches_useful: sum(|n| n.prefetches_useful),
                prefetches_cancelled: sum(|n| n.prefetches_cancelled),
                retries: sum(|n| n.retries),
                timeouts: sum(|n| n.timeouts),
                restarts: sum(|n| n.restarts),
            });
        };
        emit("baseline", false, &base);
        for model in MODELS {
            for resilient in [false, true] {
                let mut pfs: Vec<Box<dyn Prefetcher>> = (0..traces.len())
                    .map(|i| make(model, 0xd15a + i as u64, resilient))
                    .collect();
                let mut inj = FaultInjector::new(schedule.clone(), seed);
                let rep = cluster.run_decentralized_with_faults(&traces, &mut pfs, &mut inj);
                emit(model, resilient, &rep);
            }
        }
    }

    // ---- UVM ---------------------------------------------------------
    let warps = warp_traces(accesses);
    let sim = UvmSim::new(UvmConfig::default());
    let horizon = sim.run(&warps, &mut NoPrefetcher).total_ticks;
    output::header("UVM: degradation curves (centralized prefetcher)");
    println!(
        "{:<8} {:<14} {:>9} {:>12} {:>10} {:>9} {:>8} {:>8}",
        "schedule", "prefetcher", "resilient", "ticks", "faults", "cancel", "retries", "restarts"
    );
    for (sched_name, schedule) in schedules(horizon, 0) {
        let mut emit = |label: &str, resilient: bool, rep: &hnp_systems::UvmReport| {
            println!(
                "{:<8} {:<14} {:>9} {:>12} {:>10} {:>9} {:>8} {:>8}",
                sched_name,
                label,
                resilient,
                rep.total_ticks,
                rep.faults,
                rep.prefetches_cancelled,
                rep.retries,
                rep.restarts,
            );
            rows.push(Row {
                target: "uvm".into(),
                schedule: sched_name.into(),
                prefetcher: label.into(),
                resilient,
                stall_ticks: rep.total_ticks,
                total_ticks: rep.total_ticks,
                misses: rep.faults,
                prefetches_issued: rep.prefetches_issued,
                prefetches_useful: rep.prefetches_useful,
                prefetches_cancelled: rep.prefetches_cancelled,
                retries: rep.retries,
                timeouts: rep.timeouts,
                restarts: rep.restarts,
            });
        };
        let mut inj = FaultInjector::new(schedule.clone(), seed);
        let base = sim.run_with_faults(&warps, &mut NoPrefetcher, &mut inj);
        emit("baseline", false, &base);
        for model in MODELS {
            for resilient in [false, true] {
                let mut p = make(model, 0x07a, resilient);
                let mut inj = FaultInjector::new(schedule.clone(), seed);
                let rep = sim.run_with_faults(&warps, p.as_mut(), &mut inj);
                emit(model, resilient, &rep);
            }
        }
    }
    output::write_json("sys_faults", &rows);
}
