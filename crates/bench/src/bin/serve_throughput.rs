//! Serving-engine scaling study (DESIGN.md §11).
//!
//! Runs the same multi-tenant request stream through `hnp-serve` at
//! increasing worker-thread counts, verifying the determinism
//! contract (bit-identical report and snapshot archive at every
//! count) while measuring wall-clock epochs/sec. The interesting
//! number is the 1→4-thread speedup on a ≥32-tenant mix: the epoch
//! barrier costs something, so scaling is sublinear, but batching
//! per shard must keep it comfortably above 1×.
//!
//! Usage: `cargo run --release -p hnp-bench --bin serve_throughput
//! [tenants] [accesses_per_tenant]`

use serde::Serialize;

use hnp_bench::output;
use hnp_serve::{
    synthesize, ModelKind, PrefetcherFactory, ServeConfig, ServeEngine, TenantRegistry, TenantSpec,
};
use hnp_trace::apps::AppWorkload;

#[derive(Serialize)]
struct Row {
    threads: usize,
    epochs: u64,
    processed: u64,
    shed: u64,
    snapshots: u64,
    wall_ms: f64,
    epochs_per_sec: f64,
    requests_per_sec: f64,
    speedup_vs_1: f64,
    deterministic: bool,
}

const MIX: [ModelKind; 5] = [
    ModelKind::Hebbian,
    ModelKind::Cls,
    ModelKind::Stride,
    ModelKind::Markov,
    ModelKind::NextN,
];
const LOADS: [AppWorkload; 5] = [
    AppWorkload::McfLike,
    AppWorkload::TensorFlowLike,
    AppWorkload::PageRankLike,
    AppWorkload::Graph500Like,
    AppWorkload::KvStoreLike,
];

fn registry(tenants: u64) -> TenantRegistry {
    let mut reg = TenantRegistry::new();
    for id in 0..tenants {
        reg.register(TenantSpec {
            id,
            model: MIX[(id % MIX.len() as u64) as usize],
            workload: LOADS[(id % LOADS.len() as u64) as usize],
            seed: 7000 + id,
        });
    }
    reg
}

fn main() {
    let tenants = output::arg_or(1, "HNP_TENANTS", 32) as u64;
    let accesses = output::arg_or(2, "HNP_ACCESSES", 400);
    let reg = registry(tenants);
    let requests = synthesize(&reg, accesses, 11);
    output::header(&format!(
        "serving engine scaling: {tenants} tenants x {accesses} accesses, 16 shards, snapshots every 8 epochs"
    ));
    println!(
        "{:<8} {:>8} {:>10} {:>8} {:>10} {:>10} {:>10} {:>8}",
        "threads", "epochs", "processed", "shed", "wall ms", "epochs/s", "reqs/s", "speedup"
    );
    let mut rows: Vec<Row> = Vec::new();
    let mut reference: Option<hnp_serve::ServeOutcome> = None;
    let mut base_secs = 0.0f64;
    for threads in [1usize, 2, 4, 8] {
        let cfg = ServeConfig {
            shards: 16,
            workers: threads,
            queue_depth: 128,
            flush_per_shard: 32,
            snapshot_interval: 8,
            ..ServeConfig::default()
        };
        let engine = ServeEngine::new(cfg, registry(tenants), PrefetcherFactory::new());
        // One warm-up pass, then the timed pass (the engine rebuilds
        // all tenant models per run, so runs are independent).
        let _ = engine.run(&requests);
        let t0 = std::time::Instant::now();
        let out = engine.run(&requests);
        let secs = t0.elapsed().as_secs_f64().max(1e-9);
        if threads == 1 {
            base_secs = secs;
        }
        let deterministic = match &reference {
            None => true,
            Some(first) => out.report == first.report && out.archive == first.archive,
        };
        println!(
            "{:<8} {:>8} {:>10} {:>8} {:>10.1} {:>10.1} {:>10.0} {:>7.2}x",
            threads,
            out.report.epochs,
            out.report.processed,
            out.report.shed,
            secs * 1e3,
            out.report.epochs as f64 / secs,
            out.report.processed as f64 / secs,
            base_secs / secs
        );
        rows.push(Row {
            threads,
            epochs: out.report.epochs,
            processed: out.report.processed,
            shed: out.report.shed,
            snapshots: out.report.snapshots,
            wall_ms: secs * 1e3,
            epochs_per_sec: out.report.epochs as f64 / secs,
            requests_per_sec: out.report.processed as f64 / secs,
            speedup_vs_1: base_secs / secs,
            deterministic,
        });
        if reference.is_none() {
            reference = Some(out);
        }
    }
    let all_deterministic = rows.iter().all(|r| r.deterministic);
    println!(
        "determinism contract: {}",
        if all_deterministic {
            "bit-identical outcome at every thread count"
        } else {
            "VIOLATED — outcomes diverged across thread counts"
        }
    );
    output::write_json("serve_throughput", &rows);
    assert!(
        all_deterministic,
        "serving engine outcome depends on thread count"
    );
}
