//! §4 conjecture: "such interleaving of access streams may naturally
//! offer more resistance to catastrophic interference, reducing
//! replay costs."
//!
//! Trains the same online models on two patterns presented
//! *sequentially* (phase A fully, then phase B — the Fig.-3 regime) or
//! *interleaved* at different granularities (alternating chunks of 1
//! or 16 examples, as a centralized UVM-driver prefetcher would see
//! them), with no replay in any condition, and compares final
//! confidence on both patterns. Granularity matters: a context-
//! carrying model (the Hebbian net's recurrent state) needs bursts
//! long enough for its context to match single-stream evaluation.
//!
//! Usage: `cargo run --release -p hnp-bench --bin interleaving [steps]`

use serde::Serialize;

use hnp_bench::fig3::pattern_tokens;
use hnp_bench::output;
use hnp_hebbian::{HebbianConfig, HebbianNetwork};
use hnp_memsim::DeltaVocab;
use hnp_nn::{LstmConfig, LstmNetwork};
use hnp_trace::Pattern;

#[derive(Serialize)]
struct Row {
    model: String,
    presentation: String,
    conf_a: f32,
    conf_b: f32,
}

fn lstm_conf(net: &LstmNetwork, toks: &[usize]) -> f32 {
    let mut s = 0.0;
    let mut n = 0;
    for i in (0..toks.len() - 5).step_by(7) {
        s += net.eval_window(&toks[i..i + 4], toks[i + 4]).confidence;
        n += 1;
    }
    s / n as f32
}

fn run_lstm(a: &[usize], b: &[usize], chunk: Option<usize>, steps: usize, vocab_len: usize) -> Row {
    let mut net = LstmNetwork::new(LstmConfig {
        vocab: vocab_len,
        embed_dim: 32,
        hidden: 64,
        learning_rate: 0.2,
        ..LstmConfig::default()
    });
    let ex = |t: &[usize], i: usize| -> (usize, usize) {
        let s = i % (t.len() - 4);
        (s, s + 4)
    };
    match chunk {
        Some(c) => {
            let mut i = 0;
            while i < steps {
                for j in i..(i + c).min(steps) {
                    let (s, e) = ex(a, j);
                    net.train_window(&a[s..e], a[e], 0.2);
                }
                for j in i..(i + c).min(steps) {
                    let (s, e) = ex(b, j);
                    net.train_window(&b[s..e], b[e], 0.2);
                }
                i += c;
            }
        }
        None => {
            for i in 0..steps {
                let (s, e) = ex(a, i);
                net.train_window(&a[s..e], a[e], 0.2);
            }
            for i in 0..steps {
                let (s, e) = ex(b, i);
                net.train_window(&b[s..e], b[e], 0.2);
            }
        }
    }
    Row {
        model: "lstm".into(),
        presentation: label(chunk),
        conf_a: lstm_conf(&net, a),
        conf_b: lstm_conf(&net, b),
    }
}

/// Condition label.
fn label(chunk: Option<usize>) -> String {
    match chunk {
        Some(c) => format!("interleave-{c}"),
        None => "sequential".into(),
    }
}

fn hebbian_conf(net: &mut HebbianNetwork, toks: &[usize]) -> f32 {
    let saved = net.recurrent_state().to_vec();
    net.reset_state();
    let mut s = 0.0;
    let mut n = 0;
    for w in toks.windows(2).skip(2) {
        s += net.infer_advance(&[w[0] as u32], w[1]).confidence;
        n += 1;
    }
    net.set_recurrent_state(&saved);
    s / n as f32
}

fn run_hebbian(a: &[usize], b: &[usize], chunk: Option<usize>, steps: usize) -> Row {
    let mut net = HebbianNetwork::new(HebbianConfig::paper_table2());
    let pair = |t: &[usize], i: usize| -> (usize, usize) {
        let s = i % (t.len() - 1);
        (t[s], t[s + 1])
    };
    match chunk {
        Some(c) => {
            let mut i = 0;
            while i < steps {
                for j in i..(i + c).min(steps) {
                    let (x, y) = pair(a, j);
                    net.train_step(&[x as u32], y);
                }
                for j in i..(i + c).min(steps) {
                    let (x, y) = pair(b, j);
                    net.train_step(&[x as u32], y);
                }
                i += c;
            }
        }
        None => {
            for i in 0..steps {
                let (x, y) = pair(a, i);
                net.train_step(&[x as u32], y);
            }
            for i in 0..steps {
                let (x, y) = pair(b, i);
                net.train_step(&[x as u32], y);
            }
        }
    }
    Row {
        model: "hebbian".into(),
        presentation: label(chunk),
        conf_a: hebbian_conf(&mut net, a),
        conf_b: hebbian_conf(&mut net, b),
    }
}

fn main() {
    let steps = output::arg_or(1, "HNP_STEPS", 6_000);
    let vocab = DeltaVocab::new(64);
    let a = pattern_tokens(Pattern::Stride, 1000, 1, &vocab);
    let b = pattern_tokens(Pattern::PointerChase, 1000, 2, &vocab);
    output::header("§4: stream interleaving vs sequential presentation (no replay)");
    println!(
        "{:<10} {:<14} {:>8} {:>8}",
        "model", "presentation", "conf(A)", "conf(B)"
    );
    let mut rows = Vec::new();
    for chunk in [None, Some(1), Some(16)] {
        rows.push(run_lstm(&a, &b, chunk, steps, vocab.len()));
        rows.push(run_hebbian(&a, &b, chunk, steps));
    }
    for r in &rows {
        println!(
            "{:<10} {:<14} {:>8.2} {:>8.2}",
            r.model, r.presentation, r.conf_a, r.conf_b
        );
    }
    println!();
    println!("interleaving keeps both patterns alive without replay (the paper's §4");
    println!("conjecture) — but a context-carrying model needs the interleave bursts");
    println!("to be longer than its context depth (compare hebbian at chunk 1 vs 16).");
    output::write_json("interleaving", &rows);
}
