//! §5.2 ablation: prefetch length, width, history, and inference
//! latency.
//!
//! Sweeps the three output-geometry knobs and demonstrates the
//! paper's timeliness argument: "if the time between misses is less
//! than the inference latency, even a perfect model will always
//! prefetch too late. In that case, a more effective method is to
//! predict a sequence of misses further into the future."
//!
//! Usage: `cargo run --release -p hnp-bench --bin ablate_geometry [accesses]`

use serde::Serialize;

use hnp_bench::output;
use hnp_core::encoder::EncoderKind;
use hnp_core::{AdaptiveConfig, ClsConfig, ClsPrefetcher};
use hnp_memsim::{NoPrefetcher, SimConfig, Simulator};
use hnp_trace::apps::AppWorkload;
use hnp_trace::Trace;

#[derive(Serialize)]
struct Row {
    axis: String,
    value: String,
    pct_misses_removed: f64,
    accuracy: f64,
    issued: usize,
}

fn run_one(
    trace: &Trace,
    sim: &Simulator,
    base: &hnp_memsim::SimReport,
    cfg: ClsConfig,
    axis: &str,
    value: String,
    rows: &mut Vec<Row>,
) {
    let mut p = ClsPrefetcher::new(cfg);
    let rep = sim.run(trace, &mut p);
    println!(
        "{:<12} {:<16} {:>9.1}% {:>9.2} {:>9}",
        axis,
        value,
        rep.pct_misses_removed(base),
        rep.accuracy(),
        rep.prefetches_issued
    );
    rows.push(Row {
        axis: axis.to_string(),
        value,
        pct_misses_removed: rep.pct_misses_removed(base),
        accuracy: rep.accuracy(),
        issued: rep.prefetches_issued,
    });
}

fn main() {
    let accesses = output::arg_or(1, "HNP_ACCESSES", 100_000);
    let trace = AppWorkload::TensorFlowLike.generate(accesses, 11);
    let mut rows = Vec::new();

    output::header("§5.2 ablation: prefetch length (lookahead), width, history");
    println!(
        "{:<12} {:<16} {:>10} {:>9} {:>9}",
        "axis", "value", "removed%", "accuracy", "issued"
    );
    let cfg0 = SimConfig::default().sized_to(&trace, 0.5);
    let sim = Simulator::new(cfg0);
    let base = sim.run(&trace, &mut NoPrefetcher);
    for lookahead in [1usize, 2, 4, 8] {
        run_one(
            &trace,
            &sim,
            &base,
            ClsConfig {
                lookahead,
                ..ClsConfig::default()
            },
            "length",
            lookahead.to_string(),
            &mut rows,
        );
    }
    for width in [1usize, 2, 4] {
        run_one(
            &trace,
            &sim,
            &base,
            ClsConfig {
                width,
                ..ClsConfig::default()
            },
            "width",
            width.to_string(),
            &mut rows,
        );
    }
    for window in [1usize, 2, 4, 8] {
        run_one(
            &trace,
            &sim,
            &base,
            ClsConfig {
                encoder: if window == 1 {
                    EncoderKind::OneHot
                } else {
                    EncoderKind::HistoryWindow { window }
                },
                ..ClsConfig::default()
            },
            "history",
            window.to_string(),
            &mut rows,
        );
    }

    output::header("§5.2 timeliness: inference latency vs lookahead (perfect-model argument)");
    println!(
        "{:<12} {:<16} {:>10} {:>9} {:>9}",
        "inf-latency", "lookahead", "removed%", "accuracy", "issued"
    );
    for inference_latency in [0u64, 200, 800] {
        for lookahead in [1usize, 4] {
            let cfg = SimConfig {
                inference_latency,
                ..SimConfig::default()
            }
            .sized_to(&trace, 0.5);
            let sim_l = Simulator::new(cfg);
            let base_l = sim_l.run(&trace, &mut NoPrefetcher);
            let mut p = ClsPrefetcher::new(ClsConfig {
                lookahead,
                ..ClsConfig::default()
            });
            let rep = sim_l.run(&trace, &mut p);
            println!(
                "{:<12} {:<16} {:>9.1}% {:>9.2} {:>9}",
                inference_latency,
                lookahead,
                rep.pct_misses_removed(&base_l),
                rep.accuracy(),
                rep.prefetches_issued
            );
            rows.push(Row {
                axis: format!("timeliness-inf{inference_latency}"),
                value: format!("lookahead{lookahead}"),
                pct_misses_removed: rep.pct_misses_removed(&base_l),
                accuracy: rep.accuracy(),
                issued: rep.prefetches_issued,
            });
        }
    }
    output::header("§5.2 co-design: adaptive geometry under inference latency");
    println!(
        "{:<12} {:<16} {:>10} {:>9} {:>9}",
        "inf-latency", "controller", "removed%", "accuracy", "issued"
    );
    for inference_latency in [0u64, 200, 800] {
        let cfg = SimConfig {
            inference_latency,
            max_issue_per_miss: 8,
            ..SimConfig::default()
        }
        .sized_to(&trace, 0.5);
        let sim_l = Simulator::new(cfg);
        let base_l = sim_l.run(&trace, &mut NoPrefetcher);
        for adaptive in [false, true] {
            let mut p = ClsPrefetcher::new(ClsConfig {
                lookahead: 1,
                width: 1,
                adaptive: adaptive.then(AdaptiveConfig::default),
                ..ClsConfig::default()
            });
            let rep = sim_l.run(&trace, &mut p);
            let (w, l) = p.geometry();
            println!(
                "{:<12} {:<16} {:>9.1}% {:>9.2} {:>9}   (ends at width {w}, lookahead {l})",
                inference_latency,
                if adaptive { "adaptive" } else { "static-1x1" },
                rep.pct_misses_removed(&base_l),
                rep.accuracy(),
                rep.prefetches_issued
            );
            rows.push(Row {
                axis: format!("adaptive-inf{inference_latency}"),
                value: if adaptive { "adaptive" } else { "static" }.to_string(),
                pct_misses_removed: rep.pct_misses_removed(&base_l),
                accuracy: rep.accuracy(),
                issued: rep.prefetches_issued,
            });
        }
    }
    output::write_json("ablate_geometry", &rows);
}
