//! §5.3 ablation: input encodings.
//!
//! Compares the one-hot delta encoding of prior work against the
//! history-window and path-hash encodings on the Table-1 patterns and
//! the application workloads, including the paper's negative result:
//! pointer-based key-value workloads defeat every delta encoding.
//!
//! Usage: `cargo run --release -p hnp-bench --bin ablate_encoding [accesses]`

use serde::Serialize;

use hnp_bench::output;
use hnp_core::encoder::EncoderKind;
use hnp_core::{ClsConfig, ClsPrefetcher};
use hnp_memsim::{NoPrefetcher, SimConfig, Simulator};
use hnp_trace::apps::AppWorkload;
use hnp_trace::Trace;

#[derive(Serialize)]
struct Row {
    workload: String,
    encoder: String,
    pct_misses_removed: f64,
    accuracy: f64,
}

fn encoders() -> Vec<(&'static str, EncoderKind)> {
    vec![
        ("one-hot", EncoderKind::OneHot),
        ("history-3", EncoderKind::HistoryWindow { window: 3 }),
        (
            "path-hash",
            EncoderKind::PathHash {
                window: 4,
                bits_per: 4,
                space: 512,
            },
        ),
        (
            "vsa",
            EncoderKind::Vsa {
                window: 4,
                active: 20,
                space: 512,
            },
        ),
    ]
}

fn run_workload(name: &str, trace: &Trace, rows: &mut Vec<Row>) {
    let cfg = SimConfig::default().sized_to(trace, 0.5);
    let sim = Simulator::new(cfg);
    let base = sim.run(trace, &mut NoPrefetcher);
    for (ename, encoder) in encoders() {
        let mut p = ClsPrefetcher::new(ClsConfig {
            encoder,
            seed: 0xe9c,
            ..ClsConfig::default()
        });
        let rep = sim.run(trace, &mut p);
        println!(
            "{:<14} {:<12} {:>9.1}% {:>9.2}",
            name,
            ename,
            rep.pct_misses_removed(&base),
            rep.accuracy()
        );
        rows.push(Row {
            workload: name.to_string(),
            encoder: ename.to_string(),
            pct_misses_removed: rep.pct_misses_removed(&base),
            accuracy: rep.accuracy(),
        });
    }
}

fn main() {
    let accesses = output::arg_or(1, "HNP_ACCESSES", 80_000);
    output::header("§5.3 ablation: input encodings");
    println!(
        "{:<14} {:<12} {:>10} {:>9}",
        "workload", "encoder", "removed%", "accuracy"
    );
    let mut rows = Vec::new();
    for app in [
        AppWorkload::TensorFlowLike,
        AppWorkload::McfLike,
        AppWorkload::KvStoreLike,
    ] {
        let trace = app.generate(accesses, 31);
        run_workload(app.name(), &trace, &mut rows);
    }
    // A second-order pattern where history should beat one-hot: an
    // alternating composite whose next delta depends on two steps of
    // context.
    let composite = {
        use hnp_trace::{phased, Pattern};

        phased::phases(
            &[
                (Pattern::IndirectIndex, accesses / 2),
                (Pattern::PointerOffset, accesses / 2),
            ],
            3,
        )
    };
    run_workload("composite", &composite, &mut rows);
    println!();
    println!("note: kv-store is the §5.3 negative result — no delta encoding should rescue it.");
    output::write_json("ablate_encoding", &rows);
}
