//! §4 study: the CPU-GPU UVM target.
//!
//! Lockstep SIMT warps fault in batches against shared GPU memory; a
//! centralized driver-side prefetcher sees all streams interleaved.
//! The study compares prefetchers and sweeps the prefetch *width*
//! (§5.2: "throughput-bound environments like the UVM system might
//! benefit more from predicting multiple prefetches at a time"), and
//! measures whether stream interleaving softens interference (§4's
//! conjecture).
//!
//! Usage: `cargo run --release -p hnp-bench --bin sys_uvm [accesses_per_warp]`

use serde::Serialize;

use hnp_bench::output;
use hnp_core::{ClsConfig, ClsPrefetcher};
use hnp_memsim::NoPrefetcher;
use hnp_systems::{UvmConfig, UvmSim};
use hnp_trace::apps::AppWorkload;
use hnp_trace::Trace;

#[derive(Serialize)]
struct Row {
    prefetcher: String,
    isolation: bool,
    width: usize,
    pct_faults_removed: f64,
    throughput: f64,
    max_batch: usize,
    total_ticks: u64,
}

fn warp_traces(accesses: usize) -> Vec<Trace> {
    (0..8u64)
        .map(|i| {
            let app = AppWorkload::FIG5[(i % 4) as usize];
            app.generate(accesses, 100 + i).with_stream(i as u16)
        })
        .collect()
}

fn main() {
    let accesses = output::arg_or(1, "HNP_ACCESSES", 30_000);
    let warps = warp_traces(accesses);
    let sim = UvmSim::new(UvmConfig::default());
    let base = sim.run(&warps, &mut NoPrefetcher);
    let mut rows = vec![Row {
        prefetcher: "baseline".into(),
        isolation: false,
        width: 0,
        pct_faults_removed: 0.0,
        throughput: base.throughput(),
        max_batch: base.max_batch,
        total_ticks: base.total_ticks,
    }];
    output::header(
        "UVM: centralized prefetcher, width x stream-isolation sweep (8 warps, lockstep)",
    );
    println!(
        "{:<14} {:>9} {:>6} {:>10} {:>12} {:>9} {:>12}",
        "prefetcher", "isolation", "width", "removed%", "throughput", "maxbatch", "ticks"
    );
    println!(
        "{:<14} {:>9} {:>6} {:>10} {:>12.2} {:>9} {:>12}",
        "baseline",
        "-",
        "-",
        "-",
        base.throughput(),
        base.max_batch,
        base.total_ticks
    );
    // With per-stream (per-warp) delta isolation, the model is
    // accurate and narrow prefetching wins under the bandwidth cap;
    // without isolation (cross-warp deltas are noise), extra width
    // compensates for the lower accuracy — the paper's "more
    // predictions, even if slightly less accurate" regime.
    for isolation in [true, false] {
        for width in [1usize, 2, 4] {
            let mut p = ClsPrefetcher::new(ClsConfig {
                width,
                lookahead: 2,
                stream_isolation: isolation,
                seed: 0x07a + width as u64,
                ..ClsConfig::default()
            });
            let rep = sim.run(&warps, &mut p);
            println!(
                "{:<14} {:>9} {:>6} {:>9.1}% {:>12.2} {:>9} {:>12}",
                "cls-hebbian",
                isolation,
                width,
                rep.pct_faults_removed(&base),
                rep.throughput(),
                rep.max_batch,
                rep.total_ticks
            );
            rows.push(Row {
                prefetcher: "cls-hebbian".into(),
                isolation,
                width,
                pct_faults_removed: rep.pct_faults_removed(&base),
                throughput: rep.throughput(),
                max_batch: rep.max_batch,
                total_ticks: rep.total_ticks,
            });
        }
    }
    output::write_json("sys_uvm", &rows);
}
