//! §5.4 ablation: phase detection.
//!
//! "Another challenge in incorporating replay is to define application
//! phases so that they can be replayed ... identify contexts or phases
//! using clustering of abstract representations." This harness runs a
//! phase-churning serverless-like workload (and a long A-B-A trace)
//! with phase detection on/off and with phase-aware (other-phases)
//! replay, reporting detected phase counts and prefetch quality.
//!
//! Usage: `cargo run --release -p hnp-bench --bin ablate_phase [accesses]`

use serde::Serialize;

use hnp_bench::output;
use hnp_core::phase::PhaseConfig;
use hnp_core::{ClsConfig, ClsPrefetcher, ReplayConfig, ReplayForm};
use hnp_memsim::{NoPrefetcher, SimConfig, Simulator};
use hnp_trace::apps::AppWorkload;
use hnp_trace::{phased, Pattern, Trace};

#[derive(Serialize)]
struct Row {
    workload: String,
    condition: String,
    pct_misses_removed: f64,
    phases_detected: u64,
    replayed: u64,
}

fn run(workload: &str, trace: &Trace, rows: &mut Vec<Row>) {
    let sim = Simulator::new(SimConfig::default().sized_to(trace, 0.5));
    let base = sim.run(trace, &mut NoPrefetcher);
    let conditions: Vec<(&str, ClsConfig)> = vec![
        (
            "no-phase",
            ClsConfig {
                phase: None,
                ..ClsConfig::default()
            },
        ),
        (
            "phase-uniform-replay",
            ClsConfig {
                phase: Some(PhaseConfig::default()),
                ..ClsConfig::default()
            },
        ),
        (
            "phase-fine-w16",
            ClsConfig {
                phase: Some(PhaseConfig {
                    window: 16,
                    ..PhaseConfig::default()
                }),
                ..ClsConfig::default()
            },
        ),
        (
            "phase-other-replay",
            ClsConfig {
                phase: Some(PhaseConfig::default()),
                replay: ReplayConfig {
                    form: ReplayForm::OtherPhases,
                    per_step: 2,
                    ..ReplayConfig::default()
                },
                ..ClsConfig::default()
            },
        ),
    ];
    for (name, cfg) in conditions {
        let mut p = ClsPrefetcher::new(cfg);
        let rep = sim.run(trace, &mut p);
        println!(
            "{:<12} {:<22} {:>9.1}% {:>8} {:>9}",
            workload,
            name,
            rep.pct_misses_removed(&base),
            p.current_phase(),
            p.replayed()
        );
        rows.push(Row {
            workload: workload.to_string(),
            condition: name.to_string(),
            pct_misses_removed: rep.pct_misses_removed(&base),
            phases_detected: p.current_phase(),
            replayed: p.replayed(),
        });
    }
}

fn main() {
    let accesses = output::arg_or(1, "HNP_ACCESSES", 100_000);
    output::header("§5.4 ablation: phase detection (phase ids are allocation counters)");
    println!(
        "{:<12} {:<22} {:>10} {:>8} {:>9}",
        "workload", "condition", "removed%", "phase-id", "replayed"
    );
    let mut rows = Vec::new();
    run(
        "serverless",
        &AppWorkload::ServerlessLike.generate(accesses, 3),
        &mut rows,
    );
    run(
        "aba",
        &phased::phases(
            &[
                (Pattern::PointerChase, accesses / 3),
                (Pattern::Stride, accesses / 3),
                (Pattern::PointerChase, accesses / 3),
            ],
            5,
        ),
        &mut rows,
    );
    output::write_json("ablate_phase", &rows);
}
