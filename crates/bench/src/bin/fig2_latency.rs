//! Fig. 2: inference and training latency of the LSTM prefetcher
//! (paper deployment scale) vs. the Hebbian network.
//!
//! Reproduces all four axes of the paper's figure:
//!
//! * inference time vs. number of future predictions (1, 2, 4, 8);
//! * training time per example vs. batch size (1, 8, 32, 128);
//! * one vs. two threads;
//! * FP32 vs. INT8-quantized inference.
//!
//! Absolute numbers depend on the host CPU; the paper's claims are the
//! *ratios*: LSTM inference is orders of magnitude over the 1-10 us
//! target, quantization helps but not enough, multi-threading barely
//! helps, and the Hebbian network is proportionally (~10x) cheaper.
//!
//! Usage: `cargo run --release -p hnp-bench --bin fig2_latency [iters]`

use serde::Serialize;

use hnp_bench::{output, timing};
use hnp_hebbian::{HebbianConfig, HebbianNetwork};
use hnp_nn::quant::QuantizedLstm;
use hnp_nn::transformer::{TransformerConfig, TransformerNetwork};
use hnp_nn::{LstmConfig, LstmNetwork};

#[derive(Serialize)]
struct Fig2Json {
    inference_ns: Vec<(String, usize, f64)>,
    training_ns: Vec<(String, usize, f64)>,
}

fn main() {
    let iters = output::arg_or(1, "HNP_ITERS", 200);
    let mut json = Fig2Json {
        inference_ns: Vec::new(),
        training_ns: Vec::new(),
    };

    output::header("Fig. 2a: inference time vs number of future predictions");
    println!(
        "{:<22} {:>6} {:>6} {:>6} {:>6}   (us per inference)",
        "model", "1", "2", "4", "8"
    );
    let variants: Vec<(String, usize)> =
        vec![("lstm-fp32-1t".into(), 1), ("lstm-fp32-2t".into(), 2)];
    for (label, threads) in variants {
        let mut net = LstmNetwork::new(LstmConfig {
            threads,
            ..LstmConfig::paper_table2()
        });
        net.train_step(1, 2);
        let mut row = format!("{label:<22}");
        for steps in [1usize, 2, 4, 8] {
            let ns = timing::time_ns(5, iters, || {
                std::hint::black_box(net.rollout(1, steps));
            });
            row.push_str(&format!(" {:>6.1}", ns / 1000.0));
            json.inference_ns.push((label.clone(), steps, ns));
        }
        println!("{row}");
    }
    {
        let mut fp = LstmNetwork::new(LstmConfig::paper_table2());
        fp.train_step(1, 2);
        let q = QuantizedLstm::from_network(&fp);
        let mut row = format!("{:<22}", "lstm-int8-1t");
        for steps in [1usize, 2, 4, 8] {
            let ns = timing::time_ns(5, iters, || {
                std::hint::black_box(q.rollout(1, steps));
            });
            row.push_str(&format!(" {:>6.1}", ns / 1000.0));
            json.inference_ns.push(("lstm-int8-1t".into(), steps, ns));
        }
        println!("{row}");
    }
    {
        let mut net = TransformerNetwork::new(TransformerConfig::default());
        net.train_window(&[1, 2, 3], 4, 0.05);
        let ctx = [1usize, 2, 3, 4, 5, 6, 7, 8];
        let mut row = format!("{:<22}", "transformer-fp32-1t");
        for steps in [1usize, 2, 4, 8] {
            let ns = timing::time_ns(5, iters, || {
                std::hint::black_box(net.rollout_top_k_with_confidence(&ctx, steps, 1));
            });
            row.push_str(&format!(" {:>6.1}", ns / 1000.0));
            json.inference_ns
                .push(("transformer-fp32-1t".into(), steps, ns));
        }
        println!("{row}");
    }
    {
        let mut net = HebbianNetwork::new(HebbianConfig::paper_table2());
        for i in 0..64u32 {
            net.train_step(&[i % 64], ((i + 1) % 64) as usize);
        }
        let mut row = format!("{:<22}", "hebbian-int-1t");
        for steps in [1usize, 2, 4, 8] {
            let ns = timing::time_ns(5, iters, || {
                std::hint::black_box(net.rollout(&[1], steps, |t| vec![(t % 128) as u32]));
            });
            row.push_str(&format!(" {:>6.1}", ns / 1000.0));
            json.inference_ns.push(("hebbian-int-1t".into(), steps, ns));
        }
        println!("{row}");
    }

    output::header("Fig. 2b: training time per example vs batch size");
    println!(
        "{:<22} {:>6} {:>6} {:>6} {:>6}   (us per example)",
        "model", "1", "8", "32", "128"
    );
    for threads in [1usize, 2] {
        let label = format!("lstm-fp32-{threads}t");
        let mut net = LstmNetwork::new(LstmConfig {
            threads,
            ..LstmConfig::paper_table2()
        });
        let mut row = format!("{label:<22}");
        for batch in [1usize, 8, 32, 128] {
            let examples: Vec<(Vec<usize>, usize)> = (0..batch)
                .map(|i| (vec![i % 50, (i + 1) % 50], (i + 2) % 50))
                .collect();
            // Fewer outer iterations for bigger batches.
            let outer = (iters / batch).max(3);
            let ns = timing::time_ns(1, outer, || {
                std::hint::black_box(net.train_batch(&examples, 0.05));
            }) / batch as f64;
            row.push_str(&format!(" {:>6.1}", ns / 1000.0));
            json.training_ns.push((label.clone(), batch, ns));
        }
        println!("{row}");
    }
    {
        // Fused batched matmuls: per-example cost falls with batch
        // size, the trend the paper's Fig. 2b shows.
        let mut net = LstmNetwork::new(LstmConfig::paper_table2());
        let mut row = format!("{:<22}", "lstm-fp32-fused");
        for batch in [1usize, 8, 32, 128] {
            let examples: Vec<(Vec<usize>, usize)> = (0..batch)
                .map(|i| (vec![i % 50, (i + 1) % 50], (i + 2) % 50))
                .collect();
            let outer = (iters / batch).max(3);
            let ns = timing::time_ns(1, outer, || {
                std::hint::black_box(net.train_batch_fused(&examples, 0.05));
            }) / batch as f64;
            row.push_str(&format!(" {:>6.1}", ns / 1000.0));
            json.training_ns.push(("lstm-fp32-fused".into(), batch, ns));
        }
        println!("{row}");
    }
    {
        let mut net = TransformerNetwork::new(TransformerConfig::default());
        let mut row = format!("{:<22}", "transformer-fp32-1t");
        for batch in [1usize, 8, 32, 128] {
            let outer = (iters / batch).max(3);
            let mut k = 0usize;
            let ns = timing::time_ns(1, outer, || {
                for _ in 0..batch {
                    k = (k + 1) % 40;
                    std::hint::black_box(net.train_window(&[k, k + 1, k + 2], k + 3, 0.05));
                }
            }) / batch as f64;
            row.push_str(&format!(" {:>6.1}", ns / 1000.0));
            json.training_ns
                .push(("transformer-fp32-1t".into(), batch, ns));
        }
        println!("{row}");
    }
    {
        let mut net = HebbianNetwork::new(HebbianConfig::paper_table2());
        let mut row = format!("{:<22}", "hebbian-int-1t");
        for batch in [1usize, 8, 32, 128] {
            // Hebbian training is inherently per-example; batching just
            // amortizes nothing, which is itself informative.
            let outer = (iters / batch).max(3);
            let mut k = 0u32;
            let ns = timing::time_ns(1, outer, || {
                for _ in 0..batch {
                    k = (k + 1) % 64;
                    std::hint::black_box(net.train_step(&[k], ((k + 1) % 64) as usize));
                }
            }) / batch as f64;
            row.push_str(&format!(" {:>6.1}", ns / 1000.0));
            json.training_ns.push(("hebbian-int-1t".into(), batch, ns));
        }
        println!("{row}");
    }

    // Summary ratios.
    let lstm1 = json
        .inference_ns
        .iter()
        .find(|(l, s, _)| l == "lstm-fp32-1t" && *s == 1)
        .map(|&(_, _, ns)| ns)
        .unwrap_or(0.0);
    let heb1 = json
        .inference_ns
        .iter()
        .find(|(l, s, _)| l == "hebbian-int-1t" && *s == 1)
        .map(|&(_, _, ns)| ns)
        .unwrap_or(1.0);
    println!();
    println!(
        "single-prediction inference: LSTM {:.1} us vs Hebbian {:.1} us ({:.1}x)",
        lstm1 / 1000.0,
        heb1 / 1000.0,
        lstm1 / heb1
    );
    output::write_json("fig2_latency", &json);
}
