//! §4 study: the disaggregated-memory target.
//!
//! Compares prefetcher placements on a multi-node cluster:
//!
//! * no prefetching (baseline),
//! * decentralized — one CLS prefetcher per node (the paper's
//!   recommendation: nodes fault one page at a time, latency-bound),
//! * centralized — a single shared prefetcher at the switch seeing all
//!   nodes' miss streams interleaved,
//!
//! and sweeps the link latency to show the benefit growing with
//! distance.
//!
//! Usage: `cargo run --release -p hnp-bench --bin sys_disagg [accesses_per_node]`

use serde::Serialize;

use hnp_bench::output;
use hnp_core::{ClsConfig, ClsPrefetcher};
use hnp_memsim::{NoPrefetcher, Prefetcher};
use hnp_systems::{DisaggConfig, DisaggregatedCluster};
use hnp_trace::apps::AppWorkload;
use hnp_trace::Trace;

#[derive(Serialize)]
struct Row {
    link_latency: u64,
    placement: String,
    pct_misses_removed: f64,
    avg_stall_per_access: f64,
    total_ticks: u64,
}

fn node_traces(accesses: usize) -> Vec<Trace> {
    // Heterogeneous nodes: different applications per node.
    vec![
        AppWorkload::TensorFlowLike.generate(accesses, 1),
        AppWorkload::PageRankLike.generate(accesses, 2),
        AppWorkload::McfLike.generate(accesses, 3),
        AppWorkload::Graph500Like.generate(accesses, 4),
    ]
}

fn main() {
    let accesses = output::arg_or(1, "HNP_ACCESSES", 60_000);
    let traces = node_traces(accesses);
    let mut rows = Vec::new();
    output::header("Disaggregated cluster: placement comparison across link latencies");
    println!(
        "{:<8} {:<17} {:>10} {:>12} {:>12}",
        "latency", "placement", "removed%", "stall/access", "ticks"
    );
    for link_latency in [50u64, 100, 400] {
        let cluster = DisaggregatedCluster::new(DisaggConfig {
            link_latency,
            ..DisaggConfig::default()
        });
        let mut none: Vec<Box<dyn Prefetcher>> = (0..traces.len())
            .map(|_| Box::new(NoPrefetcher) as Box<dyn Prefetcher>)
            .collect();
        let base = cluster.run_decentralized(&traces, &mut none);
        let mut per_node: Vec<Box<dyn Prefetcher>> = (0..traces.len())
            .map(|i| {
                Box::new(ClsPrefetcher::new(ClsConfig {
                    seed: 0xd15a + i as u64,
                    ..ClsConfig::default()
                })) as Box<dyn Prefetcher>
            })
            .collect();
        let dec = cluster.run_decentralized(&traces, &mut per_node);
        // Centralized, naive: one shared model, cross-node deltas.
        let mut naive = ClsPrefetcher::new(ClsConfig {
            seed: 0xd15a,
            stream_isolation: false,
            ..ClsConfig::default()
        });
        let cen_naive = cluster.run_centralized(&traces, &mut naive);
        // Centralized, per-stream history but one shared model.
        let mut shared = ClsPrefetcher::new(ClsConfig {
            seed: 0xd15a,
            stream_isolation: true,
            ..ClsConfig::default()
        });
        let cen_iso = cluster.run_centralized(&traces, &mut shared);
        // Centralized, fully demultiplexed: one model per stream at
        // the switch (per-node fidelity, switch-side resources).
        let mut demux = hnp_memsim::DemuxPrefetcher::new("cls", |stream| {
            Box::new(ClsPrefetcher::new(ClsConfig {
                seed: 0xd15a + stream as u64,
                ..ClsConfig::default()
            }))
        });
        let cen_demux = cluster.run_centralized(&traces, &mut demux);
        for (label, rep) in [
            ("baseline", &base),
            ("decentralized", &dec),
            ("central-naive", &cen_naive),
            ("central-isolated", &cen_iso),
            ("central-demux", &cen_demux),
        ] {
            println!(
                "{:<8} {:<17} {:>9.1}% {:>12.1} {:>12}",
                link_latency,
                label,
                rep.pct_misses_removed(&base),
                rep.avg_stall_per_access(),
                rep.total_ticks
            );
            rows.push(Row {
                link_latency,
                placement: label.to_string(),
                pct_misses_removed: rep.pct_misses_removed(&base),
                avg_stall_per_access: rep.avg_stall_per_access(),
                total_ticks: rep.total_ticks,
            });
        }
    }
    output::header("§5.2 selectivity under a constrained switch (decentralized CLS)");
    println!(
        "{:<8} {:<8} {:>10} {:>12} {:>9}",
        "slots", "width", "removed%", "stall/access", "dropped"
    );
    for shared_link_slots in [0usize, 8, 3] {
        let cluster = DisaggregatedCluster::new(DisaggConfig {
            shared_link_slots,
            ..DisaggConfig::default()
        });
        let mut none: Vec<Box<dyn Prefetcher>> = (0..traces.len())
            .map(|_| Box::new(NoPrefetcher) as Box<dyn Prefetcher>)
            .collect();
        let base = cluster.run_decentralized(&traces, &mut none);
        for width in [1usize, 4] {
            let mut pfs: Vec<Box<dyn Prefetcher>> = (0..traces.len())
                .map(|i| {
                    Box::new(ClsPrefetcher::new(ClsConfig {
                        width,
                        seed: 0xd15a + i as u64,
                        ..ClsConfig::default()
                    })) as Box<dyn Prefetcher>
                })
                .collect();
            let rep = cluster.run_decentralized(&traces, &mut pfs);
            let dropped: usize = rep.nodes.iter().map(|n| n.prefetches_dropped).sum();
            println!(
                "{:<8} {:<8} {:>9.1}% {:>12.1} {:>9}",
                shared_link_slots,
                width,
                rep.pct_misses_removed(&base),
                rep.avg_stall_per_access(),
                dropped
            );
            rows.push(Row {
                link_latency: 100,
                placement: format!("slots{shared_link_slots}-width{width}"),
                pct_misses_removed: rep.pct_misses_removed(&base),
                avg_stall_per_access: rep.avg_stall_per_access(),
                total_ticks: rep.total_ticks,
            });
        }
    }
    output::write_json("sys_disagg", &rows);
}
