//! §5.1 ablation: training-instance selection.
//!
//! Compares training on every miss (the paper's §3.1 setup) against
//! the §5.1 alternatives — periodic, random-fraction, confidence-
//! gated, and batched training — reporting both prefetching quality
//! and how many training updates each policy actually paid for.
//!
//! Usage: `cargo run --release -p hnp-bench --bin ablate_sampler [accesses]`

use serde::Serialize;

use hnp_bench::output;
use hnp_core::{ClsConfig, ClsPrefetcher, TrainingSampler};
use hnp_memsim::{NoPrefetcher, SimConfig, Simulator};
use hnp_trace::apps::AppWorkload;

#[derive(Serialize)]
struct Row {
    sampler: String,
    pct_misses_removed: f64,
    trained: u64,
    skipped: u64,
    accuracy: f64,
}

fn main() {
    let accesses = output::arg_or(1, "HNP_ACCESSES", 100_000);
    let trace = AppWorkload::TensorFlowLike.generate(accesses, 7);
    let cfg = SimConfig::default().sized_to(&trace, 0.5);
    let sim = Simulator::new(cfg);
    let base = sim.run(&trace, &mut NoPrefetcher);
    let samplers: Vec<(&str, TrainingSampler)> = vec![
        ("every-miss", TrainingSampler::EveryMiss),
        ("every-4th", TrainingSampler::EveryNth { n: 4 }),
        ("random-25%", TrainingSampler::RandomFraction { p: 0.25 }),
        (
            "conf-gated-0.5",
            TrainingSampler::ConfidenceGated { threshold: 0.5 },
        ),
        ("batch-16", TrainingSampler::Batch { size: 16 }),
    ];
    output::header("§5.1 ablation: training-instance selection (tensorflow-like)");
    println!(
        "{:<16} {:>10} {:>10} {:>10} {:>9}",
        "sampler", "removed%", "trained", "skipped", "accuracy"
    );
    let mut rows = Vec::new();
    for (name, sampler) in samplers {
        let mut p = ClsPrefetcher::new(ClsConfig {
            sampler,
            seed: 0x5a3,
            ..ClsConfig::default()
        });
        let rep = sim.run(&trace, &mut p);
        let (trained, skipped) = p.sampler_stats();
        println!(
            "{:<16} {:>9.1}% {:>10} {:>10} {:>9.2}",
            name,
            rep.pct_misses_removed(&base),
            trained,
            skipped,
            rep.accuracy()
        );
        rows.push(Row {
            sampler: name.to_string(),
            pct_misses_removed: rep.pct_misses_removed(&base),
            trained,
            skipped,
            accuracy: rep.accuracy(),
        });
    }
    output::write_json("ablate_sampler", &rows);
}
