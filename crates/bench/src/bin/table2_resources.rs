//! Table 2: resource needs of the Hebbian vs. LSTM networks.
//!
//! Prints parameter counts and per-inference / per-training-example
//! operation counts, both from the analytic formulas
//! (`hnp_nn::ops::OpCounts`) and *measured* from the actual
//! implementations (the Hebbian network counts every integer op it
//! performs). Paper values are printed alongside for comparison.
//!
//! Usage: `cargo run -p hnp-bench --bin table2_resources`

use serde::Serialize;

use hnp_bench::output;
use hnp_hebbian::{HebbianConfig, HebbianNetwork};
use hnp_nn::transformer::{TransformerConfig, TransformerNetwork};
use hnp_nn::{LstmConfig, LstmNetwork, OpCounts};

#[derive(Serialize)]
struct Row {
    model: String,
    params: usize,
    inference_ops: usize,
    training_ops: usize,
    arithmetic: String,
    storage_bytes_fp32_or_int16: usize,
    paper_params: usize,
    paper_inference_ops: String,
    paper_training_ops: String,
}

fn main() {
    output::header("Table 2: resource needs of Hebbian vs LSTM networks");
    // The LSTM at the paper's compressed deployment scale.
    let lstm_cfg = LstmConfig::paper_table2();
    let lstm = LstmNetwork::new(lstm_cfg.clone());
    let lstm_ops = lstm.op_counts();

    // The Hebbian network at the paper's scale; ops measured live.
    let heb_cfg = HebbianConfig::paper_table2();
    let mut heb = HebbianNetwork::new(heb_cfg.clone());
    // Warm up so the recurrent state carries typical occupancy, then
    // measure a training and an inference step.
    for i in 0..50u32 {
        heb.train_step(&[(i % 64)], ((i + 1) % 64) as usize);
    }
    let inf = heb.infer_advance(&[3], 4);
    let tr = heb.train_step(&[4], 5);
    let heb_formula = OpCounts::hebbian(
        heb_cfg.pattern_bits + heb_cfg.recurrent_bits,
        heb_cfg.hidden,
        heb_cfg.outputs,
        heb_cfg.connectivity,
        1 + heb_cfg.recurrent_sample,
        heb_cfg.hidden_active,
    );

    // The transformer comparison point (not in the paper's table; §2
    // names the family).
    let tf_cfg = TransformerConfig::default();
    let tf = TransformerNetwork::new(tf_cfg.clone());
    let tf_ops = OpCounts::transformer(tf_cfg.vocab, tf_cfg.dim, tf_cfg.ff, tf_cfg.window);

    let rows = vec![
        Row {
            model: "LSTM".into(),
            params: lstm.param_count(),
            inference_ops: lstm_ops.inference_ops,
            training_ops: lstm_ops.training_ops,
            arithmetic: "FP32".into(),
            storage_bytes_fp32_or_int16: lstm.param_count() * 4,
            paper_params: 170_000,
            paper_inference_ops: ">170k FP".into(),
            paper_training_ops: ">400k FP".into(),
        },
        Row {
            model: "Transformer".into(),
            params: tf.param_count(),
            inference_ops: tf_ops.inference_ops,
            training_ops: tf_ops.training_ops,
            arithmetic: "FP32".into(),
            storage_bytes_fp32_or_int16: tf.param_count() * 4,
            paper_params: 0,
            paper_inference_ops: "- (not in Table 2)".into(),
            paper_training_ops: "-".into(),
        },
        Row {
            model: "Hebbian".into(),
            params: heb.param_count(),
            inference_ops: inf.ops,
            training_ops: tr.ops,
            arithmetic: "INT16".into(),
            storage_bytes_fp32_or_int16: heb.param_count() * 2,
            paper_params: 49_000,
            paper_inference_ops: "14k INT".into(),
            paper_training_ops: "64k INT".into(),
        },
    ];

    println!(
        "{:<12} {:>10} {:>14} {:>14} {:>6} {:>12}   paper: params/inf/train",
        "model", "params", "ops(inference)", "ops(training)", "arith", "storage(B)"
    );
    for r in &rows {
        println!(
            "{:<12} {:>10} {:>14} {:>14} {:>6} {:>12}   {} / {} / {}",
            r.model,
            r.params,
            r.inference_ops,
            r.training_ops,
            r.arithmetic,
            r.storage_bytes_fp32_or_int16,
            r.paper_params,
            r.paper_inference_ops,
            r.paper_training_ops
        );
    }
    println!();
    let heb_row = rows.iter().find(|r| r.model == "Hebbian").expect("row");
    println!(
        "ratios: params {:.1}x, inference ops {:.1}x, training ops {:.1}x (LSTM / Hebbian)",
        rows[0].params as f64 / heb_row.params as f64,
        rows[0].inference_ops as f64 / heb_row.inference_ops as f64,
        rows[0].training_ops as f64 / heb_row.training_ops as f64,
    );
    println!(
        "hebbian formula cross-check: {} params, {} inf ops, {} train ops",
        heb_formula.params, heb_formula.inference_ops, heb_formula.training_ops
    );
    output::write_json("table2_resources", &rows);
}
