//! Kernel perf point: forward / train / rollout latency of the sparse
//! Hebbian network at paper (Table-2) scale.
//!
//! Prints the timing table and writes the machine-readable artifact:
//! `results/BENCH_kernels.json` when run from the repository root
//! (refreshing the checked-in perf point), `BENCH_kernels.json` in the
//! working directory otherwise, plus the usual JSON copy under
//! `target/experiments/`. Schema: DESIGN.md §12.
//!
//! Usage: `cargo run --release -p hnp-bench --bin kernels_bench [iters]`

use std::path::Path;

use hnp_bench::kernels::{self, KernelBenchOpts};
use hnp_bench::{output, timing};

fn main() {
    let opts = KernelBenchOpts {
        warmup: output::arg_or(2, "HNP_WARMUP", KernelBenchOpts::full().warmup),
        iters: output::arg_or(1, "HNP_ITERS", KernelBenchOpts::full().iters),
    };
    output::header("Hebbian kernel latency (paper_table2 scale)");
    let rep = kernels::run(opts);
    println!(
        "{:<22} {:>12}   ({} iters after {} warmup)",
        "kernel", "mean", rep.iters, rep.warmup
    );
    for (label, ns) in [
        ("forward (infer)", rep.forward_ns),
        ("train step", rep.train_ns),
        ("rollout x8", rep.rollout8_ns),
    ] {
        println!("{:<22} {}", label, timing::fmt_us(ns as f64));
    }

    let line = rep.to_json();
    let target = if Path::new("results").is_dir() {
        "results/BENCH_kernels.json"
    } else {
        "BENCH_kernels.json"
    };
    match std::fs::write(target, format!("{line}\n")) {
        Ok(()) => println!("[artifact] {target}"),
        Err(e) => eprintln!("warning: cannot write {target}: {e}"),
    }
    output::write_json("kernels_bench", &rep);
}
