//! Fig. 5: online memory-prefetching performance (percentage of
//! baseline misses removed) of Hebbian and LSTM networks — plus
//! classical baselines — on four application-like workloads.
//!
//! Setup per §3.1: memory sized at 50 % of the trace footprint, fully
//! online learning, miss-history length 1. The paper's claim is that
//! the Hebbian network is *comparable* to the LSTM at a fraction of
//! the resources.
//!
//! Usage: `cargo run --release -p hnp-bench --bin fig5_online [accesses]`

use hnp_bench::fig5::{run_grid, Fig5Options};
use hnp_bench::output;

fn main() {
    let accesses = output::arg_or(1, "HNP_ACCESSES", 200_000);
    let opts = Fig5Options {
        accesses,
        ..Fig5Options::default()
    };
    output::header(&format!(
        "Fig. 5: % misses removed vs no-prefetch baseline ({accesses} accesses/app, memory = 50% footprint)"
    ));
    let rows = run_grid(&opts);
    let apps: Vec<String> = {
        let mut v: Vec<String> = rows.iter().map(|r| r.app.clone()).collect();
        v.dedup();
        v
    };
    let prefs: Vec<String> = rows
        .iter()
        .filter(|r| r.app == apps[0])
        .map(|r| r.prefetcher.clone())
        .collect();
    print!("{:<12}", "app");
    for p in &prefs {
        print!(" {:>12}", p);
    }
    println!();
    for app in &apps {
        print!("{app:<12}");
        for p in &prefs {
            let r = rows
                .iter()
                .find(|r| &r.app == app && &r.prefetcher == p)
                .expect("grid complete");
            print!(" {:>11.1}%", r.pct_misses_removed);
        }
        println!();
    }
    println!();
    println!("accuracy (useful / issued):");
    for app in &apps {
        print!("{app:<12}");
        for p in &prefs {
            let r = rows
                .iter()
                .find(|r| &r.app == app && &r.prefetcher == p)
                .expect("grid complete");
            print!(" {:>12.2}", r.accuracy);
        }
        println!();
    }
    output::write_json("fig5_online", &rows);
}
