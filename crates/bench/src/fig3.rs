//! The Fig.-3 experiment: catastrophic interference and the effect of
//! replay during online prefetch learning.
//!
//! Protocol (§2.2, §3.2 of the paper): train a model on one Table-1
//! pattern until it is confident, then present a second pattern to
//! learn online while monitoring the model's confidence (probability
//! assigned to the correct prediction) on both patterns. Without
//! replay the confidence on the first pattern collapses; with replay —
//! retraining on the first pattern at a 0.1x learning rate after each
//! step on the second — both stay learned.
//!
//! The experiment runs on the paper's LSTM and, as an extension, on
//! the Hebbian network with hippocampal episode replay.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;

use hnp_hebbian::{HebbianConfig, HebbianNetwork, LrScale};
use hnp_memsim::DeltaVocab;
use hnp_nn::loss::SoftmaxLoss;
use hnp_nn::transformer::{TransformerConfig, TransformerNetwork};
use hnp_nn::{LstmConfig, LstmNetwork};
use hnp_obs::{Event, Registry, RingTracer};
use hnp_trace::Pattern;

/// Any model trainable on (token window -> next token) examples; the
/// interference protocol is model-agnostic across the DL baselines.
pub trait WindowModel {
    /// One gradient step at learning rate `lr`.
    fn train(&mut self, tokens: &[usize], target: usize, lr: f32) -> SoftmaxLoss;
    /// Confidence probe without learning.
    fn eval(&self, tokens: &[usize], target: usize) -> SoftmaxLoss;
}

impl WindowModel for LstmNetwork {
    fn train(&mut self, tokens: &[usize], target: usize, lr: f32) -> SoftmaxLoss {
        self.train_window(tokens, target, lr)
    }
    fn eval(&self, tokens: &[usize], target: usize) -> SoftmaxLoss {
        self.eval_window(tokens, target)
    }
}

impl WindowModel for TransformerNetwork {
    fn train(&mut self, tokens: &[usize], target: usize, lr: f32) -> SoftmaxLoss {
        self.train_window(tokens, target, lr)
    }
    fn eval(&self, tokens: &[usize], target: usize) -> SoftmaxLoss {
        self.eval_window(tokens, target)
    }
}

/// Experiment parameters.
#[derive(Debug, Clone)]
pub struct Fig3Options {
    /// Accesses generated per pattern (the paper uses 1000).
    pub pattern_len: usize,
    /// BPTT window for LSTM training examples.
    pub window: usize,
    /// Maximum epochs of phase-1 training.
    pub max_epochs_a: usize,
    /// Phase-1 stops once mean confidence on the pattern reaches this.
    pub target_confidence: f32,
    /// Online steps on the second pattern.
    pub steps_b: usize,
    /// Confidence is sampled every this many steps.
    pub sample_every: usize,
    /// Replay learning-rate scale (the paper's 0.1x).
    pub replay_lr_scale: f32,
    /// Base learning rate for the LSTM.
    pub learning_rate: f32,
    /// Delta-vocabulary half-range.
    pub delta_range: i64,
    /// Elements per pattern (cycle length of the Table-1 generators).
    pub elements: usize,
    /// RNG seed.
    pub seed: u64,
    /// Observer registry; every sampled point is emitted into it as an
    /// [`Event::EpochSummary`] (confidence on the old pattern in
    /// `confidence_milli`, on the new pattern in `accuracy_milli`).
    pub obs: Registry,
}

impl Fig3Options {
    /// Attaches an observer registry (builder form).
    pub fn with_observer(mut self, obs: Registry) -> Self {
        self.obs = obs;
        self
    }
}

impl Default for Fig3Options {
    fn default() -> Self {
        Self {
            pattern_len: 1000,
            window: 4,
            max_epochs_a: 60,
            target_confidence: 0.9,
            steps_b: 4000,
            sample_every: 125,
            replay_lr_scale: 0.1,
            learning_rate: 0.2,
            delta_range: 64,
            elements: 64,
            seed: 0xf13,
            obs: Registry::default(),
        }
    }
}

/// One sampled point of the confidence curves.
#[derive(Debug, Clone, Serialize)]
pub struct ConfidencePoint {
    /// Steps into phase 2.
    pub step: usize,
    /// Mean confidence on the *old* pattern (red curve in Fig. 3).
    pub conf_old: f32,
    /// Mean confidence on the *new* pattern (blue curve).
    pub conf_new: f32,
}

/// A full confidence series for one (pattern pair, model, replay)
/// condition.
#[derive(Debug, Clone, Serialize)]
pub struct Fig3Series {
    /// Model label ("lstm" / "hebbian").
    pub model: String,
    /// Old-pattern name.
    pub pattern_old: String,
    /// New-pattern name.
    pub pattern_new: String,
    /// Whether replay was active.
    pub replay: bool,
    /// Sampled points.
    pub points: Vec<ConfidencePoint>,
    /// Confidence on the old pattern after phase 1 (sanity: ~1.0).
    pub conf_old_after_phase1: f32,
}

/// A sampling tap: a registry carrying the caller's observers plus a
/// tracer wide enough to hold every sampled point, from which the
/// series is rebuilt. The harness's own curve is thereby read back
/// through the same event stream external observers get.
fn sample_tap(opts: &Fig3Options) -> (Registry, RingTracer) {
    let tracer = RingTracer::new(opts.steps_b / opts.sample_every.max(1) + 2);
    let tap = Registry::new();
    tap.attach(tracer.clone());
    tap.attach(Forward(opts.obs.clone()));
    (tap, tracer)
}

/// Forwards events into another registry (registry-in-registry
/// adapter).
struct Forward(Registry);

impl hnp_obs::Observer for Forward {
    fn on_event(&mut self, ev: &Event) {
        self.0.emit(ev);
    }
}

/// Rebuilds the sampled confidence curve from the traced event stream.
fn points_from_events(events: &[Event]) -> Vec<ConfidencePoint> {
    events
        .iter()
        .filter_map(|ev| match ev {
            Event::EpochSummary {
                step,
                confidence_milli,
                accuracy_milli,
                ..
            } => Some(ConfidencePoint {
                step: *step as usize,
                conf_old: *confidence_milli as f32 / 1000.0,
                conf_new: *accuracy_milli as f32 / 1000.0,
            }),
            _ => None,
        })
        .collect()
}

impl Fig3Series {
    /// Final confidence on the old pattern.
    pub fn final_conf_old(&self) -> f32 {
        self.points.last().map(|p| p.conf_old).unwrap_or(0.0)
    }

    /// Final confidence on the new pattern.
    pub fn final_conf_new(&self) -> f32 {
        self.points.last().map(|p| p.conf_new).unwrap_or(0.0)
    }
}

/// Converts a pattern trace into delta tokens under `vocab`.
pub fn pattern_tokens(pattern: Pattern, len: usize, seed: u64, vocab: &DeltaVocab) -> Vec<usize> {
    pattern_tokens_with(pattern, len, seed, vocab, 64)
}

/// [`pattern_tokens`] with an explicit cycle length.
pub fn pattern_tokens_with(
    pattern: Pattern,
    len: usize,
    seed: u64,
    vocab: &DeltaVocab,
    elements: usize,
) -> Vec<usize> {
    let params = hnp_trace::patterns::PatternParams {
        elements,
        ..hnp_trace::patterns::PatternParams::default()
    };
    let trace = pattern.generate_with(len, seed, &params);
    let pages: Vec<u64> = trace.pages().collect();
    pages
        .windows(2)
        .map(|w| vocab.token_of(w[1] as i64 - w[0] as i64))
        .collect()
}

/// Mean model confidence over up to `samples` (window -> next)
/// examples of `tokens`, evaluated without learning.
fn mean_confidence(
    net: &impl WindowModel,
    tokens: &[usize],
    window: usize,
    samples: usize,
    rng: &mut StdRng,
) -> f32 {
    let max_start = tokens.len().saturating_sub(window + 1);
    if max_start == 0 {
        return 0.0;
    }
    let mut total = 0.0;
    let n = samples.min(max_start);
    for _ in 0..n {
        let s = rng.gen_range(0..max_start);
        let loss = net.eval(&tokens[s..s + window], tokens[s + window]);
        total += loss.confidence;
    }
    total / n as f32
}

/// The generic windowed-model condition (shared by the LSTM and
/// transformer runners).
fn run_window_model(
    net: &mut impl WindowModel,
    model_name: &str,
    old: Pattern,
    new: Pattern,
    replay: bool,
    opts: &Fig3Options,
) -> Fig3Series {
    let vocab = DeltaVocab::new(opts.delta_range);
    let tokens_a = pattern_tokens_with(old, opts.pattern_len, opts.seed, &vocab, opts.elements);
    let tokens_b = pattern_tokens_with(
        new,
        opts.pattern_len,
        opts.seed ^ 0xb,
        &vocab,
        opts.elements,
    );
    let mut rng = StdRng::seed_from_u64(opts.seed ^ 0x57a7);
    let w = opts.window;
    // Phase 1: learn the old pattern to confidence.
    let mut conf_a = 0.0;
    for _ in 0..opts.max_epochs_a {
        for s in 0..tokens_a.len() - w {
            net.train(&tokens_a[s..s + w], tokens_a[s + w], opts.learning_rate);
        }
        conf_a = mean_confidence(net, &tokens_a, w, 64, &mut rng);
        if conf_a >= opts.target_confidence {
            break;
        }
    }
    // Phase 2: learn the new pattern, optionally replaying the old.
    // Each sample point is emitted as an `EpochSummary` and the series
    // is rebuilt from the event stream afterwards.
    let (tap, tracer) = sample_tap(opts);
    let mut replayed: u64 = 0;
    let b_examples = tokens_b.len() - w;
    let a_examples = tokens_a.len() - w;
    for step in 0..opts.steps_b {
        let s = step % b_examples;
        net.train(&tokens_b[s..s + w], tokens_b[s + w], opts.learning_rate);
        if replay {
            let r = rng.gen_range(0..a_examples);
            net.train(
                &tokens_a[r..r + w],
                tokens_a[r + w],
                opts.learning_rate * opts.replay_lr_scale,
            );
            replayed += 1;
        }
        if step % opts.sample_every == 0 || step + 1 == opts.steps_b {
            tap.emit(&Event::EpochSummary {
                step: step as u64,
                confidence_milli: (mean_confidence(net, &tokens_a, w, 32, &mut rng) * 1000.0)
                    as u64,
                accuracy_milli: (mean_confidence(net, &tokens_b, w, 32, &mut rng) * 1000.0) as u64,
                replayed,
                overlap_milli: 0,
                weight_ops: 0,
            });
        }
    }
    Fig3Series {
        model: model_name.to_string(),
        pattern_old: old.name().to_string(),
        pattern_new: new.name().to_string(),
        replay,
        points: points_from_events(&tracer.events()),
        conf_old_after_phase1: conf_a,
    }
}

/// Runs the LSTM condition for one pattern pair.
pub fn run_lstm(old: Pattern, new: Pattern, replay: bool, opts: &Fig3Options) -> Fig3Series {
    let vocab = DeltaVocab::new(opts.delta_range);
    let mut net = LstmNetwork::new(LstmConfig {
        vocab: vocab.len(),
        embed_dim: 32,
        hidden: 64,
        learning_rate: opts.learning_rate,
        grad_clip: 1.0,
        threads: 1,
        seed: opts.seed,
    });
    run_window_model(&mut net, "lstm", old, new, replay, opts)
}

/// Runs the transformer condition for one pattern pair (the other
/// prior-DL family; same protocol).
pub fn run_transformer(old: Pattern, new: Pattern, replay: bool, opts: &Fig3Options) -> Fig3Series {
    let vocab = DeltaVocab::new(opts.delta_range);
    let mut net = TransformerNetwork::new(TransformerConfig {
        vocab: vocab.len(),
        dim: 32,
        heads: 2,
        ff: 64,
        window: opts.window,
        learning_rate: opts.learning_rate,
        grad_clip: 1.0,
        seed: opts.seed,
    });
    run_window_model(&mut net, "transformer", old, new, replay, opts)
}

/// Mean Hebbian confidence over one pass of `tokens`, preserving the
/// live recurrent state.
fn hebbian_mean_confidence(net: &mut HebbianNetwork, tokens: &[usize]) -> f32 {
    let saved = net.recurrent_state().to_vec();
    net.reset_state();
    let mut total = 0.0;
    let mut n = 0;
    for w in tokens.windows(2) {
        let out = net.infer_advance(&[w[0] as u32], w[1]);
        // Skip the first few warm-up steps.
        if n >= 2 || tokens.len() <= 3 {
            total += out.confidence;
        }
        n += 1;
    }
    net.set_recurrent_state(&saved);
    if n <= 2 {
        0.0
    } else {
        total / (n - 2) as f32
    }
}

/// Runs the Hebbian condition for one pattern pair. Replay reinstates
/// each stored episode's recurrent context (see
/// `hnp_core::hippocampus`).
pub fn run_hebbian(old: Pattern, new: Pattern, replay: bool, opts: &Fig3Options) -> Fig3Series {
    let vocab = DeltaVocab::new(opts.delta_range);
    let tokens_a = pattern_tokens_with(old, opts.pattern_len, opts.seed, &vocab, opts.elements);
    let tokens_b = pattern_tokens_with(
        new,
        opts.pattern_len,
        opts.seed ^ 0xb,
        &vocab,
        opts.elements,
    );
    let mut rng = StdRng::seed_from_u64(opts.seed ^ 0x5eb);
    let mut net = HebbianNetwork::new(HebbianConfig {
        pattern_bits: vocab.len(),
        outputs: vocab.len(),
        recurrent_bits: 128,
        hidden: 1000,
        connectivity: 0.125,
        hidden_active: 100,
        recurrent_sample: 16,
        seed: opts.seed,
        ..HebbianConfig::paper_table2()
    });
    // Phase 1 with episode recording: (pattern token, recurrent, target).
    let mut episodes: Vec<(usize, Vec<u32>, usize)> = Vec::new();
    let mut conf_a = 0.0;
    for epoch in 0..opts.max_epochs_a {
        for w in tokens_a.windows(2) {
            let rec = net.recurrent_state().to_vec();
            net.train_step(&[w[0] as u32], w[1]);
            if epoch == 0 {
                episodes.push((w[0], rec, w[1]));
            }
        }
        conf_a = hebbian_mean_confidence(&mut net, &tokens_a);
        if conf_a >= opts.target_confidence {
            break;
        }
    }
    // Phase 2 (event-sampled like the windowed models; the Hebbian
    // condition also carries live k-WTA overlap and weight-churn
    // telemetry from the network's own counters).
    let (tap, tracer) = sample_tap(opts);
    let mut replayed: u64 = 0;
    let b_pairs: Vec<(usize, usize)> = tokens_b.windows(2).map(|w| (w[0], w[1])).collect();
    for step in 0..opts.steps_b {
        let (x, y) = b_pairs[step % b_pairs.len()];
        net.train_step(&[x as u32], y);
        if replay && !episodes.is_empty() {
            let (ex, erec, ey) = episodes[rng.gen_range(0..episodes.len())].clone();
            let saved = net.recurrent_state().to_vec();
            net.set_recurrent_state(&erec);
            net.train_step_opts(
                &[ex as u32],
                ey,
                LrScale::from_f32(opts.replay_lr_scale),
                false,
            );
            net.set_recurrent_state(&saved);
            replayed += 1;
        }
        if step % opts.sample_every == 0 || step + 1 == opts.steps_b {
            let stats = net.stats();
            tap.emit(&Event::EpochSummary {
                step: step as u64,
                confidence_milli: (hebbian_mean_confidence(&mut net, &tokens_a) * 1000.0) as u64,
                accuracy_milli: (hebbian_mean_confidence(&mut net, &tokens_b) * 1000.0) as u64,
                replayed,
                overlap_milli: stats.overlap_milli(),
                weight_ops: stats.update_ops,
            });
        }
    }
    Fig3Series {
        model: "hebbian".to_string(),
        pattern_old: old.name().to_string(),
        pattern_new: new.name().to_string(),
        replay,
        points: points_from_events(&tracer.events()),
        conf_old_after_phase1: conf_a,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_opts() -> Fig3Options {
        Fig3Options {
            pattern_len: 260,
            max_epochs_a: 40,
            steps_b: 800,
            sample_every: 200,
            elements: 16,
            ..Fig3Options::default()
        }
    }

    #[test]
    fn lstm_shows_interference_and_replay_rescues_it() {
        let opts = quick_opts();
        let no = run_lstm(Pattern::Stride, Pattern::PointerChase, false, &opts);
        let yes = run_lstm(Pattern::Stride, Pattern::PointerChase, true, &opts);
        assert!(
            no.conf_old_after_phase1 > 0.8,
            "phase 1 must learn A: {}",
            no.conf_old_after_phase1
        );
        assert!(
            no.final_conf_old() < 0.5,
            "interference must collapse old confidence: {}",
            no.final_conf_old()
        );
        assert!(
            yes.final_conf_old() > 0.6,
            "replay must preserve the old pattern: {}",
            yes.final_conf_old()
        );
        assert!(
            yes.final_conf_new() > 0.5,
            "replay must not block new learning: {}",
            yes.final_conf_new()
        );
    }

    /// The Hebbian network's sparse, largely disjoint representations
    /// already blunt interference (a CLS-theory point in its own
    /// right): old-pattern confidence sags rather than collapsing, and
    /// 0.1x replay is near-neutral at this granularity. The assertions
    /// pin that observed behaviour; the LSTM test above carries the
    /// paper's catastrophic-collapse + rescue claim.
    #[test]
    fn hebbian_interference_is_mild_and_replay_is_safe() {
        let opts = quick_opts();
        let no = run_hebbian(Pattern::Stride, Pattern::PointerChase, false, &opts);
        let yes = run_hebbian(Pattern::Stride, Pattern::PointerChase, true, &opts);
        assert!(
            no.conf_old_after_phase1 > 0.75,
            "phase 1 must learn A: {}",
            no.conf_old_after_phase1
        );
        assert!(
            no.final_conf_old() > 0.4,
            "sparse codes resist collapse: {}",
            no.final_conf_old()
        );
        // The exact gap between the replay/no-replay runs wobbles with
        // the RNG stream at quick_opts granularity; what must hold is
        // that replay never collapses the old pattern the way naive
        // sequential training collapses the LSTM above.
        assert!(
            yes.final_conf_old() > no.final_conf_old() - 0.25 && yes.final_conf_old() > 0.5,
            "replay must not harm the old pattern: {} vs {}",
            yes.final_conf_old(),
            no.final_conf_old()
        );
        assert!(yes.final_conf_new() > 0.5, "new pattern must be learned");
    }

    #[test]
    fn pattern_tokens_are_in_vocab() {
        let vocab = DeltaVocab::new(64);
        for p in Pattern::ALL {
            let toks = pattern_tokens(p, 200, 1, &vocab);
            assert_eq!(toks.len(), 199);
            assert!(toks.iter().all(|&t| t < vocab.len()), "{}", p.name());
        }
    }
}
