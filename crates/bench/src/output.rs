//! Experiment output: printed tables plus JSON artifacts.
//!
//! Artifact writing goes through [`hnp_obs::ReportSink`], the
//! workspace-wide writer: one `[artifact] <path>` marker per file,
//! best-effort semantics (a read-only filesystem degrades a run to
//! console output, it never aborts one).

use std::path::PathBuf;

use hnp_obs::ReportSink;
use serde::Serialize;

/// Where JSON experiment artifacts are written.
pub fn experiments_dir() -> PathBuf {
    ReportSink::experiments().dir().to_path_buf()
}

/// Serializes `value` to `target/experiments/<id>.json`. Prints the
/// path on success; errors are reported and swallowed (see
/// [`ReportSink::write_text`]).
pub fn write_json<T: Serialize>(id: &str, value: &T) {
    match serde_json::to_string_pretty(value) {
        Ok(s) => {
            ReportSink::experiments().write_text(&format!("{id}.json"), &s);
        }
        Err(e) => eprintln!("warning: cannot serialize {id}: {e}"),
    }
}

/// Prints a rule-of-dashes header for a table.
pub fn header(title: &str) {
    println!();
    println!("== {title} ==");
}

/// Reads a `usize` from argv position `i` (after the binary name) or
/// an environment variable, falling back to `default`.
pub fn arg_or(i: usize, env: &str, default: usize) -> usize {
    if let Some(v) = std::env::args().nth(i) {
        if let Ok(n) = v.parse() {
            return n;
        }
    }
    if let Ok(v) = std::env::var(env) {
        if let Ok(n) = v.parse() {
            return n;
        }
    }
    default
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_json_creates_artifact() {
        #[derive(Serialize)]
        struct T {
            x: u32,
        }
        write_json("unit-test-artifact", &T { x: 7 });
        let path = experiments_dir().join("unit-test-artifact.json");
        let text = std::fs::read_to_string(&path).expect("artifact written");
        assert!(text.contains("\"x\": 7"));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn arg_or_falls_back_to_default() {
        assert_eq!(arg_or(99, "HNP_UNSET_ENV_VAR", 42), 42);
    }
}
