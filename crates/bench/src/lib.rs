//! Experiment harnesses regenerating every table and figure of the
//! paper, plus the §4/§5 system studies and ablations.
//!
//! Each `src/bin/*` binary prints the paper-style rows to stdout and
//! writes machine-readable JSON under `target/experiments/`. The
//! heavy lifting lives here so binaries stay thin and the experiment
//! logic is unit-tested.
//!
//! | Binary | Paper artifact |
//! |---|---|
//! | `table1_patterns` | Table 1 |
//! | `table2_resources` | Table 2 |
//! | `fig2_latency` | Fig. 2 |
//! | `fig3_interference` | Fig. 3 |
//! | `fig5_online` | Fig. 5 |
//! | `sys_disagg`, `sys_uvm` | §4 |
//! | `ablate_sampler` | §5.1 |
//! | `ablate_geometry` | §5.2 |
//! | `ablate_encoding` | §5.3 |
//! | `ablate_replay` | §5.4 |
//! | `availability` | §5.5 |
//! | `serve_throughput` | serving-engine scaling (DESIGN.md §11) |
//! | `kernels_bench` | kernel perf point (DESIGN.md §12) |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fig3;
pub mod fig5;
pub mod kernels;
pub mod output;
pub mod timing;
