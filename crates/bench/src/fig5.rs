//! The Fig.-5 experiment: online memory-prefetching performance of the
//! Hebbian and LSTM networks (plus classical baselines) on
//! application-like workloads.
//!
//! Setup per §3.1 of the paper: for each application a trace is
//! generated, memory is sized at 50 % of the trace footprint, both
//! learned prefetchers run fully online (miss-history length 1 plus
//! recurrent state), and the metric is the percentage of the
//! no-prefetch baseline's misses that were removed.

use serde::Serialize;

use hnp_baselines::{
    LstmPrefetcher, LstmPrefetcherConfig, MarkovConfig, MarkovPrefetcher, StrideConfig,
    StridePrefetcher, TransformerPrefetcher, TransformerPrefetcherConfig,
};
use hnp_core::{ClsConfig, ClsPrefetcher};
use hnp_memsim::{NoPrefetcher, Prefetcher, SimConfig, Simulator};
use hnp_obs::{Counters, Registry};
use hnp_trace::apps::AppWorkload;

/// Experiment parameters.
#[derive(Debug, Clone)]
pub struct Fig5Options {
    /// Accesses per application trace (the paper used 2 B; default is
    /// laptop-scale and configurable upward).
    pub accesses: usize,
    /// Memory capacity as a fraction of the trace footprint (paper:
    /// 0.5).
    pub capacity_frac: f64,
    /// Demand-miss latency in ticks.
    pub miss_latency: u64,
    /// Prefetch latency in ticks.
    pub prefetch_latency: u64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Fig5Options {
    fn default() -> Self {
        Self {
            accesses: 200_000,
            capacity_frac: 0.5,
            miss_latency: 100,
            prefetch_latency: 100,
            seed: 5,
        }
    }
}

/// One (application, prefetcher) result row.
#[derive(Debug, Clone, Serialize)]
pub struct Fig5Row {
    /// Application name.
    pub app: String,
    /// Prefetcher name.
    pub prefetcher: String,
    /// The Fig.-5 metric.
    pub pct_misses_removed: f64,
    /// Useful / issued prefetches.
    pub accuracy: f64,
    /// Prefetches issued.
    pub issued: usize,
    /// Miss rate of this run.
    pub miss_rate: f64,
    /// Baseline miss rate.
    pub baseline_miss_rate: f64,
}

/// The prefetchers compared in the Fig.-5 harness.
pub fn prefetcher_names() -> Vec<&'static str> {
    vec![
        "stride",
        "markov",
        "lstm",
        "transformer",
        "hebbian",
        "cls-hebbian",
    ]
}

fn build_prefetcher(name: &str, seed: u64) -> Box<dyn Prefetcher> {
    match name {
        "stride" => Box::new(StridePrefetcher::with_config(StrideConfig::default())),
        "markov" => Box::new(MarkovPrefetcher::with_config(MarkovConfig::default())),
        "lstm" => Box::new(LstmPrefetcher::new(LstmPrefetcherConfig {
            seed,
            ..LstmPrefetcherConfig::default()
        })),
        "transformer" => Box::new(TransformerPrefetcher::new(TransformerPrefetcherConfig {
            seed,
            ..TransformerPrefetcherConfig::default()
        })),
        "hebbian" => Box::new(ClsPrefetcher::new(ClsConfig {
            seed,
            ..ClsConfig::hebbian_only()
        })),
        "cls-hebbian" => Box::new(ClsPrefetcher::new(ClsConfig {
            seed,
            ..ClsConfig::default()
        })),
        other => panic!("unknown prefetcher {other}"),
    }
}

/// Runs one application against one prefetcher (plus the baseline).
pub fn run_app(app: AppWorkload, prefetcher_name: &str, opts: &Fig5Options) -> Fig5Row {
    let trace = app.generate(opts.accesses, opts.seed);
    let cfg = SimConfig {
        miss_latency: opts.miss_latency,
        prefetch_latency: opts.prefetch_latency,
        max_issue_per_miss: 4,
        max_inflight: 32,
        ..SimConfig::default()
    }
    .sized_to(&trace, opts.capacity_frac);
    let base = Simulator::new(cfg.clone()).run(&trace, &mut NoPrefetcher);
    let counters = Counters::new();
    let obs = Registry::new();
    obs.attach(counters.clone());
    let sim = Simulator::new(cfg.with_observer(obs));
    let mut p = build_prefetcher(prefetcher_name, opts.seed);
    let rep = sim.run(&trace, p.as_mut());
    // The report and the counters are two independent folds of the same
    // event stream; a mismatch means an emission site drifted.
    assert_eq!(
        counters.get("prefetch_issued"),
        rep.prefetches_issued as u64,
        "event-stream issued count must reproduce the report"
    );
    assert_eq!(
        counters.get("hit") + counters.get("miss"),
        rep.accesses as u64,
        "event stream must account for every access"
    );
    Fig5Row {
        app: app.name().to_string(),
        prefetcher: prefetcher_name.to_string(),
        pct_misses_removed: rep.pct_misses_removed(&base),
        accuracy: rep.accuracy(),
        issued: rep.prefetches_issued,
        miss_rate: rep.miss_rate(),
        baseline_miss_rate: base.miss_rate(),
    }
}

/// Runs the full grid: every Fig.-5 application against every
/// prefetcher.
pub fn run_grid(opts: &Fig5Options) -> Vec<Fig5Row> {
    let mut rows = Vec::new();
    for app in AppWorkload::FIG5 {
        for name in prefetcher_names() {
            rows.push(run_app(app, name, opts));
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_opts() -> Fig5Options {
        Fig5Options {
            accesses: 30_000,
            ..Fig5Options::default()
        }
    }

    #[test]
    fn hebbian_and_lstm_both_remove_misses_on_tensorflow() {
        let opts = quick_opts();
        let heb = run_app(AppWorkload::TensorFlowLike, "hebbian", &opts);
        let lstm = run_app(AppWorkload::TensorFlowLike, "lstm", &opts);
        // Short traces for test speed; the full-scale harness uses
        // 200 k+ accesses and lands both models far higher.
        assert!(
            heb.pct_misses_removed > 12.0,
            "hebbian removed {:.1}%",
            heb.pct_misses_removed
        );
        assert!(
            lstm.pct_misses_removed > 12.0,
            "lstm removed {:.1}%",
            lstm.pct_misses_removed
        );
        // The paper's headline: comparable accuracy.
        let ratio = heb.pct_misses_removed / lstm.pct_misses_removed;
        assert!(
            (0.3..3.3).contains(&ratio),
            "hebbian {:.1}% vs lstm {:.1}% not comparable",
            heb.pct_misses_removed,
            lstm.pct_misses_removed
        );
    }

    #[test]
    fn kv_store_defeats_delta_models() {
        let opts = quick_opts();
        let heb = run_app(AppWorkload::KvStoreLike, "hebbian", &opts);
        assert!(
            heb.pct_misses_removed < 15.0,
            "kv-store should be unlearnable: {:.1}%",
            heb.pct_misses_removed
        );
    }

    #[test]
    fn unknown_prefetcher_panics() {
        let result = std::panic::catch_unwind(|| {
            build_prefetcher("nope", 0);
        });
        assert!(result.is_err());
    }
}
