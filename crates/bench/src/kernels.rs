//! The kernel perf harness behind `kernels_bench` and `hnpctl bench`.
//!
//! Times the three kernels on the per-miss path — forward/inference,
//! online training, and autoregressive rollout — at the paper's
//! Table-2 scale ([`HebbianConfig::paper_table2`]) and reports integer
//! nanosecond means as [`KernelsBenchReport`]. The JSON rendering is
//! the `BENCH_kernels.json` artifact (schema in `results/README.md`
//! and DESIGN.md §12): one compact line, integer fields only, so the
//! `hnp_obs::jsonl_u64`-family helpers parse it back.

use serde::Serialize;

use crate::timing::time_ns;
use hnp_hebbian::{HebbianConfig, HebbianNetwork};

/// Rollout depth timed by the harness (the `rollout8_ns` field).
pub const ROLLOUT_STEPS: usize = 8;

/// Iteration counts for one harness run.
#[derive(Debug, Clone, Copy)]
pub struct KernelBenchOpts {
    /// Untimed calls before each timed section.
    pub warmup: usize,
    /// Timed calls per kernel.
    pub iters: usize,
}

impl KernelBenchOpts {
    /// The full-fidelity run (the checked-in `results/` artifact).
    pub fn full() -> Self {
        Self {
            warmup: 200,
            iters: 4000,
        }
    }

    /// A fast run for CI smoke jobs (`hnpctl bench --iters-small`).
    pub fn small() -> Self {
        Self {
            warmup: 20,
            iters: 200,
        }
    }
}

/// One recorded perf point. All latency fields are mean nanoseconds
/// per call, truncated to integers (the workspace's machine-readable
/// outputs are integer-only; see DESIGN.md §9 / §12).
#[derive(Debug, Clone, Serialize)]
pub struct KernelsBenchReport {
    /// Schema version of this artifact (bump on field changes).
    pub schema: u64,
    /// Network scale the kernels ran at.
    pub scale: String,
    /// Integer parameter count of the timed network.
    pub param_count: u64,
    /// Untimed warmup calls per kernel.
    pub warmup: u64,
    /// Timed calls per kernel.
    pub iters: u64,
    /// Mean ns of one inference forward pass
    /// ([`HebbianNetwork::infer_advance`]).
    pub forward_ns: u64,
    /// Mean ns of one online training step
    /// ([`HebbianNetwork::train_step`]).
    pub train_ns: u64,
    /// Mean ns of one [`ROLLOUT_STEPS`]-step autoregressive rollout.
    pub rollout8_ns: u64,
}

impl KernelsBenchReport {
    /// The compact single-line JSON rendering written to
    /// `BENCH_kernels.json`. Falls back to an empty object on a
    /// serializer error (none is reachable for this struct).
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).unwrap_or_else(|_| "{}".into())
    }

    /// Field names every well-formed artifact must carry as bare
    /// integers (consumers validate with `hnp_obs::jsonl_u64`).
    pub fn integer_fields() -> [&'static str; 7] {
        [
            "schema",
            "param_count",
            "warmup",
            "iters",
            "forward_ns",
            "train_ns",
            "rollout8_ns",
        ]
    }
}

/// Runs the harness at paper scale. The network is pre-trained on a
/// short delta cycle so the timed steady state exercises learned
/// weights rather than an all-zero output layer.
pub fn run(opts: KernelBenchOpts) -> KernelsBenchReport {
    let cfg = HebbianConfig::paper_table2();
    let pattern_bits = cfg.pattern_bits as u32;
    let outputs = cfg.outputs;
    let mut net = HebbianNetwork::new(cfg);
    let param_count = net.param_count() as u64;
    for i in 0..256u32 {
        let cur = i % 64;
        net.train_step(&[cur], ((cur + 1) % 64) as usize);
    }

    let mut k = 0u32;
    let train_ns = time_ns(opts.warmup, opts.iters, || {
        k = (k + 1) % 64;
        std::hint::black_box(net.train_step(&[k], ((k + 1) % 64) as usize));
    });
    let mut j = 0u32;
    let forward_ns = time_ns(opts.warmup, opts.iters, || {
        j = (j + 1) % 64;
        std::hint::black_box(net.infer_advance(&[j], ((j + 1) % 64) as usize % outputs));
    });
    let rollout_iters = (opts.iters / ROLLOUT_STEPS).max(1);
    let rollout8_ns = time_ns(opts.warmup / 2, rollout_iters, || {
        std::hint::black_box(net.rollout(&[1], ROLLOUT_STEPS, |t| vec![t as u32 % pattern_bits]));
    });

    KernelsBenchReport {
        schema: 1,
        scale: "paper_table2".into(),
        param_count,
        warmup: opts.warmup as u64,
        iters: opts.iters as u64,
        forward_ns: forward_ns as u64,
        train_ns: train_ns as u64,
        rollout8_ns: rollout8_ns as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hnp_obs::{jsonl_kind, jsonl_u64};

    #[test]
    fn report_round_trips_through_jsonl_helpers() {
        let rep = KernelsBenchReport {
            schema: 1,
            scale: "paper_table2".into(),
            param_count: 49_000,
            warmup: 5,
            iters: 10,
            forward_ns: 1234,
            train_ns: 5678,
            rollout8_ns: 91011,
        };
        let json = rep.to_json();
        assert!(!json.contains('\n'), "artifact must be one line");
        // Not an event stream, so `jsonl_kind` must NOT parse it — but
        // every integer field must come back via `jsonl_u64`.
        assert!(jsonl_kind(&json).is_none());
        assert_eq!(jsonl_u64(&json, "forward_ns"), Some(1234));
        assert_eq!(jsonl_u64(&json, "train_ns"), Some(5678));
        assert_eq!(jsonl_u64(&json, "rollout8_ns"), Some(91011));
        for field in KernelsBenchReport::integer_fields() {
            assert!(jsonl_u64(&json, field).is_some(), "missing {field}");
        }
    }

    #[test]
    fn tiny_run_produces_nonzero_timings() {
        let rep = run(KernelBenchOpts {
            warmup: 1,
            iters: 3,
        });
        assert_eq!(rep.param_count, 49_000);
        assert!(rep.forward_ns > 0 && rep.train_ns > 0 && rep.rollout8_ns > 0);
    }
}
