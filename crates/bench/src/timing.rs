//! Wall-clock micro-timing for the Fig.-2 latency harness.

use std::time::Instant;

/// Times `f` over `iters` calls after `warmup` calls; returns mean
/// nanoseconds per call.
///
/// # Panics
///
/// Panics if `iters == 0`.
pub fn time_ns(warmup: usize, iters: usize, mut f: impl FnMut()) -> f64 {
    assert!(iters > 0, "need at least one iteration");
    for _ in 0..warmup {
        f();
    }
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    start.elapsed().as_nanos() as f64 / iters as f64
}

/// Formats nanoseconds as a human-readable microsecond string.
pub fn fmt_us(ns: f64) -> String {
    format!("{:9.2} us", ns / 1000.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serial multiply-add chain of length `n`; LLVM cannot reduce it
    /// to a closed form (unlike a range sum), so the work is real.
    fn churn(n: u64) -> u64 {
        let mut acc = 0u64;
        for i in 0..std::hint::black_box(n) {
            acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
        }
        acc
    }

    #[test]
    fn timing_scales_with_work() {
        let cheap = time_ns(2, 200, || {
            std::hint::black_box(churn(10));
        });
        let costly = time_ns(2, 200, || {
            std::hint::black_box(churn(100_000));
        });
        assert!(costly > cheap, "costly {costly} vs cheap {cheap}");
    }

    #[test]
    fn fmt_us_renders_microseconds() {
        assert!(fmt_us(1500.0).contains("1.50 us"));
    }
}
