//! Wall-clock micro-timing for the Fig.-2 latency harness.

use std::time::Instant;

/// Times `f` over `iters` calls after `warmup` calls; returns mean
/// nanoseconds per call.
///
/// # Panics
///
/// Panics if `iters == 0`.
pub fn time_ns(warmup: usize, iters: usize, mut f: impl FnMut()) -> f64 {
    assert!(iters > 0, "need at least one iteration");
    for _ in 0..warmup {
        f();
    }
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    start.elapsed().as_nanos() as f64 / iters as f64
}

/// Formats nanoseconds as a human-readable microsecond string.
pub fn fmt_us(ns: f64) -> String {
    format!("{:9.2} us", ns / 1000.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timing_scales_with_work() {
        let cheap = time_ns(2, 50, || {
            std::hint::black_box((0..10u64).sum::<u64>());
        });
        let costly = time_ns(2, 50, || {
            std::hint::black_box((0..100_000u64).sum::<u64>());
        });
        assert!(costly > cheap, "costly {costly} vs cheap {cheap}");
    }

    #[test]
    fn fmt_us_renders_microseconds() {
        assert!(fmt_us(1500.0).contains("1.50 us"));
    }
}
