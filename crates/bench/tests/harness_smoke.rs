//! Smoke tests: every lightweight experiment harness must run to
//! completion with tiny parameters and produce its JSON artifact.
//! (The trace-heavy harnesses — fig3/fig5/sys_* — are exercised via
//! the `hnp-bench` library tests instead; running them as processes
//! at debug-build speed would dominate CI time.)

use std::process::Command;

fn run(bin: &str, args: &[&str]) -> String {
    let out = Command::new(bin)
        .args(args)
        .env(
            "CARGO_TARGET_DIR",
            std::env::var("CARGO_TARGET_DIR").unwrap_or_else(|_| "target".into()),
        )
        .output()
        .unwrap_or_else(|e| panic!("cannot launch {bin}: {e}"));
    assert!(
        out.status.success(),
        "{bin} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8_lossy(&out.stdout).into_owned()
}

#[test]
fn table1_runs_and_lists_all_patterns() {
    let out = run(env!("CARGO_BIN_EXE_table1_patterns"), &["200"]);
    for name in [
        "stride",
        "pointer-chase",
        "indirect-stride",
        "indirect-index",
        "pointer-offset",
    ] {
        assert!(out.contains(name), "missing {name} in:\n{out}");
    }
    assert!(out.contains("[artifact]"));
}

#[test]
fn table2_reports_both_models_and_ratios() {
    let out = run(env!("CARGO_BIN_EXE_table2_resources"), &[]);
    assert!(out.contains("LSTM"));
    assert!(out.contains("Hebbian"));
    assert!(out.contains("ratios:"));
}

#[test]
fn fig2_reports_latency_rows() {
    let out = run(env!("CARGO_BIN_EXE_fig2_latency"), &["2"]);
    assert!(out.contains("lstm-fp32-1t"));
    assert!(out.contains("lstm-int8-1t"));
    assert!(out.contains("hebbian-int-1t"));
    assert!(out.contains("transformer-fp32-1t"));
    assert!(out.contains("lstm-fp32-fused"));
}

#[test]
fn availability_reports_protocol_and_agreement() {
    let out = run(env!("CARGO_BIN_EXE_availability"), &["600"]);
    assert!(out.contains("redeployments"));
    assert!(out.contains("agreement"));
}

#[test]
fn interleaving_reports_all_conditions() {
    let out = run(env!("CARGO_BIN_EXE_interleaving"), &["100"]);
    assert!(out.contains("sequential"));
    assert!(out.contains("interleave-1"));
    assert!(out.contains("interleave-16"));
}
