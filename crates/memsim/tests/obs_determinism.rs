//! The observability determinism contract, pinned.
//!
//! 1. Attaching *any* observer set leaves simulator state bit-identical
//!    to the no-observer run (observers are read-only taps).
//! 2. A counter sink aggregating the event stream reproduces the
//!    `SimReport` numbers exactly (the report *is* an event fold).

use proptest::prelude::*;

use hnp_memsim::{
    EvictionPolicy, MissEvent, PrefetchFeedback, Prefetcher, ResilientConfig, ResilientPrefetcher,
    SimConfig, Simulator,
};
use hnp_obs::{Counters, Event, Histogram, JsonlExporter, Metric, Registry, RingTracer};
use hnp_trace::Pattern;

/// A feedback-sensitive prefetcher: issue width shrinks while recent
/// outcomes are bad. If an observer could perturb the feedback path,
/// this prefetcher's behaviour (and thus the report) would drift.
struct Adaptive {
    width: u64,
    score: i64,
}

impl Adaptive {
    fn new() -> Self {
        Self { width: 4, score: 0 }
    }
}

impl Prefetcher for Adaptive {
    fn name(&self) -> &str {
        "adaptive-test"
    }

    fn on_miss(&mut self, miss: &MissEvent) -> Vec<u64> {
        (1..=self.width).map(|k| miss.page + k).collect()
    }

    fn on_hit(&mut self, _page: u64, _tick: u64) {
        self.score += 1;
    }

    fn on_feedback(&mut self, feedback: &PrefetchFeedback) {
        match feedback {
            PrefetchFeedback::Useful { .. } => self.score += 2,
            _ => self.score -= 1,
        }
        self.width = if self.score < 0 { 1 } else { 4 };
    }
}

fn run(cfg: SimConfig, accesses: usize, seed: u64) -> hnp_memsim::SimReport {
    let trace = Pattern::Stride.generate(accesses, seed);
    Simulator::new(cfg).run(&trace, &mut Adaptive::new())
}

fn report_fingerprint(rep: &hnp_memsim::SimReport) -> String {
    serde_json::to_string(rep).unwrap_or_default()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn observers_never_change_simulator_state(
        capacity in 8usize..64,
        miss_latency in 1u64..200,
        prefetch_latency in 1u64..200,
        max_inflight in 1usize..8,
        max_issue in 1usize..4,
        accesses in 200usize..600,
        seed in 0u64..16,
        attach_counters in any::<bool>(),
        attach_hist in any::<bool>(),
        attach_tracer in any::<bool>(),
        attach_jsonl in any::<bool>(),
    ) {
        let base = SimConfig::default()
            .with_capacity_pages(capacity)
            .with_eviction(EvictionPolicy::Lru)
            .with_miss_latency(miss_latency)
            .with_prefetch_latency(prefetch_latency)
            .with_max_inflight(max_inflight)
            .with_max_issue_per_miss(max_issue);

        let unobserved = run(base.clone(), accesses, seed);

        let reg = Registry::new();
        let counters = Counters::new();
        if attach_counters {
            reg.attach(counters.clone());
        }
        if attach_hist {
            reg.attach(Histogram::exponential(Metric::MissStall, 12));
        }
        if attach_tracer {
            reg.attach(RingTracer::new(32));
        }
        if attach_jsonl {
            reg.attach(JsonlExporter::new());
        }
        let observed = run(base.with_observer(reg), accesses, seed);

        prop_assert_eq!(
            report_fingerprint(&unobserved),
            report_fingerprint(&observed),
            "observer set must not perturb the run"
        );
        if attach_counters {
            prop_assert_eq!(counters.get("hit") as usize, observed.hits);
            prop_assert_eq!(counters.get("miss_full") as usize, observed.full_misses);
            prop_assert_eq!(counters.get("miss_late") as usize, observed.late_prefetch_hits);
            prop_assert_eq!(counters.get("prefetch_issued") as usize, observed.prefetches_issued);
            prop_assert_eq!(counters.get("prefetch_dropped") as usize, observed.prefetches_dropped);
            prop_assert_eq!(counters.get("feedback_useful") as usize, observed.prefetches_useful);
            prop_assert_eq!(counters.get("feedback_unused") as usize, observed.prefetches_unused);
            prop_assert_eq!(counters.get("ticks"), observed.total_ticks);
            prop_assert_eq!(
                counters.get("hit") + counters.get("miss") ,
                observed.accesses as u64
            );
        }
    }
}

#[test]
fn event_stream_ends_with_run_end_totals() {
    let tracer = RingTracer::new(4);
    let reg = Registry::new();
    reg.attach(tracer.clone());
    let cfg = SimConfig::default()
        .with_capacity_pages(32)
        .with_observer(reg);
    let rep = run(cfg, 400, 0);
    let last = tracer.events().pop().expect("events were emitted");
    assert_eq!(
        last,
        Event::RunEnd {
            ticks: rep.total_ticks,
            accesses: rep.accesses as u64,
            hits: rep.hits as u64,
            misses: rep.misses() as u64,
        }
    );
}

#[test]
fn degradation_ladder_transitions_are_observable_and_inert() {
    /// A polluter: always-wrong candidates walk the wrapper down the
    /// ladder.
    struct Polluter;
    impl Prefetcher for Polluter {
        fn name(&self) -> &str {
            "polluter"
        }
        fn on_miss(&mut self, miss: &MissEvent) -> Vec<u64> {
            vec![miss.page + 500_000]
        }
    }

    let trace = Pattern::Stride.generate(3000, 0);
    let sim = Simulator::new(SimConfig::default().with_capacity_pages(32));

    let mut plain = ResilientPrefetcher::with_config(Polluter, ResilientConfig::default());
    let unobserved = sim.run(&trace, &mut plain);

    let reg = Registry::new();
    let tracer = RingTracer::new(256);
    reg.attach(tracer.clone());
    let mut wrapped =
        ResilientPrefetcher::with_config(Polluter, ResilientConfig::default().with_observer(reg));
    let observed = sim.run(&trace, &mut wrapped);

    assert_eq!(
        report_fingerprint(&unobserved),
        report_fingerprint(&observed)
    );
    assert_eq!(plain.stats, wrapped.stats);
    let transitions: Vec<_> = tracer
        .events()
        .into_iter()
        .filter(|e| matches!(e, Event::Degradation { .. }))
        .collect();
    assert_eq!(
        transitions.len() as u64,
        wrapped.stats.transitions,
        "every ladder move must be emitted"
    );
    assert!(
        matches!(
            transitions.first(),
            Some(Event::Degradation {
                from: "healthy",
                ..
            })
        ),
        "first transition leaves Healthy"
    );
}
