//! The simulation driver and its metrics.
//!
//! Reproduces the paper's evaluation loop (§3.1): a trace is replayed
//! against a capacity-bounded memory (sized at a fraction of the
//! trace footprint); every demand miss is reported to the prefetcher,
//! whose predictions are fetched subject to latency and bandwidth
//! limits. "% of misses removed" compares against a no-prefetch
//! baseline run of the same trace.
//!
//! ## Timing model
//!
//! Time advances one tick per access, plus `miss_latency` on a full
//! miss, plus the residual wait on a late prefetch. A prefetch issued
//! at tick `t` becomes resident at `t + prefetch_latency`; a demand
//! for an in-flight page stalls only for the remainder (partial
//! latency hiding). This is what makes §5.2's "a perfect but slow
//! model always prefetches too late" measurable.

use std::collections::BTreeMap;

use serde::Serialize;

use hnp_obs::{Event, FeedbackKind, Registry};
use hnp_trace::Trace;

use crate::checkpoint::CheckpointCursor;
use crate::evict::EvictionPolicy;
use crate::memory::LocalMemory;
use crate::prefetcher::{MissEvent, Prefetcher};

/// Simulator parameters.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Local-memory capacity in pages. The paper sizes this at 50 % of
    /// the trace footprint.
    pub capacity_pages: usize,
    /// Eviction policy.
    pub eviction: EvictionPolicy,
    /// Stall ticks for a full demand miss (remote fetch).
    pub miss_latency: u64,
    /// Ticks for a prefetch to arrive, counted from the miss that
    /// triggered it (the request leaves concurrently with the demand
    /// fetch).
    pub prefetch_latency: u64,
    /// Model-inference ticks added before a prefetch can be issued
    /// (§5.2: if inference is slower than the inter-miss gap, even a
    /// perfect model prefetches too late).
    pub inference_latency: u64,
    /// Maximum outstanding prefetches (link bandwidth proxy).
    pub max_inflight: usize,
    /// Maximum prefetches accepted per miss (prefetch width cap).
    pub max_issue_per_miss: usize,
    /// Observer registry the run emits events into. Empty by default;
    /// an empty registry is a near-free no-op and keeps the run
    /// bit-identical to an unobserved one (determinism contract,
    /// hnp-obs crate docs).
    pub obs: Registry,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            capacity_pages: 1024,
            eviction: EvictionPolicy::Lru,
            miss_latency: 100,
            prefetch_latency: 100,
            inference_latency: 0,
            max_inflight: 16,
            max_issue_per_miss: 4,
            obs: Registry::default(),
        }
    }
}

impl SimConfig {
    /// Sets the local-memory capacity in pages.
    pub fn with_capacity_pages(mut self, pages: usize) -> Self {
        self.capacity_pages = pages;
        self
    }

    /// Sets the eviction policy.
    pub fn with_eviction(mut self, policy: EvictionPolicy) -> Self {
        self.eviction = policy;
        self
    }

    /// Sets the full-miss stall latency.
    pub fn with_miss_latency(mut self, ticks: u64) -> Self {
        self.miss_latency = ticks;
        self
    }

    /// Sets the prefetch arrival latency.
    pub fn with_prefetch_latency(mut self, ticks: u64) -> Self {
        self.prefetch_latency = ticks;
        self
    }

    /// Sets the model-inference latency added before issue.
    pub fn with_inference_latency(mut self, ticks: u64) -> Self {
        self.inference_latency = ticks;
        self
    }

    /// Sets the outstanding-prefetch cap.
    pub fn with_max_inflight(mut self, n: usize) -> Self {
        self.max_inflight = n;
        self
    }

    /// Sets the per-miss issue-width cap.
    pub fn with_max_issue_per_miss(mut self, n: usize) -> Self {
        self.max_issue_per_miss = n;
        self
    }

    /// Attaches an observer registry; the run emits an [`Event`] at
    /// every decision point into it.
    pub fn with_observer(mut self, obs: Registry) -> Self {
        self.obs = obs;
        self
    }

    /// Sizes the memory at `fraction` of `trace`'s footprint (at least
    /// one page), as in the paper's "memory sized at 50 % of the
    /// trace's footprint".
    pub fn sized_to(mut self, trace: &Trace, fraction: f64) -> Self {
        let pages = ((trace.footprint_pages() as f64 * fraction) as usize).max(1);
        self.capacity_pages = pages;
        self
    }
}

/// Counters and derived metrics from one simulation run.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct SimReport {
    /// Prefetcher name.
    pub prefetcher: String,
    /// Total accesses replayed.
    pub accesses: usize,
    /// Demand accesses served from resident pages.
    pub hits: usize,
    /// Full demand misses (page neither resident nor in flight).
    pub full_misses: usize,
    /// Demand accesses that caught an in-flight prefetch (late).
    pub late_prefetch_hits: usize,
    /// Prefetches issued.
    pub prefetches_issued: usize,
    /// Prefetches dropped at the bandwidth cap.
    pub prefetches_dropped: usize,
    /// Prefetched pages demanded while resident (useful).
    pub prefetches_useful: usize,
    /// Prefetched pages evicted untouched (pollution).
    pub prefetches_unused: usize,
    /// Final simulated tick count.
    pub total_ticks: u64,
}

impl SimReport {
    /// Misses as the paper counts them: the page was not resident when
    /// demanded (late prefetches still count as misses).
    pub fn misses(&self) -> usize {
        self.full_misses + self.late_prefetch_hits
    }

    /// Miss rate over all accesses.
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses() as f64 / self.accesses as f64
        }
    }

    /// The Fig.-5 metric: percentage of the baseline's misses that
    /// this run eliminated.
    pub fn pct_misses_removed(&self, baseline: &SimReport) -> f64 {
        if baseline.misses() == 0 {
            0.0
        } else {
            100.0 * (baseline.misses() as f64 - self.misses() as f64) / baseline.misses() as f64
        }
    }

    /// Fraction of issued prefetches that were demanded while resident.
    pub fn accuracy(&self) -> f64 {
        if self.prefetches_issued == 0 {
            0.0
        } else {
            self.prefetches_useful as f64 / self.prefetches_issued as f64
        }
    }

    /// Mean ticks per access (latency proxy; lower is better).
    pub fn avg_access_ticks(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.total_ticks as f64 / self.accesses as f64
        }
    }

    /// Folds one event into the counters. The report is *derived from
    /// the event stream*: the run loop emits events and this is the
    /// only place they become numbers, so any observer aggregating the
    /// same stream (e.g. `hnp_obs::Counters`) reproduces the report
    /// exactly.
    fn apply(&mut self, ev: &Event) {
        match *ev {
            Event::Hit { .. } => {
                self.accesses += 1;
                self.hits += 1;
            }
            Event::Miss { late, .. } => {
                self.accesses += 1;
                if late {
                    self.late_prefetch_hits += 1;
                } else {
                    self.full_misses += 1;
                }
            }
            Event::PrefetchIssued { .. } => self.prefetches_issued += 1,
            Event::PrefetchDropped { .. } => self.prefetches_dropped += 1,
            Event::Feedback { kind, .. } => match kind {
                FeedbackKind::Useful => self.prefetches_useful += 1,
                FeedbackKind::Unused => self.prefetches_unused += 1,
                FeedbackKind::Late | FeedbackKind::Cancelled => {}
            },
            Event::RunEnd { ticks, .. } => self.total_ticks = ticks,
            _ => {}
        }
    }
}

/// The simulator.
pub struct Simulator {
    cfg: SimConfig,
}

impl Simulator {
    /// Creates a simulator with the given configuration.
    ///
    /// # Panics
    ///
    /// Panics on a zero capacity.
    pub fn new(cfg: SimConfig) -> Self {
        assert!(cfg.capacity_pages > 0, "capacity must be positive");
        Self { cfg }
    }

    /// The configuration.
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// Replays `trace` against `prefetcher` and returns the report.
    pub fn run(&self, trace: &Trace, prefetcher: &mut dyn Prefetcher) -> SimReport {
        self.run_with_checkpoints(trace, prefetcher, &[]).0
    }

    /// [`run`](Self::run) that additionally records the cumulative
    /// miss count (full + late) at each access index in `checkpoints`
    /// (ascending). Segment-wise miss counts — e.g. "how many misses
    /// in the phase after a pattern returns" — are differences of
    /// consecutive checkpoints; the §5.4 replay ablation uses this to
    /// measure retention.
    ///
    /// # Panics
    ///
    /// Panics if `checkpoints` is not sorted ascending.
    pub fn run_with_checkpoints(
        &self,
        trace: &Trace,
        prefetcher: &mut dyn Prefetcher,
        checkpoints: &[usize],
    ) -> (SimReport, Vec<usize>) {
        let mut cursor = CheckpointCursor::at(checkpoints.iter().map(|&c| c as u64));
        let mut memory = LocalMemory::new(self.cfg.capacity_pages, self.cfg.eviction);
        // In-flight prefetches: page -> arrival tick.
        let mut inflight: BTreeMap<u64, u64> = BTreeMap::new();
        let mut now: u64 = 0;
        let mut report = SimReport {
            prefetcher: prefetcher.name().to_string(),
            accesses: 0,
            hits: 0,
            full_misses: 0,
            late_prefetch_hits: 0,
            prefetches_issued: 0,
            prefetches_dropped: 0,
            prefetches_useful: 0,
            prefetches_unused: 0,
            total_ticks: 0,
        };
        let shift = trace.page_shift();
        let mut marks = Vec::with_capacity(checkpoints.len());
        let obs = &self.cfg.obs;
        for access in trace.accesses() {
            for _ in 0..cursor.due(report.accesses as u64) {
                marks.push(report.full_misses + report.late_prefetch_hits);
            }
            let page = access.page(shift);
            now += 1;
            // Land arrived prefetches. BTreeMap iterates in page
            // order, so arrival order cannot leak hash randomness
            // into eviction order — determinism.
            if !inflight.is_empty() {
                let arrived: Vec<u64> = inflight
                    .iter()
                    .filter(|&(_, &t)| t <= now)
                    .map(|(&p, _)| p)
                    .collect();
                for p in arrived {
                    inflight.remove(&p);
                    Self::insert_accounting(
                        obs,
                        &mut memory,
                        &mut report,
                        prefetcher,
                        p,
                        true,
                        now,
                    );
                }
            }
            // Demand path.
            if memory.contains(page) {
                let first_touch_of_prefetch = memory
                    .meta(page)
                    .map(|m| m.prefetched && !m.touched)
                    .unwrap_or(false);
                memory.touch(page);
                if first_touch_of_prefetch {
                    dispatch(
                        obs,
                        &mut report,
                        prefetcher,
                        Event::Feedback {
                            tick: now,
                            page,
                            kind: FeedbackKind::Useful,
                            remaining: 0,
                        },
                    );
                }
                dispatch(obs, &mut report, prefetcher, Event::Hit { tick: now, page });
                continue;
            }
            if let Some(&arrival) = inflight.get(&page) {
                // Late prefetch: wait out the remainder.
                let remaining = arrival.saturating_sub(now);
                let miss_tick = now;
                now += remaining;
                inflight.remove(&page);
                dispatch(
                    obs,
                    &mut report,
                    prefetcher,
                    Event::Miss {
                        tick: miss_tick,
                        page,
                        late: true,
                        stall: remaining,
                    },
                );
                dispatch(
                    obs,
                    &mut report,
                    prefetcher,
                    Event::Feedback {
                        tick: miss_tick,
                        page,
                        kind: FeedbackKind::Late,
                        remaining,
                    },
                );
                Self::insert_accounting(obs, &mut memory, &mut report, prefetcher, page, true, now);
                memory.touch(page);
                continue;
            }
            // Full miss. The prefetcher is consulted at miss start so
            // its requests travel concurrently with the demand fetch.
            let miss_start = now;
            now += self.cfg.miss_latency;
            dispatch(
                obs,
                &mut report,
                prefetcher,
                Event::Miss {
                    tick: miss_start,
                    page,
                    late: false,
                    stall: self.cfg.miss_latency,
                },
            );
            Self::insert_accounting(obs, &mut memory, &mut report, prefetcher, page, false, now);
            memory.touch(page);
            let miss = MissEvent {
                page,
                tick: miss_start,
                stream: access.stream,
            };
            let candidates = prefetcher.on_miss(&miss);
            let arrival = miss_start + self.cfg.inference_latency + self.cfg.prefetch_latency;
            let mut accepted = 0usize;
            for cand in candidates {
                if accepted >= self.cfg.max_issue_per_miss {
                    break;
                }
                if memory.contains(cand) || inflight.contains_key(&cand) {
                    continue;
                }
                if inflight.len() >= self.cfg.max_inflight {
                    dispatch(
                        obs,
                        &mut report,
                        prefetcher,
                        Event::PrefetchDropped {
                            tick: miss_start,
                            page: cand,
                        },
                    );
                    continue;
                }
                inflight.insert(cand, arrival);
                dispatch(
                    obs,
                    &mut report,
                    prefetcher,
                    Event::PrefetchIssued {
                        tick: miss_start,
                        page: cand,
                        arrival,
                    },
                );
                accepted += 1;
            }
        }
        for _ in 0..cursor.drain() {
            marks.push(report.full_misses + report.late_prefetch_hits);
        }
        let end = Event::RunEnd {
            ticks: now,
            accesses: report.accesses as u64,
            hits: report.hits as u64,
            misses: (report.full_misses + report.late_prefetch_hits) as u64,
        };
        dispatch(obs, &mut report, prefetcher, end);
        (report, marks)
    }

    /// Inserts a page, accounting for pollution on eviction.
    fn insert_accounting(
        obs: &Registry,
        memory: &mut LocalMemory,
        report: &mut SimReport,
        prefetcher: &mut dyn Prefetcher,
        page: u64,
        prefetched: bool,
        now: u64,
    ) {
        if let Some((victim, meta)) = memory.insert(page, prefetched, now) {
            if meta.prefetched && !meta.touched {
                dispatch(
                    obs,
                    report,
                    prefetcher,
                    Event::Feedback {
                        tick: now,
                        page: victim,
                        kind: FeedbackKind::Unused,
                        remaining: 0,
                    },
                );
            }
        }
    }
}

/// The single event dispatch point: fold the event into the report,
/// notify the prefetcher, fan out to observers — in that order, for
/// every event the run produces.
fn dispatch(obs: &Registry, report: &mut SimReport, prefetcher: &mut dyn Prefetcher, ev: Event) {
    report.apply(&ev);
    prefetcher.on_event(&ev);
    obs.emit(&ev);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prefetcher::NoPrefetcher;
    use hnp_trace::Pattern;

    /// An oracle that always prefetches `page + 1` (perfect for the
    /// +1-stride pattern).
    struct NextLineOracle;

    impl Prefetcher for NextLineOracle {
        fn name(&self) -> &str {
            "next-line-oracle"
        }

        fn on_miss(&mut self, miss: &MissEvent) -> Vec<u64> {
            vec![miss.page + 1, miss.page + 2]
        }
    }

    fn stride_trace() -> Trace {
        // 64-page loop, 2000 accesses; with capacity 32 every access
        // misses under LRU (loop > capacity).
        Pattern::Stride.generate(2000, 0)
    }

    fn small_cfg() -> SimConfig {
        SimConfig {
            capacity_pages: 32,
            miss_latency: 50,
            prefetch_latency: 50,
            max_inflight: 8,
            max_issue_per_miss: 2,
            ..SimConfig::default()
        }
    }

    #[test]
    fn baseline_thrahes_on_oversized_loop() {
        let sim = Simulator::new(small_cfg());
        let rep = sim.run(&stride_trace(), &mut NoPrefetcher);
        assert_eq!(rep.prefetches_issued, 0);
        assert!(
            rep.miss_rate() > 0.95,
            "LRU must thrash on a loop larger than memory, got {}",
            rep.miss_rate()
        );
    }

    #[test]
    fn oracle_removes_most_stride_misses() {
        let sim = Simulator::new(small_cfg());
        let base = sim.run(&stride_trace(), &mut NoPrefetcher);
        let rep = sim.run(&stride_trace(), &mut NextLineOracle);
        let removed = rep.pct_misses_removed(&base);
        assert!(removed > 60.0, "oracle removed only {removed:.1}%");
        assert!(rep.accuracy() > 0.8, "accuracy {}", rep.accuracy());
        assert!(rep.total_ticks < base.total_ticks, "latency must improve");
    }

    #[test]
    fn higher_prefetch_latency_means_more_lateness_fewer_misses_removed() {
        let base = Simulator::new(small_cfg()).run(&stride_trace(), &mut NoPrefetcher);
        let fast = Simulator::new(small_cfg()).run(&stride_trace(), &mut NextLineOracle);
        let mut slow_cfg = small_cfg();
        slow_cfg.prefetch_latency = 2_000;
        let slow = Simulator::new(slow_cfg).run(&stride_trace(), &mut NextLineOracle);
        assert!(
            slow.late_prefetch_hits + slow.full_misses > fast.late_prefetch_hits + fast.full_misses,
            "slow prefetches must miss more: slow {} vs fast {}",
            slow.late_prefetch_hits + slow.full_misses,
            fast.late_prefetch_hits + fast.full_misses
        );
        assert!(
            slow.pct_misses_removed(&base) < fast.pct_misses_removed(&base),
            "slow {:.1}% vs fast {:.1}%",
            slow.pct_misses_removed(&base),
            fast.pct_misses_removed(&base)
        );
    }

    #[test]
    fn inference_latency_degrades_timeliness() {
        // §5.2: with inference slower than the inter-miss gap, the same
        // perfect predictor removes fewer misses.
        let base = Simulator::new(small_cfg()).run(&stride_trace(), &mut NoPrefetcher);
        let fast = Simulator::new(small_cfg()).run(&stride_trace(), &mut NextLineOracle);
        let mut slow_cfg = small_cfg();
        slow_cfg.inference_latency = 500;
        let slow = Simulator::new(slow_cfg).run(&stride_trace(), &mut NextLineOracle);
        assert!(slow.pct_misses_removed(&base) < fast.pct_misses_removed(&base));
    }

    #[test]
    fn bandwidth_cap_drops_excess_prefetches() {
        let mut cfg = small_cfg();
        cfg.max_inflight = 1;
        cfg.prefetch_latency = 1_000; // Keep the slot occupied.
        let sim = Simulator::new(cfg);
        let rep = sim.run(&stride_trace(), &mut NextLineOracle);
        assert!(rep.prefetches_dropped > 0);
        assert!(rep.prefetches_issued < 2 * rep.full_misses);
    }

    #[test]
    fn pollution_is_counted_for_unused_prefetches() {
        /// Prefetches garbage pages far from the working set.
        struct Polluter;
        impl Prefetcher for Polluter {
            fn name(&self) -> &str {
                "polluter"
            }
            fn on_miss(&mut self, miss: &MissEvent) -> Vec<u64> {
                vec![miss.page + 100_000]
            }
        }
        let sim = Simulator::new(small_cfg());
        let base = sim.run(&stride_trace(), &mut NoPrefetcher);
        let rep = sim.run(&stride_trace(), &mut Polluter);
        assert!(rep.prefetches_unused > 0, "pollution must be visible");
        assert_eq!(rep.prefetches_useful, 0);
        // Pollution cannot *remove* misses.
        assert!(rep.pct_misses_removed(&base) <= 0.0 + 1e-9);
    }

    #[test]
    fn reports_are_deterministic() {
        let sim = Simulator::new(small_cfg());
        let a = sim.run(&stride_trace(), &mut NextLineOracle);
        let b = sim.run(&stride_trace(), &mut NextLineOracle);
        assert_eq!(a.full_misses, b.full_misses);
        assert_eq!(a.prefetches_issued, b.prefetches_issued);
        assert_eq!(a.total_ticks, b.total_ticks);
    }

    #[test]
    fn capacity_sizing_helper_uses_footprint() {
        let t = stride_trace();
        let cfg = SimConfig::default().sized_to(&t, 0.5);
        assert_eq!(cfg.capacity_pages, t.footprint_pages() / 2);
    }

    #[test]
    fn within_capacity_loop_has_only_cold_misses() {
        let mut cfg = small_cfg();
        cfg.capacity_pages = 128; // Loop of 64 fits.
        let sim = Simulator::new(cfg);
        let rep = sim.run(&stride_trace(), &mut NoPrefetcher);
        assert_eq!(rep.full_misses, 64, "only cold misses");
        assert_eq!(rep.hits, rep.accesses - 64);
    }

    #[test]
    fn checkpoints_record_cumulative_misses() {
        let sim = Simulator::new(small_cfg());
        let t = stride_trace();
        let (rep, marks) =
            sim.run_with_checkpoints(&t, &mut NoPrefetcher, &[0, 500, 1000, 2000, 9999]);
        assert_eq!(marks.len(), 5);
        assert_eq!(marks[0], 0, "no misses before the first access");
        assert!(marks[1] <= marks[2] && marks[2] <= marks[3], "monotone");
        assert_eq!(marks[3], rep.misses(), "checkpoint at trace end");
        assert_eq!(marks[4], rep.misses(), "past-end checkpoint clamps");
    }

    #[test]
    #[should_panic(expected = "checkpoints must be sorted")]
    fn unsorted_checkpoints_rejected() {
        let sim = Simulator::new(small_cfg());
        let _ = sim.run_with_checkpoints(&stride_trace(), &mut NoPrefetcher, &[10, 5]);
    }

    #[test]
    fn report_metrics_handle_empty_trace() {
        let sim = Simulator::new(small_cfg());
        let rep = sim.run(&Trace::empty(), &mut NoPrefetcher);
        assert_eq!(rep.accesses, 0);
        assert_eq!(rep.miss_rate(), 0.0);
        assert_eq!(rep.avg_access_ticks(), 0.0);
    }
}
