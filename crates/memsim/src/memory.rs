//! The resident-page store: a capacity-bounded local memory.

use std::collections::BTreeMap;

use crate::evict::{EvictionPolicy, Evictor};

/// Metadata kept per resident page for prefetch accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PageMeta {
    /// Whether the page arrived via prefetch (vs. demand fetch).
    pub prefetched: bool,
    /// Whether the page has been demanded since arrival.
    pub touched: bool,
    /// Arrival tick.
    pub arrived: u64,
}

/// A capacity-bounded page memory with a pluggable eviction policy.
pub struct LocalMemory {
    capacity: usize,
    evictor: Box<dyn Evictor>,
    meta: BTreeMap<u64, PageMeta>,
}

impl LocalMemory {
    /// Creates a memory of `capacity` pages with the given policy.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize, policy: EvictionPolicy) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        Self {
            capacity,
            evictor: policy.build(),
            meta: BTreeMap::new(),
        }
    }

    /// Capacity in pages.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Resident page count.
    pub fn len(&self) -> usize {
        self.meta.len()
    }

    /// Whether nothing is resident.
    pub fn is_empty(&self) -> bool {
        self.meta.is_empty()
    }

    /// Whether `page` is resident.
    pub fn contains(&self, page: u64) -> bool {
        self.meta.contains_key(&page)
    }

    /// Metadata of a resident page.
    pub fn meta(&self, page: u64) -> Option<&PageMeta> {
        self.meta.get(&page)
    }

    /// Records a demand access to a resident page; returns `false` if
    /// the page is not resident. Marks prefetched pages as touched
    /// (useful-prefetch accounting).
    pub fn touch(&mut self, page: u64) -> bool {
        match self.meta.get_mut(&page) {
            Some(m) => {
                m.touched = true;
                self.evictor.on_access(page);
                true
            }
            None => false,
        }
    }

    /// Inserts `page`, evicting if full. Returns the evicted page's
    /// number and metadata, if any. Inserting a resident page is a
    /// no-op returning `None`.
    pub fn insert(&mut self, page: u64, prefetched: bool, now: u64) -> Option<(u64, PageMeta)> {
        if self.contains(page) {
            return None;
        }
        let evicted = if self.meta.len() >= self.capacity {
            let victim = self.evictor.evict();
            // The evictor only ever returns resident pages, whose
            // metadata is inserted alongside them.
            let m = self.meta.remove(&victim);
            // hnp-lint: allow(panic_hygiene): evictor/meta stay in lockstep
            let m = m.expect("victim must have metadata");
            Some((victim, m))
        } else {
            None
        };
        self.evictor.on_insert(page);
        self.meta.insert(
            page,
            PageMeta {
                prefetched,
                touched: false,
                arrived: now,
            },
        );
        evicted
    }

    /// Invalidates a page (e.g. remote revocation in the disaggregated
    /// system). Returns its metadata if it was resident.
    pub fn invalidate(&mut self, page: u64) -> Option<PageMeta> {
        self.evictor.remove(page);
        self.meta.remove(&page)
    }

    /// Drops every resident page (a node crash/restart loses local
    /// memory). Capacity and policy survive; contents do not.
    pub fn flush(&mut self) {
        let pages: Vec<u64> = self.meta.keys().copied().collect();
        for page in pages {
            self.evictor.remove(page);
        }
        self.meta.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_until_capacity_then_evict() {
        let mut m = LocalMemory::new(3, EvictionPolicy::Lru);
        assert!(m.insert(1, false, 0).is_none());
        assert!(m.insert(2, false, 1).is_none());
        assert!(m.insert(3, false, 2).is_none());
        assert_eq!(m.len(), 3);
        let (victim, _) = m.insert(4, false, 3).expect("eviction");
        assert_eq!(victim, 1, "LRU victim");
        assert_eq!(m.len(), 3);
        assert!(!m.contains(1) && m.contains(4));
    }

    #[test]
    fn touch_refreshes_lru_order_and_marks_prefetch_used() {
        let mut m = LocalMemory::new(2, EvictionPolicy::Lru);
        m.insert(1, true, 0);
        m.insert(2, false, 1);
        assert!(m.touch(1));
        assert!(m.meta(1).unwrap().touched);
        let (victim, meta) = m.insert(3, false, 2).unwrap();
        assert_eq!(victim, 2, "2 is now least recent");
        assert!(!meta.prefetched);
    }

    #[test]
    fn touch_missing_page_is_false() {
        let mut m = LocalMemory::new(2, EvictionPolicy::Lru);
        assert!(!m.touch(99));
    }

    #[test]
    fn double_insert_is_noop() {
        let mut m = LocalMemory::new(2, EvictionPolicy::Lru);
        m.insert(1, false, 0);
        assert!(m.insert(1, true, 5).is_none());
        // Original metadata is preserved.
        assert!(!m.meta(1).unwrap().prefetched);
    }

    #[test]
    fn invalidate_removes_from_policy_too() {
        let mut m = LocalMemory::new(2, EvictionPolicy::Lru);
        m.insert(1, false, 0);
        m.insert(2, false, 0);
        assert!(m.invalidate(1).is_some());
        assert!(m.invalidate(1).is_none());
        // Room for two more inserts without eviction.
        assert!(m.insert(3, false, 1).is_none());
        let (victim, _) = m.insert(4, false, 2).unwrap();
        assert_eq!(victim, 2);
    }

    #[test]
    fn evicted_metadata_reports_unused_prefetch() {
        let mut m = LocalMemory::new(1, EvictionPolicy::Lru);
        m.insert(1, true, 0);
        let (victim, meta) = m.insert(2, false, 1).unwrap();
        assert_eq!(victim, 1);
        assert!(meta.prefetched && !meta.touched, "pollution case");
    }
}
