//! The bounded delta vocabulary and miss-history window.
//!
//! Learned prefetchers (LSTM and Hebbian alike) predict over a bounded
//! vocabulary of page deltas, as in prior DL prefetching work the
//! paper builds on. Deltas inside `[-range, range]` map to dedicated
//! tokens; everything else maps to a shared out-of-vocabulary token on
//! input and is never predicted as a prefetch (§5.3 discusses the
//! limits of this encoding; the `ablate_encoding` harness sweeps
//! alternatives).

use std::collections::VecDeque;

/// Bidirectional delta <-> token map.
#[derive(Debug, Clone)]
pub struct DeltaVocab {
    range: i64,
}

impl DeltaVocab {
    /// Vocabulary over deltas in `[-range, range]`, excluding 0 (a
    /// repeated page is not a miss under inclusion), plus one
    /// out-of-vocabulary token.
    ///
    /// # Panics
    ///
    /// Panics if `range == 0`.
    pub fn new(range: i64) -> Self {
        assert!(range > 0, "range must be positive");
        Self { range }
    }

    /// Number of tokens (including the OOV token).
    pub fn len(&self) -> usize {
        (2 * self.range + 2) as usize
    }

    /// Never empty.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The out-of-vocabulary token.
    pub fn oov(&self) -> usize {
        (2 * self.range + 1) as usize
    }

    /// Maps a delta to its token (OOV if out of range or zero).
    pub fn token_of(&self, delta: i64) -> usize {
        if delta == 0 || delta.abs() > self.range {
            self.oov()
        } else if delta > 0 {
            // 1..=range -> 0..range-1.
            (delta - 1) as usize
        } else {
            // -1..=-range -> range..2*range-1.
            (self.range - 1 - delta) as usize
        }
    }

    /// Maps a token back to a delta; `None` for the OOV token.
    ///
    /// # Panics
    ///
    /// Panics if `token >= len()`.
    pub fn delta_of(&self, token: usize) -> Option<i64> {
        assert!(token < self.len(), "token {} out of range", token);
        if token == self.oov() {
            None
        } else if (token as i64) < self.range {
            Some(token as i64 + 1)
        } else {
            Some(self.range - 1 - token as i64)
        }
    }
}

/// Translates a multi-step, multi-width token rollout into prefetch
/// pages: the top-1 delta of each step advances a running base page;
/// the additional candidates at each step branch off the pre-step
/// base. An out-of-vocabulary top-1 stops the walk (the model declines
/// to guess further).
///
/// Pages are deduplicated across the *whole* rollout, preserving
/// first-emission order: a multi-step walk over a short cycle (or an
/// alternate that lands on a later top-1 page) would otherwise issue
/// the same prefetch several times, inflating issued-line counts and
/// wasting queue slots downstream. `BTreeSet` keeps the walk
/// deterministic (HNP01).
pub fn pages_from_rollout(vocab: &DeltaVocab, base: u64, rollout: &[Vec<usize>]) -> Vec<u64> {
    let mut out = Vec::new();
    let mut seen = std::collections::BTreeSet::new();
    let mut acc = base as i64;
    for step in rollout {
        let Some(&top) = step.first() else { break };
        let Some(d) = vocab.delta_of(top) else {
            break;
        };
        let next = acc + d;
        if next >= 0 && seen.insert(next as u64) {
            out.push(next as u64);
        }
        for &alt in step.iter().skip(1) {
            if let Some(da) = vocab.delta_of(alt) {
                let p = acc + da;
                if p >= 0 && seen.insert(p as u64) {
                    out.push(p as u64);
                }
            }
        }
        acc = next;
    }
    out
}

/// A sliding window over the recent miss pages, producing delta
/// tokens (the paper's "miss history"; §5.2 discusses sizing it).
#[derive(Debug, Clone)]
pub struct MissHistory {
    pages: VecDeque<u64>,
    window: usize,
}

impl MissHistory {
    /// A history holding up to `window + 1` pages (so `window` deltas).
    ///
    /// # Panics
    ///
    /// Panics if `window == 0`.
    pub fn new(window: usize) -> Self {
        assert!(window > 0, "window must be positive");
        Self {
            pages: VecDeque::with_capacity(window + 1),
            window,
        }
    }

    /// Records a miss page.
    pub fn push(&mut self, page: u64) {
        if self.pages.len() > self.window {
            self.pages.pop_front();
        }
        self.pages.push_back(page);
    }

    /// The most recent miss page.
    pub fn last_page(&self) -> Option<u64> {
        self.pages.back().copied()
    }

    /// The most recent delta (newest pair), if two misses have been
    /// seen.
    pub fn last_delta(&self) -> Option<i64> {
        let n = self.pages.len();
        (n >= 2).then(|| self.pages[n - 1] as i64 - self.pages[n - 2] as i64)
    }

    /// All deltas in the window, oldest first.
    pub fn deltas(&self) -> Vec<i64> {
        self.pages
            .iter()
            .zip(self.pages.iter().skip(1))
            .map(|(&a, &b)| b as i64 - a as i64)
            .collect()
    }

    /// All deltas as tokens under `vocab`, oldest first.
    pub fn tokens(&self, vocab: &DeltaVocab) -> Vec<usize> {
        self.deltas().iter().map(|&d| vocab.token_of(d)).collect()
    }

    /// Clears the history (phase boundary).
    pub fn clear(&mut self) {
        self.pages.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_delta_roundtrip() {
        let v = DeltaVocab::new(64);
        for d in -64i64..=64 {
            if d == 0 {
                continue;
            }
            let t = v.token_of(d);
            assert_eq!(v.delta_of(t), Some(d), "delta {d}");
            assert!(t < v.len());
        }
    }

    #[test]
    fn out_of_range_maps_to_oov() {
        let v = DeltaVocab::new(8);
        assert_eq!(v.token_of(9), v.oov());
        assert_eq!(v.token_of(-100), v.oov());
        assert_eq!(v.token_of(0), v.oov());
        assert_eq!(v.delta_of(v.oov()), None);
    }

    #[test]
    fn tokens_are_distinct_within_range() {
        let v = DeltaVocab::new(16);
        let mut seen = std::collections::HashSet::new();
        for d in -16i64..=16 {
            if d == 0 {
                continue;
            }
            assert!(seen.insert(v.token_of(d)), "token collision for {d}");
        }
    }

    #[test]
    fn vocab_len_matches_token_space() {
        let v = DeltaVocab::new(4);
        // 4 positive + 4 negative + OOV = 9, plus token indexes 0..9.
        assert_eq!(v.len(), 10);
        assert_eq!(v.oov(), 9);
    }

    #[test]
    fn history_produces_windowed_deltas() {
        let mut h = MissHistory::new(3);
        for p in [10u64, 11, 13, 20, 21] {
            h.push(p);
        }
        assert_eq!(h.deltas(), vec![2, 7, 1]);
        assert_eq!(h.last_delta(), Some(1));
        assert_eq!(h.last_page(), Some(21));
    }

    #[test]
    fn history_shorter_than_two_has_no_delta() {
        let mut h = MissHistory::new(4);
        assert_eq!(h.last_delta(), None);
        h.push(5);
        assert_eq!(h.last_delta(), None);
        assert!(h.deltas().is_empty());
    }

    #[test]
    fn clear_resets_history() {
        let mut h = MissHistory::new(2);
        h.push(1);
        h.push(2);
        h.clear();
        assert_eq!(h.last_page(), None);
    }

    #[test]
    fn rollout_walks_and_branches() {
        let v = DeltaVocab::new(8);
        // Step 1: top +2 (page 102), alt +5 (page 105).
        // Step 2 (from 102): top +3 (page 105 — already emitted), alt -1 (101).
        let rollout = vec![
            vec![v.token_of(2), v.token_of(5)],
            vec![v.token_of(3), v.token_of(-1)],
        ];
        assert_eq!(pages_from_rollout(&v, 100, &rollout), vec![102, 105, 101]);
    }

    #[test]
    fn rollout_dedups_pages_across_steps() {
        // Regression: dedup used to compare alternates only against the
        // current step's top-1 page, so a rollout cycling over a short
        // loop (+1, -1, +1, ...) re-emitted earlier pages and the
        // prefetch queue issued duplicate fetches.
        let v = DeltaVocab::new(4);
        let rollout = vec![
            vec![v.token_of(1)],                 // 101
            vec![v.token_of(-1)],                // 100 — base revisited, new emission
            vec![v.token_of(1)],                 // 101 again: suppressed
            vec![v.token_of(2), v.token_of(-1)], // 103; alt 100 suppressed
        ];
        assert_eq!(pages_from_rollout(&v, 100, &rollout), vec![101, 100, 103]);
    }

    #[test]
    fn rollout_stops_at_oov_top1() {
        let v = DeltaVocab::new(4);
        let rollout = vec![
            vec![v.token_of(1)],
            vec![v.oov(), v.token_of(2)], // Model declines; alts ignored too.
            vec![v.token_of(1)],
        ];
        assert_eq!(pages_from_rollout(&v, 50, &rollout), vec![51]);
    }

    #[test]
    fn tokens_use_vocab_mapping() {
        let v = DeltaVocab::new(4);
        let mut h = MissHistory::new(2);
        h.push(100);
        h.push(101); // Delta +1.
        h.push(90); // Delta -11 -> OOV.
        let t = h.tokens(&v);
        assert_eq!(t, vec![v.token_of(1), v.oov()]);
    }
}
