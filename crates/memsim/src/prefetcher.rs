//! The prefetcher interface.
//!
//! Prefetchers consume the demand-miss stream (the paper's Fig.-1
//! deployment: "the prefetcher is fed by the miss history") and emit
//! candidate pages to fetch ahead of demand. Feedback callbacks carry
//! the simulator's accounting so that learned prefetchers can track
//! their own accuracy/confidence (§5.1, §5.5).
//!
//! Since the observability redesign, simulators notify prefetchers
//! through the single [`Prefetcher::on_event`] dispatch point; the
//! per-channel hooks (`on_hit`/`on_feedback`/`on_fault`) remain the
//! implementation surface and are routed to by the default
//! `on_event`.

use hnp_obs::{Event, FeedbackKind};

/// A demand miss delivered to the prefetcher.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MissEvent {
    /// Missing page number.
    pub page: u64,
    /// Simulator tick at which the miss occurred.
    pub tick: u64,
    /// Source stream (for interleaved traces).
    pub stream: u16,
}

/// Outcome feedback for an issued prefetch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PrefetchFeedback {
    /// The prefetched page was demanded while resident.
    Useful {
        /// The page.
        page: u64,
    },
    /// The page was demanded while still in flight (late prefetch).
    Late {
        /// The page.
        page: u64,
        /// Ticks the demand still had to wait.
        remaining: u64,
    },
    /// The page was evicted without ever being demanded (pollution).
    Unused {
        /// The page.
        page: u64,
    },
    /// The prefetch was cancelled in flight by a fault (dropped
    /// transfer, node crash) and never arrived.
    Cancelled {
        /// The page.
        page: u64,
    },
}

/// A memory prefetcher.
///
/// Implementations must be deterministic given their construction
/// seed; the simulator calls them single-threaded.
pub trait Prefetcher {
    /// Short display name for reports.
    fn name(&self) -> &str;

    /// Reacts to a demand miss; returns pages to prefetch, most
    /// confident first. The simulator applies bandwidth limits and
    /// drops duplicates/resident pages.
    fn on_miss(&mut self, miss: &MissEvent) -> Vec<u64>;

    /// Optional: observes demand hits (some baselines train on the
    /// full access stream).
    fn on_hit(&mut self, _page: u64, _tick: u64) {}

    /// Optional: receives prefetch outcome feedback.
    fn on_feedback(&mut self, _feedback: &PrefetchFeedback) {}

    /// Drops transient per-run state (stream histories, recurrent
    /// state, pending confidence) while keeping learned weights.
    /// Called when the node hosting the prefetcher restarts; the
    /// default is a no-op for stateless prefetchers.
    fn reset_state(&mut self) {}

    /// Notifies the prefetcher that a fault hit its node at `tick`
    /// (crash/restart). The default drops transient state via
    /// [`Prefetcher::reset_state`].
    fn on_fault(&mut self, _tick: u64) {
        self.reset_state();
    }

    /// The unified notification entry point: simulators deliver every
    /// observable occurrence through this one dispatch method instead
    /// of calling the per-channel hooks at scattered sites. The
    /// default routes [`Event::Hit`], [`Event::Feedback`], and
    /// [`Event::Fault`] to the legacy hooks and ignores everything
    /// else, so existing implementations keep working unchanged.
    fn on_event(&mut self, ev: &Event) {
        match *ev {
            Event::Hit { tick, page } => self.on_hit(page, tick),
            Event::Feedback {
                page,
                kind,
                remaining,
                ..
            } => {
                let fb = match kind {
                    FeedbackKind::Useful => PrefetchFeedback::Useful { page },
                    FeedbackKind::Late => PrefetchFeedback::Late { page, remaining },
                    FeedbackKind::Unused => PrefetchFeedback::Unused { page },
                    FeedbackKind::Cancelled => PrefetchFeedback::Cancelled { page },
                };
                self.on_feedback(&fb);
            }
            Event::Fault { tick, .. } => self.on_fault(tick),
            _ => {}
        }
    }
}

/// Boxed prefetchers forward the trait, so wrappers generic over
/// `P: Prefetcher` (e.g. `ResilientPrefetcher`) compose with dynamic
/// dispatch.
impl Prefetcher for Box<dyn Prefetcher> {
    fn name(&self) -> &str {
        (**self).name()
    }

    fn on_miss(&mut self, miss: &MissEvent) -> Vec<u64> {
        (**self).on_miss(miss)
    }

    fn on_hit(&mut self, page: u64, tick: u64) {
        (**self).on_hit(page, tick)
    }

    fn on_feedback(&mut self, feedback: &PrefetchFeedback) {
        (**self).on_feedback(feedback)
    }

    fn reset_state(&mut self) {
        (**self).reset_state()
    }

    fn on_fault(&mut self, tick: u64) {
        (**self).on_fault(tick)
    }

    fn on_event(&mut self, ev: &Event) {
        (**self).on_event(ev)
    }
}

/// Routes each stream's misses to a private sub-prefetcher built on
/// demand.
///
/// A centralized prefetcher (the UVM driver, or a shared model at a
/// disaggregated switch) sees all nodes' access streams interleaved;
/// §4 of the paper notes it "may require more processing to ensure
/// that it can isolate the individual access patterns in the combined
/// access streams". This wrapper is the straightforward isolation: one
/// model instance per stream, centrally placed — trading the switch's
/// memory for per-stream pattern fidelity.
pub struct DemuxPrefetcher {
    make: Box<dyn FnMut(u16) -> Box<dyn Prefetcher>>,
    subs: std::collections::BTreeMap<u16, Box<dyn Prefetcher>>,
    name: String,
}

impl DemuxPrefetcher {
    /// Creates a demultiplexer; `make` builds the sub-prefetcher for
    /// each new stream id.
    pub fn new(name: &str, make: impl FnMut(u16) -> Box<dyn Prefetcher> + 'static) -> Self {
        Self {
            make: Box::new(make),
            subs: std::collections::BTreeMap::new(),
            name: format!("demux({name})"),
        }
    }

    /// Number of stream-private sub-prefetchers instantiated so far.
    pub fn streams(&self) -> usize {
        self.subs.len()
    }
}

impl Prefetcher for DemuxPrefetcher {
    fn name(&self) -> &str {
        &self.name
    }

    fn on_miss(&mut self, miss: &MissEvent) -> Vec<u64> {
        let sub = self
            .subs
            .entry(miss.stream)
            .or_insert_with(|| (self.make)(miss.stream));
        sub.on_miss(miss)
    }

    fn reset_state(&mut self) {
        for sub in self.subs.values_mut() {
            sub.reset_state();
        }
    }
}

/// The no-op baseline: never prefetches. Runs establish the
/// miss baseline against which "% misses removed" (Fig. 5) is
/// computed.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoPrefetcher;

impl Prefetcher for NoPrefetcher {
    fn name(&self) -> &str {
        "none"
    }

    fn on_miss(&mut self, _miss: &MissEvent) -> Vec<u64> {
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_prefetcher_returns_nothing() {
        let mut p = NoPrefetcher;
        let miss = MissEvent {
            page: 42,
            tick: 0,
            stream: 0,
        };
        assert!(p.on_miss(&miss).is_empty());
        assert_eq!(p.name(), "none");
    }

    /// A next-line sub-prefetcher that also counts its misses.
    struct Counting(u64);
    impl Prefetcher for Counting {
        fn name(&self) -> &str {
            "counting"
        }
        fn on_miss(&mut self, miss: &MissEvent) -> Vec<u64> {
            self.0 += 1;
            vec![miss.page + 1]
        }
    }

    #[test]
    fn demux_builds_one_sub_per_stream_and_routes() {
        let mut d = DemuxPrefetcher::new("counting", |_| Box::new(Counting(0)));
        for (page, stream) in [(10u64, 0u16), (20, 1), (11, 0), (30, 2)] {
            let out = d.on_miss(&MissEvent {
                page,
                tick: 0,
                stream,
            });
            assert_eq!(out, vec![page + 1]);
        }
        assert_eq!(d.streams(), 3);
        assert_eq!(d.name(), "demux(counting)");
    }
}
