//! Graceful degradation for learned prefetchers.
//!
//! A learned model trained on the fair-weather miss stream keeps
//! issuing confident-but-wrong prefetches when the system underneath
//! it degrades — and under a degraded link every wasted prefetch
//! competes with demand traffic. [`ResilientPrefetcher`] wraps any
//! [`Prefetcher`] with a watchdog that tracks the wrapped model's
//! recent outcome accuracy and walks a health ladder:
//!
//! ```text
//! Healthy ──▶ Throttled ──▶ Fallback ──▶ Disabled
//!    ◀─────────  (hysteresis-gated recovery)  ◀──┘
//! ```
//!
//! * **Healthy** — the inner model's candidates pass through.
//! * **Throttled** — candidates are capped at a reduced issue width.
//! * **Fallback** — the inner model is benched; a cheap stride
//!   heuristic covers the regular part of the workload while the
//!   inner model keeps training and is probed periodically.
//! * **Disabled** — nothing is issued; after a cooldown the wrapper
//!   re-enters Fallback and tries again.
//!
//! Downward transitions are immediate (a misbehaving model is pulled
//! fast); upward transitions require several consecutive good
//! evaluation windows (hysteresis), so the wrapper does not flap at a
//! threshold boundary.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use hnp_obs::{Event, Registry};
use serde::Serialize;

use crate::prefetcher::{MissEvent, PrefetchFeedback, Prefetcher};

/// Watchdog parameters for [`ResilientPrefetcher`].
#[derive(Debug, Clone)]
pub struct ResilientConfig {
    /// Outcome-window length per source (inner / fallback).
    pub window: usize,
    /// Minimum outcomes in a window before it is judged.
    pub min_observations: usize,
    /// Healthy → Throttled when inner accuracy drops below this.
    pub throttle_below: f64,
    /// → Fallback when inner accuracy drops below this.
    pub fallback_below: f64,
    /// Fallback → Disabled when even stride accuracy drops below this
    /// (the access stream itself is hostile — stop prefetching).
    pub disable_below: f64,
    /// Accuracy required for an upward step.
    pub recover_above: f64,
    /// Consecutive good evaluations required for an upward step.
    pub hysteresis: u32,
    /// Feedback events between evaluations.
    pub eval_period: usize,
    /// Candidate cap while Throttled.
    pub throttled_max_issue: usize,
    /// Misses to sit out while Disabled before retrying Fallback.
    pub disabled_cooldown: usize,
    /// In Fallback, every `probe_period`-th miss also issues the inner
    /// model's top candidate to measure whether it has recovered.
    pub probe_period: usize,
    /// Cap on remembered issued-page attributions.
    pub track_limit: usize,
    /// Observer registry ladder transitions are emitted into
    /// ([`Event::Degradation`]). Empty by default.
    pub obs: Registry,
}

impl Default for ResilientConfig {
    fn default() -> Self {
        Self {
            window: 64,
            min_observations: 16,
            throttle_below: 0.45,
            fallback_below: 0.25,
            disable_below: 0.10,
            recover_above: 0.60,
            hysteresis: 2,
            eval_period: 8,
            throttled_max_issue: 1,
            disabled_cooldown: 64,
            probe_period: 16,
            track_limit: 4096,
            obs: Registry::default(),
        }
    }
}

impl ResilientConfig {
    /// Sets the outcome-window length.
    pub fn with_window(mut self, window: usize) -> Self {
        self.window = window;
        self
    }

    /// Sets the feedback count between watchdog evaluations.
    pub fn with_eval_period(mut self, period: usize) -> Self {
        self.eval_period = period;
        self
    }

    /// Sets the consecutive good evaluations required to recover.
    pub fn with_hysteresis(mut self, evals: u32) -> Self {
        self.hysteresis = evals;
        self
    }

    /// Attaches an observer registry; ladder transitions are emitted
    /// as [`Event::Degradation`].
    pub fn with_observer(mut self, obs: Registry) -> Self {
        self.obs = obs;
        self
    }
}

/// The wrapper's position on the degradation ladder.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum HealthState {
    /// Inner model passes through untouched.
    Healthy,
    /// Inner model capped at a reduced issue width.
    Throttled,
    /// Inner model benched; stride fallback issues, inner is probed.
    Fallback,
    /// No prefetches at all; waiting out a cooldown.
    Disabled,
}

impl HealthState {
    /// Stable lowercase label (used in JSON reports).
    pub fn label(self) -> &'static str {
        match self {
            HealthState::Healthy => "healthy",
            HealthState::Throttled => "throttled",
            HealthState::Fallback => "fallback",
            HealthState::Disabled => "disabled",
        }
    }
}

impl serde::Serialize for HealthState {
    fn to_value(&self) -> serde::Value {
        self.label().to_string().to_value()
    }
}

/// What the watchdog did over a run (for reports).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct ResilienceStats {
    /// State transitions taken.
    pub transitions: u64,
    /// Misses observed while Healthy.
    pub misses_healthy: u64,
    /// Misses observed while Throttled.
    pub misses_throttled: u64,
    /// Misses observed while Fallback.
    pub misses_fallback: u64,
    /// Misses observed while Disabled.
    pub misses_disabled: u64,
    /// Fault notifications received.
    pub faults_seen: u64,
}

/// Which issuer a tracked prefetch came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Source {
    Inner,
    Fallback,
}

/// A bounded sliding window of prefetch outcomes.
#[derive(Debug, Default)]
struct OutcomeWindow {
    outcomes: VecDeque<bool>,
    cap: usize,
}

impl OutcomeWindow {
    fn new(cap: usize) -> Self {
        Self {
            outcomes: VecDeque::with_capacity(cap),
            cap,
        }
    }

    fn push(&mut self, good: bool) {
        if self.outcomes.len() == self.cap {
            self.outcomes.pop_front();
        }
        self.outcomes.push_back(good);
    }

    fn len(&self) -> usize {
        self.outcomes.len()
    }

    fn accuracy(&self) -> f64 {
        if self.outcomes.is_empty() {
            return 0.0;
        }
        self.outcomes.iter().filter(|&&g| g).count() as f64 / self.outcomes.len() as f64
    }

    fn clear(&mut self) {
        self.outcomes.clear();
    }
}

/// Per-stream state for the built-in stride fallback (a deliberately
/// boring heuristic: two confirmations of the same delta, then issue
/// the next two pages along it).
#[derive(Debug, Default, Clone, Copy)]
struct StrideState {
    last_page: Option<u64>,
    delta: i64,
    streak: u32,
}

impl StrideState {
    fn observe(&mut self, page: u64) -> Vec<u64> {
        let mut out = Vec::new();
        if let Some(last) = self.last_page {
            let d = page as i64 - last as i64;
            if d != 0 && d == self.delta {
                self.streak += 1;
            } else {
                self.delta = d;
                self.streak = u32::from(d != 0);
            }
            if self.streak >= 2 {
                for k in 1..=2i64 {
                    let cand = page as i64 + self.delta * k;
                    if cand >= 0 {
                        out.push(cand as u64);
                    }
                }
            }
        }
        self.last_page = Some(page);
        out
    }
}

/// Wraps any [`Prefetcher`] with fault-aware graceful degradation.
pub struct ResilientPrefetcher<P: Prefetcher> {
    inner: P,
    cfg: ResilientConfig,
    name: String,
    state: HealthState,
    /// Outcome windows indexed by source: [inner, fallback].
    windows: [OutcomeWindow; 2],
    /// Inner-probe outcomes while in Fallback.
    probe_window: OutcomeWindow,
    /// Issued page → source, bounded FIFO.
    issued: BTreeMap<u64, Source>,
    issue_order: VecDeque<u64>,
    /// Pages issued as Fallback-mode probes of the inner model.
    probes: BTreeSet<u64>,
    stride: BTreeMap<u16, StrideState>,
    feedback_seen: usize,
    good_evals: u32,
    misses_since_disable: usize,
    misses_since_probe: usize,
    /// What-happened counters.
    pub stats: ResilienceStats,
}

impl<P: Prefetcher> ResilientPrefetcher<P> {
    /// Wraps `inner` with the default watchdog config.
    pub fn new(inner: P) -> Self {
        Self::with_config(inner, ResilientConfig::default())
    }

    /// Wraps `inner` with an explicit config.
    pub fn with_config(inner: P, cfg: ResilientConfig) -> Self {
        let name = format!("resilient({})", inner.name());
        Self {
            inner,
            name,
            state: HealthState::Healthy,
            windows: [
                OutcomeWindow::new(cfg.window),
                OutcomeWindow::new(cfg.window),
            ],
            probe_window: OutcomeWindow::new(cfg.window.max(8) / 2),
            issued: BTreeMap::new(),
            issue_order: VecDeque::new(),
            probes: BTreeSet::new(),
            stride: BTreeMap::new(),
            feedback_seen: 0,
            good_evals: 0,
            misses_since_disable: 0,
            misses_since_probe: 0,
            stats: ResilienceStats::default(),
            cfg,
        }
    }

    /// Current ladder position.
    pub fn state(&self) -> HealthState {
        self.state
    }

    /// The wrapped prefetcher.
    pub fn inner(&self) -> &P {
        &self.inner
    }

    /// Mutable access to the wrapped prefetcher — the serving layer's
    /// snapshot/restore path reaches the model state through this.
    /// Health accounting is untouched; callers mutating model state
    /// should leave the feedback stream to the wrapper.
    pub fn inner_mut(&mut self) -> &mut P {
        &mut self.inner
    }

    fn transition(&mut self, to: HealthState) {
        if to == self.state {
            return;
        }
        self.cfg.obs.emit(&Event::Degradation {
            at: self.feedback_seen as u64,
            from: self.state.label(),
            to: to.label(),
        });
        self.state = to;
        self.stats.transitions += 1;
        self.good_evals = 0;
        self.windows[0].clear();
        self.windows[1].clear();
        self.probe_window.clear();
        self.misses_since_disable = 0;
        self.misses_since_probe = 0;
    }

    fn track(&mut self, page: u64, source: Source, probe: bool) {
        if self.issued.len() >= self.cfg.track_limit {
            if let Some(old) = self.issue_order.pop_front() {
                self.issued.remove(&old);
                self.probes.remove(&old);
            }
        }
        if self.issued.insert(page, source).is_none() {
            self.issue_order.push_back(page);
        }
        if probe {
            self.probes.insert(page);
        }
    }

    /// Applies the state machine after a feedback batch.
    fn evaluate(&mut self) {
        if !self.feedback_seen.is_multiple_of(self.cfg.eval_period) {
            return;
        }
        match self.state {
            HealthState::Healthy | HealthState::Throttled => {
                let w = &self.windows[Source::Inner as usize];
                if w.len() < self.cfg.min_observations {
                    return;
                }
                let acc = w.accuracy();
                if acc < self.cfg.fallback_below {
                    self.transition(HealthState::Fallback);
                } else if acc < self.cfg.throttle_below {
                    // Within Throttled this resets recovery credit
                    // rather than transitioning again.
                    self.good_evals = 0;
                    self.transition(HealthState::Throttled);
                } else if self.state == HealthState::Throttled && acc >= self.cfg.recover_above {
                    self.good_evals += 1;
                    if self.good_evals >= self.cfg.hysteresis {
                        self.transition(HealthState::Healthy);
                    }
                } else {
                    self.good_evals = 0;
                }
            }
            HealthState::Fallback => {
                let fw = &self.windows[Source::Fallback as usize];
                if fw.len() >= self.cfg.min_observations && fw.accuracy() < self.cfg.disable_below {
                    self.transition(HealthState::Disabled);
                    return;
                }
                // Recovery is judged on the probe stream only: the
                // benched model must prove itself before being
                // re-trusted.
                if self.probe_window.len() >= self.cfg.min_observations / 2
                    && self.probe_window.accuracy() >= self.cfg.recover_above
                {
                    self.good_evals += 1;
                    if self.good_evals >= self.cfg.hysteresis {
                        self.transition(HealthState::Throttled);
                    }
                } else {
                    self.good_evals = 0;
                }
            }
            HealthState::Disabled => {}
        }
    }
}

impl<P: Prefetcher> Prefetcher for ResilientPrefetcher<P> {
    fn name(&self) -> &str {
        &self.name
    }

    fn on_miss(&mut self, miss: &MissEvent) -> Vec<u64> {
        match self.state {
            HealthState::Healthy => self.stats.misses_healthy += 1,
            HealthState::Throttled => self.stats.misses_throttled += 1,
            HealthState::Fallback => self.stats.misses_fallback += 1,
            HealthState::Disabled => self.stats.misses_disabled += 1,
        }
        // The inner model always sees the miss stream (it keeps
        // training even while benched); the stride tracker likewise.
        let inner_out = self.inner.on_miss(miss);
        let stride_out = self
            .stride
            .entry(miss.stream)
            .or_default()
            .observe(miss.page);
        match self.state {
            HealthState::Healthy => {
                for &p in &inner_out {
                    self.track(p, Source::Inner, false);
                }
                inner_out
            }
            HealthState::Throttled => {
                let capped: Vec<u64> = inner_out
                    .into_iter()
                    .take(self.cfg.throttled_max_issue)
                    .collect();
                for &p in &capped {
                    self.track(p, Source::Inner, false);
                }
                capped
            }
            HealthState::Fallback => {
                let mut out = stride_out;
                for &p in &out {
                    self.track(p, Source::Fallback, false);
                }
                self.misses_since_probe += 1;
                if self.misses_since_probe >= self.cfg.probe_period {
                    self.misses_since_probe = 0;
                    if let Some(&probe) = inner_out.first() {
                        if !out.contains(&probe) {
                            self.track(probe, Source::Inner, true);
                            out.push(probe);
                        }
                    }
                }
                out
            }
            HealthState::Disabled => {
                self.misses_since_disable += 1;
                if self.misses_since_disable >= self.cfg.disabled_cooldown {
                    self.transition(HealthState::Fallback);
                }
                Vec::new()
            }
        }
    }

    fn on_hit(&mut self, page: u64, tick: u64) {
        self.inner.on_hit(page, tick);
    }

    fn on_feedback(&mut self, feedback: &PrefetchFeedback) {
        let (page, good) = match *feedback {
            PrefetchFeedback::Useful { page } => (page, true),
            PrefetchFeedback::Late { page, .. } => (page, false),
            PrefetchFeedback::Unused { page } => (page, false),
            PrefetchFeedback::Cancelled { page } => (page, false),
        };
        if let Some(source) = self.issued.remove(&page) {
            let probe = self.probes.remove(&page);
            if probe {
                self.probe_window.push(good);
            } else {
                self.windows[source as usize].push(good);
            }
            // The inner model only hears about its own prefetches:
            // fallback outcomes would corrupt its self-assessment.
            if source == Source::Inner {
                self.inner.on_feedback(feedback);
            }
            self.feedback_seen += 1;
            self.evaluate();
        } else {
            // Untracked (evicted from the FIFO): still the inner
            // model's business if it is the active issuer.
            if self.state == HealthState::Healthy || self.state == HealthState::Throttled {
                self.inner.on_feedback(feedback);
            }
        }
    }

    fn reset_state(&mut self) {
        self.inner.reset_state();
        self.windows[0].clear();
        self.windows[1].clear();
        self.probe_window.clear();
        self.issued.clear();
        self.issue_order.clear();
        self.probes.clear();
        self.stride.clear();
        self.good_evals = 0;
        self.misses_since_disable = 0;
        self.misses_since_probe = 0;
    }

    fn on_fault(&mut self, tick: u64) {
        self.stats.faults_seen += 1;
        self.inner.on_fault(tick);
        // A restart invalidates the accuracy windows along with the
        // attribution maps: they describe the pre-fault model, and the
        // inner model just lost its transient state.
        let demote = self.state == HealthState::Healthy;
        self.reset_state();
        if demote {
            // A restarted node's model predicts from cold state; start
            // it back up cautiously.
            self.transition(HealthState::Throttled);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Issues `page + 1`; name for reports.
    struct NextLine;
    impl Prefetcher for NextLine {
        fn name(&self) -> &str {
            "next-line"
        }
        fn on_miss(&mut self, miss: &MissEvent) -> Vec<u64> {
            vec![miss.page + 1]
        }
    }

    fn miss(page: u64, tick: u64) -> MissEvent {
        MissEvent {
            page,
            tick,
            stream: 0,
        }
    }

    fn quick_cfg() -> ResilientConfig {
        ResilientConfig {
            window: 16,
            min_observations: 8,
            eval_period: 4,
            hysteresis: 2,
            disabled_cooldown: 8,
            probe_period: 4,
            ..ResilientConfig::default()
        }
    }

    /// Feeds `n` outcomes for pages the wrapper just issued.
    fn drive(p: &mut ResilientPrefetcher<NextLine>, n: usize, good: bool, tick0: &mut u64) {
        for _ in 0..n {
            let out = p.on_miss(&miss(*tick0 * 10, *tick0));
            *tick0 += 1;
            for page in out {
                let fb = if good {
                    PrefetchFeedback::Useful { page }
                } else {
                    PrefetchFeedback::Unused { page }
                };
                p.on_feedback(&fb);
            }
        }
    }

    #[test]
    fn healthy_passes_through_and_stays_healthy() {
        let mut p = ResilientPrefetcher::with_config(NextLine, quick_cfg());
        assert_eq!(p.name(), "resilient(next-line)");
        let mut t = 1;
        drive(&mut p, 40, true, &mut t);
        assert_eq!(p.state(), HealthState::Healthy);
        assert_eq!(p.stats.transitions, 0);
        let out = p.on_miss(&miss(7, 999));
        assert_eq!(out, vec![8], "healthy = inner verbatim");
    }

    #[test]
    fn sustained_pollution_walks_down_to_fallback() {
        let mut p = ResilientPrefetcher::with_config(NextLine, quick_cfg());
        let mut t = 1;
        drive(&mut p, 60, false, &mut t);
        assert_eq!(p.state(), HealthState::Fallback);
        assert!(p.stats.transitions >= 1);
    }

    #[test]
    fn fallback_issues_strides_not_inner() {
        let mut p = ResilientPrefetcher::with_config(NextLine, quick_cfg());
        let mut t = 1;
        drive(&mut p, 60, false, &mut t);
        assert_eq!(p.state(), HealthState::Fallback);
        // A clean stride stream: fallback must issue along the delta.
        let mut got_stride = false;
        for k in 0..8u64 {
            let out = p.on_miss(&miss(1000 + 4 * k, 5000 + k));
            if out.contains(&(1000 + 4 * k + 4)) {
                got_stride = true;
            }
            // Never the raw inner candidate stream (page+1), except a
            // periodic tagged probe.
            assert!(out.len() <= 3);
        }
        assert!(got_stride, "stride fallback kicks in on regular streams");
    }

    #[test]
    fn recovery_requires_hysteresis() {
        let cfg = quick_cfg();
        let mut p = ResilientPrefetcher::with_config(NextLine, cfg);
        let mut t = 1;
        // Down to Throttled: mix of good/bad below throttle_below but
        // above fallback_below (~35% good).
        for k in 0..60usize {
            let out = p.on_miss(&miss(t * 10, t));
            t += 1;
            for page in out {
                let fb = if k % 3 == 0 {
                    PrefetchFeedback::Useful { page }
                } else {
                    PrefetchFeedback::Unused { page }
                };
                p.on_feedback(&fb);
            }
        }
        assert_eq!(p.state(), HealthState::Throttled);
        let transitions_before = p.stats.transitions;
        // One good evaluation window is not enough (hysteresis = 2)...
        drive(&mut p, 8, true, &mut t);
        assert_eq!(p.state(), HealthState::Throttled);
        // ...sustained goodness is.
        drive(&mut p, 40, true, &mut t);
        assert_eq!(p.state(), HealthState::Healthy);
        assert_eq!(p.stats.transitions, transitions_before + 1);
    }

    #[test]
    fn hostile_stream_disables_then_cooldown_reenters_fallback() {
        let mut p = ResilientPrefetcher::with_config(NextLine, quick_cfg());
        let mut t = 1;
        drive(&mut p, 60, false, &mut t);
        assert_eq!(p.state(), HealthState::Fallback);
        // Strided misses so the fallback issues — then poison every
        // outcome so even the fallback looks useless.
        for k in 0..80u64 {
            let out = p.on_miss(&miss(10_000 + 4 * k, t));
            t += 1;
            for page in out {
                p.on_feedback(&PrefetchFeedback::Unused { page });
            }
            if p.state() == HealthState::Disabled {
                break;
            }
        }
        assert_eq!(p.state(), HealthState::Disabled);
        // Disabled issues nothing, then re-enters Fallback after the
        // cooldown.
        for k in 0..8u64 {
            let out = p.on_miss(&miss(50_000 + k, t));
            t += 1;
            assert!(out.is_empty(), "disabled must stay silent");
        }
        assert_eq!(p.state(), HealthState::Fallback);
    }

    #[test]
    fn on_fault_resets_and_demotes_healthy() {
        let mut p = ResilientPrefetcher::with_config(NextLine, quick_cfg());
        let mut t = 1;
        drive(&mut p, 20, true, &mut t);
        assert_eq!(p.state(), HealthState::Healthy);
        p.on_fault(12345);
        assert_eq!(
            p.state(),
            HealthState::Throttled,
            "cold restart is cautious"
        );
        assert_eq!(p.stats.faults_seen, 1);
        // Degraded states are not promoted by a fault.
        drive(&mut p, 60, false, &mut t);
        let state = p.state();
        p.on_fault(23456);
        assert_eq!(p.state(), state);
    }

    #[test]
    fn cancelled_feedback_counts_against_the_model() {
        let mut p = ResilientPrefetcher::with_config(NextLine, quick_cfg());
        for t in 1..=60u64 {
            let out = p.on_miss(&miss(t * 10, t));
            for page in out {
                p.on_feedback(&PrefetchFeedback::Cancelled { page });
            }
            if p.state() != HealthState::Healthy {
                break;
            }
        }
        assert_ne!(
            p.state(),
            HealthState::Healthy,
            "a fault-cancelled prefetch stream must degrade the wrapper"
        );
    }

    #[test]
    fn throttled_caps_issue_width() {
        struct Wide;
        impl Prefetcher for Wide {
            fn name(&self) -> &str {
                "wide"
            }
            fn on_miss(&mut self, miss: &MissEvent) -> Vec<u64> {
                (1..=8).map(|k| miss.page + k).collect()
            }
        }
        let mut p = ResilientPrefetcher::with_config(Wide, quick_cfg());
        let mut t = 1u64;
        // Degrade to Throttled with ~1/3 accuracy.
        for k in 0..60usize {
            let out = p.on_miss(&miss(t * 100, t));
            t += 1;
            for page in out {
                let fb = if k % 3 == 0 {
                    PrefetchFeedback::Useful { page }
                } else {
                    PrefetchFeedback::Unused { page }
                };
                p.on_feedback(&fb);
            }
            if p.state() == HealthState::Throttled {
                break;
            }
        }
        assert_eq!(p.state(), HealthState::Throttled);
        let out = p.on_miss(&miss(9_999_999, t));
        assert_eq!(out.len(), 1, "throttled = reduced issue width");
    }
}
