//! Page-granular memory-hierarchy simulator.
//!
//! This crate provides the substrate on which every prefetcher in the
//! HNP project is evaluated, mirroring the paper's Fig.-1 deployment:
//! a local memory holds a bounded set of pages; the miss stream feeds
//! a [`prefetcher::Prefetcher`]; predicted pages are
//! fetched ahead of demand subject to latency and bandwidth limits.
//!
//! * [`evict`] — LRU / FIFO / CLOCK / random residency policies;
//! * [`memory`] — the resident-page store;
//! * [`prefetcher`] — the prefetcher interface and feedback events;
//! * [`deltas`] — the bounded delta vocabulary and miss-history
//!   window shared by the learned prefetchers;
//! * [`sim`] — the driver loop and metrics (misses removed, accuracy,
//!   coverage, timeliness, pollution).
//!
//! The driver emits a typed `hnp_obs::Event` at every decision point
//! into the registry configured via
//! [`SimConfig::with_observer`](sim::SimConfig::with_observer); the
//! report itself is derived from that event stream, and an empty
//! registry keeps runs bit-identical to unobserved ones.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checkpoint;
pub mod deltas;
pub mod evict;
pub mod memory;
pub mod prefetcher;
pub mod resilient;
pub mod sim;

pub use checkpoint::CheckpointCursor;
pub use deltas::{DeltaVocab, MissHistory};
pub use evict::EvictionPolicy;
pub use prefetcher::PrefetchFeedback;
pub use prefetcher::{DemuxPrefetcher, MissEvent, NoPrefetcher, Prefetcher};
pub use resilient::{HealthState, ResilienceStats, ResilientConfig, ResilientPrefetcher};
pub use sim::{SimConfig, SimReport, Simulator};
