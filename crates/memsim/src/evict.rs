//! Residency/eviction policies.
//!
//! Each policy tracks the resident page set and picks a victim when
//! the memory is full. LRU is the reference policy (the paper's
//! simulations use a plain capacity-bounded memory); FIFO, CLOCK and
//! random exist for sensitivity studies.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Selects an eviction policy implementation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvictionPolicy {
    /// Least-recently-used.
    Lru,
    /// First-in-first-out.
    Fifo,
    /// CLOCK (second chance).
    Clock,
    /// Uniform random victim, seeded.
    Random(u64),
}

impl EvictionPolicy {
    /// Instantiates the policy.
    pub fn build(self) -> Box<dyn Evictor> {
        match self {
            EvictionPolicy::Lru => Box::new(Lru::new()),
            EvictionPolicy::Fifo => Box::new(Fifo::new()),
            EvictionPolicy::Clock => Box::new(Clock::new()),
            EvictionPolicy::Random(seed) => Box::new(RandomEvict::new(seed)),
        }
    }
}

/// The policy interface: tracks residents, answers victim queries.
pub trait Evictor: Send {
    /// Registers a newly inserted page.
    ///
    /// # Panics
    ///
    /// Implementations may panic if the page is already resident.
    fn on_insert(&mut self, page: u64);
    /// Notes an access to a resident page.
    fn on_access(&mut self, page: u64);
    /// Picks and removes the victim page.
    ///
    /// # Panics
    ///
    /// Panics if no page is resident.
    fn evict(&mut self) -> u64;
    /// Removes a specific page (e.g. invalidation).
    fn remove(&mut self, page: u64);
    /// Whether `page` is resident.
    fn contains(&self, page: u64) -> bool;
    /// Number of resident pages.
    fn len(&self) -> usize;
    /// Whether nothing is resident.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// O(1) LRU via an arena-backed doubly linked list.
struct Lru {
    /// `page -> arena slot`.
    map: BTreeMap<u64, usize>,
    /// Arena of list nodes: `(page, prev, next)`; `usize::MAX` = none.
    nodes: Vec<(u64, usize, usize)>,
    free: Vec<usize>,
    head: usize, // Most recent.
    tail: usize, // Least recent.
}

const NONE: usize = usize::MAX;

impl Lru {
    fn new() -> Self {
        Self {
            map: BTreeMap::new(),
            nodes: Vec::new(),
            free: Vec::new(),
            head: NONE,
            tail: NONE,
        }
    }

    fn unlink(&mut self, i: usize) {
        let (_, prev, next) = self.nodes[i];
        if prev != NONE {
            self.nodes[prev].2 = next;
        } else {
            self.head = next;
        }
        if next != NONE {
            self.nodes[next].1 = prev;
        } else {
            self.tail = prev;
        }
    }

    fn push_front(&mut self, i: usize) {
        self.nodes[i].1 = NONE;
        self.nodes[i].2 = self.head;
        if self.head != NONE {
            self.nodes[self.head].1 = i;
        }
        self.head = i;
        if self.tail == NONE {
            self.tail = i;
        }
    }
}

impl Evictor for Lru {
    fn on_insert(&mut self, page: u64) {
        assert!(
            !self.map.contains_key(&page),
            "page {page:#x} already resident"
        );
        let i = if let Some(i) = self.free.pop() {
            self.nodes[i] = (page, NONE, NONE);
            i
        } else {
            self.nodes.push((page, NONE, NONE));
            self.nodes.len() - 1
        };
        self.map.insert(page, i);
        self.push_front(i);
    }

    fn on_access(&mut self, page: u64) {
        if let Some(&i) = self.map.get(&page) {
            if self.head != i {
                self.unlink(i);
                self.push_front(i);
            }
        }
    }

    fn evict(&mut self) -> u64 {
        assert!(self.tail != NONE, "evict from empty memory");
        let i = self.tail;
        let page = self.nodes[i].0;
        self.unlink(i);
        self.free.push(i);
        self.map.remove(&page);
        page
    }

    fn remove(&mut self, page: u64) {
        if let Some(i) = self.map.remove(&page) {
            self.unlink(i);
            self.free.push(i);
        }
    }

    fn contains(&self, page: u64) -> bool {
        self.map.contains_key(&page)
    }

    fn len(&self) -> usize {
        self.map.len()
    }
}

/// FIFO: eviction order is insertion order; accesses don't matter.
struct Fifo {
    queue: VecDeque<u64>,
    resident: BTreeSet<u64>,
}

impl Fifo {
    fn new() -> Self {
        Self {
            queue: VecDeque::new(),
            resident: BTreeSet::new(),
        }
    }
}

impl Evictor for Fifo {
    fn on_insert(&mut self, page: u64) {
        assert!(
            self.resident.insert(page),
            "page {page:#x} already resident"
        );
        self.queue.push_back(page);
    }

    fn on_access(&mut self, _page: u64) {}

    fn evict(&mut self) -> u64 {
        loop {
            // Documented trait contract: evict() panics when empty.
            // hnp-lint: allow(panic_hygiene): trait-level panic contract
            let page = self.queue.pop_front().expect("evict from empty memory");
            // Entries removed via `remove` may linger in the queue;
            // skip them lazily.
            if self.resident.remove(&page) {
                return page;
            }
        }
    }

    fn remove(&mut self, page: u64) {
        self.resident.remove(&page);
    }

    fn contains(&self, page: u64) -> bool {
        self.resident.contains(&page)
    }

    fn len(&self) -> usize {
        self.resident.len()
    }
}

/// CLOCK / second chance.
struct Clock {
    slots: Vec<Option<(u64, bool)>>, // (page, referenced).
    index: BTreeMap<u64, usize>,
    hand: usize,
    free: Vec<usize>,
}

impl Clock {
    fn new() -> Self {
        Self {
            slots: Vec::new(),
            index: BTreeMap::new(),
            hand: 0,
            free: Vec::new(),
        }
    }
}

impl Evictor for Clock {
    fn on_insert(&mut self, page: u64) {
        assert!(
            !self.index.contains_key(&page),
            "page {page:#x} already resident"
        );
        let slot = if let Some(s) = self.free.pop() {
            self.slots[s] = Some((page, true));
            s
        } else {
            self.slots.push(Some((page, true)));
            self.slots.len() - 1
        };
        self.index.insert(page, slot);
    }

    fn on_access(&mut self, page: u64) {
        if let Some(&s) = self.index.get(&page) {
            if let Some(entry) = &mut self.slots[s] {
                entry.1 = true;
            }
        }
    }

    fn evict(&mut self) -> u64 {
        assert!(!self.index.is_empty(), "evict from empty memory");
        loop {
            if self.hand >= self.slots.len() {
                self.hand = 0;
            }
            let h = self.hand;
            self.hand += 1;
            if let Some((page, referenced)) = &mut self.slots[h] {
                if *referenced {
                    *referenced = false;
                } else {
                    let victim = *page;
                    self.slots[h] = None;
                    self.free.push(h);
                    self.index.remove(&victim);
                    return victim;
                }
            }
        }
    }

    fn remove(&mut self, page: u64) {
        if let Some(s) = self.index.remove(&page) {
            self.slots[s] = None;
            self.free.push(s);
        }
    }

    fn contains(&self, page: u64) -> bool {
        self.index.contains_key(&page)
    }

    fn len(&self) -> usize {
        self.index.len()
    }
}

/// Random victim selection.
struct RandomEvict {
    pages: Vec<u64>,
    index: BTreeMap<u64, usize>,
    rng: StdRng,
}

impl RandomEvict {
    fn new(seed: u64) -> Self {
        Self {
            pages: Vec::new(),
            index: BTreeMap::new(),
            rng: StdRng::seed_from_u64(seed),
        }
    }

    fn swap_remove_at(&mut self, i: usize) -> u64 {
        let page = self.pages.swap_remove(i);
        self.index.remove(&page);
        if i < self.pages.len() {
            let moved = self.pages[i];
            self.index.insert(moved, i);
        }
        page
    }
}

impl Evictor for RandomEvict {
    fn on_insert(&mut self, page: u64) {
        assert!(
            !self.index.contains_key(&page),
            "page {page:#x} already resident"
        );
        self.index.insert(page, self.pages.len());
        self.pages.push(page);
    }

    fn on_access(&mut self, _page: u64) {}

    fn evict(&mut self) -> u64 {
        assert!(!self.pages.is_empty(), "evict from empty memory");
        let i = self.rng.gen_range(0..self.pages.len());
        self.swap_remove_at(i)
    }

    fn remove(&mut self, page: u64) {
        if let Some(&i) = self.index.get(&page) {
            self.swap_remove_at(i);
        }
    }

    fn contains(&self, page: u64) -> bool {
        self.index.contains_key(&page)
    }

    fn len(&self) -> usize {
        self.pages.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policies() -> Vec<(&'static str, Box<dyn Evictor>)> {
        vec![
            ("lru", EvictionPolicy::Lru.build()),
            ("fifo", EvictionPolicy::Fifo.build()),
            ("clock", EvictionPolicy::Clock.build()),
            ("random", EvictionPolicy::Random(1).build()),
        ]
    }

    #[test]
    fn insert_contains_len_for_all_policies() {
        for (name, mut e) in policies() {
            e.on_insert(10);
            e.on_insert(20);
            assert!(e.contains(10) && e.contains(20), "{name}");
            assert_eq!(e.len(), 2, "{name}");
            e.remove(10);
            assert!(!e.contains(10), "{name}");
            assert_eq!(e.len(), 1, "{name}");
        }
    }

    #[test]
    fn evict_empties_everything() {
        for (name, mut e) in policies() {
            for p in 0..50u64 {
                e.on_insert(p);
            }
            let mut victims = std::collections::HashSet::new();
            for _ in 0..50 {
                victims.insert(e.evict());
            }
            assert_eq!(victims.len(), 50, "{name}: distinct victims");
            assert!(e.is_empty(), "{name}");
        }
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut e = EvictionPolicy::Lru.build();
        e.on_insert(1);
        e.on_insert(2);
        e.on_insert(3);
        e.on_access(1); // Order now (recent->old): 1, 3, 2.
        assert_eq!(e.evict(), 2);
        assert_eq!(e.evict(), 3);
        assert_eq!(e.evict(), 1);
    }

    #[test]
    fn fifo_ignores_accesses() {
        let mut e = EvictionPolicy::Fifo.build();
        e.on_insert(1);
        e.on_insert(2);
        e.on_access(1);
        assert_eq!(e.evict(), 1);
    }

    #[test]
    fn clock_gives_second_chance() {
        let mut e = EvictionPolicy::Clock.build();
        e.on_insert(1);
        e.on_insert(2);
        // Both referenced; first sweep clears bits, second evicts 1.
        assert_eq!(e.evict(), 1);
        // 2's bit was cleared during the sweep.
        e.on_access(2);
        e.on_insert(3);
        // 2 referenced again, 3 referenced on insert: sweep clears both
        // then evicts 2 (hand position after previous eviction).
        let v = e.evict();
        assert!(v == 2 || v == 3);
    }

    #[test]
    fn fifo_remove_then_evict_skips_stale_entries() {
        let mut e = EvictionPolicy::Fifo.build();
        e.on_insert(1);
        e.on_insert(2);
        e.remove(1);
        assert_eq!(e.evict(), 2);
    }

    #[test]
    #[should_panic(expected = "already resident")]
    fn double_insert_panics() {
        let mut e = EvictionPolicy::Lru.build();
        e.on_insert(5);
        e.on_insert(5);
    }

    #[test]
    fn lru_reuses_freed_arena_slots() {
        let mut e = EvictionPolicy::Lru.build();
        for round in 0..10u64 {
            for p in 0..100u64 {
                e.on_insert(round * 1000 + p);
            }
            for _ in 0..100 {
                e.evict();
            }
        }
        assert!(e.is_empty());
    }
}
