//! Checkpoint scheduling shared by the simulator and the serving
//! engine.
//!
//! Two drivers need "is a checkpoint due at position `p`?" math:
//! [`Simulator::run_with_checkpoints`](crate::sim::Simulator::run_with_checkpoints)
//! walks an explicit ascending list of access counts, and the
//! `hnp-serve` epoch loop snapshots tenants every N epochs. Both go
//! through [`CheckpointCursor`] so the advance/drain logic exists
//! exactly once.

/// A monotone cursor over a checkpoint schedule.
///
/// Feed it non-decreasing positions via
/// [`due`](CheckpointCursor::due); it reports how many scheduled
/// checkpoints fire at each position and never revisits one.
#[derive(Debug, Clone)]
pub struct CheckpointCursor {
    sched: Sched,
}

#[derive(Debug, Clone)]
enum Sched {
    /// Explicit ascending positions, e.g. "mark misses at accesses
    /// 1000, 2000, 5000".
    At { points: Vec<u64>, next: usize },
    /// A fixed cadence: due at `interval`, `2*interval`, … A zero
    /// interval never fires.
    Every { interval: u64, next_at: u64 },
}

impl CheckpointCursor {
    /// A cursor over an explicit checkpoint list.
    ///
    /// # Panics
    ///
    /// Panics if `points` is not sorted ascending.
    pub fn at(points: impl IntoIterator<Item = u64>) -> Self {
        let points: Vec<u64> = points.into_iter().collect();
        assert!(
            points.windows(2).all(|w| w[0] <= w[1]),
            "checkpoints must be sorted"
        );
        Self {
            sched: Sched::At { points, next: 0 },
        }
    }

    /// A cursor firing every `interval` positions (first at
    /// `interval`). `interval == 0` disables the schedule.
    pub fn every(interval: u64) -> Self {
        Self {
            sched: Sched::Every {
                interval,
                next_at: interval,
            },
        }
    }

    /// Number of checkpoints that become due at position `pos`,
    /// advancing past them. Positions must be fed non-decreasing.
    pub fn due(&mut self, pos: u64) -> usize {
        match &mut self.sched {
            Sched::At { points, next } => {
                let mut fired = 0;
                while *next < points.len() && pos >= points[*next] {
                    *next += 1;
                    fired += 1;
                }
                fired
            }
            Sched::Every { interval, next_at } => {
                if *interval == 0 {
                    return 0;
                }
                let mut fired = 0;
                while pos >= *next_at {
                    *next_at += *interval;
                    fired += 1;
                }
                fired
            }
        }
    }

    /// Remaining scheduled checkpoints past the end of the run: the
    /// unvisited tail of an explicit list (an interval schedule has no
    /// finite tail and drains to zero). Consumes the tail.
    pub fn drain(&mut self) -> usize {
        match &mut self.sched {
            Sched::At { points, next } => {
                let rest = points.len() - *next;
                *next = points.len();
                rest
            }
            Sched::Every { .. } => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn explicit_list_fires_in_order_and_drains() {
        let mut c = CheckpointCursor::at([10, 10, 25]);
        assert_eq!(c.due(5), 0);
        assert_eq!(c.due(10), 2, "duplicate checkpoints both fire");
        assert_eq!(c.due(11), 0);
        assert_eq!(c.drain(), 1, "unreached tail drains at end of run");
        assert_eq!(c.drain(), 0);
    }

    #[test]
    fn interval_fires_every_n_and_catches_up() {
        let mut c = CheckpointCursor::every(4);
        assert_eq!(c.due(3), 0);
        assert_eq!(c.due(4), 1);
        assert_eq!(c.due(5), 0);
        assert_eq!(c.due(12), 2, "skipped positions fire retroactively");
        assert_eq!(c.drain(), 0);
    }

    #[test]
    fn zero_interval_never_fires() {
        let mut c = CheckpointCursor::every(0);
        assert_eq!(c.due(1_000_000), 0);
        assert_eq!(c.drain(), 0);
    }

    #[test]
    #[should_panic(expected = "checkpoints must be sorted")]
    fn unsorted_list_panics() {
        let _ = CheckpointCursor::at([5, 3]);
    }
}
