//! Proof that each rule family actually fires: one fixture file per
//! rule (under `tests/fixtures/`) that must trip it, plus pragma
//! suppression semantics and layering back-edge detection at the
//! manifest level.

use hnp_lint::rules::Rule;
use hnp_lint::workspace::{check_manifest_of, check_source};

fn count(findings: &[hnp_lint::Finding], rule: Rule, suppressed: bool) -> usize {
    findings
        .iter()
        .filter(|f| f.rule == rule && f.suppressed == suppressed)
        .count()
}

#[test]
fn determinism_fixture_trips_hnp01() {
    let findings = check_source(
        "hnp-memsim",
        "fixtures/determinism.rs",
        include_str!("fixtures/determinism.rs"),
    );
    // Instant (x2: use + path + call), HashMap (x2), thread_rng,
    // HashSet — at least one finding per construct kind.
    let det = count(&findings, Rule::Determinism, false);
    assert!(det >= 6, "expected >= 6 determinism findings, got {det}");
    for needle in ["Instant", "HashMap", "HashSet", "thread_rng"] {
        assert!(
            findings.iter().any(|f| f.message.contains(needle)),
            "no finding mentions {needle}"
        );
    }
}

#[test]
fn determinism_rule_only_applies_to_critical_crates() {
    let findings = check_source(
        "hnp-trace",
        "fixtures/determinism.rs",
        include_str!("fixtures/determinism.rs"),
    );
    assert_eq!(count(&findings, Rule::Determinism, false), 0);
}

#[test]
fn panic_hygiene_fixture_trips_hnp03_outside_tests_only() {
    let findings = check_source(
        "hnp-core",
        "fixtures/panic_hygiene.rs",
        include_str!("fixtures/panic_hygiene.rs"),
    );
    // unwrap, expect, panic!, unreachable! — and nothing from the
    // #[cfg(test)] module or from unwrap_or.
    assert_eq!(count(&findings, Rule::PanicHygiene, false), 4);
    assert!(findings.iter().all(|f| f.line < 23), "test-mod leak");
}

#[test]
fn panic_hygiene_does_not_apply_to_binaries() {
    let findings = check_source(
        "hnp-cli",
        "fixtures/panic_hygiene.rs",
        include_str!("fixtures/panic_hygiene.rs"),
    );
    assert_eq!(count(&findings, Rule::PanicHygiene, false), 0);
}

#[test]
fn integer_purity_fixture_trips_hnp04() {
    let findings = check_source(
        "hnp-hebbian",
        "fixtures/integer_purity.rs",
        include_str!("fixtures/integer_purity.rs"),
    );
    let n = count(&findings, Rule::IntegerPurity, false);
    // f32 (type + cast), f64 (x3), 0.5, 8.0, 2.0 literals.
    assert!(n >= 6, "expected >= 6 purity findings, got {n}");
    // The integer fixed-point variant must be clean.
    assert!(
        !findings.iter().any(|f| (15..=17).contains(&f.line)),
        "fine_integer must not trip"
    );
}

#[test]
fn integer_purity_only_applies_to_hebbian() {
    let findings = check_source(
        "hnp-core",
        "fixtures/integer_purity.rs",
        include_str!("fixtures/integer_purity.rs"),
    );
    assert_eq!(count(&findings, Rule::IntegerPurity, false), 0);
}

#[test]
fn layering_fixture_trips_hnp02_in_source() {
    let findings = check_source(
        "hnp-memsim",
        "fixtures/layering.rs",
        include_str!("fixtures/layering.rs"),
    );
    let backs = count(&findings, Rule::Layering, false);
    assert_eq!(backs, 2, "hnp_systems and hnp_core are back-edges");
    assert!(
        !findings.iter().any(|f| f.message.contains("hnp-trace")),
        "downward reference must be fine"
    );
}

#[test]
fn layering_manifest_back_edge_fails() {
    // A back-edge like the acceptance criterion's example: a low layer
    // depending on a higher one.
    let findings = check_manifest_of("hnp-memsim", &["hnp-trace", "hnp-core"], &[]);
    assert_eq!(findings.len(), 1);
    assert!(findings[0].message.contains("back-edge"));
    // Same-layer edges are back-edges too (keeps the graph acyclic).
    let findings = check_manifest_of("hnp-core", &["hnp-baselines"], &[]);
    assert_eq!(findings.len(), 1);
    // The real edges are clean.
    let findings = check_manifest_of(
        "hnp-systems",
        &["hnp-core", "hnp-baselines", "hnp-memsim", "hnp-trace"],
        &["hnp-trace"],
    );
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn layering_flags_unmapped_crates() {
    let findings = check_manifest_of("hnp-mystery", &[], &[]);
    assert_eq!(findings.len(), 1);
    assert!(findings[0].message.contains("no layer assignment"));
}

#[test]
fn pragma_fixture_suppresses_two_of_three() {
    let findings = check_source(
        "hnp-core",
        "fixtures/pragmas.rs",
        include_str!("fixtures/pragmas.rs"),
    );
    assert_eq!(count(&findings, Rule::PanicHygiene, true), 2);
    assert_eq!(count(&findings, Rule::PanicHygiene, false), 1);
}
