//! HNP03 fixture: library-crate code full of panic paths. The test
//! module at the bottom must NOT produce findings.

fn bad_option(x: Option<u32>) -> u32 {
    x.unwrap()
}

fn bad_result(x: Result<u32, ()>) -> u32 {
    x.expect("must be ok")
}

fn bad_macros(flag: bool) {
    if flag {
        panic!("boom");
    }
    unreachable!();
}

fn fine(x: Option<u32>) -> u32 {
    // unwrap_or is a distinct identifier, not `.unwrap()`.
    x.unwrap_or(0)
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwraps_in_tests_are_allowed() {
        let v: Option<u32> = Some(3);
        assert_eq!(v.unwrap(), 3);
        let r: Result<u32, ()> = Ok(4);
        assert_eq!(r.expect("ok"), 4);
    }
}
