//! Pragma fixture: each violation below carries a suppression; the
//! final one does not and must remain visible.

fn suppressed_same_line(x: Option<u32>) -> u32 {
    x.unwrap() // hnp-lint: allow(panic_hygiene): fixture contract
}

fn suppressed_line_above(x: Option<u32>) -> u32 {
    // hnp-lint: allow(panic_hygiene): fixture contract
    x.unwrap()
}

fn not_suppressed(x: Option<u32>) -> u32 {
    x.unwrap()
}
