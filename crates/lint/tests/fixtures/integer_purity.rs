//! HNP04 fixture: float arithmetic in Hebbian weight-update code.

fn bad_scaled_step(step: i16, scale: f32) -> i16 {
    (step as f32 * scale).round() as i16
}

fn bad_literal() -> i64 {
    (0.5 * 8.0) as i64
}

fn bad_double(x: f64) -> f64 {
    x * 2.0
}

fn fine_integer(step: i16, scale_q24: u32) -> i16 {
    ((step as i64 * scale_q24 as i64) >> 24) as i16
}

#[cfg(test)]
mod tests {
    #[test]
    fn float_asserts_in_tests_are_allowed() {
        assert!((1.5f32 * 2.0) > 2.9);
    }
}
