//! HNP02 fixture: a low-layer crate reaching upward in source. When
//! checked as `hnp-memsim` (layer 1), the `hnp_systems` (layer 3) and
//! `hnp_core` (layer 2) references below are back-edges; `hnp_trace`
//! (layer 0) is fine.

use hnp_trace::Trace;

fn back_edge_use() {
    let _ = hnp_systems::disagg::noop();
    let _ = hnp_core::cls::noop();
}

fn fine(t: &Trace) -> usize {
    t.len()
}
