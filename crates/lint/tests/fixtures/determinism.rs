//! HNP01 fixture: every line here must trip the determinism rule when
//! checked as part of a determinism-critical crate.
use std::collections::HashMap;
use std::time::Instant;

fn bad_clock() -> std::time::Instant {
    Instant::now()
}

fn bad_seed() -> u64 {
    let mut rng = rand::thread_rng();
    rng.gen()
}

fn bad_state() {
    let scores: HashMap<u64, u64> = HashMap::new();
    for (k, v) in &scores {
        // Hash order reaches simulator state here.
        let _ = (k, v);
    }
    let seen = std::collections::HashSet::new();
    let _ = seen.insert(1u64);
}
