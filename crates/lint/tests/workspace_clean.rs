//! The workspace gate: tier-1 `cargo test` fails if any crate picks up
//! an unsuppressed invariant violation — a wall-clock read in a
//! simulator, a hash-ordered map in state, a layering back-edge (e.g.
//! `memsim` importing `core`), a stray `unwrap()` in library code, or
//! float arithmetic in the Hebbian substrate.

use std::path::Path;

#[test]
fn workspace_has_no_unsuppressed_findings() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/lint is two levels below the workspace root")
        .to_path_buf();
    let report = hnp_lint::check_workspace(&root).expect("lint engine must run");
    assert!(
        report.files_scanned > 50,
        "suspiciously few files scanned ({}) — workspace discovery broke",
        report.files_scanned
    );
    let violations: Vec<String> = report
        .unsuppressed()
        .map(|f| {
            format!(
                "{}:{}: [{} {}] {}",
                f.file,
                f.line,
                f.rule.id(),
                f.rule.name(),
                f.message
            )
        })
        .collect();
    assert!(
        violations.is_empty(),
        "hnp-lint found {} unsuppressed violation(s):\n{}",
        violations.len(),
        violations.join("\n")
    );
}
