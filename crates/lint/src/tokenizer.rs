//! A lightweight Rust tokenizer — just enough lexical fidelity for the
//! invariant rules.
//!
//! The lexer understands everything that could make a naive textual
//! scan lie about source code: line comments, (nested) block comments,
//! string/char/byte literals, raw strings with arbitrary `#` fences,
//! lifetimes vs. char literals, and numeric literals (so float
//! arithmetic is distinguishable from integer arithmetic). It does
//! *not* parse Rust — rules work on the token stream plus a
//! `#[cfg(test)]` span map (see [`test_spans`]).
//!
//! Suppression pragmas (`// hnp-lint: allow(<rule>)`) are extracted
//! during lexing from comment bodies, so they survive in places a
//! token stream would drop them.

/// Token classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword.
    Ident,
    /// Single punctuation character.
    Punct,
    /// Integer literal (any radix).
    IntLit,
    /// Float literal (`1.0`, `1e3`, `2f32`, …).
    FloatLit,
    /// String or byte-string literal (raw or not), contents dropped.
    StrLit,
    /// Char literal.
    CharLit,
    /// Lifetime (`'a`).
    Lifetime,
}

/// One lexed token.
#[derive(Debug, Clone)]
pub struct Tok {
    /// Classification.
    pub kind: TokKind,
    /// Source text (empty for string literals — rules never need the
    /// contents, and dropping them avoids accidental matches).
    pub text: String,
    /// 1-based source line.
    pub line: u32,
}

impl Tok {
    /// True if this token is the identifier `name`.
    pub fn is_ident(&self, name: &str) -> bool {
        self.kind == TokKind::Ident && self.text == name
    }

    /// True if this token is the punctuation `ch`.
    pub fn is_punct(&self, ch: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == 1 && self.text.as_bytes()[0] == ch as u8
    }
}

/// A suppression pragma found in a comment.
#[derive(Debug, Clone)]
pub struct Suppression {
    /// 1-based line the pragma appears on.
    pub line: u32,
    /// Rule names listed in `allow(...)`.
    pub rules: Vec<String>,
    /// `allow-file(...)` form: suppresses the whole file.
    pub whole_file: bool,
}

/// Lexer output: the token stream plus extracted pragmas.
#[derive(Debug, Default)]
pub struct LexOutput {
    /// Tokens in source order.
    pub tokens: Vec<Tok>,
    /// Suppression pragmas in source order.
    pub suppressions: Vec<Suppression>,
}

/// Lexes `src` into tokens and pragmas. Unterminated constructs are
/// tolerated (the remainder is consumed) — a linter must never panic
/// on the code it inspects.
pub fn lex(src: &str) -> LexOutput {
    let b = src.as_bytes();
    let mut out = LexOutput::default();
    let mut i = 0usize;
    let mut line = 1u32;
    while i < b.len() {
        let c = b[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_ascii_whitespace() => i += 1,
            b'/' if i + 1 < b.len() && b[i + 1] == b'/' => {
                let start = i + 2;
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
                scan_pragma(&src[start..i], line, &mut out.suppressions);
            }
            b'/' if i + 1 < b.len() && b[i + 1] == b'*' => {
                let start = i + 2;
                let mut depth = 1usize;
                let comment_line = line;
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
                        depth += 1;
                        i += 2;
                    } else if b[i] == b'*' && i + 1 < b.len() && b[i + 1] == b'/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        if b[i] == b'\n' {
                            line += 1;
                        }
                        i += 1;
                    }
                }
                let end = i.saturating_sub(2).max(start);
                scan_pragma(&src[start..end], comment_line, &mut out.suppressions);
            }
            b'"' => {
                i = consume_string(b, i + 1, &mut line);
                out.tokens.push(Tok {
                    kind: TokKind::StrLit,
                    text: String::new(),
                    line,
                });
            }
            b'\'' => {
                // Lifetime or char literal. A lifetime is `'` + ident
                // with no closing quote right after the first char.
                let is_lifetime = i + 1 < b.len()
                    && (b[i + 1].is_ascii_alphabetic() || b[i + 1] == b'_')
                    && !(i + 2 < b.len() && b[i + 2] == b'\'');
                if is_lifetime {
                    let start = i + 1;
                    i += 1;
                    while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                        i += 1;
                    }
                    out.tokens.push(Tok {
                        kind: TokKind::Lifetime,
                        text: src[start..i].to_string(),
                        line,
                    });
                } else {
                    i += 1;
                    if i < b.len() && b[i] == b'\\' {
                        i += 2; // Skip the escape head; tail consumed below.
                    }
                    while i < b.len() && b[i] != b'\'' && b[i] != b'\n' {
                        i += 1;
                    }
                    if i < b.len() && b[i] == b'\'' {
                        i += 1;
                    }
                    out.tokens.push(Tok {
                        kind: TokKind::CharLit,
                        text: String::new(),
                        line,
                    });
                }
            }
            c if c.is_ascii_digit() => {
                let (ni, kind) = consume_number(b, i, src);
                out.tokens.push(Tok {
                    kind,
                    text: src[i..ni].to_string(),
                    line,
                });
                i = ni;
            }
            c if c.is_ascii_alphabetic() || c == b'_' => {
                let start = i;
                while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                    i += 1;
                }
                let word = &src[start..i];
                // Raw / byte string prefixes: r"", r#""#, b"", br"" …
                if i < b.len() && matches!(word, "r" | "b" | "br" | "rb") {
                    if b[i] == b'"' {
                        if word.contains('r') {
                            i = consume_raw_string(b, i, 0, &mut line);
                        } else {
                            i = consume_string(b, i + 1, &mut line);
                        }
                        out.tokens.push(Tok {
                            kind: TokKind::StrLit,
                            text: String::new(),
                            line,
                        });
                        continue;
                    }
                    if b[i] == b'#' && word.contains('r') {
                        let mut hashes = 0usize;
                        let mut j = i;
                        while j < b.len() && b[j] == b'#' {
                            hashes += 1;
                            j += 1;
                        }
                        if j < b.len() && b[j] == b'"' {
                            i = consume_raw_string(b, j, hashes, &mut line);
                            out.tokens.push(Tok {
                                kind: TokKind::StrLit,
                                text: String::new(),
                                line,
                            });
                            continue;
                        }
                    }
                }
                out.tokens.push(Tok {
                    kind: TokKind::Ident,
                    text: word.to_string(),
                    line,
                });
            }
            _ => {
                out.tokens.push(Tok {
                    kind: TokKind::Punct,
                    text: (c as char).to_string(),
                    line,
                });
                i += 1;
            }
        }
    }
    out
}

/// Consumes a non-raw string body starting *after* the opening quote;
/// returns the index past the closing quote.
fn consume_string(b: &[u8], mut i: usize, line: &mut u32) -> usize {
    while i < b.len() {
        match b[i] {
            b'\\' => i += 2,
            b'"' => return i + 1,
            b'\n' => {
                *line += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    i
}

/// Consumes a raw string starting at the opening quote with `hashes`
/// fence characters; returns the index past the closing fence.
fn consume_raw_string(b: &[u8], open_quote: usize, hashes: usize, line: &mut u32) -> usize {
    let mut i = open_quote + 1;
    while i < b.len() {
        if b[i] == b'\n' {
            *line += 1;
        }
        if b[i] == b'"' {
            let mut j = i + 1;
            let mut seen = 0usize;
            while j < b.len() && b[j] == b'#' && seen < hashes {
                seen += 1;
                j += 1;
            }
            if seen == hashes {
                return j;
            }
        }
        i += 1;
    }
    i
}

/// Consumes a numeric literal at `i`; returns (end index, kind).
fn consume_number(b: &[u8], start: usize, src: &str) -> (usize, TokKind) {
    let mut i = start;
    let radix_prefixed = i + 1 < b.len() && b[i] == b'0' && matches!(b[i + 1], b'x' | b'o' | b'b');
    if radix_prefixed {
        i += 2;
        while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
            i += 1;
        }
        return (i, TokKind::IntLit);
    }
    let mut is_float = false;
    while i < b.len() && (b[i].is_ascii_digit() || b[i] == b'_') {
        i += 1;
    }
    // Fractional part: `1.5` and `1.` are floats, but `1..2` is a
    // range and `1.max(2)` is a method call.
    if i < b.len() && b[i] == b'.' {
        let next = b.get(i + 1).copied();
        let next_is_digit = next.is_some_and(|n| n.is_ascii_digit());
        let next_is_ident = next.is_some_and(|n| n.is_ascii_alphabetic() || n == b'_');
        let next_is_dot = next == Some(b'.');
        if next_is_digit || (!next_is_ident && !next_is_dot) {
            is_float = true;
            i += 1;
            while i < b.len() && (b[i].is_ascii_digit() || b[i] == b'_') {
                i += 1;
            }
        }
    }
    // Exponent.
    if i < b.len() && (b[i] == b'e' || b[i] == b'E') {
        let mut j = i + 1;
        if j < b.len() && (b[j] == b'+' || b[j] == b'-') {
            j += 1;
        }
        if j < b.len() && b[j].is_ascii_digit() {
            is_float = true;
            i = j;
            while i < b.len() && (b[i].is_ascii_digit() || b[i] == b'_') {
                i += 1;
            }
        }
    }
    // Type suffix (`u8`, `f32`, …).
    let suffix_start = i;
    while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
        i += 1;
    }
    let suffix = &src[suffix_start..i];
    if suffix.starts_with('f') {
        is_float = true;
    }
    (
        i,
        if is_float {
            TokKind::FloatLit
        } else {
            TokKind::IntLit
        },
    )
}

/// Extracts `hnp-lint: allow(...)` / `allow-file(...)` pragmas from a
/// comment body.
fn scan_pragma(comment: &str, line: u32, out: &mut Vec<Suppression>) {
    let Some(pos) = comment.find("hnp-lint:") else {
        return;
    };
    let rest = comment[pos + "hnp-lint:".len()..].trim_start();
    let whole_file = rest.starts_with("allow-file(");
    let open = if whole_file {
        "allow-file("
    } else if rest.starts_with("allow(") {
        "allow("
    } else {
        return;
    };
    let body = &rest[open.len()..];
    let Some(close) = body.find(')') else {
        return;
    };
    let rules: Vec<String> = body[..close]
        .split(',')
        .map(|r| r.trim().to_string())
        .filter(|r| !r.is_empty())
        .collect();
    if rules.is_empty() {
        return;
    }
    out.push(Suppression {
        line,
        rules,
        whole_file,
    });
}

/// Computes, per token, whether it lies inside a test-only span: an
/// item annotated `#[cfg(test)]` / `#[test]` (any attribute whose
/// argument tokens mention the identifier `test`, which also covers
/// `cfg(any(test, …))`). The span runs from the attribute to the end
/// of the following item — its balanced `{…}` body, or the first
/// top-level `;` for body-less items.
pub fn test_spans(tokens: &[Tok]) -> Vec<bool> {
    let mut in_test = vec![false; tokens.len()];
    let mut i = 0usize;
    while i < tokens.len() {
        if tokens[i].is_punct('#') && i + 1 < tokens.len() && tokens[i + 1].is_punct('[') {
            // Find the matching `]` of the attribute.
            let mut depth = 0i32;
            let mut j = i + 1;
            let mut mentions_test = false;
            while j < tokens.len() {
                if tokens[j].is_punct('[') {
                    depth += 1;
                } else if tokens[j].is_punct(']') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                } else if tokens[j].is_ident("test") {
                    mentions_test = true;
                }
                j += 1;
            }
            if !mentions_test {
                i = j + 1;
                continue;
            }
            // Mark from the attribute through the end of the item.
            let span_start = i;
            let mut k = j + 1;
            // Chained attributes belong to the same item.
            while k + 1 < tokens.len() && tokens[k].is_punct('#') && tokens[k + 1].is_punct('[') {
                let mut d = 0i32;
                while k < tokens.len() {
                    if tokens[k].is_punct('[') {
                        d += 1;
                    } else if tokens[k].is_punct(']') {
                        d -= 1;
                        if d == 0 {
                            k += 1;
                            break;
                        }
                    }
                    k += 1;
                }
            }
            // Consume to the item body's closing brace (or `;`).
            let mut brace = 0i32;
            let mut entered = false;
            while k < tokens.len() {
                if tokens[k].is_punct('{') {
                    brace += 1;
                    entered = true;
                } else if tokens[k].is_punct('}') {
                    brace -= 1;
                    if entered && brace == 0 {
                        break;
                    }
                } else if tokens[k].is_punct(';') && !entered {
                    break;
                }
                k += 1;
            }
            let span_end = k.min(tokens.len().saturating_sub(1));
            for slot in in_test.iter_mut().take(span_end + 1).skip(span_start) {
                *slot = true;
            }
            i = span_end + 1;
        } else {
            i += 1;
        }
    }
    in_test
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn string_contents_produce_no_identifier_tokens() {
        let got = idents(r#"let x = "HashMap unwrap() panic!"; call(x)"#);
        assert_eq!(got, vec!["let", "x", "call", "x"]);
    }

    #[test]
    fn raw_strings_with_fences_are_opaque() {
        let src = "let s = r#\"thread_rng \"quoted\" unwrap\"#; done()";
        assert_eq!(idents(src), vec!["let", "s", "done"]);
    }

    #[test]
    fn nested_block_comments_are_skipped() {
        let src = "/* outer /* inner unwrap() */ still comment */ real()";
        assert_eq!(idents(src), vec!["real"]);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let toks = lex("fn f<'a>(x: &'a str) { let c = 'x'; }").tokens;
        let lifetimes: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .collect();
        let chars: Vec<_> = toks.iter().filter(|t| t.kind == TokKind::CharLit).collect();
        assert_eq!(lifetimes.len(), 2);
        assert_eq!(chars.len(), 1);
    }

    #[test]
    fn float_and_int_literals_are_distinguished() {
        let toks = lex("let a = 1.5; let b = 10; let c = 2e3; let d = 7f32; let e = 0x1F;").tokens;
        let kinds: Vec<TokKind> = toks
            .iter()
            .filter(|t| matches!(t.kind, TokKind::IntLit | TokKind::FloatLit))
            .map(|t| t.kind)
            .collect();
        assert_eq!(
            kinds,
            vec![
                TokKind::FloatLit,
                TokKind::IntLit,
                TokKind::FloatLit,
                TokKind::FloatLit,
                TokKind::IntLit
            ]
        );
    }

    #[test]
    fn range_and_method_call_on_int_are_not_floats() {
        let toks = lex("for i in 1..10 { let m = 3.max(i); }").tokens;
        assert!(toks.iter().all(|t| t.kind != TokKind::FloatLit));
    }

    #[test]
    fn pragma_extraction_from_line_and_block_comments() {
        let src = "\n// hnp-lint: allow(determinism) seeded elsewhere\nx();\n/* hnp-lint: allow(panic_hygiene, layering) */\n";
        let out = lex(src);
        assert_eq!(out.suppressions.len(), 2);
        assert_eq!(out.suppressions[0].line, 2);
        assert_eq!(out.suppressions[0].rules, vec!["determinism"]);
        assert_eq!(out.suppressions[1].rules, vec!["panic_hygiene", "layering"]);
        assert!(!out.suppressions[0].whole_file);
    }

    #[test]
    fn allow_file_pragma_is_flagged() {
        let out = lex("// hnp-lint: allow-file(integer_purity)\n");
        assert_eq!(out.suppressions.len(), 1);
        assert!(out.suppressions[0].whole_file);
    }

    #[test]
    fn line_numbers_survive_multiline_strings_and_comments() {
        let src = "let a = \"line\nline\nline\";\n/* c\nc */\nlet marker = 1;\n";
        let toks = lex(src).tokens;
        let marker = toks.iter().find(|t| t.is_ident("marker")).expect("marker");
        assert_eq!(marker.line, 6);
    }

    #[test]
    fn cfg_test_mod_span_covers_body() {
        let src = "fn live() { x.unwrap(); }\n#[cfg(test)]\nmod tests {\n  fn t() { y.unwrap(); }\n}\nfn live2() {}\n";
        let out = lex(src);
        let spans = test_spans(&out.tokens);
        for (tok, in_test) in out.tokens.iter().zip(&spans) {
            if tok.is_ident("y") {
                assert!(*in_test, "test-mod body must be marked");
            }
            if tok.is_ident("x") || tok.is_ident("live2") {
                assert!(!*in_test, "live code must not be marked");
            }
        }
    }

    #[test]
    fn test_attr_with_chained_attrs_covers_fn() {
        let src =
            "#[test]\n#[should_panic(expected = \"boom\")]\nfn t() { z.unwrap(); }\nfn live() {}\n";
        let out = lex(src);
        let spans = test_spans(&out.tokens);
        for (tok, in_test) in out.tokens.iter().zip(&spans) {
            if tok.is_ident("z") {
                assert!(*in_test);
            }
            if tok.is_ident("live") {
                assert!(!*in_test);
            }
        }
    }

    #[test]
    fn non_test_attr_does_not_open_a_span() {
        let src = "#[derive(Debug)]\nstruct S;\nfn live() { a.unwrap(); }\n";
        let out = lex(src);
        let spans = test_spans(&out.tokens);
        assert!(spans.iter().all(|s| !s));
    }

    #[test]
    fn bodyless_cfg_test_item_ends_at_semicolon() {
        let src = "#[cfg(test)]\nuse helpers::fixture;\nfn live() { b.unwrap(); }\n";
        let out = lex(src);
        let spans = test_spans(&out.tokens);
        for (tok, in_test) in out.tokens.iter().zip(&spans) {
            if tok.is_ident("fixture") {
                assert!(*in_test);
            }
            if tok.is_ident("b") {
                assert!(!*in_test, "span must end at the `use` semicolon");
            }
        }
    }

    #[test]
    fn unterminated_constructs_do_not_hang_or_panic() {
        let _ = lex("let s = \"unterminated");
        let _ = lex("/* unterminated");
        let _ = lex("let r = r#\"unterminated");
        let _ = lex("'");
    }
}
