//! Workspace discovery and the lint engine driver.

use std::fs;
use std::path::{Path, PathBuf};

use crate::rules::{check_file, check_manifest, Finding};
use crate::tokenizer::lex;

/// Engine errors (I/O, mostly).
#[derive(Debug)]
pub enum LintError {
    /// The root does not look like the hnp workspace.
    NotAWorkspace(PathBuf),
    /// An underlying read failed.
    Io(PathBuf, std::io::Error),
}

impl std::fmt::Display for LintError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LintError::NotAWorkspace(p) => {
                write!(f, "{} does not contain a crates/ workspace", p.display())
            }
            LintError::Io(p, e) => write!(f, "{}: {e}", p.display()),
        }
    }
}

impl std::error::Error for LintError {}

/// One workspace member, as discovered on disk.
#[derive(Debug)]
pub struct CrateInfo {
    /// Package name from `Cargo.toml` (e.g. `hnp-core`).
    pub name: String,
    /// Directory name under `crates/` (e.g. `core`).
    pub dir_name: String,
    /// `[dependencies]` package names.
    pub deps: Vec<String>,
    /// `[dev-dependencies]` package names.
    pub dev_deps: Vec<String>,
    /// Source files under `src/`, workspace-relative, sorted.
    pub files: Vec<PathBuf>,
}

/// Full engine output.
#[derive(Debug)]
pub struct Report {
    /// All findings, sorted by (file, line, rule).
    pub findings: Vec<Finding>,
    /// Number of source files scanned.
    pub files_scanned: usize,
    /// Crates scanned, in scan order.
    pub crates: Vec<String>,
}

impl Report {
    /// Findings not covered by a pragma.
    pub fn unsuppressed(&self) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(|f| !f.suppressed)
    }

    /// Count of unsuppressed findings.
    pub fn unsuppressed_count(&self) -> usize {
        self.unsuppressed().count()
    }

    /// Count of pragma-suppressed findings.
    pub fn suppressed_count(&self) -> usize {
        self.findings.iter().filter(|f| f.suppressed).count()
    }
}

/// Minimal `Cargo.toml` scan: package name plus the `hnp-*` entries of
/// the dependency sections. (A full TOML parser would be an external
/// dependency; manifests in this workspace are machine-edited and
/// line-oriented.)
fn parse_manifest(text: &str) -> (String, Vec<String>, Vec<String>) {
    let mut name = String::new();
    let mut deps = Vec::new();
    let mut dev_deps = Vec::new();
    #[derive(PartialEq)]
    enum Section {
        Package,
        Deps,
        DevDeps,
        Other,
    }
    let mut section = Section::Other;
    for raw in text.lines() {
        let line = raw.trim();
        if line.starts_with('[') {
            section = match line {
                "[package]" => Section::Package,
                "[dependencies]" => Section::Deps,
                "[dev-dependencies]" => Section::DevDeps,
                _ => Section::Other,
            };
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            continue;
        };
        let key = key.trim();
        match section {
            Section::Package if key == "name" => {
                name = value.trim().trim_matches('"').to_string();
            }
            Section::Deps => deps.push(key.trim_end_matches(".workspace").to_string()),
            Section::DevDeps => dev_deps.push(key.trim_end_matches(".workspace").to_string()),
            _ => {}
        }
    }
    (name, deps, dev_deps)
}

/// Recursively collects `.rs` files under `dir`, sorted for
/// reproducible reports.
fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), LintError> {
    let entries = fs::read_dir(dir).map_err(|e| LintError::Io(dir.to_path_buf(), e))?;
    let mut paths: Vec<PathBuf> = entries.filter_map(|e| e.ok().map(|e| e.path())).collect();
    paths.sort();
    for path in paths {
        if path.is_dir() {
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|x| x == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Discovers the workspace members under `root/crates/`.
pub fn discover(root: &Path) -> Result<Vec<CrateInfo>, LintError> {
    let crates_dir = root.join("crates");
    if !crates_dir.is_dir() {
        return Err(LintError::NotAWorkspace(root.to_path_buf()));
    }
    let entries = fs::read_dir(&crates_dir).map_err(|e| LintError::Io(crates_dir.clone(), e))?;
    let mut dirs: Vec<PathBuf> = entries
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.is_dir() && p.join("Cargo.toml").is_file())
        .collect();
    dirs.sort();
    let mut crates = Vec::with_capacity(dirs.len());
    for dir in dirs {
        let manifest_path = dir.join("Cargo.toml");
        let manifest = fs::read_to_string(&manifest_path)
            .map_err(|e| LintError::Io(manifest_path.clone(), e))?;
        let (name, deps, dev_deps) = parse_manifest(&manifest);
        let mut files = Vec::new();
        let src = dir.join("src");
        if src.is_dir() {
            collect_rs_files(&src, &mut files)?;
        }
        let dir_name = dir
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        crates.push(CrateInfo {
            name,
            dir_name,
            deps,
            dev_deps,
            files,
        });
    }
    Ok(crates)
}

/// Applies pragmas: a `hnp-lint: allow(rule)` comment suppresses
/// findings of that rule on its own line and the next;
/// `allow-file(rule)` suppresses the whole file.
fn apply_suppressions(
    findings: &mut [Finding],
    rel_path: &str,
    suppressions: &[crate::tokenizer::Suppression],
) {
    for f in findings.iter_mut().filter(|f| f.file == rel_path) {
        let name = f.rule.name();
        for s in suppressions {
            let rule_match = s.rules.iter().any(|r| r == name || r == "all");
            if !rule_match {
                continue;
            }
            if s.whole_file || f.line == s.line || f.line == s.line + 1 {
                f.suppressed = true;
                break;
            }
        }
    }
}

/// Runs every rule over the workspace at `root`.
pub fn check_workspace(root: &Path) -> Result<Report, LintError> {
    let crates = discover(root)?;
    let mut findings = Vec::new();
    let mut files_scanned = 0usize;
    for krate in &crates {
        check_manifest(krate, &mut findings);
        for file in &krate.files {
            let text = fs::read_to_string(file).map_err(|e| LintError::Io(file.clone(), e))?;
            let rel = file
                .strip_prefix(root)
                .unwrap_or(file)
                .to_string_lossy()
                .replace('\\', "/");
            let lexed = lex(&text);
            let before = findings.len();
            check_file(krate, &rel, &lexed, &mut findings);
            apply_suppressions(&mut findings[before..], &rel, &lexed.suppressions);
            files_scanned += 1;
        }
    }
    findings
        .sort_by(|a, b| (a.file.as_str(), a.line, a.rule).cmp(&(b.file.as_str(), b.line, b.rule)));
    Ok(Report {
        findings,
        files_scanned,
        crates: crates.iter().map(|c| c.name.clone()).collect(),
    })
}

/// Checks a single in-memory file against the rules of crate `name` —
/// the fixture-test entry point.
pub fn check_source(name: &str, rel_path: &str, source: &str) -> Vec<Finding> {
    let krate = CrateInfo {
        name: name.to_string(),
        dir_name: name.trim_start_matches("hnp-").to_string(),
        deps: Vec::new(),
        dev_deps: Vec::new(),
        files: Vec::new(),
    };
    let lexed = lex(source);
    let mut findings = Vec::new();
    check_file(&krate, rel_path, &lexed, &mut findings);
    apply_suppressions(&mut findings, rel_path, &lexed.suppressions);
    findings
}

/// Layer-checks an in-memory manifest description — the fixture-test
/// entry point for HNP02.
pub fn check_manifest_of(name: &str, deps: &[&str], dev_deps: &[&str]) -> Vec<Finding> {
    let krate = CrateInfo {
        name: name.to_string(),
        dir_name: name.trim_start_matches("hnp-").to_string(),
        deps: deps.iter().map(|d| d.to_string()).collect(),
        dev_deps: dev_deps.iter().map(|d| d.to_string()).collect(),
        files: Vec::new(),
    };
    let mut findings = Vec::new();
    check_manifest(&krate, &mut findings);
    findings
}

/// Walks upward from `start` to find the workspace root (the first
/// ancestor containing both `Cargo.toml` and `crates/`).
pub fn find_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        if d.join("Cargo.toml").is_file() && d.join("crates").is_dir() {
            return Some(d);
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

#[allow(unused_imports)]
pub use crate::rules::{Finding as RuleFinding, Rule as RuleKind};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manifest_parser_reads_name_and_dep_sections() {
        let toml = r#"
[package]
name = "hnp-demo"
version.workspace = true

[dependencies]
hnp-trace.workspace = true
serde = { version = "1" }

[dev-dependencies]
hnp-memsim.workspace = true
"#;
        let (name, deps, dev) = parse_manifest(toml);
        assert_eq!(name, "hnp-demo");
        assert_eq!(deps, vec!["hnp-trace", "serde"]);
        assert_eq!(dev, vec!["hnp-memsim"]);
    }

    #[test]
    fn suppression_covers_same_and_next_line_only() {
        let src = "\n// hnp-lint: allow(panic_hygiene)\nlet a = x.unwrap();\nlet b = y.unwrap();\n";
        let findings = check_source("hnp-core", "crates/core/src/x.rs", src);
        assert_eq!(findings.len(), 2);
        assert!(findings[0].suppressed, "line after pragma is covered");
        assert!(!findings[1].suppressed, "two lines down is not");
    }

    #[test]
    fn allow_file_suppresses_everything() {
        let src = "// hnp-lint: allow-file(panic_hygiene)\nfn f() { x.unwrap(); y.unwrap(); }\n";
        let findings = check_source("hnp-core", "crates/core/src/x.rs", src);
        assert_eq!(findings.len(), 2);
        assert!(findings.iter().all(|f| f.suppressed));
    }

    #[test]
    fn pragma_for_a_different_rule_does_not_suppress() {
        let src = "// hnp-lint: allow(determinism)\nlet a = x.unwrap();\n";
        let findings = check_source("hnp-core", "crates/core/src/x.rs", src);
        assert_eq!(findings.len(), 1);
        assert!(!findings[0].suppressed);
    }
}
