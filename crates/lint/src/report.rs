//! Human-readable and machine-readable (JSON) report rendering.

use std::fmt::Write as _;

use crate::rules::Rule;
use crate::workspace::Report;

/// Renders the human report: one line per finding, grouped summary at
/// the end.
pub fn human(report: &Report) -> String {
    let mut out = String::new();
    for f in &report.findings {
        let tag = if f.suppressed { " (suppressed)" } else { "" };
        let _ = writeln!(
            out,
            "{}:{}: [{} {}]{} {}",
            f.file,
            f.line,
            f.rule.id(),
            f.rule.name(),
            tag,
            f.message
        );
    }
    let mut per_rule = String::new();
    for rule in Rule::all() {
        let n = report.unsuppressed().filter(|f| f.rule == rule).count();
        if n > 0 {
            let _ = write!(per_rule, " {}={n}", rule.name());
        }
    }
    let _ = writeln!(
        out,
        "hnp-lint: {} file(s), {} crate(s): {} unsuppressed finding(s), {} suppressed{}",
        report.files_scanned,
        report.crates.len(),
        report.unsuppressed_count(),
        report.suppressed_count(),
        per_rule
    );
    out
}

/// Escapes a string for JSON output.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders the machine-readable report. Hand-rolled on purpose: the
/// linter must not depend on the crates it checks (or on anything
/// else).
pub fn json(report: &Report) -> String {
    let mut out = String::from("{\n  \"version\": 1,\n  \"findings\": [\n");
    for (i, f) in report.findings.iter().enumerate() {
        let comma = if i + 1 == report.findings.len() {
            ""
        } else {
            ","
        };
        let _ = writeln!(
            out,
            "    {{\"id\": \"{}\", \"rule\": \"{}\", \"file\": \"{}\", \"line\": {}, \"suppressed\": {}, \"message\": \"{}\"}}{comma}",
            f.rule.id(),
            f.rule.name(),
            json_escape(&f.file),
            f.line,
            f.suppressed,
            json_escape(&f.message)
        );
    }
    let _ = write!(
        out,
        "  ],\n  \"summary\": {{\"files_scanned\": {}, \"crates\": {}, \"unsuppressed\": {}, \"suppressed\": {}}}\n}}\n",
        report.files_scanned,
        report.crates.len(),
        report.unsuppressed_count(),
        report.suppressed_count()
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::Finding;

    fn demo_report() -> Report {
        Report {
            findings: vec![
                Finding {
                    rule: Rule::PanicHygiene,
                    file: "crates/x/src/a.rs".into(),
                    line: 3,
                    message: "`.unwrap()` with \"quotes\"".into(),
                    suppressed: false,
                },
                Finding {
                    rule: Rule::Determinism,
                    file: "crates/x/src/b.rs".into(),
                    line: 9,
                    message: "`HashMap` iteration".into(),
                    suppressed: true,
                },
            ],
            files_scanned: 2,
            crates: vec!["hnp-x".into()],
        }
    }

    #[test]
    fn human_report_lists_findings_and_summary() {
        let text = human(&demo_report());
        assert!(text.contains("crates/x/src/a.rs:3: [HNP03 panic_hygiene]"));
        assert!(text.contains("(suppressed)"));
        assert!(text.contains("1 unsuppressed finding(s), 1 suppressed"));
    }

    #[test]
    fn json_report_escapes_and_counts() {
        let text = json(&demo_report());
        assert!(text.contains("\\\"quotes\\\""));
        assert!(text.contains("\"unsuppressed\": 1"));
        assert!(text.contains("\"suppressed\": true"));
        // Sanity: balanced braces and valid-ish structure.
        assert_eq!(
            text.matches('{').count(),
            text.matches('}').count(),
            "balanced braces"
        );
    }
}
