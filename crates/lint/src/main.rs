//! `hnp-lint` CLI.
//!
//! ```text
//! hnp-lint [--root DIR] [--json PATH] [--quiet]
//! ```
//!
//! Exit status: 0 when clean, 1 on unsuppressed findings, 2 on usage
//! or I/O errors.

use std::path::PathBuf;
use std::process::ExitCode;

use hnp_lint::{report, workspace};

struct Args {
    root: Option<PathBuf>,
    json: Option<PathBuf>,
    quiet: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: None,
        json: None,
        quiet: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => {
                args.root = Some(PathBuf::from(
                    it.next().ok_or("--root requires a directory")?,
                ))
            }
            "--json" => args.json = Some(PathBuf::from(it.next().ok_or("--json requires a path")?)),
            "--quiet" | "-q" => args.quiet = true,
            "--help" | "-h" => {
                return Err("usage: hnp-lint [--root DIR] [--json PATH] [--quiet]".to_string())
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    Ok(args)
}

pub fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    let root = match args.root.or_else(|| {
        std::env::current_dir()
            .ok()
            .and_then(|d| workspace::find_root(&d))
    }) {
        Some(r) => r,
        None => {
            eprintln!("hnp-lint: could not locate the workspace root (pass --root)");
            return ExitCode::from(2);
        }
    };
    let rep = match workspace::check_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("hnp-lint: {e}");
            return ExitCode::from(2);
        }
    };
    if let Some(path) = &args.json {
        if let Err(e) = std::fs::write(path, report::json(&rep)) {
            eprintln!("hnp-lint: writing {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }
    if !args.quiet {
        print!("{}", report::human(&rep));
    }
    if rep.unsuppressed_count() > 0 {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
