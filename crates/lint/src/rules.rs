//! The invariant catalog (see DESIGN.md §9).
//!
//! | id    | rule             | scope                                  |
//! |-------|------------------|----------------------------------------|
//! | HNP01 | `determinism`    | core, hebbian, memsim, obs, systems    |
//! | HNP02 | `layering`       | every workspace crate                  |
//! | HNP03 | `panic_hygiene`  | library crates, outside `#[cfg(test)]` |
//! | HNP04 | `integer_purity` | hebbian, outside `#[cfg(test)]`        |
//!
//! Each rule can be suppressed per-line with
//! `// hnp-lint: allow(<rule>)` (covering that line and the next) or
//! per-file with `// hnp-lint: allow-file(<rule>)`.

use crate::tokenizer::{test_spans, LexOutput, TokKind};
use crate::workspace::CrateInfo;

/// Rule families.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// HNP01: no wall-clock, entropy seeding, or hash-order iteration
    /// in simulator/model state paths.
    Determinism,
    /// HNP02: the crate graph must follow the layered architecture
    /// with no back-edges.
    Layering,
    /// HNP03: no `unwrap`/`expect`/`panic!`-family calls in library
    /// code outside tests.
    PanicHygiene,
    /// HNP04: the Hebbian substrate stays integer-pure (Eq. 1 /
    /// Table 2 ops accounting).
    IntegerPurity,
}

impl Rule {
    /// Stable pragma / report name.
    pub fn name(self) -> &'static str {
        match self {
            Rule::Determinism => "determinism",
            Rule::Layering => "layering",
            Rule::PanicHygiene => "panic_hygiene",
            Rule::IntegerPurity => "integer_purity",
        }
    }

    /// Stable short id.
    pub fn id(self) -> &'static str {
        match self {
            Rule::Determinism => "HNP01",
            Rule::Layering => "HNP02",
            Rule::PanicHygiene => "HNP03",
            Rule::IntegerPurity => "HNP04",
        }
    }

    /// All rules, in id order.
    pub fn all() -> [Rule; 4] {
        [
            Rule::Determinism,
            Rule::Layering,
            Rule::PanicHygiene,
            Rule::IntegerPurity,
        ]
    }
}

/// One rule violation.
#[derive(Debug, Clone)]
pub struct Finding {
    /// The violated rule.
    pub rule: Rule,
    /// Workspace-relative file path (or `<crate>/Cargo.toml` for
    /// layering findings).
    pub file: String,
    /// 1-based line (0 when the finding is manifest-level).
    pub line: u32,
    /// Human-readable description with a suggested fix.
    pub message: String,
    /// True when an `hnp-lint: allow(...)` pragma covers it.
    pub suppressed: bool,
}

/// Crates whose runtime state must be bit-reproducible (HNP01).
pub const DETERMINISM_CRATES: &[&str] = &[
    "hnp-core",
    "hnp-hebbian",
    "hnp-memsim",
    "hnp-obs",
    "hnp-systems",
    "hnp-serve",
];

/// Library crates held to panic hygiene (HNP03). Binaries (`hnp-cli`,
/// `hnp-bench`, `hnp-lint`) may abort on operator error.
pub const LIBRARY_CRATES: &[&str] = &[
    "hnp-nn",
    "hnp-hebbian",
    "hnp-trace",
    "hnp-obs",
    "hnp-memsim",
    "hnp-core",
    "hnp-systems",
    "hnp-baselines",
    "hnp-serve",
];

/// Crates whose learning/inference arithmetic must be integer-only
/// (HNP04).
pub const INTEGER_PURE_CRATES: &[&str] = &["hnp-hebbian"];

/// The layered architecture (HNP02): a crate may depend only on
/// crates of a strictly lower layer. Leaves first:
/// `trace/nn/hebbian/lint/obs → memsim → core/baselines →
/// systems/serve → bench → cli`. (`hnp-obs` is a leaf so every layer above it can emit
/// events; `hnp-hebbian` shares its layer and therefore stays
/// observer-free — its stats surface through getters instead.)
pub const LAYERS: &[(&str, u32)] = &[
    ("hnp-trace", 0),
    ("hnp-nn", 0),
    ("hnp-hebbian", 0),
    ("hnp-lint", 0),
    ("hnp-obs", 0),
    ("hnp-memsim", 1),
    ("hnp-core", 2),
    ("hnp-baselines", 2),
    ("hnp-systems", 3),
    ("hnp-serve", 3),
    ("hnp-bench", 4),
    // `hnpctl bench` drives the hnp-bench harnesses, so the CLI sits
    // one layer above them.
    ("hnp-cli", 5),
];

fn layer_of(name: &str) -> Option<u32> {
    LAYERS.iter().find(|(n, _)| *n == name).map(|&(_, l)| l)
}

/// Identifiers banned by HNP01 and the suggested replacement.
const NONDETERMINISTIC_IDENTS: &[(&str, &str)] = &[
    ("Instant", "take tick counts from the simulation clock, not the wall clock"),
    ("SystemTime", "take timestamps from the simulation clock, not the wall clock"),
    ("thread_rng", "use `StdRng::seed_from_u64(cfg.seed)` so runs replay bit-identically"),
    ("from_entropy", "use `StdRng::seed_from_u64(cfg.seed)` so runs replay bit-identically"),
    ("RandomState", "use an order-stable collection (`BTreeMap`/`BTreeSet`)"),
    ("HashMap", "use `BTreeMap` (or collect and sort before iterating): hash order must not reach simulator state"),
    ("HashSet", "use `BTreeSet` (or collect and sort before iterating): hash order must not reach simulator state"),
];

/// Macro names banned by HNP03 (when followed by `!`).
const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// Runs all token-level rules on one source file of `krate`, appending
/// unsuppressed-yet findings (suppression is applied by the engine).
pub fn check_file(krate: &CrateInfo, rel_path: &str, lexed: &LexOutput, out: &mut Vec<Finding>) {
    let toks = &lexed.tokens;
    let in_test = test_spans(toks);
    let name = krate.name.as_str();
    let deterministic = DETERMINISM_CRATES.contains(&name);
    let library = LIBRARY_CRATES.contains(&name);
    let int_pure = INTEGER_PURE_CRATES.contains(&name);

    for (i, t) in toks.iter().enumerate() {
        if in_test[i] {
            continue;
        }
        if deterministic && t.kind == TokKind::Ident {
            if let Some((_, fix)) = NONDETERMINISTIC_IDENTS
                .iter()
                .find(|(banned, _)| t.text == *banned)
            {
                out.push(Finding {
                    rule: Rule::Determinism,
                    file: rel_path.to_string(),
                    line: t.line,
                    message: format!("`{}` in a determinism-critical crate: {fix}", t.text),
                    suppressed: false,
                });
            }
        }
        if library && t.kind == TokKind::Ident {
            let method_call = |name: &str| {
                (t.text == name)
                    && i > 0
                    && toks[i - 1].is_punct('.')
                    && toks.get(i + 1).is_some_and(|n| n.is_punct('('))
            };
            if method_call("unwrap") || method_call("expect") {
                out.push(Finding {
                    rule: Rule::PanicHygiene,
                    file: rel_path.to_string(),
                    line: t.line,
                    message: format!(
                        "`.{}()` in library code: return a typed error or handle the `None`/`Err` arm",
                        t.text
                    ),
                    suppressed: false,
                });
            }
            if PANIC_MACROS.contains(&t.text.as_str())
                && toks.get(i + 1).is_some_and(|n| n.is_punct('!'))
            {
                out.push(Finding {
                    rule: Rule::PanicHygiene,
                    file: rel_path.to_string(),
                    line: t.line,
                    message: format!(
                        "`{}!` in library code: return a typed error (asserts with documented contracts are exempt via pragma)",
                        t.text
                    ),
                    suppressed: false,
                });
            }
        }
        if int_pure {
            let is_float_type = t.kind == TokKind::Ident && (t.text == "f32" || t.text == "f64");
            let is_float_lit = t.kind == TokKind::FloatLit;
            if is_float_type || is_float_lit {
                out.push(Finding {
                    rule: Rule::IntegerPurity,
                    file: rel_path.to_string(),
                    line: t.line,
                    message: format!(
                        "float `{}` in the integer-pure Hebbian substrate: Eq. 1 and the Table-2 ops count assume integer-only weight updates (use `LrScale` fixed-point)",
                        t.text
                    ),
                    suppressed: false,
                });
            }
        }
        // Source-level layering: `use hnp_foo::...` / `hnp_foo::` paths.
        if t.kind == TokKind::Ident && t.text.starts_with("hnp_") {
            let dep = t.text.replace('_', "-");
            if dep != name {
                if let (Some(me), Some(them)) = (layer_of(name), layer_of(&dep)) {
                    if them >= me {
                        out.push(Finding {
                            rule: Rule::Layering,
                            file: rel_path.to_string(),
                            line: t.line,
                            message: format!(
                                "back-edge: `{name}` (layer {me}) references `{dep}` (layer {them}); dependencies must point strictly downward"
                            ),
                            suppressed: false,
                        });
                    }
                }
            }
        }
    }
}

/// Checks one crate's manifest-declared dependency edges (HNP02).
pub fn check_manifest(krate: &CrateInfo, out: &mut Vec<Finding>) {
    let manifest = format!("crates/{}/Cargo.toml", krate.dir_name);
    let Some(me) = layer_of(&krate.name) else {
        out.push(Finding {
            rule: Rule::Layering,
            file: manifest,
            line: 0,
            message: format!(
                "crate `{}` has no layer assignment; add it to LAYERS in crates/lint/src/rules.rs",
                krate.name
            ),
            suppressed: false,
        });
        return;
    };
    for (dep, dev_only) in krate
        .deps
        .iter()
        .map(|d| (d, false))
        .chain(krate.dev_deps.iter().map(|d| (d, true)))
    {
        if !dep.starts_with("hnp-") {
            continue;
        }
        let Some(them) = layer_of(dep) else {
            out.push(Finding {
                rule: Rule::Layering,
                file: manifest.clone(),
                line: 0,
                message: format!(
                    "dependency `{dep}` has no layer assignment; add it to LAYERS in crates/lint/src/rules.rs"
                ),
                suppressed: false,
            });
            continue;
        };
        if them >= me {
            let kind = if dev_only {
                "dev-dependency"
            } else {
                "dependency"
            };
            out.push(Finding {
                rule: Rule::Layering,
                file: manifest.clone(),
                line: 0,
                message: format!(
                    "back-edge: `{}` (layer {me}) declares {kind} `{dep}` (layer {them}); the DAG is trace/nn/hebbian/lint/obs → memsim → core/baselines → systems/serve → bench → cli",
                    krate.name
                ),
                suppressed: false,
            });
        }
    }
}
