//! # hnp-lint — workspace invariant checker
//!
//! The reproduction's headline numbers (Fig. 3 interference/replay
//! curves, Fig. 5 online accuracy, the bit-identical no-fault
//! property) are only trustworthy if every simulator run is
//! deterministic and the Hebbian path stays integer-pure. `hnp-lint`
//! machine-checks those conventions so refactors can't silently break
//! them:
//!
//! * **HNP01 `determinism`** — no wall-clock reads, entropy-seeded
//!   RNGs, or hash-ordered collections in `core`/`hebbian`/`memsim`/
//!   `systems`;
//! * **HNP02 `layering`** — the crate graph stays the acyclic
//!   `trace/nn/hebbian/lint → memsim → core/baselines → systems →
//!   bench/cli`, checked both in manifests and in source paths;
//! * **HNP03 `panic_hygiene`** — no `unwrap`/`expect`/`panic!`-family
//!   calls in library crates outside `#[cfg(test)]`;
//! * **HNP04 `integer_purity`** — no `f32`/`f64` arithmetic in the
//!   Hebbian substrate (Eq. 1 / Table 2 ops accounting).
//!
//! Violations that are deliberate carry a
//! `// hnp-lint: allow(<rule>)` pragma with a justification; the
//! report counts suppressions separately so they stay auditable.
//!
//! Run as `cargo run -p hnp-lint`, `hnpctl lint`, or through the
//! workspace integration test `crates/lint/tests/workspace_clean.rs`
//! (which is what puts it on the tier-1 `cargo test` path).

pub mod report;
pub mod rules;
pub mod tokenizer;
pub mod workspace;

pub use rules::{Finding, Rule};
pub use workspace::{check_source, check_workspace, find_root, LintError, Report};
