//! The episodic-store abstraction and the associative (compressed)
//! backend.
//!
//! The paper describes the hippocampus as memorizing accesses "in a
//! compressed format, likely by separating each access and storing
//! them in an associative memory" (§3, citing Rolls). Two backends
//! implement the [`EpisodicStore`] interface:
//!
//! * the exact buffer ([`Hippocampus`]) used by the paper's
//!   experiments ("without resource limitations on the hippocampal
//!   storage"), with the §5.4 capacity policies;
//! * [`AssociativeHippocampus`], the compressed alternative: every
//!   episode's input pattern is re-coded by a fixed
//!   [`PatternSeparator`] and associated with its (target, recurrent
//!   context) value in a binary [`WillshawMemory`]. Storage is a
//!   fixed-size matrix regardless of episode count; recalled targets
//!   degrade gracefully (majority-like) as the matrix saturates. A
//!   small cue reservoir supplies replay seeds, since associative
//!   memories cannot be enumerated.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use hnp_hebbian::assoc::{PatternSeparator, WillshawMemory};
use hnp_hebbian::bitset::BitSet;

use crate::hippocampus::{CapacityPolicy, Episode, Hippocampus};

/// Which episodic backend a CLS prefetcher uses. Widths that depend
/// on the encoder/vocabulary are filled in by the prefetcher.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EpisodicBackend {
    /// The exact buffer with a §5.4 capacity policy.
    Exact(CapacityPolicy),
    /// The compressed associative store.
    Associative {
        /// Separated key-code width.
        key_bits: usize,
        /// Active units per key code.
        key_active: usize,
        /// Replay-cue reservoir size.
        reservoir: usize,
    },
}

/// A store of training episodes supporting replay sampling.
pub trait EpisodicStore {
    /// Offers an episode.
    fn store_episode(&mut self, episode: Episode);
    /// Samples up to `k` episodes for replay (marking them replayed
    /// where the backend tracks that), preferring phases other than
    /// `current_phase` when `prefer_other_phases` is set and the
    /// backend can honour it.
    fn sample_for_replay(
        &mut self,
        k: usize,
        current_phase: u64,
        prefer_other_phases: bool,
        rng: &mut StdRng,
    ) -> Vec<Episode>;
    /// Episodes currently stored (prototypes/cues for compressed
    /// backends).
    fn stored(&self) -> usize;
    /// Episodes ever offered.
    fn offered(&self) -> u64;
    /// Approximate storage footprint in bytes.
    fn storage_bytes(&self) -> usize;
}

impl EpisodicStore for Hippocampus {
    fn store_episode(&mut self, e: Episode) {
        self.store(
            e.history,
            e.pattern,
            e.recurrent,
            e.target,
            e.confidence,
            e.stored_at,
            e.phase,
        );
    }

    fn sample_for_replay(
        &mut self,
        k: usize,
        current_phase: u64,
        prefer_other_phases: bool,
        rng: &mut StdRng,
    ) -> Vec<Episode> {
        let mut indices = if prefer_other_phases {
            self.sample_other_phases(k, current_phase, rng)
        } else {
            self.sample(k, rng)
        };
        // Descending so `mark_replayed`'s swap_remove cannot invalidate
        // later indices.
        indices.sort_unstable_by(|a, b| b.cmp(a));
        let mut out = Vec::with_capacity(indices.len());
        for idx in indices {
            out.push(self.episodes()[idx].clone());
            self.mark_replayed(idx);
        }
        out
    }

    fn stored(&self) -> usize {
        self.len()
    }

    fn offered(&self) -> u64 {
        Hippocampus::offered(self)
    }

    fn storage_bytes(&self) -> usize {
        self.episodes()
            .iter()
            .map(|e| e.history.len() * 8 + e.pattern.len() * 4 + e.recurrent.len() * 4 + 32)
            .sum()
    }
}

/// Configuration of the associative backend.
#[derive(Debug, Clone)]
pub struct AssociativeConfig {
    /// Input-pattern space width (must cover the encoder's
    /// `pattern_bits`).
    pub pattern_bits: usize,
    /// Recurrent-state width (the value code's context section).
    pub recurrent_bits: usize,
    /// Target classes (the value code's target section).
    pub targets: usize,
    /// Separated key-code width.
    pub key_bits: usize,
    /// Active units per key code.
    pub key_active: usize,
    /// Replay-cue reservoir size.
    pub reservoir: usize,
    /// Seed for separation and reservoir sampling.
    pub seed: u64,
}

impl AssociativeConfig {
    /// A configuration sized for a CLS prefetcher with the given
    /// encoder width, recurrent width, and vocabulary.
    pub fn sized(pattern_bits: usize, recurrent_bits: usize, targets: usize) -> Self {
        Self {
            pattern_bits,
            recurrent_bits,
            targets,
            key_bits: 1024,
            key_active: 24,
            reservoir: 256,
            seed: 0xa550c,
        }
    }
}

/// The compressed associative episodic store.
pub struct AssociativeHippocampus {
    cfg: AssociativeConfig,
    separator: PatternSeparator,
    memory: WillshawMemory,
    /// Replay cues: `(pattern, recurrent, phase)` tuples kept by
    /// reservoir sampling.
    cues: Vec<(Vec<u32>, Vec<u32>, u64)>,
    offered: u64,
    rng: StdRng,
}

impl AssociativeHippocampus {
    /// Creates the store.
    pub fn new(cfg: AssociativeConfig) -> Self {
        let separator =
            PatternSeparator::new(cfg.pattern_bits, cfg.key_bits, cfg.key_active, 8, cfg.seed);
        let value_bits = cfg.targets + cfg.recurrent_bits;
        Self {
            separator,
            memory: WillshawMemory::new(cfg.key_bits, value_bits),
            cues: Vec::new(),
            offered: 0,
            rng: StdRng::seed_from_u64(cfg.seed ^ 0xeca11),
            cfg,
        }
    }

    /// Saturation of the underlying Willshaw matrix.
    pub fn saturation(&self) -> f64 {
        self.memory.saturation()
    }

    fn key_of(&self, pattern: &[u32]) -> BitSet {
        let p = BitSet::from_indices(self.cfg.pattern_bits, pattern);
        self.separator.separate(&p)
    }

    /// Recalls the consolidated target for an input pattern, with its
    /// overlap score.
    pub fn recall_target(&self, pattern: &[u32]) -> Option<(usize, usize)> {
        let key = self.key_of(pattern);
        let scores = self.memory.recall_scores(&key);
        scores[..self.cfg.targets]
            .iter()
            .enumerate()
            .max_by_key(|&(_, &s)| s)
            .filter(|&(_, &s)| s > 0)
            .map(|(t, &s)| (t, s))
    }
}

impl EpisodicStore for AssociativeHippocampus {
    fn store_episode(&mut self, e: Episode) {
        self.offered += 1;
        let key = self.key_of(&e.pattern);
        let value_bits = self.cfg.targets + self.cfg.recurrent_bits;
        let mut value = BitSet::new(value_bits);
        if e.target < self.cfg.targets {
            value.insert(e.target);
        }
        for &r in &e.recurrent {
            let bit = self.cfg.targets + r as usize;
            if bit < value_bits {
                value.insert(bit);
            }
        }
        self.memory.store(&key, &value);
        // Reservoir-sample the cue.
        let cue = (e.pattern, e.recurrent, e.phase);
        if self.cues.len() < self.cfg.reservoir {
            self.cues.push(cue);
        } else {
            let j = self.rng.gen_range(0..self.offered as usize);
            if j < self.cues.len() {
                self.cues[j] = cue;
            }
        }
    }

    fn sample_for_replay(
        &mut self,
        k: usize,
        current_phase: u64,
        prefer_other_phases: bool,
        rng: &mut StdRng,
    ) -> Vec<Episode> {
        if self.cues.is_empty() || k == 0 {
            return Vec::new();
        }
        let candidates: Vec<usize> = if prefer_other_phases {
            let others: Vec<usize> = (0..self.cues.len())
                .filter(|&i| self.cues[i].2 != current_phase)
                .collect();
            if others.is_empty() {
                (0..self.cues.len()).collect()
            } else {
                others
            }
        } else {
            (0..self.cues.len()).collect()
        };
        let mut out = Vec::with_capacity(k);
        for _ in 0..k {
            let i = candidates[rng.gen_range(0..candidates.len())];
            let (pattern, recurrent, phase) = self.cues[i].clone();
            // The target comes from associative recall: the
            // consolidated association for this cue, not a verbatim
            // record — merging of similar episodes is the compression.
            let Some((target, _)) = self.recall_target(&pattern) else {
                continue;
            };
            out.push(Episode {
                history: Vec::new(),
                pattern,
                recurrent,
                target,
                confidence: 0.0,
                stored_at: 0,
                phase,
                replays: 0,
                weight: 1,
            });
        }
        out
    }

    fn stored(&self) -> usize {
        self.cues.len()
    }

    fn offered(&self) -> u64 {
        self.offered
    }

    fn storage_bytes(&self) -> usize {
        // The Willshaw matrix (1 bit per weight) plus the cue
        // reservoir.
        let matrix_bits = self.cfg.key_bits * (self.cfg.targets + self.cfg.recurrent_bits);
        matrix_bits / 8
            + self
                .cues
                .iter()
                .map(|(p, r, _)| p.len() * 4 + r.len() * 4 + 8)
                .sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> AssociativeConfig {
        AssociativeConfig::sized(64, 32, 16)
    }

    fn episode(pattern: Vec<u32>, target: usize) -> Episode {
        Episode {
            history: vec![target],
            pattern,
            recurrent: vec![1, 5],
            target,
            confidence: 0.5,
            stored_at: 0,
            phase: 0,
            replays: 0,
            weight: 1,
        }
    }

    #[test]
    fn recalls_stored_associations() {
        let mut h = AssociativeHippocampus::new(cfg());
        for t in 0..8usize {
            // Distinct patterns per target.
            h.store_episode(episode(vec![t as u32, (t + 20) as u32], t));
        }
        for t in 0..8usize {
            let (recalled, score) = h
                .recall_target(&[t as u32, (t + 20) as u32])
                .expect("recall");
            assert_eq!(recalled, t, "score {score}");
        }
    }

    #[test]
    fn replay_samples_come_from_recall() {
        let mut h = AssociativeHippocampus::new(cfg());
        for _ in 0..50 {
            h.store_episode(episode(vec![3, 9], 7));
        }
        let mut rng = StdRng::seed_from_u64(1);
        let samples = h.sample_for_replay(4, 0, false, &mut rng);
        assert!(!samples.is_empty());
        for s in &samples {
            assert_eq!(s.target, 7, "consolidated recall");
            assert_eq!(s.pattern, vec![3, 9]);
        }
    }

    #[test]
    fn storage_is_bounded_regardless_of_episode_count() {
        let mut h = AssociativeHippocampus::new(cfg());
        let before = h.storage_bytes();
        for i in 0..5_000usize {
            h.store_episode(episode(vec![(i % 60) as u32], i % 16));
        }
        let after = h.storage_bytes();
        assert_eq!(h.offered(), 5_000);
        assert!(h.stored() <= 256, "reservoir bound");
        // Matrix is fixed; only the bounded reservoir grows.
        assert!(after < before + 256 * 64, "storage stays bounded: {after}");
    }

    #[test]
    fn saturation_grows_with_distinct_content_and_degrades_recall() {
        let mut h = AssociativeHippocampus::new(AssociativeConfig {
            key_bits: 128,
            key_active: 12,
            ..cfg()
        });
        h.store_episode(episode(vec![1, 2], 3));
        let clean = h.recall_target(&[1, 2]).unwrap();
        assert_eq!(clean.0, 3);
        let s0 = h.saturation();
        for i in 0..2_000u32 {
            h.store_episode(episode(vec![i % 64, (i * 7) % 64], (i % 16) as usize));
        }
        assert!(h.saturation() > s0, "saturation must grow");
        // Recall still returns something, but no exactness guarantee.
        assert!(h.recall_target(&[1, 2]).is_some());
    }

    #[test]
    fn exact_backend_implements_the_trait_equivalently() {
        let mut h = Hippocampus::new(CapacityPolicy::Unbounded);
        for t in 0..10usize {
            EpisodicStore::store_episode(&mut h, episode(vec![t as u32], t));
        }
        assert_eq!(EpisodicStore::stored(&h), 10);
        assert_eq!(EpisodicStore::offered(&h), 10);
        let mut rng = StdRng::seed_from_u64(2);
        let s = h.sample_for_replay(3, 0, false, &mut rng);
        assert_eq!(s.len(), 3);
        assert!(EpisodicStore::storage_bytes(&h) > 0);
    }
}
