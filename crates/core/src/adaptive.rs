//! Feedback-driven geometry adaptation (§5.2).
//!
//! "Configuring the prefetch length, width, and the access history
//! will require intelligent co-design." This controller closes the
//! loop: prefetch-outcome feedback ([`PrefetchFeedback`]) steers the
//! width (accuracy budget) and lookahead (timeliness budget) online.
//!
//! * Width: grow while accuracy (useful / (useful + unused)) is high —
//!   bandwidth is being converted into coverage; shrink when accuracy
//!   drops — the §5.2 "highly selective" regime.
//! * Lookahead: grow while prefetches keep arriving *late* (the model
//!   is right but not early enough — exactly the paper's "predict a
//!   sequence of misses further into the future"); shrink back when
//!   nothing is late.
//!
//! [`PrefetchFeedback`]: hnp_memsim::prefetcher::PrefetchFeedback

use hnp_memsim::prefetcher::PrefetchFeedback;

/// Controller parameters.
#[derive(Debug, Clone)]
pub struct AdaptiveConfig {
    /// Inclusive width bounds.
    pub width_range: (usize, usize),
    /// Inclusive lookahead bounds.
    pub lookahead_range: (usize, usize),
    /// Feedback events per adaptation decision.
    pub period: u32,
    /// Grow width above this accuracy.
    pub grow_accuracy: f64,
    /// Shrink width below this accuracy.
    pub shrink_accuracy: f64,
    /// Grow lookahead above this late fraction.
    pub late_fraction: f64,
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        Self {
            width_range: (1, 4),
            lookahead_range: (1, 8),
            period: 256,
            grow_accuracy: 0.75,
            shrink_accuracy: 0.4,
            late_fraction: 0.25,
        }
    }
}

/// The online width/lookahead controller.
#[derive(Debug, Clone)]
pub struct AdaptiveGeometry {
    cfg: AdaptiveConfig,
    width: usize,
    lookahead: usize,
    useful: u32,
    unused: u32,
    late: u32,
    seen: u32,
    /// Total adaptation decisions taken (reporting).
    pub adaptations: u64,
}

impl AdaptiveGeometry {
    /// Starts at the given geometry.
    ///
    /// # Panics
    ///
    /// Panics if the start point is outside the configured ranges.
    pub fn new(cfg: AdaptiveConfig, width: usize, lookahead: usize) -> Self {
        assert!(
            (cfg.width_range.0..=cfg.width_range.1).contains(&width),
            "start width out of range"
        );
        assert!(
            (cfg.lookahead_range.0..=cfg.lookahead_range.1).contains(&lookahead),
            "start lookahead out of range"
        );
        Self {
            cfg,
            width,
            lookahead,
            useful: 0,
            unused: 0,
            late: 0,
            seen: 0,
            adaptations: 0,
        }
    }

    /// Current prefetch width.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Current lookahead.
    pub fn lookahead(&self) -> usize {
        self.lookahead
    }

    /// Consumes one feedback event; adapts every `period` events.
    pub fn on_feedback(&mut self, feedback: &PrefetchFeedback) {
        match feedback {
            PrefetchFeedback::Useful { .. } => self.useful += 1,
            // A cancelled prefetch wasted bandwidth without helping,
            // exactly like pollution: count it against accuracy.
            PrefetchFeedback::Unused { .. } | PrefetchFeedback::Cancelled { .. } => {
                self.unused += 1
            }
            PrefetchFeedback::Late { .. } => self.late += 1,
        }
        self.seen += 1;
        if self.seen < self.cfg.period {
            return;
        }
        let covered = self.useful + self.unused;
        if covered > 0 {
            let accuracy = self.useful as f64 / covered as f64;
            if accuracy >= self.cfg.grow_accuracy && self.width < self.cfg.width_range.1 {
                self.width += 1;
            } else if accuracy <= self.cfg.shrink_accuracy && self.width > self.cfg.width_range.0 {
                self.width -= 1;
            }
        }
        let timed = self.useful + self.late;
        if timed > 0 {
            let late_frac = self.late as f64 / timed as f64;
            if late_frac >= self.cfg.late_fraction && self.lookahead < self.cfg.lookahead_range.1 {
                self.lookahead += 1;
            } else if late_frac < self.cfg.late_fraction / 4.0
                && self.lookahead > self.cfg.lookahead_range.0
            {
                self.lookahead -= 1;
            }
        }
        self.useful = 0;
        self.unused = 0;
        self.late = 0;
        self.seen = 0;
        self.adaptations += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> AdaptiveConfig {
        AdaptiveConfig {
            period: 10,
            ..AdaptiveConfig::default()
        }
    }

    fn feed(g: &mut AdaptiveGeometry, useful: u32, unused: u32, late: u32) {
        for _ in 0..useful {
            g.on_feedback(&PrefetchFeedback::Useful { page: 0 });
        }
        for _ in 0..unused {
            g.on_feedback(&PrefetchFeedback::Unused { page: 0 });
        }
        for _ in 0..late {
            g.on_feedback(&PrefetchFeedback::Late {
                page: 0,
                remaining: 1,
            });
        }
    }

    #[test]
    fn high_accuracy_grows_width() {
        let mut g = AdaptiveGeometry::new(cfg(), 1, 1);
        feed(&mut g, 10, 0, 0);
        assert_eq!(g.width(), 2);
        feed(&mut g, 10, 0, 0);
        assert_eq!(g.width(), 3);
    }

    #[test]
    fn low_accuracy_shrinks_width_to_the_floor() {
        let mut g = AdaptiveGeometry::new(cfg(), 4, 1);
        for _ in 0..5 {
            feed(&mut g, 1, 9, 0);
        }
        assert_eq!(g.width(), 1, "clamped at the floor");
    }

    #[test]
    fn lateness_grows_lookahead_and_recovery_shrinks_it() {
        let mut g = AdaptiveGeometry::new(cfg(), 1, 1);
        feed(&mut g, 5, 0, 5); // 50% late.
        assert_eq!(g.lookahead(), 2);
        feed(&mut g, 5, 0, 5);
        assert_eq!(g.lookahead(), 3);
        // All on time now: decays back.
        feed(&mut g, 10, 0, 0);
        assert_eq!(g.lookahead(), 2);
    }

    #[test]
    fn no_feedback_no_adaptation() {
        let mut g = AdaptiveGeometry::new(cfg(), 2, 2);
        feed(&mut g, 3, 0, 0); // Below the period.
        assert_eq!(g.width(), 2);
        assert_eq!(g.adaptations, 0);
    }

    #[test]
    #[should_panic(expected = "start width out of range")]
    fn bad_start_rejected() {
        let _ = AdaptiveGeometry::new(cfg(), 9, 1);
    }
}
