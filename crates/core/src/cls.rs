//! The assembled CLS prefetcher.
//!
//! Wires the neocortex (slow Hebbian structure learner), hippocampus
//! (fast episodic store), replay scheduler, training-instance sampler,
//! and phase detector behind the [`hnp_memsim::Prefetcher`] interface,
//! per the deployment in Fig. 1 of the paper: the prefetcher consumes
//! the demand-miss stream and predicts future miss deltas.

use std::collections::VecDeque;

use hnp_memsim::deltas::{pages_from_rollout, DeltaVocab};
use hnp_memsim::prefetcher::{MissEvent, Prefetcher};
use hnp_obs::{Event, Registry};

use crate::adaptive::{AdaptiveConfig, AdaptiveGeometry};
use crate::confidence::ConfidenceTracker;
use crate::encoder::{Encoder, EncoderKind};
use crate::episodic::{AssociativeConfig, AssociativeHippocampus, EpisodicBackend, EpisodicStore};
use crate::hippocampus::{CapacityPolicy, Hippocampus};
use crate::neocortex::{Neocortex, NeocortexConfig};
use crate::phase::{PhaseConfig, PhaseDetector};
use crate::replay::{ReplayConfig, ReplayScheduler};
use crate::sampler::{SampleDecision, SamplerState, TrainingSampler};

/// Configuration of the full CLS prefetcher.
#[derive(Debug, Clone)]
pub struct ClsConfig {
    /// Delta vocabulary half-range.
    pub delta_range: i64,
    /// Input encoding (§5.3).
    pub encoder: EncoderKind,
    /// Neocortex sizing.
    pub neocortex: NeocortexConfig,
    /// Prediction steps per miss (prefetch length, §5.2).
    pub lookahead: usize,
    /// Predictions per step (prefetch width, §5.2).
    pub width: usize,
    /// Replay configuration (§3.2, §5.4).
    pub replay: ReplayConfig,
    /// Training-instance selection (§5.1).
    pub sampler: TrainingSampler,
    /// Episodic-store backend (§5.4): the exact buffer with a
    /// capacity policy, or the compressed associative store.
    pub episodic: EpisodicBackend,
    /// Phase detection (§5.4); `None` disables it.
    pub phase: Option<PhaseConfig>,
    /// Minimum first-step prediction confidence required to issue
    /// prefetches (§5.2: "systems where the network is the bottleneck
    /// require a prefetcher that is highly selective and confident").
    /// Prevents an untrained or defeated model (OOV-dominated streams,
    /// §5.3) from polluting memory with garbage prefetches.
    pub min_confidence: f32,
    /// Feedback-driven width/lookahead adaptation (§5.2 co-design);
    /// `None` keeps the static geometry.
    pub adaptive: Option<AdaptiveConfig>,
    /// Track deltas and history per source stream (§4: a centralized
    /// prefetcher "may require more processing to ensure that it can
    /// isolate the individual access patterns in the combined access
    /// streams"). One shared model still learns all streams; only the
    /// miss-history bookkeeping is isolated. With `false`, interleaved
    /// streams produce garbage cross-stream deltas.
    pub stream_isolation: bool,
    /// Seed for sampler/replay randomness.
    pub seed: u64,
    /// Observer registry; the prefetcher emits replay-step, phase-
    /// transition, and periodic epoch-summary events into it. Share
    /// the same registry with the simulator's config to interleave
    /// model events with memory events in one stream.
    pub obs: Registry,
}

impl Default for ClsConfig {
    fn default() -> Self {
        Self {
            delta_range: 64,
            encoder: EncoderKind::OneHot,
            neocortex: NeocortexConfig::default(),
            lookahead: 2,
            width: 2,
            replay: ReplayConfig::default(),
            sampler: TrainingSampler::EveryMiss,
            episodic: EpisodicBackend::Exact(CapacityPolicy::Ring { capacity: 4096 }),
            phase: Some(PhaseConfig::default()),
            min_confidence: 0.03,
            adaptive: None,
            stream_isolation: true,
            seed: 0xc15,
            obs: Registry::new(),
        }
    }
}

impl ClsConfig {
    /// Sets the sampler/replay randomness seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the prefetch lookahead (prediction steps per miss).
    pub fn with_lookahead(mut self, steps: usize) -> Self {
        self.lookahead = steps;
        self
    }

    /// Sets the prefetch width (predictions per step).
    pub fn with_width(mut self, width: usize) -> Self {
        self.width = width;
        self
    }

    /// Sets the minimum issue confidence.
    pub fn with_min_confidence(mut self, min: f32) -> Self {
        self.min_confidence = min;
        self
    }

    /// Attaches an observer registry to the prefetcher.
    pub fn with_observer(mut self, obs: Registry) -> Self {
        self.obs = obs;
        self
    }

    /// The paper's §3.1 configuration: miss history of one input (the
    /// recurrent state carries the rest), training on every miss,
    /// unbounded hippocampus.
    pub fn paper() -> Self {
        Self {
            episodic: EpisodicBackend::Exact(CapacityPolicy::Unbounded),
            ..Self::default()
        }
    }

    /// A plain Hebbian prefetcher: no hippocampus, no replay (the
    /// "Hebbian" series in Fig. 5 before replay is added).
    pub fn hebbian_only() -> Self {
        Self {
            replay: ReplayConfig::off(),
            episodic: EpisodicBackend::Exact(CapacityPolicy::Ring { capacity: 1 }),
            phase: None,
            ..Self::default()
        }
    }

    /// A small, fast configuration for tests.
    pub fn small() -> Self {
        Self {
            delta_range: 32,
            neocortex: NeocortexConfig {
                hidden: 256,
                connectivity: 0.25,
                hidden_active: 26,
                recurrent_bits: 64,
                recurrent_sample: 8,
                ..NeocortexConfig::default()
            },
            ..Self::default()
        }
    }
}

/// Misses between consecutive `EpochSummary` events.
const OBS_EPOCH_PERIOD: u64 = 256;

/// The CLS prefetcher.
pub struct ClsPrefetcher {
    cfg: ClsConfig,
    vocab: DeltaVocab,
    encoder: Encoder,
    cortex: Neocortex,
    hippo: Box<dyn EpisodicStore>,
    replay: ReplayScheduler,
    sampler: SamplerState,
    phase: Option<PhaseDetector>,
    tracker: ConfidenceTracker,
    adaptive: Option<AdaptiveGeometry>,
    /// Per-stream miss-history contexts (all streams share key 0 when
    /// stream isolation is off).
    streams: std::collections::BTreeMap<u16, StreamCtx>,
    batch_queue: Vec<(Vec<usize>, Vec<u32>, usize)>,
    steps: u64,
    name: String,
}

/// Per-stream delta-tracking state.
#[derive(Debug, Default, Clone)]
struct StreamCtx {
    history: VecDeque<usize>,
    last_page: Option<u64>,
}

impl ClsPrefetcher {
    /// Builds the prefetcher from `cfg`.
    pub fn new(cfg: ClsConfig) -> Self {
        let vocab = DeltaVocab::new(cfg.delta_range);
        let encoder = Encoder::new(cfg.encoder, vocab.len());
        let cortex = Neocortex::new(&encoder, vocab.len(), &cfg.neocortex);
        let hippo: Box<dyn EpisodicStore> = match cfg.episodic {
            EpisodicBackend::Exact(policy) => Box::new(Hippocampus::new(policy)),
            EpisodicBackend::Associative {
                key_bits,
                key_active,
                reservoir,
            } => Box::new(AssociativeHippocampus::new(AssociativeConfig {
                key_bits,
                key_active,
                reservoir,
                ..AssociativeConfig::sized(
                    encoder.pattern_bits(),
                    cfg.neocortex.recurrent_bits,
                    vocab.len(),
                )
            })),
        };
        let name = if cfg.replay.enabled {
            "cls-hebbian".to_string()
        } else {
            "hebbian".to_string()
        };
        Self {
            vocab,
            cortex,
            hippo,
            replay: ReplayScheduler::new(cfg.replay.clone()),
            sampler: SamplerState::new(cfg.sampler, cfg.seed),
            phase: cfg
                .phase
                .clone()
                .map(|p| PhaseDetector::new(DeltaVocab::new(cfg.delta_range).len(), p)),
            tracker: ConfidenceTracker::new(0.02, 256),
            adaptive: cfg
                .adaptive
                .clone()
                .map(|a| AdaptiveGeometry::new(a, cfg.width, cfg.lookahead)),
            streams: std::collections::BTreeMap::new(),
            batch_queue: Vec::new(),
            steps: 0,
            encoder,
            cfg,
            name,
        }
    }

    /// Smoothed confidence on observed targets.
    pub fn confidence(&self) -> f32 {
        self.tracker.ema()
    }

    /// Rolling prediction accuracy.
    pub fn accuracy(&self) -> f32 {
        self.tracker.windowed_accuracy()
    }

    /// The episodic store (inspection).
    pub fn episodic(&self) -> &dyn EpisodicStore {
        self.hippo.as_ref()
    }

    /// Total replayed examples.
    pub fn replayed(&self) -> u64 {
        self.replay.replayed
    }

    /// Examples trained / skipped by the sampler.
    pub fn sampler_stats(&self) -> (u64, u64) {
        (self.sampler.trained, self.sampler.skipped)
    }

    /// Current phase id (0 when phase detection is off).
    pub fn current_phase(&self) -> u64 {
        self.phase.as_ref().map(|p| p.current_phase()).unwrap_or(0)
    }

    /// The neocortex (availability experiments swap its weights).
    pub fn cortex_mut(&mut self) -> &mut Neocortex {
        &mut self.cortex
    }

    /// The adaptive controller's current (width, lookahead), or the
    /// static configuration when adaptation is off.
    pub fn geometry(&self) -> (usize, usize) {
        match &self.adaptive {
            Some(a) => (a.width(), a.lookahead()),
            None => (self.cfg.width, self.cfg.lookahead),
        }
    }

    /// The last `window` tokens of a stream's history.
    fn context_of(history: &VecDeque<usize>, window: usize) -> Vec<usize> {
        let n = history.len();
        history
            .iter()
            .skip(n.saturating_sub(window))
            .copied()
            .collect()
    }

    fn learn(&mut self, ctx: Vec<usize>, token: usize) {
        if ctx.is_empty() {
            return;
        }
        let pattern = self.encoder.encode(&ctx);
        let phase = self.current_phase();
        // Capture the pre-training recurrent context for the episode.
        let recurrent = self.cortex.recurrent_state();
        // Confidence-gated sampling needs *this example's* confidence,
        // which costs one extra (non-advancing) inference — exactly
        // the §5.1 trade: pay a cheap forward pass to skip expensive
        // training on well-learned cases. Other samplers use the
        // running EMA for free.
        let gate_confidence = if matches!(self.cfg.sampler, TrainingSampler::ConfidenceGated { .. })
        {
            self.cortex.network_mut().infer(&pattern, token).confidence
        } else {
            self.tracker.ema()
        };
        let decision = self.sampler.decide(gate_confidence);
        let outcome = match decision {
            SampleDecision::Train => self.cortex.train(&pattern, token),
            SampleDecision::Skip => self.cortex.observe(&pattern, token),
            SampleDecision::Enqueue => {
                self.batch_queue.push((ctx.clone(), pattern.clone(), token));
                let o = self.cortex.observe(&pattern, token);
                if self.sampler.should_flush(self.batch_queue.len()) {
                    let queued: Vec<_> = self.batch_queue.drain(..).collect();
                    self.sampler.trained += queued.len() as u64;
                    for (_, p, t) in &queued {
                        self.cortex.train(p, *t);
                    }
                }
                o
            }
        };
        self.tracker.record(outcome.confidence, outcome.correct);
        self.hippo.store_episode(crate::hippocampus::Episode {
            history: ctx,
            pattern,
            recurrent,
            target: token,
            confidence: outcome.confidence,
            stored_at: self.steps,
            phase,
            replays: 0,
            weight: 1,
        });
        if decision == SampleDecision::Train {
            self.replay
                .after_train(&mut self.cortex, self.hippo.as_mut(), &self.encoder, phase);
        }
    }
}

impl Prefetcher for ClsPrefetcher {
    fn name(&self) -> &str {
        &self.name
    }

    fn on_miss(&mut self, miss: &MissEvent) -> Vec<u64> {
        self.steps += 1;
        let key = if self.cfg.stream_isolation {
            miss.stream
        } else {
            0
        };
        let window = self.encoder.window();
        let stream = self.streams.entry(key).or_default();
        let Some(last) = stream.last_page else {
            stream.last_page = Some(miss.page);
            return Vec::new();
        };
        let delta = miss.page as i64 - last as i64;
        let token = self.vocab.token_of(delta);
        stream.last_page = Some(miss.page);
        // Learn the transition (context before this token -> token).
        let ctx = Self::context_of(&stream.history, window);
        // Advance the history now; `learn` borrows self mutably.
        stream.history.push_back(token);
        while stream.history.len() > window + 1 {
            stream.history.pop_front();
        }
        let hist = Self::context_of(&self.streams[&key].history, window);
        let replayed_before = self.replay.replayed;
        self.learn(ctx, token);
        let replayed_now = self.replay.replayed - replayed_before;
        if replayed_now > 0 {
            self.cfg.obs.emit(&Event::ReplayStep {
                step: self.steps,
                replayed: replayed_now,
                pressure: self.hippo.stored() as u64,
            });
        }
        if let Some(pd) = &mut self.phase {
            if let Some(change) = pd.observe(token) {
                self.cfg.obs.emit(&Event::PhaseTransition {
                    step: self.steps,
                    from: change.from as i64,
                    to: change.to as i64,
                    novel: change.is_new,
                });
            }
        }
        if self.steps.is_multiple_of(OBS_EPOCH_PERIOD) {
            let net = self.cortex.stats();
            self.cfg.obs.emit(&Event::EpochSummary {
                step: self.steps,
                confidence_milli: (self.tracker.ema() * 1000.0) as u64,
                accuracy_milli: (self.tracker.windowed_accuracy() * 1000.0) as u64,
                replayed: self.replay.replayed,
                overlap_milli: net.overlap_milli(),
                weight_ops: net.update_ops,
            });
        }
        // Predict forward from the full history including `token`;
        // only issue when the model is confident enough (§5.2).
        let (lookahead, width) = match &self.adaptive {
            Some(a) => (a.lookahead(), a.width()),
            None => (self.cfg.lookahead, self.cfg.width),
        };
        let (rollout, confidence) =
            self.cortex
                .predict_with_confidence(&hist, &self.encoder, lookahead, width);
        if confidence < self.cfg.min_confidence {
            return Vec::new();
        }
        pages_from_rollout(&self.vocab, miss.page, &rollout)
    }

    fn on_feedback(&mut self, feedback: &hnp_memsim::prefetcher::PrefetchFeedback) {
        if let Some(a) = &mut self.adaptive {
            a.on_feedback(feedback);
        }
    }

    fn reset_state(&mut self) {
        // A restart loses the per-stream miss-history contexts; the
        // consolidated neocortical weights and episodic store survive.
        self.streams.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hnp_memsim::{NoPrefetcher, SimConfig, Simulator};
    use hnp_trace::{phased, Pattern};

    fn sim() -> Simulator {
        Simulator::new(SimConfig {
            capacity_pages: 32,
            miss_latency: 50,
            prefetch_latency: 50,
            max_issue_per_miss: 4,
            ..SimConfig::default()
        })
    }

    #[test]
    fn learns_stride_and_removes_misses() {
        let t = Pattern::Stride.generate(4000, 0);
        let s = sim();
        let base = s.run(&t, &mut NoPrefetcher);
        let mut p = ClsPrefetcher::new(ClsConfig::small());
        let rep = s.run(&t, &mut p);
        assert!(
            rep.pct_misses_removed(&base) > 30.0,
            "removed {:.1}%",
            rep.pct_misses_removed(&base)
        );
    }

    #[test]
    fn learns_pointer_chase() {
        let t = Pattern::PointerChase.generate(6000, 1);
        let s = sim();
        let base = s.run(&t, &mut NoPrefetcher);
        let mut p = ClsPrefetcher::new(ClsConfig::small());
        let rep = s.run(&t, &mut p);
        assert!(
            rep.pct_misses_removed(&base) > 20.0,
            "removed {:.1}%",
            rep.pct_misses_removed(&base)
        );
    }

    #[test]
    fn replay_protects_old_phase_better_than_no_replay() {
        // A-B-A phase trace: learn A, drift to B, return to A.
        let t = phased::phases(
            &[
                (Pattern::PointerChase, 4000),
                (Pattern::Stride, 4000),
                (Pattern::PointerChase, 4000),
            ],
            7,
        );
        let s = sim();
        let base = s.run(&t, &mut NoPrefetcher);
        let mut with = ClsPrefetcher::new(ClsConfig {
            replay: ReplayConfig {
                per_step: 2,
                ..ReplayConfig::default()
            },
            ..ClsConfig::small()
        });
        let mut without = ClsPrefetcher::new(ClsConfig {
            replay: ReplayConfig::off(),
            episodic: EpisodicBackend::Exact(CapacityPolicy::Ring { capacity: 1 }),
            ..ClsConfig::small()
        });
        let rep_with = s.run(&t, &mut with);
        let rep_without = s.run(&t, &mut without);
        assert!(
            rep_with.pct_misses_removed(&base) >= rep_without.pct_misses_removed(&base) - 2.0,
            "replay {:.1}% vs none {:.1}%",
            rep_with.pct_misses_removed(&base),
            rep_without.pct_misses_removed(&base)
        );
        assert!(with.replayed() > 0, "replay actually ran");
    }

    #[test]
    fn names_reflect_replay_mode() {
        assert_eq!(ClsPrefetcher::new(ClsConfig::paper()).name(), "cls-hebbian");
        assert_eq!(
            ClsPrefetcher::new(ClsConfig::hebbian_only()).name(),
            "hebbian"
        );
    }

    #[test]
    fn first_miss_emits_nothing() {
        let mut p = ClsPrefetcher::new(ClsConfig::small());
        let out = p.on_miss(&MissEvent {
            page: 100,
            tick: 0,
            stream: 0,
        });
        assert!(out.is_empty());
    }

    #[test]
    fn sampler_stats_accumulate() {
        let t = Pattern::Stride.generate(2000, 0);
        let mut p = ClsPrefetcher::new(ClsConfig {
            sampler: TrainingSampler::EveryNth { n: 2 },
            ..ClsConfig::small()
        });
        let _ = sim().run(&t, &mut p);
        let (trained, skipped) = p.sampler_stats();
        assert!(trained > 0 && skipped > 0);
        assert!((trained as i64 - skipped as i64).abs() <= 1);
    }

    #[test]
    fn hippocampus_respects_ring_capacity() {
        let t = Pattern::PointerChase.generate(3000, 2);
        let mut p = ClsPrefetcher::new(ClsConfig {
            episodic: EpisodicBackend::Exact(CapacityPolicy::Ring { capacity: 100 }),
            ..ClsConfig::small()
        });
        let _ = sim().run(&t, &mut p);
        assert!(p.episodic().stored() <= 100);
        assert!(p.episodic().offered() > 100);
    }

    #[test]
    fn stream_isolation_rescues_interleaved_streams() {
        // Two strided streams in disjoint regions, interleaved
        // access-by-access: cross-stream deltas are garbage unless the
        // prefetcher tracks per-stream history.
        let a = Pattern::Stride.generate(3000, 1);
        let b = {
            let params = hnp_trace::patterns::PatternParams {
                base: 0x9_0000_0000,
                ..hnp_trace::patterns::PatternParams::default()
            };
            Pattern::Stride.generate_with(3000, 2, &params)
        };
        let trace = phased::interleave(&[a, b], 1);
        let s = sim();
        let base = s.run(&trace, &mut NoPrefetcher);
        let mut isolated = ClsPrefetcher::new(ClsConfig {
            stream_isolation: true,
            ..ClsConfig::small()
        });
        let mut mixed = ClsPrefetcher::new(ClsConfig {
            stream_isolation: false,
            ..ClsConfig::small()
        });
        let iso = s.run(&trace, &mut isolated);
        let mix = s.run(&trace, &mut mixed);
        assert!(
            iso.pct_misses_removed(&base) > mix.pct_misses_removed(&base) + 10.0,
            "isolated {:.1}% vs mixed {:.1}%",
            iso.pct_misses_removed(&base),
            mix.pct_misses_removed(&base)
        );
    }

    #[test]
    fn associative_backend_works_end_to_end() {
        let t = Pattern::PointerChase.generate(6000, 1);
        let s = sim();
        let base = s.run(&t, &mut NoPrefetcher);
        let mut p = ClsPrefetcher::new(ClsConfig {
            episodic: EpisodicBackend::Associative {
                key_bits: 1024,
                key_active: 24,
                reservoir: 256,
            },
            ..ClsConfig::small()
        });
        let rep = s.run(&t, &mut p);
        assert!(
            rep.pct_misses_removed(&base) > 15.0,
            "associative-backend removal {:.1}%",
            rep.pct_misses_removed(&base)
        );
        assert!(p.replayed() > 0, "replay ran from the associative store");
        assert!(
            p.episodic().stored() <= 256,
            "cue reservoir bound: {}",
            p.episodic().stored()
        );
        assert!(p.episodic().offered() > 1000);
    }

    #[test]
    fn adaptive_geometry_raises_lookahead_under_inference_latency() {
        // §5.2: inference latency makes lookahead-1 prefetches late;
        // the controller must react by predicting further ahead.
        let t = Pattern::Stride.generate(6000, 0);
        let sim_slow = Simulator::new(SimConfig {
            capacity_pages: 32,
            miss_latency: 50,
            prefetch_latency: 50,
            inference_latency: 300,
            max_issue_per_miss: 8,
            ..SimConfig::default()
        });
        let base = sim_slow.run(&t, &mut NoPrefetcher);
        let mut fixed = ClsPrefetcher::new(ClsConfig {
            lookahead: 1,
            width: 1,
            ..ClsConfig::small()
        });
        let mut adaptive = ClsPrefetcher::new(ClsConfig {
            lookahead: 1,
            width: 1,
            adaptive: Some(crate::adaptive::AdaptiveConfig {
                period: 64,
                ..crate::adaptive::AdaptiveConfig::default()
            }),
            ..ClsConfig::small()
        });
        let rep_fixed = sim_slow.run(&t, &mut fixed);
        let rep_adaptive = sim_slow.run(&t, &mut adaptive);
        let (_, lookahead) = adaptive.geometry();
        assert!(
            lookahead > 1,
            "controller must have raised lookahead, still at {lookahead}"
        );
        assert!(
            rep_adaptive.pct_misses_removed(&base) > rep_fixed.pct_misses_removed(&base),
            "adaptive {:.1}% vs fixed {:.1}%",
            rep_adaptive.pct_misses_removed(&base),
            rep_fixed.pct_misses_removed(&base)
        );
    }

    #[test]
    fn model_events_flow_and_observers_are_inert() {
        use hnp_obs::Counters;
        let t = phased::phases(&[(Pattern::PointerChase, 3000), (Pattern::Stride, 3000)], 7);
        let s = sim();
        let cfg = ClsConfig {
            replay: ReplayConfig {
                per_step: 2,
                ..ReplayConfig::default()
            },
            ..ClsConfig::small()
        };
        let mut plain = ClsPrefetcher::new(cfg.clone());
        let rep_plain = s.run(&t, &mut plain);

        let reg = Registry::new();
        let counters = Counters::new();
        reg.attach(counters.clone());
        let mut observed = ClsPrefetcher::new(cfg.with_observer(reg));
        let rep_obs = s.run(&t, &mut observed);

        assert_eq!(rep_plain, rep_obs, "observers must not perturb the model");
        assert_eq!(counters.get("replayed_episodes"), observed.replayed());
        assert!(counters.get("replay_step") > 0, "replay steps observed");
        assert!(
            counters.get("phase_transition") > 0,
            "the A->B drift must surface as a phase transition"
        );
        assert!(counters.get("epoch_summary") > 0, "epoch summaries flow");
    }

    #[test]
    fn deterministic_given_seed() {
        let t = Pattern::IndirectIndex.generate(2000, 3);
        let s = sim();
        let a = s.run(&t, &mut ClsPrefetcher::new(ClsConfig::small()));
        let b = s.run(&t, &mut ClsPrefetcher::new(ClsConfig::small()));
        assert_eq!(a.full_misses, b.full_misses);
        assert_eq!(a.prefetches_issued, b.prefetches_issued);
    }
}
