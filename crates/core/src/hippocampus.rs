//! The hippocampal episodic store (§3.2, §5.4).
//!
//! The hippocampus in CLS theory "quickly memorizes the information it
//! encounters ... in a compressed format" and later feeds replay. The
//! paper's experiments assume unlimited storage; §5.4 lists the
//! practical policies a real implementation must choose between, all
//! of which are implemented here:
//!
//! * [`CapacityPolicy::Unbounded`] — the paper's experimental setup;
//! * [`CapacityPolicy::Ring`] — a fixed-size buffer, oldest evicted;
//! * [`CapacityPolicy::ConfidenceFiltered`] — skip well-learned
//!   examples on entry, evict the highest-confidence first;
//! * [`CapacityPolicy::Consolidating`] — free episodes that have been
//!   replayed enough ("already consolidated due to replay, thus not
//!   needed further");
//! * [`CapacityPolicy::Averaging`] — merge similar episodes into
//!   weighted prototypes ("average similar examples, producing single
//!   representative cases").

use rand::Rng;

/// One stored training episode: the encoded input pattern and its
/// observed next-token target.
#[derive(Debug, Clone, PartialEq)]
pub struct Episode {
    /// The raw token history whose encoding is `pattern` (kept so
    /// generative replay can re-roll sequences and so episodes can be
    /// re-encoded under a different encoder).
    pub history: Vec<usize>,
    /// Active pattern bits (sorted).
    pub pattern: Vec<u32>,
    /// The network's recurrent-state bits when the episode was
    /// recorded. Replay reinstates this context — replaying a pattern
    /// under the *current* context would potentiate its target on the
    /// wrong winner set and erode the true association.
    pub recurrent: Vec<u32>,
    /// Target class.
    pub target: usize,
    /// Model confidence on this example when it was stored.
    pub confidence: f32,
    /// Step counter at storage time.
    pub stored_at: u64,
    /// Phase tag from the phase detector (0 when untracked).
    pub phase: u64,
    /// Times this episode has been replayed.
    pub replays: u32,
    /// Merge weight (number of raw episodes behind a prototype).
    pub weight: u32,
}

/// Storage policy for the episodic buffer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CapacityPolicy {
    /// Store everything (the paper's idealized setup).
    Unbounded,
    /// Fixed capacity, oldest evicted first.
    Ring {
        /// Maximum episodes.
        capacity: usize,
    },
    /// Skip examples the model already predicts with confidence above
    /// `skip_above`; when full, evict the highest-confidence episode.
    ConfidenceFiltered {
        /// Maximum episodes.
        capacity: usize,
        /// Entry filter threshold.
        skip_above: f32,
    },
    /// Drop episodes once replayed `max_replays` times; when full,
    /// evict the most-replayed episode.
    Consolidating {
        /// Maximum episodes.
        capacity: usize,
        /// Replays after which an episode is considered consolidated.
        max_replays: u32,
    },
    /// Merge a new episode into an existing same-target prototype when
    /// their pattern overlap (Jaccard) reaches `merge_overlap`; when
    /// full, evict the lightest prototype.
    Averaging {
        /// Maximum prototypes.
        capacity: usize,
        /// Jaccard similarity required to merge.
        merge_overlap: f64,
    },
}

/// The episodic store.
#[derive(Debug, Clone)]
pub struct Hippocampus {
    policy: CapacityPolicy,
    episodes: Vec<Episode>,
    /// Raw episodes offered (including skipped/merged).
    offered: u64,
    /// Episodes rejected by the confidence filter.
    skipped: u64,
    /// Episodes merged into prototypes.
    merged: u64,
}

impl Hippocampus {
    /// Creates an empty store under `policy`.
    pub fn new(policy: CapacityPolicy) -> Self {
        Self {
            policy,
            episodes: Vec::new(),
            offered: 0,
            skipped: 0,
            merged: 0,
        }
    }

    /// The storage policy.
    pub fn policy(&self) -> CapacityPolicy {
        self.policy
    }

    /// Stored episode count.
    pub fn len(&self) -> usize {
        self.episodes.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.episodes.is_empty()
    }

    /// Raw episodes offered via [`store`](Self::store).
    pub fn offered(&self) -> u64 {
        self.offered
    }

    /// Episodes rejected by the confidence filter.
    pub fn skipped(&self) -> u64 {
        self.skipped
    }

    /// Episodes merged into prototypes.
    pub fn merged(&self) -> u64 {
        self.merged
    }

    /// Read access to the stored episodes.
    pub fn episodes(&self) -> &[Episode] {
        &self.episodes
    }

    /// Offers an episode to the store; the policy decides whether and
    /// how it is kept.
    #[allow(clippy::too_many_arguments)]
    pub fn store(
        &mut self,
        history: Vec<usize>,
        pattern: Vec<u32>,
        recurrent: Vec<u32>,
        target: usize,
        confidence: f32,
        now: u64,
        phase: u64,
    ) {
        self.offered += 1;
        let episode = Episode {
            history,
            pattern,
            recurrent,
            target,
            confidence,
            stored_at: now,
            phase,
            replays: 0,
            weight: 1,
        };
        match self.policy {
            CapacityPolicy::Unbounded => self.episodes.push(episode),
            CapacityPolicy::Ring { capacity } => {
                if self.episodes.len() >= capacity {
                    // Evict the oldest (None only for capacity 0).
                    if let Some(oldest) = self.oldest_index() {
                        self.episodes.swap_remove(oldest);
                    }
                }
                self.episodes.push(episode);
            }
            CapacityPolicy::ConfidenceFiltered {
                capacity,
                skip_above,
            } => {
                if episode.confidence > skip_above {
                    self.skipped += 1;
                    return;
                }
                if self.episodes.len() >= capacity {
                    let worst = self
                        .episodes
                        .iter()
                        .enumerate()
                        .max_by(|a, b| a.1.confidence.total_cmp(&b.1.confidence))
                        .map(|(i, _)| i);
                    if let Some(worst) = worst {
                        self.episodes.swap_remove(worst);
                    }
                }
                self.episodes.push(episode);
            }
            CapacityPolicy::Consolidating { capacity, .. } => {
                if self.episodes.len() >= capacity {
                    let most_replayed = self
                        .episodes
                        .iter()
                        .enumerate()
                        .max_by_key(|(_, e)| e.replays)
                        .map(|(i, _)| i);
                    if let Some(most_replayed) = most_replayed {
                        self.episodes.swap_remove(most_replayed);
                    }
                }
                self.episodes.push(episode);
            }
            CapacityPolicy::Averaging {
                capacity,
                merge_overlap,
            } => {
                if let Some(i) = self.find_mergeable(&episode, merge_overlap) {
                    self.episodes[i].weight += 1;
                    // Refresh recency/confidence toward the new sight.
                    self.episodes[i].stored_at = episode.stored_at;
                    self.episodes[i].confidence =
                        0.5 * (self.episodes[i].confidence + episode.confidence);
                    self.merged += 1;
                    return;
                }
                if self.episodes.len() >= capacity {
                    let lightest = self
                        .episodes
                        .iter()
                        .enumerate()
                        .min_by_key(|(_, e)| e.weight)
                        .map(|(i, _)| i);
                    if let Some(lightest) = lightest {
                        self.episodes.swap_remove(lightest);
                    }
                }
                self.episodes.push(episode);
            }
        }
    }

    /// Samples up to `k` episode indices uniformly without replacement.
    pub fn sample(&self, k: usize, rng: &mut impl Rng) -> Vec<usize> {
        let n = self.episodes.len();
        if n == 0 || k == 0 {
            return Vec::new();
        }
        if k >= n {
            return (0..n).collect();
        }
        // Partial Fisher-Yates over an index array.
        let mut idx: Vec<usize> = (0..n).collect();
        for i in 0..k {
            let j = rng.gen_range(i..n);
            idx.swap(i, j);
        }
        idx.truncate(k);
        idx
    }

    /// Samples up to `k` episodes preferring phases other than
    /// `current_phase` (replay old contexts while learning a new one).
    /// Falls back to uniform sampling when no other phase is stored.
    pub fn sample_other_phases(
        &self,
        k: usize,
        current_phase: u64,
        rng: &mut impl Rng,
    ) -> Vec<usize> {
        let others: Vec<usize> = self
            .episodes
            .iter()
            .enumerate()
            .filter(|(_, e)| e.phase != current_phase)
            .map(|(i, _)| i)
            .collect();
        if others.is_empty() {
            return self.sample(k, rng);
        }
        if k >= others.len() {
            return others;
        }
        let mut idx = others;
        let n = idx.len();
        for i in 0..k {
            let j = rng.gen_range(i..n);
            idx.swap(i, j);
        }
        idx.truncate(k);
        idx
    }

    /// Marks an episode as replayed once; under
    /// [`CapacityPolicy::Consolidating`] the episode is freed when it
    /// reaches the replay budget. Returns whether the episode was
    /// freed.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn mark_replayed(&mut self, index: usize) -> bool {
        let e = &mut self.episodes[index];
        e.replays += 1;
        if let CapacityPolicy::Consolidating { max_replays, .. } = self.policy {
            if e.replays >= max_replays {
                self.episodes.swap_remove(index);
                return true;
            }
        }
        false
    }

    /// Clears all stored episodes.
    pub fn clear(&mut self) {
        self.episodes.clear();
    }

    fn oldest_index(&self) -> Option<usize> {
        self.episodes
            .iter()
            .enumerate()
            .min_by_key(|(_, e)| e.stored_at)
            .map(|(i, _)| i)
    }

    fn find_mergeable(&self, episode: &Episode, threshold: f64) -> Option<usize> {
        self.episodes.iter().position(|e| {
            e.target == episode.target && jaccard(&e.pattern, &episode.pattern) >= threshold
        })
    }
}

/// Jaccard similarity of two sorted bit-index lists.
fn jaccard(a: &[u32], b: &[u32]) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    let mut i = 0;
    let mut j = 0;
    let mut inter = 0usize;
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                inter += 1;
                i += 1;
                j += 1;
            }
        }
    }
    let union = a.len() + b.len() - inter;
    inter as f64 / union as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn ep(h: &mut Hippocampus, bits: &[u32], target: usize, conf: f32, now: u64) {
        h.store(vec![target], bits.to_vec(), vec![], target, conf, now, 0);
    }

    #[test]
    fn unbounded_keeps_everything() {
        let mut h = Hippocampus::new(CapacityPolicy::Unbounded);
        for i in 0..1000u64 {
            ep(&mut h, &[i as u32], 0, 0.5, i);
        }
        assert_eq!(h.len(), 1000);
    }

    #[test]
    fn ring_evicts_oldest() {
        let mut h = Hippocampus::new(CapacityPolicy::Ring { capacity: 3 });
        for i in 0..5u64 {
            ep(&mut h, &[i as u32], 0, 0.5, i);
        }
        assert_eq!(h.len(), 3);
        let stored: Vec<u64> = h.episodes().iter().map(|e| e.stored_at).collect();
        assert!(!stored.contains(&0) && !stored.contains(&1));
    }

    #[test]
    fn confidence_filter_skips_well_learned() {
        let mut h = Hippocampus::new(CapacityPolicy::ConfidenceFiltered {
            capacity: 10,
            skip_above: 0.9,
        });
        ep(&mut h, &[1], 0, 0.95, 0); // Skipped.
        ep(&mut h, &[2], 0, 0.5, 1); // Kept.
        assert_eq!(h.len(), 1);
        assert_eq!(h.skipped(), 1);
    }

    #[test]
    fn confidence_filter_evicts_highest_confidence() {
        let mut h = Hippocampus::new(CapacityPolicy::ConfidenceFiltered {
            capacity: 2,
            skip_above: 0.9,
        });
        ep(&mut h, &[1], 0, 0.8, 0);
        ep(&mut h, &[2], 0, 0.2, 1);
        ep(&mut h, &[3], 0, 0.5, 2);
        assert_eq!(h.len(), 2);
        assert!(h.episodes().iter().all(|e| e.confidence < 0.8));
    }

    #[test]
    fn consolidation_frees_replayed_episodes() {
        let mut h = Hippocampus::new(CapacityPolicy::Consolidating {
            capacity: 10,
            max_replays: 2,
        });
        ep(&mut h, &[1], 0, 0.5, 0);
        assert!(!h.mark_replayed(0));
        assert!(h.mark_replayed(0), "second replay consolidates");
        assert!(h.is_empty());
    }

    #[test]
    fn averaging_merges_similar_same_target_episodes() {
        let mut h = Hippocampus::new(CapacityPolicy::Averaging {
            capacity: 10,
            merge_overlap: 0.6,
        });
        ep(&mut h, &[1, 2, 3, 4], 7, 0.5, 0);
        ep(&mut h, &[1, 2, 3, 5], 7, 0.7, 1); // Jaccard 3/5 = 0.6.
        assert_eq!(h.len(), 1);
        assert_eq!(h.episodes()[0].weight, 2);
        assert_eq!(h.merged(), 1);
        // Different target never merges.
        ep(&mut h, &[1, 2, 3, 4], 9, 0.5, 2);
        assert_eq!(h.len(), 2);
    }

    #[test]
    fn sampling_is_without_replacement_and_in_range() {
        let mut h = Hippocampus::new(CapacityPolicy::Unbounded);
        for i in 0..20u64 {
            ep(&mut h, &[i as u32], 0, 0.5, i);
        }
        let mut rng = StdRng::seed_from_u64(1);
        let s = h.sample(8, &mut rng);
        assert_eq!(s.len(), 8);
        let set: std::collections::HashSet<usize> = s.iter().copied().collect();
        assert_eq!(set.len(), 8);
        assert!(s.iter().all(|&i| i < 20));
        // k > n returns everything.
        assert_eq!(h.sample(100, &mut rng).len(), 20);
        // Empty store returns nothing.
        let empty = Hippocampus::new(CapacityPolicy::Unbounded);
        assert!(empty.sample(5, &mut rng).is_empty());
    }

    #[test]
    fn other_phase_sampling_prefers_old_phases() {
        let mut h = Hippocampus::new(CapacityPolicy::Unbounded);
        for i in 0..10u64 {
            h.store(
                vec![0],
                vec![i as u32],
                vec![],
                0,
                0.5,
                i,
                if i < 5 { 1 } else { 2 },
            );
        }
        let mut rng = StdRng::seed_from_u64(2);
        let s = h.sample_other_phases(3, 2, &mut rng);
        assert!(s.iter().all(|&i| h.episodes()[i].phase == 1));
    }

    #[test]
    fn jaccard_corner_cases() {
        assert_eq!(jaccard(&[], &[]), 1.0);
        assert_eq!(jaccard(&[1], &[]), 0.0);
        assert_eq!(jaccard(&[1, 2], &[1, 2]), 1.0);
        assert!((jaccard(&[1, 2, 3], &[2, 3, 4]) - 0.5).abs() < 1e-9);
    }
}
