//! Training-instance selection (§5.1).
//!
//! "Training on every prefetch inference ... can be unnecessary and
//! resource-consuming." The samplers here implement the alternatives
//! the paper lists: batching, random subsampling, and confidence-
//! gated filtering, plus the always-train default.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// What to do with a new training example.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SampleDecision {
    /// Train on it now.
    Train,
    /// Skip it (inference only).
    Skip,
    /// Queue it; train the whole queue when it reaches the batch size.
    Enqueue,
}

/// A training-instance selection policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TrainingSampler {
    /// Train on every miss (the paper's §3.1 setup).
    EveryMiss,
    /// Train on every `n`-th miss.
    EveryNth {
        /// Period.
        n: usize,
    },
    /// Train on a random fraction `p` of misses.
    RandomFraction {
        /// Training probability.
        p: f32,
    },
    /// Train only when model confidence on the example is below
    /// `threshold` (skip well-learned cases).
    ConfidenceGated {
        /// Confidence threshold.
        threshold: f32,
    },
    /// Accumulate examples and train `size` at a time.
    Batch {
        /// Batch size.
        size: usize,
    },
}

/// Stateful evaluator for a [`TrainingSampler`].
#[derive(Debug, Clone)]
pub struct SamplerState {
    sampler: TrainingSampler,
    counter: usize,
    rng: StdRng,
    /// Examples trained / skipped, for reporting.
    pub trained: u64,
    /// Examples skipped.
    pub skipped: u64,
}

impl SamplerState {
    /// Creates evaluator state for `sampler`.
    ///
    /// # Panics
    ///
    /// Panics on degenerate parameters (`n == 0`, `p` outside `[0,1]`,
    /// `size == 0`).
    pub fn new(sampler: TrainingSampler, seed: u64) -> Self {
        match sampler {
            TrainingSampler::EveryNth { n } => assert!(n > 0, "period must be positive"),
            TrainingSampler::RandomFraction { p } => {
                assert!((0.0..=1.0).contains(&p), "p must be in [0, 1]")
            }
            TrainingSampler::Batch { size } => assert!(size > 0, "batch size must be positive"),
            _ => {}
        }
        Self {
            sampler,
            counter: 0,
            rng: StdRng::seed_from_u64(seed),
            trained: 0,
            skipped: 0,
        }
    }

    /// The policy.
    pub fn sampler(&self) -> TrainingSampler {
        self.sampler
    }

    /// Decides what to do with an example whose current model
    /// confidence is `confidence`.
    pub fn decide(&mut self, confidence: f32) -> SampleDecision {
        self.counter += 1;
        let d = match self.sampler {
            TrainingSampler::EveryMiss => SampleDecision::Train,
            TrainingSampler::EveryNth { n } => {
                if self.counter.is_multiple_of(n) {
                    SampleDecision::Train
                } else {
                    SampleDecision::Skip
                }
            }
            TrainingSampler::RandomFraction { p } => {
                if self.rng.gen::<f32>() < p {
                    SampleDecision::Train
                } else {
                    SampleDecision::Skip
                }
            }
            TrainingSampler::ConfidenceGated { threshold } => {
                if confidence < threshold {
                    SampleDecision::Train
                } else {
                    SampleDecision::Skip
                }
            }
            TrainingSampler::Batch { .. } => SampleDecision::Enqueue,
        };
        match d {
            SampleDecision::Train => self.trained += 1,
            SampleDecision::Skip => self.skipped += 1,
            SampleDecision::Enqueue => {}
        }
        d
    }

    /// For [`TrainingSampler::Batch`]: whether a queue of `queued`
    /// examples should be flushed now.
    pub fn should_flush(&self, queued: usize) -> bool {
        matches!(self.sampler, TrainingSampler::Batch { size } if queued >= size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_miss_always_trains() {
        let mut s = SamplerState::new(TrainingSampler::EveryMiss, 0);
        for _ in 0..10 {
            assert_eq!(s.decide(0.9), SampleDecision::Train);
        }
        assert_eq!(s.trained, 10);
    }

    #[test]
    fn every_nth_trains_periodically() {
        let mut s = SamplerState::new(TrainingSampler::EveryNth { n: 3 }, 0);
        let decisions: Vec<SampleDecision> = (0..6).map(|_| s.decide(0.5)).collect();
        let trains = decisions
            .iter()
            .filter(|&&d| d == SampleDecision::Train)
            .count();
        assert_eq!(trains, 2);
    }

    #[test]
    fn random_fraction_is_calibrated() {
        let mut s = SamplerState::new(TrainingSampler::RandomFraction { p: 0.25 }, 7);
        let trains = (0..10_000)
            .filter(|_| s.decide(0.5) == SampleDecision::Train)
            .count();
        assert!((2_000..3_000).contains(&trains), "trains {trains}");
    }

    #[test]
    fn confidence_gate_skips_well_learned() {
        let mut s = SamplerState::new(TrainingSampler::ConfidenceGated { threshold: 0.8 }, 0);
        assert_eq!(s.decide(0.9), SampleDecision::Skip);
        assert_eq!(s.decide(0.3), SampleDecision::Train);
        assert_eq!(s.skipped, 1);
        assert_eq!(s.trained, 1);
    }

    #[test]
    fn batch_enqueues_and_flushes_at_size() {
        let mut s = SamplerState::new(TrainingSampler::Batch { size: 4 }, 0);
        assert_eq!(s.decide(0.5), SampleDecision::Enqueue);
        assert!(!s.should_flush(3));
        assert!(s.should_flush(4));
        assert!(s.should_flush(5));
    }

    #[test]
    #[should_panic(expected = "p must be in [0, 1]")]
    fn bad_fraction_rejected() {
        let _ = SamplerState::new(TrainingSampler::RandomFraction { p: 1.5 }, 0);
    }
}
