//! Replay: interleaving old memories into ongoing learning (§3.2,
//! §5.4).
//!
//! The paper's §3.2 experiment implements replay by "retraining the
//! network on the first pattern using a 0.1x smaller learning rate
//! after each training/inference of the second" —
//! [`ReplayForm::Interleaved`] generalizes that: after every online
//! training step, `per_step` episodes sampled from the hippocampus are
//! retrained at `lr_scale`. §5.4 sketches further forms, implemented
//! as:
//!
//! * [`ReplayForm::OtherPhases`] — interleaved replay biased toward
//!   phases other than the current one (replay *old* memories);
//! * [`ReplayForm::Generative`] — hindsight replay: the network
//!   re-rolls sequences from stored seed contexts and learns its own
//!   generated continuations, trading compute for storage;
//! * [`ReplayForm::SelfReinforce`] — recall a stored context, run the
//!   forward pass, and train on the network's own output "to reinforce
//!   existing behavior".

use hnp_hebbian::LrScale;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::encoder::Encoder;
use crate::episodic::EpisodicStore;
use crate::neocortex::Neocortex;

/// The replay variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplayForm {
    /// Uniformly sampled episodes retrained at the scaled rate.
    Interleaved,
    /// Episodes sampled preferentially from other phases.
    OtherPhases,
    /// Hindsight: re-roll `rollout_len` steps from a stored context and
    /// train on the generated sequence.
    Generative {
        /// Steps generated per replayed episode.
        rollout_len: usize,
    },
    /// Train the stored context on the network's own current output.
    SelfReinforce,
}

/// Replay configuration.
#[derive(Debug, Clone)]
pub struct ReplayConfig {
    /// Master switch.
    pub enabled: bool,
    /// Episodes replayed after each online training step.
    pub per_step: usize,
    /// Learning-rate scale for replayed examples (paper: 0.1).
    pub lr_scale: f32,
    /// Replay form.
    pub form: ReplayForm,
    /// Sampling seed.
    pub seed: u64,
}

impl Default for ReplayConfig {
    fn default() -> Self {
        Self {
            enabled: true,
            per_step: 1,
            lr_scale: 0.1,
            form: ReplayForm::Interleaved,
            seed: 0x9e91a,
        }
    }
}

impl ReplayConfig {
    /// Replay disabled (the §2.2 interference condition).
    pub fn off() -> Self {
        Self {
            enabled: false,
            ..Self::default()
        }
    }
}

/// Schedules replay against a neocortex + hippocampus pair.
#[derive(Debug)]
pub struct ReplayScheduler {
    cfg: ReplayConfig,
    rng: StdRng,
    /// Total replayed examples (reporting).
    pub replayed: u64,
}

impl ReplayScheduler {
    /// Creates a scheduler.
    pub fn new(cfg: ReplayConfig) -> Self {
        let seed = cfg.seed;
        Self {
            cfg,
            rng: StdRng::seed_from_u64(seed),
            replayed: 0,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &ReplayConfig {
        &self.cfg
    }

    /// Runs one round of replay (called after each online training
    /// step). Returns the number of replayed examples.
    pub fn after_train(
        &mut self,
        cortex: &mut Neocortex,
        store: &mut dyn EpisodicStore,
        encoder: &Encoder,
        current_phase: u64,
    ) -> usize {
        if !self.cfg.enabled || self.cfg.per_step == 0 || store.stored() == 0 {
            return 0;
        }
        let prefer_other = matches!(self.cfg.form, ReplayForm::OtherPhases);
        let episodes = store.sample_for_replay(
            self.cfg.per_step,
            current_phase,
            prefer_other,
            &mut self.rng,
        );
        let scale = LrScale::from_f32(self.cfg.lr_scale);
        let mut done = 0usize;
        for episode in episodes {
            match self.cfg.form {
                ReplayForm::Interleaved | ReplayForm::OtherPhases => {
                    cortex.replay_train(
                        &episode.pattern,
                        episode.target,
                        scale,
                        &episode.recurrent,
                    );
                    done += 1;
                }
                ReplayForm::Generative { rollout_len } if !episode.history.is_empty() => {
                    // Generate a continuation from the stored context
                    // and learn the generated transitions, all under
                    // the episode's reinstated recurrent context.
                    let saved = cortex.recurrent_state();
                    cortex.network_mut().set_recurrent_state(&episode.recurrent);
                    let preds = cortex.predict(&episode.history, encoder, rollout_len, 1);
                    let mut hist = episode.history.clone();
                    // First transition: the episode's real target.
                    cortex.train_scaled(&episode.pattern, episode.target, scale);
                    done += 1;
                    for step in preds {
                        let next = step[0];
                        hist.push(next);
                        let ctx = &hist[..hist.len() - 1];
                        let pattern = encoder.encode(ctx);
                        cortex.train_scaled(&pattern, next, scale);
                        done += 1;
                    }
                    cortex.network_mut().set_recurrent_state(&saved);
                }
                ReplayForm::Generative { .. } => {
                    // Compressed backends recall no token history; fall
                    // back to a plain interleaved step.
                    cortex.replay_train(
                        &episode.pattern,
                        episode.target,
                        scale,
                        &episode.recurrent,
                    );
                    done += 1;
                }
                ReplayForm::SelfReinforce => {
                    let saved = cortex.recurrent_state();
                    cortex.network_mut().set_recurrent_state(&episode.recurrent);
                    let out = {
                        let net = cortex.network_mut();
                        net.infer(&episode.pattern, episode.target)
                    };
                    cortex.train_scaled(&episode.pattern, out.predicted, scale);
                    cortex.network_mut().set_recurrent_state(&saved);
                    done += 1;
                }
            }
        }
        self.replayed += done as u64;
        done
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoder::EncoderKind;
    use crate::hippocampus::{CapacityPolicy, Hippocampus};
    use crate::neocortex::NeocortexConfig;

    fn setup() -> (Neocortex, Hippocampus, Encoder) {
        let encoder = Encoder::new(EncoderKind::OneHot, 16);
        let cortex = Neocortex::new(
            &encoder,
            16,
            &NeocortexConfig {
                hidden: 128,
                connectivity: 0.375,
                hidden_active: 16,
                recurrent_bits: 32,
                recurrent_sample: 6,
                ..NeocortexConfig::default()
            },
        );
        (cortex, Hippocampus::new(CapacityPolicy::Unbounded), encoder)
    }

    /// Trains pattern A (cycle), then pattern B with/without replay of
    /// A; replay must preserve accuracy on A. This is the Fig.-3
    /// mechanism at unit scale.
    fn interference_run(replay: ReplayConfig) -> f32 {
        let (mut cortex, mut hippo, encoder) = setup();
        let a = [1usize, 5, 2, 9];
        let b = [3usize, 11, 7, 14];
        // Learn A, storing episodes.
        for _ in 0..150 {
            for w in 0..a.len() {
                let ctx = [a[w]];
                let pattern = encoder.encode(&ctx);
                let target = a[(w + 1) % a.len()];
                let recurrent = cortex.recurrent_state();
                let o = cortex.train(&pattern, target);
                hippo.store(ctx.to_vec(), pattern, recurrent, target, o.confidence, 0, 1);
            }
        }
        // Learn B with replay of stored A episodes.
        let mut sched = ReplayScheduler::new(replay);
        for _ in 0..150 {
            for w in 0..b.len() {
                let pattern = encoder.encode(&[b[w]]);
                cortex.train(&pattern, b[(w + 1) % b.len()]);
                sched.after_train(
                    &mut cortex,
                    &mut hippo as &mut dyn EpisodicStore,
                    &encoder,
                    2,
                );
            }
        }
        // Accuracy on A afterwards.
        cortex.network_mut().reset_state();
        let mut correct = 0;
        for _ in 0..5 {
            for w in 0..a.len() {
                let pattern = encoder.encode(&[a[w]]);
                let o = cortex.observe(&pattern, a[(w + 1) % a.len()]);
                if o.correct {
                    correct += 1;
                }
            }
        }
        correct as f32 / 20.0
    }

    #[test]
    fn interleaved_replay_preserves_old_pattern() {
        let with = interference_run(ReplayConfig {
            per_step: 2,
            ..ReplayConfig::default()
        });
        assert!(with > 0.8, "accuracy on A with replay: {with}");
    }

    #[test]
    fn replay_off_config_is_inert() {
        let (mut cortex, mut hippo, encoder) = setup();
        hippo.store(vec![1], encoder.encode(&[1]), vec![], 2, 0.5, 0, 0);
        let mut sched = ReplayScheduler::new(ReplayConfig::off());
        assert_eq!(
            sched.after_train(
                &mut cortex,
                &mut hippo as &mut dyn EpisodicStore,
                &encoder,
                0
            ),
            0
        );
        assert_eq!(sched.replayed, 0);
    }

    #[test]
    fn generative_replay_counts_generated_steps() {
        let (mut cortex, mut hippo, encoder) = setup();
        for t in 0..8usize {
            hippo.store(
                vec![t],
                encoder.encode(&[t]),
                vec![],
                (t + 1) % 8,
                0.5,
                0,
                0,
            );
        }
        let mut sched = ReplayScheduler::new(ReplayConfig {
            form: ReplayForm::Generative { rollout_len: 3 },
            per_step: 2,
            ..ReplayConfig::default()
        });
        let n = sched.after_train(
            &mut cortex,
            &mut hippo as &mut dyn EpisodicStore,
            &encoder,
            0,
        );
        // Each of the 2 episodes yields 1 real + 3 generated examples.
        assert_eq!(n, 8);
    }

    #[test]
    fn self_reinforce_replays_one_per_episode() {
        let (mut cortex, mut hippo, encoder) = setup();
        for t in 0..4usize {
            hippo.store(vec![t], encoder.encode(&[t]), vec![], t, 0.5, 0, 0);
        }
        let mut sched = ReplayScheduler::new(ReplayConfig {
            form: ReplayForm::SelfReinforce,
            per_step: 3,
            ..ReplayConfig::default()
        });
        assert_eq!(
            sched.after_train(
                &mut cortex,
                &mut hippo as &mut dyn EpisodicStore,
                &encoder,
                0
            ),
            3
        );
    }

    #[test]
    fn empty_hippocampus_replays_nothing() {
        let (mut cortex, mut hippo, encoder) = setup();
        let mut sched = ReplayScheduler::new(ReplayConfig::default());
        assert_eq!(
            sched.after_train(
                &mut cortex,
                &mut hippo as &mut dyn EpisodicStore,
                &encoder,
                0
            ),
            0
        );
    }
}
