//! Input encodings for the Hebbian prefetch network (§5.3).
//!
//! The paper observes that one-hot delta encodings inherit the limits
//! of prior DL prefetchers and sketches alternatives inspired by
//! hippocampal path coding. Four encoders are provided:
//!
//! * [`EncoderKind::OneHot`] — the prior-work default: one active bit
//!   for the newest delta token;
//! * [`EncoderKind::HistoryWindow`] — positional one-hot of the last
//!   `window` delta tokens (the §5.2 "miss history" as input);
//! * [`EncoderKind::PathHash`] — a sparse distributed code of the
//!   recent delta *path*: each (position, token) pair activates fixed
//!   random bits of a shared space, the analog of the paper's
//!   vector-navigation encoding, letting logically close paths share
//!   bits without positional sections;
//! * [`EncoderKind::Vsa`] — full vector-symbolic composition (see
//!   [`crate::vsa`]): permute-and-bundle over token hypervectors, the
//!   §5.3 "efficient detection of relations" line made concrete.

/// Selects an input encoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EncoderKind {
    /// One active bit: the newest delta token.
    OneHot,
    /// Positional one-hot over the last `window` tokens.
    HistoryWindow {
        /// History length.
        window: usize,
    },
    /// Sparse path code: `bits_per` active bits per (position, token)
    /// of the last `window` tokens, hashed into `space` bits.
    PathHash {
        /// History length.
        window: usize,
        /// Active bits contributed per history entry.
        bits_per: usize,
        /// Code-space width.
        space: usize,
    },
    /// Vector-symbolic composition (§5.3's "efficient detection of
    /// relations"): token hypervectors are position-permuted and
    /// bundled, then read out as `active` sparse bits of `space`.
    Vsa {
        /// History length.
        window: usize,
        /// Active bits per code.
        active: usize,
        /// Code-space width.
        space: usize,
    },
}

/// A concrete encoder over a fixed delta vocabulary.
#[derive(Debug, Clone)]
pub struct Encoder {
    kind: EncoderKind,
    vocab_len: usize,
    /// Symbol table for the VSA kind (unused otherwise).
    vsa: Option<crate::vsa::VsaEncoder>,
}

impl Encoder {
    /// Creates an encoder for tokens in `0..vocab_len`.
    ///
    /// # Panics
    ///
    /// Panics if `vocab_len == 0` or the kind's parameters are
    /// degenerate (zero window/space/bits).
    pub fn new(kind: EncoderKind, vocab_len: usize) -> Self {
        assert!(vocab_len > 0, "empty vocabulary");
        match kind {
            EncoderKind::OneHot => {}
            EncoderKind::HistoryWindow { window } => {
                assert!(window > 0, "zero history window");
            }
            EncoderKind::PathHash {
                window,
                bits_per,
                space,
            } => {
                assert!(
                    window > 0 && bits_per > 0 && space > 0,
                    "degenerate path code"
                );
            }
            EncoderKind::Vsa {
                window,
                active,
                space,
            } => {
                assert!(window > 0 && active > 0 && space > 0, "degenerate vsa code");
            }
        }
        let vsa = match kind {
            EncoderKind::Vsa {
                window,
                active,
                space,
            } => Some(crate::vsa::VsaEncoder::new(
                vocab_len, space, active, window, 0x5a5a,
            )),
            _ => None,
        };
        Self {
            kind,
            vocab_len,
            vsa,
        }
    }

    /// The encoder kind.
    pub fn kind(&self) -> EncoderKind {
        self.kind
    }

    /// Width of the pattern-bit space this encoder emits into.
    pub fn pattern_bits(&self) -> usize {
        match self.kind {
            EncoderKind::OneHot => self.vocab_len,
            EncoderKind::HistoryWindow { window } => window * self.vocab_len,
            EncoderKind::PathHash { space, .. } => space,
            EncoderKind::Vsa { space, .. } => space,
        }
    }

    /// How much history (in tokens) the encoder consumes.
    pub fn window(&self) -> usize {
        match self.kind {
            EncoderKind::OneHot => 1,
            EncoderKind::HistoryWindow { window } => window,
            EncoderKind::PathHash { window, .. } => window,
            EncoderKind::Vsa { window, .. } => window,
        }
    }

    /// Encodes a token history (oldest first; the last element is the
    /// newest token) into active pattern bits, sorted and deduplicated.
    ///
    /// # Panics
    ///
    /// Panics if `history` is empty or contains out-of-vocabulary
    /// tokens.
    pub fn encode(&self, history: &[usize]) -> Vec<u32> {
        assert!(!history.is_empty(), "empty token history");
        for &t in history {
            assert!(t < self.vocab_len, "token {t} out of vocabulary");
        }
        let mut bits: Vec<u32> = match self.kind {
            EncoderKind::OneHot => {
                vec![history[history.len() - 1] as u32]
            }
            EncoderKind::HistoryWindow { window } => {
                // Position 0 = newest.
                history
                    .iter()
                    .rev()
                    .take(window)
                    .enumerate()
                    .map(|(pos, &tok)| (pos * self.vocab_len + tok) as u32)
                    .collect()
            }
            EncoderKind::PathHash {
                window,
                bits_per,
                space,
            } => history
                .iter()
                .rev()
                .take(window)
                .enumerate()
                .flat_map(|(pos, &tok)| {
                    (0..bits_per).map(move |j| {
                        let mut h = (pos as u64)
                            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                            .wrapping_add(tok as u64)
                            .wrapping_mul(0xbf58_476d_1ce4_e5b9)
                            .wrapping_add(j as u64);
                        h ^= h >> 31;
                        h = h.wrapping_mul(0x94d0_49bb_1331_11eb);
                        h ^= h >> 29;
                        (h % space as u64) as u32
                    })
                })
                .collect(),
            EncoderKind::Vsa { .. } => {
                // The table is built in `new()` whenever the kind is
                // Vsa; the Option only models the other kinds.
                let table = self.vsa.as_ref();
                // hnp-lint: allow(panic_hygiene): constructor invariant
                let table = table.expect("vsa built in new()");
                return table.encode(history);
            }
        };
        bits.sort_unstable();
        bits.dedup();
        bits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_hot_emits_single_newest_bit() {
        let e = Encoder::new(EncoderKind::OneHot, 16);
        assert_eq!(e.encode(&[3, 7, 5]), vec![5]);
        assert_eq!(e.pattern_bits(), 16);
        assert_eq!(e.window(), 1);
    }

    #[test]
    fn history_window_uses_positional_sections() {
        let e = Encoder::new(EncoderKind::HistoryWindow { window: 3 }, 10);
        // Newest = 5 (pos 0), then 7 (pos 1), then 3 (pos 2).
        let bits = e.encode(&[3, 7, 5]);
        assert_eq!(bits, vec![5, 17, 23]);
        assert_eq!(e.pattern_bits(), 30);
    }

    #[test]
    fn history_window_handles_short_history() {
        let e = Encoder::new(EncoderKind::HistoryWindow { window: 4 }, 10);
        let bits = e.encode(&[2]);
        assert_eq!(bits, vec![2]);
    }

    #[test]
    fn path_hash_is_deterministic_and_bounded() {
        let e = Encoder::new(
            EncoderKind::PathHash {
                window: 4,
                bits_per: 3,
                space: 256,
            },
            50,
        );
        let a = e.encode(&[1, 2, 3, 4]);
        let b = e.encode(&[1, 2, 3, 4]);
        assert_eq!(a, b);
        assert!(a.iter().all(|&bit| bit < 256));
        assert!(a.len() <= 12);
        assert_eq!(e.pattern_bits(), 256);
    }

    #[test]
    fn path_hash_distinguishes_order() {
        let e = Encoder::new(
            EncoderKind::PathHash {
                window: 3,
                bits_per: 4,
                space: 512,
            },
            50,
        );
        assert_ne!(e.encode(&[1, 2, 3]), e.encode(&[3, 2, 1]));
    }

    #[test]
    fn path_hash_shares_bits_across_similar_paths() {
        let e = Encoder::new(
            EncoderKind::PathHash {
                window: 4,
                bits_per: 4,
                space: 512,
            },
            50,
        );
        let a = e.encode(&[9, 1, 2, 3]);
        let b = e.encode(&[8, 1, 2, 3]); // Same recent path, older differs.
        let overlap = a.iter().filter(|bit| b.contains(bit)).count();
        assert!(
            overlap >= 8,
            "paths share recent structure: overlap {overlap}"
        );
    }

    #[test]
    fn vsa_kind_encodes_through_the_symbol_table() {
        let e = Encoder::new(
            EncoderKind::Vsa {
                window: 3,
                active: 16,
                space: 512,
            },
            50,
        );
        assert_eq!(e.pattern_bits(), 512);
        assert_eq!(e.window(), 3);
        let a = e.encode(&[1, 2, 3]);
        assert!(!a.is_empty() && a.len() <= 16);
        assert!(a.iter().all(|&b| b < 512));
        assert_ne!(a, e.encode(&[3, 2, 1]), "order-sensitive");
        assert_eq!(a, e.encode(&[1, 2, 3]), "deterministic");
    }

    #[test]
    #[should_panic(expected = "out of vocabulary")]
    fn out_of_vocab_token_panics() {
        let e = Encoder::new(EncoderKind::OneHot, 4);
        e.encode(&[4]);
    }

    #[test]
    #[should_panic(expected = "empty token history")]
    fn empty_history_panics() {
        let e = Encoder::new(EncoderKind::OneHot, 4);
        e.encode(&[]);
    }
}
