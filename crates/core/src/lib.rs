//! The hippocampal-neocortical (CLS) prefetcher — the paper's
//! contribution.
//!
//! Complementary Learning Systems theory (Fig. 4 of the paper) splits
//! learning between a fast episodic store (hippocampus) and a slow
//! structure learner (neocortex), with interleaved replay carrying
//! memories from the former into the latter. This crate assembles
//! that architecture for memory prefetching:
//!
//! * [`encoder`] — input encodings over the delta vocabulary (§5.3);
//! * [`neocortex`] — the slow learner: a sparse Hebbian network;
//! * [`hippocampus`] — the episodic store with capacity policies
//!   (§5.4): unbounded, ring, confidence-filtered, consolidation-
//!   aware, prototype-averaging;
//! * [`replay`] — the replay scheduler and its forms (§3.2, §5.4):
//!   interleaved, generative/hindsight, self-reinforcing;
//! * [`sampler`] — training-instance selection (§5.1);
//! * [`phase`] — online phase detection by clustering (§5.4);
//! * [`confidence`] — confidence/accuracy tracking;
//! * [`availability`] — the shadow-model train/redeploy protocol
//!   (§5.5);
//! * [`cls`] — [`cls::ClsPrefetcher`], wiring it all
//!   behind [`hnp_memsim::Prefetcher`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adaptive;
pub mod availability;
pub mod cls;
pub mod confidence;
pub mod encoder;
pub mod episodic;
pub mod hippocampus;
pub mod neocortex;
pub mod phase;
pub mod replay;
pub mod sampler;
pub mod vsa;

pub use adaptive::{AdaptiveConfig, AdaptiveGeometry};
pub use cls::{ClsConfig, ClsPrefetcher};
pub use encoder::{Encoder, EncoderKind};
pub use episodic::{AssociativeHippocampus, EpisodicBackend, EpisodicStore};
pub use hippocampus::{CapacityPolicy, Hippocampus};
pub use replay::{ReplayConfig, ReplayForm};
pub use sampler::TrainingSampler;
