//! Online phase detection (§5.4).
//!
//! "Another approach, also inspired by cognitive theories, is to
//! identify contexts or phases using clustering of abstract
//! representations." The detector clusters windows of the delta-token
//! stream: each window becomes a normalized token histogram; windows
//! are matched to the nearest phase centroid by cosine similarity, and
//! a new phase is opened when nothing is close enough. Centroids track
//! their members with an exponential moving average, so phases adapt
//! slowly (like neocortical representations) while detection is fast.

/// Configuration of the phase detector.
#[derive(Debug, Clone)]
pub struct PhaseConfig {
    /// Tokens per detection window.
    pub window: usize,
    /// Cosine similarity required to join an existing phase.
    pub similarity_threshold: f64,
    /// EMA weight of a new window in its phase centroid.
    pub centroid_alpha: f64,
    /// Maximum tracked phases (oldest merged away beyond this).
    pub max_phases: usize,
}

impl Default for PhaseConfig {
    fn default() -> Self {
        Self {
            window: 64,
            similarity_threshold: 0.6,
            centroid_alpha: 0.2,
            max_phases: 16,
        }
    }
}

/// A reported phase transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhaseChange {
    /// Phase before the change.
    pub from: u64,
    /// Phase after the change.
    pub to: u64,
    /// Whether `to` was newly created.
    pub is_new: bool,
}

/// The online phase detector.
#[derive(Debug, Clone)]
pub struct PhaseDetector {
    cfg: PhaseConfig,
    vocab_len: usize,
    current_window: Vec<f64>,
    filled: usize,
    centroids: Vec<(u64, Vec<f64>)>,
    next_id: u64,
    current_phase: u64,
}

impl PhaseDetector {
    /// Creates a detector over a `vocab_len`-token alphabet.
    ///
    /// # Panics
    ///
    /// Panics on a zero vocabulary, window, or phase budget.
    pub fn new(vocab_len: usize, cfg: PhaseConfig) -> Self {
        assert!(vocab_len > 0 && cfg.window > 0 && cfg.max_phases > 0);
        Self {
            current_window: vec![0.0; vocab_len],
            filled: 0,
            centroids: Vec::new(),
            next_id: 1,
            current_phase: 0,
            vocab_len,
            cfg,
        }
    }

    /// The current phase id (0 until the first window completes).
    pub fn current_phase(&self) -> u64 {
        self.current_phase
    }

    /// Number of distinct phases seen.
    pub fn phase_count(&self) -> usize {
        self.centroids.len()
    }

    /// Feeds one token; returns a change event when a window completes
    /// and the phase assignment changes.
    ///
    /// # Panics
    ///
    /// Panics if `token` is out of vocabulary.
    pub fn observe(&mut self, token: usize) -> Option<PhaseChange> {
        assert!(token < self.vocab_len, "token out of vocabulary");
        self.current_window[token] += 1.0;
        self.filled += 1;
        if self.filled < self.cfg.window {
            return None;
        }
        // Window complete: normalize and match.
        let hist = normalize(&self.current_window);
        self.current_window.iter_mut().for_each(|x| *x = 0.0);
        self.filled = 0;
        let (best, best_sim) = self
            .centroids
            .iter()
            .enumerate()
            .map(|(i, (_, c))| (i, cosine(&hist, c)))
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .unzip();
        let old = self.current_phase;
        if let (Some(i), Some(sim)) = (best, best_sim) {
            if sim >= self.cfg.similarity_threshold {
                // Join and update the centroid.
                let alpha = self.cfg.centroid_alpha;
                let id = self.centroids[i].0;
                for (c, h) in self.centroids[i].1.iter_mut().zip(hist.iter()) {
                    *c = (1.0 - alpha) * *c + alpha * h;
                }
                self.current_phase = id;
                return (old != id).then_some(PhaseChange {
                    from: old,
                    to: id,
                    is_new: false,
                });
            }
        }
        // Open a new phase.
        if self.centroids.len() >= self.cfg.max_phases {
            self.centroids.remove(0);
        }
        let id = self.next_id;
        self.next_id += 1;
        self.centroids.push((id, hist));
        self.current_phase = id;
        Some(PhaseChange {
            from: old,
            to: id,
            is_new: true,
        })
    }
}

fn normalize(v: &[f64]) -> Vec<f64> {
    let norm = v.iter().map(|x| x * x).sum::<f64>().sqrt();
    if norm == 0.0 {
        v.to_vec()
    } else {
        v.iter().map(|x| x / norm).collect()
    }
}

fn cosine(a: &[f64], b: &[f64]) -> f64 {
    let dot: f64 = a.iter().zip(b.iter()).map(|(x, y)| x * y).sum();
    let na = a.iter().map(|x| x * x).sum::<f64>().sqrt();
    let nb = b.iter().map(|x| x * x).sum::<f64>().sqrt();
    if na == 0.0 || nb == 0.0 {
        0.0
    } else {
        dot / (na * nb)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> PhaseConfig {
        PhaseConfig {
            window: 16,
            ..PhaseConfig::default()
        }
    }

    #[test]
    fn detects_distinct_phases_and_recognizes_returns() {
        let mut d = PhaseDetector::new(8, cfg());
        let mut changes = Vec::new();
        // Phase A: token 1 dominates. Phase B: token 5 dominates.
        for _ in 0..64 {
            if let Some(c) = d.observe(1) {
                changes.push(c);
            }
        }
        let phase_a = d.current_phase();
        for _ in 0..64 {
            if let Some(c) = d.observe(5) {
                changes.push(c);
            }
        }
        let phase_b = d.current_phase();
        assert_ne!(phase_a, phase_b);
        // Return to A: the detector recognizes the old phase.
        for _ in 0..64 {
            d.observe(1);
        }
        assert_eq!(d.current_phase(), phase_a, "must recognize the old phase");
        assert_eq!(d.phase_count(), 2);
        assert!(changes.iter().any(|c| c.is_new));
    }

    #[test]
    fn no_change_within_a_stable_phase() {
        let mut d = PhaseDetector::new(4, cfg());
        let mut changes = 0;
        for _ in 0..160 {
            if d.observe(2).is_some() {
                changes += 1;
            }
        }
        assert_eq!(changes, 1, "only the initial phase creation");
    }

    #[test]
    fn mixed_windows_join_nearest_phase() {
        let mut d = PhaseDetector::new(4, cfg());
        for _ in 0..32 {
            d.observe(0);
        }
        let a = d.current_phase();
        // A window of mostly-0 with some noise joins phase A.
        for i in 0..16 {
            d.observe(if i % 4 == 0 { 1 } else { 0 });
        }
        assert_eq!(d.current_phase(), a);
    }

    #[test]
    fn phase_budget_is_bounded() {
        let mut d = PhaseDetector::new(
            32,
            PhaseConfig {
                window: 8,
                max_phases: 3,
                ..PhaseConfig::default()
            },
        );
        for tok in 0..20usize {
            for _ in 0..8 {
                d.observe(tok);
            }
        }
        assert!(d.phase_count() <= 3);
    }

    #[test]
    #[should_panic(expected = "token out of vocabulary")]
    fn oov_token_panics() {
        let mut d = PhaseDetector::new(4, cfg());
        d.observe(4);
    }
}
