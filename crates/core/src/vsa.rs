//! Vector-symbolic (hyperdimensional) encoding for §5.3.
//!
//! The paper points at "brain-inspired work \[that\] has explored ways
//! of representing symbols that allow the efficient detection of
//! relations in neural networks" (citing Abstractors) and at
//! hippocampal vector-navigation codes as inspiration for address
//! encodings. This module implements the classic binary
//! vector-symbolic architecture (VSA) operations over dense
//! hypervectors:
//!
//! * **random hypervectors** — quasi-orthogonal symbol codes;
//! * **binding** (XOR) — associates two symbols; invertible and
//!   similarity-destroying;
//! * **bundling** (majority) — superposes a set; similarity-
//!   preserving;
//! * **permutation** (rotate) — encodes sequence position.
//!
//! A delta history `d1, d2, ..., dk` is encoded as
//! `bundle(rho^k-1(H(d1)), ..., rho(H(dk-1)), H(dk))`: positions are
//! rotations, the history is their bundle. Close histories land on
//! close hypervectors — "logically (as opposed to numerically) close"
//! — and the sparse top-bits of the hypervector feed the Hebbian
//! network as pattern bits via [`VsaEncoder`].

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Width of a hypervector in 64-bit words (default dimension 1024).
const DEFAULT_WORDS: usize = 16;

/// A dense binary hypervector.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HyperVector {
    words: Vec<u64>,
}

impl HyperVector {
    /// Dimension in bits.
    pub fn dim(&self) -> usize {
        self.words.len() * 64
    }

    /// A random hypervector of `words * 64` bits.
    pub fn random(words: usize, rng: &mut impl Rng) -> Self {
        Self {
            words: (0..words).map(|_| rng.gen()).collect(),
        }
    }

    /// Binding: elementwise XOR. Self-inverse:
    /// `a.bind(b).bind(b) == a`.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn bind(&self, other: &HyperVector) -> HyperVector {
        assert_eq!(self.words.len(), other.words.len(), "dim mismatch");
        HyperVector {
            words: self
                .words
                .iter()
                .zip(other.words.iter())
                .map(|(a, b)| a ^ b)
                .collect(),
        }
    }

    /// Permutation: rotates the whole vector left by `k` bits, encoding
    /// sequence position.
    pub fn permute(&self, k: usize) -> HyperVector {
        let n = self.dim();
        if n == 0 {
            return self.clone();
        }
        let k = k % n;
        if k == 0 {
            return self.clone();
        }
        let mut out = vec![0u64; self.words.len()];
        for (i, w) in out.iter_mut().enumerate() {
            for b in 0..64 {
                let src = (i * 64 + b + k) % n;
                if self.words[src / 64] >> (src % 64) & 1 == 1 {
                    *w |= 1 << b;
                }
            }
        }
        HyperVector { words: out }
    }

    /// Normalized Hamming similarity in `[-1, 1]`: 1 for identical,
    /// ~0 for unrelated random vectors, -1 for complements.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn similarity(&self, other: &HyperVector) -> f64 {
        assert_eq!(self.words.len(), other.words.len(), "dim mismatch");
        let differing: u32 = self
            .words
            .iter()
            .zip(other.words.iter())
            .map(|(a, b)| (a ^ b).count_ones())
            .sum();
        1.0 - 2.0 * differing as f64 / self.dim() as f64
    }

    /// Majority bundling of a non-empty set (ties broken by `tie`).
    ///
    /// # Panics
    ///
    /// Panics on an empty set or dimension mismatch.
    pub fn bundle(vectors: &[HyperVector], tie: &HyperVector) -> HyperVector {
        assert!(!vectors.is_empty(), "empty bundle");
        let words = vectors[0].words.len();
        let dim = words * 64;
        let mut counts = vec![0i32; dim];
        for v in vectors {
            assert_eq!(v.words.len(), words, "dim mismatch");
            for (i, c) in counts.iter_mut().enumerate() {
                if v.words[i / 64] >> (i % 64) & 1 == 1 {
                    *c += 1;
                }
            }
        }
        let half = vectors.len() as i32;
        let mut out = vec![0u64; words];
        for (i, &c) in counts.iter().enumerate() {
            let bit = match (2 * c).cmp(&half) {
                std::cmp::Ordering::Greater => true,
                std::cmp::Ordering::Less => false,
                std::cmp::Ordering::Equal => tie.words[i / 64] >> (i % 64) & 1 == 1,
            };
            if bit {
                out[i / 64] |= 1 << (i % 64);
            }
        }
        HyperVector { words: out }
    }

    /// The indices of the `k` bits chosen by a fixed random projection
    /// order — a sparse readout of the hypervector for networks that
    /// take active-bit lists. Deterministic per (vector, space, k).
    pub fn sparse_bits(&self, space: usize, k: usize) -> Vec<u32> {
        // Hash each set bit into the target space; keep the k smallest
        // hashes for determinism.
        let mut hashed: Vec<(u64, u32)> = Vec::new();
        for i in 0..self.dim() {
            if self.words[i / 64] >> (i % 64) & 1 == 1 {
                let mut h = (i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
                h ^= h >> 29;
                h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
                h ^= h >> 32;
                hashed.push((h, (h % space as u64) as u32));
            }
        }
        hashed.sort_unstable();
        let mut bits: Vec<u32> = hashed.into_iter().take(k).map(|(_, b)| b).collect();
        bits.sort_unstable();
        bits.dedup();
        bits
    }
}

/// A §5.3 encoder: token histories to sparse pattern bits through VSA
/// composition.
#[derive(Debug, Clone)]
pub struct VsaEncoder {
    /// One random hypervector per vocabulary token.
    symbols: Vec<HyperVector>,
    /// Output pattern-bit space.
    space: usize,
    /// Active bits emitted per encoding.
    active: usize,
    /// History window.
    window: usize,
}

impl VsaEncoder {
    /// Creates an encoder for `vocab` tokens over a `space`-bit pattern
    /// space with `active` bits per code and a `window`-token history.
    ///
    /// # Panics
    ///
    /// Panics on degenerate parameters.
    pub fn new(vocab: usize, space: usize, active: usize, window: usize, seed: u64) -> Self {
        assert!(vocab > 0 && space > 0 && active > 0 && window > 0);
        let mut rng = StdRng::seed_from_u64(seed);
        Self {
            symbols: (0..vocab)
                .map(|_| HyperVector::random(DEFAULT_WORDS, &mut rng))
                .collect(),
            space,
            active,
            window,
        }
    }

    /// Pattern-bit space width.
    pub fn pattern_bits(&self) -> usize {
        self.space
    }

    /// History depth consumed.
    pub fn window(&self) -> usize {
        self.window
    }

    /// Encodes a token history (oldest first) into sparse pattern bits.
    ///
    /// # Panics
    ///
    /// Panics if `history` is empty or a token is out of vocabulary.
    pub fn encode(&self, history: &[usize]) -> Vec<u32> {
        assert!(!history.is_empty(), "empty history");
        let recent: Vec<usize> = history.iter().rev().take(self.window).copied().collect();
        let positioned: Vec<HyperVector> = recent
            .iter()
            .enumerate()
            .map(|(pos, &tok)| {
                assert!(tok < self.symbols.len(), "token {tok} out of vocabulary");
                self.symbols[tok].permute(pos)
            })
            .collect();
        let composite = if positioned.len() == 1 {
            positioned[0].clone()
        } else {
            HyperVector::bundle(&positioned, &positioned[0])
        };
        composite.sparse_bits(self.space, self.active)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    #[test]
    fn random_hypervectors_are_quasi_orthogonal() {
        let mut r = rng();
        let a = HyperVector::random(16, &mut r);
        let b = HyperVector::random(16, &mut r);
        assert!((a.similarity(&b)).abs() < 0.15, "{}", a.similarity(&b));
        assert_eq!(a.similarity(&a), 1.0);
    }

    #[test]
    fn binding_is_self_inverse_and_destroys_similarity() {
        let mut r = rng();
        let a = HyperVector::random(16, &mut r);
        let b = HyperVector::random(16, &mut r);
        let bound = a.bind(&b);
        assert_eq!(bound.bind(&b), a, "unbinding recovers the operand");
        assert!(
            bound.similarity(&a).abs() < 0.15,
            "bound vector is unrelated"
        );
    }

    #[test]
    fn bundling_preserves_similarity_to_members() {
        let mut r = rng();
        let vs: Vec<HyperVector> = (0..5).map(|_| HyperVector::random(16, &mut r)).collect();
        let bundle = HyperVector::bundle(&vs, &vs[0]);
        for v in &vs {
            assert!(
                bundle.similarity(v) > 0.2,
                "member similarity {}",
                bundle.similarity(v)
            );
        }
        let outsider = HyperVector::random(16, &mut r);
        assert!(bundle.similarity(&outsider).abs() < 0.15);
    }

    #[test]
    fn permutation_shifts_and_preserves_weight() {
        let mut r = rng();
        let a = HyperVector::random(16, &mut r);
        let p = a.permute(13);
        assert_ne!(p, a);
        let ones = |v: &HyperVector| v.words.iter().map(|w| w.count_ones()).sum::<u32>();
        assert_eq!(ones(&a), ones(&p), "rotation preserves popcount");
        assert!(p.similarity(&a).abs() < 0.2, "rotation decorrelates");
        assert_eq!(a.permute(0), a);
        assert_eq!(a.permute(a.dim()), a);
    }

    #[test]
    fn encoder_distinguishes_order_but_shares_structure() {
        let e = VsaEncoder::new(32, 512, 20, 4, 1);
        let abc = e.encode(&[1, 2, 3]);
        let cba = e.encode(&[3, 2, 1]);
        assert_ne!(abc, cba, "order must matter");
        // Shared recent suffix -> shared bits.
        let xbc = e.encode(&[9, 2, 3]);
        let overlap = abc.iter().filter(|b| xbc.contains(b)).count();
        let unrelated = e.encode(&[20, 21, 22]);
        let overlap_unrelated = abc.iter().filter(|b| unrelated.contains(b)).count();
        assert!(
            overlap > overlap_unrelated,
            "similar histories share more bits: {overlap} vs {overlap_unrelated}"
        );
    }

    #[test]
    fn encoder_emits_bounded_sorted_bits() {
        let e = VsaEncoder::new(16, 256, 12, 3, 2);
        let bits = e.encode(&[4]);
        assert!(bits.len() <= 12);
        assert!(bits.windows(2).all(|w| w[0] < w[1]));
        assert!(bits.iter().all(|&b| b < 256));
    }

    #[test]
    #[should_panic(expected = "out of vocabulary")]
    fn oov_token_panics() {
        let e = VsaEncoder::new(4, 64, 4, 2, 0);
        e.encode(&[4]);
    }
}
