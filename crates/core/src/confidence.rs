//! Confidence and accuracy tracking.
//!
//! Used by the training-instance samplers (§5.1: "a more intelligent
//! sampling process could use confidence measures from the model"),
//! the hippocampus capacity policies (§5.4), and the availability
//! protocol (§5.5: "redeployed when the live model's
//! confidence/accuracy decreases").

/// An exponential moving average of model confidence plus a windowed
/// accuracy counter.
#[derive(Debug, Clone)]
pub struct ConfidenceTracker {
    alpha: f32,
    ema: f32,
    window: usize,
    recent: std::collections::VecDeque<bool>,
    correct_in_window: usize,
}

impl ConfidenceTracker {
    /// Creates a tracker with EMA smoothing `alpha` (weight of the new
    /// observation) and a rolling accuracy window of `window` steps.
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is outside `(0, 1]` or `window == 0`.
    pub fn new(alpha: f32, window: usize) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1]");
        assert!(window > 0, "window must be positive");
        Self {
            alpha,
            ema: 0.0,
            window,
            recent: std::collections::VecDeque::with_capacity(window),
            correct_in_window: 0,
        }
    }

    /// Records one prediction outcome.
    pub fn record(&mut self, confidence: f32, correct: bool) {
        self.ema = (1.0 - self.alpha) * self.ema + self.alpha * confidence;
        if self.recent.len() == self.window && self.recent.pop_front() == Some(true) {
            self.correct_in_window -= 1;
        }
        self.recent.push_back(correct);
        if correct {
            self.correct_in_window += 1;
        }
    }

    /// Smoothed confidence.
    pub fn ema(&self) -> f32 {
        self.ema
    }

    /// Accuracy over the rolling window (0 before any observation).
    pub fn windowed_accuracy(&self) -> f32 {
        if self.recent.is_empty() {
            0.0
        } else {
            self.correct_in_window as f32 / self.recent.len() as f32
        }
    }

    /// Observations recorded so far, capped at the window size.
    pub fn window_fill(&self) -> usize {
        self.recent.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ema_converges_to_constant_input() {
        let mut t = ConfidenceTracker::new(0.1, 10);
        for _ in 0..200 {
            t.record(0.8, true);
        }
        assert!((t.ema() - 0.8).abs() < 0.01);
    }

    #[test]
    fn windowed_accuracy_tracks_recent_flips() {
        let mut t = ConfidenceTracker::new(0.5, 4);
        for _ in 0..4 {
            t.record(1.0, true);
        }
        assert_eq!(t.windowed_accuracy(), 1.0);
        for _ in 0..4 {
            t.record(0.0, false);
        }
        assert_eq!(t.windowed_accuracy(), 0.0);
        t.record(1.0, true);
        assert_eq!(t.windowed_accuracy(), 0.25);
    }

    #[test]
    fn empty_tracker_reports_zero() {
        let t = ConfidenceTracker::new(0.2, 8);
        assert_eq!(t.ema(), 0.0);
        assert_eq!(t.windowed_accuracy(), 0.0);
        assert_eq!(t.window_fill(), 0);
    }

    #[test]
    #[should_panic(expected = "alpha must be in (0, 1]")]
    fn bad_alpha_rejected() {
        let _ = ConfidenceTracker::new(0.0, 5);
    }
}
