//! The neocortex: the slow structure learner.
//!
//! In CLS theory the neocortex "slowly learns the structure underlying
//! the information it encounters — i.e., the rules behind a memory
//! access pattern". Here it is the sparse Hebbian network of
//! `hnp-hebbian`, sized from the input encoder and delta vocabulary.

use hnp_hebbian::{HebbianConfig, HebbianNetwork, HebbianOutcome, LrScale, NetStats};

use crate::encoder::Encoder;

/// Sizing and learning knobs for the neocortex network; fields mirror
/// [`HebbianConfig`] where they overlap.
#[derive(Debug, Clone)]
pub struct NeocortexConfig {
    /// Hidden width (paper: 1000).
    pub hidden: usize,
    /// Inter-layer connectivity (paper: 12.5 %).
    pub connectivity: f64,
    /// Hidden winners per step (paper: 10 %).
    pub hidden_active: usize,
    /// Recurrent-state width.
    pub recurrent_bits: usize,
    /// Winners projected into the recurrent state.
    pub recurrent_sample: usize,
    /// Weight clamp.
    pub weight_clamp: i16,
    /// LTP step.
    pub step: i16,
    /// LTD step.
    pub ltd_step: i16,
    /// Seed.
    pub seed: u64,
}

impl Default for NeocortexConfig {
    fn default() -> Self {
        Self {
            hidden: 1000,
            connectivity: 0.125,
            hidden_active: 100,
            recurrent_bits: 128,
            recurrent_sample: 16,
            weight_clamp: 64,
            step: 4,
            ltd_step: 1,
            seed: 0xc07e,
        }
    }
}

/// The neocortex wrapper: a Hebbian network plus the encoder that
/// feeds it.
pub struct Neocortex {
    net: HebbianNetwork,
    vocab_len: usize,
}

impl Neocortex {
    /// Builds a neocortex whose input width matches `encoder` and
    /// whose output classes cover `vocab_len` tokens.
    pub fn new(encoder: &Encoder, vocab_len: usize, cfg: &NeocortexConfig) -> Self {
        let net = HebbianNetwork::new(HebbianConfig {
            pattern_bits: encoder.pattern_bits(),
            recurrent_bits: cfg.recurrent_bits,
            hidden: cfg.hidden,
            outputs: vocab_len,
            connectivity: cfg.connectivity,
            hidden_active: cfg.hidden_active,
            recurrent_sample: cfg.recurrent_sample,
            weight_clamp: cfg.weight_clamp,
            step: cfg.step,
            ltd_step: cfg.ltd_step,
            ..HebbianConfig::paper_table2()
        });
        Self { net, vocab_len }
    }

    /// Token-vocabulary size.
    pub fn vocab_len(&self) -> usize {
        self.vocab_len
    }

    /// The underlying network.
    pub fn network(&self) -> &HebbianNetwork {
        &self.net
    }

    /// Mutable access (availability protocol swaps weights).
    pub fn network_mut(&mut self) -> &mut HebbianNetwork {
        &mut self.net
    }

    /// The network's instrumentation counters (k-WTA stability,
    /// weight churn) for the observability layer's epoch summaries.
    pub fn stats(&self) -> NetStats {
        self.net.stats()
    }

    /// One online training step at full rate.
    pub fn train(&mut self, pattern: &[u32], target: usize) -> HebbianOutcome {
        self.net.train_step(pattern, target)
    }

    /// One training step at a scaled (possibly fractional) rate — the
    /// replay path. Anti-Hebbian depression is disabled: replay
    /// reinforces stored associations without punishing the network's
    /// current (new-pattern) predictions.
    pub fn train_scaled(
        &mut self,
        pattern: &[u32],
        target: usize,
        scale: LrScale,
    ) -> HebbianOutcome {
        self.net.train_step_opts(pattern, target, scale, false)
    }

    /// A replay training step that reinstates a stored recurrent
    /// context: the live recurrent state is saved, the episode's
    /// context installed, the scaled (anti-free) update applied, and
    /// the live state restored. Replaying under the *current* context
    /// would potentiate the old target on the wrong winner set and
    /// erode the true association.
    pub fn replay_train(
        &mut self,
        pattern: &[u32],
        target: usize,
        scale: LrScale,
        recurrent: &[u32],
    ) -> HebbianOutcome {
        let saved = self.net.recurrent_state().to_vec();
        self.net.set_recurrent_state(recurrent);
        let out = self.net.train_step_opts(pattern, target, scale, false);
        self.net.set_recurrent_state(&saved);
        out
    }

    /// The current recurrent-context bits (stored into episodes).
    pub fn recurrent_state(&self) -> Vec<u32> {
        self.net.recurrent_state().to_vec()
    }

    /// Inference that advances the recurrent state but does not learn
    /// (the sampler's "skip training" path still observes the stream).
    pub fn observe(&mut self, pattern: &[u32], probe: usize) -> HebbianOutcome {
        self.net.infer_advance(pattern, probe)
    }

    /// Multi-step, multi-width prediction from the current state.
    /// `history` is the token history ending in the newest token; the
    /// rollout extends it autoregressively under `encoder`.
    pub fn predict(
        &mut self,
        history: &[usize],
        encoder: &Encoder,
        steps: usize,
        width: usize,
    ) -> Vec<Vec<usize>> {
        self.predict_with_confidence(history, encoder, steps, width)
            .0
    }

    /// [`predict`](Self::predict) that also reports the first step's
    /// top-prediction confidence, for confidence-gated issuing (§5.2).
    pub fn predict_with_confidence(
        &mut self,
        history: &[usize],
        encoder: &Encoder,
        steps: usize,
        width: usize,
    ) -> (Vec<Vec<usize>>, f32) {
        let mut rolling: Vec<usize> = history.to_vec();
        let pattern = encoder.encode(&rolling);
        self.net
            .rollout_top_k_with_confidence(&pattern, steps, width, |tok| {
                rolling.push(tok);
                encoder.encode(&rolling)
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoder::EncoderKind;

    fn small_cfg() -> NeocortexConfig {
        NeocortexConfig {
            hidden: 128,
            connectivity: 0.375,
            hidden_active: 16,
            recurrent_bits: 32,
            recurrent_sample: 6,
            ..NeocortexConfig::default()
        }
    }

    #[test]
    fn sizes_from_encoder() {
        let e = Encoder::new(EncoderKind::HistoryWindow { window: 3 }, 20);
        let n = Neocortex::new(&e, 20, &small_cfg());
        assert_eq!(n.network().config().pattern_bits, 60);
        assert_eq!(n.network().config().outputs, 20);
    }

    #[test]
    fn learns_cycle_through_wrapper() {
        let e = Encoder::new(EncoderKind::OneHot, 16);
        let mut n = Neocortex::new(&e, 16, &small_cfg());
        let cycle = [1usize, 5, 2, 9];
        let mut last_correct = false;
        for _ in 0..200 {
            for w in 0..cycle.len() {
                let pattern = e.encode(&cycle[w..w + 1]);
                let o = n.train(&pattern, cycle[(w + 1) % cycle.len()]);
                last_correct = o.correct;
            }
        }
        assert!(last_correct);
    }

    #[test]
    fn predict_extends_history_autoregressively() {
        let e = Encoder::new(EncoderKind::HistoryWindow { window: 2 }, 16);
        let mut n = Neocortex::new(&e, 16, &small_cfg());
        let cycle = [1usize, 5, 2, 9];
        for _ in 0..300 {
            let mut hist: Vec<usize> = vec![cycle[3]];
            for &tok in &cycle {
                hist.push(tok);
                let ctx = &hist[..hist.len() - 1];
                let pattern = e.encode(ctx);
                n.train(&pattern, tok);
            }
        }
        // Recreate the recurrent context that preceded [9, 1] during
        // training (the state after consuming context [9]), then
        // predict three steps from history [9, 1].
        n.network_mut().reset_state();
        let _ = n.observe(&e.encode(&[9]), 0);
        let preds = n.predict(&[9, 1], &e, 3, 2);
        assert_eq!(preds.len(), 3);
        assert_eq!(preds[0].len(), 2);
        assert_eq!(preds[0][0], 5, "next after 1 is 5");
    }

    #[test]
    fn observe_does_not_learn() {
        let e = Encoder::new(EncoderKind::OneHot, 16);
        let mut n = Neocortex::new(&e, 16, &small_cfg());
        for _ in 0..100 {
            n.train(&e.encode(&[4]), 4);
        }
        let w_before = n.network().param_count(); // Structure is fixed...
        let conf_before = {
            n.network_mut().reset_state();
            n.observe(&e.encode(&[4]), 4).confidence
        };
        for _ in 0..50 {
            n.observe(&e.encode(&[9]), 9);
        }
        n.network_mut().reset_state();
        let conf_after = n.observe(&e.encode(&[4]), 4).confidence;
        assert_eq!(conf_before, conf_after, "observe must not change weights");
        assert_eq!(w_before, n.network().param_count());
    }
}
