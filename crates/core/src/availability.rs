//! The shadow-model availability protocol (§5.5).
//!
//! "Training actively changes the weights of a neural network \[so\] it
//! may be important to block inference during training ... a protocol
//! where training is applied to a separate model copy, which is later
//! redeployed when the live model's confidence/accuracy decreases."
//!
//! [`ShadowDeployment`] keeps a live network behind a mutex (inference
//! may run from any thread) and trains a private shadow copy; when the
//! live model's windowed accuracy drops below a threshold the shadow
//! is atomically redeployed. The `availability` bench harness also
//! exercises the paper's counter-hypothesis — that Hebbian networks
//! are robust enough to train in place — by comparing both modes under
//! concurrent inference.

use std::sync::Arc;

use parking_lot::Mutex;

use hnp_hebbian::{HebbianNetwork, HebbianOutcome};

use crate::confidence::ConfidenceTracker;

/// Redeployment policy.
#[derive(Debug, Clone)]
pub struct AvailabilityConfig {
    /// Redeploy when live windowed accuracy falls below this.
    pub redeploy_below: f32,
    /// Minimum observations before accuracy is trusted.
    pub min_window_fill: usize,
    /// Check the redeploy condition every this many steps.
    pub check_every: u64,
    /// Accuracy window size.
    pub window: usize,
}

impl Default for AvailabilityConfig {
    fn default() -> Self {
        Self {
            redeploy_below: 0.5,
            min_window_fill: 64,
            check_every: 32,
            window: 128,
        }
    }
}

/// A live/shadow pair of Hebbian networks.
pub struct ShadowDeployment {
    live: Arc<Mutex<HebbianNetwork>>,
    shadow: HebbianNetwork,
    tracker: ConfidenceTracker,
    cfg: AvailabilityConfig,
    steps: u64,
    /// Completed redeployments.
    pub redeployments: u64,
}

impl ShadowDeployment {
    /// Starts the protocol with `net` as both live and shadow.
    pub fn new(net: HebbianNetwork, cfg: AvailabilityConfig) -> Self {
        Self {
            live: Arc::new(Mutex::new(net.clone())),
            shadow: net,
            tracker: ConfidenceTracker::new(0.05, cfg.window),
            cfg,
            steps: 0,
            redeployments: 0,
        }
    }

    /// A handle to the live model for concurrent inference threads.
    pub fn live_handle(&self) -> Arc<Mutex<HebbianNetwork>> {
        Arc::clone(&self.live)
    }

    /// The live model's tracked accuracy.
    pub fn live_accuracy(&self) -> f32 {
        self.tracker.windowed_accuracy()
    }

    /// One protocol step: the live model serves the prediction (and is
    /// scored on it), the shadow model trains on the example, and the
    /// redeploy condition is evaluated. Returns the live outcome and
    /// whether a redeploy happened.
    pub fn step(&mut self, pattern: &[u32], target: usize) -> (HebbianOutcome, bool) {
        let outcome = {
            let mut live = self.live.lock();
            live.infer_advance(pattern, target)
        };
        self.tracker.record(outcome.confidence, outcome.correct);
        self.shadow.train_step(pattern, target);
        self.steps += 1;
        let mut redeployed = false;
        if self.steps.is_multiple_of(self.cfg.check_every)
            && self.tracker.window_fill() >= self.cfg.min_window_fill
            && self.tracker.windowed_accuracy() < self.cfg.redeploy_below
        {
            self.redeploy();
            redeployed = true;
        }
        (outcome, redeployed)
    }

    /// Forces a redeploy: the shadow's weights become live.
    pub fn redeploy(&mut self) {
        let mut live = self.live.lock();
        *live = self.shadow.clone();
        self.redeployments += 1;
        // Reset the accuracy window: the new model deserves a fresh
        // assessment.
        self.tracker = ConfidenceTracker::new(0.05, self.cfg.window);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hnp_hebbian::HebbianConfig;

    fn net() -> HebbianNetwork {
        HebbianNetwork::new(HebbianConfig::tiny())
    }

    fn oh(t: usize) -> Vec<u32> {
        vec![t as u32]
    }

    #[test]
    fn shadow_learns_and_redeploys_when_live_is_stale() {
        let mut dep = ShadowDeployment::new(
            net(),
            AvailabilityConfig {
                redeploy_below: 0.5,
                min_window_fill: 32,
                check_every: 16,
                window: 64,
            },
        );
        // The untrained live model mispredicts; the shadow learns the
        // cycle; eventually the protocol redeploys.
        let cycle = [1usize, 5, 2, 9];
        let mut redeploys = 0;
        for epoch in 0..100 {
            for w in 0..cycle.len() {
                let (_, r) = dep.step(&oh(cycle[w]), cycle[(w + 1) % cycle.len()]);
                if r {
                    redeploys += 1;
                }
            }
            if epoch == 99 {
                assert!(
                    dep.live_accuracy() > 0.8,
                    "live accuracy after redeploys: {}",
                    dep.live_accuracy()
                );
            }
        }
        assert!(redeploys >= 1, "at least one redeploy must fire");
        assert_eq!(dep.redeployments, redeploys);
    }

    #[test]
    fn manual_redeploy_copies_shadow_weights() {
        let mut dep = ShadowDeployment::new(net(), AvailabilityConfig::default());
        for _ in 0..100 {
            dep.step(&oh(3), 3);
        }
        // The live model never trained; the shadow did.
        dep.redeploy();
        let live = dep.live_handle();
        let mut live = live.lock();
        live.reset_state();
        // Warm the recurrent state one step (the shadow trained with a
        // steady-state context), then probe.
        let _ = live.infer_advance(&oh(3), 3);
        let out = live.infer_advance(&oh(3), 3);
        assert!(out.correct, "redeployed model must know the mapping");
    }

    #[test]
    fn live_handle_is_shared() {
        let dep = ShadowDeployment::new(net(), AvailabilityConfig::default());
        let h1 = dep.live_handle();
        let h2 = dep.live_handle();
        assert!(Arc::ptr_eq(&h1, &h2));
    }

    #[test]
    fn concurrent_inference_during_training_is_safe() {
        let mut dep = ShadowDeployment::new(net(), AvailabilityConfig::default());
        let handle = dep.live_handle();
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let reader = std::thread::spawn(move || {
            let mut inferences = 0u64;
            while !stop2.load(std::sync::atomic::Ordering::Relaxed) {
                let mut live = handle.lock();
                let _ = live.infer_advance(&[1], 1);
                inferences += 1;
            }
            inferences
        });
        for i in 0..2000usize {
            dep.step(&[(i % 8) as u32], (i % 8).min(15));
        }
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        let inferences = reader.join().expect("reader thread");
        assert!(inferences > 0, "inference proceeded concurrently");
    }
}
