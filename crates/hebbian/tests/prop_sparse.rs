//! Property tests: the sparse layer against a dense reference model.

use proptest::prelude::*;

use hnp_hebbian::bitset::BitSet;
use hnp_hebbian::sparse::SparseLayer;
use rand::rngs::StdRng;
use rand::SeedableRng;

const INPUTS: usize = 24;
const OUTPUTS: usize = 10;
const CLAMP: i16 = 16;

/// A dense shadow of the sparse layer: `None` where no connection
/// exists.
fn dense_shadow(layer: &SparseLayer) -> Vec<Vec<Option<i16>>> {
    (0..OUTPUTS as u32)
        .map(|o| (0..INPUTS as u32).map(|i| layer.weight(i, o)).collect())
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Under arbitrary Hebbian/anti update sequences: weights stay
    /// clamped, connectivity never changes, and forward scores equal
    /// the dense-model dot product.
    #[test]
    fn sparse_layer_matches_dense_model(
        seed in 0u64..64,
        ops in proptest::collection::vec(
            (0u32..OUTPUTS as u32, proptest::collection::vec(0u32..INPUTS as u32, 0..6), 1i16..4, any::<bool>()),
            1..40,
        ),
        probe in proptest::collection::vec(0u32..INPUTS as u32, 0..8),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut layer = SparseLayer::new(INPUTS, OUTPUTS, 0.5, CLAMP, 1, &mut rng);
        let connectivity_before = dense_shadow(&layer)
            .iter()
            .map(|row| row.iter().filter(|w| w.is_some()).count())
            .collect::<Vec<_>>();
        let mut model = dense_shadow(&layer);
        for (out, active, step, anti) in &ops {
            let set = BitSet::from_indices(INPUTS, active);
            if *anti {
                layer.anti_update(*out, &set, *step);
                for (i, w) in model[*out as usize].iter_mut().enumerate() {
                    if let Some(v) = w {
                        if set.contains(i) {
                            *v = (*v - step).clamp(-CLAMP, CLAMP);
                        }
                    }
                }
            } else {
                layer.hebbian_update(*out, &set, *step, 1);
                for (i, w) in model[*out as usize].iter_mut().enumerate() {
                    if let Some(v) = w {
                        let delta = if set.contains(i) { *step } else { -1 };
                        *v = (*v + delta).clamp(-CLAMP, CLAMP);
                    }
                }
            }
        }
        // Weights match the dense model and respect the clamp.
        let after = dense_shadow(&layer);
        for (o, row) in after.iter().enumerate() {
            let present = row.iter().filter(|w| w.is_some()).count();
            prop_assert_eq!(present, connectivity_before[o], "connectivity is fixed");
            for (i, w) in row.iter().enumerate() {
                prop_assert_eq!(*w, model[o][i], "weight ({}, {})", i, o);
                if let Some(v) = w {
                    prop_assert!(v.abs() <= CLAMP);
                }
            }
        }
        // Forward equals the dense dot product over active inputs.
        let mut probe_sorted = probe.clone();
        probe_sorted.sort_unstable();
        probe_sorted.dedup();
        let mut scores = vec![0i32; OUTPUTS];
        layer.forward(&probe_sorted, &mut scores);
        for (o, &s) in scores.iter().enumerate() {
            let expect: i32 = probe_sorted
                .iter()
                .filter_map(|&i| model[o][i as usize])
                .map(i32::from)
                .sum();
            prop_assert_eq!(s, expect, "score for output {}", o);
        }
    }
}
