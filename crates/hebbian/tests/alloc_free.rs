//! Steady-state allocation accounting for the per-miss hot path.
//!
//! The kernel refactor's contract is that once the network's scratch
//! buffers have warmed up, `train_step`, `infer`, and
//! `infer_advance` perform **zero** heap allocation. A counting
//! global allocator makes that a hard test instead of a code-review
//! claim.
//!
//! Single `#[test]` in this file: the counter is process-global, and
//! a concurrently running test could otherwise attribute its
//! allocations to the window under measurement.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use hnp_hebbian::{HebbianConfig, HebbianNetwork};

struct Counting;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

// SAFETY-free wrapper: defers entirely to `System`, adding one
// relaxed counter bump per allocation/reallocation.
unsafe impl GlobalAlloc for Counting {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static COUNTER: Counting = Counting;

#[test]
fn steady_state_kernels_do_not_allocate() {
    let cfg = HebbianConfig::paper_table2();
    let outputs = cfg.outputs;
    let mut net = HebbianNetwork::new(cfg);

    // Warm-up: grow every scratch buffer to its high-water mark across
    // all three entry points (train, infer, infer_advance).
    for i in 0..64u32 {
        let pattern = [i % 61, (i * 7) % 61 + 61];
        net.train_step(&pattern, (i as usize + 1) % outputs);
        net.infer(&pattern, (i as usize + 1) % outputs);
        net.infer_advance(&pattern, (i as usize + 1) % outputs);
    }

    let before = ALLOCS.load(Ordering::Relaxed);
    for i in 0..200u32 {
        let pattern = [i % 61, (i * 7) % 61 + 61];
        net.train_step(&pattern, (i as usize + 1) % outputs);
        net.infer(&pattern, (i as usize + 1) % outputs);
        net.infer_advance(&pattern, (i as usize + 1) % outputs);
    }
    let after = ALLOCS.load(Ordering::Relaxed);

    assert_eq!(
        after - before,
        0,
        "hot path allocated {} times across 600 steady-state calls",
        after - before
    );
}
