//! Differential proptests: the optimized kernels against the
//! pre-optimization reference implementations.
//!
//! The CSR forward walk, the scratch-buffer [`k_winners_into`], and
//! the word-at-a-time Eq.-1 update must be *bit-identical* to the
//! naive kernels they replaced ([`sparse::reference`],
//! [`kwta::k_winners_ref`]) — winners, scores, ops counts, and the
//! full weight array. This module is the refactor's behavior-
//! preservation proof; it lives in the crate (not `tests/`) so the
//! `#[cfg(test)]` reference kernels stay private.
//!
//! The whole module is `#[cfg(test)]` (declared so in `lib.rs`), which
//! the file-local lint cannot see:
// hnp-lint: allow-file(integer_purity)

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::bitset::BitSet;
use crate::kwta::{k_winners, k_winners_into, k_winners_ref};
use crate::sparse::{reference, SparseLayer};

const INPUTS: usize = 70; // Deliberately not a multiple of 64.
const OUTPUTS: usize = 12;
const CLAMP: i16 = 24;

fn layer_pair(seed: u64, connectivity: f64) -> (SparseLayer, SparseLayer) {
    let mut a_rng = StdRng::seed_from_u64(seed);
    let mut b_rng = StdRng::seed_from_u64(seed);
    (
        SparseLayer::new(INPUTS, OUTPUTS, connectivity, CLAMP, 2, &mut a_rng),
        SparseLayer::new(INPUTS, OUTPUTS, connectivity, CLAMP, 2, &mut b_rng),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Optimized and reference kernels agree on every observable after
    /// an arbitrary interleaving of Hebbian/anti updates and probes.
    #[test]
    fn kernels_match_reference_bit_for_bit(
        seed in 0u64..64,
        conn_idx in 0usize..3,
        ops in proptest::collection::vec(
            (
                0u32..OUTPUTS as u32,
                proptest::collection::vec(0u32..INPUTS as u32, 0..12),
                1i16..5,
                1i16..3,
                any::<bool>(),
            ),
            1..50,
        ),
        probe in proptest::collection::vec(0u32..INPUTS as u32, 0..16),
    ) {
        let conn = [0.25f64, 0.5, 1.0][conn_idx];
        let (mut fast, mut naive) = layer_pair(seed, conn);
        prop_assert_eq!(fast.weights(), naive.weights(), "construction");

        for (out, active, pot, dep, anti) in &ops {
            let set = BitSet::from_indices(INPUTS, active);
            if *anti {
                fast.anti_update(*out, &set, *pot);
                reference::anti_update_ref(&mut naive, *out, &set, *pot);
            } else {
                fast.hebbian_update(*out, &set, *pot, *dep);
                reference::hebbian_update_ref(&mut naive, *out, &set, *pot, *dep);
            }
            prop_assert_eq!(fast.weights(), naive.weights(), "weights diverged");
        }

        let mut probe_sorted = probe.clone();
        probe_sorted.sort_unstable();
        probe_sorted.dedup();
        let mut fast_scores = vec![0i32; OUTPUTS];
        let ops_count = fast.forward(&probe_sorted, &mut fast_scores);
        let mut ref_scores = vec![0i32; OUTPUTS];
        reference::forward_ref(&naive, &probe_sorted, &mut ref_scores);
        prop_assert_eq!(&fast_scores, &ref_scores, "forward scores diverged");
        let expected_ops: usize = probe_sorted.iter().map(|&i| fast.fan_out(i)).sum();
        prop_assert_eq!(ops_count, expected_ops, "forward ops count");
    }

    /// The scratch-buffer k-WTA equals both the allocating wrapper and
    /// the full-sort reference, including tie-heavy score vectors.
    /// `wide` scales the scores so both strategies — counting
    /// selection (tight spread) and packed quickselect (wide spread) —
    /// are exercised on the same tie structure.
    #[test]
    fn kwta_matches_reference(
        scores in proptest::collection::vec(-8i32..8, 1..300),
        k in 0usize..320,
        wide in any::<bool>(),
    ) {
        let scores: Vec<i32> = if wide {
            scores.iter().map(|&s| s * 1_000_000).collect()
        } else {
            scores
        };
        let mut scratch = Vec::new();
        let mut winners = Vec::new();
        k_winners_into(&scores, k, &mut scratch, &mut winners);
        prop_assert_eq!(&winners, &k_winners(&scores, k));
        prop_assert_eq!(&winners, &k_winners_ref(&scores, k.min(scores.len())));
    }

    /// Saturating Eq.-1 arithmetic: under an extreme clamp the update
    /// never overflows and both implementations still agree.
    #[test]
    fn extreme_clamp_never_overflows(
        seed in 0u64..16,
        rounds in 1usize..8,
        pot in 1i16..=i16::MAX,
        dep in 0i16..=i16::MAX,
    ) {
        let mut a_rng = StdRng::seed_from_u64(seed);
        let mut b_rng = StdRng::seed_from_u64(seed);
        let mut fast = SparseLayer::new(8, 2, 1.0, i16::MAX, 1, &mut a_rng);
        let mut naive = SparseLayer::new(8, 2, 1.0, i16::MAX, 1, &mut b_rng);
        let active = BitSet::from_indices(8, &[0, 2, 4, 6]);
        for _ in 0..rounds {
            fast.hebbian_update(0, &active, pot, dep);
            reference::hebbian_update_ref(&mut naive, 0, &active, pot, dep);
            fast.anti_update(1, &active, dep);
            reference::anti_update_ref(&mut naive, 1, &active, dep);
        }
        // Reaching this point is the overflow check: with wrapping or
        // unchecked arithmetic the debug build would have panicked on
        // `i16::MAX + pot` long before the equality assert.
        prop_assert_eq!(fast.weights(), naive.weights());
    }
}

/// Network-level differential check: a snapshot taken through the
/// flat-weight state API before any CSR-era step restores into a CSR
/// network and continues bit-identically — the layout contract the
/// serve snapshot codec relies on.
#[cfg(test)]
mod network_level {
    use crate::network::{HebbianConfig, HebbianNetwork};

    #[test]
    fn weight_layout_is_output_major_slot_order() {
        let cfg = HebbianConfig::tiny();
        let mut net = HebbianNetwork::new(cfg.clone());
        for i in 0..40u32 {
            net.train_step(
                &[i % cfg.pattern_bits as u32],
                (i as usize + 1) % cfg.outputs,
            );
        }
        let state = net.export_state();
        let mut restored = HebbianNetwork::new(cfg);
        restored.import_state(&state).expect("same geometry");
        for i in 0..8u32 {
            let a = net.infer(&[i % 16], 0);
            let b = restored.infer(&[i % 16], 0);
            assert_eq!(a.predicted, b.predicted);
            assert_eq!(a.ops, b.ops);
        }
    }
}
