//! k-winners-take-all sparse activation.
//!
//! The paper's networks are "sparse in their representations, in that
//! only 1-25 % of the network's hidden layer neurons are activated on
//! an input". k-WTA implements that: the `k` highest-scoring units
//! fire, the rest are silent.

/// Returns the indices of the `k` highest scores, ascending by index.
///
/// Ties are broken toward the lower index so that results are fully
/// deterministic. Returns all indices if `k >= scores.len()`.
///
/// Allocates two fresh buffers per call; the per-miss hot path uses
/// [`k_winners_into`] with reusable scratch instead.
pub fn k_winners(scores: &[i32], k: usize) -> Vec<u32> {
    let mut scratch = Vec::new();
    let mut winners = Vec::new();
    k_winners_into(scores, k, &mut scratch, &mut winners);
    winners
}

/// Allocation-free [`k_winners`]: writes the winner set into
/// `winners` (cleared first), using `scratch` as the workspace.
/// In steady state — once both buffers have reached their high-water
/// capacity — no heap allocation occurs.
///
/// Two strategies, picked by score spread (both produce the identical
/// winner set):
///
/// * **Counting selection** when `max - min <= 4 * n` (always true on
///   the hot path, where scores are bounded by `active × clamp`):
///   histogram the scores in `scratch`, walk buckets from the top to
///   find the threshold score, then emit indices in one ascending
///   pass — strictly-above-threshold ones unconditionally, at-
///   threshold ones lowest-index-first until `k` is reached. No sort
///   at all; the emission order is already ascending.
/// * **Packed quickselect** otherwise: each candidate packs into one
///   `u64` key (sign-biased score high, bit-inverted index low) so
///   "higher score first, lower index on ties" is plain integer
///   comparison for `select_nth_unstable_by`, then the winner prefix
///   is unpacked and sorted ascending.
pub fn k_winners_into(scores: &[i32], k: usize, scratch: &mut Vec<u64>, winners: &mut Vec<u32>) {
    winners.clear();
    if k == 0 {
        return;
    }
    let n = scores.len();
    if k >= n {
        winners.extend(0..n as u32);
        return;
    }
    let (mut min, mut max) = (i32::MAX, i32::MIN);
    for &s in scores {
        min = min.min(s);
        max = max.max(s);
    }
    let range = (max as i64 - min as i64) as usize;
    if range <= 4 * n {
        scratch.clear();
        scratch.resize(range + 1, 0);
        for &s in scores {
            scratch[(s - min) as usize] += 1;
        }
        let mut remaining = k as u64;
        let mut bucket = range;
        while scratch[bucket] < remaining {
            remaining -= scratch[bucket];
            bucket -= 1;
        }
        let threshold = min + bucket as i32;
        let mut ties_left = remaining;
        for (i, &s) in scores.iter().enumerate() {
            if s > threshold {
                winners.push(i as u32);
            } else if s == threshold && ties_left > 0 {
                ties_left -= 1;
                winners.push(i as u32);
            }
        }
        return;
    }
    scratch.clear();
    scratch.extend(
        scores
            .iter()
            .enumerate()
            .map(|(i, &s)| ((s as u32 ^ 0x8000_0000) as u64) << 32 | !(i as u32) as u64),
    );
    scratch.select_nth_unstable_by(k - 1, |a, b| b.cmp(a));
    winners.extend(scratch[..k].iter().map(|&key| !(key as u32)));
    winners.sort_unstable();
}

/// Pre-optimization reference: full sort of all indices, take the top
/// `k`, re-sort ascending. Kept only to differential-test
/// [`k_winners_into`] (see `tests::matches_naive_reference` and the
/// crate's `differential` proptest module).
#[cfg(test)]
pub(crate) fn k_winners_ref(scores: &[i32], k: usize) -> Vec<u32> {
    let mut idx: Vec<u32> = (0..scores.len() as u32).collect();
    idx.sort_by(|&a, &b| scores[b as usize].cmp(&scores[a as usize]).then(a.cmp(&b)));
    idx.truncate(k);
    idx.sort_unstable();
    idx
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn picks_top_k() {
        let scores = [5, 1, 9, 3, 7];
        assert_eq!(k_winners(&scores, 2), vec![2, 4]);
        assert_eq!(k_winners(&scores, 3), vec![0, 2, 4]);
    }

    #[test]
    fn ties_break_toward_lower_index() {
        let scores = [4, 4, 4, 4];
        assert_eq!(k_winners(&scores, 2), vec![0, 1]);
    }

    #[test]
    fn k_zero_and_k_big_are_safe() {
        let scores = [1, 2, 3];
        assert!(k_winners(&scores, 0).is_empty());
        assert_eq!(k_winners(&scores, 10), vec![0, 1, 2]);
    }

    #[test]
    fn winners_are_sorted() {
        let scores: Vec<i32> = (0..100).map(|i| (i * 37) % 101).collect();
        let w = k_winners(&scores, 10);
        let mut sorted = w.clone();
        sorted.sort_unstable();
        assert_eq!(w, sorted);
    }

    #[test]
    fn negative_scores_still_select_the_least_negative() {
        let scores = [-10, -3, -7, -1];
        assert_eq!(k_winners(&scores, 2), vec![1, 3]);
    }

    #[test]
    fn into_variant_reuses_buffers_and_matches() {
        let scores: Vec<i32> = (0..200).map(|i| (i * 53) % 97).collect();
        let mut scratch = Vec::new();
        let mut winners = Vec::new();
        for k in [0usize, 1, 7, 100, 200, 500] {
            k_winners_into(&scores, k, &mut scratch, &mut winners);
            assert_eq!(winners, k_winners(&scores, k), "k = {k}");
        }
    }

    #[test]
    fn matches_naive_reference() {
        let scores: Vec<i32> = (0..300).map(|i| (i * 31) % 101 - 50).collect();
        for k in [0usize, 1, 10, 150, 300] {
            assert_eq!(k_winners(&scores, k), k_winners_ref(&scores, k), "k = {k}");
        }
    }

    #[test]
    fn wide_spread_takes_quickselect_path_and_matches() {
        // Spread >> 4n forces the packed-quickselect fallback; both
        // strategies must agree with the naive reference.
        let scores: Vec<i32> = (0..100)
            .map(|i| (i * 7919 % 13) * 1_000_000 - 6_000_000 + i)
            .collect();
        for k in [1usize, 5, 50, 99] {
            assert_eq!(k_winners(&scores, k), k_winners_ref(&scores, k), "k = {k}");
        }
    }
}
