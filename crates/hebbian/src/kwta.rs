//! k-winners-take-all sparse activation.
//!
//! The paper's networks are "sparse in their representations, in that
//! only 1-25 % of the network's hidden layer neurons are activated on
//! an input". k-WTA implements that: the `k` highest-scoring units
//! fire, the rest are silent.

/// Returns the indices of the `k` highest scores, ascending by index.
///
/// Ties are broken toward the lower index so that results are fully
/// deterministic. Returns all indices if `k >= scores.len()`.
pub fn k_winners(scores: &[i32], k: usize) -> Vec<u32> {
    if k == 0 {
        return Vec::new();
    }
    if k >= scores.len() {
        return (0..scores.len() as u32).collect();
    }
    // Select the k-th largest score by sorting a copy of the indices;
    // n is ~1000 on the hot path so an O(n log n) partial selection is
    // plenty, and `select_nth_unstable_by` keeps it O(n).
    let mut idx: Vec<u32> = (0..scores.len() as u32).collect();
    idx.select_nth_unstable_by(k - 1, |&a, &b| {
        scores[b as usize].cmp(&scores[a as usize]).then(a.cmp(&b))
    });
    let mut winners = idx[..k].to_vec();
    winners.sort_unstable();
    winners
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn picks_top_k() {
        let scores = [5, 1, 9, 3, 7];
        assert_eq!(k_winners(&scores, 2), vec![2, 4]);
        assert_eq!(k_winners(&scores, 3), vec![0, 2, 4]);
    }

    #[test]
    fn ties_break_toward_lower_index() {
        let scores = [4, 4, 4, 4];
        assert_eq!(k_winners(&scores, 2), vec![0, 1]);
    }

    #[test]
    fn k_zero_and_k_big_are_safe() {
        let scores = [1, 2, 3];
        assert!(k_winners(&scores, 0).is_empty());
        assert_eq!(k_winners(&scores, 10), vec![0, 1, 2]);
    }

    #[test]
    fn winners_are_sorted() {
        let scores: Vec<i32> = (0..100).map(|i| (i * 37) % 101).collect();
        let w = k_winners(&scores, 10);
        let mut sorted = w.clone();
        sorted.sort_unstable();
        assert_eq!(w, sorted);
    }

    #[test]
    fn negative_scores_still_select_the_least_negative() {
        let scores = [-10, -3, -7, -1];
        assert_eq!(k_winners(&scores, 2), vec![1, 3]);
    }
}
