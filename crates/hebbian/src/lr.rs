//! Fixed-point learning-rate scales.
//!
//! Integer weights cannot take fractional steps, so scaled learning
//! rates are applied either stochastically (scale < 1: update with
//! probability `scale`) or by multiplying the integer step (scale >=
//! 1). Both paths must stay integer to preserve the Table-2 ops
//! accounting, so the scale itself is a Q24 fixed-point value: `raw /
//! 2^24`. Q24 matches the vendored RNG's uniform-float construction
//! (`(next_u32() >> 8) * 2^-24`), which makes the stochastic
//! apply-check a single integer comparison.

/// A non-negative learning-rate scale in Q24 fixed point.
///
/// `raw == 2^24` is a scale of exactly 1.0; larger values multiply
/// the integer step, smaller ones become update probabilities.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct LrScale(u32);

impl LrScale {
    /// Number of fractional bits.
    pub const FRAC_BITS: u32 = 24;
    /// The identity scale (1.0).
    pub const ONE: LrScale = LrScale(1 << Self::FRAC_BITS);
    /// The zero scale (never update).
    pub const ZERO: LrScale = LrScale(0);

    /// Builds a scale from its raw Q24 representation.
    pub const fn from_raw(raw: u32) -> Self {
        LrScale(raw)
    }

    /// The raw Q24 representation.
    pub const fn raw(self) -> u32 {
        self.0
    }

    /// `num / den` as a Q24 scale, computed entirely in integers.
    ///
    /// # Panics
    ///
    /// Panics if `den == 0` or the ratio overflows the Q24 range.
    pub const fn from_ratio(num: u32, den: u32) -> Self {
        assert!(den != 0, "zero denominator");
        let raw = (((num as u64) << Self::FRAC_BITS) + den as u64 / 2) / den as u64;
        assert!(raw <= u32::MAX as u64, "ratio overflows Q24");
        LrScale(raw as u32)
    }

    /// Boundary constructor from a float configuration knob (e.g. a
    /// replay `lr_scale` of 0.1). Everything downstream of this point
    /// is integer arithmetic.
    ///
    /// # Panics
    ///
    /// Panics if `x` is negative or not finite.
    // hnp-lint: allow-file(integer_purity): this module is the float->Q24 boundary
    pub fn from_f32(x: f32) -> Self {
        assert!(
            x.is_finite() && x >= 0.0,
            "scale must be finite and non-negative"
        );
        let raw = (x as f64 * (1u64 << Self::FRAC_BITS) as f64).round();
        assert!(raw <= u32::MAX as f64, "scale overflows Q24");
        LrScale(raw as u32)
    }

    /// Whether the scale is at least 1.0 (deterministic apply).
    pub const fn at_least_one(self) -> bool {
        self.0 >= Self::ONE.0
    }

    /// Scales an integer step, rounding to nearest.
    pub const fn scale_step(self, step: i16) -> i16 {
        let scaled =
            (step as i64 * self.0 as i64 + (1 << (Self::FRAC_BITS - 1))) >> Self::FRAC_BITS;
        scaled as i16
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_matches_float_constructor() {
        assert_eq!(LrScale::from_ratio(1, 10), LrScale::from_f32(0.1));
        assert_eq!(LrScale::from_ratio(1, 1), LrScale::ONE);
        assert_eq!(LrScale::from_ratio(0, 7), LrScale::ZERO);
        assert_eq!(LrScale::from_ratio(3, 1), LrScale::from_f32(3.0));
    }

    #[test]
    fn scale_step_rounds_to_nearest() {
        assert_eq!(LrScale::ONE.scale_step(4), 4);
        assert_eq!(LrScale::from_f32(2.0).scale_step(4), 8);
        assert_eq!(LrScale::from_f32(1.5).scale_step(1), 2); // 1.5 rounds up.
        assert_eq!(LrScale::from_f32(2.5).scale_step(3), 8); // 7.5 rounds up.
        assert_eq!(LrScale::ZERO.scale_step(4), 0);
    }

    #[test]
    fn at_least_one_boundary() {
        assert!(LrScale::ONE.at_least_one());
        assert!(LrScale::from_f32(1.5).at_least_one());
        assert!(!LrScale::from_raw(LrScale::ONE.raw() - 1).at_least_one());
        assert!(!LrScale::ZERO.at_least_one());
    }

    #[test]
    #[should_panic(expected = "zero denominator")]
    fn zero_denominator_panics() {
        let _ = LrScale::from_ratio(1, 0);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn negative_scale_panics() {
        let _ = LrScale::from_f32(-0.5);
    }
}
