//! Sparse Hebbian networks and associative memories.
//!
//! This crate is the "brain-inspired" substrate of the HNP project
//! (§3 of the paper):
//!
//! * [`bitset`] — a small fixed-size bitset used for active-unit sets;
//! * [`sparse`] — integer-weighted, sparsely connected layers with the
//!   paper's Eq.-1 Hebbian update;
//! * [`kwta`] — k-winners-take-all sparse activation;
//! * [`network`] — the prefetching Hebbian network: one hidden layer of
//!   1000 neurons, 12.5 % connectivity, 10 % hidden activity, and a
//!   recurrent state for sequence memory;
//! * [`lr`] — Q24 fixed-point learning-rate scales, keeping scaled
//!   (replay) updates on the integer path;
//! * [`assoc`] — pattern separation and Willshaw-style associative
//!   memories modelling the hippocampal fast store.
//!
//! All arithmetic on the inference/training path is integer, matching
//! the Table-2 accounting.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod assoc;
pub mod bitset;
#[cfg(test)]
mod differential;
pub mod kwta;
pub mod lr;
pub mod network;
pub mod sparse;

pub use lr::LrScale;
pub use network::{
    HebbianConfig, HebbianNetwork, HebbianOutcome, HiddenLearning, NetState, NetStats, StateError,
};
