//! The sparse Hebbian prefetch network (§3.1 of the paper).
//!
//! Architecture: a binary input layer (pattern bits plus recurrent
//! bits), one hidden layer with k-winners-take-all activation, and an
//! output layer over the delta vocabulary. Connectivity between layers
//! is sparse and fixed at construction; weights are small integers
//! updated with the paper's Eq.-1 rule. A recurrent state — a sparse
//! binary code of the previous step (see [`RecurrentStyle`]) — gives
//! the network sequence memory, mirroring the paper's "our network
//! also uses a recurrent state to capture sequence memory".

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

use crate::lr::LrScale;

use crate::bitset::BitSet;
use crate::kwta::k_winners_into;
use crate::sparse::SparseLayer;

/// How (and whether) the input-to-hidden layer learns.
///
/// The default is [`HiddenLearning::Fixed`]: the hidden layer acts as
/// a fixed sparse random expansion — pattern separation in the sense
/// of the dentate gyrus — and all learning happens in the output
/// associator via Eq. 1. Competitive Hebbian learning of the hidden
/// layer is available for ablation; un-gated competitive updates
/// destabilize the winner sets (each step drags the strongest units
/// toward the current input) — see DESIGN.md §7.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HiddenLearning {
    /// Hidden weights stay at their random initialization.
    Fixed,
    /// Hidden winners update toward the input only on mispredictions.
    ErrorGated,
    /// Hidden winners update toward the input on every step.
    Always,
}

/// How the recurrent state is derived after each step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecurrentStyle {
    /// The recurrent bits are a fixed random code of the *previous
    /// step's pattern bits*. The state orbit then has exactly the
    /// pattern's period, which converges fast and predictably; context
    /// depth is one step (deeper context comes from history-window
    /// encoders upstream).
    PatternCode,
    /// The recurrent bits are the fixed random projections of the
    /// previous step's strongest hidden winners — an echo-state-style
    /// trace with deeper but less stable memory.
    WinnerTrace,
}

/// Hyper-parameters of the Hebbian prefetch network.
#[derive(Debug, Clone)]
pub struct HebbianConfig {
    /// Width of the binary pattern input (delta-vocabulary one-hot
    /// width, or an encoder's output width).
    pub pattern_bits: usize,
    /// Width of the recurrent-state input section.
    pub recurrent_bits: usize,
    /// Hidden-layer width (the paper uses 1000).
    pub hidden: usize,
    /// Output classes (delta vocabulary).
    pub outputs: usize,
    /// Fraction of present connections between adjacent layers (the
    /// paper uses 12.5 %).
    // hnp-lint: allow(integer_purity): construction-time geometry, not the update path
    pub connectivity: f64,
    /// Number of hidden winners per step (the paper activates 10 %).
    pub hidden_active: usize,
    /// How many winners (strongest first) project into the recurrent
    /// state. Bounds recurrent density.
    pub recurrent_sample: usize,
    /// Weight magnitude clamp.
    pub weight_clamp: i16,
    /// Base integer potentiation step (LTP).
    pub step: i16,
    /// Integer depression step (LTD) for inactive inputs of an updated
    /// output. Must be smaller than `step` for outputs that fire in
    /// several contexts (see `SparseLayer::hebbian_update`).
    pub ltd_step: i16,
    /// Depress a false winner's active inputs (perceptron-style
    /// extension of Eq. 1; see DESIGN.md).
    pub anti_hebbian: bool,
    /// Hidden-layer learning mode.
    pub hidden_learning: HiddenLearning,
    /// Recurrent-state derivation.
    pub recurrent_style: RecurrentStyle,
    /// Initial weight magnitude of the hidden expansion. Wider ranges
    /// give the fixed expansion better pattern separation.
    pub hidden_init_mag: i16,
    /// RNG seed for connectivity and stochastic scaled updates.
    pub seed: u64,
}

impl Default for HebbianConfig {
    fn default() -> Self {
        Self::paper_table2()
    }
}

impl HebbianConfig {
    /// The configuration matching the paper's Table-2 row: 1000 hidden
    /// neurons, 12.5 % connectivity, 10 % hidden activity, ~49 k
    /// integer parameters.
    pub fn paper_table2() -> Self {
        Self {
            pattern_bits: 128,
            recurrent_bits: 128,
            hidden: 1000,
            outputs: 136,
            // hnp-lint: allow(integer_purity): construction-time geometry
            connectivity: 0.125,
            hidden_active: 100,
            recurrent_sample: 16,
            weight_clamp: 64,
            step: 4,
            ltd_step: 1,
            anti_hebbian: true,
            hidden_learning: HiddenLearning::Fixed,
            recurrent_style: RecurrentStyle::PatternCode,
            hidden_init_mag: 8,
            seed: 0xb1a1,
        }
    }

    /// A small configuration for unit tests.
    ///
    /// Connectivity is denser than the paper's 12.5 % because at these
    /// widths sparse fan-in would leave some (winner-set, output) pairs
    /// structurally disconnected; at paper scale (125-wide fan-in vs.
    /// 100 winners of 1000) that probability is negligible (~1e-6).
    pub fn tiny() -> Self {
        Self {
            pattern_bits: 16,
            recurrent_bits: 32,
            hidden: 128,
            outputs: 16,
            // hnp-lint: allow(integer_purity): construction-time geometry
            connectivity: 0.375,
            hidden_active: 16,
            recurrent_sample: 6,
            weight_clamp: 32,
            step: 4,
            ltd_step: 1,
            anti_hebbian: true,
            hidden_learning: HiddenLearning::Fixed,
            recurrent_style: RecurrentStyle::PatternCode,
            hidden_init_mag: 8,
            seed: 0xb1a1,
        }
    }
}

/// Integer-only instrumentation counters maintained inline in the
/// forward/train paths. The observability layer reads these through
/// getters — `hnp-hebbian` is a leaf crate and must not depend on the
/// event bus, so the network accumulates raw sums and the caller
/// derives rates.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct NetStats {
    /// Forward passes taken (k-WTA selections), including rollout
    /// lookahead steps.
    pub steps: u64,
    /// Sum over steps of the winner-set intersection with the previous
    /// step's winners (k-WTA stability numerator).
    pub overlap_sum: u64,
    /// Sum over steps of the winner-set size (stability denominator).
    pub winner_slots: u64,
    /// Training steps whose weight update was actually applied
    /// (stochastic scaled updates may skip).
    pub weight_updates: u64,
    /// Integer ops spent inside applied weight updates (weight churn).
    pub update_ops: u64,
}

impl NetStats {
    /// Mean consecutive-step winner overlap, in thousandths. High
    /// overlap means the k-WTA winner sets are stable across steps.
    pub fn overlap_milli(&self) -> u64 {
        (self.overlap_sum * 1000)
            .checked_div(self.winner_slots)
            .unwrap_or(0)
    }
}

/// A capture of everything a [`HebbianNetwork`] learns at runtime:
/// layer weights, recurrent context, winner trace, counters, and the
/// RNG key. Integer-only, so downstream serialization (the serving
/// crate's snapshot codec) stays within the workspace purity rules.
/// Connectivity is *not* captured — it is reproduced from the config
/// seed when the receiving network is constructed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetState {
    /// Input→hidden weights, flat, output-major (see
    /// [`SparseLayer::weights`]).
    pub layer1_weights: Vec<i16>,
    /// Hidden→output weights, flat, output-major.
    pub layer2_weights: Vec<i16>,
    /// Active recurrent bits, ascending.
    pub recurrent: Vec<u32>,
    /// Previous step's hidden winner set (k-WTA overlap tracking).
    pub prev_winners: Vec<u32>,
    /// Instrumentation counters at capture time.
    pub stats: NetStats,
    /// Update-RNG key. Capture re-seeds the live RNG from this same
    /// key, so original and restored copies share one stream onward.
    pub rng_key: u64,
}

/// Why a [`NetState`] could not be imported.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StateError {
    /// A weight vector has the wrong length for the layer geometry or
    /// carries a value beyond the clamp.
    WeightShape,
    /// A recurrent bit or winner index is out of range.
    IndexRange,
}

impl std::fmt::Display for StateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StateError::WeightShape => write!(f, "weight vector does not fit the layer geometry"),
            StateError::IndexRange => write!(f, "recurrent bit or winner index out of range"),
        }
    }
}

/// The result of one inference or training step.
#[derive(Debug, Clone)]
pub struct HebbianOutcome {
    /// Argmax output class.
    pub predicted: usize,
    /// Normalized score of a probed class (the training target, when
    /// training): `max(score, 0) / sum(max(scores, 0))`. Comparable to
    /// the LSTM's softmax confidence in Fig. 3.
    // hnp-lint: allow(integer_purity): diagnostic output, outside the update path
    pub confidence: f32,
    /// Whether `predicted` equals the probed class.
    pub correct: bool,
    /// Integer operations spent on this step.
    pub ops: usize,
}

/// Size of the intersection of two ascending-sorted index slices
/// (two-pointer sweep; both come from `k_winners`, which sorts).
fn sorted_intersection(a: &[u32], b: &[u32]) -> u64 {
    let (mut i, mut j, mut n) = (0usize, 0usize, 0u64);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                n += 1;
                i += 1;
                j += 1;
            }
        }
    }
    n
}

/// The sparse Hebbian prefetch network.
#[derive(Clone)]
pub struct HebbianNetwork {
    cfg: HebbianConfig,
    /// Input (pattern ++ recurrent) -> hidden.
    layer1: SparseLayer,
    /// Hidden -> output classes.
    layer2: SparseLayer,
    /// Fixed random map from hidden unit to recurrent slot
    /// (`WinnerTrace` mode).
    recurrent_map: Vec<u32>,
    /// Fixed random slots per pattern bit (`PatternCode` mode).
    pattern_code_map: Vec<Vec<u32>>,
    /// Currently active recurrent bits (previous step's winners).
    recurrent: Vec<u32>,
    /// RNG for probabilistic scaled updates.
    rng: StdRng,
    /// Scratch buffers reused across steps — after a few warmup steps
    /// every buffer has reached its steady-state capacity and
    /// `forward`/`infer*`/`train_step*` stop allocating entirely (see
    /// DESIGN.md §12; enforced by the counting-allocator test).
    hidden_scores: Vec<i32>,
    out_scores: Vec<i32>,
    /// Active-input list of the current step (pattern bits plus
    /// shifted recurrent bits).
    active_buf: Vec<u32>,
    /// Current step's winner set (sorted ascending), written by
    /// [`k_winners_into`].
    winners_buf: Vec<u32>,
    /// Packed-key workspace for [`k_winners_into`].
    kwta_scratch: Vec<u64>,
    /// Winner bitset over the hidden space (Eq.-1 update input).
    winner_set: BitSet,
    /// Active-input bitset over the input space (hidden-learning
    /// update input).
    active_set: BitSet,
    /// Next recurrent state under construction (swapped with
    /// `recurrent` at the end of each advancing step).
    recurrent_scratch: Vec<u32>,
    /// Winner-trace ordering workspace (`RecurrentStyle::WinnerTrace`).
    trace_scratch: Vec<u32>,
    /// Previous step's winner set (sorted), for overlap tracking.
    prev_winners: Vec<u32>,
    /// Instrumentation counters (read via [`HebbianNetwork::stats`]).
    stats: NetStats,
}

impl HebbianNetwork {
    /// Builds a network from `cfg`, with connectivity drawn from
    /// `cfg.seed`.
    ///
    /// # Panics
    ///
    /// Panics if widths are zero, `hidden_active` exceeds `hidden`, or
    /// `connectivity` is out of range.
    pub fn new(cfg: HebbianConfig) -> Self {
        assert!(cfg.pattern_bits > 0 && cfg.hidden > 0 && cfg.outputs > 0);
        assert!(
            cfg.hidden_active > 0 && cfg.hidden_active <= cfg.hidden,
            "hidden_active must be in 1..=hidden"
        );
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let input_dim = cfg.pattern_bits + cfg.recurrent_bits;
        let layer1 = SparseLayer::new(
            input_dim,
            cfg.hidden,
            cfg.connectivity,
            cfg.weight_clamp.max(cfg.hidden_init_mag),
            cfg.hidden_init_mag,
            &mut rng,
        );
        // Output weights start at zero: untrained classes then score
        // exactly zero, so confidence reflects learned associations
        // only (init noise would put a floor under competitor scores).
        let layer2 = SparseLayer::new(
            cfg.hidden,
            cfg.outputs,
            cfg.connectivity,
            cfg.weight_clamp,
            0,
            &mut rng,
        );
        let recurrent_map = (0..cfg.hidden)
            .map(|_| {
                if cfg.recurrent_bits == 0 {
                    0
                } else {
                    rng.gen_range(0..cfg.recurrent_bits as u32)
                }
            })
            .collect();
        let pattern_code_map = (0..cfg.pattern_bits)
            .map(|_| {
                let mut slots: Vec<u32> = (0..cfg.recurrent_sample)
                    .map(|_| {
                        if cfg.recurrent_bits == 0 {
                            0
                        } else {
                            rng.gen_range(0..cfg.recurrent_bits as u32)
                        }
                    })
                    .collect();
                slots.sort_unstable();
                slots.dedup();
                slots
            })
            .collect();
        Self {
            hidden_scores: vec![0; cfg.hidden],
            out_scores: vec![0; cfg.outputs],
            active_buf: Vec::new(),
            winners_buf: Vec::new(),
            kwta_scratch: Vec::new(),
            winner_set: BitSet::new(cfg.hidden),
            active_set: BitSet::new(input_dim),
            recurrent_scratch: Vec::new(),
            trace_scratch: Vec::new(),
            layer1,
            layer2,
            recurrent_map,
            pattern_code_map,
            recurrent: Vec::new(),
            rng,
            prev_winners: Vec::new(),
            stats: NetStats::default(),
            cfg,
        }
    }

    /// Instrumentation counters accumulated since construction (or the
    /// last [`HebbianNetwork::reset_stats`]).
    pub fn stats(&self) -> NetStats {
        self.stats
    }

    /// Zeroes the instrumentation counters.
    pub fn reset_stats(&mut self) {
        self.stats = NetStats::default();
    }

    /// The configuration this network was built from.
    pub fn config(&self) -> &HebbianConfig {
        &self.cfg
    }

    /// Total integer parameter count across both layers.
    pub fn param_count(&self) -> usize {
        self.layer1.param_count() + self.layer2.param_count()
    }

    /// Clears the recurrent state.
    pub fn reset_state(&mut self) {
        self.recurrent.clear();
    }

    /// The active recurrent bits (for phase-clustering in the core
    /// crate).
    pub fn recurrent_state(&self) -> &[u32] {
        &self.recurrent
    }

    /// Overwrites the recurrent state — replay reinstates the context
    /// bits that were active when an episode was recorded.
    ///
    /// # Panics
    ///
    /// Panics if a bit is out of range.
    pub fn set_recurrent_state(&mut self, bits: &[u32]) {
        assert!(
            bits.iter().all(|&b| (b as usize) < self.cfg.recurrent_bits),
            "recurrent bit out of range"
        );
        let mut v = bits.to_vec();
        v.sort_unstable();
        v.dedup();
        self.recurrent = v;
    }

    /// Captures the complete learned state for snapshotting.
    ///
    /// Takes `&mut self` because the private update RNG cannot expose
    /// its internals: capture draws a fresh key, re-seeds the live RNG
    /// from that key, and stores the key in the state — so the live
    /// network and any [`import_state`](Self::import_state)ed copy
    /// continue from identical RNG streams. Capturing therefore
    /// perturbs the (already stochastic) update schedule but never the
    /// learned weights.
    pub fn export_state(&mut self) -> NetState {
        let key = self.rng.next_u64();
        self.rng = StdRng::seed_from_u64(key);
        NetState {
            layer1_weights: self.layer1.weights().to_vec(),
            layer2_weights: self.layer2.weights().to_vec(),
            recurrent: self.recurrent.clone(),
            prev_winners: self.prev_winners.clone(),
            stats: self.stats,
            rng_key: key,
        }
    }

    /// Restores a state captured by
    /// [`export_state`](Self::export_state) into a network built from
    /// the same configuration. On error the network is unchanged.
    pub fn import_state(&mut self, state: &NetState) -> Result<(), StateError> {
        if !self.layer1.accepts_weights(&state.layer1_weights)
            || !self.layer2.accepts_weights(&state.layer2_weights)
        {
            return Err(StateError::WeightShape);
        }
        if state
            .recurrent
            .iter()
            .any(|&b| (b as usize) >= self.cfg.recurrent_bits)
            || state
                .prev_winners
                .iter()
                .any(|&w| (w as usize) >= self.cfg.hidden)
        {
            return Err(StateError::IndexRange);
        }
        self.layer1.set_weights(&state.layer1_weights);
        self.layer2.set_weights(&state.layer2_weights);
        self.recurrent = state.recurrent.clone();
        self.prev_winners = state.prev_winners.clone();
        self.stats = state.stats;
        self.rng = StdRng::seed_from_u64(state.rng_key);
        Ok(())
    }

    /// Rebuilds `self.active_buf` for a pattern: pattern bits as
    /// given plus the recurrent bits shifted past the pattern section.
    fn fill_active_inputs(&mut self, pattern: &[u32]) {
        self.active_buf.clear();
        for &b in pattern {
            assert!(
                (b as usize) < self.cfg.pattern_bits,
                "pattern bit {} out of range ({})",
                b,
                self.cfg.pattern_bits
            );
            self.active_buf.push(b);
        }
        for &r in &self.recurrent {
            self.active_buf.push(self.cfg.pattern_bits as u32 + r);
        }
    }

    /// Forward pass over `self.active_buf` (see
    /// [`fill_active_inputs`](Self::fill_active_inputs)): returns ops.
    /// Afterwards `self.winners_buf` holds the winner set sorted by
    /// index, and `self.hidden_scores` / `self.out_scores` the raw
    /// scores.
    fn forward(&mut self) -> usize {
        self.hidden_scores.iter_mut().for_each(|s| *s = 0);
        self.out_scores.iter_mut().for_each(|s| *s = 0);
        let mut ops = self
            .layer1
            .forward(&self.active_buf, &mut self.hidden_scores);
        k_winners_into(
            &self.hidden_scores,
            self.cfg.hidden_active,
            &mut self.kwta_scratch,
            &mut self.winners_buf,
        );
        // Selection cost: one compare per hidden unit plus heap-ish
        // bookkeeping; counted as 2 ops per unit.
        ops += 2 * self.cfg.hidden;
        ops += self.layer2.forward(&self.winners_buf, &mut self.out_scores);
        ops += self.cfg.outputs; // Argmax scan.
        self.stats.steps += 1;
        self.stats.overlap_sum += sorted_intersection(&self.winners_buf, &self.prev_winners);
        self.stats.winner_slots += self.winners_buf.len() as u64;
        self.prev_winners.clear();
        self.prev_winners.extend_from_slice(&self.winners_buf);
        ops
    }

    /// Normalized non-negative score share of `class`. The division
    /// is diagnostic (Fig.-3 comparability); scores stay integer.
    // hnp-lint: allow(integer_purity): diagnostic confidence readout
    fn confidence_of(&self, class: usize) -> f32 {
        let pos_sum: i64 = self.out_scores.iter().map(|&s| s.max(0) as i64).sum();
        if pos_sum == 0 {
            // hnp-lint: allow(integer_purity): diagnostic confidence readout
            1.0 / self.cfg.outputs as f32
        } else {
            // hnp-lint: allow(integer_purity): diagnostic confidence readout
            self.out_scores[class].max(0) as f32 / pos_sum as f32
        }
    }

    fn argmax_out(&self) -> usize {
        let mut best = 0;
        for (i, &s) in self.out_scores.iter().enumerate() {
            if s > self.out_scores[best] {
                best = i;
            }
        }
        best
    }

    /// Advances the recurrent state after a step on `pattern` with the
    /// hidden winners in `self.winners_buf`, per the configured
    /// [`RecurrentStyle`]. Builds the next state in
    /// `self.recurrent_scratch` and swaps — no allocation once both
    /// vectors are at capacity.
    fn advance_recurrent(&mut self, pattern: &[u32]) {
        if self.cfg.recurrent_bits == 0 {
            return;
        }
        self.recurrent_scratch.clear();
        match self.cfg.recurrent_style {
            RecurrentStyle::PatternCode => {
                for &b in pattern {
                    self.recurrent_scratch
                        .extend_from_slice(&self.pattern_code_map[b as usize]);
                }
            }
            RecurrentStyle::WinnerTrace => {
                self.trace_scratch.clear();
                self.trace_scratch.extend_from_slice(&self.winners_buf);
                let scores = &self.hidden_scores;
                self.trace_scratch
                    .sort_by(|&a, &b| scores[b as usize].cmp(&scores[a as usize]).then(a.cmp(&b)));
                self.trace_scratch.truncate(self.cfg.recurrent_sample);
                for &w in &self.trace_scratch {
                    self.recurrent_scratch.push(self.recurrent_map[w as usize]);
                }
            }
        }
        self.recurrent_scratch.sort_unstable();
        self.recurrent_scratch.dedup();
        std::mem::swap(&mut self.recurrent, &mut self.recurrent_scratch);
    }

    /// Inference without learning or state change: predicts the next
    /// class for `pattern` and reports confidence on `probe`.
    pub fn infer(&mut self, pattern: &[u32], probe: usize) -> HebbianOutcome {
        self.fill_active_inputs(pattern);
        let ops = self.forward();
        let predicted = self.argmax_out();
        HebbianOutcome {
            predicted,
            confidence: self.confidence_of(probe),
            correct: predicted == probe,
            ops,
        }
    }

    /// Inference that advances the recurrent state (the online
    /// prediction path).
    pub fn infer_advance(&mut self, pattern: &[u32], probe: usize) -> HebbianOutcome {
        self.fill_active_inputs(pattern);
        let ops = self.forward();
        let predicted = self.argmax_out();
        let out = HebbianOutcome {
            predicted,
            confidence: self.confidence_of(probe),
            correct: predicted == probe,
            ops,
        };
        self.advance_recurrent(pattern);
        out
    }

    /// The classes of the `width` highest output scores, descending.
    /// Call after any `infer*`/`train*` step to read multi-candidate
    /// predictions (§5.2's prefetch width).
    pub fn top_predictions(&self, width: usize) -> Vec<usize> {
        // Packed keys (bit-inverted sign-biased score high, index low)
        // make "score desc, index asc" a primitive ascending sort —
        // rollout calls this every lookahead step, and an indirect
        // comparator over `out_scores` was its single largest cost.
        let mut keyed: Vec<u64> = self
            .out_scores
            .iter()
            .enumerate()
            .map(|(i, &s)| (!(s as u32 ^ 0x8000_0000) as u64) << 32 | i as u64)
            .collect();
        keyed.sort_unstable();
        keyed.truncate(width);
        keyed
            .iter()
            .map(|&key| (key & 0xffff_ffff) as usize)
            .collect()
    }

    /// One online training step with the base integer step size.
    pub fn train_step(&mut self, pattern: &[u32], target: usize) -> HebbianOutcome {
        self.train_step_scaled(pattern, target, LrScale::ONE)
    }

    /// One online training step with a scaled learning rate.
    ///
    /// Integer weights cannot take fractional steps, so `scale < 1`
    /// applies the update stochastically with probability `scale`
    /// (expected update equals the scaled rate — the paper's 0.1x
    /// replay rate becomes a 10 % update probability). `scale >= 1`
    /// multiplies the integer step. The scale is Q24 fixed point, so
    /// the whole training path stays integer.
    ///
    /// # Panics
    ///
    /// Panics if `target` is out of range.
    pub fn train_step_scaled(
        &mut self,
        pattern: &[u32],
        target: usize,
        scale: LrScale,
    ) -> HebbianOutcome {
        self.train_step_opts(pattern, target, scale, self.cfg.anti_hebbian)
    }

    /// [`train_step_scaled`](Self::train_step_scaled) with explicit
    /// control over anti-Hebbian depression. Replay passes `false`:
    /// replayed examples should reinforce stored associations without
    /// depressing whatever the network currently predicts (which is
    /// usually the *new* pattern being learned).
    ///
    /// # Panics
    ///
    /// Panics if `target` is out of range.
    pub fn train_step_opts(
        &mut self,
        pattern: &[u32],
        target: usize,
        scale: LrScale,
        anti_hebbian: bool,
    ) -> HebbianOutcome {
        assert!(target < self.cfg.outputs, "target out of range");
        self.fill_active_inputs(pattern);
        let mut ops = self.forward();
        let predicted = self.argmax_out();
        let outcome_conf = self.confidence_of(target);

        let apply = if scale.at_least_one() {
            true
        } else {
            // Integer Bernoulli draw: the top 24 bits of `next_u32`
            // are uniform in [0, 2^24), exactly the Q24 grid.
            (self.rng.next_u32() >> 8) < scale.raw()
        };
        let ops_before_update = ops;
        if apply {
            let (step, ltd) = if scale.at_least_one() {
                (
                    scale.scale_step(self.cfg.step),
                    scale.scale_step(self.cfg.ltd_step),
                )
            } else {
                (self.cfg.step, self.cfg.ltd_step)
            };
            let mispredicted = predicted != target;
            let update_hidden = match self.cfg.hidden_learning {
                HiddenLearning::Fixed => false,
                HiddenLearning::ErrorGated => mispredicted,
                HiddenLearning::Always => true,
            };
            if update_hidden {
                self.active_set.clear();
                for &i in &self.active_buf {
                    self.active_set.insert(i as usize);
                }
                for &w in &self.winners_buf {
                    ops += self.layer1.hebbian_update(w, &self.active_set, step, ltd);
                }
            }
            self.winner_set.clear();
            for &w in &self.winners_buf {
                self.winner_set.insert(w as usize);
            }
            ops += self
                .layer2
                .hebbian_update(target as u32, &self.winner_set, step, ltd);
            if anti_hebbian {
                // Lateral-inhibition LTD: depress the strongest
                // non-target output on the active winners, at LTD
                // magnitude. This keeps clamped weights carrying
                // frequency information — with an ambiguous context
                // (e.g. a stride body vs. its wrap) both target rows
                // would otherwise saturate at the clamp and confidence
                // would stall at 1/n. Full-strength depression is
                // avoided because a single ambiguous transition would
                // then erode a dominant association every cycle.
                let mut comp: Option<usize> = None;
                for (i, &s) in self.out_scores.iter().enumerate() {
                    if i != target && s > 0 && comp.is_none_or(|c| s > self.out_scores[c]) {
                        comp = Some(i);
                    }
                }
                if let Some(c) = comp {
                    ops += self.layer2.anti_update(c as u32, &self.winner_set, ltd);
                }
            }
            self.stats.weight_updates += 1;
            self.stats.update_ops += (ops - ops_before_update) as u64;
        }
        self.advance_recurrent(pattern);
        HebbianOutcome {
            predicted,
            confidence: outcome_conf,
            correct: predicted == target,
            ops,
        }
    }

    /// Autoregressive rollout: predicts `steps` future classes starting
    /// from `pattern`, re-encoding each prediction with `encode`. Does
    /// not disturb the live recurrent state or weights.
    pub fn rollout(
        &mut self,
        pattern: &[u32],
        steps: usize,
        mut encode: impl FnMut(usize) -> Vec<u32>,
    ) -> Vec<usize> {
        self.rollout_top_k(pattern, steps, 1, &mut encode)
            .into_iter()
            .map(|v| v[0])
            .collect()
    }

    /// Like [`rollout`](Self::rollout) but returns the `width` highest-
    /// scoring classes at each step (feeding back the top-1) — the
    /// §5.2 prefetch-width knob.
    ///
    /// # Panics
    ///
    /// Panics if `width == 0`.
    pub fn rollout_top_k(
        &mut self,
        pattern: &[u32],
        steps: usize,
        width: usize,
        mut encode: impl FnMut(usize) -> Vec<u32>,
    ) -> Vec<Vec<usize>> {
        self.rollout_top_k_with_confidence(pattern, steps, width, &mut encode)
            .0
    }

    /// [`rollout_top_k`](Self::rollout_top_k) that also reports the
    /// normalized confidence of the *first* step's top prediction —
    /// the signal confidence-gated issuing (§5.2) filters on.
    ///
    /// # Panics
    ///
    /// Panics if `width == 0`.
    pub fn rollout_top_k_with_confidence(
        &mut self,
        pattern: &[u32],
        steps: usize,
        width: usize,
        mut encode: impl FnMut(usize) -> Vec<u32>,
        // hnp-lint: allow(integer_purity): diagnostic confidence readout
    ) -> (Vec<Vec<usize>>, f32) {
        assert!(width > 0, "width must be positive");
        let saved = self.recurrent.clone();
        let mut preds = Vec::with_capacity(steps);
        let mut current: Vec<u32> = pattern.to_vec();
        // hnp-lint: allow(integer_purity): diagnostic confidence readout
        let mut first_conf = 0.0;
        for step in 0..steps {
            self.fill_active_inputs(&current);
            self.forward();
            let top = self.top_predictions(width);
            let p = top[0];
            if step == 0 {
                first_conf = self.confidence_of(p);
            }
            preds.push(top);
            self.advance_recurrent(&current);
            current = encode(p);
        }
        self.recurrent = saved;
        (preds, first_conf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One-hot helper.
    fn oh(t: usize) -> Vec<u32> {
        vec![t as u32]
    }

    #[test]
    fn learns_constant_stride_mapping() {
        let mut net = HebbianNetwork::new(HebbianConfig::tiny());
        // Constant stride: delta class 3 always follows delta class 3.
        let mut last = HebbianOutcome {
            predicted: 0,
            confidence: 0.0,
            correct: false,
            ops: 0,
        };
        for _ in 0..100 {
            last = net.train_step(&oh(3), 3);
        }
        assert!(last.correct, "should predict the repeated class");
        assert!(last.confidence > 0.5, "confidence {}", last.confidence);
    }

    #[test]
    fn learns_a_delta_cycle() {
        let mut net = HebbianNetwork::new(HebbianConfig::tiny());
        let cycle = [1usize, 5, 2, 9];
        let mut correct = 0;
        let mut total = 0;
        for epoch in 0..200 {
            for w in 0..cycle.len() {
                let o = net.train_step(&oh(cycle[w]), cycle[(w + 1) % cycle.len()]);
                if epoch >= 150 {
                    total += 1;
                    if o.correct {
                        correct += 1;
                    }
                }
            }
        }
        assert!(
            correct as f32 / total as f32 > 0.9,
            "late-training accuracy {}/{}",
            correct,
            total
        );
    }

    #[test]
    fn recurrent_state_disambiguates_context() {
        // Sequence where class 2 is followed by 7 in one context and by
        // 11 in another: 2 -> 7 -> 2' ... needs memory. Cycle:
        // [2, 7, 2, 11]: after (prev=11) 2 -> 7; after (prev=7) 2 -> 11.
        let mut net = HebbianNetwork::new(HebbianConfig::tiny());
        let cycle = [2usize, 7, 2, 11];
        let mut correct = 0;
        let mut total = 0;
        for epoch in 0..400 {
            for w in 0..cycle.len() {
                let o = net.train_step(&oh(cycle[w]), cycle[(w + 1) % cycle.len()]);
                if epoch >= 300 {
                    total += 1;
                    if o.correct {
                        correct += 1;
                    }
                }
            }
        }
        let acc = correct as f32 / total as f32;
        assert!(
            acc > 0.75,
            "context-dependent accuracy {acc} ({correct}/{total})"
        );
    }

    #[test]
    fn infer_does_not_change_state_or_weights() {
        let mut net = HebbianNetwork::new(HebbianConfig::tiny());
        for _ in 0..20 {
            net.train_step(&oh(4), 4);
        }
        let rec = net.recurrent_state().to_vec();
        let a = net.infer(&oh(4), 4);
        let b = net.infer(&oh(4), 4);
        assert_eq!(a.predicted, b.predicted);
        assert_eq!(net.recurrent_state(), rec.as_slice());
    }

    #[test]
    fn scaled_training_with_zero_rate_is_a_noop_on_weights() {
        let mut net = HebbianNetwork::new(HebbianConfig::tiny());
        for _ in 0..20 {
            net.train_step(&oh(4), 4);
        }
        // Zero-rate steps still advance the recurrent state, so reset
        // it before each probe to compare weights alone.
        net.reset_state();
        let before = net.infer(&oh(4), 4).confidence;
        for _ in 0..50 {
            net.train_step_scaled(&oh(9), 9, LrScale::ZERO);
        }
        net.reset_state();
        let after = net.infer(&oh(4), 4).confidence;
        assert_eq!(before, after);
    }

    #[test]
    fn paper_scale_parameter_count_matches_table2() {
        let net = HebbianNetwork::new(HebbianConfig::paper_table2());
        // Table 2 lists 49 k integer parameters.
        assert_eq!(net.param_count(), 49_000);
    }

    #[test]
    fn inference_ops_are_paper_scale() {
        let mut net = HebbianNetwork::new(HebbianConfig::paper_table2());
        for _ in 0..5 {
            net.train_step(&oh(3), 3);
        }
        let o = net.infer_advance(&oh(3), 3);
        // Table 2 lists 14 k INT inference ops; ours must land in the
        // same decade and far below the LSTM's >170 k.
        assert!((3_000..30_000).contains(&o.ops), "inference ops {}", o.ops);
    }

    #[test]
    fn training_ops_exceed_inference_ops() {
        let mut net = HebbianNetwork::new(HebbianConfig::paper_table2());
        let i = net.infer(&oh(3), 3).ops;
        let t = net.train_step(&oh(3), 3).ops;
        assert!(t > i, "training {} should exceed inference {}", t, i);
    }

    #[test]
    fn rollout_restores_state() {
        let mut net = HebbianNetwork::new(HebbianConfig::tiny());
        let cycle = [1usize, 5, 2, 9];
        for _ in 0..200 {
            for w in 0..cycle.len() {
                net.train_step(&oh(cycle[w]), cycle[(w + 1) % cycle.len()]);
            }
        }
        let rec = net.recurrent_state().to_vec();
        let preds = net.rollout(&oh(1), 3, |t| vec![t as u32]);
        assert_eq!(net.recurrent_state(), rec.as_slice());
        assert_eq!(preds.len(), 3);
        // First prediction continues the learned cycle.
        assert_eq!(preds[0], 5);
    }

    #[test]
    fn top_predictions_are_ordered_and_sized() {
        let mut net = HebbianNetwork::new(HebbianConfig::tiny());
        for _ in 0..50 {
            net.train_step(&oh(3), 7);
        }
        let _ = net.infer(&oh(3), 7);
        let top = net.top_predictions(4);
        assert_eq!(top.len(), 4);
        assert_eq!(top[0], 7);
    }

    #[test]
    #[should_panic(expected = "target out of range")]
    fn out_of_range_target_panics() {
        let mut net = HebbianNetwork::new(HebbianConfig::tiny());
        net.train_step(&oh(1), 400);
    }

    #[test]
    fn export_import_round_trips_learned_state() {
        let mut net = HebbianNetwork::new(HebbianConfig::tiny());
        let cycle = [1usize, 5, 2, 9];
        for _ in 0..50 {
            for w in 0..cycle.len() {
                net.train_step(&oh(cycle[w]), cycle[(w + 1) % cycle.len()]);
            }
        }
        let state = net.export_state();
        let mut fresh = HebbianNetwork::new(HebbianConfig::tiny());
        fresh.import_state(&state).expect("same-config import");
        assert_eq!(fresh.export_state(), net.export_state());
        // Restored and original continue identically, including the
        // stochastic scaled-update schedule.
        for w in 0..cycle.len() {
            let a = net.train_step_scaled(
                &oh(cycle[w]),
                cycle[(w + 1) % 4],
                LrScale::from_ratio(1, 10),
            );
            let b = fresh.train_step_scaled(
                &oh(cycle[w]),
                cycle[(w + 1) % 4],
                LrScale::from_ratio(1, 10),
            );
            assert_eq!(a.predicted, b.predicted);
            assert_eq!(a.ops, b.ops);
        }
        assert_eq!(net.recurrent_state(), fresh.recurrent_state());
    }

    #[test]
    fn import_rejects_mismatched_geometry() {
        let mut small = HebbianNetwork::new(HebbianConfig::tiny());
        let state = small.export_state();
        let mut big = HebbianNetwork::new(HebbianConfig::paper_table2());
        assert_eq!(big.import_state(&state), Err(StateError::WeightShape));

        let mut bad = state.clone();
        bad.recurrent = vec![10_000];
        assert_eq!(small.import_state(&bad), Err(StateError::IndexRange));
    }
}
