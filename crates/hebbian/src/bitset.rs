//! A fixed-capacity bitset for active-unit membership tests.

/// A fixed-size bitset over `len` bits backed by `u64` words.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitSet {
    words: Vec<u64>,
    len: usize,
}

impl BitSet {
    /// Creates an empty bitset over `len` bits.
    pub fn new(len: usize) -> Self {
        Self {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// Builds a bitset over `len` bits with the given bits set.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    pub fn from_indices(len: usize, indices: &[u32]) -> Self {
        let mut s = Self::new(len);
        for &i in indices {
            s.insert(i as usize);
        }
        s
    }

    /// Bit capacity.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no bit is set.
    ///
    /// (Not `is_empty`: that name would pair with [`BitSet::len`],
    /// which reports bit *capacity*, and break the Rust convention
    /// `is_empty() ⇔ len() == 0` for callers.)
    pub fn none_set(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Deprecated alias of [`BitSet::none_set`].
    #[deprecated(note = "renamed to `none_set`: `len()` is bit capacity, not set-bit count")]
    pub fn is_empty(&self) -> bool {
        self.none_set()
    }

    /// The backing `u64` words, least-significant bits first: bit `i`
    /// lives at `words()[i / 64] & (1 << (i % 64))`. Exposed for
    /// word-at-a-time kernels (the Eq.-1 update walk in
    /// [`crate::sparse::SparseLayer::hebbian_update`]).
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Sets bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    pub fn insert(&mut self, i: usize) {
        assert!(i < self.len, "bit {} out of range ({})", i, self.len);
        self.words[i / 64] |= 1 << (i % 64);
    }

    /// Clears bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    pub fn remove(&mut self, i: usize) {
        assert!(i < self.len, "bit {} out of range ({})", i, self.len);
        self.words[i / 64] &= !(1 << (i % 64));
    }

    /// Whether bit `i` is set.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    pub fn contains(&self, i: usize) -> bool {
        assert!(i < self.len, "bit {} out of range ({})", i, self.len);
        self.words[i / 64] & (1 << (i % 64)) != 0
    }

    /// Clears all bits, keeping capacity.
    pub fn clear(&mut self) {
        self.words.iter_mut().for_each(|w| *w = 0);
    }

    /// Number of set bits.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Iterates over set-bit indices in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut bits = w;
            std::iter::from_fn(move || {
                if bits == 0 {
                    None
                } else {
                    let b = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    Some(wi * 64 + b)
                }
            })
        })
    }

    /// Number of bits set in both `self` and `other`.
    ///
    /// # Panics
    ///
    /// Panics if capacities differ.
    pub fn overlap(&self, other: &BitSet) -> usize {
        assert_eq!(self.len, other.len, "bitset capacity mismatch");
        self.words
            .iter()
            .zip(other.words.iter())
            .map(|(a, b)| (a & b).count_ones() as usize)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let mut s = BitSet::new(130);
        assert!(!s.contains(129));
        s.insert(129);
        s.insert(0);
        s.insert(64);
        assert!(s.contains(129) && s.contains(0) && s.contains(64));
        assert_eq!(s.count(), 3);
        s.remove(64);
        assert!(!s.contains(64));
        assert_eq!(s.count(), 2);
    }

    #[test]
    fn iter_yields_sorted_indices() {
        let s = BitSet::from_indices(200, &[5, 190, 63, 64, 65]);
        let v: Vec<usize> = s.iter().collect();
        assert_eq!(v, vec![5, 63, 64, 65, 190]);
    }

    #[test]
    fn overlap_counts_intersection() {
        let a = BitSet::from_indices(100, &[1, 2, 3, 50]);
        let b = BitSet::from_indices(100, &[2, 3, 4, 99]);
        assert_eq!(a.overlap(&b), 2);
    }

    #[test]
    fn clear_resets_everything() {
        let mut s = BitSet::from_indices(70, &[0, 69]);
        assert!(!s.none_set());
        s.clear();
        assert!(s.none_set());
        assert_eq!(s.count(), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_insert_panics() {
        let mut s = BitSet::new(10);
        s.insert(10);
    }
}
