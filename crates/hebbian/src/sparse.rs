//! Sparsely connected integer weight layers with the Eq.-1 Hebbian
//! update.
//!
//! Connectivity is fixed at construction: every output unit draws a
//! fixed-size random subset of input units (the paper's "a node
//! connects to only 1-25 % of the nodes in adjacent layers"). Weights
//! are `i16`, clamped to a configurable magnitude; all arithmetic on
//! the forward and update paths is integer.
//!
//! The layer keeps two adjacency views over one flat weight array:
//!
//! * **input-major CSR** for the forward pass (which iterates the few
//!   *active* inputs): flat per-edge arrays bucketed by input via
//!   `offsets` — input `i`'s fan-out occupies positions
//!   `offsets[i]..offsets[i + 1]` of `edge_out`, `edge_slot`, and
//!   `edge_weights`. The weight *mirror* makes the inner accumulation
//!   loop read two sequential streams (output index + weight) with no
//!   random load at all; the canonical slot-ordered `weights` array
//!   would otherwise cost a scattered 48-KB-range fetch per edge. The
//!   update paths write weights through `edge_of_slot` to keep the
//!   mirror coherent. (The old jagged `Vec<Vec<_>>` additionally paid
//!   a pointer dereference and a potential cache miss per active
//!   input.)
//! * **output-major masks** for the Hebbian update (which walks all
//!   incoming connections of an *active output*): per output, a bit
//!   mask over the input space (`src_masks`) plus the slot ids in
//!   ascending-source order (`slots_by_source`). Eq. 1 then runs as a
//!   word-at-a-time sweep of mask ∧ active-input words instead of a
//!   per-connection random-access `BitSet::contains` branch.

use rand::seq::SliceRandom;
use rand::Rng;

use crate::bitset::BitSet;

/// A sparse integer-weight layer.
#[derive(Debug, Clone)]
pub struct SparseLayer {
    inputs: usize,
    outputs: usize,
    /// Incoming connections per output unit.
    fan_in: usize,
    /// Weight magnitude clamp.
    clamp: i16,
    /// Flat weight storage, one slot per connection, grouped by output:
    /// slot `o * fan_in + j` is output `o`'s `j`-th incoming weight.
    weights: Vec<i16>,
    /// `sources[o * fan_in + j]` = input index of that connection.
    sources: Vec<u32>,
    /// CSR: output unit of each edge, grouped by input.
    edge_out: Vec<u32>,
    /// CSR: canonical weight slot of each edge.
    edge_slot: Vec<u32>,
    /// CSR: weight mirror in edge order (kept coherent with `weights`
    /// by every update path), so `forward` streams sequentially.
    edge_weights: Vec<i16>,
    /// Inverse of `edge_slot`: the edge position of each weight slot.
    edge_of_slot: Vec<u32>,
    /// CSR bucket bounds: input `i` owns edge positions
    /// `offsets[i] as usize .. offsets[i + 1] as usize` (length
    /// `inputs + 1`).
    offsets: Vec<u32>,
    /// Per-output source bit masks, `words_per_row` words each: bit
    /// `i` of row `o` is set iff connection `(i, o)` exists.
    src_masks: Vec<u64>,
    /// `u64` words per `src_masks` row (`inputs.div_ceil(64)`).
    words_per_row: usize,
    /// Per output, its `fan_in` slot ids in ascending-source order —
    /// the j-th set bit of `src_masks` row `o` is the source of slot
    /// `slots_by_source[o * fan_in + j]`.
    slots_by_source: Vec<u32>,
}

impl SparseLayer {
    /// Builds a layer of `outputs` units, each sampling
    /// `ceil(connectivity * inputs)` distinct incoming connections,
    /// with initial weights uniform in `[-init_mag, init_mag]`.
    ///
    /// # Panics
    ///
    /// Panics if dimensions are zero, `connectivity` is outside
    /// `(0, 1]`, or `init_mag` is negative.
    pub fn new(
        inputs: usize,
        outputs: usize,
        // hnp-lint: allow(integer_purity): construction-time geometry
        connectivity: f64,
        clamp: i16,
        init_mag: i16,
        rng: &mut impl Rng,
    ) -> Self {
        assert!(inputs > 0 && outputs > 0, "zero-sized layer");
        assert!(
            // hnp-lint: allow(integer_purity): construction-time geometry
            connectivity > 0.0 && connectivity <= 1.0,
            "connectivity must be in (0, 1]"
        );
        assert!(clamp > 0, "clamp must be positive");
        assert!(init_mag >= 0, "init_mag must be non-negative");
        // hnp-lint: allow(integer_purity): construction-time geometry
        let fan_in = ((inputs as f64 * connectivity).ceil() as usize).max(1);
        let mut weights = vec![0i16; outputs * fan_in];
        let mut sources = vec![0u32; outputs * fan_in];
        let mut pool: Vec<u32> = (0..inputs as u32).collect();
        for o in 0..outputs {
            pool.shuffle(rng);
            for (j, &i) in pool[..fan_in].iter().enumerate() {
                let slot = o * fan_in + j;
                sources[slot] = i;
                // Random initial weights break winner ties; wider
                // ranges give a fixed layer better pattern separation.
                weights[slot] = rng.gen_range(-init_mag..=init_mag);
            }
        }

        // Input-major CSR: count fan-out per input, prefix-sum into
        // bucket offsets, then fill in (output, slot) order — the same
        // edge order the old jagged `Vec<Vec<_>>` produced, so forward
        // accumulation (and its ops count) is bit-identical.
        let mut offsets = vec![0u32; inputs + 1];
        for &src in &sources {
            offsets[src as usize + 1] += 1;
        }
        for i in 0..inputs {
            offsets[i + 1] += offsets[i];
        }
        let mut cursor: Vec<u32> = offsets[..inputs].to_vec();
        let mut edge_out = vec![0u32; sources.len()];
        let mut edge_slot = vec![0u32; sources.len()];
        let mut edge_of_slot = vec![0u32; sources.len()];
        for o in 0..outputs {
            for j in 0..fan_in {
                let slot = o * fan_in + j;
                let src = sources[slot] as usize;
                let e = cursor[src] as usize;
                edge_out[e] = o as u32;
                edge_slot[e] = slot as u32;
                edge_of_slot[slot] = e as u32;
                cursor[src] += 1;
            }
        }
        let edge_weights: Vec<i16> = edge_slot.iter().map(|&s| weights[s as usize]).collect();

        // Output-major masks for the word-at-a-time Eq.-1 walk.
        let words_per_row = inputs.div_ceil(64);
        let mut src_masks = vec![0u64; outputs * words_per_row];
        let mut slots_by_source = vec![0u32; sources.len()];
        let mut order: Vec<u32> = (0..fan_in as u32).collect();
        for o in 0..outputs {
            let base = o * fan_in;
            for j in 0..fan_in {
                let src = sources[base + j] as usize;
                src_masks[o * words_per_row + src / 64] |= 1 << (src % 64);
            }
            // Sources per output are distinct by construction, so the
            // ascending-source slot order is well defined.
            order.clear();
            order.extend(0..fan_in as u32);
            order.sort_unstable_by_key(|&j| sources[base + j as usize]);
            for (rank, &j) in order.iter().enumerate() {
                slots_by_source[base + rank] = (base + j as usize) as u32;
            }
        }

        Self {
            inputs,
            outputs,
            fan_in,
            clamp,
            weights,
            sources,
            edge_out,
            edge_slot,
            edge_weights,
            edge_of_slot,
            offsets,
            src_masks,
            words_per_row,
            slots_by_source,
        }
    }

    /// Input dimension.
    pub fn inputs(&self) -> usize {
        self.inputs
    }

    /// Output dimension.
    pub fn outputs(&self) -> usize {
        self.outputs
    }

    /// Incoming connections per output unit.
    pub fn fan_in(&self) -> usize {
        self.fan_in
    }

    /// Total number of connections (the layer's parameter count).
    pub fn param_count(&self) -> usize {
        self.weights.len()
    }

    /// Number of outgoing connections of input `i` (its CSR bucket
    /// length).
    ///
    /// # Panics
    ///
    /// Panics if `input` is out of range.
    pub fn fan_out(&self, input: u32) -> usize {
        let i = input as usize;
        assert!(i < self.inputs, "input out of range");
        (self.offsets[i + 1] - self.offsets[i]) as usize
    }

    /// Accumulates `scores[o] += w(i, o)` for every present connection
    /// from each active input `i`. Returns the number of integer
    /// operations performed.
    ///
    /// # Panics
    ///
    /// Panics if `scores` has the wrong length or an input index is out
    /// of range.
    pub fn forward(&self, active_inputs: &[u32], scores: &mut [i32]) -> usize {
        assert_eq!(scores.len(), self.outputs, "score buffer length mismatch");
        let mut ops = 0;
        for &i in active_inputs {
            let lo = self.offsets[i as usize] as usize;
            let hi = self.offsets[i as usize + 1] as usize;
            for (&o, &w) in self.edge_out[lo..hi].iter().zip(&self.edge_weights[lo..hi]) {
                scores[o as usize] += w as i32;
            }
            ops += hi - lo;
        }
        ops
    }

    /// Applies the paper's Eq.-1 Hebbian update for one active output:
    /// every incoming weight from an active input is incremented by
    /// `pot` (potentiation), every incoming weight from an inactive
    /// input decremented by `dep` (depression), with saturating
    /// arithmetic and clamping. Returns integer ops performed.
    ///
    /// Implemented as a word-at-a-time walk over this output's source
    /// mask against the active-input words: each connection costs one
    /// bit test from two already-loaded words instead of a
    /// random-access [`BitSet::contains`].
    ///
    /// Eq. 1 as printed is symmetric (`pot == dep`); asymmetric
    /// magnitudes (LTP > LTD, as in biological synapses) are required
    /// when one output class must respond in several distinct contexts,
    /// because symmetric depression cancels everything outside the
    /// intersection of the contexts' winner sets. See DESIGN.md.
    ///
    /// # Panics
    ///
    /// Panics if `output` is out of range or `active_inputs` has the
    /// wrong capacity.
    pub fn hebbian_update(
        &mut self,
        output: u32,
        active_inputs: &BitSet,
        pot: i16,
        dep: i16,
    ) -> usize {
        assert!((output as usize) < self.outputs, "output out of range");
        assert_eq!(active_inputs.len(), self.inputs, "bitset capacity mismatch");
        let ltd = dep.saturating_neg();
        let mask_base = output as usize * self.words_per_row;
        let mut rank = output as usize * self.fan_in;
        let active = active_inputs.words();
        for (w, &aw) in active.iter().enumerate().take(self.words_per_row) {
            let mut sw = self.src_masks[mask_base + w];
            while sw != 0 {
                let b = sw.trailing_zeros();
                let slot = self.slots_by_source[rank] as usize;
                rank += 1;
                let delta = if aw >> b & 1 != 0 { pot } else { ltd };
                let old = self.weights[slot];
                let w = old.saturating_add(delta).clamp(-self.clamp, self.clamp);
                // Saturated weights dominate in steady state; skipping
                // the no-op store keeps their cache lines clean.
                if w != old {
                    self.weights[slot] = w;
                    self.edge_weights[self.edge_of_slot[slot] as usize] = w;
                }
                sw &= sw - 1;
            }
        }
        2 * self.fan_in
    }

    /// Anti-Hebbian depression of one output: decrements incoming
    /// weights from *active* inputs (used to push down a false winner).
    /// Returns integer ops performed.
    ///
    /// # Panics
    ///
    /// Panics if `output` is out of range or `active_inputs` has the
    /// wrong capacity.
    pub fn anti_update(&mut self, output: u32, active_inputs: &BitSet, step: i16) -> usize {
        assert!((output as usize) < self.outputs, "output out of range");
        assert_eq!(active_inputs.len(), self.inputs, "bitset capacity mismatch");
        let mask_base = output as usize * self.words_per_row;
        let mut rank = output as usize * self.fan_in;
        let mut ops = 0;
        let active = active_inputs.words();
        for (w, &aw) in active.iter().enumerate().take(self.words_per_row) {
            let mut sw = self.src_masks[mask_base + w];
            while sw != 0 {
                let b = sw.trailing_zeros();
                let slot = self.slots_by_source[rank] as usize;
                rank += 1;
                if aw >> b & 1 != 0 {
                    let old = self.weights[slot];
                    let w = old.saturating_sub(step).clamp(-self.clamp, self.clamp);
                    if w != old {
                        self.weights[slot] = w;
                        self.edge_weights[self.edge_of_slot[slot] as usize] = w;
                    }
                    ops += 2;
                }
                sw &= sw - 1;
            }
        }
        ops
    }

    /// Flat view of every connection weight, grouped by output unit
    /// (slot `o * fan_in + j`). Connectivity is reproduced from the
    /// construction seed, so this is the layer's entire learned state;
    /// pair with [`SparseLayer::set_weights`] for snapshot/restore.
    /// The slot layout is independent of the adjacency encoding, so
    /// snapshots taken before the CSR refactor restore unchanged.
    pub fn weights(&self) -> &[i16] {
        &self.weights
    }

    /// Whether `w` could be installed by
    /// [`SparseLayer::set_weights`]: right length, every value within
    /// the clamp.
    pub fn accepts_weights(&self, w: &[i16]) -> bool {
        w.len() == self.weights.len() && w.iter().all(|&v| (-self.clamp..=self.clamp).contains(&v))
    }

    /// Overwrites all connection weights from a flat slice previously
    /// read via [`SparseLayer::weights`] on an identically-shaped
    /// layer. Returns `false` — leaving the layer untouched — when
    /// [`SparseLayer::accepts_weights`] rejects the slice.
    pub fn set_weights(&mut self, w: &[i16]) -> bool {
        if !self.accepts_weights(w) {
            return false;
        }
        self.weights.copy_from_slice(w);
        for (mirror, &slot) in self.edge_weights.iter_mut().zip(&self.edge_slot) {
            *mirror = self.weights[slot as usize];
        }
        true
    }

    /// The weight of the connection into `output` from `input`, if the
    /// connection exists.
    pub fn weight(&self, input: u32, output: u32) -> Option<i16> {
        let base = output as usize * self.fan_in;
        (0..self.fan_in)
            .find(|&j| self.sources[base + j] == input)
            .map(|j| self.weights[base + j])
    }
}

/// Pre-optimization reference kernels, kept verbatim for the
/// differential proptests (`crate::differential`): the jagged-walk
/// forward and the per-connection-branch Eq.-1 update, operating on
/// the same slot layout as the optimized layer.
///
/// The update references write only the canonical `weights` array and
/// leave the `edge_weights` mirror stale — a layer driven through them
/// must also be probed through [`forward_ref`], never the optimized
/// `forward`.
#[cfg(test)]
pub(crate) mod reference {
    use super::SparseLayer;
    use crate::bitset::BitSet;

    /// The old input-major forward: walk every active input's edge
    /// list in identical order, loading each weight through the
    /// canonical slot-ordered array (the random-access path the
    /// `edge_weights` mirror replaced).
    pub(crate) fn forward_ref(layer: &SparseLayer, active_inputs: &[u32], scores: &mut [i32]) {
        assert_eq!(scores.len(), layer.outputs);
        for &i in active_inputs {
            let lo = layer.offsets[i as usize] as usize;
            let hi = layer.offsets[i as usize + 1] as usize;
            for (&o, &slot) in layer.edge_out[lo..hi].iter().zip(&layer.edge_slot[lo..hi]) {
                scores[o as usize] += layer.weights[slot as usize] as i32;
            }
        }
    }

    /// The old Eq.-1 update: slot-order walk with a per-connection
    /// `BitSet::contains` branch (plus the saturating-add bugfix, so
    /// extreme clamps compare equal too).
    pub(crate) fn hebbian_update_ref(
        layer: &mut SparseLayer,
        output: u32,
        active_inputs: &BitSet,
        pot: i16,
        dep: i16,
    ) {
        let base = output as usize * layer.fan_in;
        for j in 0..layer.fan_in {
            let slot = base + j;
            let src = layer.sources[slot] as usize;
            let delta = if active_inputs.contains(src) {
                pot
            } else {
                dep.saturating_neg()
            };
            layer.weights[slot] = layer.weights[slot]
                .saturating_add(delta)
                .clamp(-layer.clamp, layer.clamp);
        }
    }

    /// The old anti-Hebbian update, per-connection branch form.
    pub(crate) fn anti_update_ref(
        layer: &mut SparseLayer,
        output: u32,
        active_inputs: &BitSet,
        step: i16,
    ) {
        let base = output as usize * layer.fan_in;
        for j in 0..layer.fan_in {
            let slot = base + j;
            if active_inputs.contains(layer.sources[slot] as usize) {
                layer.weights[slot] = layer.weights[slot]
                    .saturating_sub(step)
                    .clamp(-layer.clamp, layer.clamp);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn layer(inputs: usize, outputs: usize, conn: f64) -> SparseLayer {
        let mut rng = StdRng::seed_from_u64(11);
        SparseLayer::new(inputs, outputs, conn, 64, 1, &mut rng)
    }

    #[test]
    fn connectivity_fixes_fan_in() {
        let l = layer(256, 100, 0.125);
        assert_eq!(l.fan_in(), 32);
        assert_eq!(l.param_count(), 3200);
    }

    #[test]
    fn forward_only_touches_active_fan_out() {
        let l = layer(64, 32, 0.25);
        let mut scores = vec![0i32; 32];
        let ops = l.forward(&[3], &mut scores);
        // Input 3's fan-out is roughly connectivity * outputs; ops must
        // equal the edges touched exactly.
        assert_eq!(ops, l.fan_out(3));
    }

    #[test]
    fn csr_buckets_partition_all_edges() {
        let l = layer(64, 32, 0.25);
        let total: usize = (0..64).map(|i| l.fan_out(i)).sum();
        assert_eq!(total, l.param_count());
        assert_eq!(l.offsets[0], 0);
        assert_eq!(*l.offsets.last().unwrap() as usize, l.edge_out.len());
        // The mirror and its inverse map agree with the canonical
        // slot-ordered weights.
        for e in 0..l.edge_slot.len() {
            let slot = l.edge_slot[e] as usize;
            assert_eq!(l.edge_of_slot[slot] as usize, e);
            assert_eq!(l.edge_weights[e], l.weights[slot]);
        }
    }

    #[test]
    fn hebbian_update_potentiates_active_and_depresses_inactive() {
        let mut l = layer(16, 4, 1.0); // Full connectivity for determinism.
        let active = BitSet::from_indices(16, &[2, 5]);
        let w2_before = l.weight(2, 1).unwrap();
        let w7_before = l.weight(7, 1).unwrap();
        l.hebbian_update(1, &active, 3, 3);
        assert_eq!(l.weight(2, 1).unwrap(), (w2_before + 3).clamp(-64, 64));
        assert_eq!(l.weight(7, 1).unwrap(), (w7_before - 3).clamp(-64, 64));
    }

    #[test]
    fn weights_clamp_at_bounds() {
        let mut l = layer(8, 2, 1.0);
        let active = BitSet::from_indices(8, &[0, 1, 2, 3, 4, 5, 6, 7]);
        for _ in 0..100 {
            l.hebbian_update(0, &active, 10, 10);
        }
        for i in 0..8 {
            assert_eq!(l.weight(i, 0).unwrap(), 64);
        }
    }

    #[test]
    fn update_saturates_at_extreme_clamp() {
        // Regression: with `clamp` near `i16::MAX` the old
        // `weights[slot] + delta` overflowed `i16` (panic in debug,
        // wrap in release) before the clamp could apply.
        let mut rng = StdRng::seed_from_u64(3);
        let mut l = SparseLayer::new(8, 2, 1.0, i16::MAX, 0, &mut rng);
        let active = BitSet::from_indices(8, &[0, 1, 2, 3, 4, 5, 6, 7]);
        for _ in 0..3 {
            l.hebbian_update(0, &active, i16::MAX, 0);
        }
        for i in 0..8 {
            assert_eq!(l.weight(i, 0).unwrap(), i16::MAX);
        }
        // And the depression/anti side saturates at the negative end.
        let none = BitSet::new(8);
        for _ in 0..3 {
            l.hebbian_update(1, &none, 0, i16::MAX);
        }
        for i in 0..8 {
            assert_eq!(l.weight(i, 1).unwrap(), -i16::MAX);
        }
        for _ in 0..3 {
            l.anti_update(1, &active, i16::MAX);
        }
        for i in 0..8 {
            assert_eq!(l.weight(i, 1).unwrap(), -i16::MAX);
        }
    }

    #[test]
    fn anti_update_only_touches_active_inputs() {
        let mut l = layer(8, 2, 1.0);
        let active = BitSet::from_indices(8, &[1]);
        let w1 = l.weight(1, 0).unwrap();
        let w2 = l.weight(2, 0).unwrap();
        l.anti_update(0, &active, 5);
        assert_eq!(l.weight(1, 0).unwrap(), (w1 - 5).clamp(-64, 64));
        assert_eq!(l.weight(2, 0).unwrap(), w2);
    }

    #[test]
    fn repeated_association_raises_score() {
        let mut l = layer(32, 8, 0.5);
        let active_vec: Vec<u32> = vec![4, 9, 13];
        let active = BitSet::from_indices(32, &active_vec);
        let mut before = vec![0i32; 8];
        l.forward(&active_vec, &mut before);
        for _ in 0..10 {
            l.hebbian_update(6, &active, 1, 1);
        }
        let mut after = vec![0i32; 8];
        l.forward(&active_vec, &mut after);
        assert!(
            after[6] > before[6],
            "association should strengthen: {} -> {}",
            before[6],
            after[6]
        );
    }

    #[test]
    fn deterministic_construction_from_seed() {
        let a = layer(64, 64, 0.125);
        let b = layer(64, 64, 0.125);
        assert_eq!(a.sources, b.sources);
        assert_eq!(a.weights, b.weights);
        assert_eq!(a.edge_out, b.edge_out);
        assert_eq!(a.edge_slot, b.edge_slot);
        assert_eq!(a.offsets, b.offsets);
    }
}
