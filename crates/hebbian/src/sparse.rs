//! Sparsely connected integer weight layers with the Eq.-1 Hebbian
//! update.
//!
//! Connectivity is fixed at construction: every output unit draws a
//! fixed-size random subset of input units (the paper's "a node
//! connects to only 1-25 % of the nodes in adjacent layers"). Weights
//! are `i16`, clamped to a configurable magnitude; all arithmetic on
//! the forward and update paths is integer.
//!
//! The layer keeps two adjacency views over one flat weight array:
//! input-major (for the forward pass, which iterates the few *active*
//! inputs) and output-major (for the Hebbian update, which walks all
//! incoming connections of an *active output*, because Eq. 1
//! potentiates active inputs and depresses inactive ones).

use rand::seq::SliceRandom;
use rand::Rng;

use crate::bitset::BitSet;

/// A sparse integer-weight layer.
#[derive(Debug, Clone)]
pub struct SparseLayer {
    inputs: usize,
    outputs: usize,
    /// Incoming connections per output unit.
    fan_in: usize,
    /// Weight magnitude clamp.
    clamp: i16,
    /// Flat weight storage, one slot per connection, grouped by output:
    /// slot `o * fan_in + j` is output `o`'s `j`-th incoming weight.
    weights: Vec<i16>,
    /// `sources[o * fan_in + j]` = input index of that connection.
    sources: Vec<u32>,
    /// Input-major view: `out_edges[i]` lists `(output, slot)` pairs.
    out_edges: Vec<Vec<(u32, u32)>>,
}

impl SparseLayer {
    /// Builds a layer of `outputs` units, each sampling
    /// `ceil(connectivity * inputs)` distinct incoming connections,
    /// with initial weights uniform in `[-init_mag, init_mag]`.
    ///
    /// # Panics
    ///
    /// Panics if dimensions are zero, `connectivity` is outside
    /// `(0, 1]`, or `init_mag` is negative.
    pub fn new(
        inputs: usize,
        outputs: usize,
        // hnp-lint: allow(integer_purity): construction-time geometry
        connectivity: f64,
        clamp: i16,
        init_mag: i16,
        rng: &mut impl Rng,
    ) -> Self {
        assert!(inputs > 0 && outputs > 0, "zero-sized layer");
        assert!(
            // hnp-lint: allow(integer_purity): construction-time geometry
            connectivity > 0.0 && connectivity <= 1.0,
            "connectivity must be in (0, 1]"
        );
        assert!(clamp > 0, "clamp must be positive");
        assert!(init_mag >= 0, "init_mag must be non-negative");
        // hnp-lint: allow(integer_purity): construction-time geometry
        let fan_in = ((inputs as f64 * connectivity).ceil() as usize).max(1);
        let mut weights = vec![0i16; outputs * fan_in];
        let mut sources = vec![0u32; outputs * fan_in];
        let mut out_edges = vec![Vec::new(); inputs];
        let mut pool: Vec<u32> = (0..inputs as u32).collect();
        for o in 0..outputs {
            pool.shuffle(rng);
            for (j, &i) in pool[..fan_in].iter().enumerate() {
                let slot = (o * fan_in + j) as u32;
                sources[slot as usize] = i;
                out_edges[i as usize].push((o as u32, slot));
                // Random initial weights break winner ties; wider
                // ranges give a fixed layer better pattern separation.
                weights[slot as usize] = rng.gen_range(-init_mag..=init_mag);
            }
        }
        Self {
            inputs,
            outputs,
            fan_in,
            clamp,
            weights,
            sources,
            out_edges,
        }
    }

    /// Input dimension.
    pub fn inputs(&self) -> usize {
        self.inputs
    }

    /// Output dimension.
    pub fn outputs(&self) -> usize {
        self.outputs
    }

    /// Incoming connections per output unit.
    pub fn fan_in(&self) -> usize {
        self.fan_in
    }

    /// Total number of connections (the layer's parameter count).
    pub fn param_count(&self) -> usize {
        self.weights.len()
    }

    /// Accumulates `scores[o] += w(i, o)` for every present connection
    /// from each active input `i`. Returns the number of integer
    /// operations performed.
    ///
    /// # Panics
    ///
    /// Panics if `scores` has the wrong length or an input index is out
    /// of range.
    pub fn forward(&self, active_inputs: &[u32], scores: &mut [i32]) -> usize {
        assert_eq!(scores.len(), self.outputs, "score buffer length mismatch");
        let mut ops = 0;
        for &i in active_inputs {
            let edges = &self.out_edges[i as usize];
            for &(o, slot) in edges {
                scores[o as usize] += self.weights[slot as usize] as i32;
            }
            ops += edges.len();
        }
        ops
    }

    /// Applies the paper's Eq.-1 Hebbian update for one active output:
    /// every incoming weight from an active input is incremented by
    /// `pot` (potentiation), every incoming weight from an inactive
    /// input decremented by `dep` (depression), with clamping. Returns
    /// integer ops performed.
    ///
    /// Eq. 1 as printed is symmetric (`pot == dep`); asymmetric
    /// magnitudes (LTP > LTD, as in biological synapses) are required
    /// when one output class must respond in several distinct contexts,
    /// because symmetric depression cancels everything outside the
    /// intersection of the contexts' winner sets. See DESIGN.md.
    ///
    /// # Panics
    ///
    /// Panics if `output` is out of range or `active_inputs` has the
    /// wrong capacity.
    pub fn hebbian_update(
        &mut self,
        output: u32,
        active_inputs: &BitSet,
        pot: i16,
        dep: i16,
    ) -> usize {
        assert!((output as usize) < self.outputs, "output out of range");
        assert_eq!(active_inputs.len(), self.inputs, "bitset capacity mismatch");
        let base = output as usize * self.fan_in;
        for j in 0..self.fan_in {
            let slot = base + j;
            let src = self.sources[slot] as usize;
            let delta = if active_inputs.contains(src) {
                pot
            } else {
                -dep
            };
            self.weights[slot] = (self.weights[slot] + delta).clamp(-self.clamp, self.clamp);
        }
        2 * self.fan_in
    }

    /// Anti-Hebbian depression of one output: decrements incoming
    /// weights from *active* inputs (used to push down a false winner).
    /// Returns integer ops performed.
    ///
    /// # Panics
    ///
    /// Panics if `output` is out of range or `active_inputs` has the
    /// wrong capacity.
    pub fn anti_update(&mut self, output: u32, active_inputs: &BitSet, step: i16) -> usize {
        assert!((output as usize) < self.outputs, "output out of range");
        assert_eq!(active_inputs.len(), self.inputs, "bitset capacity mismatch");
        let base = output as usize * self.fan_in;
        let mut ops = 0;
        for j in 0..self.fan_in {
            let slot = base + j;
            let src = self.sources[slot] as usize;
            if active_inputs.contains(src) {
                self.weights[slot] = (self.weights[slot] - step).clamp(-self.clamp, self.clamp);
                ops += 2;
            }
        }
        ops
    }

    /// Flat view of every connection weight, grouped by output unit
    /// (slot `o * fan_in + j`). Connectivity is reproduced from the
    /// construction seed, so this is the layer's entire learned state;
    /// pair with [`SparseLayer::set_weights`] for snapshot/restore.
    pub fn weights(&self) -> &[i16] {
        &self.weights
    }

    /// Whether `w` could be installed by
    /// [`SparseLayer::set_weights`]: right length, every value within
    /// the clamp.
    pub fn accepts_weights(&self, w: &[i16]) -> bool {
        w.len() == self.weights.len() && w.iter().all(|&v| (-self.clamp..=self.clamp).contains(&v))
    }

    /// Overwrites all connection weights from a flat slice previously
    /// read via [`SparseLayer::weights`] on an identically-shaped
    /// layer. Returns `false` — leaving the layer untouched — when
    /// [`SparseLayer::accepts_weights`] rejects the slice.
    pub fn set_weights(&mut self, w: &[i16]) -> bool {
        if !self.accepts_weights(w) {
            return false;
        }
        self.weights.copy_from_slice(w);
        true
    }

    /// The weight of the connection into `output` from `input`, if the
    /// connection exists.
    pub fn weight(&self, input: u32, output: u32) -> Option<i16> {
        let base = output as usize * self.fan_in;
        (0..self.fan_in)
            .find(|&j| self.sources[base + j] == input)
            .map(|j| self.weights[base + j])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn layer(inputs: usize, outputs: usize, conn: f64) -> SparseLayer {
        let mut rng = StdRng::seed_from_u64(11);
        SparseLayer::new(inputs, outputs, conn, 64, 1, &mut rng)
    }

    #[test]
    fn connectivity_fixes_fan_in() {
        let l = layer(256, 100, 0.125);
        assert_eq!(l.fan_in(), 32);
        assert_eq!(l.param_count(), 3200);
    }

    #[test]
    fn forward_only_touches_active_fan_out() {
        let l = layer(64, 32, 0.25);
        let mut scores = vec![0i32; 32];
        let ops = l.forward(&[3], &mut scores);
        // Input 3's fan-out is roughly connectivity * outputs; ops must
        // equal the edges touched exactly.
        assert_eq!(ops, l.out_edges[3].len());
    }

    #[test]
    fn hebbian_update_potentiates_active_and_depresses_inactive() {
        let mut l = layer(16, 4, 1.0); // Full connectivity for determinism.
        let active = BitSet::from_indices(16, &[2, 5]);
        let w2_before = l.weight(2, 1).unwrap();
        let w7_before = l.weight(7, 1).unwrap();
        l.hebbian_update(1, &active, 3, 3);
        assert_eq!(l.weight(2, 1).unwrap(), (w2_before + 3).clamp(-64, 64));
        assert_eq!(l.weight(7, 1).unwrap(), (w7_before - 3).clamp(-64, 64));
    }

    #[test]
    fn weights_clamp_at_bounds() {
        let mut l = layer(8, 2, 1.0);
        let active = BitSet::from_indices(8, &[0, 1, 2, 3, 4, 5, 6, 7]);
        for _ in 0..100 {
            l.hebbian_update(0, &active, 10, 10);
        }
        for i in 0..8 {
            assert_eq!(l.weight(i, 0).unwrap(), 64);
        }
    }

    #[test]
    fn anti_update_only_touches_active_inputs() {
        let mut l = layer(8, 2, 1.0);
        let active = BitSet::from_indices(8, &[1]);
        let w1 = l.weight(1, 0).unwrap();
        let w2 = l.weight(2, 0).unwrap();
        l.anti_update(0, &active, 5);
        assert_eq!(l.weight(1, 0).unwrap(), (w1 - 5).clamp(-64, 64));
        assert_eq!(l.weight(2, 0).unwrap(), w2);
    }

    #[test]
    fn repeated_association_raises_score() {
        let mut l = layer(32, 8, 0.5);
        let active_vec: Vec<u32> = vec![4, 9, 13];
        let active = BitSet::from_indices(32, &active_vec);
        let mut before = vec![0i32; 8];
        l.forward(&active_vec, &mut before);
        for _ in 0..10 {
            l.hebbian_update(6, &active, 1, 1);
        }
        let mut after = vec![0i32; 8];
        l.forward(&active_vec, &mut after);
        assert!(
            after[6] > before[6],
            "association should strengthen: {} -> {}",
            before[6],
            after[6]
        );
    }

    #[test]
    fn deterministic_construction_from_seed() {
        let a = layer(64, 64, 0.125);
        let b = layer(64, 64, 0.125);
        assert_eq!(a.sources, b.sources);
        assert_eq!(a.weights, b.weights);
    }
}
