//! Hippocampal associative-memory substrates.
//!
//! CLS theory (Fig. 4 of the paper) models the hippocampus as a fast
//! associative store built from three mechanisms:
//!
//! * **pattern separation** — incoming dense patterns are re-coded as
//!   sparse, well-separated codes (dentate gyrus);
//! * **auto-association** — stored codes are attractors that can be
//!   completed from partial cues (CA3);
//! * **hetero-association** — a completed code recalls the value
//!   stored with it.
//!
//! These are implemented as binary Willshaw-style matrices over the
//! [`BitSet`] type: storage is a clipped Hebbian OR of outer products,
//! recall is a thresholded integer dot product.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::bitset::BitSet;
use crate::kwta::k_winners;

/// Re-codes arbitrary binary patterns as fixed-sparsity codes via a
/// fixed random projection followed by k-WTA.
#[derive(Debug, Clone)]
pub struct PatternSeparator {
    input_bits: usize,
    code_bits: usize,
    code_active: usize,
    /// `proj[c]` = the input bits that code unit `c` samples.
    proj: Vec<Vec<u32>>,
}

impl PatternSeparator {
    /// Creates a separator from `input_bits`-wide patterns to codes of
    /// `code_bits` with exactly `code_active` active units, each code
    /// unit sampling `samples` random input bits.
    ///
    /// # Panics
    ///
    /// Panics if any size is zero or `code_active > code_bits`.
    pub fn new(
        input_bits: usize,
        code_bits: usize,
        code_active: usize,
        samples: usize,
        seed: u64,
    ) -> Self {
        assert!(input_bits > 0 && code_bits > 0 && samples > 0);
        assert!(code_active > 0 && code_active <= code_bits);
        let mut rng = StdRng::seed_from_u64(seed);
        let proj = (0..code_bits)
            .map(|_| {
                (0..samples)
                    .map(|_| rng.gen_range(0..input_bits as u32))
                    .collect()
            })
            .collect();
        Self {
            input_bits,
            code_bits,
            code_active,
            proj,
        }
    }

    /// Code width.
    pub fn code_bits(&self) -> usize {
        self.code_bits
    }

    /// Active units per code.
    pub fn code_active(&self) -> usize {
        self.code_active
    }

    /// Separates `pattern` into a sparse code.
    ///
    /// # Panics
    ///
    /// Panics if the pattern's capacity mismatches `input_bits`.
    pub fn separate(&self, pattern: &BitSet) -> BitSet {
        assert_eq!(pattern.len(), self.input_bits, "pattern width mismatch");
        let scores: Vec<i32> = self
            .proj
            .iter()
            .map(|samples| {
                samples
                    .iter()
                    .filter(|&&b| pattern.contains(b as usize))
                    .count() as i32
            })
            .collect();
        let winners = k_winners(&scores, self.code_active);
        BitSet::from_indices(self.code_bits, &winners)
    }
}

/// A binary hetero-associative Willshaw memory mapping sparse key codes
/// to sparse value codes.
#[derive(Debug, Clone)]
pub struct WillshawMemory {
    key_bits: usize,
    value_bits: usize,
    /// Row-major binary weight matrix: `w[v][k]` set iff some stored
    /// pair had key bit `k` and value bit `v` both active.
    weights: Vec<BitSet>,
    stored: usize,
}

impl WillshawMemory {
    /// Creates an empty memory between the given code widths.
    pub fn new(key_bits: usize, value_bits: usize) -> Self {
        Self {
            key_bits,
            value_bits,
            weights: (0..value_bits).map(|_| BitSet::new(key_bits)).collect(),
            stored: 0,
        }
    }

    /// Number of stored associations.
    pub fn stored(&self) -> usize {
        self.stored
    }

    /// Stores `key -> value` by OR-ing the outer product into the
    /// binary matrix (one-shot Hebbian storage).
    ///
    /// # Panics
    ///
    /// Panics on width mismatch.
    pub fn store(&mut self, key: &BitSet, value: &BitSet) {
        assert_eq!(key.len(), self.key_bits, "key width mismatch");
        assert_eq!(value.len(), self.value_bits, "value width mismatch");
        for v in value.iter() {
            for k in key.iter() {
                self.weights[v].insert(k);
            }
        }
        self.stored += 1;
    }

    /// Recalls the value for `key`: value units whose stored key
    /// overlap reaches `threshold` fire. With `threshold` equal to the
    /// key's active-bit count, recall is exact for undersaturated
    /// memories.
    ///
    /// # Panics
    ///
    /// Panics on width mismatch.
    pub fn recall(&self, key: &BitSet, threshold: usize) -> BitSet {
        assert_eq!(key.len(), self.key_bits, "key width mismatch");
        let mut out = BitSet::new(self.value_bits);
        for (v, row) in self.weights.iter().enumerate() {
            if row.overlap(key) >= threshold {
                out.insert(v);
            }
        }
        out
    }

    /// Per-value-bit overlap scores for `key`: how many of the key's
    /// active bits each value unit is connected to. Decoders that need
    /// a ranking (e.g. "which target class does this cue recall?") use
    /// this instead of thresholded [`recall`](Self::recall).
    ///
    /// # Panics
    ///
    /// Panics on width mismatch.
    pub fn recall_scores(&self, key: &BitSet) -> Vec<usize> {
        assert_eq!(key.len(), self.key_bits, "key width mismatch");
        self.weights.iter().map(|row| row.overlap(key)).collect()
    }

    /// Fraction of set weight bits (saturation). Willshaw capacity
    /// analysis says recall degrades as this approaches 0.5.
    // hnp-lint: allow(integer_purity): diagnostic capacity readout
    pub fn saturation(&self) -> f64 {
        let set: usize = self.weights.iter().map(|r| r.count()).sum();
        // hnp-lint: allow(integer_purity): diagnostic capacity readout
        set as f64 / (self.key_bits * self.value_bits) as f64
    }
}

/// A binary auto-associative memory (CA3-style): stored codes become
/// attractors that can be completed from partial cues.
#[derive(Debug, Clone)]
pub struct AutoAssociativeMemory {
    bits: usize,
    active: usize,
    weights: Vec<BitSet>,
    stored: usize,
}

impl AutoAssociativeMemory {
    /// Creates an empty auto-associator over codes of `bits` width and
    /// `active` active units.
    ///
    /// # Panics
    ///
    /// Panics if `active` is zero or exceeds `bits`.
    pub fn new(bits: usize, active: usize) -> Self {
        assert!(active > 0 && active <= bits);
        Self {
            bits,
            active,
            weights: (0..bits).map(|_| BitSet::new(bits)).collect(),
            stored: 0,
        }
    }

    /// Number of stored codes.
    pub fn stored(&self) -> usize {
        self.stored
    }

    /// Stores `code` as an attractor (self-connections excluded).
    ///
    /// # Panics
    ///
    /// Panics on width mismatch.
    pub fn store(&mut self, code: &BitSet) {
        assert_eq!(code.len(), self.bits, "code width mismatch");
        for a in code.iter() {
            for b in code.iter() {
                if a != b {
                    self.weights[a].insert(b);
                }
            }
        }
        self.stored += 1;
    }

    /// Completes a partial cue by iterating thresholded recall until a
    /// fixed point or `max_iters`. Each iteration re-activates the
    /// `active` units with the highest recurrent support.
    ///
    /// # Panics
    ///
    /// Panics on width mismatch.
    pub fn complete(&self, cue: &BitSet, max_iters: usize) -> BitSet {
        assert_eq!(cue.len(), self.bits, "cue width mismatch");
        let mut current = cue.clone();
        for _ in 0..max_iters {
            let scores: Vec<i32> = self
                .weights
                .iter()
                .map(|row| row.overlap(&current) as i32)
                .collect();
            let winners = k_winners(&scores, self.active);
            let next = BitSet::from_indices(self.bits, &winners);
            if next == current {
                break;
            }
            current = next;
        }
        current
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn random_code(bits: usize, active: usize, rng: &mut StdRng) -> BitSet {
        let mut s = BitSet::new(bits);
        while s.count() < active {
            s.insert(rng.gen_range(0..bits));
        }
        s
    }

    #[test]
    fn separator_produces_fixed_sparsity() {
        let sep = PatternSeparator::new(64, 256, 16, 8, 1);
        let p = BitSet::from_indices(64, &[1, 5, 9]);
        let code = sep.separate(&p);
        assert_eq!(code.count(), 16);
    }

    #[test]
    fn separator_separates_similar_patterns() {
        let sep = PatternSeparator::new(64, 512, 24, 8, 1);
        let a = BitSet::from_indices(64, &[1, 5, 9, 20]);
        let b = BitSet::from_indices(64, &[1, 5, 9, 21]); // One bit differs.
        let ca = sep.separate(&a);
        let cb = sep.separate(&b);
        // Codes differ (separation) but are not unrelated.
        assert!(ca != cb, "similar patterns must map to distinct codes");
    }

    #[test]
    fn separator_is_deterministic() {
        let sep = PatternSeparator::new(64, 256, 16, 8, 7);
        let p = BitSet::from_indices(64, &[3, 33, 63]);
        assert_eq!(sep.separate(&p), sep.separate(&p));
    }

    #[test]
    fn willshaw_recalls_stored_pairs_exactly() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut mem = WillshawMemory::new(256, 256);
        let pairs: Vec<(BitSet, BitSet)> = (0..20)
            .map(|_| {
                (
                    random_code(256, 12, &mut rng),
                    random_code(256, 12, &mut rng),
                )
            })
            .collect();
        for (k, v) in &pairs {
            mem.store(k, v);
        }
        for (k, v) in &pairs {
            let r = mem.recall(k, k.count());
            // Exact threshold recall returns a superset containing the
            // stored value; for low saturation it is exactly the value.
            for bit in v.iter() {
                assert!(r.contains(bit), "missing stored value bit {bit}");
            }
        }
        assert!(mem.saturation() < 0.2, "memory should be undersaturated");
    }

    #[test]
    fn willshaw_recall_degrades_with_saturation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut mem = WillshawMemory::new(64, 64);
        let probe_k = random_code(64, 8, &mut rng);
        let probe_v = random_code(64, 8, &mut rng);
        mem.store(&probe_k, &probe_v);
        let clean = mem.recall(&probe_k, probe_k.count());
        // Saturate with many random pairs.
        for _ in 0..500 {
            let k = random_code(64, 8, &mut rng);
            let v = random_code(64, 8, &mut rng);
            mem.store(&k, &v);
        }
        let noisy = mem.recall(&probe_k, probe_k.count());
        assert!(mem.saturation() > 0.5);
        assert!(
            noisy.count() >= clean.count(),
            "saturated recall adds spurious bits"
        );
    }

    #[test]
    fn auto_associator_completes_partial_cues() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut mem = AutoAssociativeMemory::new(256, 12);
        let codes: Vec<BitSet> = (0..10).map(|_| random_code(256, 12, &mut rng)).collect();
        for c in &codes {
            mem.store(c);
        }
        for c in &codes {
            // Cue with 7 of 12 bits.
            let mut cue = BitSet::new(256);
            for (n, bit) in c.iter().enumerate() {
                if n < 7 {
                    cue.insert(bit);
                }
            }
            let completed = mem.complete(&cue, 5);
            let overlap = completed.overlap(c);
            assert!(overlap >= 10, "completion recovered only {overlap}/12 bits");
        }
    }

    #[test]
    fn empty_memory_recall_is_empty() {
        let mem = WillshawMemory::new(32, 32);
        let k = BitSet::from_indices(32, &[1, 2, 3]);
        assert_eq!(mem.recall(&k, 3).count(), 0);
    }
}
