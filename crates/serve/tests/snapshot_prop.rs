//! Property tests for the snapshot wire format: encode/decode is a
//! lossless round trip for arbitrary well-formed state, and `decode`
//! never panics (or over-reads) on arbitrary bytes.

use hnp_hebbian::{NetState, NetStats};
use hnp_serve::{decode, encode, ModelKind, SnapshotError};
use proptest::prelude::*;

fn state_from(
    l1: Vec<i16>,
    l2: Vec<i16>,
    recurrent: Vec<u32>,
    winners: Vec<u32>,
    nums: (u64, u64, u64, u64, u64),
    rng_key: u64,
) -> NetState {
    NetState {
        layer1_weights: l1,
        layer2_weights: l2,
        recurrent,
        prev_winners: winners,
        stats: NetStats {
            steps: nums.0,
            overlap_sum: nums.1,
            winner_slots: nums.2,
            weight_updates: nums.3,
            update_ops: nums.4,
        },
        rng_key,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn round_trip_is_lossless(
        tenant in any::<u64>(),
        tag in 0u8..7,
        l1 in prop::collection::vec(any::<i16>(), 0..200),
        l2 in prop::collection::vec(any::<i16>(), 0..200),
        recurrent in prop::collection::vec(any::<u32>(), 0..64),
        winners in prop::collection::vec(any::<u32>(), 0..32),
        nums in (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()),
        rng_key in any::<u64>(),
    ) {
        let kind = ModelKind::from_tag(tag).expect("tags 0..7 are all valid");
        let state = state_from(l1, l2, recurrent, winners, nums, rng_key);
        let blob = encode(tenant, kind, &state);
        let snap = decode(&blob).expect("encoded blobs always decode");
        prop_assert_eq!(snap.tenant, tenant);
        prop_assert_eq!(snap.kind, kind);
        prop_assert_eq!(snap.state, state);
    }

    #[test]
    fn decode_never_panics_on_arbitrary_bytes(
        bytes in prop::collection::vec(any::<u8>(), 0..512),
    ) {
        // Any outcome is fine; panicking or over-reading is not.
        let _ = decode(&bytes);
    }

    #[test]
    fn truncation_is_always_detected(
        tenant in any::<u64>(),
        l1 in prop::collection::vec(any::<i16>(), 0..64),
        l2 in prop::collection::vec(any::<i16>(), 0..64),
        recurrent in prop::collection::vec(any::<u32>(), 0..16),
        winners in prop::collection::vec(any::<u32>(), 0..8),
    ) {
        let state = state_from(l1, l2, recurrent, winners, (1, 2, 3, 4, 5), 6);
        let blob = encode(tenant, ModelKind::Cls, &state);
        // Section lengths are explicit, so every strict prefix is
        // detectably incomplete — never a silent partial decode.
        for cut in 0..blob.len() {
            prop_assert_eq!(decode(&blob[..cut]), Err(SnapshotError::Truncated));
        }
    }
}
