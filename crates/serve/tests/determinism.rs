//! Satellite determinism contract: the serving engine's report,
//! snapshot archive, and emitted event stream are bit-identical at 1,
//! 2, and 8 worker threads.

use hnp_obs::{JsonlExporter, Registry};
use hnp_serve::{
    synthesize, ModelKind, PrefetcherFactory, ServeConfig, ServeEngine, TenantRegistry, TenantSpec,
};
use hnp_trace::apps::AppWorkload;

fn registry(tenants: u64) -> TenantRegistry {
    let kinds = [
        ModelKind::Hebbian,
        ModelKind::Cls,
        ModelKind::Stride,
        ModelKind::Markov,
        ModelKind::NextN,
    ];
    let loads = [
        AppWorkload::McfLike,
        AppWorkload::KvStoreLike,
        AppWorkload::TensorFlowLike,
        AppWorkload::Graph500Like,
    ];
    let mut reg = TenantRegistry::new();
    for id in 0..tenants {
        reg.register(TenantSpec {
            id,
            model: kinds[id as usize % kinds.len()],
            workload: loads[id as usize % loads.len()],
            seed: 4000 + id,
        });
    }
    reg
}

/// One full run at the given worker count, with snapshots and a
/// mid-run crash, capturing the JSONL event stream.
fn run(workers: usize) -> (String, hnp_serve::ServeReport, Vec<(u64, Vec<u8>)>) {
    let reg = registry(12);
    let requests = synthesize(&reg, 120, 77);
    let obs = Registry::new();
    let jsonl = JsonlExporter::new();
    obs.attach(jsonl.clone());
    let cfg = ServeConfig::default()
        .with_workers(workers)
        .with_shards(8)
        .with_snapshot_interval(3)
        .with_crash(4, 0)
        .with_crash(6, 5)
        .with_observer(obs);
    let engine = ServeEngine::new(cfg, reg, PrefetcherFactory::new());
    let out = engine.run(&requests);
    let archive: Vec<(u64, Vec<u8>)> = out.archive.into_iter().collect();
    (jsonl.render(), out.report, archive)
}

#[test]
fn bit_identical_across_1_2_8_workers() {
    let (events1, report1, archive1) = run(1);
    assert!(!events1.is_empty());
    assert!(report1.processed > 0);
    assert!(!archive1.is_empty());
    for workers in [2, 8] {
        let (events, report, archive) = run(workers);
        assert_eq!(report, report1, "report differs at {workers} workers");
        assert_eq!(archive, archive1, "archive differs at {workers} workers");
        assert_eq!(events, events1, "event stream differs at {workers} workers");
    }
}

#[test]
fn crash_warm_start_is_observable_in_the_stream() {
    let (events, report, _) = run(1);
    assert_eq!(report.crashes, 2);
    // Tenants 0 and 5 both hash onto the Hebbian model family
    // (id % 5 == 0), so both have snapshots to warm-start from.
    assert_eq!(report.restores, 2);
    assert!(events.contains("\"restored\":true"));
    assert!(events.contains("\"event\":\"fault\""));
    assert!(events.contains("\"event\":\"serve_flush\""));
    assert!(events.contains("\"event\":\"shard_epoch\""));
}

#[test]
fn shed_requests_are_accounted_not_lost() {
    let reg = registry(16);
    let requests = synthesize(&reg, 200, 5);
    // Tiny queues + tiny batches force the admission ladder to shed.
    let cfg = ServeConfig {
        shards: 4,
        queue_depth: 8,
        flush_per_shard: 4,
        ingest_per_epoch: 64,
        ..ServeConfig::default()
    };
    let engine = ServeEngine::new(cfg, reg, PrefetcherFactory::new());
    let out = engine.run(&requests);
    let r = out.report;
    assert!(r.shed > 0, "expected shedding under overload");
    assert_eq!(r.admitted + r.shed, r.offered);
    assert_eq!(r.processed, r.admitted);
    let shard_shed: u64 = r.shards.iter().map(|s| s.shed).sum();
    assert_eq!(shard_shed, r.shed);
}
