//! hnp-serve: a deterministic multi-tenant prefetch serving engine.
//!
//! The paper frames prefetching as a *service* the memory-tiering
//! driver runs on behalf of many concurrent applications; this crate
//! is that serving layer. It hosts one hippocampal-neocortical
//! prefetcher (or baseline) per tenant, shards tenants across worker
//! threads with a seeded placement hash, batches each shard's demand
//! misses through ladder-style admission control, and periodically
//! snapshots every tenant's consolidated cortex so a crashed tenant
//! warm-starts instead of relearning from scratch — consolidation as
//! durability, the same hippocampus→neocortex handoff the paper
//! borrows from CLS theory.
//!
//! The whole engine is byte-deterministic: given the same registry,
//! request stream, and [`ServeConfig`], the report, the snapshot
//! archive, and the emitted `hnp-obs` event stream are bit-identical
//! whether the engine runs on 1, 2, or 8 worker threads. See
//! DESIGN.md §11 for the architecture and the determinism contract.
//!
//! ```
//! use hnp_serve::{
//!     synthesize, ModelKind, PrefetcherFactory, ServeConfig, ServeEngine, TenantRegistry,
//!     TenantSpec,
//! };
//! use hnp_trace::apps::AppWorkload;
//!
//! let mut registry = TenantRegistry::new();
//! for id in 0..4 {
//!     registry.register(TenantSpec {
//!         id,
//!         model: if id % 2 == 0 { ModelKind::Hebbian } else { ModelKind::Stride },
//!         workload: AppWorkload::KvStoreLike,
//!         seed: 7 + id,
//!     });
//! }
//! let requests = synthesize(&registry, 100, 42);
//! let cfg = ServeConfig::default().with_workers(2).with_snapshot_interval(8);
//! let engine = ServeEngine::new(cfg, registry, PrefetcherFactory::new());
//! let outcome = engine.run(&requests);
//! assert_eq!(outcome.report.offered, 400);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod shard;
pub mod snapshot;
pub mod tenant;
pub mod workload;

pub use engine::{ServeConfig, ServeEngine, ServeOutcome, ServeReport, ShardReport, TenantReport};
pub use shard::{shard_of, Admission, Offer, ShardQueue, ShardStats};
pub use snapshot::{decode, encode, SnapshotError, TenantSnapshot, MAGIC, VERSION};
pub use tenant::{
    ModelKind, PrefetcherFactory, ResilienceTuning, SharedFactory, TenantId, TenantModel,
    TenantRegistry, TenantSpec,
};
pub use workload::{synthesize, ServeRequest};
