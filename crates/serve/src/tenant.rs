//! Tenants: who is being served, with which model, on which stream.
//!
//! A *tenant* is one independent miss stream with its own prefetcher —
//! a node of the paper's disaggregated cluster or one GPU context of
//! the centralized UVM driver. The registry is the immutable control
//! plane handed to every worker; live model state is built lazily
//! inside the worker that owns the tenant's shard, because prefetcher
//! configs carry a thread-local observer registry and must never cross
//! threads.

use std::collections::BTreeMap;
use std::sync::Arc;

use hnp_baselines::{
    LstmPrefetcher, LstmPrefetcherConfig, MarkovConfig, MarkovPrefetcher, NextNConfig,
    NextNPrefetcher, StrideConfig, StridePrefetcher,
};
use hnp_core::{ClsConfig, ClsPrefetcher};
use hnp_hebbian::NetState;
use hnp_memsim::{
    HealthState, MissEvent, NoPrefetcher, PrefetchFeedback, Prefetcher, ResilientConfig,
    ResilientPrefetcher,
};
use hnp_trace::apps::AppWorkload;

/// Identifies a tenant across the engine, reports, and snapshots.
pub type TenantId = u64;

/// Which prefetcher family serves a tenant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModelKind {
    /// The full CLS prefetcher (hippocampus + replay + Hebbian cortex).
    Cls,
    /// Hebbian cortex only, no replay (the paper's ablation).
    Hebbian,
    /// Stride detector baseline.
    Stride,
    /// Markov-table baseline.
    Markov,
    /// Next-N-line baseline.
    NextN,
    /// LSTM baseline (the paper's deep-learning comparison point).
    Lstm,
    /// No prefetching (control tenants).
    None,
}

impl ModelKind {
    /// Stable lowercase label used in reports and snapshot headers.
    pub fn label(self) -> &'static str {
        match self {
            ModelKind::Cls => "cls",
            ModelKind::Hebbian => "hebbian",
            ModelKind::Stride => "stride",
            ModelKind::Markov => "markov",
            ModelKind::NextN => "next-n",
            ModelKind::Lstm => "lstm",
            ModelKind::None => "none",
        }
    }

    /// Integer tag used in the snapshot wire format.
    pub fn tag(self) -> u8 {
        match self {
            ModelKind::Cls => 0,
            ModelKind::Hebbian => 1,
            ModelKind::Stride => 2,
            ModelKind::Markov => 3,
            ModelKind::NextN => 4,
            ModelKind::Lstm => 5,
            ModelKind::None => 6,
        }
    }

    /// Inverse of [`ModelKind::tag`].
    pub fn from_tag(tag: u8) -> Option<ModelKind> {
        Some(match tag {
            0 => ModelKind::Cls,
            1 => ModelKind::Hebbian,
            2 => ModelKind::Stride,
            3 => ModelKind::Markov,
            4 => ModelKind::NextN,
            5 => ModelKind::Lstm,
            6 => ModelKind::None,
            _ => return None,
        })
    }

    /// Parses a CLI-style name (see [`ModelKind::label`]).
    pub fn parse(name: &str) -> Option<ModelKind> {
        Some(match name {
            "cls" | "cls-hebbian" => ModelKind::Cls,
            "hebbian" => ModelKind::Hebbian,
            "stride" => ModelKind::Stride,
            "markov" => ModelKind::Markov,
            "next-n" => ModelKind::NextN,
            "lstm" => ModelKind::Lstm,
            "none" => ModelKind::None,
            _ => return None,
        })
    }

    /// Whether the model carries consolidated (snapshot-able) state.
    /// Only the Hebbian cortex survives a crash — the hippocampal
    /// episodic store is transient by CLS theory, and the baselines
    /// rebuild their tables cold.
    pub fn snapshotable(self) -> bool {
        matches!(self, ModelKind::Cls | ModelKind::Hebbian)
    }
}

/// Immutable description of one tenant.
#[derive(Debug, Clone, Copy)]
pub struct TenantSpec {
    /// Tenant identity.
    pub id: TenantId,
    /// Prefetcher family serving this tenant.
    pub model: ModelKind,
    /// Application-like workload shape driving its miss stream.
    pub workload: AppWorkload,
    /// Seed for model construction and trace synthesis.
    pub seed: u64,
}

/// The control plane: every tenant the engine serves, keyed by id.
/// `BTreeMap`-backed so iteration (and therefore every derived
/// schedule) is ordered and deterministic.
#[derive(Debug, Clone, Default)]
pub struct TenantRegistry {
    tenants: BTreeMap<TenantId, TenantSpec>,
}

impl TenantRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a tenant. Returns `false` (and leaves the registry
    /// unchanged) when the id is already taken.
    pub fn register(&mut self, spec: TenantSpec) -> bool {
        if self.tenants.contains_key(&spec.id) {
            return false;
        }
        self.tenants.insert(spec.id, spec);
        true
    }

    /// Looks up a tenant.
    pub fn get(&self, id: TenantId) -> Option<&TenantSpec> {
        self.tenants.get(&id)
    }

    /// Number of registered tenants.
    pub fn len(&self) -> usize {
        self.tenants.len()
    }

    /// True when no tenants are registered.
    pub fn is_empty(&self) -> bool {
        self.tenants.is_empty()
    }

    /// Tenants in ascending id order.
    pub fn iter(&self) -> impl Iterator<Item = &TenantSpec> {
        self.tenants.values()
    }
}

/// Send-able resilience knobs; workers expand these into a full
/// [`ResilientConfig`] locally (the full config carries a thread-local
/// observer registry and cannot cross threads).
#[derive(Debug, Clone, Copy)]
pub struct ResilienceTuning {
    /// Outcome-window length per source.
    pub window: usize,
    /// Feedback events between watchdog evaluations.
    pub eval_period: usize,
    /// Consecutive good evaluations required to recover.
    pub hysteresis: u32,
}

impl Default for ResilienceTuning {
    fn default() -> Self {
        let d = ResilientConfig::default();
        Self {
            window: d.window,
            eval_period: d.eval_period,
            hysteresis: d.hysteresis,
        }
    }
}

impl ResilienceTuning {
    fn to_config(self) -> ResilientConfig {
        ResilientConfig::default()
            .with_window(self.window)
            .with_eval_period(self.eval_period)
            .with_hysteresis(self.hysteresis)
    }
}

/// Builds per-tenant prefetchers inside worker threads. Plain data
/// (`Send + Sync`), shared via [`Arc`]; every instance a given spec
/// produces is identical, which is what makes crash-rebuild and
/// thread-count-independence work.
#[derive(Debug, Clone, Copy, Default)]
pub struct PrefetcherFactory {
    /// Health-ladder tuning applied to every tenant's wrapper.
    pub resilience: ResilienceTuning,
}

impl PrefetcherFactory {
    /// A factory with default resilience tuning.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds the live model for `spec`, wrapped in a fresh
    /// [`ResilientPrefetcher`] health ladder.
    pub fn build(&self, spec: &TenantSpec) -> TenantModel {
        let rc = self.resilience.to_config();
        match spec.model {
            ModelKind::Cls => TenantModel::Cls(Box::new(ResilientPrefetcher::with_config(
                ClsPrefetcher::new(ClsConfig::small().with_seed(spec.seed)),
                rc,
            ))),
            ModelKind::Hebbian => TenantModel::Cls(Box::new(ResilientPrefetcher::with_config(
                ClsPrefetcher::new(ClsConfig {
                    seed: spec.seed,
                    ..ClsConfig::hebbian_only()
                }),
                rc,
            ))),
            ModelKind::Stride => TenantModel::boxed(
                Box::new(StridePrefetcher::with_config(StrideConfig::default())),
                rc,
            ),
            ModelKind::Markov => TenantModel::boxed(
                Box::new(MarkovPrefetcher::with_config(MarkovConfig::default())),
                rc,
            ),
            ModelKind::NextN => TenantModel::boxed(
                Box::new(NextNPrefetcher::with_config(NextNConfig::default())),
                rc,
            ),
            ModelKind::Lstm => TenantModel::boxed(
                Box::new(LstmPrefetcher::new(LstmPrefetcherConfig {
                    seed: spec.seed,
                    ..LstmPrefetcherConfig::default()
                })),
                rc,
            ),
            ModelKind::None => TenantModel::boxed(Box::new(NoPrefetcher), rc),
        }
    }
}

/// A shared, immutable factory handle as passed to workers.
pub type SharedFactory = Arc<PrefetcherFactory>;

/// A live, health-wrapped tenant model.
///
/// The CLS variant keeps its concrete type so the snapshot path can
/// reach the Hebbian network state; everything else is served through
/// the trait object.
pub enum TenantModel {
    /// CLS-family model with snapshot-able cortex. Both variants are
    /// boxed: the health-ladder wrapper is large, and the enum would
    /// otherwise pay the biggest variant's size for every tenant.
    Cls(Box<ResilientPrefetcher<ClsPrefetcher>>),
    /// Any other prefetcher.
    Other(Box<ResilientPrefetcher<Box<dyn Prefetcher>>>),
}

impl TenantModel {
    fn boxed(inner: Box<dyn Prefetcher>, rc: ResilientConfig) -> Self {
        TenantModel::Other(Box::new(ResilientPrefetcher::with_config(inner, rc)))
    }

    /// Forwards a miss through the health ladder.
    pub fn on_miss(&mut self, miss: &MissEvent) -> Vec<u64> {
        match self {
            TenantModel::Cls(m) => m.on_miss(miss),
            TenantModel::Other(m) => m.on_miss(miss),
        }
    }

    /// Forwards prefetch-outcome feedback through the health ladder.
    pub fn on_feedback(&mut self, fb: &PrefetchFeedback) {
        match self {
            TenantModel::Cls(m) => m.on_feedback(fb),
            TenantModel::Other(m) => m.on_feedback(fb),
        }
    }

    /// Current position on the degradation ladder.
    pub fn health(&self) -> HealthState {
        match self {
            TenantModel::Cls(m) => m.state(),
            TenantModel::Other(m) => m.state(),
        }
    }

    /// Captures the consolidated Hebbian state, if this model has any.
    /// See [`hnp_hebbian::HebbianNetwork::export_state`] for the RNG
    /// re-key semantics.
    pub fn export_net_state(&mut self) -> Option<NetState> {
        match self {
            TenantModel::Cls(m) => Some(m.inner_mut().cortex_mut().network_mut().export_state()),
            TenantModel::Other(_) => None,
        }
    }

    /// Restores consolidated Hebbian state captured from an
    /// identically configured tenant. Returns `false` when this model
    /// has no cortex or the state does not fit.
    pub fn import_net_state(&mut self, state: &NetState) -> bool {
        match self {
            TenantModel::Cls(m) => m
                .inner_mut()
                .cortex_mut()
                .network_mut()
                .import_state(state)
                .is_ok(),
            TenantModel::Other(_) => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_rejects_duplicate_ids() {
        let mut reg = TenantRegistry::new();
        let spec = TenantSpec {
            id: 7,
            model: ModelKind::Stride,
            workload: AppWorkload::McfLike,
            seed: 1,
        };
        assert!(reg.register(spec));
        assert!(!reg.register(spec));
        assert_eq!(reg.len(), 1);
    }

    #[test]
    fn model_kind_labels_round_trip() {
        for kind in [
            ModelKind::Cls,
            ModelKind::Hebbian,
            ModelKind::Stride,
            ModelKind::Markov,
            ModelKind::NextN,
            ModelKind::Lstm,
            ModelKind::None,
        ] {
            assert_eq!(ModelKind::parse(kind.label()), Some(kind));
            assert_eq!(ModelKind::from_tag(kind.tag()), Some(kind));
        }
        assert_eq!(ModelKind::from_tag(200), None);
    }

    #[test]
    fn factory_builds_snapshotable_models_only_for_cls_family() {
        let factory = PrefetcherFactory::new();
        let mk = |model| TenantSpec {
            id: 1,
            model,
            workload: AppWorkload::McfLike,
            seed: 3,
        };
        let mut cls = factory.build(&mk(ModelKind::Cls));
        assert!(cls.export_net_state().is_some());
        let mut stride = factory.build(&mk(ModelKind::Stride));
        assert!(stride.export_net_state().is_none());
        assert_eq!(stride.health(), HealthState::Healthy);
    }

    #[test]
    fn rebuilt_model_with_imported_state_matches_original() {
        let factory = PrefetcherFactory::new();
        let spec = TenantSpec {
            id: 1,
            model: ModelKind::Hebbian,
            workload: AppWorkload::McfLike,
            seed: 9,
        };
        let mut original = factory.build(&spec);
        for i in 0..200u64 {
            let miss = MissEvent {
                page: 100 + (i % 8),
                tick: i,
                stream: 0,
            };
            let _ = original.on_miss(&miss);
        }
        let state = original.export_net_state().expect("cls family");
        let mut rebuilt = factory.build(&spec);
        assert!(rebuilt.import_net_state(&state));
        assert_eq!(
            rebuilt.export_net_state(),
            original.export_net_state(),
            "warm-started copy carries the learned cortex"
        );
    }
}
