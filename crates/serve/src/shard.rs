//! Shard assignment and per-shard admission control.
//!
//! Tenants are pinned to shards by a seeded FNV-1a hash of their id,
//! and shards are pinned to workers by index — so a tenant's request
//! stream is always processed by one worker in arrival order, which is
//! the invariant the determinism contract (DESIGN.md §11.4) rests on.
//!
//! Each shard owns a bounded FIFO queue guarded by an admission ladder
//! that mirrors the `hnp-memsim` resilience ladder's shape: a healthy
//! queue admits everything, a congested one throttles (admits every
//! other request), a full one sheds, and recovery steps back down with
//! watermark hysteresis instead of flapping at the boundary.

use std::collections::VecDeque;

use crate::tenant::TenantId;
use crate::workload::ServeRequest;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Seeded FNV-1a over the tenant id's little-endian bytes, reduced to
/// a shard index. Integer-only and stable across runs and platforms —
/// never replace this with `std` hashing (`RandomState` would leak
/// per-process randomness into the schedule).
pub fn shard_of(tenant: TenantId, shards: usize, seed: u64) -> usize {
    let mut h = FNV_OFFSET ^ seed;
    for b in tenant.to_le_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    (h % shards.max(1) as u64) as usize
}

/// Admission ladder position of one shard queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// Below the high watermark: admit everything.
    Open,
    /// Congested: admit every other request.
    Throttled,
    /// Full: shed everything until the queue drains to the low
    /// watermark.
    Shedding,
}

impl Admission {
    /// Stable lowercase label for reports.
    pub fn label(self) -> &'static str {
        match self {
            Admission::Open => "open",
            Admission::Throttled => "throttled",
            Admission::Shedding => "shedding",
        }
    }
}

/// What the queue did with an offered request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Offer {
    /// Admitted; carries the queue depth after the enqueue.
    Enqueued(usize),
    /// Shed by admission control.
    Shed,
}

/// Counters one shard accumulates over a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// Requests admitted into the queue.
    pub enqueued: u64,
    /// Requests shed by admission control.
    pub shed: u64,
    /// Requests handed to the worker in flushed batches.
    pub flushed: u64,
}

/// A bounded FIFO request queue with ladder admission control.
#[derive(Debug)]
pub struct ShardQueue {
    pending: VecDeque<ServeRequest>,
    depth: usize,
    state: Admission,
    /// Offers seen while Throttled; even offers are admitted.
    throttle_clock: u64,
    stats: ShardStats,
}

impl ShardQueue {
    /// A queue holding at most `depth` pending requests (`depth` is
    /// clamped to at least 1).
    pub fn new(depth: usize) -> Self {
        Self {
            pending: VecDeque::new(),
            depth: depth.max(1),
            state: Admission::Open,
            throttle_clock: 0,
            stats: ShardStats::default(),
        }
    }

    /// Pending request count.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// True when nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    /// Current admission ladder position.
    pub fn admission(&self) -> Admission {
        self.state
    }

    /// Run counters.
    pub fn stats(&self) -> ShardStats {
        self.stats
    }

    /// High watermark: Open → Throttled at ¾ capacity.
    fn high_mark(&self) -> usize {
        (self.depth * 3 / 4).max(1)
    }

    /// Low watermark: recovery happens at ¼ capacity.
    fn low_mark(&self) -> usize {
        self.depth / 4
    }

    /// Moves along the ladder from the current occupancy. Called after
    /// every enqueue and flush.
    fn reladder(&mut self) {
        let len = self.pending.len();
        self.state = match self.state {
            Admission::Open if len >= self.high_mark() => Admission::Throttled,
            Admission::Throttled if len >= self.depth => Admission::Shedding,
            Admission::Throttled if len <= self.low_mark() => Admission::Open,
            Admission::Shedding if len <= self.low_mark() => Admission::Throttled,
            s => s,
        };
    }

    /// Offers a request to the queue under the admission ladder.
    pub fn offer(&mut self, req: ServeRequest) -> Offer {
        let admit = match self.state {
            Admission::Open => true,
            Admission::Throttled => {
                self.throttle_clock += 1;
                self.throttle_clock.is_multiple_of(2)
            }
            Admission::Shedding => false,
        } && self.pending.len() < self.depth;
        if !admit {
            self.stats.shed += 1;
            self.reladder();
            return Offer::Shed;
        }
        self.pending.push_back(req);
        self.stats.enqueued += 1;
        self.reladder();
        Offer::Enqueued(self.pending.len())
    }

    /// Drains up to `max` requests in FIFO order for this epoch's
    /// batch.
    pub fn flush(&mut self, max: usize) -> Vec<ServeRequest> {
        let n = max.min(self.pending.len());
        let batch: Vec<ServeRequest> = self.pending.drain(..n).collect();
        self.stats.flushed += batch.len() as u64;
        self.reladder();
        batch
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(tenant: TenantId) -> ServeRequest {
        ServeRequest { tenant, page: 1 }
    }

    #[test]
    fn shard_hash_is_deterministic_and_seed_sensitive() {
        let a = shard_of(42, 8, 1);
        assert_eq!(a, shard_of(42, 8, 1));
        assert!(a < 8);
        let different_seed: Vec<usize> = (0..64).map(|t| shard_of(t, 8, 2)).collect();
        let base: Vec<usize> = (0..64).map(|t| shard_of(t, 8, 1)).collect();
        assert_ne!(base, different_seed, "seed must perturb the placement");
    }

    #[test]
    fn shard_hash_spreads_tenants() {
        let shards = 8;
        let mut counts = vec![0usize; shards];
        for t in 0..256u64 {
            counts[shard_of(t, shards, 0x5eed)] += 1;
        }
        assert!(counts.iter().all(|&c| c > 0), "all shards used: {counts:?}");
    }

    #[test]
    fn ladder_throttles_then_sheds_then_recovers() {
        let mut q = ShardQueue::new(8);
        // Fill to capacity: Open admits up to the high mark, then the
        // ladder throttles (every other offer) and finally sheds.
        let mut outcomes = Vec::new();
        for i in 0..32 {
            outcomes.push(q.offer(req(i)));
        }
        assert_eq!(q.len(), 8, "hard cap holds");
        assert_eq!(q.admission(), Admission::Shedding);
        assert!(outcomes.contains(&Offer::Shed));
        // Draining to the low watermark recovers one rung per check.
        let _ = q.flush(7);
        assert_eq!(q.admission(), Admission::Throttled);
        let _ = q.flush(1);
        assert_eq!(q.admission(), Admission::Open);
        assert!(q.is_empty());
        let s = q.stats();
        assert_eq!(s.enqueued, 8);
        assert_eq!(s.shed, 24);
        assert_eq!(s.flushed, 8);
    }

    #[test]
    fn flush_preserves_fifo_order() {
        let mut q = ShardQueue::new(16);
        for i in 0..5 {
            let _ = q.offer(req(i));
        }
        let batch = q.flush(3);
        let ids: Vec<TenantId> = batch.iter().map(|r| r.tenant).collect();
        assert_eq!(ids, vec![0, 1, 2]);
        assert_eq!(q.len(), 2);
    }
}
