//! Multi-tenant workload synthesis from the application-like traces.
//!
//! Each tenant gets its own `hnp-trace` application trace (seeded per
//! tenant), and the per-tenant page streams are interleaved into one
//! arrival sequence with a seeded RNG — the serving engine then sees
//! the mixed stream the paper's centralized UVM driver describes,
//! where "the individual access patterns [must be isolated] in the
//! combined access streams".

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::tenant::{TenantId, TenantRegistry};

/// One serving request: a demand miss on a tenant's stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeRequest {
    /// Tenant whose stream missed.
    pub tenant: TenantId,
    /// Missing page number.
    pub page: u64,
}

/// Synthesizes an interleaved arrival stream: `per_tenant` pages from
/// each registered tenant's application trace, merged in seeded
/// random order (uniform over tenants with pages remaining). The
/// result is fully determined by the registry contents, `per_tenant`,
/// and `seed`.
pub fn synthesize(registry: &TenantRegistry, per_tenant: usize, seed: u64) -> Vec<ServeRequest> {
    let mut streams: Vec<(TenantId, Vec<u64>, usize)> = registry
        .iter()
        .map(|spec| {
            let trace = spec.workload.generate(per_tenant, spec.seed);
            let shift = trace.page_shift();
            let pages: Vec<u64> = trace.accesses().iter().map(|a| a.page(shift)).collect();
            (spec.id, pages, 0usize)
        })
        .collect();
    let total: usize = streams.iter().map(|(_, p, _)| p.len()).sum();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(total);
    let mut alive: Vec<usize> = (0..streams.len())
        .filter(|&i| !streams[i].1.is_empty())
        .collect();
    while !alive.is_empty() {
        let pick = alive[rng.gen_range(0..alive.len())];
        let (tenant, pages, cursor) = &mut streams[pick];
        out.push(ServeRequest {
            tenant: *tenant,
            page: pages[*cursor],
        });
        *cursor += 1;
        if *cursor == pages.len() {
            alive.retain(|&i| i != pick);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tenant::{ModelKind, TenantSpec};
    use hnp_trace::apps::AppWorkload;

    fn registry(n: u64) -> TenantRegistry {
        let mut reg = TenantRegistry::new();
        for id in 0..n {
            reg.register(TenantSpec {
                id,
                model: ModelKind::Stride,
                workload: AppWorkload::McfLike,
                seed: 100 + id,
            });
        }
        reg
    }

    #[test]
    fn synthesis_is_deterministic_and_complete() {
        let reg = registry(4);
        let a = synthesize(&reg, 50, 7);
        let b = synthesize(&reg, 50, 7);
        assert_eq!(a, b);
        assert_eq!(a.len(), 4 * 50);
        for id in 0..4u64 {
            assert_eq!(a.iter().filter(|r| r.tenant == id).count(), 50);
        }
    }

    #[test]
    fn interleave_seed_changes_order_not_content() {
        let reg = registry(3);
        let a = synthesize(&reg, 40, 1);
        let b = synthesize(&reg, 40, 2);
        assert_ne!(a, b, "different interleave");
        let project = |v: &[ServeRequest], id: TenantId| -> Vec<u64> {
            v.iter()
                .filter(|r| r.tenant == id)
                .map(|r| r.page)
                .collect()
        };
        for id in 0..3u64 {
            assert_eq!(
                project(&a, id),
                project(&b, id),
                "per-tenant streams unchanged"
            );
        }
    }
}
