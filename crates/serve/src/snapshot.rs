//! The versioned snapshot wire format (DESIGN.md §11.3).
//!
//! A snapshot captures one tenant's consolidated Hebbian state — the
//! [`NetState`] exported by the cortex — plus enough metadata to
//! validate a restore: magic, format version, model kind, tenant id.
//! Everything on the wire is a little-endian integer; there are no
//! floats anywhere in the format, matching the workspace integer-
//! purity rule for learned state.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! offset  size  field
//! 0       4     magic "HNPS"
//! 4       2     version (currently 1)
//! 6       1     model-kind tag (ModelKind::tag)
//! 7       1     reserved (0)
//! 8       8     tenant id
//! 16      8     RNG key
//! 24      40    NetStats: steps, overlap_sum, winner_slots,
//!               weight_updates, update_ops (5 × u64)
//! 64      4+2n  layer-1 weights: count u32, then i16 each
//! …       4+2n  layer-2 weights: count u32, then i16 each
//! …       4+4n  recurrent bits: count u32, then u32 each
//! …       4+4n  previous winners: count u32, then u32 each
//! ```

use hnp_hebbian::{NetState, NetStats};

use crate::tenant::{ModelKind, TenantId};

/// File magic: "HNPS".
pub const MAGIC: [u8; 4] = *b"HNPS";
/// Current format version.
pub const VERSION: u16 = 1;

/// Why a snapshot blob could not be decoded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SnapshotError {
    /// The blob is shorter than its headers or length fields claim.
    Truncated,
    /// The magic bytes are not `HNPS`.
    BadMagic,
    /// A version this build does not read.
    BadVersion(u16),
    /// An unknown model-kind tag.
    BadKind(u8),
    /// Trailing bytes after the last section.
    TrailingBytes,
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Truncated => write!(f, "snapshot truncated"),
            SnapshotError::BadMagic => write!(f, "not a HNPS snapshot"),
            SnapshotError::BadVersion(v) => write!(f, "unsupported snapshot version {v}"),
            SnapshotError::BadKind(t) => write!(f, "unknown model-kind tag {t}"),
            SnapshotError::TrailingBytes => write!(f, "trailing bytes after snapshot"),
        }
    }
}

/// A decoded snapshot: header metadata plus the captured state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantSnapshot {
    /// Tenant the state belongs to.
    pub tenant: TenantId,
    /// Model family that produced it.
    pub kind: ModelKind,
    /// The consolidated Hebbian state.
    pub state: NetState,
}

/// Encodes `state` for `tenant` into the versioned wire format.
pub fn encode(tenant: TenantId, kind: ModelKind, state: &NetState) -> Vec<u8> {
    let mut out = Vec::with_capacity(
        64 + 2 * state.layer1_weights.len()
            + 2 * state.layer2_weights.len()
            + 4 * state.recurrent.len()
            + 4 * state.prev_winners.len()
            + 16,
    );
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.push(kind.tag());
    out.push(0);
    out.extend_from_slice(&tenant.to_le_bytes());
    out.extend_from_slice(&state.rng_key.to_le_bytes());
    for v in [
        state.stats.steps,
        state.stats.overlap_sum,
        state.stats.winner_slots,
        state.stats.weight_updates,
        state.stats.update_ops,
    ] {
        out.extend_from_slice(&v.to_le_bytes());
    }
    for weights in [&state.layer1_weights, &state.layer2_weights] {
        out.extend_from_slice(&(weights.len() as u32).to_le_bytes());
        for &w in weights.iter() {
            out.extend_from_slice(&w.to_le_bytes());
        }
    }
    for bits in [&state.recurrent, &state.prev_winners] {
        out.extend_from_slice(&(bits.len() as u32).to_le_bytes());
        for &b in bits.iter() {
            out.extend_from_slice(&b.to_le_bytes());
        }
    }
    out
}

/// Bounded little-endian reader over a snapshot blob.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        let end = self.pos.checked_add(n).ok_or(SnapshotError::Truncated)?;
        if end > self.buf.len() {
            return Err(SnapshotError::Truncated);
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, SnapshotError> {
        let s = self.take(2)?;
        Ok(u16::from_le_bytes([s[0], s[1]]))
    }

    fn u32(&mut self) -> Result<u32, SnapshotError> {
        let s = self.take(4)?;
        Ok(u32::from_le_bytes([s[0], s[1], s[2], s[3]]))
    }

    fn u64(&mut self) -> Result<u64, SnapshotError> {
        let s = self.take(8)?;
        let mut b = [0u8; 8];
        b.copy_from_slice(s);
        Ok(u64::from_le_bytes(b))
    }

    fn i16_vec(&mut self) -> Result<Vec<i16>, SnapshotError> {
        let n = self.u32()? as usize;
        let s = self.take(n.checked_mul(2).ok_or(SnapshotError::Truncated)?)?;
        Ok(s.chunks_exact(2)
            .map(|c| i16::from_le_bytes([c[0], c[1]]))
            .collect())
    }

    fn u32_vec(&mut self) -> Result<Vec<u32>, SnapshotError> {
        let n = self.u32()? as usize;
        let s = self.take(n.checked_mul(4).ok_or(SnapshotError::Truncated)?)?;
        Ok(s.chunks_exact(4)
            .map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]]))
            .collect())
    }
}

/// Decodes a blob produced by [`encode`]. Never panics on malformed
/// input — every failure mode is a typed [`SnapshotError`].
pub fn decode(buf: &[u8]) -> Result<TenantSnapshot, SnapshotError> {
    let mut r = Reader { buf, pos: 0 };
    if r.take(4)? != MAGIC {
        return Err(SnapshotError::BadMagic);
    }
    let version = r.u16()?;
    if version != VERSION {
        return Err(SnapshotError::BadVersion(version));
    }
    let tag = r.u8()?;
    let kind = ModelKind::from_tag(tag).ok_or(SnapshotError::BadKind(tag))?;
    let _reserved = r.u8()?;
    let tenant = r.u64()?;
    let rng_key = r.u64()?;
    let stats = NetStats {
        steps: r.u64()?,
        overlap_sum: r.u64()?,
        winner_slots: r.u64()?,
        weight_updates: r.u64()?,
        update_ops: r.u64()?,
    };
    let layer1_weights = r.i16_vec()?;
    let layer2_weights = r.i16_vec()?;
    let recurrent = r.u32_vec()?;
    let prev_winners = r.u32_vec()?;
    if r.pos != buf.len() {
        return Err(SnapshotError::TrailingBytes);
    }
    Ok(TenantSnapshot {
        tenant,
        kind,
        state: NetState {
            layer1_weights,
            layer2_weights,
            recurrent,
            prev_winners,
            stats,
            rng_key,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_state() -> NetState {
        NetState {
            layer1_weights: vec![-3, 0, 7, 64],
            layer2_weights: vec![1, -1],
            recurrent: vec![2, 9, 31],
            prev_winners: vec![5, 17],
            stats: NetStats {
                steps: 10,
                overlap_sum: 4,
                winner_slots: 20,
                weight_updates: 9,
                update_ops: 1234,
            },
            rng_key: 0xdead_beef_cafe_f00d,
        }
    }

    #[test]
    fn encode_decode_round_trips() {
        let state = sample_state();
        let blob = encode(42, ModelKind::Cls, &state);
        let snap = decode(&blob).expect("well-formed blob");
        assert_eq!(snap.tenant, 42);
        assert_eq!(snap.kind, ModelKind::Cls);
        assert_eq!(snap.state, state);
    }

    #[test]
    fn decode_rejects_malformed_headers() {
        let state = sample_state();
        let blob = encode(1, ModelKind::Hebbian, &state);

        assert_eq!(decode(&blob[..3]), Err(SnapshotError::Truncated));

        let mut bad_magic = blob.clone();
        bad_magic[0] = b'X';
        assert_eq!(decode(&bad_magic), Err(SnapshotError::BadMagic));

        let mut bad_version = blob.clone();
        bad_version[4] = 99;
        assert_eq!(decode(&bad_version), Err(SnapshotError::BadVersion(99)));

        let mut bad_kind = blob.clone();
        bad_kind[6] = 250;
        assert_eq!(decode(&bad_kind), Err(SnapshotError::BadKind(250)));

        let mut trailing = blob.clone();
        trailing.push(0);
        assert_eq!(decode(&trailing), Err(SnapshotError::TrailingBytes));

        let truncated = &blob[..blob.len() - 1];
        assert_eq!(decode(truncated), Err(SnapshotError::Truncated));
    }
}
