//! The serving engine: a batched, lock-step epoch loop over OS worker
//! threads (DESIGN.md §11).
//!
//! Each epoch the main thread ingests arrivals through per-shard
//! admission control, flushes one bounded batch per shard, and hands
//! the batches to the workers that own those shards. Workers hold all
//! live tenant state — models are *constructed inside* the owning
//! worker from the shared [`PrefetcherFactory`], because prefetcher
//! configs carry thread-local observer registries and must never
//! migrate. The epoch barrier (every worker acknowledges before the
//! next epoch starts) plus shard-ordered merging of results is what
//! makes the emitted event stream and the final report bit-identical
//! for any worker count.
//!
//! Observability stays on the main thread: workers return plain
//! integer payloads and the engine emits `hnp-obs` events from the
//! merged, shard-ordered view.

use std::collections::BTreeMap;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;
use std::thread;

use serde::Serialize;

use hnp_memsim::{CheckpointCursor, MissEvent, PrefetchFeedback};
use hnp_obs::{Event, FaultKind, Registry};

use crate::shard::{shard_of, Offer, ShardQueue};
use crate::snapshot::{decode, encode};
use crate::tenant::{PrefetcherFactory, TenantId, TenantModel, TenantRegistry};
use crate::workload::ServeRequest;

/// Engine parameters.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Number of shards tenants hash onto.
    pub shards: usize,
    /// Worker threads (clamped to `1..=shards` at run time).
    pub workers: usize,
    /// Per-shard pending-queue capacity (admission control sheds
    /// beyond it).
    pub queue_depth: usize,
    /// Maximum requests drained per shard per epoch (the batch size).
    pub flush_per_shard: usize,
    /// Arrivals ingested from the request stream per epoch; `0` means
    /// `shards * flush_per_shard` (a balanced offered load).
    pub ingest_per_epoch: usize,
    /// Snapshot every N epochs (plus a closing capture); `0` disables
    /// snapshotting.
    pub snapshot_interval: u64,
    /// Seed of the tenant→shard placement hash.
    pub hash_seed: u64,
    /// Crash schedule: at the start of epoch `e` (1-based), the given
    /// tenant loses its live state and warm-starts from its last
    /// snapshot if one exists.
    pub crashes: Vec<(u64, TenantId)>,
    /// Outstanding-prediction window per tenant for coverage
    /// accounting.
    pub pred_window: usize,
    /// Requests after which an unconsumed prediction expires (counted
    /// on the owning tenant's stream) and is fed back as pollution.
    pub pred_horizon: u64,
    /// Observer registry; the engine emits serve events into it from
    /// the main thread. Empty by default — and, per the workspace
    /// determinism contract, attaching observers never changes a run.
    pub obs: Registry,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            shards: 8,
            workers: 1,
            queue_depth: 64,
            flush_per_shard: 32,
            ingest_per_epoch: 0,
            snapshot_interval: 0,
            hash_seed: 0x5e44e,
            crashes: Vec::new(),
            pred_window: 64,
            pred_horizon: 256,
            obs: Registry::new(),
        }
    }
}

impl ServeConfig {
    /// Sets the worker-thread count.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Sets the shard count.
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Sets the per-shard queue capacity.
    pub fn with_queue_depth(mut self, depth: usize) -> Self {
        self.queue_depth = depth;
        self
    }

    /// Sets the snapshot cadence in epochs (`0` disables).
    pub fn with_snapshot_interval(mut self, epochs: u64) -> Self {
        self.snapshot_interval = epochs;
        self
    }

    /// Schedules a tenant crash at the start of the given 1-based
    /// epoch.
    pub fn with_crash(mut self, epoch: u64, tenant: TenantId) -> Self {
        self.crashes.push((epoch, tenant));
        self
    }

    /// Attaches an observer registry.
    pub fn with_observer(mut self, obs: Registry) -> Self {
        self.obs = obs;
        self
    }
}

/// Per-tenant serving totals.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct TenantReport {
    /// Tenant id.
    pub tenant: TenantId,
    /// Shard the tenant hashed to.
    pub shard: u64,
    /// Model family label.
    pub model: String,
    /// Requests processed.
    pub requests: u64,
    /// Requests whose page was in the prediction window (covered).
    pub covered: u64,
    /// Predictions issued into the window.
    pub issued: u64,
    /// Predictions expired unconsumed (pollution).
    pub expired: u64,
    /// Final health-ladder label.
    pub health: String,
    /// Crashes the tenant suffered.
    pub crashes: u64,
}

impl TenantReport {
    /// Covered share of processed requests, in thousandths.
    pub fn coverage_milli(&self) -> u64 {
        (self.covered * 1000)
            .checked_div(self.requests)
            .unwrap_or(0)
    }
}

/// Per-shard queue totals.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct ShardReport {
    /// Shard index.
    pub shard: u64,
    /// Requests admitted.
    pub enqueued: u64,
    /// Requests shed.
    pub shed: u64,
    /// Requests flushed to the worker.
    pub flushed: u64,
}

/// Closing totals of one serving run.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct ServeReport {
    /// Epochs the engine ran (excluding the closing snapshot pass).
    pub epochs: u64,
    /// Requests offered by the workload.
    pub offered: u64,
    /// Requests admitted by the shard queues.
    pub admitted: u64,
    /// Requests shed by admission control.
    pub shed: u64,
    /// Requests processed by workers.
    pub processed: u64,
    /// Tenant crashes injected.
    pub crashes: u64,
    /// Successful warm-start restores.
    pub restores: u64,
    /// Snapshots captured.
    pub snapshots: u64,
    /// Per-tenant totals, ascending tenant id.
    pub tenants: Vec<TenantReport>,
    /// Per-shard totals, ascending shard index.
    pub shards: Vec<ShardReport>,
}

impl ServeReport {
    /// Covered share of all processed requests, in thousandths.
    pub fn coverage_milli(&self) -> u64 {
        let covered: u64 = self.tenants.iter().map(|t| t.covered).sum();
        (covered * 1000).checked_div(self.processed).unwrap_or(0)
    }
}

/// Everything a run produces: the report plus the latest snapshot
/// blob per tenant (the warm-start archive, ready to write to disk).
#[derive(Debug)]
pub struct ServeOutcome {
    /// Closing totals.
    pub report: ServeReport,
    /// Latest snapshot per tenant, ascending id.
    pub archive: BTreeMap<TenantId, Vec<u8>>,
}

/// Coverage-model knobs shipped to workers.
#[derive(Debug, Clone, Copy)]
struct CoverageParams {
    window: usize,
    horizon: u64,
}

/// One epoch of work for a worker: every owned shard's batch (empty
/// batches included — the acknowledgement is the barrier), crash
/// directives with optional warm-start blobs, and the snapshot flag.
struct EpochTask {
    batches: Vec<(usize, Vec<ServeRequest>)>,
    crashes: Vec<(TenantId, Option<Vec<u8>>)>,
    snapshot: bool,
}

enum ToWorker {
    Epoch(EpochTask),
    Finish,
}

/// Per-epoch acknowledgement: snapshots captured and restores
/// attempted this epoch (tenant, blob bytes, success).
struct EpochAck {
    snapshots: Vec<(TenantId, Vec<u8>)>,
    restores: Vec<(TenantId, u64, bool)>,
}

/// Closing per-tenant totals from one worker.
struct TenantFinal {
    tenant: TenantId,
    requests: u64,
    covered: u64,
    issued: u64,
    expired: u64,
    health: &'static str,
}

enum FromWorker {
    Epoch(EpochAck),
    Final(Vec<TenantFinal>),
}

/// Live per-tenant state, owned by exactly one worker.
struct TenantState {
    model: TenantModel,
    /// Outstanding predictions: page → request-sequence issued at.
    predictions: BTreeMap<u64, u64>,
    seq: u64,
    requests: u64,
    covered: u64,
    issued: u64,
    expired: u64,
}

impl TenantState {
    fn fresh(model: TenantModel) -> Self {
        Self {
            model,
            predictions: BTreeMap::new(),
            seq: 0,
            requests: 0,
            covered: 0,
            issued: 0,
            expired: 0,
        }
    }

    /// Serves one demand request: settle the prediction window, then
    /// consult the model and refill it.
    fn process(&mut self, page: u64, pred: &CoverageParams) {
        self.seq += 1;
        while let Some((&p, &at)) = self
            .predictions
            .iter()
            .find(|&(_, &at)| self.seq.saturating_sub(at) > pred.horizon)
        {
            let _ = at;
            self.predictions.remove(&p);
            self.model
                .on_feedback(&PrefetchFeedback::Unused { page: p });
            self.expired += 1;
        }
        if self.predictions.remove(&page).is_some() {
            self.model.on_feedback(&PrefetchFeedback::Useful { page });
            self.covered += 1;
        }
        let miss = MissEvent {
            page,
            tick: self.seq,
            stream: 0,
        };
        for cand in self.model.on_miss(&miss) {
            if self.predictions.len() >= pred.window {
                break;
            }
            if cand != page && !self.predictions.contains_key(&cand) {
                self.predictions.insert(cand, self.seq);
                self.issued += 1;
            }
        }
        self.requests += 1;
    }
}

fn worker_loop(
    rx: Receiver<ToWorker>,
    tx: Sender<FromWorker>,
    registry: Arc<TenantRegistry>,
    factory: Arc<PrefetcherFactory>,
    pred: CoverageParams,
) {
    let mut states: BTreeMap<TenantId, TenantState> = BTreeMap::new();
    while let Ok(msg) = rx.recv() {
        match msg {
            ToWorker::Epoch(task) => {
                let mut ack = EpochAck {
                    snapshots: Vec::new(),
                    restores: Vec::new(),
                };
                // Crashes land before the epoch's batches: live state
                // (hippocampus, prediction window, health) is lost;
                // the consolidated cortex warm-starts from the blob.
                for (tenant, blob) in task.crashes {
                    states.remove(&tenant);
                    let (Some(blob), Some(spec)) = (blob, registry.get(tenant)) else {
                        continue;
                    };
                    let mut st = TenantState::fresh(factory.build(spec));
                    let ok = match decode(&blob) {
                        Ok(snap) if snap.tenant == tenant => st.model.import_net_state(&snap.state),
                        _ => false,
                    };
                    ack.restores.push((tenant, blob.len() as u64, ok));
                    states.insert(tenant, st);
                }
                for (_, batch) in task.batches {
                    for req in batch {
                        let Some(spec) = registry.get(req.tenant) else {
                            continue;
                        };
                        let st = states
                            .entry(req.tenant)
                            .or_insert_with(|| TenantState::fresh(factory.build(spec)));
                        st.process(req.page, &pred);
                    }
                }
                if task.snapshot {
                    // BTreeMap iteration: snapshots leave in tenant
                    // order within each worker.
                    for (&tenant, st) in states.iter_mut() {
                        let (Some(net), Some(spec)) =
                            (st.model.export_net_state(), registry.get(tenant))
                        else {
                            continue;
                        };
                        ack.snapshots
                            .push((tenant, encode(tenant, spec.model, &net)));
                    }
                }
                if tx.send(FromWorker::Epoch(ack)).is_err() {
                    return;
                }
            }
            ToWorker::Finish => {
                let finals = states
                    .iter()
                    .map(|(&tenant, st)| TenantFinal {
                        tenant,
                        requests: st.requests,
                        covered: st.covered,
                        issued: st.issued,
                        expired: st.expired,
                        health: st.model.health().label(),
                    })
                    .collect();
                let _ = tx.send(FromWorker::Final(finals));
                return;
            }
        }
    }
}

/// The sharded multi-tenant serving engine.
pub struct ServeEngine {
    cfg: ServeConfig,
    registry: Arc<TenantRegistry>,
    factory: Arc<PrefetcherFactory>,
}

impl ServeEngine {
    /// Builds an engine over `registry` with models built by
    /// `factory`.
    pub fn new(cfg: ServeConfig, registry: TenantRegistry, factory: PrefetcherFactory) -> Self {
        Self {
            cfg,
            registry: Arc::new(registry),
            factory: Arc::new(factory),
        }
    }

    /// The tenant control plane.
    pub fn registry(&self) -> &TenantRegistry {
        &self.registry
    }

    /// Serves `requests` to completion (every admitted request is
    /// processed; the run ends when the arrival stream and all queues
    /// are drained). Byte-deterministic in the report, the archive,
    /// and the emitted event stream for any worker count.
    pub fn run(&self, requests: &[ServeRequest]) -> ServeOutcome {
        let shards = self.cfg.shards.max(1);
        let workers = self.cfg.workers.clamp(1, shards);
        let flush = self.cfg.flush_per_shard.max(1);
        let ingest = if self.cfg.ingest_per_epoch == 0 {
            shards * flush
        } else {
            self.cfg.ingest_per_epoch
        };
        let pred = CoverageParams {
            window: self.cfg.pred_window.max(1),
            horizon: self.cfg.pred_horizon.max(1),
        };
        let obs = &self.cfg.obs;

        let mut queues: Vec<ShardQueue> = (0..shards)
            .map(|_| ShardQueue::new(self.cfg.queue_depth))
            .collect();
        let mut report = ServeReport {
            epochs: 0,
            offered: requests.len() as u64,
            admitted: 0,
            shed: 0,
            processed: 0,
            crashes: 0,
            restores: 0,
            snapshots: 0,
            tenants: Vec::new(),
            shards: Vec::new(),
        };
        let mut archive: BTreeMap<TenantId, Vec<u8>> = BTreeMap::new();
        let mut crash_plan = self.cfg.crashes.clone();
        crash_plan.sort_unstable();
        let mut tenant_crashes: BTreeMap<TenantId, u64> = BTreeMap::new();
        let mut finals: BTreeMap<TenantId, TenantFinal> = BTreeMap::new();

        thread::scope(|s| {
            let mut to_workers: Vec<Sender<ToWorker>> = Vec::with_capacity(workers);
            let mut from_workers: Vec<Receiver<FromWorker>> = Vec::with_capacity(workers);
            for _ in 0..workers {
                let (tx_t, rx_t) = channel::<ToWorker>();
                let (tx_r, rx_r) = channel::<FromWorker>();
                let registry = Arc::clone(&self.registry);
                let factory = Arc::clone(&self.factory);
                s.spawn(move || worker_loop(rx_t, tx_r, registry, factory, pred));
                to_workers.push(tx_t);
                from_workers.push(rx_r);
            }

            // Dispatches one epoch task per worker and merges the
            // shard-ordered acknowledgements into events + report.
            let run_epoch =
                |epoch: u64,
                 per_worker: Vec<EpochTask>,
                 report: &mut ServeReport,
                 archive: &mut BTreeMap<TenantId, Vec<u8>>| {
                    for (w, task) in per_worker.into_iter().enumerate() {
                        let _ = to_workers[w].send(ToWorker::Epoch(task));
                    }
                    let mut snapshots: Vec<(TenantId, Vec<u8>)> = Vec::new();
                    let mut restores: Vec<(TenantId, u64, bool)> = Vec::new();
                    for rx in &from_workers {
                        if let Ok(FromWorker::Epoch(ack)) = rx.recv() {
                            snapshots.extend(ack.snapshots);
                            restores.extend(ack.restores);
                        }
                    }
                    restores.sort_unstable_by_key(|&(t, _, _)| t);
                    for (tenant, bytes, ok) in restores {
                        if ok {
                            report.restores += 1;
                            obs.emit(&Event::Snapshot {
                                epoch,
                                tenant,
                                bytes,
                                restored: true,
                            });
                        }
                    }
                    snapshots.sort_unstable_by_key(|&(t, _)| t);
                    for (tenant, blob) in snapshots {
                        report.snapshots += 1;
                        obs.emit(&Event::Snapshot {
                            epoch,
                            tenant,
                            bytes: blob.len() as u64,
                            restored: false,
                        });
                        archive.insert(tenant, blob);
                    }
                };

            let mut cursor = CheckpointCursor::every(self.cfg.snapshot_interval);
            let mut next = 0usize;
            let mut epoch: u64 = 0;
            while next < requests.len() || queues.iter().any(|q| !q.is_empty()) {
                epoch += 1;
                // 1. Ingest this epoch's arrivals through admission.
                let end = (next + ingest).min(requests.len());
                for req in &requests[next..end] {
                    let sh = shard_of(req.tenant, shards, self.cfg.hash_seed);
                    match queues[sh].offer(*req) {
                        Offer::Enqueued(depth) => {
                            report.admitted += 1;
                            obs.emit(&Event::ServeEnqueue {
                                epoch,
                                tenant: req.tenant,
                                shard: sh as u64,
                                depth: depth as u64,
                            });
                        }
                        Offer::Shed => {
                            report.shed += 1;
                            obs.emit(&Event::ServeShed {
                                epoch,
                                tenant: req.tenant,
                                shard: sh as u64,
                            });
                        }
                    }
                }
                next = end;
                // 2. Crash directives scheduled for this epoch.
                let mut crash_now: Vec<TenantId> = Vec::new();
                crash_plan.retain(|&(e, t)| {
                    if e == epoch {
                        crash_now.push(t);
                        false
                    } else {
                        true
                    }
                });
                crash_now.sort_unstable();
                for &t in &crash_now {
                    report.crashes += 1;
                    *tenant_crashes.entry(t).or_insert(0) += 1;
                    obs.emit(&Event::Fault {
                        tick: epoch,
                        domain: shard_of(t, shards, self.cfg.hash_seed) as u64,
                        kind: FaultKind::Crash,
                    });
                }
                // 3. Flush one batch per shard and dispatch.
                let snapshot_due = cursor.due(epoch) > 0;
                let mut per_worker: Vec<EpochTask> = (0..workers)
                    .map(|_| EpochTask {
                        batches: Vec::new(),
                        crashes: Vec::new(),
                        snapshot: snapshot_due,
                    })
                    .collect();
                let mut batch_sizes = vec![0u64; shards];
                for (sh, queue) in queues.iter_mut().enumerate() {
                    let batch = queue.flush(flush);
                    batch_sizes[sh] = batch.len() as u64;
                    if !batch.is_empty() {
                        obs.emit(&Event::ServeFlush {
                            epoch,
                            shard: sh as u64,
                            batch: batch.len() as u64,
                        });
                    }
                    per_worker[sh % workers].batches.push((sh, batch));
                }
                for t in crash_now {
                    let sh = shard_of(t, shards, self.cfg.hash_seed);
                    per_worker[sh % workers]
                        .crashes
                        .push((t, archive.get(&t).cloned()));
                }
                run_epoch(epoch, per_worker, &mut report, &mut archive);
                // 4. Close the epoch per shard, in shard order.
                for (sh, queue) in queues.iter().enumerate() {
                    report.processed += batch_sizes[sh];
                    obs.emit(&Event::ShardEpoch {
                        epoch,
                        shard: sh as u64,
                        processed: batch_sizes[sh],
                        queued: queue.len() as u64,
                    });
                }
                report.epochs = epoch;
            }
            // Closing snapshot pass: one extra barrier with no
            // batches, so the archive holds every tenant's final
            // cortex for warm-starting the next run.
            if self.cfg.snapshot_interval > 0 {
                let per_worker: Vec<EpochTask> = (0..workers)
                    .map(|_| EpochTask {
                        batches: Vec::new(),
                        crashes: Vec::new(),
                        snapshot: true,
                    })
                    .collect();
                run_epoch(epoch + 1, per_worker, &mut report, &mut archive);
            }
            for tx in &to_workers {
                let _ = tx.send(ToWorker::Finish);
            }
            for rx in &from_workers {
                if let Ok(FromWorker::Final(list)) = rx.recv() {
                    for f in list {
                        finals.insert(f.tenant, f);
                    }
                }
            }
        });

        for spec in self.registry.iter() {
            let sh = shard_of(spec.id, shards, self.cfg.hash_seed) as u64;
            let (requests, covered, issued, expired, health) = match finals.get(&spec.id) {
                Some(f) => (f.requests, f.covered, f.issued, f.expired, f.health),
                None => (0, 0, 0, 0, "healthy"),
            };
            report.tenants.push(TenantReport {
                tenant: spec.id,
                shard: sh,
                model: spec.model.label().to_string(),
                requests,
                covered,
                issued,
                expired,
                health: health.to_string(),
                crashes: tenant_crashes.get(&spec.id).copied().unwrap_or(0),
            });
        }
        for (sh, queue) in queues.iter().enumerate() {
            let s = queue.stats();
            report.shards.push(ShardReport {
                shard: sh as u64,
                enqueued: s.enqueued,
                shed: s.shed,
                flushed: s.flushed,
            });
        }
        ServeOutcome { report, archive }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tenant::{ModelKind, TenantSpec};
    use crate::workload::synthesize;
    use hnp_trace::apps::AppWorkload;

    fn small_registry() -> TenantRegistry {
        let mut reg = TenantRegistry::new();
        let kinds = [ModelKind::Hebbian, ModelKind::Stride, ModelKind::Markov];
        let loads = [
            AppWorkload::McfLike,
            AppWorkload::KvStoreLike,
            AppWorkload::TensorFlowLike,
        ];
        for id in 0..6u64 {
            reg.register(TenantSpec {
                id,
                model: kinds[id as usize % kinds.len()],
                workload: loads[id as usize % loads.len()],
                seed: 900 + id,
            });
        }
        reg
    }

    #[test]
    fn serves_every_admitted_request() {
        let reg = small_registry();
        let requests = synthesize(&reg, 200, 3);
        let engine = ServeEngine::new(ServeConfig::default(), reg, PrefetcherFactory::new());
        let out = engine.run(&requests);
        let r = &out.report;
        assert_eq!(r.offered, requests.len() as u64);
        assert_eq!(r.admitted + r.shed, r.offered);
        assert_eq!(r.processed, r.admitted, "queues fully drained");
        assert!(r.epochs > 0);
        let tenant_sum: u64 = r.tenants.iter().map(|t| t.requests).sum();
        assert_eq!(tenant_sum, r.processed);
    }

    #[test]
    fn snapshot_interval_populates_archive() {
        let reg = small_registry();
        let requests = synthesize(&reg, 150, 3);
        let cfg = ServeConfig::default().with_snapshot_interval(4);
        let engine = ServeEngine::new(cfg, reg, PrefetcherFactory::new());
        let out = engine.run(&requests);
        // Hebbian-family tenants (ids 0 and 3) snapshot; baselines
        // do not.
        let ids: Vec<TenantId> = out.archive.keys().copied().collect();
        assert_eq!(ids, vec![0, 3]);
        assert!(out.report.snapshots >= 2);
        for blob in out.archive.values() {
            assert!(crate::snapshot::decode(blob).is_ok());
        }
    }

    #[test]
    fn crash_without_snapshot_rebuilds_cold() {
        let reg = small_registry();
        let requests = synthesize(&reg, 100, 3);
        let cfg = ServeConfig::default().with_crash(2, 0).with_crash(3, 1);
        let engine = ServeEngine::new(cfg, reg, PrefetcherFactory::new());
        let out = engine.run(&requests);
        assert_eq!(out.report.crashes, 2);
        assert_eq!(out.report.restores, 0, "no snapshots to warm-start from");
        let t0 = &out.report.tenants[0];
        assert_eq!(t0.crashes, 1);
    }

    #[test]
    fn crash_after_snapshot_warm_starts() {
        let reg = small_registry();
        let requests = synthesize(&reg, 200, 3);
        let cfg = ServeConfig::default()
            .with_snapshot_interval(2)
            .with_crash(5, 0);
        let engine = ServeEngine::new(cfg, reg, PrefetcherFactory::new());
        let out = engine.run(&requests);
        assert_eq!(out.report.crashes, 1);
        assert_eq!(
            out.report.restores, 1,
            "tenant 0 restores from epoch-4 snapshot"
        );
    }

    #[test]
    fn worker_count_does_not_change_the_outcome() {
        let reg = small_registry();
        let requests = synthesize(&reg, 120, 9);
        let run = |workers: usize| {
            let cfg = ServeConfig::default()
                .with_workers(workers)
                .with_snapshot_interval(3)
                .with_crash(4, 3);
            let engine = ServeEngine::new(cfg, small_registry(), PrefetcherFactory::new());
            engine.run(&requests)
        };
        let _ = reg;
        let base = run(1);
        for workers in [2, 4] {
            let other = run(workers);
            assert_eq!(other.report, base.report, "workers={workers}");
            assert_eq!(other.archive, base.archive, "workers={workers}");
        }
    }
}
