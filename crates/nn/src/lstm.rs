//! An LSTM sequence model for next-delta prediction.
//!
//! This is the paper's deep-learning baseline (§2.1): an embedding
//! table feeding a single LSTM cell feeding a linear projection over
//! the delta vocabulary, trained online with softmax cross-entropy.
//! It mirrors the "compressed to ~1 MB / ~170 k parameters" deployment
//! model the paper measures in Fig. 2 and Table 2.
//!
//! Gate layout in all `4H`-row weight matrices is `[i, f, g, o]`
//! (input, forget, candidate, output).

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::activations::{
    argmax, sigmoid, sigmoid_deriv_from_output, tanh, tanh_deriv_from_output, top_k,
};
use crate::embedding::Embedding;
use crate::init;
use crate::loss::{softmax_cross_entropy, softmax_cross_entropy_grad, SoftmaxLoss};
use crate::matrix::Matrix;
use crate::ops::OpCounts;
use crate::parallel::ThreadSlicer;

/// Hyper-parameters of the LSTM prefetch model.
#[derive(Debug, Clone)]
pub struct LstmConfig {
    /// Delta-vocabulary size (number of output classes).
    pub vocab: usize,
    /// Embedding dimension.
    pub embed_dim: usize,
    /// Hidden-state width.
    pub hidden: usize,
    /// Learning rate for online SGD.
    pub learning_rate: f32,
    /// Per-element gradient clip.
    pub grad_clip: f32,
    /// Worker threads used in forward matrix-vector products (Fig. 2's
    /// one-vs-two-thread comparison). `1` means fully sequential.
    pub threads: usize,
    /// RNG seed for weight initialization.
    pub seed: u64,
}

impl Default for LstmConfig {
    fn default() -> Self {
        Self {
            vocab: 512,
            embed_dim: 64,
            hidden: 128,
            learning_rate: 0.05,
            grad_clip: 1.0,
            threads: 1,
            seed: 0x5eed,
        }
    }
}

impl LstmConfig {
    /// Configuration matching the paper's Table-2 row (~170 k
    /// parameters): vocab 500, embedding 50, hidden 128.
    pub fn paper_table2() -> Self {
        Self {
            vocab: 500,
            embed_dim: 50,
            hidden: 128,
            ..Self::default()
        }
    }

    /// A small configuration for unit tests.
    pub fn tiny() -> Self {
        Self {
            vocab: 12,
            embed_dim: 6,
            hidden: 10,
            learning_rate: 0.1,
            ..Self::default()
        }
    }
}

/// Cached per-timestep activations needed by the backward pass.
#[derive(Clone)]
struct StepCache {
    token: usize,
    h_prev: Vec<f32>,
    c_prev: Vec<f32>,
    i: Vec<f32>,
    f: Vec<f32>,
    g: Vec<f32>,
    o: Vec<f32>,
    c: Vec<f32>,
    tanh_c: Vec<f32>,
    h: Vec<f32>,
}

/// The recurrent state carried between online steps.
#[derive(Debug, Clone, PartialEq)]
pub struct LstmState {
    /// Hidden activation `h`.
    pub h: Vec<f32>,
    /// Cell state `c`.
    pub c: Vec<f32>,
}

impl LstmState {
    /// All-zero state of width `hidden`.
    pub fn zeros(hidden: usize) -> Self {
        Self {
            h: vec![0.0; hidden],
            c: vec![0.0; hidden],
        }
    }
}

/// The LSTM prefetch network: embedding -> LSTM cell -> projection.
pub struct LstmNetwork {
    cfg: LstmConfig,
    embedding: Embedding,
    /// Input weights, `4H x E`.
    w_x: Matrix,
    /// Recurrent weights, `4H x H`.
    w_h: Matrix,
    /// Gate biases, length `4H`.
    b: Vec<f32>,
    /// Output projection, `V x H`.
    w_out: Matrix,
    /// Output biases, length `V`.
    b_out: Vec<f32>,
    // Gradient accumulators, mirroring the parameters above.
    gw_x: Matrix,
    gw_h: Matrix,
    gb: Vec<f32>,
    gw_out: Matrix,
    gb_out: Vec<f32>,
    /// Online recurrent state carried between `train_step` calls.
    state: LstmState,
    slicer: ThreadSlicer,
}

impl LstmNetwork {
    /// Builds a network from `cfg`, initializing weights from
    /// `cfg.seed`.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero or `threads == 0`.
    pub fn new(cfg: LstmConfig) -> Self {
        assert!(cfg.vocab > 0 && cfg.embed_dim > 0 && cfg.hidden > 0);
        assert!(cfg.threads > 0, "threads must be >= 1");
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let h = cfg.hidden;
        let embedding = Embedding::new(cfg.vocab, cfg.embed_dim, &mut rng);
        let w_x = init::xavier_uniform(4 * h, cfg.embed_dim, &mut rng);
        let w_h = init::xavier_uniform(4 * h, h, &mut rng);
        // Forget-gate bias starts at 1.0, the standard trick that keeps
        // early cell states alive.
        let mut b = vec![0.0; 4 * h];
        for v in &mut b[h..2 * h] {
            *v = 1.0;
        }
        let w_out = init::xavier_uniform(cfg.vocab, h, &mut rng);
        let b_out = vec![0.0; cfg.vocab];
        Self {
            gw_x: Matrix::zeros(4 * h, cfg.embed_dim),
            gw_h: Matrix::zeros(4 * h, h),
            gb: vec![0.0; 4 * h],
            gw_out: Matrix::zeros(cfg.vocab, h),
            gb_out: vec![0.0; cfg.vocab],
            state: LstmState::zeros(h),
            slicer: ThreadSlicer::new(cfg.threads),
            embedding,
            w_x,
            w_h,
            b,
            w_out,
            b_out,
            cfg,
        }
    }

    /// The configuration this network was built from.
    pub fn config(&self) -> &LstmConfig {
        &self.cfg
    }

    /// Total learned parameter count (embedding + cell + projection).
    pub fn param_count(&self) -> usize {
        self.embedding.param_count()
            + self.w_x.len()
            + self.w_h.len()
            + self.b.len()
            + self.w_out.len()
            + self.b_out.len()
    }

    /// Exact multiply-accumulate/elementwise operation counts, used to
    /// regenerate Table 2.
    pub fn op_counts(&self) -> OpCounts {
        OpCounts::lstm(self.cfg.vocab, self.cfg.embed_dim, self.cfg.hidden)
    }

    /// Resets the online recurrent state to zeros.
    pub fn reset_state(&mut self) {
        self.state = LstmState::zeros(self.cfg.hidden);
    }

    /// A copy of the current online recurrent state.
    pub fn state(&self) -> LstmState {
        self.state.clone()
    }

    /// Overwrites the online recurrent state.
    ///
    /// # Panics
    ///
    /// Panics if the state width does not match `hidden`.
    pub fn set_state(&mut self, state: LstmState) {
        assert_eq!(state.h.len(), self.cfg.hidden, "state width mismatch");
        assert_eq!(state.c.len(), self.cfg.hidden, "state width mismatch");
        self.state = state;
    }

    /// One LSTM cell evaluation from `(h_prev, c_prev)` consuming
    /// `token`; returns the cache needed for backward.
    fn cell_forward(&self, token: usize, h_prev: &[f32], c_prev: &[f32]) -> StepCache {
        let h = self.cfg.hidden;
        let x = self.embedding.lookup(token);
        let mut z = self.b.clone();
        self.slicer.matvec_acc(&self.w_x, x, &mut z);
        self.slicer.matvec_acc(&self.w_h, h_prev, &mut z);
        let mut i = vec![0.0; h];
        let mut f = vec![0.0; h];
        let mut g = vec![0.0; h];
        let mut o = vec![0.0; h];
        for j in 0..h {
            i[j] = sigmoid(z[j]);
            f[j] = sigmoid(z[h + j]);
            g[j] = tanh(z[2 * h + j]);
            o[j] = sigmoid(z[3 * h + j]);
        }
        let mut c = vec![0.0; h];
        let mut tanh_c = vec![0.0; h];
        let mut h_new = vec![0.0; h];
        for j in 0..h {
            c[j] = f[j] * c_prev[j] + i[j] * g[j];
            tanh_c[j] = tanh(c[j]);
            h_new[j] = o[j] * tanh_c[j];
        }
        StepCache {
            token,
            h_prev: h_prev.to_vec(),
            c_prev: c_prev.to_vec(),
            i,
            f,
            g,
            o,
            c,
            tanh_c,
            h: h_new,
        }
    }

    /// Projects a hidden state to logits over the vocabulary.
    fn project(&self, h: &[f32]) -> Vec<f32> {
        let mut logits = self.b_out.clone();
        self.slicer.matvec_acc(&self.w_out, h, &mut logits);
        logits
    }

    /// Runs inference from the current online state without mutating
    /// it, returning the post-softmax distribution over the next token.
    pub fn infer(&self, token: usize) -> Vec<f32> {
        let cache = self.cell_forward(token, &self.state.h, &self.state.c);
        let mut logits = self.project(&cache.h);
        crate::activations::softmax_in_place(&mut logits);
        logits
    }

    /// Advances the online state by consuming `token` and returns the
    /// probability distribution over the next token.
    pub fn infer_advance(&mut self, token: usize) -> Vec<f32> {
        let cache = self.cell_forward(token, &self.state.h, &self.state.c);
        self.state.h = cache.h.clone();
        self.state.c = cache.c.clone();
        let mut logits = self.project(&cache.h);
        crate::activations::softmax_in_place(&mut logits);
        logits
    }

    /// Multi-step rollout: starting from the current online state,
    /// consumes `token` and then autoregressively feeds back its own
    /// argmax prediction, producing `steps` future-token predictions.
    ///
    /// This is the "number of future predictions" axis of Fig. 2; the
    /// cost is inherently sequential, one cell evaluation per step.
    pub fn rollout(&self, token: usize, steps: usize) -> Vec<usize> {
        let mut preds = Vec::with_capacity(steps);
        let mut h = self.state.h.clone();
        let mut c = self.state.c.clone();
        let mut tok = token;
        for _ in 0..steps {
            let cache = self.cell_forward(tok, &h, &c);
            let logits = self.project(&cache.h);
            let Some(p) = argmax(&logits) else { break };
            preds.push(p);
            h = cache.h;
            c = cache.c;
            tok = p;
        }
        preds
    }

    /// Like [`rollout`](Self::rollout) but returns the `width` most
    /// probable tokens at each step (feeding back the top-1).
    pub fn rollout_top_k(&self, token: usize, steps: usize, width: usize) -> Vec<Vec<usize>> {
        self.rollout_top_k_with_confidence(token, steps, width).0
    }

    /// [`rollout_top_k`](Self::rollout_top_k) that also reports the
    /// softmax probability of the first step's top prediction, for
    /// confidence-gated issuing (§5.2).
    pub fn rollout_top_k_with_confidence(
        &self,
        token: usize,
        steps: usize,
        width: usize,
    ) -> (Vec<Vec<usize>>, f32) {
        let mut preds = Vec::with_capacity(steps);
        let mut h = self.state.h.clone();
        let mut c = self.state.c.clone();
        let mut tok = token;
        let mut first_conf = 0.0;
        for step in 0..steps {
            let cache = self.cell_forward(tok, &h, &c);
            let logits = self.project(&cache.h);
            let ks = top_k(&logits, width);
            let Some(&first) = ks.first() else { break };
            tok = first;
            if step == 0 {
                let mut probs = logits.clone();
                crate::activations::softmax_in_place(&mut probs);
                first_conf = probs[tok];
            }
            preds.push(ks);
            h = cache.h;
            c = cache.c;
        }
        (preds, first_conf)
    }

    /// One online training step: consume `token`, predict, compute the
    /// loss against `target`, backpropagate (truncated at this step:
    /// the carried state is treated as constant), and apply SGD.
    ///
    /// Returns the loss/confidence of the pre-update prediction.
    pub fn train_step(&mut self, token: usize, target: usize) -> SoftmaxLoss {
        self.train_step_lr(token, target, self.cfg.learning_rate)
    }

    /// [`train_step`](Self::train_step) with an explicit learning rate;
    /// the replay path uses this to apply the paper's 0.1x replay rate.
    pub fn train_step_lr(&mut self, token: usize, target: usize, lr: f32) -> SoftmaxLoss {
        let cache = self.cell_forward(token, &self.state.h, &self.state.c);
        let logits = self.project(&cache.h);
        let loss = softmax_cross_entropy(&logits, target);
        let dlogits = softmax_cross_entropy_grad(&loss.probs, target);
        self.backward_through(std::slice::from_ref(&cache), &dlogits);
        self.apply_grads(lr);
        self.state.h = cache.h;
        self.state.c = cache.c;
        loss
    }

    /// Trains on a history window with full BPTT: consumes
    /// `tokens[0..n]` from a zero state and fits `target` at the final
    /// step. Does not disturb the online state.
    ///
    /// # Panics
    ///
    /// Panics if `tokens` is empty.
    pub fn train_window(&mut self, tokens: &[usize], target: usize, lr: f32) -> SoftmaxLoss {
        assert!(!tokens.is_empty(), "empty training window");
        let mut caches = Vec::with_capacity(tokens.len());
        let mut h = vec![0.0; self.cfg.hidden];
        let mut c = vec![0.0; self.cfg.hidden];
        for &t in tokens {
            let cache = self.cell_forward(t, &h, &c);
            h = cache.h.clone();
            c = cache.c.clone();
            caches.push(cache);
        }
        let logits = self.project(&h);
        let loss = softmax_cross_entropy(&logits, target);
        let dlogits = softmax_cross_entropy_grad(&loss.probs, target);
        self.backward_through(&caches, &dlogits);
        self.apply_grads(lr);
        loss
    }

    /// Accumulates gradients for a batch of `(window, target)` examples
    /// and applies one averaged update — the "training batch size" axis
    /// of Fig. 2. Returns the mean loss.
    pub fn train_batch(&mut self, examples: &[(Vec<usize>, usize)], lr: f32) -> f32 {
        if examples.is_empty() {
            return 0.0;
        }
        let mut total = 0.0;
        for (tokens, target) in examples {
            assert!(!tokens.is_empty(), "empty training window");
            let mut caches = Vec::with_capacity(tokens.len());
            let mut h = vec![0.0; self.cfg.hidden];
            let mut c = vec![0.0; self.cfg.hidden];
            for &t in tokens {
                let cache = self.cell_forward(t, &h, &c);
                h = cache.h.clone();
                c = cache.c.clone();
                caches.push(cache);
            }
            let logits = self.project(&h);
            let loss = softmax_cross_entropy(&logits, *target);
            total += loss.loss;
            let dlogits = softmax_cross_entropy_grad(&loss.probs, *target);
            self.backward_through(&caches, &dlogits);
        }
        self.apply_grads(lr / examples.len() as f32);
        total / examples.len() as f32
    }

    /// [`train_batch`](Self::train_batch) with fused batched matrix
    /// products: all examples are advanced through the cell together,
    /// one `B x *` matmul per gate product instead of `B` separate
    /// matrix-vector products. Requires equal window lengths (falls
    /// back to the per-example path otherwise). Gradients are
    /// mathematically identical to [`train_batch`](Self::train_batch)
    /// up to floating-point summation order.
    pub fn train_batch_fused(&mut self, examples: &[(Vec<usize>, usize)], lr: f32) -> f32 {
        let Some(first) = examples.first() else {
            return 0.0;
        };
        let t_len = first.0.len();
        assert!(t_len > 0, "empty training window");
        if examples.iter().any(|(w, _)| w.len() != t_len) {
            return self.train_batch(examples, lr);
        }
        let b = examples.len();
        let hdim = self.cfg.hidden;
        let edim = self.cfg.embed_dim;
        // Transposed weights for row-major batched products.
        let wx_t = self.w_x.transpose(); // E x 4H
        let wh_t = self.w_h.transpose(); // H x 4H
        let wout_t = self.w_out.transpose(); // H x V
                                             // Forward.
        let mut h = Matrix::zeros(b, hdim);
        let mut c = Matrix::zeros(b, hdim);
        struct BatchStep {
            x: Matrix,
            h_prev: Matrix,
            c_prev: Matrix,
            i: Matrix,
            f: Matrix,
            g: Matrix,
            o: Matrix,
            tanh_c: Matrix,
        }
        let mut steps: Vec<BatchStep> = Vec::with_capacity(t_len);
        for t in 0..t_len {
            let mut x = Matrix::zeros(b, edim);
            for (r, (tokens, _)) in examples.iter().enumerate() {
                x.row_mut(r)
                    .copy_from_slice(self.embedding.lookup(tokens[t]));
            }
            let mut z = x.matmul(&wx_t);
            z.add_assign(&h.matmul(&wh_t));
            for r in 0..b {
                let row = z.row_mut(r);
                for (v, &bias) in row.iter_mut().zip(self.b.iter()) {
                    *v += bias;
                }
            }
            let mut gi = Matrix::zeros(b, hdim);
            let mut gf = Matrix::zeros(b, hdim);
            let mut gg = Matrix::zeros(b, hdim);
            let mut go = Matrix::zeros(b, hdim);
            let mut c_new = Matrix::zeros(b, hdim);
            let mut tanh_c = Matrix::zeros(b, hdim);
            let mut h_new = Matrix::zeros(b, hdim);
            for r in 0..b {
                for j in 0..hdim {
                    let iv = sigmoid(z[(r, j)]);
                    let fv = sigmoid(z[(r, hdim + j)]);
                    let gv = tanh(z[(r, 2 * hdim + j)]);
                    let ov = sigmoid(z[(r, 3 * hdim + j)]);
                    let cv = fv * c[(r, j)] + iv * gv;
                    gi[(r, j)] = iv;
                    gf[(r, j)] = fv;
                    gg[(r, j)] = gv;
                    go[(r, j)] = ov;
                    c_new[(r, j)] = cv;
                    tanh_c[(r, j)] = tanh(cv);
                    h_new[(r, j)] = ov * tanh_c[(r, j)];
                }
            }
            steps.push(BatchStep {
                x,
                h_prev: h,
                c_prev: c,
                i: gi,
                f: gf,
                g: gg,
                o: go,
                tanh_c,
            });
            h = h_new;
            c = c_new;
        }
        // Projection + loss.
        let mut logits = h.matmul(&wout_t); // B x V
        let mut total = 0.0;
        let mut dlogits = Matrix::zeros(b, self.cfg.vocab);
        for (r, (_, target)) in examples.iter().enumerate() {
            let row = logits.row_mut(r);
            for (v, &bias) in row.iter_mut().zip(self.b_out.iter()) {
                *v += bias;
            }
            let loss = softmax_cross_entropy(row, *target);
            total += loss.loss;
            let g = softmax_cross_entropy_grad(&loss.probs, *target);
            dlogits.row_mut(r).copy_from_slice(&g);
        }
        // Backward: projection.
        let dlogits_t = dlogits.transpose();
        self.gw_out.add_assign(&dlogits_t.matmul(&h)); // V x H
        for r in 0..b {
            for (gbo, &d) in self.gb_out.iter_mut().zip(dlogits.row(r).iter()) {
                *gbo += d;
            }
        }
        let mut dh = dlogits.matmul(&self.w_out); // B x H
        let mut dc = Matrix::zeros(b, hdim);
        for (t, step) in steps.iter().enumerate().rev() {
            let mut dz = Matrix::zeros(b, 4 * hdim);
            for r in 0..b {
                for j in 0..hdim {
                    let do_ = dh[(r, j)] * step.tanh_c[(r, j)];
                    let dc_j = dc[(r, j)]
                        + dh[(r, j)] * step.o[(r, j)] * tanh_deriv_from_output(step.tanh_c[(r, j)]);
                    let di = dc_j * step.g[(r, j)];
                    let df = dc_j * step.c_prev[(r, j)];
                    let dg = dc_j * step.i[(r, j)];
                    dz[(r, j)] = di * sigmoid_deriv_from_output(step.i[(r, j)]);
                    dz[(r, hdim + j)] = df * sigmoid_deriv_from_output(step.f[(r, j)]);
                    dz[(r, 2 * hdim + j)] = dg * tanh_deriv_from_output(step.g[(r, j)]);
                    dz[(r, 3 * hdim + j)] = do_ * sigmoid_deriv_from_output(step.o[(r, j)]);
                    dc[(r, j)] = dc_j * step.f[(r, j)];
                }
            }
            let dz_t = dz.transpose(); // 4H x B
            self.gw_x.add_assign(&dz_t.matmul(&step.x)); // 4H x E
            self.gw_h.add_assign(&dz_t.matmul(&step.h_prev)); // 4H x H
            for r in 0..b {
                for (gb, &d) in self.gb.iter_mut().zip(dz.row(r).iter()) {
                    *gb += d;
                }
            }
            let dx = dz.matmul(&self.w_x); // B x E
            for (r, (tokens, _)) in examples.iter().enumerate() {
                self.embedding.accumulate_grad(tokens[t], dx.row(r));
            }
            dh = dz.matmul(&self.w_h); // B x H
        }
        self.apply_grads(lr / b as f32);
        total / b as f32
    }

    /// Evaluates confidence (probability assigned to `target`) on a
    /// window without learning or disturbing the online state.
    pub fn eval_window(&self, tokens: &[usize], target: usize) -> SoftmaxLoss {
        assert!(!tokens.is_empty(), "empty evaluation window");
        let mut h = vec![0.0; self.cfg.hidden];
        let mut c = vec![0.0; self.cfg.hidden];
        for &t in tokens {
            let cache = self.cell_forward(t, &h, &c);
            h = cache.h;
            c = cache.c;
        }
        let logits = self.project(&h);
        softmax_cross_entropy(&logits, target)
    }

    /// Backpropagates `dlogits` (at the final step) through the cached
    /// steps, accumulating parameter gradients.
    fn backward_through(&mut self, caches: &[StepCache], dlogits: &[f32]) {
        let hdim = self.cfg.hidden;
        let Some(last) = caches.last() else { return };
        // Projection layer.
        self.gw_out.rank1_acc(1.0, dlogits, &last.h);
        for (g, &d) in self.gb_out.iter_mut().zip(dlogits.iter()) {
            *g += d;
        }
        let mut dh = vec![0.0; hdim];
        self.w_out.matvec_t_acc(dlogits, &mut dh);
        let mut dc = vec![0.0; hdim];
        // Walk the steps backwards.
        for cache in caches.iter().rev() {
            let mut dz = vec![0.0; 4 * hdim];
            for j in 0..hdim {
                let do_ = dh[j] * cache.tanh_c[j];
                let dc_j = dc[j] + dh[j] * cache.o[j] * tanh_deriv_from_output(cache.tanh_c[j]);
                let di = dc_j * cache.g[j];
                let df = dc_j * cache.c_prev[j];
                let dg = dc_j * cache.i[j];
                dz[j] = di * sigmoid_deriv_from_output(cache.i[j]);
                dz[hdim + j] = df * sigmoid_deriv_from_output(cache.f[j]);
                dz[2 * hdim + j] = dg * tanh_deriv_from_output(cache.g[j]);
                dz[3 * hdim + j] = do_ * sigmoid_deriv_from_output(cache.o[j]);
                // Carry dc to the previous step.
                dc[j] = dc_j * cache.f[j];
            }
            let x = self.embedding.lookup(cache.token).to_vec();
            self.gw_x.rank1_acc(1.0, &dz, &x);
            self.gw_h.rank1_acc(1.0, &dz, &cache.h_prev);
            for (g, &d) in self.gb.iter_mut().zip(dz.iter()) {
                *g += d;
            }
            let mut dx = vec![0.0; self.cfg.embed_dim];
            self.w_x.matvec_t_acc(&dz, &mut dx);
            self.embedding.accumulate_grad(cache.token, &dx);
            dh = vec![0.0; hdim];
            self.w_h.matvec_t_acc(&dz, &mut dh);
        }
    }

    /// Applies and clears accumulated gradients with per-element
    /// clipping.
    fn apply_grads(&mut self, lr: f32) {
        let clip = self.cfg.grad_clip;
        self.gw_x.clip(clip);
        self.gw_h.clip(clip);
        self.gw_out.clip(clip);
        self.w_x.axpy(-lr, &self.gw_x);
        self.w_h.axpy(-lr, &self.gw_h);
        self.w_out.axpy(-lr, &self.gw_out);
        for (w, g) in self.b.iter_mut().zip(self.gb.iter()) {
            *w -= lr * g.clamp(-clip, clip);
        }
        for (w, g) in self.b_out.iter_mut().zip(self.gb_out.iter()) {
            *w -= lr * g.clamp(-clip, clip);
        }
        self.gw_x.fill_zero();
        self.gw_h.fill_zero();
        self.gw_out.fill_zero();
        self.gb.iter_mut().for_each(|g| *g = 0.0);
        self.gb_out.iter_mut().for_each(|g| *g = 0.0);
    }

    /// Read-only access to the weight tensors, in the order
    /// `(embedding, w_x, w_h, b, w_out, b_out)`. Used by quantization.
    pub fn tensors(&self) -> (&Embedding, &Matrix, &Matrix, &[f32], &Matrix, &[f32]) {
        (
            &self.embedding,
            &self.w_x,
            &self.w_h,
            &self.b,
            &self.w_out,
            &self.b_out,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Trains the network on a deterministic cyclic token sequence and
    /// expects near-perfect next-token confidence.
    #[test]
    fn learns_a_cycle_online() {
        let mut net = LstmNetwork::new(LstmConfig::tiny());
        let cycle = [1usize, 4, 2, 7, 5, 3];
        let mut last_conf = 0.0;
        for epoch in 0..300 {
            for w in 0..cycle.len() {
                let token = cycle[w];
                let target = cycle[(w + 1) % cycle.len()];
                let l = net.train_step(token, target);
                if epoch > 250 {
                    last_conf = l.confidence;
                }
            }
        }
        assert!(
            last_conf > 0.9,
            "expected high confidence after training, got {last_conf}"
        );
    }

    #[test]
    fn rollout_reproduces_learned_cycle() {
        let mut net = LstmNetwork::new(LstmConfig::tiny());
        let cycle = [1usize, 4, 2, 7];
        for _ in 0..400 {
            for w in 0..cycle.len() {
                net.train_step(cycle[w], cycle[(w + 1) % cycle.len()]);
            }
        }
        // Warm the state on most of a cycle, then roll out.
        for &t in &cycle[..3] {
            net.infer_advance(t);
        }
        let preds = net.rollout(cycle[3], 4);
        assert_eq!(preds, vec![1, 4, 2, 7]);
    }

    /// Finite-difference gradient check on every tensor through a
    /// 3-step BPTT window.
    #[test]
    fn gradients_match_finite_differences() {
        let cfg = LstmConfig {
            vocab: 6,
            embed_dim: 4,
            hidden: 5,
            learning_rate: 0.0,
            grad_clip: 1e9,
            threads: 1,
            seed: 42,
        };
        let tokens = vec![1usize, 3, 2];
        let target = 4usize;

        // Analytic gradients.
        let mut net = LstmNetwork::new(cfg.clone());
        let mut caches = Vec::new();
        let mut h = vec![0.0; cfg.hidden];
        let mut c = vec![0.0; cfg.hidden];
        for &t in &tokens {
            let cache = net.cell_forward(t, &h, &c);
            h = cache.h.clone();
            c = cache.c.clone();
            caches.push(cache);
        }
        let logits = net.project(&h);
        let loss = softmax_cross_entropy(&logits, target);
        let dlogits = softmax_cross_entropy_grad(&loss.probs, target);
        net.backward_through(&caches, &dlogits);
        let gw_x = net.gw_x.clone();
        let gw_h = net.gw_h.clone();
        let gw_out = net.gw_out.clone();
        let gb = net.gb.clone();

        let eval = |net: &LstmNetwork| -> f32 {
            let mut h = vec![0.0; cfg.hidden];
            let mut c = vec![0.0; cfg.hidden];
            for &t in &tokens {
                let cache = net.cell_forward(t, &h, &c);
                h = cache.h;
                c = cache.c;
            }
            softmax_cross_entropy(&net.project(&h), target).loss
        };

        let eps = 1e-3;
        // Spot-check a spread of coordinates in each tensor.
        for &(r, cidx) in &[(0usize, 0usize), (3, 2), (10, 1), (19, 3)] {
            let mut plus = LstmNetwork::new(cfg.clone());
            plus.w_x[(r, cidx)] += eps;
            let mut minus = LstmNetwork::new(cfg.clone());
            minus.w_x[(r, cidx)] -= eps;
            let numeric = (eval(&plus) - eval(&minus)) / (2.0 * eps);
            assert!(
                (gw_x[(r, cidx)] - numeric).abs() < 2e-2,
                "w_x({r},{cidx}): analytic {} vs numeric {}",
                gw_x[(r, cidx)],
                numeric
            );
        }
        for &(r, cidx) in &[(0usize, 0usize), (7, 4), (15, 2)] {
            let mut plus = LstmNetwork::new(cfg.clone());
            plus.w_h[(r, cidx)] += eps;
            let mut minus = LstmNetwork::new(cfg.clone());
            minus.w_h[(r, cidx)] -= eps;
            let numeric = (eval(&plus) - eval(&minus)) / (2.0 * eps);
            assert!(
                (gw_h[(r, cidx)] - numeric).abs() < 2e-2,
                "w_h({r},{cidx}): analytic {} vs numeric {}",
                gw_h[(r, cidx)],
                numeric
            );
        }
        for &(r, cidx) in &[(0usize, 0usize), (4, 3), (5, 1)] {
            let mut plus = LstmNetwork::new(cfg.clone());
            plus.w_out[(r, cidx)] += eps;
            let mut minus = LstmNetwork::new(cfg.clone());
            minus.w_out[(r, cidx)] -= eps;
            let numeric = (eval(&plus) - eval(&minus)) / (2.0 * eps);
            assert!(
                (gw_out[(r, cidx)] - numeric).abs() < 2e-2,
                "w_out({r},{cidx}): analytic {} vs numeric {}",
                gw_out[(r, cidx)],
                numeric
            );
        }
        for &j in &[0usize, 6, 12, 19] {
            let mut plus = LstmNetwork::new(cfg.clone());
            plus.b[j] += eps;
            let mut minus = LstmNetwork::new(cfg.clone());
            minus.b[j] -= eps;
            let numeric = (eval(&plus) - eval(&minus)) / (2.0 * eps);
            assert!(
                (gb[j] - numeric).abs() < 2e-2,
                "b({j}): analytic {} vs numeric {}",
                gb[j],
                numeric
            );
        }
    }

    #[test]
    fn param_count_matches_formula() {
        let cfg = LstmConfig::paper_table2();
        let net = LstmNetwork::new(cfg.clone());
        let expect = cfg.vocab * cfg.embed_dim
            + 4 * cfg.hidden * (cfg.embed_dim + cfg.hidden + 1)
            + cfg.vocab * cfg.hidden
            + cfg.vocab;
        assert_eq!(net.param_count(), expect);
        // The paper's Table 2 lists ~170 k parameters.
        assert!(
            (150_000..220_000).contains(&net.param_count()),
            "paper-scale model should be ~170k params, got {}",
            net.param_count()
        );
    }

    #[test]
    fn infer_does_not_mutate_state_but_infer_advance_does() {
        let mut net = LstmNetwork::new(LstmConfig::tiny());
        let s0 = net.state();
        let _ = net.infer(3);
        assert_eq!(net.state(), s0);
        let _ = net.infer_advance(3);
        assert_ne!(net.state(), s0);
    }

    #[test]
    fn two_thread_forward_matches_single_thread() {
        let mut cfg = LstmConfig::tiny();
        cfg.threads = 2;
        let net2 = LstmNetwork::new(cfg);
        let net1 = LstmNetwork::new(LstmConfig::tiny());
        let p1 = net1.infer(5);
        let p2 = net2.infer(5);
        for (a, b) in p1.iter().zip(p2.iter()) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn batch_training_reduces_loss() {
        let mut net = LstmNetwork::new(LstmConfig::tiny());
        let examples: Vec<(Vec<usize>, usize)> = (0..8)
            .map(|i| (vec![i % 4, (i + 1) % 4], (i + 2) % 4))
            .collect();
        let first = net.train_batch(&examples, 0.2);
        let mut last = first;
        for _ in 0..200 {
            last = net.train_batch(&examples, 0.2);
        }
        assert!(last < first * 0.5, "batch loss {first} -> {last}");
    }

    #[test]
    fn fused_batch_matches_per_example_batch() {
        let examples: Vec<(Vec<usize>, usize)> = (0..6)
            .map(|i| (vec![i % 4, (i + 1) % 4, (i + 2) % 4], (i + 3) % 4))
            .collect();
        let mut loop_net = LstmNetwork::new(LstmConfig::tiny());
        let mut fused_net = LstmNetwork::new(LstmConfig::tiny());
        for _ in 0..20 {
            let a = loop_net.train_batch(&examples, 0.1);
            let b = fused_net.train_batch_fused(&examples, 0.1);
            assert!((a - b).abs() < 1e-3, "losses {a} vs {b}");
        }
        // After 20 identical updates, evaluations agree closely.
        for (w, t) in &examples {
            let la = loop_net.eval_window(w, *t).confidence;
            let lb = fused_net.eval_window(w, *t).confidence;
            assert!((la - lb).abs() < 1e-2, "{la} vs {lb}");
        }
    }

    #[test]
    fn fused_batch_falls_back_on_ragged_windows() {
        let mut net = LstmNetwork::new(LstmConfig::tiny());
        let examples = vec![(vec![1usize, 2], 3usize), (vec![1], 2)];
        let loss = net.train_batch_fused(&examples, 0.1);
        assert!(loss.is_finite());
    }

    #[test]
    fn train_window_fits_multi_step_dependency() {
        // Target depends on the token two steps back: needs BPTT.
        let mut net = LstmNetwork::new(LstmConfig::tiny());
        let data = [(vec![2usize, 0, 0], 5usize), (vec![3, 0, 0], 7)];
        for _ in 0..400 {
            for (w, t) in &data {
                net.train_window(w, *t, 0.1);
            }
        }
        for (w, t) in &data {
            let l = net.eval_window(w, *t);
            assert!(l.confidence > 0.8, "confidence {}", l.confidence);
        }
    }
}
