//! A tiny scoped-thread helper for row-sliced matrix-vector products.
//!
//! Fig. 2 of the paper compares one- and two-thread LSTM inference and
//! finds multi-threading ineffective because the LSTM's dependent,
//! small matrix-vector products leave little parallel work relative to
//! the coordination overhead. This module reproduces exactly that
//! deployment choice: each matrix-vector product is split by rows over
//! `threads` OS threads created per call (no persistent pool, matching
//! a naive deployment), so the overhead the paper observes is present
//! and measurable.

use crate::matrix::Matrix;

/// Splits matrix-vector products across a fixed thread count.
#[derive(Debug, Clone)]
pub struct ThreadSlicer {
    threads: usize,
}

impl ThreadSlicer {
    /// Creates a slicer over `threads` workers.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn new(threads: usize) -> Self {
        assert!(threads > 0, "threads must be >= 1");
        Self { threads }
    }

    /// Configured worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// `out += m * x`, split by row blocks across the configured
    /// threads. Falls back to the sequential kernel for one thread or
    /// small matrices.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn matvec_acc(&self, m: &Matrix, x: &[f32], out: &mut [f32]) {
        assert_eq!(x.len(), m.cols(), "vector length mismatch");
        assert_eq!(out.len(), m.rows(), "output length mismatch");
        if self.threads == 1 || m.rows() < 2 * self.threads {
            m.matvec_acc(x, out);
            return;
        }
        let rows = m.rows();
        let chunk = rows.div_ceil(self.threads);
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for (i, out_chunk) in out.chunks_mut(chunk).enumerate() {
                let start = i * chunk;
                let end = (start + out_chunk.len()).min(rows);
                handles.push(scope.spawn(move || {
                    for (r, o) in (start..end).zip(out_chunk.iter_mut()) {
                        let row = m.row(r);
                        let mut acc = 0.0f32;
                        for (&w, &v) in row.iter().zip(x.iter()) {
                            acc += w * v;
                        }
                        *o += acc;
                    }
                }));
            }
            for h in handles {
                // hnp-lint: allow(panic_hygiene): re-raise worker panics
                h.join().expect("matvec worker panicked");
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_matches_sequential() {
        let m = Matrix::from_fn(64, 17, |r, c| ((r * 31 + c * 7) % 13) as f32 - 6.0);
        let x: Vec<f32> = (0..17).map(|i| (i as f32) * 0.3 - 2.0).collect();
        let mut seq = vec![0.5; 64];
        m.matvec_acc(&x, &mut seq);
        for threads in [2, 3, 4] {
            let slicer = ThreadSlicer::new(threads);
            let mut par = vec![0.5; 64];
            slicer.matvec_acc(&m, &x, &mut par);
            for (a, b) in seq.iter().zip(par.iter()) {
                assert!((a - b).abs() < 1e-5, "{threads} threads: {a} vs {b}");
            }
        }
    }

    #[test]
    fn small_matrices_fall_back_to_sequential() {
        let slicer = ThreadSlicer::new(4);
        let m = Matrix::from_fn(3, 3, |r, c| (r + c) as f32);
        let mut out = vec![0.0; 3];
        slicer.matvec_acc(&m, &[1.0, 1.0, 1.0], &mut out);
        assert_eq!(out, vec![3.0, 6.0, 9.0]);
    }

    #[test]
    #[should_panic(expected = "threads must be >= 1")]
    fn zero_threads_rejected() {
        let _ = ThreadSlicer::new(0);
    }
}
