//! First-order optimizers over [`Matrix`] parameters.
//!
//! The LSTM's online path applies clipped SGD inline for latency
//! reasons; these standalone optimizers serve offline experiments
//! (encoder pre-training, ablations) where update quality matters more
//! than per-step cost.

use crate::matrix::Matrix;

/// Plain SGD with optional momentum and per-element clipping.
#[derive(Debug, Clone)]
pub struct Sgd {
    /// Learning rate.
    pub lr: f32,
    /// Momentum coefficient (0 disables momentum).
    pub momentum: f32,
    /// Per-element gradient clip.
    pub clip: f32,
    velocity: Option<Matrix>,
}

impl Sgd {
    /// Creates an SGD optimizer.
    pub fn new(lr: f32, momentum: f32, clip: f32) -> Self {
        Self {
            lr,
            momentum,
            clip,
            velocity: None,
        }
    }

    /// Applies one update of `grad` to `param`.
    ///
    /// # Panics
    ///
    /// Panics if shapes change between calls.
    pub fn step(&mut self, param: &mut Matrix, grad: &Matrix) {
        let mut g = grad.clone();
        g.clip(self.clip);
        if self.momentum > 0.0 {
            let v = self
                .velocity
                .get_or_insert_with(|| Matrix::zeros(param.rows(), param.cols()));
            v.scale(self.momentum);
            v.axpy(1.0, &g);
            param.axpy(-self.lr, v);
        } else {
            param.axpy(-self.lr, &g);
        }
    }
}

/// Adam optimizer (Kingma & Ba) for a single parameter tensor.
#[derive(Debug, Clone)]
pub struct Adam {
    /// Learning rate.
    pub lr: f32,
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Numerical-stability epsilon.
    pub eps: f32,
    t: u64,
    m: Option<Matrix>,
    v: Option<Matrix>,
}

impl Adam {
    /// Creates an Adam optimizer with the usual defaults for the decay
    /// constants.
    pub fn new(lr: f32) -> Self {
        Self {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            m: None,
            v: None,
        }
    }

    /// Applies one Adam update of `grad` to `param`.
    pub fn step(&mut self, param: &mut Matrix, grad: &Matrix) {
        self.t += 1;
        let m = self
            .m
            .get_or_insert_with(|| Matrix::zeros(param.rows(), param.cols()));
        let v = self
            .v
            .get_or_insert_with(|| Matrix::zeros(param.rows(), param.cols()));
        let b1 = self.beta1;
        let b2 = self.beta2;
        let bc1 = 1.0 - b1.powi(self.t as i32);
        let bc2 = 1.0 - b2.powi(self.t as i32);
        let (ps, ms, vs, gs) = (
            param.as_mut_slice(),
            m.as_mut_slice(),
            v.as_mut_slice(),
            grad.as_slice(),
        );
        for i in 0..ps.len() {
            ms[i] = b1 * ms[i] + (1.0 - b1) * gs[i];
            vs[i] = b2 * vs[i] + (1.0 - b2) * gs[i] * gs[i];
            let mhat = ms[i] / bc1;
            let vhat = vs[i] / bc2;
            ps[i] -= self.lr * mhat / (vhat.sqrt() + self.eps);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimizes `f(x) = (x - 3)^2` elementwise.
    fn quadratic_grad(param: &Matrix) -> Matrix {
        Matrix::from_fn(param.rows(), param.cols(), |r, c| {
            2.0 * (param[(r, c)] - 3.0)
        })
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut p = Matrix::zeros(2, 2);
        let mut opt = Sgd::new(0.1, 0.0, 100.0);
        for _ in 0..200 {
            let g = quadratic_grad(&p);
            opt.step(&mut p, &g);
        }
        assert!(p.as_slice().iter().all(|&x| (x - 3.0).abs() < 1e-3));
    }

    #[test]
    fn momentum_converges_faster_than_plain_sgd() {
        let run = |momentum: f32| {
            let mut p = Matrix::zeros(1, 1);
            let mut opt = Sgd::new(0.02, momentum, 100.0);
            let mut steps = 0;
            while (p[(0, 0)] - 3.0).abs() > 1e-2 && steps < 10_000 {
                let g = quadratic_grad(&p);
                opt.step(&mut p, &g);
                steps += 1;
            }
            steps
        };
        assert!(run(0.9) < run(0.0));
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut p = Matrix::zeros(3, 1);
        let mut opt = Adam::new(0.1);
        for _ in 0..500 {
            let g = quadratic_grad(&p);
            opt.step(&mut p, &g);
        }
        assert!(p.as_slice().iter().all(|&x| (x - 3.0).abs() < 1e-2));
    }

    #[test]
    fn sgd_clipping_bounds_step_size() {
        let mut p = Matrix::zeros(1, 1);
        let mut opt = Sgd::new(1.0, 0.0, 0.5);
        let g = Matrix::from_vec(1, 1, vec![1000.0]);
        opt.step(&mut p, &g);
        assert_eq!(p[(0, 0)], -0.5);
    }
}
