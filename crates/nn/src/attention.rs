//! Multi-head causal self-attention, forward and backward.
//!
//! The building block of the transformer prefetcher baseline (§2 of
//! the paper counts transformer-based prefetchers among the prior DL
//! work). Sequence lengths in prefetching are tiny (a miss-history
//! window), so the implementation favours clarity over blocking.

#![allow(clippy::needless_range_loop)] // Index loops mirror the math.

use rand::Rng;

use crate::activations::softmax_in_place;
use crate::init;
use crate::matrix::Matrix;

/// Multi-head causal self-attention over `dim`-wide token rows.
#[derive(Debug, Clone)]
pub struct CausalSelfAttention {
    dim: usize,
    heads: usize,
    wq: Matrix,
    wk: Matrix,
    wv: Matrix,
    wo: Matrix,
    gwq: Matrix,
    gwk: Matrix,
    gwv: Matrix,
    gwo: Matrix,
}

/// Forward cache for the backward pass.
#[derive(Debug, Clone)]
pub struct AttentionCache {
    x: Matrix,
    q: Matrix,
    k: Matrix,
    v: Matrix,
    /// Per-head attention weights, each `S x S`.
    attn: Vec<Matrix>,
    /// Concatenated head outputs before the output projection.
    o: Matrix,
}

impl CausalSelfAttention {
    /// Creates an attention block.
    ///
    /// # Panics
    ///
    /// Panics if `heads` does not divide `dim`.
    pub fn new(dim: usize, heads: usize, rng: &mut impl Rng) -> Self {
        assert!(
            heads > 0 && dim.is_multiple_of(heads),
            "heads must divide dim"
        );
        Self {
            dim,
            heads,
            wq: init::xavier_uniform(dim, dim, rng),
            wk: init::xavier_uniform(dim, dim, rng),
            wv: init::xavier_uniform(dim, dim, rng),
            wo: init::xavier_uniform(dim, dim, rng),
            gwq: Matrix::zeros(dim, dim),
            gwk: Matrix::zeros(dim, dim),
            gwv: Matrix::zeros(dim, dim),
            gwo: Matrix::zeros(dim, dim),
        }
    }

    /// Parameter count.
    pub fn param_count(&self) -> usize {
        4 * self.dim * self.dim
    }

    /// Head width.
    fn head_dim(&self) -> usize {
        self.dim / self.heads
    }

    /// Forward over a sequence `x` (`S x dim`); returns the output and
    /// the cache.
    ///
    /// # Panics
    ///
    /// Panics on width mismatch.
    pub fn forward(&self, x: &Matrix) -> (Matrix, AttentionCache) {
        assert_eq!(x.cols(), self.dim, "input width mismatch");
        let s = x.rows();
        let dh = self.head_dim();
        let q = x.matmul(&self.wq);
        let k = x.matmul(&self.wk);
        let v = x.matmul(&self.wv);
        let scale = 1.0 / (dh as f32).sqrt();
        let mut o = Matrix::zeros(s, self.dim);
        let mut attn = Vec::with_capacity(self.heads);
        for h in 0..self.heads {
            let c0 = h * dh;
            let mut a = Matrix::zeros(s, s);
            for i in 0..s {
                // Causal: attend to positions 0..=i.
                let mut row = vec![f32::NEG_INFINITY; s];
                for (j, r) in row.iter_mut().enumerate().take(i + 1) {
                    let mut dot = 0.0;
                    for d in 0..dh {
                        dot += q[(i, c0 + d)] * k[(j, c0 + d)];
                    }
                    *r = dot * scale;
                }
                softmax_in_place(&mut row[..i + 1]);
                for j in i + 1..s {
                    row[j] = 0.0;
                }
                for (j, &val) in row.iter().enumerate() {
                    a[(i, j)] = val;
                }
            }
            // O_h = A V_h.
            for i in 0..s {
                for d in 0..dh {
                    let mut acc = 0.0;
                    for j in 0..=i {
                        acc += a[(i, j)] * v[(j, c0 + d)];
                    }
                    o[(i, c0 + d)] = acc;
                }
            }
            attn.push(a);
        }
        let y = o.matmul(&self.wo);
        (
            y,
            AttentionCache {
                x: x.clone(),
                q,
                k,
                v,
                attn,
                o,
            },
        )
    }

    /// Backward: accumulates weight gradients and returns `dx`.
    pub fn backward(&mut self, cache: &AttentionCache, dy: &Matrix) -> Matrix {
        let s = cache.x.rows();
        let dh = self.head_dim();
        let scale = 1.0 / (dh as f32).sqrt();
        // Output projection.
        let ot = cache.o.transpose();
        self.gwo.add_assign(&ot.matmul(dy));
        let d_o = dy.matmul(&self.wo.transpose());
        let mut dq = Matrix::zeros(s, self.dim);
        let mut dk = Matrix::zeros(s, self.dim);
        let mut dv = Matrix::zeros(s, self.dim);
        for h in 0..self.heads {
            let c0 = h * dh;
            let a = &cache.attn[h];
            // dV_h = A^T dO_h; dA = dO_h V_h^T (causal entries only).
            for i in 0..s {
                // dA row and softmax backward.
                let mut da = vec![0.0f32; i + 1];
                for (j, daj) in da.iter_mut().enumerate() {
                    let mut acc = 0.0;
                    for d in 0..dh {
                        acc += d_o[(i, c0 + d)] * cache.v[(j, c0 + d)];
                    }
                    *daj = acc;
                }
                let dot: f32 = (0..=i).map(|j| a[(i, j)] * da[j]).sum();
                for j in 0..=i {
                    let ds = a[(i, j)] * (da[j] - dot) * scale;
                    for d in 0..dh {
                        dq[(i, c0 + d)] += ds * cache.k[(j, c0 + d)];
                        dk[(j, c0 + d)] += ds * cache.q[(i, c0 + d)];
                    }
                }
                for j in 0..=i {
                    let aij = a[(i, j)];
                    for d in 0..dh {
                        dv[(j, c0 + d)] += aij * d_o[(i, c0 + d)];
                    }
                }
            }
        }
        // Weight gradients and input gradient.
        let xt = cache.x.transpose();
        self.gwq.add_assign(&xt.matmul(&dq));
        self.gwk.add_assign(&xt.matmul(&dk));
        self.gwv.add_assign(&xt.matmul(&dv));
        let mut dx = dq.matmul(&self.wq.transpose());
        dx.add_assign(&dk.matmul(&self.wk.transpose()));
        dx.add_assign(&dv.matmul(&self.wv.transpose()));
        dx
    }

    /// Applies and clears accumulated gradients (clipped SGD).
    pub fn apply_grads(&mut self, lr: f32, clip: f32) {
        for (w, g) in [
            (&mut self.wq, &mut self.gwq),
            (&mut self.wk, &mut self.gwk),
            (&mut self.wv, &mut self.gwv),
            (&mut self.wo, &mut self.gwo),
        ] {
            g.clip(clip);
            w.axpy(-lr, g);
            g.fill_zero();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn input(s: usize, d: usize) -> Matrix {
        Matrix::from_fn(s, d, |r, c| ((r * 7 + c * 3) % 11) as f32 * 0.1 - 0.5)
    }

    #[test]
    fn output_shape_matches_input() {
        let mut rng = StdRng::seed_from_u64(1);
        let attn = CausalSelfAttention::new(8, 2, &mut rng);
        let x = input(5, 8);
        let (y, _) = attn.forward(&x);
        assert_eq!(y.rows(), 5);
        assert_eq!(y.cols(), 8);
    }

    #[test]
    fn causality_later_tokens_do_not_affect_earlier_outputs() {
        let mut rng = StdRng::seed_from_u64(2);
        let attn = CausalSelfAttention::new(8, 2, &mut rng);
        let x1 = input(4, 8);
        let mut x2 = x1.clone();
        // Perturb the last token only.
        for c in 0..8 {
            x2[(3, c)] += 1.0;
        }
        let (y1, _) = attn.forward(&x1);
        let (y2, _) = attn.forward(&x2);
        for i in 0..3 {
            for c in 0..8 {
                assert!(
                    (y1[(i, c)] - y2[(i, c)]).abs() < 1e-6,
                    "position {i} must not see the future"
                );
            }
        }
        // The last position does change.
        let moved: f32 = (0..8).map(|c| (y1[(3, c)] - y2[(3, c)]).abs()).sum();
        assert!(moved > 1e-3);
    }

    #[test]
    fn attention_rows_sum_to_one_over_the_causal_prefix() {
        let mut rng = StdRng::seed_from_u64(3);
        let attn = CausalSelfAttention::new(6, 1, &mut rng);
        let x = input(4, 6);
        let (_, cache) = attn.forward(&x);
        for i in 0..4 {
            let sum: f32 = (0..4).map(|j| cache.attn[0][(i, j)]).sum();
            assert!((sum - 1.0).abs() < 1e-5, "row {i} sums to {sum}");
            for j in i + 1..4 {
                assert_eq!(cache.attn[0][(i, j)], 0.0, "future weight must be zero");
            }
        }
    }

    /// Finite-difference check of input and weight gradients through a
    /// scalar loss on the last position.
    #[test]
    fn gradients_match_finite_differences() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut attn = CausalSelfAttention::new(6, 2, &mut rng);
        let x = input(3, 6);
        // Loss = sum of weights * y[last row].
        let w: Vec<f32> = (0..6).map(|i| 0.2 * i as f32 - 0.5).collect();
        let loss_of = |attn: &CausalSelfAttention, x: &Matrix| -> f32 {
            let (y, _) = attn.forward(x);
            (0..6).map(|c| w[c] * y[(2, c)]).sum()
        };
        let (y, cache) = attn.forward(&x);
        let _ = y;
        let mut dy = Matrix::zeros(3, 6);
        for c in 0..6 {
            dy[(2, c)] = w[c];
        }
        let dx = attn.backward(&cache, &dy);
        let eps = 1e-3;
        // Input gradient.
        for &(r, c) in &[(0usize, 0usize), (1, 3), (2, 5), (0, 4)] {
            let mut xp = x.clone();
            xp[(r, c)] += eps;
            let mut xm = x.clone();
            xm[(r, c)] -= eps;
            let numeric = (loss_of(&attn, &xp) - loss_of(&attn, &xm)) / (2.0 * eps);
            assert!(
                (dx[(r, c)] - numeric).abs() < 2e-3,
                "dx({r},{c}): {} vs {}",
                dx[(r, c)],
                numeric
            );
        }
        // Weight gradients (spot checks on each tensor).
        let grads = [
            (attn.gwq.clone(), 0usize),
            (attn.gwk.clone(), 1),
            (attn.gwv.clone(), 2),
            (attn.gwo.clone(), 3),
        ];
        for (g, which) in grads {
            for &(r, c) in &[(0usize, 0usize), (2, 4), (5, 1)] {
                let mut plus = attn.clone();
                let mut minus = attn.clone();
                {
                    let wp = match which {
                        0 => &mut plus.wq,
                        1 => &mut plus.wk,
                        2 => &mut plus.wv,
                        _ => &mut plus.wo,
                    };
                    wp[(r, c)] += eps;
                    let wm = match which {
                        0 => &mut minus.wq,
                        1 => &mut minus.wk,
                        2 => &mut minus.wv,
                        _ => &mut minus.wo,
                    };
                    wm[(r, c)] -= eps;
                }
                let numeric = (loss_of(&plus, &x) - loss_of(&minus, &x)) / (2.0 * eps);
                assert!(
                    (g[(r, c)] - numeric).abs() < 2e-3,
                    "tensor {which} ({r},{c}): {} vs {}",
                    g[(r, c)],
                    numeric
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "heads must divide dim")]
    fn bad_head_count_rejected() {
        let mut rng = StdRng::seed_from_u64(5);
        let _ = CausalSelfAttention::new(7, 2, &mut rng);
    }
}
