//! Softmax cross-entropy loss.

use crate::activations::softmax_in_place;

/// Result of a softmax cross-entropy forward pass.
#[derive(Debug, Clone)]
pub struct SoftmaxLoss {
    /// The post-softmax probability distribution.
    pub probs: Vec<f32>,
    /// Negative log-likelihood of the target class.
    pub loss: f32,
    /// Probability the model assigned to the target class. The paper's
    /// "confidence" metric in Fig. 3.
    pub confidence: f32,
}

/// Computes softmax probabilities and the cross-entropy loss for
/// `target` given raw `logits`.
///
/// # Panics
///
/// Panics if `target >= logits.len()` or `logits` is empty.
pub fn softmax_cross_entropy(logits: &[f32], target: usize) -> SoftmaxLoss {
    assert!(!logits.is_empty(), "empty logits");
    assert!(
        target < logits.len(),
        "target {} out of range ({} classes)",
        target,
        logits.len()
    );
    let mut probs = logits.to_vec();
    softmax_in_place(&mut probs);
    let p = probs[target].max(1e-12);
    SoftmaxLoss {
        loss: -p.ln(),
        confidence: probs[target],
        probs,
    }
}

/// Gradient of the loss with respect to the logits: `probs - one_hot`.
pub fn softmax_cross_entropy_grad(probs: &[f32], target: usize) -> Vec<f32> {
    let mut g = probs.to_vec();
    g[target] -= 1.0;
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loss_is_low_for_confident_correct_prediction() {
        let l = softmax_cross_entropy(&[10.0, 0.0, 0.0], 0);
        assert!(l.loss < 0.01);
        assert!(l.confidence > 0.99);
    }

    #[test]
    fn loss_is_high_for_confident_wrong_prediction() {
        let l = softmax_cross_entropy(&[10.0, 0.0, 0.0], 1);
        assert!(l.loss > 5.0);
        assert!(l.confidence < 0.01);
    }

    #[test]
    fn grad_sums_to_zero() {
        let l = softmax_cross_entropy(&[0.3, -0.2, 1.5, 0.0], 2);
        let g = softmax_cross_entropy_grad(&l.probs, 2);
        let sum: f32 = g.iter().sum();
        assert!(sum.abs() < 1e-6);
        assert!(g[2] < 0.0, "target gradient must be negative");
    }

    #[test]
    fn grad_matches_finite_difference() {
        let logits = [0.5f32, -1.0, 0.25];
        let target = 1;
        let base = softmax_cross_entropy(&logits, target);
        let g = softmax_cross_entropy_grad(&base.probs, target);
        let eps = 1e-3;
        for i in 0..logits.len() {
            let mut plus = logits;
            plus[i] += eps;
            let mut minus = logits;
            minus[i] -= eps;
            let numeric = (softmax_cross_entropy(&plus, target).loss
                - softmax_cross_entropy(&minus, target).loss)
                / (2.0 * eps);
            assert!(
                (g[i] - numeric).abs() < 1e-3,
                "grad {} vs numeric {}",
                g[i],
                numeric
            );
        }
    }

    #[test]
    #[should_panic(expected = "target 3 out of range")]
    fn rejects_out_of_range_target() {
        let _ = softmax_cross_entropy(&[0.0, 0.0, 0.0], 3);
    }
}
