//! Weight initialization helpers.
//!
//! All initializers take an explicit RNG so that every network in the
//! repository is reproducible from a single seed.

use rand::Rng;

use crate::matrix::Matrix;

/// Uniform Xavier/Glorot initialization for a `rows x cols` weight
/// matrix: values in `[-limit, limit]` with
/// `limit = sqrt(6 / (fan_in + fan_out))`.
pub fn xavier_uniform(rows: usize, cols: usize, rng: &mut impl Rng) -> Matrix {
    let limit = (6.0 / (rows + cols) as f32).sqrt();
    Matrix::from_fn(rows, cols, |_, _| rng.gen_range(-limit..=limit))
}

/// Uniform initialization in `[-limit, limit]`.
pub fn uniform(rows: usize, cols: usize, limit: f32, rng: &mut impl Rng) -> Matrix {
    Matrix::from_fn(rows, cols, |_, _| rng.gen_range(-limit..=limit))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn xavier_respects_limit() {
        let mut rng = StdRng::seed_from_u64(7);
        let m = xavier_uniform(20, 30, &mut rng);
        let limit = (6.0 / 50.0f32).sqrt();
        assert!(m.as_slice().iter().all(|&x| x.abs() <= limit));
        // Not all-zero: initialization actually happened.
        assert!(m.as_slice().iter().any(|&x| x != 0.0));
    }

    #[test]
    fn same_seed_same_weights() {
        let a = xavier_uniform(5, 5, &mut StdRng::seed_from_u64(1));
        let b = xavier_uniform(5, 5, &mut StdRng::seed_from_u64(1));
        assert_eq!(a, b);
    }
}
