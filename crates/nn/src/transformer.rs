//! A small decoder-only transformer for next-delta prediction.
//!
//! §2 of the paper lists transformer-based prefetchers among the prior
//! DL work it critiques; this model makes that comparison point
//! concrete. One pre-norm block (causal self-attention + ReLU MLP with
//! residuals), learned positional embeddings, and a projection over
//! the delta vocabulary. The API mirrors [`LstmNetwork`]'s windowed
//! training so the Fig.-3 protocol and the prefetcher wrapper apply
//! unchanged.
//!
//! [`LstmNetwork`]: crate::lstm::LstmNetwork

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::attention::{AttentionCache, CausalSelfAttention};
use crate::embedding::Embedding;
use crate::init;
use crate::loss::{softmax_cross_entropy, softmax_cross_entropy_grad, SoftmaxLoss};
use crate::matrix::Matrix;
use crate::norm::{RmsNorm, RmsNormCache};

/// Transformer hyper-parameters.
#[derive(Debug, Clone)]
pub struct TransformerConfig {
    /// Vocabulary (delta classes).
    pub vocab: usize,
    /// Model width.
    pub dim: usize,
    /// Attention heads.
    pub heads: usize,
    /// MLP hidden width.
    pub ff: usize,
    /// Context window (sequence length).
    pub window: usize,
    /// Learning rate.
    pub learning_rate: f32,
    /// Per-element gradient clip.
    pub grad_clip: f32,
    /// Init seed.
    pub seed: u64,
}

impl Default for TransformerConfig {
    fn default() -> Self {
        Self {
            vocab: 130,
            dim: 48,
            heads: 2,
            ff: 96,
            window: 8,
            learning_rate: 0.05,
            grad_clip: 1.0,
            seed: 0x7f0,
        }
    }
}

impl TransformerConfig {
    /// A small configuration for unit tests.
    pub fn tiny() -> Self {
        Self {
            vocab: 12,
            dim: 16,
            heads: 2,
            ff: 32,
            window: 4,
            learning_rate: 0.1,
            ..Self::default()
        }
    }
}

/// The transformer network.
pub struct TransformerNetwork {
    cfg: TransformerConfig,
    embedding: Embedding,
    /// Learned positional embeddings, `window x dim`.
    pos: Matrix,
    gpos: Matrix,
    norm1: RmsNorm,
    attn: CausalSelfAttention,
    norm2: RmsNorm,
    /// MLP weights.
    w1: Matrix,
    w2: Matrix,
    gw1: Matrix,
    gw2: Matrix,
    /// Output projection, `vocab x dim` (+ bias).
    w_out: Matrix,
    b_out: Vec<f32>,
    gw_out: Matrix,
    gb_out: Vec<f32>,
}

/// Forward cache for one window.
struct ForwardCache {
    tokens: Vec<usize>,
    x0: Matrix,
    n1_caches: Vec<RmsNormCache>,
    attn_cache: AttentionCache,
    x1: Matrix,
    n2_caches: Vec<RmsNormCache>,
    n2: Matrix,
    /// Pre-activation MLP hidden, `S x ff`.
    z: Matrix,
    x2: Matrix,
    logits: Vec<f32>,
}

impl TransformerNetwork {
    /// Builds the network.
    ///
    /// # Panics
    ///
    /// Panics on degenerate dimensions.
    pub fn new(cfg: TransformerConfig) -> Self {
        assert!(cfg.vocab > 0 && cfg.dim > 0 && cfg.ff > 0 && cfg.window > 0);
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        Self {
            embedding: Embedding::new(cfg.vocab, cfg.dim, &mut rng),
            pos: init::uniform(cfg.window, cfg.dim, 0.05, &mut rng),
            gpos: Matrix::zeros(cfg.window, cfg.dim),
            norm1: RmsNorm::new(cfg.dim),
            attn: CausalSelfAttention::new(cfg.dim, cfg.heads, &mut rng),
            norm2: RmsNorm::new(cfg.dim),
            w1: init::xavier_uniform(cfg.dim, cfg.ff, &mut rng),
            w2: init::xavier_uniform(cfg.ff, cfg.dim, &mut rng),
            gw1: Matrix::zeros(cfg.dim, cfg.ff),
            gw2: Matrix::zeros(cfg.ff, cfg.dim),
            w_out: init::xavier_uniform(cfg.vocab, cfg.dim, &mut rng),
            b_out: vec![0.0; cfg.vocab],
            gw_out: Matrix::zeros(cfg.vocab, cfg.dim),
            gb_out: vec![0.0; cfg.vocab],
            cfg,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &TransformerConfig {
        &self.cfg
    }

    /// Total parameter count.
    pub fn param_count(&self) -> usize {
        self.embedding.param_count()
            + self.pos.len()
            + self.norm1.param_count()
            + self.attn.param_count()
            + self.norm2.param_count()
            + self.w1.len()
            + self.w2.len()
            + self.w_out.len()
            + self.b_out.len()
    }

    /// Forward over a token window (at most `window` tokens; shorter
    /// windows are allowed and use the leading positions).
    ///
    /// # Panics
    ///
    /// Panics if `tokens` is empty, longer than the window, or out of
    /// vocabulary.
    fn forward(&self, tokens: &[usize]) -> ForwardCache {
        assert!(
            !tokens.is_empty() && tokens.len() <= self.cfg.window,
            "window must hold 1..={} tokens",
            self.cfg.window
        );
        let s = tokens.len();
        let d = self.cfg.dim;
        let mut x0 = Matrix::zeros(s, d);
        for (i, &t) in tokens.iter().enumerate() {
            let e = self.embedding.lookup(t);
            for c in 0..d {
                x0[(i, c)] = e[c] + self.pos[(i, c)];
            }
        }
        // Pre-norm attention with residual.
        let mut n1 = Matrix::zeros(s, d);
        let mut n1_caches = Vec::with_capacity(s);
        for i in 0..s {
            let (row, cache) = self.norm1.forward(x0.row(i));
            n1.row_mut(i).copy_from_slice(&row);
            n1_caches.push(cache);
        }
        let (a, attn_cache) = self.attn.forward(&n1);
        let mut x1 = x0.clone();
        x1.add_assign(&a);
        // Pre-norm MLP with residual.
        let mut n2 = Matrix::zeros(s, d);
        let mut n2_caches = Vec::with_capacity(s);
        for i in 0..s {
            let (row, cache) = self.norm2.forward(x1.row(i));
            n2.row_mut(i).copy_from_slice(&row);
            n2_caches.push(cache);
        }
        let z = n2.matmul(&self.w1);
        let mut r = z.clone();
        r.as_mut_slice().iter_mut().for_each(|v| *v = v.max(0.0));
        let f = r.matmul(&self.w2);
        let mut x2 = x1.clone();
        x2.add_assign(&f);
        // Project the last position.
        let mut logits = self.b_out.clone();
        self.w_out.matvec_acc(x2.row(s - 1), &mut logits);
        ForwardCache {
            tokens: tokens.to_vec(),
            x0,
            n1_caches,
            attn_cache,
            x1,
            n2_caches,
            n2,
            z,
            x2,
            logits,
        }
    }

    /// Evaluates confidence on `(tokens, target)` without learning.
    pub fn eval_window(&self, tokens: &[usize], target: usize) -> SoftmaxLoss {
        let cache = self.forward(tokens);
        softmax_cross_entropy(&cache.logits, target)
    }

    /// One training step on `(tokens, target)` at learning rate `lr`.
    pub fn train_window(&mut self, tokens: &[usize], target: usize, lr: f32) -> SoftmaxLoss {
        let cache = self.forward(tokens);
        let loss = softmax_cross_entropy(&cache.logits, target);
        let dlogits = softmax_cross_entropy_grad(&loss.probs, target);
        self.backward(&cache, &dlogits);
        self.apply_grads(lr);
        loss
    }

    /// Autoregressive rollout from a context window: predicts `steps`
    /// future tokens (`width` candidates each), feeding back the top-1
    /// through a sliding window. Also returns the first step's top
    /// confidence.
    pub fn rollout_top_k_with_confidence(
        &self,
        context: &[usize],
        steps: usize,
        width: usize,
    ) -> (Vec<Vec<usize>>, f32) {
        let mut window: Vec<usize> = context
            .iter()
            .copied()
            .rev()
            .take(self.cfg.window)
            .collect();
        window.reverse();
        let mut preds = Vec::with_capacity(steps);
        let mut first_conf = 0.0;
        for step in 0..steps {
            let cache = self.forward(&window);
            let mut probs = cache.logits.clone();
            crate::activations::softmax_in_place(&mut probs);
            let top = crate::activations::top_k(&probs, width);
            if step == 0 {
                first_conf = probs[top[0]];
            }
            let next = top[0];
            preds.push(top);
            window.push(next);
            if window.len() > self.cfg.window {
                window.remove(0);
            }
        }
        (preds, first_conf)
    }

    fn backward(&mut self, cache: &ForwardCache, dlogits: &[f32]) {
        let s = cache.tokens.len();
        let d = self.cfg.dim;
        // Output projection.
        self.gw_out.rank1_acc(1.0, dlogits, cache.x2.row(s - 1));
        for (g, &v) in self.gb_out.iter_mut().zip(dlogits.iter()) {
            *g += v;
        }
        let mut dx2 = Matrix::zeros(s, d);
        {
            let mut dh = vec![0.0; d];
            self.w_out.matvec_t_acc(dlogits, &mut dh);
            dx2.row_mut(s - 1).copy_from_slice(&dh);
        }
        // MLP backward: x2 = x1 + relu(n2 W1) W2.
        let mut dx1 = dx2.clone();
        let mut dn2 = Matrix::zeros(s, d);
        {
            // r = relu(z); f = r W2; df = dx2.
            let mut r = cache.z.clone();
            r.as_mut_slice().iter_mut().for_each(|v| *v = v.max(0.0));
            let rt = r.transpose();
            self.gw2.add_assign(&rt.matmul(&dx2));
            let mut dr = dx2.matmul(&self.w2.transpose());
            // ReLU gate.
            for (dv, &zv) in dr.as_mut_slice().iter_mut().zip(cache.z.as_slice()) {
                if zv <= 0.0 {
                    *dv = 0.0;
                }
            }
            let n2t = cache.n2.transpose();
            self.gw1.add_assign(&n2t.matmul(&dr));
            dn2.add_assign(&dr.matmul(&self.w1.transpose()));
        }
        for i in 0..s {
            let dxrow = self.norm2.backward(&cache.n2_caches[i], dn2.row(i));
            for c in 0..d {
                dx1[(i, c)] += dxrow[c];
            }
        }
        // Attention backward: x1 = x0 + attn(n1).
        let mut dx0 = dx1.clone();
        let dn1 = self.attn.backward(&cache.attn_cache, &dx1);
        for i in 0..s {
            let dxrow = self.norm1.backward(&cache.n1_caches[i], dn1.row(i));
            for c in 0..d {
                dx0[(i, c)] += dxrow[c];
            }
        }
        // Embedding and positional gradients.
        for (i, &t) in cache.tokens.iter().enumerate() {
            self.embedding.accumulate_grad(t, dx0.row(i));
            for c in 0..d {
                self.gpos[(i, c)] += dx0[(i, c)];
            }
        }
        let _ = &cache.x0;
        let _ = &cache.x1;
    }

    fn apply_grads(&mut self, lr: f32) {
        let clip = self.cfg.grad_clip;
        self.embedding.apply_grads(lr, clip);
        self.gpos.clip(clip);
        self.pos.axpy(-lr, &self.gpos);
        self.gpos.fill_zero();
        self.norm1.apply_grads(lr, clip);
        self.norm2.apply_grads(lr, clip);
        self.attn.apply_grads(lr, clip);
        for (w, g) in [(&mut self.w1, &mut self.gw1), (&mut self.w2, &mut self.gw2)] {
            g.clip(clip);
            w.axpy(-lr, g);
            g.fill_zero();
        }
        self.gw_out.clip(clip);
        self.w_out.axpy(-lr, &self.gw_out);
        self.gw_out.fill_zero();
        for (w, g) in self.b_out.iter_mut().zip(self.gb_out.iter_mut()) {
            *w -= lr * g.clamp(-clip, clip);
            *g = 0.0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_a_fixed_mapping() {
        let mut net = TransformerNetwork::new(TransformerConfig::tiny());
        // Window [1, 2, 3] -> 7; window [3, 2, 1] -> 4.
        let data = [(vec![1usize, 2, 3], 7usize), (vec![3, 2, 1], 4)];
        for _ in 0..300 {
            for (w, t) in &data {
                net.train_window(w, *t, 0.1);
            }
        }
        for (w, t) in &data {
            let l = net.eval_window(w, *t);
            assert!(l.confidence > 0.9, "confidence {}", l.confidence);
        }
    }

    #[test]
    fn learns_a_cycle_and_rolls_it_out() {
        let mut net = TransformerNetwork::new(TransformerConfig::tiny());
        let cycle = [1usize, 4, 2, 7, 5, 3];
        for _ in 0..400 {
            for i in 0..cycle.len() {
                let w: Vec<usize> = (0..4).map(|k| cycle[(i + k) % cycle.len()]).collect();
                let target = cycle[(i + 4) % cycle.len()];
                net.train_window(&w, target, 0.1);
            }
        }
        let ctx: Vec<usize> = (0..4).map(|k| cycle[k % cycle.len()]).collect();
        let (preds, conf) = net.rollout_top_k_with_confidence(&ctx, 4, 2);
        assert_eq!(preds.len(), 4);
        assert!(conf > 0.8, "rollout confidence {conf}");
        assert_eq!(preds[0][0], cycle[4]);
        assert_eq!(preds[1][0], cycle[5]);
    }

    /// End-to-end finite-difference check through the full block via
    /// the embedding path.
    #[test]
    fn end_to_end_gradients_match_finite_differences() {
        let cfg = TransformerConfig {
            vocab: 6,
            dim: 8,
            heads: 2,
            ff: 12,
            window: 3,
            learning_rate: 0.0,
            grad_clip: 1e9,
            seed: 9,
        };
        let tokens = vec![1usize, 3, 2];
        let target = 4usize;
        let net = TransformerNetwork::new(cfg.clone());
        let cache = net.forward(&tokens);
        let loss = softmax_cross_entropy(&cache.logits, target);
        let dlogits = softmax_cross_entropy_grad(&loss.probs, target);
        let mut net_g = TransformerNetwork::new(cfg.clone());
        net_g.backward(&cache, &dlogits);
        // Check positional-embedding gradients (they sit at the very
        // bottom of the graph, so correctness implies the whole chain).
        let eps = 1e-3;
        for &(r, c) in &[(0usize, 0usize), (1, 4), (2, 7)] {
            let mut plus = TransformerNetwork::new(cfg.clone());
            plus.pos[(r, c)] += eps;
            let mut minus = TransformerNetwork::new(cfg.clone());
            minus.pos[(r, c)] -= eps;
            let lp = plus.eval_window(&tokens, target).loss;
            let lm = minus.eval_window(&tokens, target).loss;
            let numeric = (lp - lm) / (2.0 * eps);
            assert!(
                (net_g.gpos[(r, c)] - numeric).abs() < 2e-2,
                "gpos({r},{c}): {} vs {}",
                net_g.gpos[(r, c)],
                numeric
            );
        }
    }

    #[test]
    fn short_windows_are_accepted() {
        let net = TransformerNetwork::new(TransformerConfig::tiny());
        let l = net.eval_window(&[2], 3);
        assert!(l.confidence >= 0.0);
    }

    #[test]
    fn param_count_is_consistent() {
        let cfg = TransformerConfig::tiny();
        let net = TransformerNetwork::new(cfg.clone());
        let expect = cfg.vocab * cfg.dim       // embedding
            + cfg.window * cfg.dim             // positions
            + 2 * cfg.dim                      // two norms
            + 4 * cfg.dim * cfg.dim            // attention
            + 2 * cfg.dim * cfg.ff             // mlp
            + cfg.vocab * cfg.dim + cfg.vocab; // output
        assert_eq!(net.param_count(), expect);
    }

    #[test]
    #[should_panic(expected = "window must hold")]
    fn oversized_window_panics() {
        let net = TransformerNetwork::new(TransformerConfig::tiny());
        let _ = net.eval_window(&[1, 2, 3, 4, 5], 0);
    }
}
