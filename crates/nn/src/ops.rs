//! Exact operation accounting for Table 2.
//!
//! The paper's Table 2 compares parameter counts and per-inference /
//! per-training-example operation counts of the LSTM and the Hebbian
//! network. These formulas count multiply-accumulates as two
//! operations (one multiply, one add) plus elementwise and activation
//! work, and are asserted against the implementations in tests.

/// Operation and storage accounting for one model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpCounts {
    /// Learned parameter count.
    pub params: usize,
    /// Arithmetic ops for one inference.
    pub inference_ops: usize,
    /// Arithmetic ops for one training example (forward + backward +
    /// update).
    pub training_ops: usize,
    /// Whether the arithmetic is integer (`true`) or floating point.
    pub integer: bool,
}

impl OpCounts {
    /// Counts for the LSTM prefetch model of `vocab` output classes,
    /// embedding width `e` and hidden width `h`.
    pub fn lstm(vocab: usize, e: usize, h: usize) -> Self {
        let params = vocab * e + 4 * h * (e + h + 1) + vocab * h + vocab;
        // Forward: two ops per MAC in the gate products and the output
        // projection, ~9 elementwise ops per hidden unit for gate
        // combination, plus activations (counted as 4 ops each) and the
        // softmax (3 ops per class).
        let gate_macs = 4 * h * (e + h);
        let proj_macs = vocab * h;
        let inference_ops = 2 * (gate_macs + proj_macs) + 9 * h + 4 * (4 * h) + 3 * vocab;
        // Backward visits each weight twice (gradient + input grad) and
        // the update once more; ~3x forward is the standard estimate,
        // counted explicitly here: dW products (2 ops/MAC), dx/dh
        // products (2 ops/MAC), elementwise gate derivatives (~12/h
        // unit) and the SGD update (2 ops per parameter).
        let training_ops = inference_ops + 2 * (gate_macs + proj_macs) * 2 + 12 * h + 2 * params;
        Self {
            params,
            inference_ops,
            training_ops,
            integer: false,
        }
    }

    /// Counts for the one-block decoder-only transformer over a
    /// `window`-token context (the §2 prior-DL comparison point).
    ///
    /// Per forward: QKV + output projections (`4·S·D²` MACs),
    /// attention scores and weighted values (`2·S²·D`), the MLP
    /// (`2·S·D·F`), and the vocabulary projection at the last position
    /// (`D·V`); two ops per MAC plus softmax/norm elementwise work.
    pub fn transformer(vocab: usize, d: usize, ff: usize, window: usize) -> Self {
        let s = window;
        let params = vocab * d        // embedding
            + s * d                   // positions
            + 2 * d                   // norms
            + 4 * d * d               // attention
            + 2 * d * ff              // mlp
            + vocab * d + vocab; // output
        let macs = 4 * s * d * d + 2 * s * s * d + 2 * s * d * ff + d * vocab;
        let inference_ops = 2 * macs + 6 * s * d + 3 * s * s + 3 * vocab;
        // Backward ~2x forward plus the SGD update.
        let training_ops = inference_ops + 4 * macs + 2 * params;
        Self {
            params,
            inference_ops,
            training_ops,
            integer: false,
        }
    }

    /// Counts for the sparse Hebbian network.
    ///
    /// * `input_dim`, `hidden`, `output_dim` — layer widths;
    /// * `connectivity` — fraction of present connections (the paper
    ///   uses 12.5 %);
    /// * `active_inputs` — expected non-zero input bits;
    /// * `active_hidden` — hidden winners (10 % of `hidden`).
    ///
    /// Inference touches only present connections from active units;
    /// training additionally applies the Eq.-1 update over the active
    /// units' connection rows.
    pub fn hebbian(
        input_dim: usize,
        hidden: usize,
        output_dim: usize,
        connectivity: f64,
        active_inputs: usize,
        active_hidden: usize,
    ) -> Self {
        let params = ((input_dim * hidden) as f64 * connectivity) as usize
            + ((hidden * output_dim) as f64 * connectivity) as usize;
        let fan_out_hidden = (hidden as f64 * connectivity) as usize;
        let fan_out_output = (output_dim as f64 * connectivity) as usize;
        // Forward: add weight of each present connection from each
        // active unit (1 op per touched connection — integer adds, no
        // multiplies because activations are binary), then k-WTA
        // selection (a compare plus bounded-heap maintenance of
        // ~log2(k) ops per hidden unit) and output argmax.
        let hidden_acc = active_inputs * fan_out_hidden;
        let out_acc = active_hidden * fan_out_output;
        let kwta_ops = hidden * (2 + (active_hidden.max(2) as f64).log2().ceil() as usize);
        let inference_ops = hidden_acc + kwta_ops + out_acc + output_dim;
        // Training: inference + Eq.-1 updates. The update walks the
        // incoming connection rows of active hidden units and of the
        // output layer's clamped unit(s): one add/sub + clamp (2 ops)
        // per visited weight.
        let incoming_hidden = (input_dim as f64 * connectivity) as usize;
        let incoming_output = (hidden as f64 * connectivity) as usize;
        let training_ops =
            inference_ops + 2 * (active_hidden * incoming_hidden + 2 * incoming_output);
        Self {
            params,
            inference_ops,
            training_ops,
            integer: true,
        }
    }

    /// Storage in bytes given the per-parameter width.
    pub fn storage_bytes(&self, bytes_per_param: usize) -> usize {
        self.params * bytes_per_param
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scale_lstm_matches_table2_row() {
        // Table 2: LSTM 170 k params, >170 k FP inference ops, >400 k
        // FP training ops.
        let c = OpCounts::lstm(500, 50, 128);
        assert!(
            (150_000..220_000).contains(&c.params),
            "params {}",
            c.params
        );
        assert!(c.inference_ops > 170_000, "inference {}", c.inference_ops);
        assert!(c.training_ops > 400_000, "training {}", c.training_ops);
        assert!(!c.integer);
    }

    #[test]
    fn paper_scale_hebbian_matches_table2_row() {
        // Table 2: Hebbian 49 k params, 14 k INT inference ops, 64 k
        // INT training ops. Layers: 256-bit input (sparse), 1000
        // hidden, 136 outputs, 12.5 % connectivity, 10 % hidden
        // activity (100 winners), ~14 active input bits.
        let c = OpCounts::hebbian(256, 1000, 136, 0.125, 14, 100);
        assert!((45_000..55_000).contains(&c.params), "params {}", c.params);
        assert!(
            (8_000..22_000).contains(&c.inference_ops),
            "inference {}",
            c.inference_ops
        );
        assert!(
            (15_000..90_000).contains(&c.training_ops),
            "training {}",
            c.training_ops
        );
        assert!(c.integer);
    }

    #[test]
    fn transformer_counts_are_consistent_with_the_model() {
        // Matches TransformerConfig::default() (vocab 130, dim 48,
        // ff 96, window 8).
        let c = OpCounts::transformer(130, 48, 96, 8);
        assert!(c.training_ops > c.inference_ops);
        assert!(!c.integer);
        // Param formula must equal the implementation's count.
        let net = crate::transformer::TransformerNetwork::new(
            crate::transformer::TransformerConfig::default(),
        );
        assert_eq!(c.params, net.param_count());
    }

    #[test]
    fn hebbian_is_cheaper_than_lstm_at_paper_scale() {
        let l = OpCounts::lstm(500, 50, 128);
        let h = OpCounts::hebbian(256, 1000, 136, 0.125, 14, 100);
        assert!(l.params > 3 * h.params, "~3x smaller claim");
        assert!(
            l.inference_ops > 8 * h.inference_ops,
            "order-of-magnitude ops claim: {} vs {}",
            l.inference_ops,
            h.inference_ops
        );
    }

    #[test]
    fn storage_scales_with_width() {
        let c = OpCounts::lstm(500, 50, 128);
        assert_eq!(c.storage_bytes(4), c.params * 4);
        assert_eq!(c.storage_bytes(1), c.params);
    }
}
