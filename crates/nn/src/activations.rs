//! Numerically stable activation functions and small vector helpers.

/// Logistic sigmoid, `1 / (1 + e^-x)`, computed stably for large `|x|`.
pub fn sigmoid(x: f32) -> f32 {
    if x >= 0.0 {
        let z = (-x).exp();
        1.0 / (1.0 + z)
    } else {
        let z = x.exp();
        z / (1.0 + z)
    }
}

/// Hyperbolic tangent.
pub fn tanh(x: f32) -> f32 {
    x.tanh()
}

/// Derivative of sigmoid expressed through its output `s = sigmoid(x)`.
pub fn sigmoid_deriv_from_output(s: f32) -> f32 {
    s * (1.0 - s)
}

/// Derivative of tanh expressed through its output `t = tanh(x)`.
pub fn tanh_deriv_from_output(t: f32) -> f32 {
    1.0 - t * t
}

/// In-place stable softmax over `xs`.
///
/// Subtracts the maximum before exponentiating so that no element
/// overflows. An empty slice is left untouched.
pub fn softmax_in_place(xs: &mut [f32]) {
    if xs.is_empty() {
        return;
    }
    let max = xs.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
    let mut sum = 0.0f32;
    for x in xs.iter_mut() {
        *x = (*x - max).exp();
        sum += *x;
    }
    // `sum >= 1` because one exponent is exactly `e^0 = 1`, so the
    // division is always well-defined.
    for x in xs.iter_mut() {
        *x /= sum;
    }
}

/// Index of the maximum element; ties resolve to the lowest index.
///
/// Returns `None` for an empty slice.
pub fn argmax(xs: &[f32]) -> Option<usize> {
    let mut best: Option<(usize, f32)> = None;
    for (i, &x) in xs.iter().enumerate() {
        match best {
            Some((_, b)) if x <= b => {}
            _ => best = Some((i, x)),
        }
    }
    best.map(|(i, _)| i)
}

/// Indices of the `k` largest elements, in descending value order.
///
/// Returns fewer than `k` indices if the slice is shorter than `k`.
pub fn top_k(xs: &[f32], k: usize) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..xs.len()).collect();
    idx.sort_by(|&a, &b| {
        xs[b]
            .partial_cmp(&xs[a])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    idx.truncate(k);
    idx
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sigmoid_is_stable_at_extremes() {
        assert_eq!(sigmoid(1000.0), 1.0);
        assert_eq!(sigmoid(-1000.0), 0.0);
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-7);
    }

    #[test]
    fn sigmoid_is_monotonic() {
        let mut prev = sigmoid(-5.0);
        for i in -49..50 {
            let s = sigmoid(i as f32 * 0.1);
            assert!(s >= prev);
            prev = s;
        }
    }

    #[test]
    fn softmax_sums_to_one_and_orders() {
        let mut xs = vec![1.0, 2.0, 3.0];
        softmax_in_place(&mut xs);
        let sum: f32 = xs.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6);
        assert!(xs[2] > xs[1] && xs[1] > xs[0]);
    }

    #[test]
    fn softmax_survives_huge_logits() {
        let mut xs = vec![1e30, 1e30, -1e30];
        softmax_in_place(&mut xs);
        assert!((xs[0] - 0.5).abs() < 1e-6);
        assert!((xs[1] - 0.5).abs() < 1e-6);
        assert_eq!(xs[2], 0.0);
    }

    #[test]
    fn softmax_empty_is_noop() {
        let mut xs: Vec<f32> = vec![];
        softmax_in_place(&mut xs);
        assert!(xs.is_empty());
    }

    #[test]
    fn argmax_picks_first_of_ties() {
        assert_eq!(argmax(&[1.0, 3.0, 3.0, 2.0]), Some(1));
        assert_eq!(argmax(&[]), None);
    }

    #[test]
    fn top_k_returns_descending() {
        let xs = [0.1, 0.9, 0.5, 0.7];
        assert_eq!(top_k(&xs, 3), vec![1, 3, 2]);
        assert_eq!(top_k(&xs, 10).len(), 4);
    }

    #[test]
    fn derivative_identities_hold() {
        for &x in &[-2.0f32, -0.3, 0.0, 0.7, 3.0] {
            let s = sigmoid(x);
            let eps = 1e-3;
            let numeric = (sigmoid(x + eps) - sigmoid(x - eps)) / (2.0 * eps);
            assert!((sigmoid_deriv_from_output(s) - numeric).abs() < 1e-3);
            let t = tanh(x);
            let numeric_t = (tanh(x + eps) - tanh(x - eps)) / (2.0 * eps);
            assert!((tanh_deriv_from_output(t) - numeric_t).abs() < 1e-3);
        }
    }
}
