//! From-scratch neural-network substrate for the HNP project.
//!
//! This crate implements everything the paper's deep-learning baseline
//! needs, with no external ML dependencies:
//!
//! * dense row-major [`matrix::Matrix`] arithmetic,
//! * numerically stable [activations],
//! * an [embedding table](embedding::Embedding),
//! * an [LSTM](lstm) cell and sequence model trained with truncated BPTT,
//! * [post-training INT8 quantization](quant) for the Fig. 2 experiment,
//! * [optimizers](optimizer) (SGD with clipping, Adam),
//! * exact [operation accounting](ops) used to regenerate Table 2, and
//! * a small [scoped-thread parallel runtime](parallel) used for the
//!   one-vs-two-thread latency comparison in Fig. 2.
//!
//! The design goal is faithfulness to the paper's measured artifact (an
//! LSTM delta-prediction prefetcher of roughly 170 k parameters) rather
//! than framework generality.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod activations;
pub mod attention;
pub mod embedding;
pub mod init;
pub mod loss;
pub mod lstm;
pub mod matrix;
pub mod norm;
pub mod ops;
pub mod optimizer;
pub mod parallel;
pub mod quant;
pub mod transformer;

pub use lstm::{LstmConfig, LstmNetwork};
pub use matrix::Matrix;
pub use ops::OpCounts;
pub use transformer::{TransformerConfig, TransformerNetwork};
