//! Post-training INT8 quantization of the LSTM for the Fig. 2
//! experiment.
//!
//! The paper quantizes the LSTM's parameters (FP32 -> INT8) for
//! inference and finds latency improves but remains far above the 1-10
//! microsecond target. This module implements dynamic quantization in
//! the style used by production CPU runtimes: weights are quantized
//! symmetrically per row ahead of time; activations are quantized per
//! vector at run time; accumulation is `i32`.

use crate::activations::{argmax, sigmoid, softmax_in_place, tanh};
use crate::lstm::{LstmNetwork, LstmState};
use crate::matrix::Matrix;

/// A row-quantized INT8 matrix with per-row symmetric scales.
#[derive(Debug, Clone)]
pub struct QuantizedMatrix {
    rows: usize,
    cols: usize,
    data: Vec<i8>,
    /// Per-row dequantization scales.
    scales: Vec<f32>,
}

impl QuantizedMatrix {
    /// Quantizes `m` row-wise: each row is scaled so its maximum
    /// absolute value maps to 127.
    pub fn from_matrix(m: &Matrix) -> Self {
        let rows = m.rows();
        let cols = m.cols();
        let mut data = Vec::with_capacity(rows * cols);
        let mut scales = Vec::with_capacity(rows);
        for r in 0..rows {
            let row = m.row(r);
            let max = row.iter().fold(0.0f32, |a, &x| a.max(x.abs()));
            let scale = if max == 0.0 { 1.0 } else { max / 127.0 };
            scales.push(scale);
            for &x in row {
                data.push((x / scale).round().clamp(-127.0, 127.0) as i8);
            }
        }
        Self {
            rows,
            cols,
            data,
            scales,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Storage for the quantized weights, in bytes (i8 weights + f32
    /// row scales).
    pub fn storage_bytes(&self) -> usize {
        self.data.len() + 4 * self.scales.len()
    }

    /// Dequantizes back to an `f32` matrix (for error measurement).
    pub fn dequantize(&self) -> Matrix {
        Matrix::from_fn(self.rows, self.cols, |r, c| {
            self.data[r * self.cols + c] as f32 * self.scales[r]
        })
    }

    /// `out += self * x` using INT8 arithmetic with i32 accumulation.
    /// `x` is quantized per call (dynamic quantization).
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn matvec_acc(&self, x: &[f32], out: &mut [f32]) {
        assert_eq!(x.len(), self.cols, "vector length mismatch");
        assert_eq!(out.len(), self.rows, "output length mismatch");
        let (qx, sx) = quantize_vector(x);
        for (r, o) in out.iter_mut().enumerate() {
            let row = &self.data[r * self.cols..(r + 1) * self.cols];
            let mut acc: i32 = 0;
            for (&w, &v) in row.iter().zip(qx.iter()) {
                acc += (w as i32) * (v as i32);
            }
            *o += acc as f32 * self.scales[r] * sx;
        }
    }
}

/// Quantizes a vector symmetrically to i8, returning the values and the
/// dequantization scale.
pub fn quantize_vector(x: &[f32]) -> (Vec<i8>, f32) {
    let max = x.iter().fold(0.0f32, |a, &v| a.max(v.abs()));
    let scale = if max == 0.0 { 1.0 } else { max / 127.0 };
    let q = x
        .iter()
        .map(|&v| (v / scale).round().clamp(-127.0, 127.0) as i8)
        .collect();
    (q, scale)
}

/// An INT8-quantized snapshot of an [`LstmNetwork`] for inference.
///
/// Gate layout matches the float model: `[i, f, g, o]`.
pub struct QuantizedLstm {
    hidden: usize,
    vocab: usize,
    embed: QuantizedMatrix,
    w_x: QuantizedMatrix,
    w_h: QuantizedMatrix,
    b: Vec<f32>,
    w_out: QuantizedMatrix,
    b_out: Vec<f32>,
    state: LstmState,
}

impl QuantizedLstm {
    /// Quantizes the current weights of `net`. The online state starts
    /// at zero.
    pub fn from_network(net: &LstmNetwork) -> Self {
        let (embedding, w_x, w_h, b, w_out, b_out) = net.tensors();
        Self {
            hidden: net.config().hidden,
            vocab: net.config().vocab,
            embed: QuantizedMatrix::from_matrix(embedding.weights()),
            w_x: QuantizedMatrix::from_matrix(w_x),
            w_h: QuantizedMatrix::from_matrix(w_h),
            b: b.to_vec(),
            w_out: QuantizedMatrix::from_matrix(w_out),
            b_out: b_out.to_vec(),
            state: LstmState::zeros(net.config().hidden),
        }
    }

    /// Total quantized storage in bytes.
    pub fn storage_bytes(&self) -> usize {
        self.embed.storage_bytes()
            + self.w_x.storage_bytes()
            + self.w_h.storage_bytes()
            + self.w_out.storage_bytes()
            + 4 * (self.b.len() + self.b_out.len())
    }

    /// Resets the recurrent state.
    pub fn reset_state(&mut self) {
        self.state = LstmState::zeros(self.hidden);
    }

    /// Consumes `token`, advances the state, and returns the
    /// post-softmax distribution over the next token.
    ///
    /// # Panics
    ///
    /// Panics if `token` is out of vocabulary.
    pub fn infer_advance(&mut self, token: usize) -> Vec<f32> {
        let (h, c) = (self.state.h.clone(), self.state.c.clone());
        let (h_new, c_new, logits) = self.cell_forward(token, &h, &c);
        self.state.h = h_new;
        self.state.c = c_new;
        let mut probs = logits;
        softmax_in_place(&mut probs);
        probs
    }

    /// Autoregressive rollout of `steps` future predictions (Fig. 2's
    /// x-axis) without disturbing the online state.
    pub fn rollout(&self, token: usize, steps: usize) -> Vec<usize> {
        let mut h = self.state.h.clone();
        let mut c = self.state.c.clone();
        let mut tok = token;
        let mut preds = Vec::with_capacity(steps);
        for _ in 0..steps {
            let (h_new, c_new, logits) = self.cell_forward(tok, &h, &c);
            let Some(p) = argmax(&logits) else { break };
            preds.push(p);
            h = h_new;
            c = c_new;
            tok = p;
        }
        preds
    }

    fn cell_forward(&self, token: usize, h: &[f32], c: &[f32]) -> (Vec<f32>, Vec<f32>, Vec<f32>) {
        assert!(token < self.vocab, "token {} out of vocabulary", token);
        let hd = self.hidden;
        // Dequantize the embedding row.
        let x: Vec<f32> = (0..self.embed.cols())
            .map(|j| {
                self.embed.data[token * self.embed.cols() + j] as f32 * self.embed.scales[token]
            })
            .collect();
        let mut z = self.b.clone();
        self.w_x.matvec_acc(&x, &mut z);
        self.w_h.matvec_acc(h, &mut z);
        let mut c_new = vec![0.0; hd];
        let mut h_new = vec![0.0; hd];
        for j in 0..hd {
            let i = sigmoid(z[j]);
            let f = sigmoid(z[hd + j]);
            let g = tanh(z[2 * hd + j]);
            let o = sigmoid(z[3 * hd + j]);
            c_new[j] = f * c[j] + i * g;
            h_new[j] = o * tanh(c_new[j]);
        }
        let mut logits = self.b_out.clone();
        self.w_out.matvec_acc(&h_new, &mut logits);
        (h_new, c_new, logits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lstm::LstmConfig;

    #[test]
    fn quantization_roundtrip_error_is_small() {
        let m = Matrix::from_fn(8, 16, |r, c| ((r * 13 + c * 7) % 29) as f32 / 29.0 - 0.5);
        let q = QuantizedMatrix::from_matrix(&m);
        let d = q.dequantize();
        for (a, b) in m.as_slice().iter().zip(d.as_slice()) {
            assert!((a - b).abs() < 0.01, "{a} vs {b}");
        }
    }

    #[test]
    fn quantized_matvec_approximates_float() {
        let m = Matrix::from_fn(6, 10, |r, c| ((r + c) as f32).sin() * 0.3);
        let x: Vec<f32> = (0..10).map(|i| (i as f32 * 0.7).cos()).collect();
        let mut fx = vec![0.0; 6];
        m.matvec_acc(&x, &mut fx);
        let q = QuantizedMatrix::from_matrix(&m);
        let mut qx = vec![0.0; 6];
        q.matvec_acc(&x, &mut qx);
        for (a, b) in fx.iter().zip(qx.iter()) {
            assert!((a - b).abs() < 0.05, "{a} vs {b}");
        }
    }

    #[test]
    fn zero_row_quantizes_safely() {
        let m = Matrix::zeros(3, 4);
        let q = QuantizedMatrix::from_matrix(&m);
        let mut out = vec![0.0; 3];
        q.matvec_acc(&[1.0, 2.0, 3.0, 4.0], &mut out);
        assert_eq!(out, vec![0.0; 3]);
    }

    #[test]
    fn quantized_model_agrees_with_float_model_on_trained_task() {
        let mut net = LstmNetwork::new(LstmConfig::tiny());
        let cycle = [1usize, 4, 2, 7, 5, 3];
        for _ in 0..300 {
            net.reset_state();
            for w in 0..cycle.len() {
                net.train_step(cycle[w], cycle[(w + 1) % cycle.len()]);
            }
        }
        let mut q = QuantizedLstm::from_network(&net);
        net.reset_state();
        // Warm both models on one cycle, then compare predictions.
        let mut agree = 0;
        let mut total = 0;
        for _ in 0..3 {
            for &tok in &cycle {
                let pf = net.infer_advance(tok);
                let pq = q.infer_advance(tok);
                let af = crate::activations::argmax(&pf).unwrap();
                let aq = crate::activations::argmax(&pq).unwrap();
                total += 1;
                if af == aq {
                    agree += 1;
                }
            }
        }
        assert!(
            agree as f32 / total as f32 > 0.8,
            "quantized model diverged: {agree}/{total}"
        );
    }

    #[test]
    fn quantized_storage_is_roughly_quarter_of_fp32() {
        let net = LstmNetwork::new(LstmConfig::paper_table2());
        let q = QuantizedLstm::from_network(&net);
        let fp32 = net.param_count() * 4;
        assert!(
            q.storage_bytes() < fp32 / 3,
            "expected ~4x compression: {} vs {}",
            q.storage_bytes(),
            fp32
        );
    }

    #[test]
    fn rollout_is_deterministic() {
        let net = LstmNetwork::new(LstmConfig::tiny());
        let q = QuantizedLstm::from_network(&net);
        assert_eq!(q.rollout(3, 5), q.rollout(3, 5));
    }
}
