//! Dense row-major matrix arithmetic.
//!
//! A deliberately small, allocation-conscious matrix type. Hot paths
//! (`matmul_into`, `matvec_into`) avoid temporary allocation and use an
//! i-k-j loop order so the innermost loop walks both operands
//! sequentially.

use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense row-major `f32` matrix.
///
/// Storage is a single `Vec<f32>` of length `rows * cols`; element
/// `(r, c)` lives at `r * cols + c`.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Creates a `rows x cols` matrix of zeros.
    ///
    /// # Panics
    ///
    /// Panics if `rows * cols` overflows `usize`.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        let len = rows.checked_mul(cols);
        // hnp-lint: allow(panic_hygiene): documented construction contract
        let len = len.expect("matrix dimensions overflow usize");
        Self {
            rows,
            cols,
            data: vec![0.0; len],
        }
    }

    /// Creates a matrix by evaluating `f(row, col)` at every position.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut m = Self::zeros(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                m.data[r * cols + c] = f(r, c);
            }
        }
        m
    }

    /// Creates a matrix from a row-major data vector.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "data length {} does not match {}x{}",
            data.len(),
            rows,
            cols
        );
        Self { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the matrix has zero elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the backing row-major storage.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the backing row-major storage.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Immutable view of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    pub fn row(&self, r: usize) -> &[f32] {
        assert!(
            r < self.rows,
            "row {} out of bounds ({} rows)",
            r,
            self.rows
        );
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable view of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        assert!(
            r < self.rows,
            "row {} out of bounds ({} rows)",
            r,
            self.rows
        );
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Sets every element to zero, keeping the allocation.
    pub fn fill_zero(&mut self) {
        self.data.iter_mut().for_each(|x| *x = 0.0);
    }

    /// `self += other`, elementwise.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add_assign(&mut self, other: &Matrix) {
        self.assert_same_shape(other);
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += *b;
        }
    }

    /// `self += alpha * other`, elementwise (AXPY).
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn axpy(&mut self, alpha: f32, other: &Matrix) {
        self.assert_same_shape(other);
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += alpha * *b;
        }
    }

    /// Multiplies every element by `alpha`.
    pub fn scale(&mut self, alpha: f32) {
        self.data.iter_mut().for_each(|x| *x *= alpha);
    }

    /// Returns the transpose as a new matrix.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                t.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        t
    }

    /// `out = self * other` (matrix product), reusing `out`'s storage.
    ///
    /// # Panics
    ///
    /// Panics if inner dimensions disagree or `out` has the wrong shape.
    pub fn matmul_into(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!(
            self.cols, other.rows,
            "inner dimension mismatch: {}x{} * {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        assert_eq!(out.rows, self.rows, "output row mismatch");
        assert_eq!(out.cols, other.cols, "output col mismatch");
        out.fill_zero();
        // The i-k-j order keeps the inner loop sequential over both
        // `other` and `out` rows.
        for i in 0..self.rows {
            let a_row = &self.data[i * self.cols..(i + 1) * self.cols];
            let out_row = &mut out.data[i * other.cols..(i + 1) * other.cols];
            for (k, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let b_row = &other.data[k * other.cols..(k + 1) * other.cols];
                for (o, &b) in out_row.iter_mut().zip(b_row.iter()) {
                    *o += a * b;
                }
            }
        }
    }

    /// `self * other` as a new matrix.
    ///
    /// # Panics
    ///
    /// Panics if inner dimensions disagree.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.rows, other.cols);
        self.matmul_into(other, &mut out);
        out
    }

    /// `out += self * x` where `x` is a dense vector (`cols` long) and
    /// `out` is `rows` long.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn matvec_acc(&self, x: &[f32], out: &mut [f32]) {
        assert_eq!(x.len(), self.cols, "vector length mismatch");
        assert_eq!(out.len(), self.rows, "output length mismatch");
        for (r, o) in out.iter_mut().enumerate() {
            let row = &self.data[r * self.cols..(r + 1) * self.cols];
            let mut acc = 0.0f32;
            for (&w, &v) in row.iter().zip(x.iter()) {
                acc += w * v;
            }
            *o += acc;
        }
    }

    /// `out += self^T * x` where `x` is `rows` long and `out` is `cols`
    /// long. Used for backward passes without materializing transposes.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn matvec_t_acc(&self, x: &[f32], out: &mut [f32]) {
        assert_eq!(x.len(), self.rows, "vector length mismatch");
        assert_eq!(out.len(), self.cols, "output length mismatch");
        for (r, &v) in x.iter().enumerate() {
            if v == 0.0 {
                continue;
            }
            let row = &self.data[r * self.cols..(r + 1) * self.cols];
            for (o, &w) in out.iter_mut().zip(row.iter()) {
                *o += w * v;
            }
        }
    }

    /// Rank-1 accumulation: `self += alpha * a * b^T` where `a` is
    /// `rows` long and `b` is `cols` long. The workhorse of gradient
    /// accumulation.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn rank1_acc(&mut self, alpha: f32, a: &[f32], b: &[f32]) {
        assert_eq!(a.len(), self.rows, "outer-product row length mismatch");
        assert_eq!(b.len(), self.cols, "outer-product col length mismatch");
        for (r, &av) in a.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let coef = alpha * av;
            let row = &mut self.data[r * self.cols..(r + 1) * self.cols];
            for (w, &bv) in row.iter_mut().zip(b.iter()) {
                *w += coef * bv;
            }
        }
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum::<f32>().sqrt()
    }

    /// Clips every element into `[-limit, limit]`.
    ///
    /// # Panics
    ///
    /// Panics if `limit` is negative or NaN.
    pub fn clip(&mut self, limit: f32) {
        assert!(limit >= 0.0, "clip limit must be non-negative");
        for x in &mut self.data {
            *x = x.clamp(-limit, limit);
        }
    }

    fn assert_same_shape(&self, other: &Matrix) {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "shape mismatch: {}x{} vs {}x{}",
            self.rows,
            self.cols,
            other.rows,
            other.cols
        );
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f32;

    fn index(&self, (r, c): (usize, usize)) -> &f32 {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f32 {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        &mut self.data[r * self.cols + c]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Matrix({}x{})", self.rows, self.cols)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_has_right_shape_and_content() {
        let m = Matrix::zeros(3, 4);
        assert_eq!(m.rows(), 3);
        assert_eq!(m.cols(), 4);
        assert!(m.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn from_fn_fills_row_major() {
        let m = Matrix::from_fn(2, 3, |r, c| (r * 10 + c) as f32);
        assert_eq!(m.as_slice(), &[0.0, 1.0, 2.0, 10.0, 11.0, 12.0]);
        assert_eq!(m[(1, 2)], 12.0);
    }

    #[test]
    fn matmul_matches_hand_computed_product() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Matrix::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c.as_slice(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn transpose_roundtrips() {
        let a = Matrix::from_fn(3, 5, |r, c| (r * 5 + c) as f32);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn matvec_acc_matches_matmul() {
        let a = Matrix::from_fn(4, 3, |r, c| (r + c) as f32 * 0.5);
        let x = [1.0, -2.0, 3.0];
        let mut out = vec![0.0; 4];
        a.matvec_acc(&x, &mut out);
        let xm = Matrix::from_vec(3, 1, x.to_vec());
        let expect = a.matmul(&xm);
        for (o, e) in out.iter().zip(expect.as_slice()) {
            assert!((o - e).abs() < 1e-6);
        }
    }

    #[test]
    fn matvec_t_acc_matches_transpose_product() {
        let a = Matrix::from_fn(4, 3, |r, c| (r as f32 - c as f32) * 0.25);
        let x = [1.0, 0.5, -1.0, 2.0];
        let mut out = vec![0.0; 3];
        a.matvec_t_acc(&x, &mut out);
        let at = a.transpose();
        let mut expect = vec![0.0; 3];
        at.matvec_acc(&x, &mut expect);
        for (o, e) in out.iter().zip(expect.iter()) {
            assert!((o - e).abs() < 1e-6);
        }
    }

    #[test]
    fn rank1_acc_matches_outer_product() {
        let mut m = Matrix::zeros(2, 3);
        m.rank1_acc(2.0, &[1.0, -1.0], &[3.0, 0.0, 5.0]);
        assert_eq!(m.as_slice(), &[6.0, 0.0, 10.0, -6.0, 0.0, -10.0]);
    }

    #[test]
    fn clip_bounds_elements() {
        let mut m = Matrix::from_vec(1, 4, vec![-10.0, -0.5, 0.5, 10.0]);
        m.clip(1.0);
        assert_eq!(m.as_slice(), &[-1.0, -0.5, 0.5, 1.0]);
    }

    #[test]
    #[should_panic(expected = "inner dimension mismatch")]
    fn matmul_rejects_bad_shapes() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(4, 2);
        let _ = a.matmul(&b);
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = Matrix::from_vec(1, 2, vec![1.0, 2.0]);
        let b = Matrix::from_vec(1, 2, vec![10.0, 20.0]);
        a.axpy(0.5, &b);
        assert_eq!(a.as_slice(), &[6.0, 12.0]);
    }
}
