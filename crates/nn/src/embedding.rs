//! Token embedding table.

use rand::Rng;

use crate::init;
use crate::matrix::Matrix;

/// A learned `vocab x dim` embedding table.
///
/// Prefetch models index this table with delta-vocabulary tokens; the
/// paper notes (§5.3) that this table dominates storage in prior DL
/// prefetchers, which is why the vocabulary is kept bounded here.
#[derive(Clone, Debug)]
pub struct Embedding {
    weights: Matrix,
    grads: Matrix,
}

impl Embedding {
    /// Creates an embedding table with Xavier-uniform rows.
    pub fn new(vocab: usize, dim: usize, rng: &mut impl Rng) -> Self {
        Self {
            weights: init::xavier_uniform(vocab, dim, rng),
            grads: Matrix::zeros(vocab, dim),
        }
    }

    /// Vocabulary size.
    pub fn vocab(&self) -> usize {
        self.weights.rows()
    }

    /// Embedding dimension.
    pub fn dim(&self) -> usize {
        self.weights.cols()
    }

    /// The embedding vector for `token`.
    ///
    /// # Panics
    ///
    /// Panics if `token` is out of the vocabulary.
    pub fn lookup(&self, token: usize) -> &[f32] {
        self.weights.row(token)
    }

    /// Accumulates the gradient `g` into the row for `token`.
    ///
    /// # Panics
    ///
    /// Panics if `token` is out of vocabulary or `g` has the wrong length.
    pub fn accumulate_grad(&mut self, token: usize, g: &[f32]) {
        let row = self.grads.row_mut(token);
        assert_eq!(row.len(), g.len(), "gradient length mismatch");
        for (r, &v) in row.iter_mut().zip(g.iter()) {
            *r += v;
        }
    }

    /// Applies accumulated gradients with a plain SGD step and clears
    /// them. `clip` bounds each gradient element.
    pub fn apply_grads(&mut self, lr: f32, clip: f32) {
        self.grads.clip(clip);
        self.weights.axpy(-lr, &self.grads);
        self.grads.fill_zero();
    }

    /// Number of parameters.
    pub fn param_count(&self) -> usize {
        self.weights.len()
    }

    /// Read-only access to the weights (used by quantization).
    pub fn weights(&self) -> &Matrix {
        &self.weights
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn lookup_returns_dim_sized_rows() {
        let mut rng = StdRng::seed_from_u64(3);
        let e = Embedding::new(16, 8, &mut rng);
        assert_eq!(e.lookup(0).len(), 8);
        assert_eq!(e.vocab(), 16);
        assert_eq!(e.param_count(), 128);
    }

    #[test]
    fn sgd_moves_only_touched_rows() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut e = Embedding::new(4, 2, &mut rng);
        let before0 = e.lookup(0).to_vec();
        let before1 = e.lookup(1).to_vec();
        e.accumulate_grad(1, &[1.0, -1.0]);
        e.apply_grads(0.1, 10.0);
        assert_eq!(e.lookup(0), before0.as_slice());
        assert!((e.lookup(1)[0] - (before1[0] - 0.1)).abs() < 1e-6);
        assert!((e.lookup(1)[1] - (before1[1] + 0.1)).abs() < 1e-6);
    }

    #[test]
    fn grads_clear_after_apply() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut e = Embedding::new(4, 2, &mut rng);
        e.accumulate_grad(2, &[5.0, 5.0]);
        e.apply_grads(0.1, 1.0);
        let w = e.lookup(2).to_vec();
        // A second apply with no new gradient must be a no-op.
        e.apply_grads(0.1, 1.0);
        assert_eq!(e.lookup(2), w.as_slice());
    }
}
