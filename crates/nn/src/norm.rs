//! RMS normalization with a learned gain.
//!
//! Used by the transformer baseline. RMSNorm (Zhang & Sennrich) is
//! chosen over LayerNorm for its simpler, well-conditioned backward
//! pass: `y_i = g_i * x_i / rms(x)` with `rms(x) = sqrt(mean(x^2) +
//! eps)`.

#![allow(clippy::needless_range_loop)] // Index loops mirror the math.

/// RMS normalization over the last dimension, with learned gains.
#[derive(Debug, Clone)]
pub struct RmsNorm {
    gain: Vec<f32>,
    grad_gain: Vec<f32>,
    eps: f32,
}

/// Cached forward values needed by the backward pass.
#[derive(Debug, Clone)]
pub struct RmsNormCache {
    /// The input row.
    x: Vec<f32>,
    /// The computed rms value.
    rms: f32,
}

impl RmsNorm {
    /// Creates a norm over `dim`-wide rows with unit gains.
    pub fn new(dim: usize) -> Self {
        Self {
            gain: vec![1.0; dim],
            grad_gain: vec![0.0; dim],
            eps: 1e-5,
        }
    }

    /// Width.
    pub fn dim(&self) -> usize {
        self.gain.len()
    }

    /// Parameter count.
    pub fn param_count(&self) -> usize {
        self.gain.len()
    }

    /// Normalizes one row; returns the output and the backward cache.
    ///
    /// # Panics
    ///
    /// Panics on width mismatch.
    pub fn forward(&self, x: &[f32]) -> (Vec<f32>, RmsNormCache) {
        assert_eq!(x.len(), self.gain.len(), "width mismatch");
        let ms = x.iter().map(|v| v * v).sum::<f32>() / x.len() as f32;
        let rms = (ms + self.eps).sqrt();
        let y = x
            .iter()
            .zip(self.gain.iter())
            .map(|(&v, &g)| g * v / rms)
            .collect();
        (y, RmsNormCache { x: x.to_vec(), rms })
    }

    /// Backward: accumulates the gain gradient and returns `dx`.
    ///
    /// With `n = dim`, `r = rms(x)`:
    /// `dx_i = g_i/r * dy_i - x_i / (n r^3) * sum_j dy_j g_j x_j`.
    pub fn backward(&mut self, cache: &RmsNormCache, dy: &[f32]) -> Vec<f32> {
        let n = cache.x.len() as f32;
        let r = cache.rms;
        let mut dot = 0.0f32;
        for j in 0..cache.x.len() {
            dot += dy[j] * self.gain[j] * cache.x[j];
            self.grad_gain[j] += dy[j] * cache.x[j] / r;
        }
        cache
            .x
            .iter()
            .zip(dy.iter())
            .zip(self.gain.iter())
            .map(|((&x, &d), &g)| g / r * d - x * dot / (n * r * r * r))
            .collect()
    }

    /// Applies and clears accumulated gain gradients.
    pub fn apply_grads(&mut self, lr: f32, clip: f32) {
        for (g, d) in self.gain.iter_mut().zip(self.grad_gain.iter_mut()) {
            *g -= lr * d.clamp(-clip, clip);
            *d = 0.0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn output_has_unit_rms_before_gain() {
        let n = RmsNorm::new(8);
        let x: Vec<f32> = (0..8).map(|i| i as f32 - 3.0).collect();
        let (y, _) = n.forward(&x);
        let rms = (y.iter().map(|v| v * v).sum::<f32>() / 8.0).sqrt();
        assert!((rms - 1.0).abs() < 1e-3, "rms {rms}");
    }

    #[test]
    fn backward_matches_finite_differences() {
        let mut n = RmsNorm::new(5);
        // Non-trivial gains.
        for (i, g) in n.gain.iter_mut().enumerate() {
            *g = 0.5 + 0.3 * i as f32;
        }
        let x = [0.4f32, -1.2, 2.0, 0.1, -0.7];
        // Loss = sum(w_i * y_i) for fixed weights w.
        let w = [0.3f32, -0.8, 0.5, 1.1, -0.2];
        let (y, cache) = n.forward(&x);
        let _ = y;
        let dx = n.backward(&cache, &w);
        let eps = 1e-3;
        for i in 0..5 {
            let mut xp = x;
            xp[i] += eps;
            let mut xm = x;
            xm[i] -= eps;
            let lp: f32 = n
                .forward(&xp)
                .0
                .iter()
                .zip(w.iter())
                .map(|(a, b)| a * b)
                .sum();
            let lm: f32 = n
                .forward(&xm)
                .0
                .iter()
                .zip(w.iter())
                .map(|(a, b)| a * b)
                .sum();
            let numeric = (lp - lm) / (2.0 * eps);
            assert!(
                (dx[i] - numeric).abs() < 1e-3,
                "dx[{i}] analytic {} vs numeric {}",
                dx[i],
                numeric
            );
        }
    }

    #[test]
    fn gain_gradient_matches_finite_differences() {
        let x = [0.4f32, -1.2, 2.0];
        let w = [1.0f32, -0.5, 0.25];
        let mut n = RmsNorm::new(3);
        let (_, cache) = n.forward(&x);
        n.backward(&cache, &w);
        let analytic = n.grad_gain.clone();
        let eps = 1e-3;
        for i in 0..3 {
            let mut np = RmsNorm::new(3);
            np.gain[i] += eps;
            let mut nm = RmsNorm::new(3);
            nm.gain[i] -= eps;
            let lp: f32 = np
                .forward(&x)
                .0
                .iter()
                .zip(w.iter())
                .map(|(a, b)| a * b)
                .sum();
            let lm: f32 = nm
                .forward(&x)
                .0
                .iter()
                .zip(w.iter())
                .map(|(a, b)| a * b)
                .sum();
            let numeric = (lp - lm) / (2.0 * eps);
            assert!(
                (analytic[i] - numeric).abs() < 1e-3,
                "dgain[{i}] {} vs {}",
                analytic[i],
                numeric
            );
        }
    }

    #[test]
    fn zero_input_is_safe() {
        let n = RmsNorm::new(4);
        let (y, _) = n.forward(&[0.0; 4]);
        assert!(y.iter().all(|v| v.is_finite()));
    }
}
