//! The transformer prefetcher: the other family of prior DL work the
//! paper critiques (§2 cites transformer-based prefetchers alongside
//! LSTMs).
//!
//! Deployment matches Fig. 1, like the LSTM baseline: page deltas are
//! tokenized into a bounded vocabulary, the model trains online on
//! each miss transition over a sliding context window, and emits a
//! multi-step rollout translated back to pages.

use std::collections::VecDeque;

use hnp_memsim::deltas::{pages_from_rollout, DeltaVocab};
use hnp_memsim::prefetcher::{MissEvent, Prefetcher};
use hnp_nn::transformer::{TransformerConfig, TransformerNetwork};

/// Configuration of the transformer prefetcher deployment.
#[derive(Debug, Clone)]
pub struct TransformerPrefetcherConfig {
    /// Delta vocabulary half-range.
    pub delta_range: i64,
    /// Model width.
    pub dim: usize,
    /// Attention heads.
    pub heads: usize,
    /// MLP width.
    pub ff: usize,
    /// Context window (miss-history length).
    pub window: usize,
    /// Online learning rate.
    pub learning_rate: f32,
    /// Prediction steps (prefetch length).
    pub lookahead: usize,
    /// Candidates per step (prefetch width).
    pub width: usize,
    /// Minimum first-step confidence to issue.
    pub min_confidence: f32,
    /// Whether to train online.
    pub train_online: bool,
    /// Seed.
    pub seed: u64,
}

impl Default for TransformerPrefetcherConfig {
    fn default() -> Self {
        Self {
            delta_range: 64,
            dim: 48,
            heads: 2,
            ff: 96,
            window: 6,
            learning_rate: 0.05,
            lookahead: 2,
            width: 2,
            min_confidence: 0.05,
            train_online: true,
            seed: 0x7f8,
        }
    }
}

/// The online transformer prefetcher.
pub struct TransformerPrefetcher {
    cfg: TransformerPrefetcherConfig,
    vocab: DeltaVocab,
    net: TransformerNetwork,
    history: VecDeque<usize>,
    last_page: Option<u64>,
    ema_confidence: f32,
}

impl TransformerPrefetcher {
    /// Builds the prefetcher.
    pub fn new(cfg: TransformerPrefetcherConfig) -> Self {
        let vocab = DeltaVocab::new(cfg.delta_range);
        let net = TransformerNetwork::new(TransformerConfig {
            vocab: vocab.len(),
            dim: cfg.dim,
            heads: cfg.heads,
            ff: cfg.ff,
            window: cfg.window,
            learning_rate: cfg.learning_rate,
            grad_clip: 1.0,
            seed: cfg.seed,
        });
        Self {
            cfg,
            vocab,
            net,
            history: VecDeque::new(),
            last_page: None,
            ema_confidence: 0.0,
        }
    }

    /// Running confidence EMA on observed targets.
    pub fn confidence(&self) -> f32 {
        self.ema_confidence
    }

    fn context(&self) -> Vec<usize> {
        self.history.iter().copied().collect()
    }
}

impl Prefetcher for TransformerPrefetcher {
    fn name(&self) -> &str {
        "transformer"
    }

    fn reset_state(&mut self) {
        // A restart loses the context window; weights survive.
        self.history.clear();
        self.last_page = None;
    }

    fn on_miss(&mut self, miss: &MissEvent) -> Vec<u64> {
        let Some(last) = self.last_page else {
            self.last_page = Some(miss.page);
            return Vec::new();
        };
        let token = self.vocab.token_of(miss.page as i64 - last as i64);
        self.last_page = Some(miss.page);
        // Train on (context -> token).
        if !self.history.is_empty() && self.cfg.train_online {
            let ctx = self.context();
            let loss = self.net.train_window(&ctx, token, self.cfg.learning_rate);
            self.ema_confidence = 0.98 * self.ema_confidence + 0.02 * loss.confidence;
        }
        self.history.push_back(token);
        while self.history.len() > self.cfg.window {
            self.history.pop_front();
        }
        let ctx = self.context();
        let (rollout, confidence) =
            self.net
                .rollout_top_k_with_confidence(&ctx, self.cfg.lookahead, self.cfg.width);
        if confidence < self.cfg.min_confidence {
            return Vec::new();
        }
        pages_from_rollout(&self.vocab, miss.page, &rollout)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hnp_memsim::{NoPrefetcher, SimConfig, Simulator};
    use hnp_trace::Pattern;

    fn sim() -> Simulator {
        Simulator::new(SimConfig {
            capacity_pages: 32,
            miss_latency: 50,
            prefetch_latency: 50,
            max_issue_per_miss: 4,
            ..SimConfig::default()
        })
    }

    #[test]
    fn learns_stride_online_and_removes_misses() {
        let t = Pattern::Stride.generate(3000, 0);
        let s = sim();
        let base = s.run(&t, &mut NoPrefetcher);
        let mut p = TransformerPrefetcher::new(TransformerPrefetcherConfig::default());
        let rep = s.run(&t, &mut p);
        assert!(
            rep.pct_misses_removed(&base) > 25.0,
            "removed {:.1}%",
            rep.pct_misses_removed(&base)
        );
        assert!(p.confidence() > 0.05);
    }

    #[test]
    fn first_miss_is_silent() {
        let mut p = TransformerPrefetcher::new(TransformerPrefetcherConfig::default());
        assert!(p
            .on_miss(&MissEvent {
                page: 3,
                tick: 0,
                stream: 0
            })
            .is_empty());
    }

    #[test]
    fn frozen_model_does_not_update_confidence() {
        let t = Pattern::Stride.generate(1000, 0);
        let cfg = TransformerPrefetcherConfig {
            train_online: false,
            ..TransformerPrefetcherConfig::default()
        };
        let mut p = TransformerPrefetcher::new(cfg);
        let _ = sim().run(&t, &mut p);
        assert_eq!(p.confidence(), 0.0);
    }
}
