//! Non-learning baseline prefetchers.
//!
//! These are the "pre-programmed rules" the paper contrasts with
//! learned approaches: next-N-line, stride detection with a
//! confidence counter, and a first-order Markov (correlation) table.

use std::collections::HashMap;

use hnp_memsim::prefetcher::{MissEvent, Prefetcher};

/// Configuration of [`NextNPrefetcher`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NextNConfig {
    /// Sequential pages fetched per miss.
    pub degree: usize,
}

impl Default for NextNConfig {
    fn default() -> Self {
        Self { degree: 4 }
    }
}

impl NextNConfig {
    /// Sets the number of sequential pages fetched per miss.
    pub fn with_degree(mut self, degree: usize) -> Self {
        self.degree = degree;
        self
    }
}

/// Prefetches the next `n` sequential pages after every miss.
#[derive(Debug, Clone)]
pub struct NextNPrefetcher {
    n: usize,
}

impl NextNPrefetcher {
    /// Creates a next-`n`-line prefetcher from `cfg`.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.degree == 0`.
    pub fn with_config(cfg: NextNConfig) -> Self {
        assert!(cfg.degree > 0, "degree must be positive");
        Self { n: cfg.degree }
    }
}

impl Prefetcher for NextNPrefetcher {
    fn name(&self) -> &str {
        "next-n"
    }

    fn on_miss(&mut self, miss: &MissEvent) -> Vec<u64> {
        (1..=self.n as u64).map(|i| miss.page + i).collect()
    }
}

/// Classic stride detection: tracks the last two miss deltas and
/// prefetches ahead along a confirmed constant stride.
#[derive(Debug, Clone)]
pub struct StridePrefetcher {
    last_page: Option<u64>,
    last_delta: Option<i64>,
    /// Consecutive confirmations of the current stride.
    confidence: u32,
    /// Confirmations required before prefetching.
    threshold: u32,
    /// Pages fetched ahead once confident.
    degree: usize,
}

/// Configuration of [`StridePrefetcher`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StrideConfig {
    /// Consecutive stride confirmations required before prefetching.
    pub threshold: u32,
    /// Pages fetched ahead once confident.
    pub degree: usize,
}

impl Default for StrideConfig {
    fn default() -> Self {
        Self {
            threshold: 2,
            degree: 4,
        }
    }
}

impl StrideConfig {
    /// Sets the confirmation threshold.
    pub fn with_threshold(mut self, threshold: u32) -> Self {
        self.threshold = threshold;
        self
    }

    /// Sets the prefetch degree.
    pub fn with_degree(mut self, degree: usize) -> Self {
        self.degree = degree;
        self
    }
}

impl StridePrefetcher {
    /// Creates a stride prefetcher from `cfg`.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.degree == 0`.
    pub fn with_config(cfg: StrideConfig) -> Self {
        assert!(cfg.degree > 0, "degree must be positive");
        Self {
            last_page: None,
            last_delta: None,
            confidence: 0,
            threshold: cfg.threshold,
            degree: cfg.degree,
        }
    }
}

impl Prefetcher for StridePrefetcher {
    fn name(&self) -> &str {
        "stride"
    }

    fn reset_state(&mut self) {
        self.last_page = None;
        self.last_delta = None;
        self.confidence = 0;
    }

    fn on_miss(&mut self, miss: &MissEvent) -> Vec<u64> {
        let mut out = Vec::new();
        if let Some(last) = self.last_page {
            let delta = miss.page as i64 - last as i64;
            if Some(delta) == self.last_delta && delta != 0 {
                self.confidence = self.confidence.saturating_add(1);
            } else {
                self.confidence = 0;
                self.last_delta = Some(delta);
            }
            if self.confidence >= self.threshold {
                // Both branches above leave `last_delta == Some(delta)`.
                let d = delta;
                let mut p = miss.page as i64;
                for _ in 0..self.degree {
                    p += d;
                    if p >= 0 {
                        out.push(p as u64);
                    }
                }
            }
        }
        self.last_page = Some(miss.page);
        out
    }
}

/// First-order Markov (correlation) prefetcher: remembers up to
/// `successors` successor pages per miss page, most-recent first, with
/// a bounded table.
#[derive(Debug, Clone)]
pub struct MarkovPrefetcher {
    table: HashMap<u64, Vec<u64>>,
    order: Vec<u64>,
    capacity: usize,
    successors: usize,
    last_page: Option<u64>,
}

/// Configuration of [`MarkovPrefetcher`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MarkovConfig {
    /// Bounded transition-table capacity (pages tracked).
    pub capacity: usize,
    /// Successor predictions remembered per page.
    pub successors: usize,
}

impl Default for MarkovConfig {
    fn default() -> Self {
        Self {
            capacity: 4096,
            successors: 2,
        }
    }
}

impl MarkovConfig {
    /// Sets the transition-table capacity.
    pub fn with_capacity(mut self, capacity: usize) -> Self {
        self.capacity = capacity;
        self
    }

    /// Sets the successor count per page.
    pub fn with_successors(mut self, successors: usize) -> Self {
        self.successors = successors;
        self
    }
}

impl MarkovPrefetcher {
    /// Creates a Markov prefetcher from `cfg`.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.capacity == 0` or `cfg.successors == 0`.
    pub fn with_config(cfg: MarkovConfig) -> Self {
        assert!(cfg.capacity > 0 && cfg.successors > 0);
        Self {
            table: HashMap::new(),
            order: Vec::new(),
            capacity: cfg.capacity,
            successors: cfg.successors,
            last_page: None,
        }
    }

    fn note_transition(&mut self, from: u64, to: u64) {
        if !self.table.contains_key(&from) && self.table.len() >= self.capacity {
            // Evict the oldest entry (FIFO over first insertion).
            let victim = self.order.remove(0);
            self.table.remove(&victim);
        }
        let entry = self.table.entry(from).or_insert_with(|| {
            self.order.push(from);
            Vec::new()
        });
        // Most-recent-first, deduplicated, bounded.
        entry.retain(|&p| p != to);
        entry.insert(0, to);
        entry.truncate(self.successors);
    }
}

impl Prefetcher for MarkovPrefetcher {
    fn name(&self) -> &str {
        "markov"
    }

    fn reset_state(&mut self) {
        // A restart loses the last-page context; the learned
        // transition table survives.
        self.last_page = None;
    }

    fn on_miss(&mut self, miss: &MissEvent) -> Vec<u64> {
        if let Some(last) = self.last_page {
            self.note_transition(last, miss.page);
        }
        self.last_page = Some(miss.page);
        self.table.get(&miss.page).cloned().unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hnp_memsim::{NoPrefetcher, SimConfig, Simulator};
    use hnp_trace::Pattern;

    fn sim() -> Simulator {
        Simulator::new(SimConfig {
            capacity_pages: 32,
            miss_latency: 50,
            prefetch_latency: 50,
            ..SimConfig::default()
        })
    }

    #[test]
    fn next_n_emits_sequential_pages() {
        let mut p = NextNPrefetcher::with_config(NextNConfig::default().with_degree(3));
        let out = p.on_miss(&MissEvent {
            page: 10,
            tick: 0,
            stream: 0,
        });
        assert_eq!(out, vec![11, 12, 13]);
    }

    #[test]
    fn stride_prefetcher_waits_for_confirmation() {
        let mut p = StridePrefetcher::with_config(StrideConfig::default().with_degree(2));
        let mk = |page| MissEvent {
            page,
            tick: 0,
            stream: 0,
        };
        assert!(p.on_miss(&mk(10)).is_empty());
        assert!(p.on_miss(&mk(12)).is_empty()); // First delta seen.
        assert!(p.on_miss(&mk(14)).is_empty()); // Confidence 1 < 2.
        assert_eq!(p.on_miss(&mk(16)), vec![18, 20]); // Confirmed.
    }

    #[test]
    fn stride_prefetcher_resets_on_pattern_break() {
        let mut p = StridePrefetcher::with_config(StrideConfig {
            threshold: 1,
            degree: 1,
        });
        let mk = |page| MissEvent {
            page,
            tick: 0,
            stream: 0,
        };
        p.on_miss(&mk(10));
        p.on_miss(&mk(12));
        assert_eq!(p.on_miss(&mk(14)), vec![16]);
        assert!(p.on_miss(&mk(100)).is_empty(), "break resets confidence");
    }

    #[test]
    fn markov_learns_repeated_transitions() {
        let mut p = MarkovPrefetcher::with_config(MarkovConfig::default().with_capacity(16));
        let mk = |page| MissEvent {
            page,
            tick: 0,
            stream: 0,
        };
        // Sequence A(1) -> B(9) -> A -> B...
        p.on_miss(&mk(1));
        p.on_miss(&mk(9));
        let out = p.on_miss(&mk(1));
        assert_eq!(out, vec![9]);
    }

    #[test]
    fn markov_table_capacity_is_bounded() {
        let mut p = MarkovPrefetcher::with_config(MarkovConfig {
            capacity: 4,
            successors: 1,
        });
        let mk = |page| MissEvent {
            page,
            tick: 0,
            stream: 0,
        };
        for page in 0..100u64 {
            p.on_miss(&mk(page));
        }
        assert!(p.table.len() <= 4);
    }

    #[test]
    fn stride_prefetcher_beats_baseline_on_stride_trace() {
        let t = Pattern::Stride.generate(3000, 0);
        let s = sim();
        let base = s.run(&t, &mut NoPrefetcher);
        let rep = s.run(
            &t,
            &mut StridePrefetcher::with_config(StrideConfig::default()),
        );
        assert!(
            rep.pct_misses_removed(&base) > 40.0,
            "removed {:.1}%",
            rep.pct_misses_removed(&base)
        );
    }

    #[test]
    fn markov_beats_stride_on_pointer_chase() {
        let t = Pattern::PointerChase.generate(4000, 1);
        let s = sim();
        let base = s.run(&t, &mut NoPrefetcher);
        let stride = s.run(
            &t,
            &mut StridePrefetcher::with_config(StrideConfig::default()),
        );
        let markov = s.run(
            &t,
            &mut MarkovPrefetcher::with_config(MarkovConfig::default().with_capacity(256)),
        );
        assert!(
            markov.pct_misses_removed(&base) > stride.pct_misses_removed(&base),
            "markov {:.1}% vs stride {:.1}%",
            markov.pct_misses_removed(&base),
            stride.pct_misses_removed(&base)
        );
        assert!(markov.pct_misses_removed(&base) > 30.0);
    }

    #[test]
    fn negative_stride_never_yields_negative_pages() {
        let mut p = StridePrefetcher::with_config(StrideConfig {
            threshold: 0,
            degree: 4,
        });
        let mk = |page| MissEvent {
            page,
            tick: 0,
            stream: 0,
        };
        p.on_miss(&mk(10));
        p.on_miss(&mk(5));
        let out = p.on_miss(&mk(0));
        assert!(out.iter().all(|&pg| pg < 10), "{out:?}");
    }
}
