//! The LSTM prefetcher: the paper's deep-learning baseline.
//!
//! Deployment follows Fig. 1: on each demand miss the page delta from
//! the previous miss is tokenized into a bounded delta vocabulary; the
//! LSTM consumes the token, is trained online against the *next* miss
//! (when it arrives), and emits a multi-step, multi-width rollout of
//! predicted deltas that are translated back to prefetch pages.

use hnp_memsim::deltas::DeltaVocab;
use hnp_memsim::prefetcher::{MissEvent, Prefetcher};
use hnp_nn::lstm::{LstmConfig, LstmNetwork};

/// Configuration of the LSTM prefetcher deployment.
#[derive(Debug, Clone)]
pub struct LstmPrefetcherConfig {
    /// Delta vocabulary half-range (tokens cover `[-range, range]`).
    pub delta_range: i64,
    /// Embedding width.
    pub embed_dim: usize,
    /// Hidden width.
    pub hidden: usize,
    /// Online learning rate.
    pub learning_rate: f32,
    /// Prediction steps into the future (prefetch length, §5.2).
    pub lookahead: usize,
    /// Predictions per step (prefetch width, §5.2).
    pub width: usize,
    /// Whether online training is enabled (disable for frozen-model
    /// ablations).
    pub train_online: bool,
    /// Minimum first-step softmax probability required to issue
    /// prefetches (§5.2 selectivity; prevents an untrained model from
    /// polluting memory).
    pub min_confidence: f32,
    /// Weight-init seed.
    pub seed: u64,
}

impl Default for LstmPrefetcherConfig {
    fn default() -> Self {
        Self {
            delta_range: 64,
            embed_dim: 32,
            hidden: 64,
            learning_rate: 0.05,
            lookahead: 2,
            width: 2,
            train_online: true,
            min_confidence: 0.05,
            seed: 0x15b4,
        }
    }
}

impl LstmPrefetcherConfig {
    /// The paper-scale deployment (~170 k parameters; slow — used by
    /// the latency benchmarks, not the simulations).
    pub fn paper_scale() -> Self {
        Self {
            delta_range: 64,
            embed_dim: 50,
            hidden: 128,
            ..Self::default()
        }
    }
}

/// The online-learning LSTM prefetcher.
pub struct LstmPrefetcher {
    cfg: LstmPrefetcherConfig,
    vocab: DeltaVocab,
    net: LstmNetwork,
    last_page: Option<u64>,
    last_token: Option<usize>,
    /// Exponential moving average of prediction confidence (§5.5 uses
    /// this to decide redeployments).
    ema_confidence: f32,
}

impl LstmPrefetcher {
    /// Builds the prefetcher.
    pub fn new(cfg: LstmPrefetcherConfig) -> Self {
        let vocab = DeltaVocab::new(cfg.delta_range);
        let net = LstmNetwork::new(LstmConfig {
            vocab: vocab.len(),
            embed_dim: cfg.embed_dim,
            hidden: cfg.hidden,
            learning_rate: cfg.learning_rate,
            grad_clip: 1.0,
            threads: 1,
            seed: cfg.seed,
        });
        Self {
            cfg,
            vocab,
            net,
            last_page: None,
            last_token: None,
            ema_confidence: 0.0,
        }
    }

    /// The running confidence EMA (probability assigned to observed
    /// targets).
    pub fn confidence(&self) -> f32 {
        self.ema_confidence
    }

    /// Access to the underlying network (availability experiments swap
    /// weights between live and shadow copies).
    pub fn network_mut(&mut self) -> &mut LstmNetwork {
        &mut self.net
    }

    /// Translates a rollout of token predictions into prefetch pages
    /// (see [`hnp_memsim::deltas::pages_from_rollout`]).
    fn pages_from_rollout(&self, base: u64, rollout: &[Vec<usize>]) -> Vec<u64> {
        hnp_memsim::deltas::pages_from_rollout(&self.vocab, base, rollout)
    }
}

impl Prefetcher for LstmPrefetcher {
    fn name(&self) -> &str {
        "lstm"
    }

    fn on_miss(&mut self, miss: &MissEvent) -> Vec<u64> {
        let token = match self.last_page {
            Some(last) => {
                let delta = miss.page as i64 - last as i64;
                Some(self.vocab.token_of(delta))
            }
            None => None,
        };
        if let (Some(prev), Some(cur)) = (self.last_token, token) {
            if self.cfg.train_online {
                // Online step: the state has already consumed `prev`'s
                // predecessors; consume `prev` now, fit `cur`.
                let loss = self.net.train_step(prev, cur);
                self.ema_confidence = 0.98 * self.ema_confidence + 0.02 * loss.confidence;
            } else {
                let _ = self.net.infer_advance(prev);
            }
        }
        self.last_page = Some(miss.page);
        if let Some(tok) = token {
            self.last_token = Some(tok);
            let (rollout, confidence) =
                self.net
                    .rollout_top_k_with_confidence(tok, self.cfg.lookahead, self.cfg.width);
            if confidence < self.cfg.min_confidence {
                return Vec::new();
            }
            self.pages_from_rollout(miss.page, &rollout)
        } else {
            self.last_token = None;
            Vec::new()
        }
    }

    fn reset_state(&mut self) {
        // A restart loses the recurrent state and delta context; the
        // learned weights survive (they live with the driver, not the
        // crashed node's memory).
        self.net.reset_state();
        self.last_page = None;
        self.last_token = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hnp_memsim::{NoPrefetcher, SimConfig, Simulator};
    use hnp_trace::Pattern;

    fn sim() -> Simulator {
        Simulator::new(SimConfig {
            capacity_pages: 32,
            miss_latency: 50,
            prefetch_latency: 50,
            max_issue_per_miss: 4,
            ..SimConfig::default()
        })
    }

    #[test]
    fn learns_stride_online_and_removes_misses() {
        let t = Pattern::Stride.generate(4000, 0);
        let s = sim();
        let base = s.run(&t, &mut NoPrefetcher);
        let mut p = LstmPrefetcher::new(LstmPrefetcherConfig::default());
        let rep = s.run(&t, &mut p);
        assert!(
            rep.pct_misses_removed(&base) > 30.0,
            "removed {:.1}%",
            rep.pct_misses_removed(&base)
        );
        // Confidence stays modest: successful prefetching thins the
        // miss stream, so the model's own input distribution keeps
        // shifting (a real deployment feedback effect). It must still
        // be clearly above the uniform floor (1/130 classes).
        assert!(p.confidence() > 0.05, "confidence {}", p.confidence());
    }

    #[test]
    fn frozen_model_does_not_learn() {
        let t = Pattern::Stride.generate(2000, 0);
        let cfg = LstmPrefetcherConfig {
            train_online: false,
            ..LstmPrefetcherConfig::default()
        };
        let mut p = LstmPrefetcher::new(cfg);
        let _ = sim().run(&t, &mut p);
        assert_eq!(p.confidence(), 0.0, "no training, no confidence updates");
    }

    #[test]
    fn rollout_translation_accumulates_deltas() {
        let p = LstmPrefetcher::new(LstmPrefetcherConfig::default());
        let v = &p.vocab;
        // Steps: top-1 delta +2 then +3; widths add an alternative +1.
        let rollout = vec![vec![v.token_of(2), v.token_of(1)], vec![v.token_of(3)]];
        let pages = p.pages_from_rollout(100, &rollout);
        assert_eq!(pages, vec![102, 101, 105]);
    }

    #[test]
    fn oov_prediction_stops_the_walk() {
        let p = LstmPrefetcher::new(LstmPrefetcherConfig::default());
        let v = &p.vocab;
        let rollout = vec![vec![v.oov()], vec![v.token_of(1)]];
        assert!(p.pages_from_rollout(100, &rollout).is_empty());
    }

    #[test]
    fn first_miss_produces_no_prefetch() {
        let mut p = LstmPrefetcher::new(LstmPrefetcherConfig::default());
        let out = p.on_miss(&MissEvent {
            page: 5,
            tick: 0,
            stream: 0,
        });
        assert!(out.is_empty(), "no delta context yet");
    }
}
