//! Comparison prefetchers.
//!
//! * [`simple`] — the non-learning classics: next-N-line, stride
//!   detection, and a Markov correlation table;
//! * [`lstm`] — the paper's deep-learning baseline (§2.1): an online
//!   LSTM delta predictor deployed per Fig. 1;
//! * [`transformer`] — the other prior-DL family §2 cites: a small
//!   decoder-only transformer under the same deployment.
//!
//! All implement [`hnp_memsim::Prefetcher`] and are evaluated by the
//! same simulator as the CLS prefetcher in `hnp-core`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod lstm;
pub mod simple;
pub mod transformer;

pub use lstm::{LstmPrefetcher, LstmPrefetcherConfig};
pub use simple::{
    MarkovConfig, MarkovPrefetcher, NextNConfig, NextNPrefetcher, StrideConfig, StridePrefetcher,
};
pub use transformer::{TransformerPrefetcher, TransformerPrefetcherConfig};
