//! Deterministic observability for the HNP simulator stack.
//!
//! Every simulator decision — a demand hit, a miss, an issued or
//! dropped prefetch, outcome feedback, a replay batch, a phase
//! transition, a fault, a degradation-ladder move — is described by a
//! typed [`Event`]. Components emit events through a fan-out
//! [`Registry`] of [`Observer`]s; sinks aggregate them into counters
//! ([`Counters`]), fixed-bucket histograms ([`Histogram`]), a bounded
//! trace ([`RingTracer`]), or export streams ([`JsonlExporter`],
//! [`CsvExporter`]) written under `results/` via [`ReportSink`].
//!
//! ## Determinism contract
//!
//! Observers are strictly read-only taps: an [`Event`] is borrowed,
//! carries only plain integers (no floats — fractional quantities are
//! scaled to `*_milli` fixed-point), and nothing an observer does can
//! flow back into simulator or model state. A run with any observer
//! set attached is therefore bit-identical to a run with none; the
//! memsim property tests pin this. An empty registry costs one
//! `is_empty` check per event.
//!
//! This crate deliberately has **zero dependencies** (std only) so it
//! can sit at layer 0 of the workspace DAG and be used by every crate
//! above it.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod counters;
mod event;
mod export;
mod hist;
mod observer;
mod report;
mod tracer;

pub use counters::Counters;
pub use event::{Event, EventKind, FaultKind, FeedbackKind, Field};
pub use export::{
    csv_field, event_to_csv, event_to_jsonl, json_escape, jsonl_kind, jsonl_u64, CsvExporter,
    JsonlExporter, CSV_COLUMNS,
};
pub use hist::{Histogram, Metric};
pub use observer::{Observer, Registry};
pub use report::ReportSink;
pub use tracer::RingTracer;
