//! The observer trait and fan-out registry.

use std::cell::RefCell;
use std::rc::Rc;

use crate::event::Event;

/// A read-only tap on the event stream.
///
/// Implementations must not feed anything back into the emitting
/// component — the determinism contract (crate docs) depends on it.
pub trait Observer {
    /// Receives one event. Called synchronously at the emission site.
    fn on_event(&mut self, ev: &Event);
}

/// A cloneable, shared fan-out of [`Observer`]s.
///
/// Cloning is shallow (an `Rc` bump), so a simulator config and the
/// prefetcher it drives can hold handles to the same registry and
/// interleave their events into one stream. The default registry is
/// empty and [`emit`](Registry::emit) on it is a near-free no-op —
/// simulators emit unconditionally.
///
/// Everything in the workspace is single-threaded by design
/// (determinism), so `Rc<RefCell<..>>` suffices; re-entrant emission
/// from inside an observer is silently dropped rather than panicking.
#[derive(Clone, Default)]
pub struct Registry {
    inner: Rc<RefCell<Vec<Box<dyn Observer>>>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an observer to the fan-out.
    pub fn attach(&self, obs: impl Observer + 'static) {
        if let Ok(mut v) = self.inner.try_borrow_mut() {
            v.push(Box::new(obs));
        }
    }

    /// Number of attached observers.
    pub fn len(&self) -> usize {
        self.inner.try_borrow().map(|v| v.len()).unwrap_or(0)
    }

    /// True when nothing is attached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Fans `ev` out to every observer, in attachment order.
    pub fn emit(&self, ev: &Event) {
        if let Ok(mut v) = self.inner.try_borrow_mut() {
            for obs in v.iter_mut() {
                obs.on_event(ev);
            }
        }
    }
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Registry({} observers)", self.len())
    }
}

/// Registries compare by identity: two handles are equal when they
/// share the same fan-out. (Configs deriving `PartialEq` stay usable.)
impl PartialEq for Registry {
    fn eq(&self, other: &Self) -> bool {
        Rc::ptr_eq(&self.inner, &other.inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Event;

    struct Count(Rc<RefCell<u64>>);
    impl Observer for Count {
        fn on_event(&mut self, _ev: &Event) {
            *self.0.borrow_mut() += 1;
        }
    }

    #[test]
    fn emit_fans_out_to_all_observers() {
        let reg = Registry::new();
        let a = Rc::new(RefCell::new(0));
        let b = Rc::new(RefCell::new(0));
        reg.attach(Count(a.clone()));
        reg.attach(Count(b.clone()));
        assert_eq!(reg.len(), 2);
        reg.emit(&Event::Hit { tick: 1, page: 2 });
        reg.emit(&Event::Hit { tick: 2, page: 3 });
        assert_eq!(*a.borrow(), 2);
        assert_eq!(*b.borrow(), 2);
    }

    #[test]
    fn clones_share_the_fanout() {
        let reg = Registry::new();
        let clone = reg.clone();
        let n = Rc::new(RefCell::new(0));
        clone.attach(Count(n.clone()));
        assert!(!reg.is_empty());
        reg.emit(&Event::Hit { tick: 0, page: 0 });
        assert_eq!(*n.borrow(), 1);
        assert_eq!(reg, clone);
        assert_ne!(reg, Registry::new());
    }

    #[test]
    fn empty_registry_is_a_noop() {
        let reg = Registry::default();
        assert!(reg.is_empty());
        reg.emit(&Event::Hit { tick: 0, page: 0 });
    }
}
